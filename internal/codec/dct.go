package codec

import "math"

// BlockSize is the transform block edge (8×8, as in MPEG-1/JPEG).
const BlockSize = 8

// Block is an 8×8 tile of coefficients or samples in row-major order.
type Block [BlockSize * BlockSize]float64

// dctBasis[u][x] = C(u) * cos((2x+1)uπ/16), precomputed at init.
var dctBasis [BlockSize][BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		c := math.Sqrt(2.0 / BlockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / BlockSize)
		}
		for x := 0; x < BlockSize; x++ {
			dctBasis[u][x] = c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*BlockSize))
		}
	}
}

// FDCT computes the 2-D type-II DCT of src into dst (separable row/column
// passes). src and dst may alias.
func FDCT(src *Block, dst *Block) {
	var tmp Block
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for u := 0; u < BlockSize; u++ {
			var s float64
			for x := 0; x < BlockSize; x++ {
				s += src[y*BlockSize+x] * dctBasis[u][x]
			}
			tmp[y*BlockSize+u] = s
		}
	}
	// Columns.
	for x := 0; x < BlockSize; x++ {
		for v := 0; v < BlockSize; v++ {
			var s float64
			for y := 0; y < BlockSize; y++ {
				s += tmp[y*BlockSize+x] * dctBasis[v][y]
			}
			dst[v*BlockSize+x] = s
		}
	}
}

// IDCT computes the 2-D inverse DCT of src into dst. src and dst may alias.
func IDCT(src *Block, dst *Block) {
	var tmp Block
	// Columns.
	for x := 0; x < BlockSize; x++ {
		for y := 0; y < BlockSize; y++ {
			var s float64
			for v := 0; v < BlockSize; v++ {
				s += src[v*BlockSize+x] * dctBasis[v][y]
			}
			tmp[y*BlockSize+x] = s
		}
	}
	// Rows.
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			var s float64
			for u := 0; u < BlockSize; u++ {
				s += tmp[y*BlockSize+u] * dctBasis[u][x]
			}
			dst[y*BlockSize+x] = s
		}
	}
}

// ZigZag is the coefficient scan order mapping scan position to block
// index, identical to the JPEG/MPEG order.
var ZigZag = buildZigZag()

func buildZigZag() [BlockSize * BlockSize]int {
	var order [BlockSize * BlockSize]int
	x, y, dir := 0, 0, 1 // dir 1 = up-right, -1 = down-left
	for i := range order {
		order[i] = y*BlockSize + x
		if dir == 1 {
			switch {
			case x == BlockSize-1:
				y++
				dir = -1
			case y == 0:
				x++
				dir = -1
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == BlockSize-1:
				x++
				dir = 1
			case x == 0:
				y++
				dir = 1
			default:
				x--
				y++
			}
		}
	}
	return order
}
