package codec

import "math"

// BlockSize is the transform block edge (8×8, as in MPEG-1/JPEG).
const BlockSize = 8

// Block is an 8×8 tile of coefficients or samples in row-major order.
type Block [BlockSize * BlockSize]float64

// dctBasis is the flattened DCT basis: dctBasis[u*8+x] = C(u)·cos((2x+1)uπ/16).
// dctBasisT is its transpose (dctBasisT[x*8+u] == dctBasis[u*8+x]) so both
// transform passes can walk unit-stride rows. Both hold the identical
// float64 values, so every dot product below repeats the original
// nested-array arithmetic bit for bit.
var dctBasis, dctBasisT [BlockSize * BlockSize]float64

func init() {
	for u := 0; u < BlockSize; u++ {
		c := math.Sqrt(2.0 / BlockSize)
		if u == 0 {
			c = math.Sqrt(1.0 / BlockSize)
		}
		for x := 0; x < BlockSize; x++ {
			b := c * math.Cos(float64(2*x+1)*float64(u)*math.Pi/(2*BlockSize))
			dctBasis[u*BlockSize+x] = b
			dctBasisT[x*BlockSize+u] = b
		}
	}
}

// dot8 is an 8-wide dot product with the same left-to-right accumulation
// order as the scalar loop it replaces; the fixed-size array arguments let
// the compiler drop every bounds check.
func dot8(a, b *[BlockSize]float64) float64 {
	return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] + a[3]*b[3] +
		a[4]*b[4] + a[5]*b[5] + a[6]*b[6] + a[7]*b[7]
}

// row returns block row y as a fixed-size array pointer (bounds-check-free
// indexing for the 8-wide kernels).
func (b *Block) row(y int) *[BlockSize]float64 {
	return (*[BlockSize]float64)(b[y*BlockSize : y*BlockSize+BlockSize])
}

func basisRow(t *[BlockSize * BlockSize]float64, u int) *[BlockSize]float64 {
	return (*[BlockSize]float64)(t[u*BlockSize : u*BlockSize+BlockSize])
}

// FDCT computes the 2-D type-II DCT of src into dst (separable row/column
// passes). src and dst may alias.
func FDCT(src *Block, dst *Block) {
	var tmp Block
	// Rows: tmp[y][u] = Σ_x src[y][x]·basis[u][x].
	for y := 0; y < BlockSize; y++ {
		r := src.row(y)
		tr := tmp.row(y)
		for u := 0; u < BlockSize; u++ {
			tr[u] = dot8(r, basisRow(&dctBasis, u))
		}
	}
	// Columns: dst[v][x] = Σ_y tmp[y][x]·basis[v][y], computed 8 columns
	// at a time so the inner dimension is unit stride.
	t0, t1, t2, t3 := tmp.row(0), tmp.row(1), tmp.row(2), tmp.row(3)
	t4, t5, t6, t7 := tmp.row(4), tmp.row(5), tmp.row(6), tmp.row(7)
	for v := 0; v < BlockSize; v++ {
		bv := basisRow(&dctBasis, v)
		d := dst.row(v)
		for x := 0; x < BlockSize; x++ {
			d[x] = t0[x]*bv[0] + t1[x]*bv[1] + t2[x]*bv[2] + t3[x]*bv[3] +
				t4[x]*bv[4] + t5[x]*bv[5] + t6[x]*bv[6] + t7[x]*bv[7]
		}
	}
}

// IDCT computes the 2-D inverse DCT of src into dst. src and dst may alias.
func IDCT(src *Block, dst *Block) {
	var tmp Block
	// Columns: tmp[y][x] = Σ_v src[v][x]·basis[v][y] — the transposed
	// basis row basisT[y][v] makes the v sweep unit stride.
	s0, s1, s2, s3 := src.row(0), src.row(1), src.row(2), src.row(3)
	s4, s5, s6, s7 := src.row(4), src.row(5), src.row(6), src.row(7)
	for y := 0; y < BlockSize; y++ {
		bt := basisRow(&dctBasisT, y)
		ty := tmp.row(y)
		for x := 0; x < BlockSize; x++ {
			ty[x] = s0[x]*bt[0] + s1[x]*bt[1] + s2[x]*bt[2] + s3[x]*bt[3] +
				s4[x]*bt[4] + s5[x]*bt[5] + s6[x]*bt[6] + s7[x]*bt[7]
		}
	}
	// Rows: dst[y][x] = Σ_u tmp[y][u]·basis[u][x] = tmp_row · basisT[x].
	for y := 0; y < BlockSize; y++ {
		tr := tmp.row(y)
		dr := dst.row(y)
		for x := 0; x < BlockSize; x++ {
			dr[x] = dot8(tr, basisRow(&dctBasisT, x))
		}
	}
}

// ZigZag is the coefficient scan order mapping scan position to block
// index, identical to the JPEG/MPEG order.
var ZigZag = buildZigZag()

func buildZigZag() [BlockSize * BlockSize]int {
	var order [BlockSize * BlockSize]int
	x, y, dir := 0, 0, 1 // dir 1 = up-right, -1 = down-left
	for i := range order {
		order[i] = y*BlockSize + x
		if dir == 1 {
			switch {
			case x == BlockSize-1:
				y++
				dir = -1
			case y == 0:
				x++
				dir = -1
			default:
				x++
				y--
			}
		} else {
			switch {
			case y == BlockSize-1:
				x++
				dir = 1
			case x == 0:
				y++
				dir = 1
			default:
				x--
				y++
			}
		}
	}
	return order
}
