package codec

import (
	"fmt"

	"repro/internal/frame"
)

// FrameType distinguishes intra-coded and predicted frames.
type FrameType uint8

const (
	// IFrame is intra coded: decodable without a reference.
	IFrame FrameType = iota
	// PFrame is predicted from the previous decoded frame with
	// per-macroblock motion compensation.
	PFrame
)

func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	default:
		return fmt.Sprintf("FrameType(%d)", uint8(t))
	}
}

// MBSize is the motion-compensation macroblock edge (16×16 luma).
const MBSize = 16

// SearchRange is the motion search window radius in pixels.
const SearchRange = 8

// skipSADThreshold is the per-macroblock luma SAD below which a zero-mv
// macroblock is coded as skipped.
const skipSADThreshold = 2 * MBSize * MBSize

// EncodedFrame is one compressed frame.
type EncodedFrame struct {
	Type   FrameType
	QScale int
	Data   []byte
}

// Size returns the encoded payload size in bytes (header excluded).
func (e *EncodedFrame) Size() int { return len(e.Data) }

// Encoder compresses a frame sequence. The zero value is not usable; use
// NewEncoder.
type Encoder struct {
	W, H   int
	GOP    int // I-frame every GOP frames (>=1)
	QScale int
	ref    *Picture // last reconstructed picture (closed loop)
	count  int
}

// NewEncoder returns an encoder for w×h frames with an I-frame every gop
// frames at the given quantiser scale.
func NewEncoder(w, h, gop, qscale int) (*Encoder, error) {
	if err := validateDims(w, h); err != nil {
		return nil, err
	}
	if gop < 1 {
		return nil, fmt.Errorf("codec: gop %d < 1", gop)
	}
	return &Encoder{W: w, H: h, GOP: gop, QScale: clampQScale(qscale)}, nil
}

// Encode compresses the next frame of the sequence.
func (e *Encoder) Encode(f *frame.Frame) (*EncodedFrame, error) {
	if f.W != e.W || f.H != e.H {
		return nil, fmt.Errorf("codec: frame %dx%d does not match encoder %dx%d",
			f.W, f.H, e.W, e.H)
	}
	pic := FromFrame(f)
	ft := PFrame
	if e.count%e.GOP == 0 || e.ref == nil {
		ft = IFrame
	}
	e.count++

	w := &BitWriter{}
	recon := NewPicture(e.W, e.H)
	if ft == IFrame {
		encodeIntraPlane(w, pic.Y, recon.Y, e.QScale)
		encodeIntraPlane(w, pic.Cb, recon.Cb, e.QScale)
		encodeIntraPlane(w, pic.Cr, recon.Cr, e.QScale)
	} else {
		encodePredicted(w, pic, e.ref, recon, e.QScale)
	}
	e.ref = recon
	return &EncodedFrame{Type: ft, QScale: e.QScale, Data: w.Bytes()}, nil
}

// Decoder decompresses a frame sequence produced by Encoder.
type Decoder struct {
	W, H int
	ref  *Picture
}

// NewDecoder returns a decoder for w×h frames.
func NewDecoder(w, h int) (*Decoder, error) {
	if err := validateDims(w, h); err != nil {
		return nil, err
	}
	return &Decoder{W: w, H: h}, nil
}

// Decode decompresses the next frame.
func (d *Decoder) Decode(ef *EncodedFrame) (*frame.Frame, error) {
	q := ef.QScale
	if q < MinQScale || q > MaxQScale {
		return nil, fmt.Errorf("%w: qscale %d", ErrBitstream, q)
	}
	r := NewBitReader(ef.Data)
	pic := NewPicture(d.W, d.H)
	switch ef.Type {
	case IFrame:
		if err := decodeIntraPlane(r, pic.Y, q); err != nil {
			return nil, err
		}
		if err := decodeIntraPlane(r, pic.Cb, q); err != nil {
			return nil, err
		}
		if err := decodeIntraPlane(r, pic.Cr, q); err != nil {
			return nil, err
		}
	case PFrame:
		if d.ref == nil {
			return nil, fmt.Errorf("%w: P frame with no reference", ErrBitstream)
		}
		if err := decodePredicted(r, pic, d.ref, q); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrBitstream, ef.Type)
	}
	d.ref = pic
	return pic.ToFrame(), nil
}

// --- intra coding ---

// encodeIntraPlane codes every 8×8 block of src and writes the
// reconstruction into rec (the encoder-side decoded picture). The DC
// coefficient is coded differentially against the previous block's DC
// (raster order within the plane), as neighbouring blocks share their
// average brightness.
func encodeIntraPlane(w *BitWriter, src, rec *Plane, qscale int) {
	var blk, coef Block
	var levels [BlockSize * BlockSize]int32
	prevDC := int32(0)
	for by := 0; by < src.H; by += BlockSize {
		for bx := 0; bx < src.W; bx += BlockSize {
			loadBlock(src, bx, by, &blk, 128)
			FDCT(&blk, &coef)
			quantize(&coef, &levels, true, qscale)
			trueDC := levels[0]
			levels[0] = trueDC - prevDC
			writeBlock(w, &levels)
			levels[0] = trueDC
			prevDC = trueDC
			dequantize(&levels, &coef, true, qscale)
			IDCT(&coef, &blk)
			storeBlock(rec, bx, by, &blk, 128)
		}
	}
}

func decodeIntraPlane(r *BitReader, dst *Plane, qscale int) error {
	var blk, coef Block
	var levels [BlockSize * BlockSize]int32
	prevDC := int32(0)
	for by := 0; by < dst.H; by += BlockSize {
		for bx := 0; bx < dst.W; bx += BlockSize {
			if err := readBlock(r, &levels); err != nil {
				return err
			}
			levels[0] += prevDC
			prevDC = levels[0]
			dequantize(&levels, &coef, true, qscale)
			IDCT(&coef, &blk)
			storeBlock(dst, bx, by, &blk, 128)
		}
	}
	return nil
}

// --- predicted coding ---

// Motion vectors are in half-pel units (the precision MPEG-1 uses): a
// vector of (3, -2) means 1.5 pixels right, 1 pixel up.
type motionVector struct{ X, Y int }

// halfPelSample reads the reference plane at half-pel position (hx, hy)
// (units of half pixels), bilinearly averaging the straddled samples.
func halfPelSample(p *Plane, hx, hy int) int {
	x, y := hx>>1, hy>>1
	fx, fy := hx&1, hy&1
	switch {
	case fx == 0 && fy == 0:
		return int(p.At(x, y))
	case fy == 0:
		return (int(p.At(x, y)) + int(p.At(x+1, y)) + 1) / 2
	case fx == 0:
		return (int(p.At(x, y)) + int(p.At(x, y+1)) + 1) / 2
	default:
		return (int(p.At(x, y)) + int(p.At(x+1, y)) +
			int(p.At(x, y+1)) + int(p.At(x+1, y+1)) + 2) / 4
	}
}

func encodePredicted(w *BitWriter, cur, ref, rec *Picture, qscale int) {
	for my := 0; my < cur.Y.H; my += MBSize {
		for mx := 0; mx < cur.Y.W; mx += MBSize {
			// Skip decision first: a static macroblock costs one SAD,
			// not a full motion search.
			if sadZero := mbSAD(cur.Y, ref.Y, mx, my, 0, 0); sadZero < skipSADThreshold {
				w.WriteBit(1) // skip
				copyMB(rec, ref, mx, my)
				continue
			}
			mv := searchMotion(cur.Y, ref.Y, mx, my)
			w.WriteBit(0)
			w.WriteSE(int32(mv.X))
			w.WriteSE(int32(mv.Y))
			// Luma: four 8×8 residual blocks.
			for dy := 0; dy < MBSize; dy += BlockSize {
				for dx := 0; dx < MBSize; dx += BlockSize {
					codeResidualBlock(w, cur.Y, ref.Y, rec.Y,
						mx+dx, my+dy, mv.X, mv.Y, qscale)
				}
			}
			// Chroma: one 8×8 block per component at half resolution;
			// the luma half-pel vector becomes a chroma half-pel vector
			// of half the magnitude.
			codeResidualBlock(w, cur.Cb, ref.Cb, rec.Cb,
				mx/2, my/2, mv.X/2, mv.Y/2, qscale)
			codeResidualBlock(w, cur.Cr, ref.Cr, rec.Cr,
				mx/2, my/2, mv.X/2, mv.Y/2, qscale)
		}
	}
}

func decodePredicted(r *BitReader, pic, ref *Picture, qscale int) error {
	for my := 0; my < pic.Y.H; my += MBSize {
		for mx := 0; mx < pic.Y.W; mx += MBSize {
			skip, err := r.ReadBit()
			if err != nil {
				return err
			}
			if skip == 1 {
				copyMB(pic, ref, mx, my)
				continue
			}
			mvx, err := r.ReadSE()
			if err != nil {
				return err
			}
			mvy, err := r.ReadSE()
			if err != nil {
				return err
			}
			if abs32(mvx) > 2*SearchRange+1 || abs32(mvy) > 2*SearchRange+1 {
				return fmt.Errorf("%w: motion vector (%d,%d) out of range", ErrBitstream, mvx, mvy)
			}
			for dy := 0; dy < MBSize; dy += BlockSize {
				for dx := 0; dx < MBSize; dx += BlockSize {
					if err := decodeResidualBlock(r, pic.Y, ref.Y,
						mx+dx, my+dy, int(mvx), int(mvy), qscale); err != nil {
						return err
					}
				}
			}
			if err := decodeResidualBlock(r, pic.Cb, ref.Cb,
				mx/2, my/2, int(mvx)/2, int(mvy)/2, qscale); err != nil {
				return err
			}
			if err := decodeResidualBlock(r, pic.Cr, ref.Cr,
				mx/2, my/2, int(mvx)/2, int(mvy)/2, qscale); err != nil {
				return err
			}
		}
	}
	return nil
}

// searchMotion finds the motion vector minimising luma SAD at (mx,my):
// an exhaustive full-pel search over ±SearchRange followed by a half-pel
// refinement of the winner's eight neighbours. It returns the best
// half-pel vector.
func searchMotion(cur, ref *Plane, mx, my int) motionVector {
	bestFull := motionVector{}
	bestSAD := mbSAD(cur, ref, mx, my, 0, 0)
	for vy := -SearchRange; vy <= SearchRange; vy++ {
		for vx := -SearchRange; vx <= SearchRange; vx++ {
			if vx == 0 && vy == 0 {
				continue
			}
			s := mbSAD(cur, ref, mx, my, vx, vy)
			// Bias toward shorter vectors to stabilise the field.
			s += 4 * (absInt(vx) + absInt(vy))
			if s < bestSAD {
				bestSAD = s
				bestFull = motionVector{vx, vy}
			}
		}
	}
	// Half-pel refinement around the full-pel winner.
	best := motionVector{2 * bestFull.X, 2 * bestFull.Y}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			hv := motionVector{2*bestFull.X + dx, 2*bestFull.Y + dy}
			s := mbSADHalf(cur, ref, mx, my, hv.X, hv.Y)
			if s < bestSAD {
				bestSAD = s
				best = hv
			}
		}
	}
	return best
}

func mbSAD(cur, ref *Plane, mx, my, vx, vy int) int {
	// Interior fast path: when both 16×16 windows are fully inside their
	// planes, At's edge clamping is the identity and the rows can be
	// walked as fixed-size arrays with no bounds checks. Edge macroblocks
	// (and vectors reaching past the border) take the clamped loop.
	if mx >= 0 && my >= 0 && mx+MBSize <= cur.W && my+MBSize <= cur.H &&
		mx+vx >= 0 && my+vy >= 0 && mx+vx+MBSize <= ref.W && my+vy+MBSize <= ref.H {
		sad := 0
		for y := 0; y < MBSize; y++ {
			co := (my+y)*cur.W + mx
			ro := (my+y+vy)*ref.W + mx + vx
			c := (*[MBSize]uint8)(cur.Pix[co : co+MBSize])
			r := (*[MBSize]uint8)(ref.Pix[ro : ro+MBSize])
			for x := 0; x < MBSize; x++ {
				d := int(c[x]) - int(r[x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		return sad
	}
	sad := 0
	for y := 0; y < MBSize; y++ {
		for x := 0; x < MBSize; x++ {
			d := int(cur.At(mx+x, my+y)) - int(ref.At(mx+x+vx, my+y+vy))
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// mbSADHalf is mbSAD with a half-pel vector.
func mbSADHalf(cur, ref *Plane, mx, my, hvx, hvy int) int {
	sad := 0
	for y := 0; y < MBSize; y++ {
		for x := 0; x < MBSize; x++ {
			d := int(cur.At(mx+x, my+y)) - halfPelSample(ref, 2*(mx+x)+hvx, 2*(my+y)+hvy)
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// copyMB copies one macroblock (luma + both chroma tiles) from ref to dst.
func copyMB(dst, ref *Picture, mx, my int) {
	copyTile(dst.Y, ref.Y, mx, my, MBSize)
	copyTile(dst.Cb, ref.Cb, mx/2, my/2, MBSize/2)
	copyTile(dst.Cr, ref.Cr, mx/2, my/2, MBSize/2)
}

// copyTile copies an n×n tile at (x0, y0), row-wise via copy for interior
// tiles and through the clamping accessors at plane edges.
func copyTile(dst, ref *Plane, x0, y0, n int) {
	if x0 >= 0 && y0 >= 0 && x0+n <= dst.W && y0+n <= dst.H && dst.W == ref.W && dst.H == ref.H {
		for y := 0; y < n; y++ {
			o := (y0+y)*dst.W + x0
			copy(dst.Pix[o:o+n], ref.Pix[o:o+n])
		}
		return
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			dst.Set(x0+x, y0+y, ref.At(x0+x, y0+y))
		}
	}
}

// codeResidualBlock transforms and writes one 8×8 motion-compensated
// residual (half-pel vector hvx/hvy), reconstructing into rec.
func codeResidualBlock(w *BitWriter, cur, ref, rec *Plane, bx, by, hvx, hvy, qscale int) {
	var res, coef Block
	var levels [BlockSize * BlockSize]int32
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			pred := halfPelSample(ref, 2*(bx+x)+hvx, 2*(by+y)+hvy)
			res[y*BlockSize+x] = float64(int(cur.At(bx+x, by+y)) - pred)
		}
	}
	FDCT(&res, &coef)
	quantize(&coef, &levels, false, qscale)
	writeBlock(w, &levels)
	dequantize(&levels, &coef, false, qscale)
	IDCT(&coef, &res)
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			pred := halfPelSample(ref, 2*(bx+x)+hvx, 2*(by+y)+hvy)
			rec.Set(bx+x, by+y, clampSample(float64(pred)+res[y*BlockSize+x]))
		}
	}
}

func decodeResidualBlock(r *BitReader, dst, ref *Plane, bx, by, hvx, hvy, qscale int) error {
	var res, coef Block
	var levels [BlockSize * BlockSize]int32
	if err := readBlock(r, &levels); err != nil {
		return err
	}
	dequantize(&levels, &coef, false, qscale)
	IDCT(&coef, &res)
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			pred := halfPelSample(ref, 2*(bx+x)+hvx, 2*(by+y)+hvy)
			dst.Set(bx+x, by+y, clampSample(float64(pred)+res[y*BlockSize+x]))
		}
	}
	return nil
}

// --- block entropy coding ---

// eobMarker terminates a block's (run, level) list; runs are at most 63 so
// the value is unambiguous.
const eobMarker = 64

// writeBlock writes the quantised levels of one block as zig-zag (run,
// level) pairs in Exp-Golomb code, terminated by an EOB marker.
func writeBlock(w *BitWriter, levels *[BlockSize * BlockSize]int32) {
	run := uint32(0)
	for _, idx := range ZigZag {
		v := levels[idx]
		if v == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(v)
		run = 0
	}
	w.WriteUE(eobMarker)
}

// readBlock parses one block written by writeBlock.
func readBlock(r *BitReader, levels *[BlockSize * BlockSize]int32) error {
	for i := range levels {
		levels[i] = 0
	}
	pos := 0
	for {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		if run == eobMarker {
			return nil
		}
		if run > eobMarker {
			return fmt.Errorf("%w: invalid run %d", ErrBitstream, run)
		}
		pos += int(run)
		if pos >= len(levels) {
			return fmt.Errorf("%w: run overflows block", ErrBitstream)
		}
		v, err := r.ReadSE()
		if err != nil {
			return err
		}
		if v == 0 {
			return fmt.Errorf("%w: zero level", ErrBitstream)
		}
		levels[ZigZag[pos]] = v
		pos++
	}
}

// --- helpers ---

func loadBlock(p *Plane, bx, by int, blk *Block, bias float64) {
	if bx >= 0 && by >= 0 && bx+BlockSize <= p.W && by+BlockSize <= p.H {
		for y := 0; y < BlockSize; y++ {
			o := (by+y)*p.W + bx
			r := (*[BlockSize]uint8)(p.Pix[o : o+BlockSize])
			b := blk.row(y)
			for x := 0; x < BlockSize; x++ {
				b[x] = float64(r[x]) - bias
			}
		}
		return
	}
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			blk[y*BlockSize+x] = float64(p.At(bx+x, by+y)) - bias
		}
	}
}

func storeBlock(p *Plane, bx, by int, blk *Block, bias float64) {
	if bx >= 0 && by >= 0 && bx+BlockSize <= p.W && by+BlockSize <= p.H {
		for y := 0; y < BlockSize; y++ {
			o := (by+y)*p.W + bx
			r := (*[BlockSize]uint8)(p.Pix[o : o+BlockSize])
			b := blk.row(y)
			for x := 0; x < BlockSize; x++ {
				r[x] = clampSample(b[x] + bias)
			}
		}
		return
	}
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			p.Set(bx+x, by+y, clampSample(blk[y*BlockSize+x]+bias))
		}
	}
}

func clampSample(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
