package codec

import (
	"math"
	"testing"

	"repro/internal/video"
)

func rcClip() *video.Clip {
	return video.MustNew("rc", 48, 32, 10, 17, []video.SceneSpec{
		{Frames: 20, BaseLuma: 0.25, LumaSpread: 0.2, MaxLuma: 0.9, HighlightFrac: 0.02, Chroma: 0.5, Motion: 1.5},
		{Frames: 20, BaseLuma: 0.55, LumaSpread: 0.2, MaxLuma: 1.0, HighlightFrac: 0.2, Chroma: 0.4, Motion: 2.5},
	})
}

func TestNewRateControllerValidation(t *testing.T) {
	if _, err := NewRateController(0, 10, 4); err == nil {
		t.Error("zero bitrate accepted")
	}
	if _, err := NewRateController(1000, 0, 4); err == nil {
		t.Error("zero fps accepted")
	}
}

func TestRateControlConverges(t *testing.T) {
	c := rcClip()
	// Pick a target between the extremes achievable at q=1 and q=31.
	target := 80_000.0 // bits/s at 10 fps -> 8k bits/frame
	rc, err := NewRateController(target, c.FPS, 8)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(c.W, c.H, 10, rc.QScale())
	if err != nil {
		t.Fatal(err)
	}
	var tail float64
	tailFrames := 0
	for i := 0; i < c.TotalFrames(); i++ {
		enc.SetQScale(rc.QScale())
		ef, err := enc.Encode(c.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		rc.Observe(ef)
		if i >= c.TotalFrames()/2 {
			tail += float64(len(ef.Data) * 8)
			tailFrames++
		}
	}
	got := tail / float64(tailFrames)
	want := target / float64(c.FPS)
	if rel := math.Abs(got-want) / want; rel > 0.35 {
		t.Errorf("steady-state %v bits/frame vs target %v (rel err %v)", got, want, rel)
	}
}

func TestRateControlReactsToTarget(t *testing.T) {
	c := rcClip()
	run := func(bps float64) float64 {
		rc, err := NewRateController(bps, c.FPS, 8)
		if err != nil {
			t.Fatal(err)
		}
		enc, _ := NewEncoder(c.W, c.H, 10, rc.QScale())
		for i := 0; i < c.TotalFrames(); i++ {
			enc.SetQScale(rc.QScale())
			ef, err := enc.Encode(c.Frame(i))
			if err != nil {
				t.Fatal(err)
			}
			rc.Observe(ef)
		}
		return rc.AchievedBitsPerFrame()
	}
	low := run(30_000)
	high := run(100_000)
	if low >= high {
		t.Errorf("lower target produced more bits: %v vs %v", low, high)
	}
}

func TestQScaleStaysInRange(t *testing.T) {
	rc, err := NewRateController(1, 10, 50) // absurd target, absurd start
	if err != nil {
		t.Fatal(err)
	}
	if rc.QScale() != MaxQScale {
		t.Errorf("start qscale = %d", rc.QScale())
	}
	for i := 0; i < 100; i++ {
		rc.Observe(&EncodedFrame{Data: make([]byte, 100000)})
		if q := rc.QScale(); q < MinQScale || q > MaxQScale {
			t.Fatalf("qscale %d out of range", q)
		}
	}
	if rc.QScale() != MaxQScale {
		t.Error("controller did not saturate at max quantiser under pressure")
	}
}

func TestAchievedBitsPerFrameEmpty(t *testing.T) {
	rc, _ := NewRateController(1000, 10, 4)
	if rc.AchievedBitsPerFrame() != 0 {
		t.Error("empty controller reports nonzero rate")
	}
}
