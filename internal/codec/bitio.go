package codec

import (
	"errors"
	"fmt"
)

// ErrBitstream is returned when a decoder reads past the end of, or finds
// malformed structure in, an encoded stream.
var ErrBitstream = errors.New("codec: malformed bitstream")

// BitWriter accumulates bits MSB-first into a byte slice.
type BitWriter struct {
	buf  []byte
	bits uint8 // number of valid bits in the pending byte
	cur  uint8
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.bits++
	if w.bits == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.bits = 0, 0
	}
}

// WriteBits appends the low n bits of v, MSB first. n must be <= 32.
func (w *BitWriter) WriteBits(v uint32, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(uint(v >> uint(i) & 1))
	}
}

// WriteUE appends v in unsigned Exp-Golomb code.
func (w *BitWriter) WriteUE(v uint32) {
	x := v + 1
	n := 0
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := 0; i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n+1)
}

// WriteSE appends v in signed Exp-Golomb code (0, 1, -1, 2, -2, ...).
func (w *BitWriter) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	w.WriteUE(u)
}

// Bytes flushes the pending byte (zero-padded) and returns the buffer.
func (w *BitWriter) Bytes() []byte {
	if w.bits > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.bits))
		w.cur, w.bits = 0, 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.bits) }

// BitReader consumes bits MSB-first from a byte slice.
type BitReader struct {
	data []byte
	pos  int // bit position
}

// NewBitReader wraps data for reading.
func NewBitReader(data []byte) *BitReader { return &BitReader{data: data} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint, error) {
	if r.pos >= len(r.data)*8 {
		return 0, fmt.Errorf("%w: read past end", ErrBitstream)
	}
	b := r.data[r.pos/8] >> (7 - uint(r.pos%8)) & 1
	r.pos++
	return uint(b), nil
}

// ReadBits returns the next n bits as an unsigned value. n must be <= 32.
func (r *BitReader) ReadBits(n int) (uint32, error) {
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// ReadUE decodes an unsigned Exp-Golomb value.
func (r *BitReader) ReadUE() (uint32, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("%w: exp-golomb prefix too long", ErrBitstream)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return uint32(1)<<uint(n) + rest - 1, nil
}

// ReadSE decodes a signed Exp-Golomb value.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2 + 1), nil
	}
	return -int32(u / 2), nil
}
