package codec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/pixel"
	"repro/internal/video"
)

func TestZigZagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, idx := range ZigZag {
		if idx < 0 || idx >= 64 || seen[idx] {
			t.Fatalf("zigzag not a permutation: %v", ZigZag)
		}
		seen[idx] = true
	}
	// Spot-check the canonical start of the JPEG scan.
	want := []int{0, 1, 8, 16, 9, 2, 3, 10}
	for i, w := range want {
		if ZigZag[i] != w {
			t.Errorf("ZigZag[%d] = %d, want %d", i, ZigZag[i], w)
		}
	}
	if ZigZag[63] != 63 {
		t.Errorf("ZigZag[63] = %d, want 63", ZigZag[63])
	}
}

func TestDCTRoundTrip(t *testing.T) {
	var src, freq, back Block
	for i := range src {
		src[i] = float64((i*37)%255) - 128
	}
	FDCT(&src, &freq)
	IDCT(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func TestDCTDCOfFlatBlock(t *testing.T) {
	var src, freq Block
	for i := range src {
		src[i] = 100
	}
	FDCT(&src, &freq)
	if math.Abs(freq[0]-800) > 1e-9 { // DC = 8 * mean for orthonormal 8x8
		t.Errorf("DC = %v, want 800", freq[0])
	}
	for i := 1; i < len(freq); i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %v for flat block", i, freq[i])
		}
	}
}

func TestDCTParseval(t *testing.T) {
	var src, freq Block
	for i := range src {
		src[i] = math.Sin(float64(i)) * 100
	}
	FDCT(&src, &freq)
	var es, ef float64
	for i := range src {
		es += src[i] * src[i]
		ef += freq[i] * freq[i]
	}
	if math.Abs(es-ef) > 1e-6 {
		t.Errorf("Parseval violated: %v vs %v", es, ef)
	}
}

func TestBitIORoundTrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0b1011, 4)
	w.WriteUE(0)
	w.WriteUE(5)
	w.WriteUE(127)
	w.WriteSE(0)
	w.WriteSE(-3)
	w.WriteSE(17)
	r := NewBitReader(w.Bytes())
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("bits = %b", v)
	}
	for _, want := range []uint32{0, 5, 127} {
		if v, err := r.ReadUE(); err != nil || v != want {
			t.Errorf("ReadUE = %d,%v want %d", v, err, want)
		}
	}
	for _, want := range []int32{0, -3, 17} {
		if v, err := r.ReadSE(); err != nil || v != want {
			t.Errorf("ReadSE = %d,%v want %d", v, err, want)
		}
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Error("ReadBits past end did not fail")
	}
}

func TestBitIOPropertyRoundTrip(t *testing.T) {
	f := func(ues []uint16, ses []int16) bool {
		w := &BitWriter{}
		for _, v := range ues {
			w.WriteUE(uint32(v))
		}
		for _, v := range ses {
			w.WriteSE(int32(v))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range ues {
			got, err := r.ReadUE()
			if err != nil || got != uint32(v) {
				return false
			}
		}
		for _, v := range ses {
			got, err := r.ReadSE()
			if err != nil || got != int32(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockEntropyRoundTrip(t *testing.T) {
	var levels, got [64]int32
	levels[0] = 50
	levels[5] = -3
	levels[63] = 1
	w := &BitWriter{}
	writeBlock(w, &levels)
	if err := readBlock(NewBitReader(w.Bytes()), &got); err != nil {
		t.Fatal(err)
	}
	if got != levels {
		t.Errorf("entropy round trip: %v vs %v", got, levels)
	}
}

func TestPictureConversionRoundTrip(t *testing.T) {
	f := frame.New(17, 13) // odd dims exercise subsampling edges
	for i := range f.Pix {
		f.Pix[i] = pixel.Gray(uint8(i * 5 % 256))
	}
	g := FromFrame(f).ToFrame()
	if g.W != f.W || g.H != f.H {
		t.Fatalf("shape changed: %dx%d", g.W, g.H)
	}
	if psnr := f.PSNR(g); psnr < 40 {
		t.Errorf("conversion PSNR = %v dB, want > 40 (gray content)", psnr)
	}
}

func clip(t *testing.T) *video.Clip {
	t.Helper()
	return video.MustNew("codec-test", 48, 32, 10, 5, []video.SceneSpec{
		{Frames: 6, BaseLuma: 0.25, LumaSpread: 0.2, MaxLuma: 0.9, HighlightFrac: 0.02, Chroma: 0.5, Motion: 1.5},
		{Frames: 4, BaseLuma: 0.6, LumaSpread: 0.2, MaxLuma: 1.0, HighlightFrac: 0.2, Chroma: 0.4, Motion: 0.5},
	})
}

func TestEncodeDecodeSequence(t *testing.T) {
	c := clip(t)
	enc, err := NewEncoder(c.W, c.H, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(c.W, c.H)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.TotalFrames(); i++ {
		src := c.Frame(i)
		ef, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		wantType := PFrame
		if i%5 == 0 {
			wantType = IFrame
		}
		if ef.Type != wantType {
			t.Errorf("frame %d type %v, want %v", i, ef.Type, wantType)
		}
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if psnr := src.PSNR(got); psnr < 26 {
			t.Errorf("frame %d PSNR = %.1f dB, want >= 26", i, psnr)
		}
	}
}

func TestEncoderCompresses(t *testing.T) {
	c := clip(t)
	enc, _ := NewEncoder(c.W, c.H, 10, 6)
	raw := c.W * c.H * 3
	var total int
	n := c.TotalFrames()
	for i := 0; i < n; i++ {
		ef, err := enc.Encode(c.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		total += ef.Size()
	}
	ratio := float64(raw*n) / float64(total)
	if ratio < 4 {
		t.Errorf("compression ratio %.1f, want >= 4", ratio)
	}
}

func TestPFramesSmallerThanIFrames(t *testing.T) {
	c := video.MustNew("still", 48, 32, 10, 9, []video.SceneSpec{
		{Frames: 4, BaseLuma: 0.3, LumaSpread: 0.15, MaxLuma: 0.7, HighlightFrac: 0.01, Motion: 0.2},
	})
	enc, _ := NewEncoder(c.W, c.H, 100, 4)
	iFrame, err := enc.Encode(c.Frame(0))
	if err != nil {
		t.Fatal(err)
	}
	pFrame, err := enc.Encode(c.Frame(1))
	if err != nil {
		t.Fatal(err)
	}
	if pFrame.Size() >= iFrame.Size() {
		t.Errorf("P frame (%dB) not smaller than I frame (%dB) on low-motion content",
			pFrame.Size(), iFrame.Size())
	}
}

func TestQScaleTradesQualityForSize(t *testing.T) {
	c := clip(t)
	src := c.Frame(0)
	encode := func(q int) (*EncodedFrame, *frame.Frame) {
		enc, _ := NewEncoder(c.W, c.H, 1, q)
		ef, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		dec, _ := NewDecoder(c.W, c.H)
		out, err := dec.Decode(ef)
		if err != nil {
			t.Fatal(err)
		}
		return ef, out
	}
	fine, fineOut := encode(2)
	coarse, coarseOut := encode(16)
	if coarse.Size() >= fine.Size() {
		t.Errorf("coarse q (%dB) not smaller than fine q (%dB)", coarse.Size(), fine.Size())
	}
	if src.PSNR(coarseOut) >= src.PSNR(fineOut) {
		t.Error("coarse quantisation did not lose quality")
	}
}

func TestEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, 10, 1, 4); err == nil {
		t.Error("accepted zero width")
	}
	if _, err := NewEncoder(10, 10, 0, 4); err == nil {
		t.Error("accepted zero gop")
	}
	enc, _ := NewEncoder(16, 16, 1, 4)
	if _, err := enc.Encode(frame.New(8, 8)); err == nil {
		t.Error("accepted mismatched frame size")
	}
}

func TestDecoderErrors(t *testing.T) {
	dec, _ := NewDecoder(16, 16)
	if _, err := dec.Decode(&EncodedFrame{Type: PFrame, QScale: 4}); err == nil {
		t.Error("P frame without reference accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: FrameType(9), QScale: 4}); err == nil {
		t.Error("unknown frame type accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, QScale: 0}); err == nil {
		t.Error("invalid qscale accepted")
	}
	if _, err := dec.Decode(&EncodedFrame{Type: IFrame, QScale: 4, Data: []byte{0}}); err == nil {
		t.Error("truncated I frame accepted")
	}
}

// Property: the decoder never panics on corrupted payloads.
func TestDecodeCorruptionNeverPanicsProperty(t *testing.T) {
	c := clip(t)
	enc, _ := NewEncoder(c.W, c.H, 2, 4)
	var frames []*EncodedFrame
	for i := 0; i < 4; i++ {
		ef, err := enc.Encode(c.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, ef)
	}
	f := func(which, pos uint16, val uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		src := frames[int(which)%len(frames)]
		data := append([]byte(nil), src.Data...)
		if len(data) > 0 {
			data[int(pos)%len(data)] ^= val
		}
		dec, _ := NewDecoder(c.W, c.H)
		// Prime a reference so P frames decode.
		if ref, err := dec.Decode(frames[0]); err != nil || ref == nil {
			return true
		}
		dec.Decode(&EncodedFrame{Type: src.Type, QScale: src.QScale, Data: data})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantize/dequantize error is bounded by half a step.
func TestQuantRoundTripBoundProperty(t *testing.T) {
	f := func(vals [64]int16, qRaw uint8, intra bool) bool {
		q := int(qRaw)%MaxQScale + 1
		var coef Block
		for i, v := range vals {
			coef[i] = float64(v % 1024)
		}
		var levels [64]int32
		var back Block
		quantize(&coef, &levels, intra, q)
		dequantize(&levels, &back, intra, q)
		for i := range coef {
			step := float64(interQuant[i]*q) / 8
			if intra {
				step = float64(intraQuant[i]*q) / 8
				if i == 0 {
					step = 8
				}
			}
			if math.Abs(coef[i]-back[i]) > step/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfPelSample(t *testing.T) {
	p := NewPlane(4, 4)
	p.Set(0, 0, 100)
	p.Set(1, 0, 120)
	p.Set(0, 1, 140)
	p.Set(1, 1, 160)
	cases := []struct {
		hx, hy int
		want   int
	}{
		{0, 0, 100}, // integer position
		{1, 0, 110}, // horizontal half
		{0, 1, 120}, // vertical half
		{1, 1, 130}, // diagonal half: (100+120+140+160+2)/4
		{2, 0, 120}, // next integer
	}
	for _, c := range cases {
		if got := halfPelSample(p, c.hx, c.hy); got != c.want {
			t.Errorf("halfPelSample(%d,%d) = %d, want %d", c.hx, c.hy, got, c.want)
		}
	}
	// Negative half-pel positions clamp to the edge without panicking.
	if got := halfPelSample(p, -1, 0); got != 100 {
		t.Errorf("halfPelSample(-1,0) = %d, want clamped 100", got)
	}
}

func TestHalfPelImprovesOrMatchesSubPixelMotion(t *testing.T) {
	// Content drifting by non-integer amounts per frame is where
	// half-pel compensation pays: the P frame should stay small and
	// accurate. Compare bit cost against a still clip baseline sanity.
	c := video.MustNew("subpel", 48, 32, 10, 23, []video.SceneSpec{
		{Frames: 6, BaseLuma: 0.35, LumaSpread: 0.25, MaxLuma: 0.9, HighlightFrac: 0.01, Motion: 0.5},
	})
	enc, _ := NewEncoder(c.W, c.H, 100, 4)
	dec, _ := NewDecoder(c.W, c.H)
	for i := 0; i < c.TotalFrames(); i++ {
		src := c.Frame(i)
		ef, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(ef)
		if err != nil {
			t.Fatal(err)
		}
		if psnr := src.PSNR(got); psnr < 28 {
			t.Errorf("frame %d PSNR = %.1f with sub-pixel motion", i, psnr)
		}
	}
}
