// Package codec implements the video compression substrate standing in for
// the Berkeley MPEG tools decoder used by the paper's player (§5): a
// block-transform codec with BT.601 4:2:0 chroma subsampling, 8×8 DCT,
// uniform quantisation, zig-zag run-length scanning with Exp-Golomb
// entropy coding, and motion-compensated P frames. It gives the client a
// realistic decode workload and a real bitstream for the annotation track
// to ride on; it is not bit-compatible with MPEG-1.
package codec

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// Plane is a single-component raster with its own dimensions (chroma
// planes are subsampled).
type Plane struct {
	W, H int
	Pix  []uint8
}

// NewPlane returns a zeroed plane.
func NewPlane(w, h int) *Plane {
	return &Plane{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the sample at (x, y), clamping coordinates to the plane edge
// (edge extension, as block and motion reads may poke outside).
func (p *Plane) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// Set stores v at (x, y); out-of-bounds writes are dropped.
func (p *Plane) Set(x, y int, v uint8) {
	if x < 0 || x >= p.W || y < 0 || y >= p.H {
		return
	}
	p.Pix[y*p.W+x] = v
}

// Clone deep-copies the plane.
func (p *Plane) Clone() *Plane {
	q := &Plane{W: p.W, H: p.H, Pix: make([]uint8, len(p.Pix))}
	copy(q.Pix, p.Pix)
	return q
}

// Picture is a YCbCr 4:2:0 image: full-resolution luma, half-resolution
// chroma in both dimensions.
type Picture struct {
	Y, Cb, Cr *Plane
}

// NewPicture allocates a picture for a w×h frame. Dimensions are rounded
// up internally to even values for subsampling.
func NewPicture(w, h int) *Picture {
	cw, ch := (w+1)/2, (h+1)/2
	return &Picture{Y: NewPlane(w, h), Cb: NewPlane(cw, ch), Cr: NewPlane(cw, ch)}
}

// FromFrame converts an RGB frame to a 4:2:0 picture. Chroma is averaged
// over each 2×2 luma quad.
func FromFrame(f *frame.Frame) *Picture {
	pic := NewPicture(f.W, f.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			yc := pixel.ToYCbCr(f.At(x, y))
			pic.Y.Set(x, y, yc.Y)
		}
	}
	for cy := 0; cy < pic.Cb.H; cy++ {
		for cx := 0; cx < pic.Cb.W; cx++ {
			var cb, cr, n int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x, y := cx*2+dx, cy*2+dy
					if x >= f.W || y >= f.H {
						continue
					}
					yc := pixel.ToYCbCr(f.At(x, y))
					cb += int(yc.Cb)
					cr += int(yc.Cr)
					n++
				}
			}
			if n > 0 {
				pic.Cb.Set(cx, cy, uint8((cb+n/2)/n))
				pic.Cr.Set(cx, cy, uint8((cr+n/2)/n))
			}
		}
	}
	return pic
}

// ToFrame converts the picture back to an RGB frame of the given size
// (chroma is replicated over each 2×2 quad).
func (pic *Picture) ToFrame() *frame.Frame {
	f := frame.New(pic.Y.W, pic.Y.H)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			yc := pixel.YCbCr{
				Y:  pic.Y.At(x, y),
				Cb: pic.Cb.At(x/2, y/2),
				Cr: pic.Cr.At(x/2, y/2),
			}
			f.Set(x, y, pixel.ToRGB(yc))
		}
	}
	return f
}

// Clone deep-copies the picture.
func (pic *Picture) Clone() *Picture {
	return &Picture{Y: pic.Y.Clone(), Cb: pic.Cb.Clone(), Cr: pic.Cr.Clone()}
}

// validateDims checks encoder/decoder dimension agreement.
func validateDims(w, h int) error {
	if w <= 0 || h <= 0 || w > 4096 || h > 4096 {
		return fmt.Errorf("codec: unsupported dimensions %dx%d", w, h)
	}
	return nil
}
