package codec

import "fmt"

// RateController adapts the quantiser scale between frames to hold the
// stream near a target bitrate — the mechanism a streaming server uses to
// fit a clip to the wireless link budget negotiated with the client. It
// is a multiplicative-increase controller on the quantiser with a slow
// integral correction of the accumulated bit debt.
type RateController struct {
	// TargetBitsPerFrame is the bit budget for each frame.
	TargetBitsPerFrame float64
	// Aggressiveness scales the per-frame correction (default 0.5).
	Aggressiveness float64

	q      float64
	debt   float64 // accumulated bits over/under budget
	frames int
	bits   int
}

// NewRateController targets the given bitrate (bits/second) at the given
// frame rate, starting from qscale start.
func NewRateController(bitsPerSecond float64, fps int, start int) (*RateController, error) {
	if bitsPerSecond <= 0 || fps <= 0 {
		return nil, fmt.Errorf("codec: invalid rate target %v bps @ %d fps", bitsPerSecond, fps)
	}
	return &RateController{
		TargetBitsPerFrame: bitsPerSecond / float64(fps),
		Aggressiveness:     0.5,
		q:                  float64(clampQScale(start)),
	}, nil
}

// QScale returns the quantiser scale to use for the next frame.
func (rc *RateController) QScale() int { return clampQScale(int(rc.q + 0.5)) }

// Observe records the size of the frame just produced and updates the
// quantiser for the next one.
func (rc *RateController) Observe(ef *EncodedFrame) {
	bits := float64(len(ef.Data) * 8)
	rc.frames++
	rc.bits += len(ef.Data) * 8
	rc.debt += bits - rc.TargetBitsPerFrame

	// Proportional term: scale q by the size ratio, damped.
	ratio := bits / rc.TargetBitsPerFrame
	adj := 1 + rc.Aggressiveness*(ratio-1)
	if adj < 0.5 {
		adj = 0.5
	}
	if adj > 2 {
		adj = 2
	}
	rc.q *= adj
	// Integral term: drain accumulated debt slowly.
	rc.q *= 1 + 0.02*rc.debt/rc.TargetBitsPerFrame/float64(rc.frames)
	if rc.q < MinQScale {
		rc.q = MinQScale
	}
	if rc.q > MaxQScale {
		rc.q = MaxQScale
	}
}

// AchievedBitsPerFrame reports the mean frame size so far, in bits.
func (rc *RateController) AchievedBitsPerFrame() float64 {
	if rc.frames == 0 {
		return 0
	}
	return float64(rc.bits) / float64(rc.frames)
}

// SetQScale overrides the encoder's quantiser for subsequent frames,
// enabling closed-loop rate control.
func (e *Encoder) SetQScale(q int) { e.QScale = clampQScale(q) }
