package codec

// Quantisation matrices in zig-zag-independent (row-major) block order.
// The intra matrix follows the MPEG-1 default weighting (coarser for high
// frequencies); the inter matrix is flat, as residuals have no DC bias.
var intraQuant = [BlockSize * BlockSize]int{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

var interQuant = [BlockSize * BlockSize]int{
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
}

// MinQScale and MaxQScale bound the quantiser scale parameter.
const (
	MinQScale = 1
	MaxQScale = 31
)

// Per-qscale divisor tables: quantDiv[intra][q][i] caches
// float64(mat[i]*q)/8 (with the intra DC override to 8), computed once at
// init with the identical arithmetic the per-element loop used. Table
// lookup keeps quantize/dequantize branch-free and bounds-check-free in
// the inner loop while producing bit-identical levels.
var quantDiv [2][MaxQScale + 1][BlockSize * BlockSize]float64

func init() {
	for q := MinQScale; q <= MaxQScale; q++ {
		for i := 0; i < BlockSize*BlockSize; i++ {
			quantDiv[0][q][i] = float64(interQuant[i]*q) / 8
			quantDiv[1][q][i] = float64(intraQuant[i]*q) / 8
		}
		quantDiv[1][q][0] = 8
	}
}

// divisors returns the divisor table for (intra, qscale), clamping the
// scale the same way every encode path does before quantising.
func divisors(intra bool, qscale int) *[BlockSize * BlockSize]float64 {
	k := 0
	if intra {
		k = 1
	}
	return &quantDiv[k][clampQScale(qscale)]
}

// quantize maps DCT coefficients to integer levels using the given matrix
// and scale. The DC coefficient of intra blocks uses a fixed divisor of 8
// so block averages survive coarse quantisation.
func quantize(coef *Block, levels *[BlockSize * BlockSize]int32, intra bool, qscale int) {
	d := divisors(intra, qscale)
	for i := range coef {
		v := coef[i] / d[i]
		if v >= 0 {
			levels[i] = int32(v + 0.5)
		} else {
			levels[i] = int32(v - 0.5)
		}
	}
}

// dequantize is the inverse of quantize.
func dequantize(levels *[BlockSize * BlockSize]int32, coef *Block, intra bool, qscale int) {
	d := divisors(intra, qscale)
	for i := range coef {
		coef[i] = float64(levels[i]) * d[i]
	}
}

func clampQScale(q int) int {
	if q < MinQScale {
		return MinQScale
	}
	if q > MaxQScale {
		return MaxQScale
	}
	return q
}
