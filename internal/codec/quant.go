package codec

// Quantisation matrices in zig-zag-independent (row-major) block order.
// The intra matrix follows the MPEG-1 default weighting (coarser for high
// frequencies); the inter matrix is flat, as residuals have no DC bias.
var intraQuant = [BlockSize * BlockSize]int{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

var interQuant = [BlockSize * BlockSize]int{
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
	16, 16, 16, 16, 16, 16, 16, 16,
}

// MinQScale and MaxQScale bound the quantiser scale parameter.
const (
	MinQScale = 1
	MaxQScale = 31
)

// quantize maps DCT coefficients to integer levels using the given matrix
// and scale. The DC coefficient of intra blocks uses a fixed divisor of 8
// so block averages survive coarse quantisation.
func quantize(coef *Block, levels *[BlockSize * BlockSize]int32, intra bool, qscale int) {
	mat := &interQuant
	if intra {
		mat = &intraQuant
	}
	for i := range coef {
		d := float64(mat[i]*qscale) / 8
		if intra && i == 0 {
			d = 8
		}
		v := coef[i] / d
		if v >= 0 {
			levels[i] = int32(v + 0.5)
		} else {
			levels[i] = int32(v - 0.5)
		}
	}
}

// dequantize is the inverse of quantize.
func dequantize(levels *[BlockSize * BlockSize]int32, coef *Block, intra bool, qscale int) {
	mat := &interQuant
	if intra {
		mat = &intraQuant
	}
	for i := range coef {
		d := float64(mat[i]*qscale) / 8
		if intra && i == 0 {
			d = 8
		}
		coef[i] = float64(levels[i]) * d
	}
}

func clampQScale(q int) int {
	if q < MinQScale {
		return MinQScale
	}
	if q > MaxQScale {
		return MaxQScale
	}
	return q
}
