package codec

import "testing"

// FuzzDecodeFrame drives the frame decoder with arbitrary payloads for
// both frame types; it must never panic.
func FuzzDecodeFrame(f *testing.F) {
	c := clip(&testing.T{})
	enc, err := NewEncoder(c.W, c.H, 2, 4)
	if err != nil {
		f.Fatal(err)
	}
	var iData, pData []byte
	for i := 0; i < 2; i++ {
		ef, err := enc.Encode(c.Frame(i))
		if err != nil {
			f.Fatal(err)
		}
		if ef.Type == IFrame {
			iData = ef.Data
		} else {
			pData = ef.Data
		}
	}
	f.Add(uint8(0), uint8(4), iData)
	f.Add(uint8(1), uint8(4), pData)
	f.Add(uint8(0), uint8(31), []byte{0xFF, 0x00, 0xAA})
	f.Fuzz(func(t *testing.T, ft uint8, q uint8, data []byte) {
		dec, err := NewDecoder(c.W, c.H)
		if err != nil {
			t.Fatal(err)
		}
		// Prime a reference so P frames have one.
		prime := &EncodedFrame{Type: IFrame, QScale: 4, Data: iData}
		if _, err := dec.Decode(prime); err != nil {
			t.Fatal(err)
		}
		dec.Decode(&EncodedFrame{Type: FrameType(ft % 2), QScale: int(q), Data: data})
	})
}
