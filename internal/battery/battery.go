// Package battery models the PDA battery whose life the whole technique
// exists to extend (§1: "battery life still remains a major limitation of
// portable devices"). It provides a lithium-ion pack model with a
// Peukert-style rate correction — high discharge rates yield less usable
// capacity — and a discharge simulation that turns playback power traces
// into minutes of video per charge, the user-visible quantity behind the
// savings percentages.
package battery

import (
	"fmt"
	"math"

	"repro/internal/power"
)

// Pack describes a battery pack.
type Pack struct {
	// NominalVolts is the pack voltage (Li-ion single cell: 3.7 V).
	NominalVolts float64
	// CapacitymAh is the rated capacity at the rated discharge time.
	CapacitymAh float64
	// PeukertExponent models rate dependence (1.0 = ideal; Li-ion packs
	// sit around 1.03–1.10).
	PeukertExponent float64
	// RatedHours is the discharge time at which CapacitymAh was rated
	// (typically 5 h for small packs).
	RatedHours float64
}

// IPAQ1900 returns the iPAQ h5555's stock pack: a 1250 mAh 3.7 V Li-ion.
func IPAQ1900() *Pack {
	return &Pack{NominalVolts: 3.7, CapacitymAh: 1250, PeukertExponent: 1.05, RatedHours: 5}
}

// Validate reports parameter problems.
func (p *Pack) Validate() error {
	switch {
	case p.NominalVolts <= 0:
		return fmt.Errorf("battery: non-positive voltage")
	case p.CapacitymAh <= 0:
		return fmt.Errorf("battery: non-positive capacity")
	case p.PeukertExponent < 1 || p.PeukertExponent > 1.5:
		return fmt.Errorf("battery: implausible Peukert exponent %v", p.PeukertExponent)
	case p.RatedHours <= 0:
		return fmt.Errorf("battery: non-positive rated hours")
	}
	return nil
}

// ratedAmps is the discharge current at which the capacity was rated.
func (p *Pack) ratedAmps() float64 {
	return p.CapacitymAh / 1000 / p.RatedHours
}

// HoursAt returns the runtime at a constant load of the given watts,
// Peukert-corrected: t = RatedHours · (C/(I·RatedHours))^k.
func (p *Pack) HoursAt(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(1)
	}
	amps := watts / p.NominalVolts
	return p.RatedHours * math.Pow(p.ratedAmps()/amps, p.PeukertExponent)
}

// EffectiveWattHours returns the usable energy at the given constant load.
// It shrinks as the load rises — the reason backlight savings buy more
// than their nominal percentage of runtime.
func (p *Pack) EffectiveWattHours(watts float64) float64 {
	h := p.HoursAt(watts)
	if math.IsInf(h, 1) {
		return p.NominalVolts * p.CapacitymAh / 1000
	}
	return watts * h
}

// PlaybackMinutes returns the minutes of video playable per charge when
// the device draws the trace's average power in a loop.
func (p *Pack) PlaybackMinutes(m *power.Model, t *power.Trace) float64 {
	avg := m.AveragePower(t)
	if avg <= 0 {
		return math.Inf(1)
	}
	return p.HoursAt(avg) * 60
}

// Extension compares two playback traces (reference at full backlight,
// optimised with annotations) and returns the playback minutes of each
// plus the relative runtime extension.
func (p *Pack) Extension(m *power.Model, ref, opt *power.Trace) (refMin, optMin, gain float64) {
	refMin = p.PlaybackMinutes(m, ref)
	optMin = p.PlaybackMinutes(m, opt)
	if refMin > 0 && !math.IsInf(refMin, 1) {
		gain = optMin/refMin - 1
	}
	return refMin, optMin, gain
}

// Discharge simulates draining the pack while repeating the trace,
// sampling state of charge at the trace granularity. It returns the total
// runtime in hours and the state-of-charge series (one point per trace
// repetition, descending from 1).
func (p *Pack) Discharge(m *power.Model, t *power.Trace) (hours float64, soc []float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	dur := t.Duration()
	if dur <= 0 {
		return 0, nil, fmt.Errorf("battery: empty trace")
	}
	avg := m.AveragePower(t)
	// Usable energy is rate-corrected once for the trace's average draw;
	// within a repetition the segments drain proportionally to power.
	usable := p.EffectiveWattHours(avg) * 3600 // joules
	perLoop := m.Energy(t)
	if perLoop <= 0 {
		return math.Inf(1), []float64{1}, nil
	}
	remaining := usable
	state := 1.0
	soc = append(soc, state)
	const maxLoops = 1 << 20
	for loops := 0; remaining > 0 && loops < maxLoops; loops++ {
		if perLoop >= remaining {
			hours += remaining / perLoop * dur / 3600
			soc = append(soc, 0)
			return hours, soc, nil
		}
		remaining -= perLoop
		state = remaining / usable
		hours += dur / 3600
		soc = append(soc, state)
	}
	return hours, soc, nil
}
