package battery

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/display"
	"repro/internal/power"
)

func pack() *Pack { return IPAQ1900() }

func trace(level int) *power.Trace {
	var t power.Trace
	t.Append(10, power.State{Decoding: true, NetworkActive: true, BacklightLevel: level})
	return &t
}

func TestPackValidates(t *testing.T) {
	if err := pack().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Pack){
		func(p *Pack) { p.NominalVolts = 0 },
		func(p *Pack) { p.CapacitymAh = -1 },
		func(p *Pack) { p.PeukertExponent = 0.9 },
		func(p *Pack) { p.PeukertExponent = 2 },
		func(p *Pack) { p.RatedHours = 0 },
	}
	for i, mutate := range bad {
		p := pack()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHoursAtRatedLoad(t *testing.T) {
	p := pack()
	// At exactly the rated current the Peukert correction vanishes.
	ratedWatts := p.NominalVolts * p.CapacitymAh / 1000 / p.RatedHours
	if got := p.HoursAt(ratedWatts); math.Abs(got-p.RatedHours) > 1e-9 {
		t.Errorf("HoursAt(rated) = %v, want %v", got, p.RatedHours)
	}
	if got := p.HoursAt(0); !math.IsInf(got, 1) {
		t.Errorf("HoursAt(0) = %v", got)
	}
}

func TestPeukertPenalisesHighLoads(t *testing.T) {
	p := pack()
	lo := p.EffectiveWattHours(0.5)
	hi := p.EffectiveWattHours(4.0)
	if hi >= lo {
		t.Errorf("high-rate capacity %v not below low-rate %v", hi, lo)
	}
	ideal := *p
	ideal.PeukertExponent = 1
	// With k=1 the effective capacity is rate independent.
	a := ideal.EffectiveWattHours(0.5)
	b := ideal.EffectiveWattHours(4.0)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("ideal pack rate-dependent: %v vs %v", a, b)
	}
}

func TestPlaybackMinutesImproveWithDimming(t *testing.T) {
	p := pack()
	m := power.DefaultModel(display.IPAQ5555())
	full := p.PlaybackMinutes(m, trace(255))
	dim := p.PlaybackMinutes(m, trace(60))
	if dim <= full {
		t.Errorf("dimmed playback %v min not above full %v min", dim, full)
	}
	// The Peukert effect makes the runtime gain exceed the raw power
	// saving fraction.
	powerGain := m.AveragePower(trace(255))/m.AveragePower(trace(60)) - 1
	runtimeGain := dim/full - 1
	if runtimeGain <= powerGain {
		t.Errorf("runtime gain %v not above power gain %v (Peukert)", runtimeGain, powerGain)
	}
}

func TestExtension(t *testing.T) {
	p := pack()
	m := power.DefaultModel(display.IPAQ5555())
	ref, opt, gain := p.Extension(m, trace(255), trace(60))
	if ref <= 0 || opt <= ref {
		t.Fatalf("extension: ref %v, opt %v", ref, opt)
	}
	if math.Abs(gain-(opt/ref-1)) > 1e-12 {
		t.Errorf("gain = %v inconsistent", gain)
	}
}

func TestDischargeAgreesWithHoursAt(t *testing.T) {
	p := pack()
	m := power.DefaultModel(display.IPAQ5555())
	tr := trace(128)
	hours, soc, err := p.Discharge(m, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := p.HoursAt(m.AveragePower(tr))
	if math.Abs(hours-want)/want > 0.01 {
		t.Errorf("discharge %v h vs HoursAt %v h", hours, want)
	}
	if len(soc) < 2 || soc[0] != 1 || soc[len(soc)-1] != 0 {
		t.Errorf("soc series endpoints: %v ... %v", soc[0], soc[len(soc)-1])
	}
	for i := 1; i < len(soc); i++ {
		if soc[i] > soc[i-1]+1e-12 {
			t.Fatal("state of charge increased")
		}
	}
}

func TestDischargeValidation(t *testing.T) {
	p := pack()
	m := power.DefaultModel(display.IPAQ5555())
	if _, _, err := p.Discharge(m, &power.Trace{}); err == nil {
		t.Error("empty trace accepted")
	}
	bad := pack()
	bad.CapacitymAh = 0
	if _, _, err := bad.Discharge(m, trace(100)); err == nil {
		t.Error("invalid pack accepted")
	}
}

// Property: runtime decreases monotonically with load.
func TestHoursMonotoneProperty(t *testing.T) {
	p := pack()
	f := func(a, b uint8) bool {
		wa := 0.1 + float64(a)/64
		wb := 0.1 + float64(b)/64
		if wa > wb {
			wa, wb = wb, wa
		}
		return p.HoursAt(wa) >= p.HoursAt(wb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
