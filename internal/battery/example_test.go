package battery_test

import (
	"fmt"

	"repro/internal/battery"
)

// The Peukert effect: lighter loads extract more usable energy, so
// backlight savings buy more runtime than their nominal percentage.
func ExamplePack_HoursAt() {
	pack := battery.IPAQ1900()
	full := pack.HoursAt(2.10) // playback at full backlight
	dim := pack.HoursAt(1.70)  // playback at the 10% quality level
	fmt.Printf("full backlight: %.2fh\n", full)
	fmt.Printf("dimmed:         %.2fh (power -19%%, runtime +%.0f%%)\n",
		dim, (dim/full-1)*100)
	// Output:
	// full backlight: 2.11h
	// dimmed:         2.64h (power -19%, runtime +25%)
}
