package battery

import (
	"math"
	"sync"
	"testing"
)

func TestGaugeDrains(t *testing.T) {
	g, err := NewGauge(IPAQ1900(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	startWh := g.RemainingWh()
	if want := IPAQ1900().EffectiveWattHours(2.0); math.Abs(startWh-want) > 1e-9 {
		t.Errorf("initial RemainingWh = %v, want rate-corrected %v", startWh, want)
	}
	if g.Fraction() != 1 || g.Empty() {
		t.Errorf("fresh gauge: fraction %v, empty %v", g.Fraction(), g.Empty())
	}
	g.Drain(startWh * 3600 / 2)
	if math.Abs(g.Fraction()-0.5) > 1e-9 {
		t.Errorf("half-drained fraction = %v", g.Fraction())
	}
	g.Drain(-5) // negative drains ignored
	if math.Abs(g.Fraction()-0.5) > 1e-9 {
		t.Errorf("negative drain changed fraction: %v", g.Fraction())
	}
	g.Drain(startWh * 3600) // overdrain clamps at empty
	if !g.Empty() || g.RemainingWh() != 0 || g.Fraction() != 0 {
		t.Errorf("overdrained gauge not empty: %v Wh", g.RemainingWh())
	}
}

func TestGaugeWh(t *testing.T) {
	g := NewGaugeWh(2.0)
	if math.Abs(g.RemainingWh()-2.0) > 1e-9 {
		t.Errorf("RemainingWh = %v, want 2.0", g.RemainingWh())
	}
	g.Drain(3600)
	if math.Abs(g.RemainingWh()-1.0) > 1e-9 || math.Abs(g.Fraction()-0.5) > 1e-9 {
		t.Errorf("after 1 Wh drain: %v Wh, fraction %v", g.RemainingWh(), g.Fraction())
	}
	// Battery already empty at start: legal, reads empty immediately.
	empty := NewGaugeWh(0)
	if !empty.Empty() || empty.Fraction() != 0 {
		t.Errorf("zero-Wh gauge not empty")
	}
	neg := NewGaugeWh(-1)
	if !neg.Empty() {
		t.Errorf("negative-Wh gauge not empty")
	}
}

// TestGaugeConcurrentDrainRead hammers one gauge from many draining
// sessions while readers watch the charge (run with -race): the state
// of charge must be monotonically non-increasing under every reader,
// never negative, and end at exactly the sequential total — no drain
// may be lost or double-applied under contention.
func TestGaugeConcurrentDrainRead(t *testing.T) {
	const (
		drainers  = 8
		perDrain  = 2000
		drainStep = 0.25 // equal steps: the float fold is order-independent
	)
	startWh := 4.0
	g := NewGaugeWh(startWh)

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := math.Inf(1)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				wh := g.RemainingWh()
				if wh < 0 {
					t.Errorf("RemainingWh went negative: %v", wh)
					return
				}
				if wh > prev {
					t.Errorf("charge increased under drain: %v -> %v", prev, wh)
					return
				}
				prev = wh
				if fr := g.Fraction(); fr < 0 || fr > 1 {
					t.Errorf("Fraction out of range: %v", fr)
					return
				}
			}
		}()
	}
	var dwg sync.WaitGroup
	for d := 0; d < drainers; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			for i := 0; i < perDrain; i++ {
				g.Drain(drainStep)
			}
		}()
	}
	dwg.Wait()
	close(stopReaders)
	wg.Wait()

	want := startWh - drainers*perDrain*drainStep/3600
	if want < 0 {
		want = 0
	}
	if got := g.RemainingWh(); math.Abs(got-want) > 1e-9 {
		t.Errorf("final RemainingWh = %v, want %v (lost or duplicated drains)", got, want)
	}
	if g.Empty() {
		t.Error("gauge read empty with charge remaining")
	}
	// Drain the rest concurrently past empty: the clamp must hold at 0.
	for d := 0; d < drainers; d++ {
		dwg.Add(1)
		go func() {
			defer dwg.Done()
			g.Drain(startWh * 3600)
		}()
	}
	dwg.Wait()
	if !g.Empty() || g.RemainingWh() != 0 || g.Fraction() != 0 {
		t.Errorf("overdrained gauge not pinned at empty: %v Wh", g.RemainingWh())
	}
}

func TestGaugeErrorsAndNil(t *testing.T) {
	if _, err := NewGauge(nil, 1); err == nil {
		t.Error("nil pack accepted")
	}
	bad := &Pack{NominalVolts: 3.7, CapacitymAh: 0, PeukertExponent: 1.05, RatedHours: 5}
	if _, err := NewGauge(bad, 1); err == nil {
		t.Error("invalid pack accepted")
	}
	var g *Gauge
	g.Drain(10)
	if !g.Empty() || g.RemainingWh() != 0 || g.Fraction() != 0 {
		t.Error("nil gauge not empty/zero")
	}
}
