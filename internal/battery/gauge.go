package battery

import (
	"fmt"
	"sync"
)

// Gauge is a runtime state-of-charge tracker for a live session: the
// pack's usable energy is rate-corrected once for the session's
// projected average draw, then drained joule by joule as the playback
// loop accounts frames. It is what lets the adaptive quality ladder ask
// "will the battery last the clip?" mid-stream instead of only in the
// offline simulation.
//
// A Gauge is safe for concurrent use: a device running several
// sessions (or a fleet simulation modelling one) drains a single pack
// from many playback loops while ladder controllers read it.
type Gauge struct {
	pack *Pack

	mu        sync.Mutex
	usable    float64 // joules at the projected draw
	remaining float64
}

// NewGauge builds a gauge for the pack assuming the session draws
// projectedWatts on average (used once for the Peukert rate
// correction). A nil pack or invalid parameters yield an error.
func NewGauge(pack *Pack, projectedWatts float64) (*Gauge, error) {
	if pack == nil {
		return nil, fmt.Errorf("battery: nil pack")
	}
	if err := pack.Validate(); err != nil {
		return nil, err
	}
	usable := pack.EffectiveWattHours(projectedWatts) * 3600
	return &Gauge{pack: pack, usable: usable, remaining: usable}, nil
}

// NewGaugeWh builds a gauge directly from a usable watt-hour figure —
// the "-battery-wh" command-line path, where the user states remaining
// energy instead of a pack model. Non-positive watt-hours mean an
// already-empty battery, which is legal: the ladder pins the floor rung
// immediately.
func NewGaugeWh(wattHours float64) *Gauge {
	j := wattHours * 3600
	if j < 0 {
		j = 0
	}
	return &Gauge{usable: j, remaining: j}
}

// Drain removes joules from the remaining charge, clamping at empty.
// Nil-safe: a session without a gauge ignores battery entirely.
func (g *Gauge) Drain(joules float64) {
	if g == nil || joules <= 0 {
		return
	}
	g.mu.Lock()
	g.remaining -= joules
	if g.remaining < 0 {
		g.remaining = 0
	}
	g.mu.Unlock()
}

// RemainingWh returns the usable energy left, in watt-hours.
func (g *Gauge) RemainingWh() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.remaining / 3600
}

// Fraction returns the state of charge in [0, 1]. An empty-capacity
// gauge reads 0.
func (g *Gauge) Fraction() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.usable <= 0 {
		return 0
	}
	return g.remaining / g.usable
}

// Empty reports whether the gauge has no usable energy left.
func (g *Gauge) Empty() bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.remaining <= 0
}
