// Package power models the measurement side of the paper's evaluation
// (§5.1): an iPAQ 5555 with its batteries removed, powered through a sense
// resistor, sampled by a PCI DAQ board at 20 k samples/s while a video
// player runs. It provides
//
//   - a whole-device component power model (CPU, network, LCD panel,
//     backlight, base) in which the backlight at full drive accounts for
//     roughly 25–30% of playback power, matching §4;
//   - an analytic energy integrator used for the simulation results
//     (Figure 9 uses backlight power only);
//   - a simulated DAQ that samples the power trace with sensor noise and
//     ADC quantisation, used for the "measured" results (Figure 10).
package power

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/display"
)

// Model is the whole-device power model during video playback.
type Model struct {
	Device *display.Profile
	// CPUDecodeWatts is CPU power while decoding video.
	CPUDecodeWatts float64
	// CPUIdleWatts is CPU power when idle (between frames).
	CPUIdleWatts float64
	// NetworkWatts is the WLAN receive power while streaming.
	NetworkWatts float64
	// NetworkIdleWatts is the WLAN power when the radio is associated
	// but idle (power-save polling between receive bursts). The
	// active/idle split is what makes radio-sleep scheduling visible in
	// the savings numbers: the wireless interface is a dominant
	// component of handheld power, and most of its draw disappears only
	// when the radio actually idles (arXiv 1407.7667).
	NetworkIdleWatts float64
	// BaseWatts covers memory, audio and the rest of the board.
	BaseWatts float64
}

// DefaultModel returns the playback power model for the given device,
// calibrated so the backlight share of total power sits in the 25–30%
// band the paper reports for full drive.
func DefaultModel(dev *display.Profile) *Model {
	return &Model{
		Device:         dev,
		CPUDecodeWatts:   0.90, // 400 MHz XScale decoding MPEG
		CPUIdleWatts:     0.25,
		NetworkWatts:     0.30,
		NetworkIdleWatts: 0.05, // PSM poll/beacon draw, radio otherwise asleep
		BaseWatts:        0.12,
	}
}

// State is the device activity at an instant.
type State struct {
	Decoding       bool
	NetworkActive  bool
	BacklightLevel int
}

// Instant returns the total device power in the given state, in watts.
func (m *Model) Instant(s State) float64 {
	p := m.BaseWatts + m.Device.PanelWatts + m.Device.BacklightPower(s.BacklightLevel)
	if s.Decoding {
		p += m.CPUDecodeWatts
	} else {
		p += m.CPUIdleWatts
	}
	if s.NetworkActive {
		p += m.NetworkWatts
	} else {
		p += m.NetworkIdleWatts
	}
	return p
}

// RadioEnergy integrates only the wireless-interface component of the
// trace, in joules: active receive power while NetworkActive, idle
// (power-save) draw otherwise. This is the quantity chunk batching and
// burst scheduling shrink — separating it from the whole-device total
// makes radio-sleep wins visible in the session report.
func (m *Model) RadioEnergy(t *Trace) float64 {
	var e float64
	for _, seg := range t.Segments {
		if seg.State.NetworkActive {
			e += m.NetworkWatts * seg.Seconds
		} else {
			e += m.NetworkIdleWatts * seg.Seconds
		}
	}
	return e
}

// RadioSeconds splits the trace's duration into radio-active and
// radio-idle seconds.
func (m *Model) RadioSeconds(t *Trace) (active, idle float64) {
	for _, seg := range t.Segments {
		if seg.State.NetworkActive {
			active += seg.Seconds
		} else {
			idle += seg.Seconds
		}
	}
	return active, idle
}

// BacklightShare returns the fraction of total playback power drawn by the
// backlight at full drive — §4's "about 25-30% of total power consumption".
func (m *Model) BacklightShare() float64 {
	s := State{Decoding: true, NetworkActive: true, BacklightLevel: display.MaxLevel}
	return m.Device.BacklightPower(display.MaxLevel) / m.Instant(s)
}

// Segment is a stretch of playback at constant state.
type Segment struct {
	Seconds float64
	State   State
}

// Trace is a recorded playback power profile.
type Trace struct {
	Segments []Segment
}

// Append adds a segment; zero-length segments are dropped.
func (t *Trace) Append(seconds float64, s State) {
	if seconds <= 0 {
		return
	}
	if n := len(t.Segments); n > 0 && t.Segments[n-1].State == s {
		t.Segments[n-1].Seconds += seconds
		return
	}
	t.Segments = append(t.Segments, Segment{Seconds: seconds, State: s})
}

// Duration returns the total trace duration in seconds.
func (t *Trace) Duration() float64 {
	var d float64
	for _, s := range t.Segments {
		d += s.Seconds
	}
	return d
}

// Energy integrates the trace analytically, returning joules.
func (m *Model) Energy(t *Trace) float64 {
	var e float64
	for _, seg := range t.Segments {
		e += m.Instant(seg.State) * seg.Seconds
	}
	return e
}

// BacklightEnergy integrates only the backlight component, in joules —
// the quantity behind the simulated Figure 9 results.
func (m *Model) BacklightEnergy(t *Trace) float64 {
	var e float64
	for _, seg := range t.Segments {
		e += m.Device.BacklightPower(seg.State.BacklightLevel) * seg.Seconds
	}
	return e
}

// AveragePower returns the mean power over the trace, in watts.
func (m *Model) AveragePower(t *Trace) float64 {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	return m.Energy(t) / d
}

// Savings returns the fractional energy saved by trace got relative to
// reference ref, both integrated under model m.
func (m *Model) Savings(ref, got *Trace) float64 {
	er := m.Energy(ref)
	if er == 0 {
		return 0
	}
	return 1 - m.Energy(got)/er
}

// BacklightSavings is Savings restricted to the backlight component.
func (m *Model) BacklightSavings(ref, got *Trace) float64 {
	er := m.BacklightEnergy(ref)
	if er == 0 {
		return 0
	}
	return 1 - m.BacklightEnergy(got)/er
}

// DAQ simulates the paper's data-acquisition setup: supply voltage, shunt
// resistor, sample rate, ADC resolution and sensor noise.
type DAQ struct {
	// SampleRate in samples per second (paper: 20k).
	SampleRate float64
	// SupplyVolts is the bench supply voltage replacing the battery.
	SupplyVolts float64
	// ShuntOhms is the sense resistor across which current is measured.
	ShuntOhms float64
	// FullScaleVolts is the ADC input range for the shunt drop.
	FullScaleVolts float64
	// Bits is the ADC resolution.
	Bits int
	// NoiseSigmaVolts is additive Gaussian noise on the shunt voltage.
	NoiseSigmaVolts float64
	// Seed makes a measurement run deterministic.
	Seed int64
}

// DefaultDAQ mirrors the paper's bench: 20 kS/s on a 5 V supply with a
// 0.1 Ω shunt into a 12-bit ADC.
func DefaultDAQ() *DAQ {
	return &DAQ{
		SampleRate:      20000,
		SupplyVolts:     5.0,
		ShuntOhms:       0.1,
		FullScaleVolts:  0.25,
		Bits:            12,
		NoiseSigmaVolts: 0.0004,
		Seed:            1,
	}
}

// Measurement is the result of a DAQ run over a trace.
type Measurement struct {
	EnergyJoules float64
	AvgWatts     float64
	Samples      int
}

// Measure samples the trace and integrates the measured power. The trace
// is walked segment by segment; each ADC sample reads the (noisy,
// quantised) shunt voltage, converts to current and multiplies by the
// supply voltage, exactly as the bench setup does.
func (d *DAQ) Measure(m *Model, t *Trace) (Measurement, error) {
	if d.SampleRate <= 0 || d.SupplyVolts <= 0 || d.ShuntOhms <= 0 || d.Bits <= 0 || d.Bits > 24 {
		return Measurement{}, fmt.Errorf("power: invalid DAQ configuration %+v", *d)
	}
	rng := rand.New(rand.NewSource(d.Seed))
	dt := 1 / d.SampleRate
	lsb := d.FullScaleVolts / float64(int(1)<<d.Bits)
	var energy float64
	samples := 0
	for _, seg := range t.Segments {
		truePower := m.Instant(seg.State)
		current := truePower / d.SupplyVolts
		vShunt := current * d.ShuntOhms
		n := int(math.Round(seg.Seconds * d.SampleRate))
		for i := 0; i < n; i++ {
			v := vShunt + rng.NormFloat64()*d.NoiseSigmaVolts
			if v < 0 {
				v = 0
			}
			if v > d.FullScaleVolts {
				v = d.FullScaleVolts
			}
			v = math.Round(v/lsb) * lsb
			p := v / d.ShuntOhms * d.SupplyVolts
			energy += p * dt
			samples++
		}
	}
	meas := Measurement{EnergyJoules: energy, Samples: samples}
	if dur := float64(samples) * dt; dur > 0 {
		meas.AvgWatts = energy / dur
	}
	return meas, nil
}

// MeasuredSavings runs the DAQ over a reference and an optimised trace and
// returns the fractional whole-device energy savings — the Figure 10
// quantity.
func (d *DAQ) MeasuredSavings(m *Model, ref, got *Trace) (float64, error) {
	mr, err := d.Measure(m, ref)
	if err != nil {
		return 0, err
	}
	mg, err := d.Measure(m, got)
	if err != nil {
		return 0, err
	}
	if mr.EnergyJoules == 0 {
		return 0, nil
	}
	return 1 - mg.EnergyJoules/mr.EnergyJoules, nil
}

// BatteryLifeHours estimates runtime on a battery of the given watt-hour
// capacity at the trace's average power.
func (m *Model) BatteryLifeHours(t *Trace, wattHours float64) float64 {
	p := m.AveragePower(t)
	if p <= 0 {
		return math.Inf(1)
	}
	return wattHours / p
}
