package power

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV exports the trace as time-series rows (t_start, seconds,
// decoding, network, backlight, watts) for external plotting — the way
// the paper's DAQ logs would be post-processed.
func (m *Model) WriteCSV(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_start_s", "seconds", "decoding", "network", "backlight", "watts"}); err != nil {
		return err
	}
	pos := 0.0
	for _, seg := range t.Segments {
		row := []string{
			strconv.FormatFloat(pos, 'f', 4, 64),
			strconv.FormatFloat(seg.Seconds, 'f', 4, 64),
			strconv.FormatBool(seg.State.Decoding),
			strconv.FormatBool(seg.State.NetworkActive),
			strconv.Itoa(seg.State.BacklightLevel),
			strconv.FormatFloat(m.Instant(seg.State), 'f', 4, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
		pos += seg.Seconds
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace exported by WriteCSV (the power columns are
// ignored; state is reconstructed and power recomputed by the model).
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("power: reading trace CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("power: empty trace CSV")
	}
	tr := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 6 {
			return nil, fmt.Errorf("power: row %d has %d columns", i+1, len(row))
		}
		seconds, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("power: row %d seconds: %w", i+1, err)
		}
		decoding, err := strconv.ParseBool(row[2])
		if err != nil {
			return nil, fmt.Errorf("power: row %d decoding: %w", i+1, err)
		}
		network, err := strconv.ParseBool(row[3])
		if err != nil {
			return nil, fmt.Errorf("power: row %d network: %w", i+1, err)
		}
		level, err := strconv.Atoi(row[4])
		if err != nil {
			return nil, fmt.Errorf("power: row %d backlight: %w", i+1, err)
		}
		tr.Append(seconds, State{Decoding: decoding, NetworkActive: network, BacklightLevel: level})
	}
	return tr, nil
}
