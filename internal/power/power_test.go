package power

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/display"
)

func model() *Model { return DefaultModel(display.IPAQ5555()) }

func fullState() State {
	return State{Decoding: true, NetworkActive: true, BacklightLevel: display.MaxLevel}
}

func TestInstantComposition(t *testing.T) {
	m := model()
	s := fullState()
	want := m.BaseWatts + m.Device.PanelWatts + m.Device.BacklightPower(255) +
		m.CPUDecodeWatts + m.NetworkWatts
	if got := m.Instant(s); math.Abs(got-want) > 1e-12 {
		t.Errorf("Instant = %v, want %v", got, want)
	}
	idle := State{BacklightLevel: 0}
	wantIdle := m.BaseWatts + m.Device.PanelWatts + m.Device.BacklightPower(0) +
		m.CPUIdleWatts + m.NetworkIdleWatts
	if got := m.Instant(idle); math.Abs(got-wantIdle) > 1e-12 {
		t.Errorf("idle Instant = %v, want %v", got, wantIdle)
	}
}

func TestRadioEnergySplit(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(2, State{Decoding: true, NetworkActive: true, BacklightLevel: 100})
	tr.Append(3, State{Decoding: true, NetworkActive: false, BacklightLevel: 100})
	want := m.NetworkWatts*2 + m.NetworkIdleWatts*3
	if got := m.RadioEnergy(&tr); math.Abs(got-want) > 1e-12 {
		t.Errorf("RadioEnergy = %v, want %v", got, want)
	}
	active, idleSecs := m.RadioSeconds(&tr)
	if active != 2 || idleSecs != 3 {
		t.Errorf("RadioSeconds = %v/%v, want 2/3", active, idleSecs)
	}
	// The radio component plus everything else must compose to Instant's
	// whole-device total.
	other := m.Energy(&tr) - m.RadioEnergy(&tr)
	wantOther := (m.BaseWatts + m.Device.PanelWatts + m.Device.BacklightPower(100) + m.CPUDecodeWatts) * 5
	if math.Abs(other-wantOther) > 1e-9 {
		t.Errorf("non-radio energy = %v, want %v", other, wantOther)
	}
}

func TestBacklightShareMatchesPaper(t *testing.T) {
	// §4: "the backlight dominates other components, with about 25-30%
	// of total power consumption" on a typical PDA.
	for _, dev := range display.Devices() {
		share := DefaultModel(dev).BacklightShare()
		if share < 0.22 || share > 0.33 {
			t.Errorf("%s: backlight share %v outside 25-30%% band", dev.Name, share)
		}
	}
}

func TestTraceAppendMergesEqualStates(t *testing.T) {
	var tr Trace
	s := fullState()
	tr.Append(1, s)
	tr.Append(2, s)
	if len(tr.Segments) != 1 || tr.Segments[0].Seconds != 3 {
		t.Errorf("segments = %+v, want one merged 3s segment", tr.Segments)
	}
	tr.Append(0, s)
	tr.Append(-1, s)
	if tr.Duration() != 3 {
		t.Errorf("Duration = %v, want 3", tr.Duration())
	}
	tr.Append(1, State{BacklightLevel: 10})
	if len(tr.Segments) != 2 {
		t.Errorf("state change did not start new segment: %+v", tr.Segments)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(10, fullState())
	want := m.Instant(fullState()) * 10
	if got := m.Energy(&tr); math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
	if got := m.AveragePower(&tr); math.Abs(got-m.Instant(fullState())) > 1e-9 {
		t.Errorf("AveragePower = %v", got)
	}
	if got := m.AveragePower(&Trace{}); got != 0 {
		t.Errorf("empty AveragePower = %v, want 0", got)
	}
}

func TestBacklightEnergyOnlyBacklight(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(5, State{Decoding: true, BacklightLevel: 255})
	want := m.Device.BacklightPower(255) * 5
	if got := m.BacklightEnergy(&tr); math.Abs(got-want) > 1e-9 {
		t.Errorf("BacklightEnergy = %v, want %v", got, want)
	}
}

func TestSavings(t *testing.T) {
	m := model()
	var ref, dim Trace
	ref.Append(10, fullState())
	s := fullState()
	s.BacklightLevel = 0
	dim.Append(10, s)
	got := m.Savings(&ref, &dim)
	wantBacklightCut := m.Device.BacklightPower(255) - m.Device.BacklightPower(0)
	want := wantBacklightCut / m.Instant(fullState())
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Savings = %v, want %v", got, want)
	}
	if m.Savings(&Trace{}, &dim) != 0 {
		t.Error("Savings with empty reference should be 0")
	}
	if bs := m.BacklightSavings(&ref, &dim); bs < 0.9 {
		t.Errorf("BacklightSavings = %v, want ~0.97 (idle power only)", bs)
	}
}

func TestDAQMeasureAccuracy(t *testing.T) {
	m := model()
	d := DefaultDAQ()
	var tr Trace
	tr.Append(1.0, fullState())
	meas, err := d.Measure(m, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if meas.Samples != 20000 {
		t.Errorf("Samples = %d, want 20000 (1s at 20kS/s)", meas.Samples)
	}
	truth := m.Energy(&tr)
	if rel := math.Abs(meas.EnergyJoules-truth) / truth; rel > 0.01 {
		t.Errorf("DAQ energy %v vs true %v: relative error %v > 1%%",
			meas.EnergyJoules, truth, rel)
	}
}

func TestDAQDeterministic(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(0.1, fullState())
	a, err := DefaultDAQ().Measure(m, &tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultDAQ().Measure(m, &tr)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same-seed measurements differ: %+v vs %+v", a, b)
	}
}

func TestDAQRejectsBadConfig(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(0.01, fullState())
	bad := []*DAQ{
		{SampleRate: 0, SupplyVolts: 5, ShuntOhms: 0.1, Bits: 12},
		{SampleRate: 1000, SupplyVolts: 0, ShuntOhms: 0.1, Bits: 12},
		{SampleRate: 1000, SupplyVolts: 5, ShuntOhms: 0, Bits: 12},
		{SampleRate: 1000, SupplyVolts: 5, ShuntOhms: 0.1, Bits: 0},
		{SampleRate: 1000, SupplyVolts: 5, ShuntOhms: 0.1, Bits: 30},
	}
	for i, d := range bad {
		if _, err := d.Measure(m, &tr); err == nil {
			t.Errorf("case %d: bad DAQ accepted", i)
		}
	}
}

func TestMeasuredSavingsTracksAnalytic(t *testing.T) {
	m := model()
	d := DefaultDAQ()
	var ref, dim Trace
	ref.Append(2, fullState())
	s := fullState()
	s.BacklightLevel = 64
	dim.Append(2, s)
	meas, err := d.MeasuredSavings(m, &ref, &dim)
	if err != nil {
		t.Fatal(err)
	}
	analytic := m.Savings(&ref, &dim)
	if math.Abs(meas-analytic) > 0.01 {
		t.Errorf("measured savings %v vs analytic %v", meas, analytic)
	}
}

func TestBatteryLifeHours(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(10, fullState())
	p := m.Instant(fullState())
	want := 7.4 / p // a 2Ah 3.7V pack is ~7.4Wh
	if got := m.BatteryLifeHours(&tr, 7.4); math.Abs(got-want) > 1e-9 {
		t.Errorf("BatteryLifeHours = %v, want %v", got, want)
	}
	if got := m.BatteryLifeHours(&Trace{}, 7.4); !math.IsInf(got, 1) {
		t.Errorf("empty trace battery life = %v, want +Inf", got)
	}
}

// Property: measured energy is within noise bounds of analytic energy for
// arbitrary single-segment traces.
func TestDAQCloseToAnalyticProperty(t *testing.T) {
	m := model()
	d := DefaultDAQ()
	f := func(level uint8, decode bool) bool {
		var tr Trace
		tr.Append(0.05, State{Decoding: decode, BacklightLevel: int(level)})
		meas, err := d.Measure(m, &tr)
		if err != nil {
			return false
		}
		truth := m.Energy(&tr)
		return math.Abs(meas.EnergyJoules-truth)/truth < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: lower backlight level never increases instantaneous power.
func TestInstantMonotoneInBacklightProperty(t *testing.T) {
	m := model()
	f := func(a, b uint8) bool {
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		sa := State{Decoding: true, BacklightLevel: la}
		sb := State{Decoding: true, BacklightLevel: lb}
		return m.Instant(sa) <= m.Instant(sb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	m := model()
	var tr Trace
	tr.Append(1.5, fullState())
	s := fullState()
	s.BacklightLevel = 64
	tr.Append(2.25, s)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf, &tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != len(tr.Segments) {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	if math.Abs(m.Energy(got)-m.Energy(&tr)) > 1e-9 {
		t.Errorf("energy changed through CSV: %v vs %v", m.Energy(got), m.Energy(&tr))
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1,2\n",
		"h1,h2,h3,h4,h5,h6\n0,x,true,true,10,1\n",
		"h1,h2,h3,h4,h5,h6\n0,1,notabool,true,10,1\n",
		"h1,h2,h3,h4,h5,h6\n0,1,true,true,ten,1\n",
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
