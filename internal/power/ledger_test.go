package power

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/display"
	"repro/internal/obs"
)

// playSession drives a ledger through a two-scene session and returns
// the reference traces built the way the offline model builds them.
func playSession(l *Ledger, network bool) (got, ref *Trace) {
	got, ref = &Trace{}, &Trace{}
	scenes := []struct {
		level  int
		frames int
	}{{180, 20}, {255, 10}}
	frame := 0.1
	for i, sc := range scenes {
		l.StartScene(i, sc.level)
		for f := 0; f < sc.frames; f++ {
			l.Frame(frame, sc.level)
			st := State{Decoding: true, NetworkActive: network, BacklightLevel: sc.level}
			got.Append(frame, st)
			st.BacklightLevel = display.MaxLevel
			ref.Append(frame, st)
		}
	}
	return got, ref
}

func TestLedgerMatchesOfflineModel(t *testing.T) {
	dev := display.IPAQ5555()
	model := DefaultModel(dev)
	led := NewLedger(dev)
	got, ref := playSession(led, true)
	rep := led.Report()

	if want := 100 * model.Savings(ref, got); math.Abs(rep.SavedPct-want) > 1e-9 {
		t.Errorf("SavedPct = %v, want offline model's %v", rep.SavedPct, want)
	}
	if want := 100 * model.BacklightSavings(ref, got); math.Abs(rep.BacklightSavedPct-want) > 1e-9 {
		t.Errorf("BacklightSavedPct = %v, want %v", rep.BacklightSavedPct, want)
	}
	if want := model.Energy(got); math.Abs(rep.SessionJoules-want) > 1e-9 {
		t.Errorf("SessionJoules = %v, want %v", rep.SessionJoules, want)
	}
	if rep.SavedJoules <= 0 {
		t.Errorf("SavedJoules = %v, want > 0 (dimmed below full backlight)", rep.SavedJoules)
	}
	if rep.Frames != 30 || len(rep.Scenes) != 2 || rep.Switches != 1 {
		t.Errorf("frames/scenes/switches = %d/%d/%d, want 30/2/1",
			rep.Frames, len(rep.Scenes), rep.Switches)
	}
	if math.Abs(rep.Seconds-3.0) > 1e-9 {
		t.Errorf("Seconds = %v, want 3.0", rep.Seconds)
	}
	wantAvg := (180.0*20 + 255.0*10) / 30
	if math.Abs(rep.AvgLevel-wantAvg) > 1e-9 {
		t.Errorf("AvgLevel = %v, want %v", rep.AvgLevel, wantAvg)
	}
	sc := rep.Scenes[0]
	if sc.Level != 180 || sc.Frames != 20 || math.Abs(sc.Seconds-2.0) > 1e-9 {
		t.Errorf("scene 0 = %+v, want level 180, 20 frames, 2.0s", sc)
	}
}

func TestLedgerNetworkToggle(t *testing.T) {
	dev := display.IPAQ5555()
	model := DefaultModel(dev)
	led := NewLedger(dev)
	led.SetNetworkActive(false)
	got, ref := playSession(led, false)
	rep := led.Report()
	if want := 100 * model.Savings(ref, got); math.Abs(rep.SavedPct-want) > 1e-9 {
		t.Errorf("offline SavedPct = %v, want %v", rep.SavedPct, want)
	}
	// Without WNIC draw the same backlight delta is a larger share of
	// the whole-device total.
	online := NewLedger(dev)
	playSession(online, true)
	if onRep := online.Report(); rep.SavedPct <= onRep.SavedPct {
		t.Errorf("offline SavedPct %v <= online %v, want larger", rep.SavedPct, onRep.SavedPct)
	}
	lg, lr := led.Traces()
	if lg.Duration() != got.Duration() || lr.Duration() != ref.Duration() {
		t.Error("Traces() does not expose the accumulated traces")
	}
}

func TestLedgerQoSAndReset(t *testing.T) {
	led := NewLedger(display.IPAQ5555())
	led.AddWireBytes(1000)
	led.AddAnnotationBytes(47)
	led.Rebuffer(0.5)
	led.Degraded("cycles")
	led.Degraded("cycles") // once per name
	led.Degraded("scenes")
	led.Frame(0.1, 200)

	led.Reset() // a v1 replay: playback restarts, history stays
	led.StartScene(0, 128)
	led.Frame(0.1, 128)
	rep := led.Report()
	if rep.Frames != 1 || len(rep.Scenes) != 1 {
		t.Errorf("post-reset frames/scenes = %d/%d, want 1/1", rep.Frames, len(rep.Scenes))
	}
	if rep.WireBytes != 1000 || rep.AnnotationBytes != 47 {
		t.Errorf("reset dropped wire history: %d/%d", rep.WireBytes, rep.AnnotationBytes)
	}
	if rep.Rebuffers != 1 || math.Abs(rep.StallSeconds-0.5) > 1e-9 {
		t.Errorf("rebuffers = %d (%vs), want 1 (0.5s)", rep.Rebuffers, rep.StallSeconds)
	}
	if len(rep.Degraded) != 2 {
		t.Errorf("degraded = %v, want [cycles scenes]", rep.Degraded)
	}

	s := rep.String()
	if !strings.Contains(s, "power saved: ") {
		t.Errorf("report string missing headline:\n%s", s)
	}
	if !strings.Contains(s, "degraded: cycles, scenes") {
		t.Errorf("report string missing degradations:\n%s", s)
	}
}

func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.StartScene(0, 100)
	l.Frame(0.1, 100)
	l.AddWireBytes(1)
	l.AddAnnotationBytes(1)
	l.Rebuffer(1)
	l.Degraded("x")
	l.SetNetworkActive(false)
	l.SetRung(2)
	l.QualitySwitch(3)
	l.Reset()
	if got, ref := l.Traces(); got != nil || ref != nil {
		t.Error("nil ledger Traces() non-nil")
	}
	rep := l.Report() // zero report, must not panic
	if rep.Frames != 0 {
		t.Errorf("nil ledger report = %+v", rep)
	}
	rep.Emit(nil)
	rep.EmitMetrics(nil, "client")
}

func TestLedgerRungAccounting(t *testing.T) {
	led := NewLedger(display.IPAQ5555())
	led.SetRung(2) // session start names a rung without a switch
	led.Frame(0.1, 200)
	led.Frame(0.1, 200)
	led.QualitySwitch(3) // walk down
	led.Frame(0.1, 200)
	led.QualitySwitch(3) // same rung: not a switch
	led.Frame(0.1, 200)
	led.QualitySwitch(2) // walk back up
	led.Frame(0.1, 200)
	rep := led.Report()
	if rep.QualitySwitches != 2 {
		t.Errorf("QualitySwitches = %d, want 2", rep.QualitySwitches)
	}
	if math.Abs(rep.RungSeconds[2]-0.3) > 1e-9 || math.Abs(rep.RungSeconds[3]-0.2) > 1e-9 {
		t.Errorf("RungSeconds = %v, want rung 2: 0.3s, rung 3: 0.2s", rep.RungSeconds)
	}
	if s := rep.String(); !strings.Contains(s, "ladder:  2 quality switches") ||
		!strings.Contains(s, "rung 2: 0.3s") {
		t.Errorf("report string missing ladder line:\n%s", s)
	}

	// Reset drops per-rung playback time but keeps the switch history,
	// like stalls: both really happened on the wire.
	led.Reset()
	led.Frame(0.1, 200)
	rep = led.Report()
	if rep.QualitySwitches != 2 {
		t.Errorf("post-reset QualitySwitches = %d, want 2", rep.QualitySwitches)
	}
	if math.Abs(rep.RungSeconds[2]-0.1) > 1e-9 || len(rep.RungSeconds) != 1 {
		t.Errorf("post-reset RungSeconds = %v, want rung 2: 0.1s only", rep.RungSeconds)
	}

	// Fixed-quality sessions never name a rung and render no ladder line.
	fixed := NewLedger(display.IPAQ5555())
	fixed.Frame(0.1, 200)
	if frep := fixed.Report(); frep.RungSeconds != nil || strings.Contains(frep.String(), "ladder:") {
		t.Errorf("fixed-quality report grew a ladder line: %+v", frep.RungSeconds)
	}
}

func TestLedgerRadioReport(t *testing.T) {
	dev := display.IPAQ5555()
	model := DefaultModel(dev)
	led := NewLedger(dev)
	got, _ := playSession(led, true)
	rep := led.Report()
	if want := model.RadioEnergy(got); math.Abs(rep.RadioJoules-want) > 1e-9 {
		t.Errorf("RadioJoules = %v, want model's %v", rep.RadioJoules, want)
	}
	if rep.RadioActiveSeconds != got.Duration() || rep.RadioIdleSeconds != 0 {
		t.Errorf("radio seconds = %v/%v, want %v/0",
			rep.RadioActiveSeconds, rep.RadioIdleSeconds, got.Duration())
	}
	if !strings.Contains(rep.String(), "radio:") {
		t.Errorf("report string missing radio line:\n%s", rep.String())
	}

	// A local-file session accounts idle radio draw instead.
	local := NewLedger(dev)
	local.SetNetworkActive(false)
	local.Frame(2, 200)
	lrep := local.Report()
	if want := 2 * model.NetworkIdleWatts; math.Abs(lrep.RadioJoules-want) > 1e-9 {
		t.Errorf("idle RadioJoules = %v, want %v", lrep.RadioJoules, want)
	}
	if lrep.RadioActiveSeconds != 0 || lrep.RadioIdleSeconds != 2 {
		t.Errorf("idle radio seconds = %v/%v, want 0/2",
			lrep.RadioActiveSeconds, lrep.RadioIdleSeconds)
	}
}

func TestReportEmit(t *testing.T) {
	led := NewLedger(display.IPAQ5555())
	led.StartScene(0, 180)
	led.Frame(0.1, 180)
	rep := led.Report()

	var buf bytes.Buffer
	rep.Emit(obs.NewLogger(&buf, obs.LevelDebug))
	out := buf.String()
	if !strings.Contains(out, "msg=power_report") || !strings.Contains(out, "saved_pct=") {
		t.Errorf("power_report event missing:\n%s", out)
	}
	if !strings.Contains(out, "msg=power_scene") {
		t.Errorf("per-scene debug event missing:\n%s", out)
	}

	reg := obs.NewRegistry()
	rep.EmitMetrics(reg, "client")
	rep.EmitMetrics(reg, "client")
	if n := reg.Counter("session_total", "", obs.L("role", "client")).Value(); n != 2 {
		t.Errorf("session_total = %d, want 2", n)
	}
	if v := reg.Gauge("power_session_joules", "", obs.L("role", "client")).Value(); v <= 0 {
		t.Errorf("power_session_joules = %v, want > 0 (accumulating)", v)
	}
	if v := reg.Gauge("power_saved_percent_last", "", obs.L("role", "client")).Value(); math.Abs(v-rep.SavedPct) > 1e-9 {
		t.Errorf("power_saved_percent_last = %v, want %v", v, rep.SavedPct)
	}
}
