package power

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/display"
	"repro/internal/obs"
)

// Ledger is the per-session power accounting the paper's evaluation
// implies but an offline model cannot provide: fed frame by frame from
// the playback loop, it tracks per-scene backlight levels, integrates
// modeled energy against a full-backlight baseline through the same
// Model the offline results use (so the session report and the offline
// estimate agree to within rounding), and carries the QoS side of the
// bargain — bytes on the wire, rebuffer/stall time, dropped side
// channels — so a savings number is never quoted without its cost.
type Ledger struct {
	model *Model
	got   Trace
	ref   Trace

	scenes    []LedgerScene
	frames    int
	levelSum  float64
	switches  int
	prevLevel int

	// rung is the quality-ladder rung (quality index) current frames are
	// served at; -1 until SetRung/QualitySwitch names one. rungSeconds
	// accumulates playback seconds per rung, qswitches counts mid-stream
	// rung changes (the adaptive ladder's QoS cost).
	rung        int
	rungSeconds map[int]float64
	qswitches   int

	// noNetwork flips frame accounting to NetworkActive=false (local
	// file playback); the zero value models a streaming session.
	noNetwork bool

	wireBytes  int64
	annBytes   int64
	rebuffers  int
	stallSecs  float64
	degraded   []string
	degradedIx map[string]bool
}

// LedgerScene is the accounting of one annotated scene: the backlight
// level it played at and how long it ran.
type LedgerScene struct {
	Index   int
	Level   int
	Frames  int
	Seconds float64
}

// NewLedger builds a ledger for a session on the given device, modeled
// under DefaultModel.
func NewLedger(dev *display.Profile) *Ledger {
	return &Ledger{model: DefaultModel(dev), prevLevel: -1, rung: -1}
}

// NewLedgerModel builds a ledger under an explicit power model.
func NewLedgerModel(m *Model) *Ledger {
	return &Ledger{model: m, prevLevel: -1, rung: -1}
}

// SetRung names the quality-ladder rung subsequent frames play at
// without counting a switch (session start, or a resume that continues
// at the rung already in force).
func (l *Ledger) SetRung(rung int) {
	if l != nil {
		l.rung = rung
	}
}

// QualitySwitch records a mid-stream rung change: subsequent frames
// account under the new rung, and the switch counts toward the
// session's quality-switch total (a quality-steady session keeps this
// number small).
func (l *Ledger) QualitySwitch(rung int) {
	if l == nil {
		return
	}
	if l.rung >= 0 && rung != l.rung {
		l.qswitches++
	}
	l.rung = rung
}

// SetNetworkActive sets whether frames account WNIC power. Sessions fed
// from the network leave it true (the default); a player decoding a
// local file sets it false so its report integrates the same states as
// the offline model.
func (l *Ledger) SetNetworkActive(on bool) {
	if l != nil {
		l.noNetwork = !on
	}
}

// Traces exposes the session and full-backlight reference traces, for
// callers that feed them to the DAQ simulation or the CSV writer.
func (l *Ledger) Traces() (got, ref *Trace) {
	if l == nil {
		return nil, nil
	}
	return &l.got, &l.ref
}

// StartScene marks the start of annotated scene index playing at the
// given backlight level.
func (l *Ledger) StartScene(index, level int) {
	if l == nil {
		return
	}
	l.scenes = append(l.scenes, LedgerScene{Index: index, Level: level})
}

// Frame accounts one displayed frame of the given duration at the given
// backlight level, integrating both the session trace and the
// full-backlight reference.
func (l *Ledger) Frame(seconds float64, level int) {
	if l == nil {
		return
	}
	state := State{Decoding: true, NetworkActive: !l.noNetwork, BacklightLevel: level}
	l.got.Append(seconds, state)
	state.BacklightLevel = display.MaxLevel
	l.ref.Append(seconds, state)
	l.frames++
	l.levelSum += float64(level)
	if l.prevLevel >= 0 && level != l.prevLevel {
		l.switches++
	}
	l.prevLevel = level
	if n := len(l.scenes); n > 0 {
		l.scenes[n-1].Frames++
		l.scenes[n-1].Seconds += seconds
	}
	if l.rung >= 0 {
		if l.rungSeconds == nil {
			l.rungSeconds = map[int]float64{}
		}
		l.rungSeconds[l.rung] += seconds
	}
}

// AddWireBytes accounts bytes received on the stream connection.
func (l *Ledger) AddWireBytes(n int64) {
	if l != nil {
		l.wireBytes += n
	}
}

// AddAnnotationBytes accounts annotation side-channel bytes (the
// overhead the paper argues is negligible).
func (l *Ledger) AddAnnotationBytes(n int64) {
	if l != nil {
		l.annBytes += n
	}
}

// Rebuffer accounts one playback stall of the given duration (a
// reconnect backoff, an empty buffer).
func (l *Ledger) Rebuffer(seconds float64) {
	if l == nil {
		return
	}
	l.rebuffers++
	l.stallSecs += seconds
}

// Degraded records a dropped side channel (once per name).
func (l *Ledger) Degraded(what string) {
	if l == nil {
		return
	}
	if l.degradedIx == nil {
		l.degradedIx = map[string]bool{}
	}
	if !l.degradedIx[what] {
		l.degradedIx[what] = true
		l.degraded = append(l.degraded, what)
	}
}

// Reset discards playback accounting (a v1 replay restarts the clip
// from scratch) while keeping wire/stall history, which really
// happened.
func (l *Ledger) Reset() {
	if l == nil {
		return
	}
	l.got = Trace{}
	l.ref = Trace{}
	l.scenes = nil
	l.frames = 0
	l.levelSum = 0
	l.switches = 0
	l.prevLevel = -1
	// Quality switches, like stalls, really happened on the wire and
	// survive the reset; per-rung playback time restarts with playback.
	l.rungSeconds = nil
}

// Report is the sealed end-of-session accounting.
type Report struct {
	Frames   int
	Scenes   []LedgerScene
	Seconds  float64
	AvgLevel float64
	Switches int

	// Modeled whole-device energy of the session and of the same
	// session at full backlight, in joules, integrated under the same
	// model as the offline estimates.
	SessionJoules  float64
	BaselineJoules float64
	SavedJoules    float64
	// SavedPct is 100 × the fractional whole-device energy saved
	// (== Model.Savings); BacklightSavedPct restricts it to the
	// backlight component (== Model.BacklightSavings, the Figure 9
	// quantity).
	SavedPct          float64
	BacklightSavedPct float64
	AvgWatts          float64

	// RadioJoules is the wireless-interface share of SessionJoules;
	// RadioActiveSeconds/RadioIdleSeconds split the session into
	// radio-on and radio-sleep time (arXiv 1407.7667's dominant
	// component, accounted separately so batching wins show up).
	RadioJoules        float64
	RadioActiveSeconds float64
	RadioIdleSeconds   float64

	// QualitySwitches counts mid-stream quality-ladder rung changes;
	// RungSeconds is playback time per rung (nil when the session never
	// named a rung — fixed-quality playback).
	QualitySwitches int
	RungSeconds     map[int]float64

	WireBytes       int64
	AnnotationBytes int64
	Rebuffers       int
	StallSeconds    float64
	Degraded        []string
}

// Report seals the ledger into its end-of-session report.
func (l *Ledger) Report() Report {
	if l == nil {
		return Report{}
	}
	rep := Report{
		Frames:          l.frames,
		Scenes:          l.scenes,
		Seconds:         l.got.Duration(),
		Switches:        l.switches,
		SessionJoules:   l.model.Energy(&l.got),
		BaselineJoules:  l.model.Energy(&l.ref),
		WireBytes:       l.wireBytes,
		AnnotationBytes: l.annBytes,
		Rebuffers:       l.rebuffers,
		StallSeconds:    l.stallSecs,
		Degraded:        l.degraded,
	}
	rep.SavedJoules = rep.BaselineJoules - rep.SessionJoules
	rep.SavedPct = 100 * l.model.Savings(&l.ref, &l.got)
	rep.BacklightSavedPct = 100 * l.model.BacklightSavings(&l.ref, &l.got)
	rep.RadioJoules = l.model.RadioEnergy(&l.got)
	rep.RadioActiveSeconds, rep.RadioIdleSeconds = l.model.RadioSeconds(&l.got)
	rep.QualitySwitches = l.qswitches
	rep.RungSeconds = l.rungSeconds
	if l.frames > 0 {
		rep.AvgLevel = l.levelSum / float64(l.frames)
	}
	if rep.Seconds > 0 {
		rep.AvgWatts = rep.SessionJoules / rep.Seconds
	}
	return rep
}

// String renders the human-readable end-of-session report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "session: %d frames, %d scenes, %.1fs, avg backlight %.0f/%d, %d switches\n",
		r.Frames, len(r.Scenes), r.Seconds, r.AvgLevel, display.MaxLevel, r.Switches)
	fmt.Fprintf(&b, "energy:  %.1f J modeled (%.2f W avg), %.1f J at full backlight\n",
		r.SessionJoules, r.AvgWatts, r.BaselineJoules)
	fmt.Fprintf(&b, "radio:   %.1f J (%.1fs active, %.1fs idle)\n",
		r.RadioJoules, r.RadioActiveSeconds, r.RadioIdleSeconds)
	fmt.Fprintf(&b, "wire:    %d stream bytes, %d annotation bytes, %d rebuffers (%.1fs stalled)\n",
		r.WireBytes, r.AnnotationBytes, r.Rebuffers, r.StallSeconds)
	if r.RungSeconds != nil {
		fmt.Fprintf(&b, "ladder:  %d quality switches", r.QualitySwitches)
		for _, rung := range sortedRungs(r.RungSeconds) {
			fmt.Fprintf(&b, ", rung %d: %.1fs", rung, r.RungSeconds[rung])
		}
		b.WriteByte('\n')
	}
	if len(r.Degraded) > 0 {
		fmt.Fprintf(&b, "degraded: %s\n", strings.Join(r.Degraded, ", "))
	}
	fmt.Fprintf(&b, "power saved: %.1f%% (backlight alone: %.1f%%)", r.SavedPct, r.BacklightSavedPct)
	return b.String()
}

// SortedRungs returns the rung indexes the session dwelled on in
// ascending order (empty for fixed-quality playback), so callers can
// render per-rung dwell stably without sorting the map themselves.
func (r Report) SortedRungs() []int {
	if r.RungSeconds == nil {
		return nil
	}
	return sortedRungs(r.RungSeconds)
}

// sortedRungs returns the rung indexes of a RungSeconds map in
// ascending order, for stable report rendering.
func sortedRungs(m map[int]float64) []int {
	rungs := make([]int, 0, len(m))
	for r := range m {
		rungs = append(rungs, r)
	}
	sort.Ints(rungs)
	return rungs
}

// Emit logs the report as structured events: one power_report info
// event, plus one power_scene debug event per scene.
func (r Report) Emit(log *obs.Logger) {
	if log == nil {
		return
	}
	log.Info("power_report",
		"frames", r.Frames,
		"scenes", len(r.Scenes),
		"seconds", fmt.Sprintf("%.2f", r.Seconds),
		"avg_level", fmt.Sprintf("%.1f", r.AvgLevel),
		"switches", r.Switches,
		"session_joules", fmt.Sprintf("%.2f", r.SessionJoules),
		"baseline_joules", fmt.Sprintf("%.2f", r.BaselineJoules),
		"saved_pct", fmt.Sprintf("%.1f", r.SavedPct),
		"backlight_saved_pct", fmt.Sprintf("%.1f", r.BacklightSavedPct),
		"radio_joules", fmt.Sprintf("%.2f", r.RadioJoules),
		"quality_switches", r.QualitySwitches,
		"wire_bytes", r.WireBytes,
		"ann_bytes", r.AnnotationBytes,
		"rebuffers", r.Rebuffers,
		"stall_seconds", fmt.Sprintf("%.2f", r.StallSeconds),
		"degraded", strings.Join(r.Degraded, ","),
	)
	if log.Enabled(obs.LevelDebug) {
		for _, sc := range r.Scenes {
			log.Debug("power_scene",
				"scene", sc.Index,
				"level", sc.Level,
				"frames", sc.Frames,
				"seconds", fmt.Sprintf("%.2f", sc.Seconds),
			)
		}
	}
}

// EmitMetrics folds the report into the power_saved_* / session_*
// metric families under the given role label, so a fleet-wide savings
// figure (1 − power_session_joules / power_baseline_joules) is one
// scrape away. Joules accumulate in float gauges because the counter
// type is integral.
func (r Report) EmitMetrics(reg *obs.Registry, role string) {
	if reg == nil {
		return
	}
	lbl := obs.L("role", role)
	reg.Gauge("power_saved_joules", "Modeled energy saved vs full backlight, accumulated across sessions.", lbl).Add(r.SavedJoules)
	reg.Gauge("power_session_joules", "Modeled session energy, accumulated across sessions.", lbl).Add(r.SessionJoules)
	reg.Gauge("power_baseline_joules", "Modeled full-backlight baseline energy, accumulated across sessions.", lbl).Add(r.BaselineJoules)
	reg.Gauge("power_saved_percent_last", "Whole-device energy saved by the most recent session, percent.", lbl).Set(r.SavedPct)
	reg.Counter("session_total", "Completed playback sessions accounted by the power ledger.", lbl).Inc()
	reg.Counter("session_frames_total", "Frames accounted across sessions.", lbl).Add(uint64(r.Frames))
	reg.Counter("session_scenes_total", "Annotated scenes accounted across sessions.", lbl).Add(uint64(len(r.Scenes)))
	reg.Counter("session_switches_total", "Backlight level switches across sessions.", lbl).Add(uint64(r.Switches))
	reg.Counter("session_quality_switches_total", "Quality-ladder rung switches across sessions.", lbl).Add(uint64(r.QualitySwitches))
	reg.Gauge("power_radio_joules", "Modeled wireless-interface energy, accumulated across sessions.", lbl).Add(r.RadioJoules)
	if r.WireBytes > 0 {
		reg.Counter("session_wire_bytes_total", "Stream bytes on the wire across sessions.", lbl).Add(uint64(r.WireBytes))
	}
	reg.Counter("session_rebuffers_total", "Rebuffer/stall events across sessions.", lbl).Add(uint64(r.Rebuffers))
	reg.Gauge("session_stall_seconds_total", "Seconds spent stalled across sessions.", lbl).Add(r.StallSeconds)
	reg.Counter("session_degraded_total", "Side channels dropped across sessions.", lbl).Add(uint64(len(r.Degraded)))
}
