package annotation

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecode drives the track decoder with arbitrary bytes: it must never
// panic, and any input it accepts must re-encode/decode to an equal track.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("ANB1"))
	f.Add(sampleTrack().Encode())
	long := sampleTrack()
	for i := 0; i < 40; i++ {
		long.Records = append(long.Records, Record{Frames: i + 1, Targets: []uint8{200, 150, 120, 100, 90}})
	}
	f.Add(long.Encode())
	// Degenerate-column seeds: empty column despite records, a run longer
	// than 2^31, and a MaxInt64 run after a partial fill (the signed-
	// overflow regression). All must be rejected without over-allocating.
	empty := hostileHeader()
	f.Add(append(empty, 0, 0, 0, 0))
	huge := hostileHeader()
	huge = append(huge, 0, 0, 0, 1)
	huge = binary.AppendUvarint(huge, 1<<31+5)
	f.Add(append(huge, 9))
	wrap := hostileHeader()
	wrap = append(wrap, 0, 0, 0, 2)
	wrap = binary.AppendUvarint(wrap, 1)
	wrap = append(wrap, 0)
	wrap = binary.AppendUvarint(wrap, math.MaxInt64)
	f.Add(append(wrap, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		re := tr.Encode()
		tr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted track failed: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("record count changed: %d vs %d", len(tr2.Records), len(tr.Records))
		}
		for i := range tr.Records {
			if tr2.Records[i].Frames != tr.Records[i].Frames ||
				!bytes.Equal(tr2.Records[i].Targets, tr.Records[i].Targets) {
				t.Fatalf("record %d changed through re-encode", i)
			}
		}
	})
}
