package annotation_test

import (
	"fmt"

	"repro/internal/annotation"
	"repro/internal/histogram"
	"repro/internal/scene"
)

// An annotation track carries per-scene luminance targets at every offered
// quality level, RLE-compressed into a side channel of a few dozen bytes.
func ExampleFromScenes() {
	scenes := []scene.Scene{
		{Start: 0, End: 100, Hist: histogram.FromLuma([]uint8{40, 60, 200})},
		{Start: 100, End: 160, Hist: histogram.FromLuma([]uint8{90, 100, 110})},
	}
	track := annotation.FromScenes(10, scenes, nil)
	fmt.Printf("%d records, quality levels %v\n", len(track.Records), track.Quality)
	fmt.Printf("scene 0 lossless target: %d/255\n", track.Records[0].Targets[0])
	fmt.Printf("encoded size: %dB\n", track.Size())
	// Output:
	// 2 records, quality levels [0 0.05 0.1 0.15 0.2]
	// scene 0 lossless target: 200/255
	// encoded size: 58B
}

// A cursor walks the track in playback order with O(1) per-frame cost:
// the target changes only at scene boundaries, which is when the client
// re-sets its backlight.
func ExampleTrack_NewCursor() {
	track := &annotation.Track{
		FPS:     10,
		Quality: []float64{0},
		Records: []annotation.Record{
			{Frames: 2, Targets: []uint8{200}},
			{Frames: 2, Targets: []uint8{120}},
		},
	}
	cur := track.NewCursor(0)
	for i := 0; i < 4; i++ {
		target, sceneStart := cur.Next()
		fmt.Printf("frame %d: target %.2f start=%v\n", i, target, sceneStart)
	}
	// Output:
	// frame 0: target 0.78 start=true
	// frame 1: target 0.78 start=false
	// frame 2: target 0.47 start=true
	// frame 3: target 0.47 start=false
}
