package annotation

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// hostileHeader builds a syntactically valid track header for one quality
// level, fps 24 and two scene records, leaving the caller to append the
// single RLE column.
func hostileHeader() []byte {
	var b []byte
	b = append(b, 'A', 'N', 'B', '1')
	b = append(b, 1)   // quality count
	b = append(b, 128) // quality budget
	b = binary.BigEndian.AppendUint16(b, 24)
	b = binary.BigEndian.AppendUint32(b, 2) // record count
	b = binary.AppendUvarint(b, 5)          // record 0 frames
	b = binary.AppendUvarint(b, 7)          // record 1 frames
	return b
}

// TestDecodeDegenerateRLE pins the decoder's behavior on hostile or
// degenerate RLE columns: every case must fail with ErrCorrupt quickly
// instead of over-allocating. The MaxInt64 case is the regression for the
// signed-overflow bug where `len(col)+n > want` wrapped negative and let
// the run through.
func TestDecodeDegenerateRLE(t *testing.T) {
	cases := []struct {
		name string
		col  func() []byte
	}{
		{"run MaxInt64 after partial fill", func() []byte {
			var b []byte
			b = binary.BigEndian.AppendUint32(b, 2) // pair count
			b = binary.AppendUvarint(b, 1)
			b = append(b, 0)
			b = binary.AppendUvarint(b, math.MaxInt64)
			b = append(b, 1)
			return b
		}},
		{"single run longer than 2^31", func() []byte {
			var b []byte
			b = binary.BigEndian.AppendUint32(b, 1)
			b = binary.AppendUvarint(b, 1<<31+5)
			b = append(b, 9)
			return b
		}},
		{"empty column despite records", func() []byte {
			var b []byte
			b = binary.BigEndian.AppendUint32(b, 0)
			return b
		}},
		{"zero-length run", func() []byte {
			var b []byte
			b = binary.BigEndian.AppendUint32(b, 1)
			b = binary.AppendUvarint(b, 0)
			b = append(b, 3)
			return b
		}},
		{"column longer than records", func() []byte {
			var b []byte
			b = binary.BigEndian.AppendUint32(b, 1)
			b = binary.AppendUvarint(b, 3)
			b = append(b, 3)
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append(hostileHeader(), tc.col()...)
			tr, err := Decode(data)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode = (%v, %v), want ErrCorrupt", tr, err)
			}
		})
	}
}

// TestEmptyTrackRoundTrip: a track with zero records encodes columns with
// pair-count 0, which is the one place an empty column is legitimate.
func TestEmptyTrackRoundTrip(t *testing.T) {
	tr := &Track{FPS: 30, Quality: []float64{0, 0.1}}
	dec, err := Decode(tr.Encode())
	if err != nil {
		t.Fatalf("Decode(empty track) error: %v", err)
	}
	if len(dec.Records) != 0 || dec.FPS != 30 || len(dec.Quality) != 2 {
		t.Fatalf("empty track round-trip mismatch: %+v", dec)
	}
}
