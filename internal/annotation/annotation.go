// Package annotation defines the software annotations of the paper's title:
// per-scene luminance summaries computed offline at the server or proxy and
// carried with the video stream, so that the client's only runtime work is
// "a simple multiplication, followed by a table look-up" and a periodic
// backlight adjustment (§4.3).
//
// A track stores, for every scene, the scene length and the scene's target
// luminance at each offered quality level (the paper's server offers the
// same five quality levels to all PDA clients; only the final backlight
// levels are device specific). Tracks are serialised with run-length
// encoding: "the annotations are RLE compressed, so the overhead is
// minimal, in the order of hundreds of bytes" for multi-megabyte clips
// (§4.3).
package annotation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/scene"
)

// Record is the annotation for one scene.
type Record struct {
	// Frames is the scene length in frames; scene start positions are
	// the running sum of preceding lengths.
	Frames int
	// Targets[q] is the scene's required luminance at quality level q,
	// quantised to 0..255 (normalised luminance × 255).
	Targets []uint8
}

// Track is the annotation side-channel for one clip.
type Track struct {
	// FPS is the playback rate the frame counts refer to.
	FPS int
	// Quality lists the clipping budgets offered (fractions, ascending).
	Quality []float64
	// Records holds one entry per scene, in playback order.
	Records []Record
}

// FromScenes profiles detected scenes into an annotation track using the
// paper's quality levels by default (pass nil for quality). The clipping
// budget is applied to each scene's aggregate histogram, so individual
// frames within a scene may exceed it; use FromStats when the budget must
// hold frame by frame.
func FromScenes(fps int, scenes []scene.Scene, quality []float64) *Track {
	if quality == nil {
		quality = compensate.QualityLevels
	}
	t := &Track{FPS: fps, Quality: quality}
	for _, s := range scenes {
		r := Record{Frames: s.Len(), Targets: make([]uint8, len(quality))}
		for qi, q := range quality {
			target := compensate.SceneTarget(s.Hist, q)
			// Quantise upward: rounding a target down would clip more
			// pixels than the budget allows; a level of extra headroom
			// costs almost nothing.
			r.Targets[qi] = uint8(math.Ceil(target * 255))
		}
		t.Records = append(t.Records, r)
	}
	return t
}

// FromStats builds an annotation track whose scene targets honour the
// clipping budget on every individual frame: a scene's target at quality q
// is the maximum over its frames of the frame's own clip level. This is
// the strict reading of the paper's quality guarantee ("the quality
// determines the maximum percentage of pixels that can be clipped") and is
// what the server-side analysis uses. stats must cover exactly the frames
// the scenes partition.
func FromStats(fps int, scenes []scene.Scene, stats []scene.FrameStats, quality []float64) *Track {
	return FromStatsParallel(fps, scenes, stats, quality, 1)
}

// FromStatsParallel is FromStats with the per-quality target columns
// computed by up to workers goroutines — the clip-level computation is
// independent per quality level, so the offered levels fan out across
// cores. Output is identical to FromStats for any worker count: each
// column is a deterministic function of (scenes, stats, quality[qi]).
func FromStatsParallel(fps int, scenes []scene.Scene, stats []scene.FrameStats, quality []float64, workers int) *Track {
	if quality == nil {
		quality = compensate.QualityLevels
	}
	t := &Track{FPS: fps, Quality: quality}
	t.Records = make([]Record, len(scenes))
	for i, s := range scenes {
		t.Records[i] = Record{Frames: s.Len(), Targets: make([]uint8, len(quality))}
	}
	column := func(qi int) {
		q := quality[qi]
		for ri, s := range scenes {
			var target float64
			for _, st := range stats[s.Start:s.End] {
				ft := s.MaxLuma / 255 // fallback when a frame has no histogram
				if st.Hist != nil && st.Hist.Total > 0 {
					ft = compensate.SceneTarget(st.Hist, q)
				}
				if ft > target {
					target = ft
				}
			}
			t.Records[ri].Targets[qi] = uint8(math.Ceil(target * 255))
		}
	}
	if workers <= 1 || len(quality) <= 1 {
		for qi := range quality {
			column(qi)
		}
		return t
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for qi := range quality {
		wg.Add(1)
		sem <- struct{}{}
		go func(qi int) {
			defer wg.Done()
			column(qi)
			<-sem
		}(qi)
	}
	wg.Wait()
	return t
}

// TotalFrames returns the number of frames covered by the track.
func (t *Track) TotalFrames() int {
	n := 0
	for _, r := range t.Records {
		n += r.Frames
	}
	return n
}

// QualityIndex returns the index of the closest offered quality level at
// or below the requested budget (so a client never exceeds the quality
// degradation it asked for).
func (t *Track) QualityIndex(budget float64) int {
	best := 0
	for i, q := range t.Quality {
		if q <= budget+1e-12 {
			best = i
		}
	}
	return best
}

// TargetAt returns the annotated target luminance (0..1) for the given
// frame at quality index qi. It is O(#scenes); playback uses Cursor.
func (t *Track) TargetAt(frameIdx, qi int) float64 {
	pos := 0
	for _, r := range t.Records {
		pos += r.Frames
		if frameIdx < pos {
			return float64(r.Targets[qi]) / 255
		}
	}
	if len(t.Records) == 0 {
		return 1
	}
	last := t.Records[len(t.Records)-1]
	return float64(last.Targets[qi]) / 255
}

// Cursor walks a track in playback order with O(1) per-frame cost — the
// client-side pattern: each frame, ask for the target; it changes only at
// scene boundaries.
type Cursor struct {
	track   *Track
	qi      int
	rec     int
	remain  int
	current float64
}

// NewCursor starts a cursor at frame 0 for quality index qi.
func (t *Track) NewCursor(qi int) *Cursor {
	if qi < 0 || qi >= len(t.Quality) {
		panic(fmt.Sprintf("annotation: quality index %d out of range", qi))
	}
	c := &Cursor{track: t, qi: qi, rec: -1, current: 1}
	c.advance()
	return c
}

func (c *Cursor) advance() {
	c.rec++
	if c.rec < len(c.track.Records) {
		r := c.track.Records[c.rec]
		c.remain = r.Frames
		c.current = float64(r.Targets[c.qi]) / 255
	} else {
		c.remain = math.MaxInt
	}
}

// Next returns the target luminance for the next frame and whether that
// frame starts a new scene (i.e. the backlight should be re-set).
func (c *Cursor) Next() (target float64, sceneStart bool) {
	start := false
	for c.remain == 0 {
		c.advance()
		if c.rec < len(c.track.Records) {
			start = true
		}
	}
	if c.rec == 0 && len(c.track.Records) > 0 && c.track.Records[0].Frames == c.remain {
		start = true // very first frame
	}
	c.remain--
	return c.current, start
}

// LevelsFor resolves the device-specific backlight levels for every record
// and quality level — the computation the server performs during the
// negotiation phase when the client sends its display characteristics
// (or the client performs itself with its own LUT).
func (t *Track) LevelsFor(dev *display.Profile) [][]int {
	dev.BuildInverse()
	levels := make([][]int, len(t.Records))
	for i, r := range t.Records {
		row := make([]int, len(r.Targets))
		for q, tgt := range r.Targets {
			row[q] = dev.LevelFor(float64(tgt) / 255)
		}
		levels[i] = row
	}
	return levels
}

// Binary format:
//
//	magic "ANB1"
//	u8    quality-level count Q
//	Q×u8  quality budgets in 1/255 fraction units
//	u16   fps
//	u32   record count N
//	N×uvarint  scene lengths (frames)
//	Q×RLE      per-quality target byte streams, each RLE framed as
//	           u32 pair-count, then (uvarint run length, u8 value) pairs
//
// Targets are RLE-compressed per quality column because consecutive scenes
// frequently share a quantised target, and columns are more uniform than
// interleaved rows.

var magic = [4]byte{'A', 'N', 'B', '1'}

// ErrCorrupt is returned when decoding malformed annotation bytes.
var ErrCorrupt = errors.New("annotation: corrupt track encoding")

// Encode serialises the track.
func (t *Track) Encode() []byte {
	var buf []byte
	buf = append(buf, magic[:]...)
	buf = append(buf, uint8(len(t.Quality)))
	for _, q := range t.Quality {
		buf = append(buf, uint8(math.Round(q*255)))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(t.FPS))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(t.Records)))
	for _, r := range t.Records {
		buf = binary.AppendUvarint(buf, uint64(r.Frames))
	}
	for qi := range t.Quality {
		col := make([]uint8, len(t.Records))
		for i, r := range t.Records {
			col[i] = r.Targets[qi]
		}
		buf = appendRLE(buf, col)
	}
	return buf
}

// appendRLE frames one RLE-compressed byte column.
func appendRLE(buf []byte, col []uint8) []byte {
	type run struct {
		n int
		v uint8
	}
	var runs []run
	for _, v := range col {
		if len(runs) > 0 && runs[len(runs)-1].v == v {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{1, v})
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(runs)))
	for _, r := range runs {
		buf = binary.AppendUvarint(buf, uint64(r.n))
		buf = append(buf, r.v)
	}
	return buf
}

// Decode parses a track produced by Encode.
func Decode(data []byte) (*Track, error) {
	p := &parser{data: data}
	var m [4]byte
	copy(m[:], p.bytes(4))
	if p.err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	qn := int(p.u8())
	t := &Track{Quality: make([]float64, qn)}
	for i := range t.Quality {
		t.Quality[i] = float64(p.u8()) / 255
	}
	t.FPS = int(p.u16())
	n := int(p.u32())
	if p.err != nil {
		return nil, p.err
	}
	if n > len(data) { // a record costs >=1 byte; cheap sanity bound
		return nil, fmt.Errorf("%w: implausible record count %d", ErrCorrupt, n)
	}
	t.Records = make([]Record, n)
	for i := range t.Records {
		t.Records[i].Frames = int(p.uvarint())
		t.Records[i].Targets = make([]uint8, qn)
	}
	for qi := 0; qi < qn; qi++ {
		col, err := p.rleColumn(n)
		if err != nil {
			return nil, err
		}
		for i, v := range col {
			t.Records[i].Targets[qi] = v
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	return t, nil
}

type parser struct {
	data []byte
	pos  int
	err  error
}

func (p *parser) bytes(n int) []byte {
	if p.err != nil || p.pos+n > len(p.data) {
		p.fail()
		return make([]byte, n)
	}
	b := p.data[p.pos : p.pos+n]
	p.pos += n
	return b
}

func (p *parser) fail() {
	if p.err == nil {
		p.err = ErrCorrupt
	}
}

func (p *parser) u8() uint8   { return p.bytes(1)[0] }
func (p *parser) u16() uint16 { return binary.BigEndian.Uint16(p.bytes(2)) }
func (p *parser) u32() uint32 { return binary.BigEndian.Uint32(p.bytes(4)) }

func (p *parser) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.data[p.pos:])
	if n <= 0 {
		p.fail()
		return 0
	}
	p.pos += n
	return v
}

func (p *parser) rleColumn(want int) ([]uint8, error) {
	pairs := int(p.u32())
	col := make([]uint8, 0, want)
	for i := 0; i < pairs; i++ {
		n := int(p.uvarint())
		v := p.u8()
		if p.err != nil {
			return nil, p.err
		}
		// Compare as "n > want-len(col)", never "len(col)+n > want":
		// a hostile run length near MaxInt64 makes the sum wrap
		// negative, sneaking past the bound and over-allocating.
		if n <= 0 || n > want-len(col) {
			return nil, fmt.Errorf("%w: RLE run overflows column", ErrCorrupt)
		}
		for j := 0; j < n; j++ {
			col = append(col, v)
		}
	}
	if len(col) != want {
		return nil, fmt.Errorf("%w: RLE column short (%d of %d)", ErrCorrupt, len(col), want)
	}
	return col, nil
}

// Size returns the encoded size in bytes — the annotation overhead the
// paper reports as "hundreds of bytes" per clip.
func (t *Track) Size() int { return len(t.Encode()) }

// EncodeLevels serialises a device-specific backlight level table as
// produced by LevelsFor: u32 record count, u8 quality count, then one
// byte per (record, quality) level. This is the payload of the
// container's ChunkDeviceLevels side channel when the server resolves
// levels for the client during negotiation.
func EncodeLevels(levels [][]int) ([]byte, error) {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(levels)))
	qn := 0
	if len(levels) > 0 {
		qn = len(levels[0])
	}
	if qn > 255 {
		return nil, fmt.Errorf("annotation: %d quality levels exceed a byte", qn)
	}
	buf = append(buf, uint8(qn))
	for i, row := range levels {
		if len(row) != qn {
			return nil, fmt.Errorf("annotation: level row %d has %d entries, want %d", i, len(row), qn)
		}
		for _, l := range row {
			if l < 0 || l > 255 {
				return nil, fmt.Errorf("annotation: level %d out of range", l)
			}
			buf = append(buf, uint8(l))
		}
	}
	return buf, nil
}

// DecodeLevels parses an EncodeLevels payload.
func DecodeLevels(data []byte) ([][]int, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("annotation: short level table")
	}
	n := int(binary.BigEndian.Uint32(data))
	qn := int(data[4])
	need := 5 + n*qn
	if n < 0 || qn == 0 && n > 0 || need != len(data) {
		return nil, fmt.Errorf("annotation: level table size mismatch (%d records × %d levels, %dB)", n, qn, len(data))
	}
	out := make([][]int, n)
	pos := 5
	for i := range out {
		row := make([]int, qn)
		for q := range row {
			row[q] = int(data[pos])
			pos++
		}
		out[i] = row
	}
	return out, nil
}
