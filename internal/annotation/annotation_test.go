package annotation

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/histogram"
	"repro/internal/scene"
)

func sceneWith(start, end int, luma ...uint8) scene.Scene {
	return scene.Scene{
		Start:   start,
		End:     end,
		MaxLuma: float64(histogram.FromLuma(luma).Max()),
		Hist:    histogram.FromLuma(luma),
	}
}

func sampleTrack() *Track {
	scenes := []scene.Scene{
		sceneWith(0, 10, 40, 60, 200),
		sceneWith(10, 18, 90, 100, 110),
	}
	return FromScenes(10, scenes, nil)
}

func TestFromScenesDefaults(t *testing.T) {
	tr := sampleTrack()
	if !reflect.DeepEqual(tr.Quality, compensate.QualityLevels) {
		t.Errorf("Quality = %v", tr.Quality)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records))
	}
	if tr.Records[0].Frames != 10 || tr.Records[1].Frames != 8 {
		t.Errorf("frame counts = %d,%d", tr.Records[0].Frames, tr.Records[1].Frames)
	}
	// Lossless target of scene 0 is its max luminance (200/255).
	if tr.Records[0].Targets[0] != 200 {
		t.Errorf("scene 0 lossless target = %d, want 200", tr.Records[0].Targets[0])
	}
	if tr.TotalFrames() != 18 {
		t.Errorf("TotalFrames = %d, want 18", tr.TotalFrames())
	}
}

func TestQualityLevelTargetsMonotone(t *testing.T) {
	tr := sampleTrack()
	for i, r := range tr.Records {
		for q := 1; q < len(r.Targets); q++ {
			if r.Targets[q] > r.Targets[q-1] {
				t.Errorf("record %d: target rose with quality budget: %v", i, r.Targets)
			}
		}
	}
}

func TestQualityIndex(t *testing.T) {
	tr := sampleTrack()
	cases := []struct {
		budget float64
		want   int
	}{
		{0, 0}, {0.03, 0}, {0.05, 1}, {0.07, 1}, {0.10, 2}, {0.20, 4}, {0.9, 4},
	}
	for _, c := range cases {
		if got := tr.QualityIndex(c.budget); got != c.want {
			t.Errorf("QualityIndex(%v) = %d, want %d", c.budget, got, c.want)
		}
	}
}

func TestTargetAt(t *testing.T) {
	tr := sampleTrack()
	if got := tr.TargetAt(0, 0); math.Abs(got-200.0/255) > 1e-9 {
		t.Errorf("TargetAt(0) = %v", got)
	}
	if got := tr.TargetAt(12, 0); math.Abs(got-110.0/255) > 1e-9 {
		t.Errorf("TargetAt(12) = %v", got)
	}
	// Past the end: stick to the last scene.
	if got := tr.TargetAt(99, 0); math.Abs(got-110.0/255) > 1e-9 {
		t.Errorf("TargetAt(99) = %v", got)
	}
}

func TestTargetAtEmptyTrack(t *testing.T) {
	tr := &Track{FPS: 10, Quality: []float64{0}}
	if got := tr.TargetAt(0, 0); got != 1 {
		t.Errorf("empty TargetAt = %v, want safe 1", got)
	}
}

func TestCursorWalksScenes(t *testing.T) {
	tr := sampleTrack()
	cur := tr.NewCursor(0)
	starts := 0
	for i := 0; i < tr.TotalFrames(); i++ {
		target, start := cur.Next()
		if start {
			starts++
		}
		if want := tr.TargetAt(i, 0); math.Abs(target-want) > 1e-9 {
			t.Fatalf("frame %d: cursor target %v, want %v", i, target, want)
		}
	}
	if starts != 2 {
		t.Errorf("scene starts = %d, want 2", starts)
	}
}

func TestCursorPastEndSticks(t *testing.T) {
	tr := sampleTrack()
	cur := tr.NewCursor(1)
	for i := 0; i < tr.TotalFrames(); i++ {
		cur.Next()
	}
	target, start := cur.Next()
	if start {
		t.Error("past-end frame flagged as scene start")
	}
	if want := tr.TargetAt(17, 1); math.Abs(target-want) > 1e-9 {
		t.Errorf("past-end target %v, want %v", target, want)
	}
}

func TestCursorEmptyTrackSafe(t *testing.T) {
	tr := &Track{FPS: 10, Quality: []float64{0}}
	cur := tr.NewCursor(0)
	target, _ := cur.Next()
	if target != 1 {
		t.Errorf("empty-track cursor target = %v, want 1", target)
	}
}

func TestNewCursorPanicsOnBadIndex(t *testing.T) {
	tr := sampleTrack()
	for _, qi := range []int{-1, len(tr.Quality)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCursor(%d) did not panic", qi)
				}
			}()
			tr.NewCursor(qi)
		}()
	}
}

func TestLevelsFor(t *testing.T) {
	tr := sampleTrack()
	dev := display.IPAQ5555()
	levels := tr.LevelsFor(dev)
	if len(levels) != len(tr.Records) {
		t.Fatalf("levels rows = %d", len(levels))
	}
	for i, row := range levels {
		for q, lvl := range row {
			want := dev.LevelFor(float64(tr.Records[i].Targets[q]) / 255)
			if lvl != want {
				t.Errorf("levels[%d][%d] = %d, want %d", i, q, lvl, want)
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrack()
	data := tr.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.FPS != tr.FPS || len(got.Records) != len(tr.Records) {
		t.Fatalf("decoded header mismatch: %+v", got)
	}
	for i := range tr.Records {
		if got.Records[i].Frames != tr.Records[i].Frames {
			t.Errorf("record %d frames mismatch", i)
		}
		if !bytes.Equal(got.Records[i].Targets, tr.Records[i].Targets) {
			t.Errorf("record %d targets mismatch: %v vs %v",
				i, got.Records[i].Targets, tr.Records[i].Targets)
		}
	}
	for i := range tr.Quality {
		if math.Abs(got.Quality[i]-tr.Quality[i]) > 1.0/255 {
			t.Errorf("quality %d = %v, want ~%v", i, got.Quality[i], tr.Quality[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("XXXX"),
		[]byte("ANB1"),                           // truncated after magic
		append([]byte("ANB1"), 5, 0, 12, 25, 38), // truncated quality list
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: Decode accepted garbage", i)
		}
	}
}

func TestDecodeRejectsTruncatedValid(t *testing.T) {
	data := sampleTrack().Encode()
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("Decode accepted truncation at %d", cut)
		}
	}
}

func TestSizeIsHundredsOfBytesForLongClip(t *testing.T) {
	// A 3-minute clip at 10 fps with 4-second scenes: 45 scenes.
	var scenes []scene.Scene
	for i := 0; i < 45; i++ {
		scenes = append(scenes, sceneWith(i*40, (i+1)*40, uint8(50+i%3), uint8(150+i%5)))
	}
	tr := FromScenes(10, scenes, nil)
	size := tr.Size()
	if size > 1024 {
		t.Errorf("annotation size = %dB, paper promises hundreds of bytes", size)
	}
	if size < 16 {
		t.Errorf("annotation size = %dB, implausibly small", size)
	}
}

// Property: encode/decode round-trips arbitrary well-formed tracks.
func TestRoundTripProperty(t *testing.T) {
	f := func(lens []uint16, targets []uint8, qCount uint8) bool {
		qn := int(qCount)%4 + 1
		if len(lens) == 0 {
			return true
		}
		if len(lens) > 50 {
			lens = lens[:50]
		}
		tr := &Track{FPS: 15, Quality: make([]float64, qn)}
		for i := range tr.Quality {
			tr.Quality[i] = float64(i) * 0.05
		}
		for i, l := range lens {
			r := Record{Frames: int(l)%1000 + 1, Targets: make([]uint8, qn)}
			for q := range r.Targets {
				if len(targets) > 0 {
					r.Targets[q] = targets[(i*qn+q)%len(targets)]
				}
			}
			tr.Records = append(tr.Records, r)
		}
		got, err := Decode(tr.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Records, tr.Records)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary mutations of a valid encoding never panics
// (deeper coverage than pure random bytes, which rarely pass the magic).
func TestDecodeMutationProperty(t *testing.T) {
	base := sampleTrack().Encode()
	f := func(pos uint16, val uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = val
		Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLevelTableRoundTrip(t *testing.T) {
	tr := sampleTrack()
	levels := tr.LevelsFor(display.IPAQ5555())
	data, err := EncodeLevels(levels)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLevels(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, levels) {
		t.Errorf("level table round trip: %v vs %v", got, levels)
	}
}

func TestEncodeLevelsValidation(t *testing.T) {
	if _, err := EncodeLevels([][]int{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := EncodeLevels([][]int{{300}}); err == nil {
		t.Error("out-of-range level accepted")
	}
	data, err := EncodeLevels(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLevels(data)
	if err != nil || len(got) != 0 {
		t.Errorf("empty table round trip: %v, %v", got, err)
	}
}

func TestDecodeLevelsRejectsGarbage(t *testing.T) {
	for i, data := range [][]byte{nil, {1}, {0, 0, 0, 2, 3, 1}, {255, 255, 255, 255, 1}} {
		if _, err := DecodeLevels(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeLevelsNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeLevels(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
