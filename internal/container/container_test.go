package container

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/annotation"
	"repro/internal/codec"
)

func track() *annotation.Track {
	return &annotation.Track{
		FPS:     10,
		Quality: []float64{0, 0.05},
		Records: []annotation.Record{
			{Frames: 20, Targets: []uint8{200, 120}},
			{Frames: 15, Targets: []uint8{90, 80}},
		},
	}
}

func header() Header {
	return Header{W: 48, H: 32, FPS: 10, FrameCount: 2, Annotations: track()}
}

func frames() []*codec.EncodedFrame {
	return []*codec.EncodedFrame{
		{Type: codec.IFrame, QScale: 4, Data: []byte{1, 2, 3, 4, 5}},
		{Type: codec.PFrame, QScale: 4, Data: []byte{9, 8}},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, header())
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range frames() {
		if err := w.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	if w.FramesWritten() != 2 {
		t.Errorf("FramesWritten = %d", w.FramesWritten())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := r.Header()
	if h.W != 48 || h.H != 32 || h.FPS != 10 || h.FrameCount != 2 {
		t.Errorf("header = %+v", h)
	}
	if h.Annotations == nil || len(h.Annotations.Records) != 2 {
		t.Fatalf("annotations not carried: %+v", h.Annotations)
	}
	if h.Annotations.Records[0].Targets[0] != 200 {
		t.Errorf("annotation target = %d", h.Annotations.Records[0].Targets[0])
	}
	for i, want := range frames() {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.QScale != want.QScale || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("frame %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestNoAnnotations(t *testing.T) {
	var buf bytes.Buffer
	h := header()
	h.Annotations = nil
	if _, err := NewWriter(&buf, h); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Annotations != nil {
		t.Error("annotations appeared from nowhere")
	}
}

func TestWriterValidation(t *testing.T) {
	bad := []Header{
		{W: 0, H: 10, FPS: 10},
		{W: 10, H: 0, FPS: 10},
		{W: 10, H: 10, FPS: 0},
		{W: 10, H: 10, FPS: 300},
		{W: 70000, H: 10, FPS: 10},
	}
	for i, h := range bad {
		if _, err := NewWriter(io.Discard, h); err == nil {
			t.Errorf("case %d: invalid header accepted", i)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XYZW"),
		[]byte("AVS1"),               // truncated
		append([]byte("AVS2"), 0, 0), // short fixed header
	}
	for i, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReaderToleratesCorruptAnnotation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, header())
	_ = w
	data := buf.Bytes()
	// Header: magic(4) + fixed(10) + chunk header(5); the annotation
	// payload starts at offset 19. Corrupt its magic.
	data[19] ^= 0xFF
	// A damaged annotation track must not kill the stream: the reader
	// records the damage and carries on so playback can degrade to
	// full-backlight passthrough.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("corrupt annotation killed the reader: %v", err)
	}
	h := r.Header()
	if h.Annotations != nil {
		t.Error("corrupt annotation track decoded anyway")
	}
	if h.AnnotationsErr == nil {
		t.Error("annotation damage not recorded")
	}
}

func TestResumeOffsetRoundTrip(t *testing.T) {
	got, err := DecodeResumeOffset(EncodeResumeOffset(1234))
	if err != nil || got != 1234 {
		t.Errorf("round trip: %d, %v", got, err)
	}
	if _, err := DecodeResumeOffset([]byte{1, 2}); err == nil {
		t.Error("short resume offset accepted")
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, header())
	if err := w.WriteFrame(frames()[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFormat) {
		t.Errorf("truncated frame gave %v, want ErrFormat", err)
	}
}

func TestHugePacketRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, header())
	_ = w
	// Hand-craft a frame header with an absurd length.
	buf.Write([]byte{0, 4, 0xFF, 0xFF, 0xFF, 0xFF})
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadFrame(); !errors.Is(err, ErrFormat) {
		t.Errorf("huge packet gave %v, want ErrFormat", err)
	}
}

// Property: header+frames round-trip through the wire format.
func TestRoundTripProperty(t *testing.T) {
	f := func(w16, h16 uint16, fps8 uint8, payloads [][]byte) bool {
		h := Header{
			W:   int(w16)%2000 + 1,
			H:   int(h16)%2000 + 1,
			FPS: int(fps8)%255 + 1,
		}
		if len(payloads) > 16 {
			payloads = payloads[:16]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			return false
		}
		for i, p := range payloads {
			ef := &codec.EncodedFrame{Type: codec.FrameType(i % 2), QScale: i%31 + 1, Data: p}
			if err := w.WriteFrame(ef); err != nil {
				return false
			}
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		if r.Header().W != h.W || r.Header().H != h.H || r.Header().FPS != h.FPS {
			return false
		}
		for i, p := range payloads {
			got, err := r.ReadFrame()
			if err != nil || !bytes.Equal(got.Data, p) || got.QScale != i%31+1 {
				return false
			}
		}
		_, err = r.ReadFrame()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the reader never panics on arbitrary bytes.
func TestReaderNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return true
		}
		for i := 0; i < 4; i++ {
			if _, err := r.ReadFrame(); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExtraChunksRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := header()
	h.Extra = map[uint8][]byte{
		ChunkDecodeCycles: {1, 2, 3, 4},
		ChunkSceneBytes:   {9},
		200:               {42}, // unknown future kind survives
	}
	if _, err := NewWriter(&buf, h); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Header()
	if got.Annotations == nil {
		t.Error("luminance annotations lost")
	}
	if !bytes.Equal(got.Extra[ChunkDecodeCycles], []byte{1, 2, 3, 4}) {
		t.Errorf("decode-cycles chunk = %v", got.Extra[ChunkDecodeCycles])
	}
	if !bytes.Equal(got.Extra[ChunkSceneBytes], []byte{9}) {
		t.Errorf("scene-bytes chunk = %v", got.Extra[ChunkSceneBytes])
	}
	if !bytes.Equal(got.Extra[200], []byte{42}) {
		t.Errorf("unknown chunk = %v", got.Extra[200])
	}
	if _, ok := got.Extra[ChunkLuminance]; ok {
		t.Error("luminance chunk leaked into Extra")
	}
}

func TestLuminanceChunkInExtraRejected(t *testing.T) {
	h := header()
	h.Extra = map[uint8][]byte{ChunkLuminance: {1}}
	if _, err := NewWriter(io.Discard, h); err == nil {
		t.Error("ChunkLuminance in Extra accepted")
	}
}

func TestExtraChunkDeterministicOrder(t *testing.T) {
	h := header()
	h.Extra = map[uint8][]byte{5: {5}, 3: {3}, 9: {9}}
	var a, b bytes.Buffer
	if _, err := NewWriter(&a, h); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(&b, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("chunk encoding not deterministic")
	}
}
