// Package container defines the annotated video stream format: the
// bitstream a server stores and streams to clients, carrying the codec
// frames together with the annotation side-channel. The paper's scheme
// adds annotations "to the video stream at either the server or proxy
// node, with no changes for the client" (§3); here the annotation track
// travels in the stream header so it is available before any frame is
// decoded — the property that lets optimisations start early (§3).
//
// The format is stream-oriented: Writer/Reader operate on io.Writer /
// io.Reader so the same code serves files and TCP connections.
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/annotation"
	"repro/internal/codec"
)

// Magic identifies the stream format ("annotated video stream, v2": v2
// generalised the single annotation blob into typed side-channel chunks).
var Magic = [4]byte{'A', 'V', 'S', '2'}

// ErrFormat is returned for malformed container data.
var ErrFormat = errors.New("container: malformed stream")

// maxPacket bounds a single frame packet (16 MiB), protecting readers from
// hostile length fields.
const maxPacket = 16 << 20

// Side-channel chunk kinds. Unknown kinds are preserved, so old readers
// skip new annotation types gracefully.
const (
	// ChunkLuminance carries the backlight annotation track (the paper's
	// contribution).
	ChunkLuminance uint8 = 1
	// ChunkDecodeCycles carries per-frame decode-complexity annotations
	// for frequency/voltage scaling (§3's "optimizations like
	// frequency/voltage scaling can be applied before decoding").
	ChunkDecodeCycles uint8 = 2
	// ChunkSceneBytes carries per-scene byte counts for network
	// receive scheduling (§3's "network packet optimizations").
	ChunkSceneBytes uint8 = 3
	// ChunkDeviceLevels carries ready-made backlight levels for the
	// client's device, computed by the server during negotiation
	// (§4.3: device-specific levels "can be computed by either the
	// server/proxy ... or by the client itself").
	ChunkDeviceLevels uint8 = 4
	// ChunkResumeOffset carries the global index of the stream's first
	// frame when a server honours a session-resume request: resumption
	// must start at an I-frame, so the server rounds the requested
	// start frame down and tells the client where the stream actually
	// begins (a big-endian uint32).
	ChunkResumeOffset uint8 = 5
)

// ControlFrameType marks an in-band control packet in the frame stream
// rather than video data. Control packets reuse the frame-packet
// framing ([type, qscale, length, payload]) so they flow through
// Writer/Reader unchanged, but are not frames: QScale selects the
// control kind and the payload is kind-specific. Adaptive sessions use
// them to mark mid-stream quality switches; fixed-quality streams never
// contain them, keeping their bytes identical to older servers.
const ControlFrameType uint8 = 0xFF

// EncodeResumeOffset renders a ChunkResumeOffset payload.
func EncodeResumeOffset(frame uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, frame)
}

// DecodeResumeOffset parses a ChunkResumeOffset payload.
func DecodeResumeOffset(data []byte) (uint32, error) {
	if len(data) != 4 {
		return 0, fmt.Errorf("%w: resume offset is %d bytes, want 4", ErrFormat, len(data))
	}
	return binary.BigEndian.Uint32(data), nil
}

// Header describes the stream.
type Header struct {
	W, H       int
	FPS        int
	FrameCount int // total frames that will follow; 0 if unknown (live)
	// Annotations is the backlight annotation track, or nil when the
	// stream is not annotated (the baseline configuration). It is
	// serialised as the ChunkLuminance side channel.
	Annotations *annotation.Track
	// AnnotationsErr records a ChunkLuminance payload that failed to
	// decode. A damaged annotation track must not kill playback — the
	// paper's scheme adds annotations "with no changes for the client",
	// so readers degrade to full-backlight passthrough (the player) or
	// retry the fetch (the stream client) instead of erroring out.
	// Never set by Writer; only populated by NewReader.
	AnnotationsErr error
	// Extra holds additional side-channel chunks by kind (decode cycles,
	// scene bytes, future types). ChunkLuminance must not appear here.
	Extra map[uint8][]byte
}

// Writer serialises a stream.
type Writer struct {
	w      io.Writer
	frames int
}

// NewWriter writes the header and returns a Writer for the frames.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.W <= 0 || h.H <= 0 || h.W > 0xFFFF || h.H > 0xFFFF {
		return nil, fmt.Errorf("container: invalid dimensions %dx%d", h.W, h.H)
	}
	if h.FPS <= 0 || h.FPS > 255 {
		return nil, fmt.Errorf("container: invalid fps %d", h.FPS)
	}
	if _, ok := h.Extra[ChunkLuminance]; ok {
		return nil, fmt.Errorf("container: ChunkLuminance belongs in Header.Annotations")
	}
	var buf []byte
	buf = append(buf, Magic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.W))
	buf = binary.BigEndian.AppendUint16(buf, uint16(h.H))
	buf = append(buf, uint8(h.FPS))
	buf = binary.BigEndian.AppendUint32(buf, uint32(h.FrameCount))

	type chunk struct {
		kind uint8
		data []byte
	}
	var chunks []chunk
	if h.Annotations != nil {
		chunks = append(chunks, chunk{ChunkLuminance, h.Annotations.Encode()})
	}
	// Deterministic chunk order: ascending kind.
	for kind := 0; kind <= 255; kind++ {
		if data, ok := h.Extra[uint8(kind)]; ok {
			chunks = append(chunks, chunk{uint8(kind), data})
		}
	}
	if len(chunks) > 255 {
		return nil, fmt.Errorf("container: too many side-channel chunks")
	}
	buf = append(buf, uint8(len(chunks)))
	for _, c := range chunks {
		if len(c.data) > maxPacket {
			return nil, fmt.Errorf("container: chunk %d is %dB, exceeds limit", c.kind, len(c.data))
		}
		buf = append(buf, c.kind)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.data)))
		buf = append(buf, c.data...)
	}
	if _, err := w.Write(buf); err != nil {
		return nil, fmt.Errorf("container: writing header: %w", err)
	}
	return &Writer{w: w}, nil
}

// FramePacketOverhead is the fixed framing cost of one frame packet:
// [type u8, qscale u8, payload length u32 BE] precede the payload.
const FramePacketOverhead = 6

// AppendFramePacket appends the wire framing of one encoded frame —
// exactly the bytes WriteFrame would emit — to dst and returns the
// extended slice. It lets callers pre-assemble a contiguous packet run
// (a clip's "wire form") once and later stream any span of it with
// WritePackets, guaranteeing by construction that the pre-assembled
// bytes cannot drift from the per-frame writer.
func AppendFramePacket(dst []byte, ef *codec.EncodedFrame) ([]byte, error) {
	if len(ef.Data) > maxPacket {
		return nil, fmt.Errorf("container: frame packet %dB exceeds limit", len(ef.Data))
	}
	dst = append(dst, uint8(ef.Type), uint8(ef.QScale))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ef.Data)))
	return append(dst, ef.Data...), nil
}

// WriteFrame appends one encoded frame packet.
func (w *Writer) WriteFrame(ef *codec.EncodedFrame) error {
	if len(ef.Data) > maxPacket {
		return fmt.Errorf("container: frame packet %dB exceeds limit", len(ef.Data))
	}
	var hdr [6]byte
	hdr[0] = uint8(ef.Type)
	hdr[1] = uint8(ef.QScale)
	binary.BigEndian.PutUint32(hdr[2:], uint32(len(ef.Data)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("container: writing frame header: %w", err)
	}
	if _, err := w.w.Write(ef.Data); err != nil {
		return fmt.Errorf("container: writing frame payload: %w", err)
	}
	w.frames++
	return nil
}

// WritePackets writes pre-framed packet bytes (AppendFramePacket
// framing) straight through and accounts count packets. Callers may
// split one packet run across several calls — for write-deadline or
// cancellation granularity — attributing the packet count to whichever
// call they like; the byte stream is identical either way.
func (w *Writer) WritePackets(p []byte, count int) error {
	if len(p) > 0 {
		if _, err := w.w.Write(p); err != nil {
			return fmt.Errorf("container: writing frame packets: %w", err)
		}
	}
	w.frames += count
	return nil
}

// ReadPacketsFrom streams n bytes of pre-framed packet data from r,
// accounting count packets. The copy goes through io.CopyN, so a
// destination with a ReadFrom fast path (a TCP connection moving
// file-backed bytes with sendfile) is used when available.
func (w *Writer) ReadPacketsFrom(r io.Reader, n int64, count int) error {
	if _, err := io.CopyN(w.w, r, n); err != nil {
		return fmt.Errorf("container: streaming frame packets: %w", err)
	}
	w.frames += count
	return nil
}

// FramesWritten returns the number of frame packets written.
func (w *Writer) FramesWritten() int { return w.frames }

// Reader parses a stream.
type Reader struct {
	r      io.Reader
	header Header
}

// NewReader reads and validates the header.
func NewReader(r io.Reader) (*Reader, error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrFormat, err)
	}
	if m != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m)
	}
	var fixed [10]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %w", ErrFormat, err)
	}
	h := Header{
		W:          int(binary.BigEndian.Uint16(fixed[0:2])),
		H:          int(binary.BigEndian.Uint16(fixed[2:4])),
		FPS:        int(fixed[4]),
		FrameCount: int(binary.BigEndian.Uint32(fixed[5:9])),
	}
	if h.W <= 0 || h.H <= 0 || h.FPS <= 0 {
		return nil, fmt.Errorf("%w: invalid header %dx%d@%d", ErrFormat, h.W, h.H, h.FPS)
	}
	chunkCount := int(fixed[9])
	for i := 0; i < chunkCount; i++ {
		var ch [5]byte
		if _, err := io.ReadFull(r, ch[:]); err != nil {
			return nil, fmt.Errorf("%w: short chunk header: %w", ErrFormat, err)
		}
		kind := ch[0]
		n := binary.BigEndian.Uint32(ch[1:])
		if n > maxPacket {
			return nil, fmt.Errorf("%w: chunk %d is %dB, exceeds limit", ErrFormat, kind, n)
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("%w: short chunk payload: %w", ErrFormat, err)
		}
		if kind == ChunkLuminance {
			tr, err := annotation.Decode(data)
			if err != nil {
				// Tolerate a corrupt annotation track: record the
				// damage and keep parsing so callers can degrade
				// gracefully instead of dying.
				h.AnnotationsErr = fmt.Errorf("%w: %v", ErrFormat, err)
				continue
			}
			h.Annotations = tr
			continue
		}
		if h.Extra == nil {
			h.Extra = map[uint8][]byte{}
		}
		h.Extra[kind] = data
	}
	return &Reader{r: r, header: h}, nil
}

// Header returns the parsed stream header.
func (r *Reader) Header() Header { return r.header }

// ReadFrame returns the next frame packet, or io.EOF cleanly at stream end.
func (r *Reader) ReadFrame() (*codec.EncodedFrame, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short frame header: %w", ErrFormat, err)
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > maxPacket {
		return nil, fmt.Errorf("%w: frame packet %dB exceeds limit", ErrFormat, n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return nil, fmt.Errorf("%w: short frame payload: %w", ErrFormat, err)
	}
	return &codec.EncodedFrame{
		Type:   codec.FrameType(hdr[0]),
		QScale: int(hdr[1]),
		Data:   data,
	}, nil
}
