package container

import (
	"bytes"
	"testing"
)

// FuzzDecodeResumeOffset pins the side-channel decoder against hostile
// payload lengths.
func FuzzDecodeResumeOffset(f *testing.F) {
	f.Add(EncodeResumeOffset(0))
	f.Add(EncodeResumeOffset(1 << 30))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		off, err := DecodeResumeOffset(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeResumeOffset(off), data) {
			t.Fatalf("resume offset %d does not round-trip", off)
		}
	})
}
