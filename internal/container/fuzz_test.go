package container

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader drives the container parser with arbitrary bytes; it must
// never panic and never allocate absurd buffers.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, header())
	if err != nil {
		f.Fatal(err)
	}
	for _, ef := range frames() {
		if err := w.WriteFrame(ef); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	f.Add([]byte("AVS2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 32; i++ {
			if _, err := r.ReadFrame(); err != nil {
				if err != io.EOF && err == nil {
					t.Fatal("nil error with no frame")
				}
				return
			}
		}
	})
}
