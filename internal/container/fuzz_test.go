package container

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader drives the container parser with arbitrary bytes; it must
// never panic, never allocate absurd buffers, and fail only with the
// typed ErrFormat so stream clients can classify the damage.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, header())
	if err != nil {
		f.Fatal(err)
	}
	for _, ef := range frames() {
		if err := w.WriteFrame(ef); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	f.Add([]byte("AVS2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("untyped header error: %v", err)
			}
			return
		}
		for i := 0; i < 1024; i++ {
			if _, err := r.ReadFrame(); err != nil {
				if err != io.EOF && !errors.Is(err, ErrFormat) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
		}
	})
}
