// Package compensate implements the paper's image compensation step
// (§4.1): the backlight is dimmed and the image is simultaneously
// brightened so that the perceived intensity I = ρ·L·Y of every
// (unclipped) pixel is unchanged.
//
// Two compensation methods are defined by the paper; contrast enhancement
// C' = min(1, C·k) with k = L/L' is the one used in its experiments, with
// brightness compensation C' = min(1, C+δC) as the alternative. The
// scene's backlight target comes from its luminance histogram and the
// user-selected quality level — the fraction of very bright pixels that
// may be clipped (0%, 5%, 10%, 15% and 20% in the paper).
package compensate

import (
	"fmt"
	"math"

	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
)

// QualityLevels are the clipping budgets evaluated in the paper
// (fraction of high-luminance pixels allowed to clip).
var QualityLevels = []float64{0, 0.05, 0.10, 0.15, 0.20}

// ValidateBudget checks a requested clipping budget against the quality
// ladder. A budget outside [0, worst rung] is a configuration error to
// report, not something to clamp silently — the caller asked for a
// quality the ladder cannot express.
func ValidateBudget(q float64) error {
	worst := QualityLevels[len(QualityLevels)-1]
	if q < 0 || q > worst {
		return fmt.Errorf("quality %g outside the ladder: pick a clipping budget between 0 and %g (the paper's rungs are %v)",
			q, worst, QualityLevels)
	}
	return nil
}

// Method selects the compensation operator.
type Method int

const (
	// ContrastEnhancement multiplies all pixels by a constant k (the
	// method the paper uses: k is chosen as L/L' so the perceived
	// intensity product stays constant).
	ContrastEnhancement Method = iota
	// BrightnessCompensation adds a constant to all pixels.
	BrightnessCompensation
	// ToneMapping applies the gain through a soft shoulder instead of
	// hard clipping, in the spirit of dynamic tone mapping for backlight
	// scaling [Iranli & Pedram, DAC 2005]: bright pixels are compressed
	// rather than lost, trading a small global distortion for the
	// absence of clipping artifacts.
	ToneMapping
)

func (m Method) String() string {
	switch m {
	case ContrastEnhancement:
		return "contrast"
	case BrightnessCompensation:
		return "brightness"
	case ToneMapping:
		return "tonemap"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// toneKnee is where the tone-mapping shoulder starts (fraction of full
// scale after gain).
const toneKnee = 0.85

// toneMap compresses x (normalised, possibly >1 after gain) through a
// soft shoulder: identity up to the knee, exponential rolloff towards 1
// above it. Monotone, continuous, bounded by 1.
func toneMap(x float64) float64 {
	if x <= toneKnee {
		return x
	}
	return toneKnee + (1-toneKnee)*(1-math.Exp(-(x-toneKnee)/(1-toneKnee)))
}

// SceneTarget returns the normalised luminance (0..1) the scene must be
// able to display after compensation: the scene histogram's clip level for
// the given quality budget. With budget 0 this is the scene maximum
// (lossless); larger budgets sacrifice the brightest pixels.
func SceneTarget(h *histogram.H, budget float64) float64 {
	return float64(h.ClipLevel(budget)) / 255
}

// Plan is the per-scene compensation decision for one device.
type Plan struct {
	// Target is the scene luminance ceiling after clipping, 0..1.
	Target float64
	// Level is the backlight level to set on the device.
	Level int
	// K is the contrast-enhancement gain applied upstream, equal to
	// L(full)/L(Level) so perceived intensity is preserved.
	K float64
	// Delta is the brightness-compensation offset (0..255 units) that
	// matches the same luminance lift at mid-gray, for the alternative
	// method.
	Delta float64
}

// PlanFor computes the compensation plan that displays a scene with the
// given luminance target on the given device. The backlight level is the
// minimal level whose luminance covers the target; the gain compensates
// for exactly the dimming actually applied (which may be less than
// requested when the device cannot dim that far).
func PlanFor(dev *display.Profile, target float64) Plan {
	t := pixel.Clamp01(target)
	level := dev.LevelFor(t)
	l := dev.Luminance(level)
	k := 1.0
	if l > 0 {
		k = dev.Luminance(display.MaxLevel) / l
	}
	// The brightness offset that lifts the scene ceiling to full scale:
	// pixels at target*255 must land at ~255, matching what the gain
	// does to the brightest unclipped pixel.
	delta := (1 - t) * 255 * (1 - 1/k)
	if k <= 1 {
		delta = 0
	}
	return Plan{Target: t, Level: level, K: k, Delta: delta}
}

// Apply compensates a frame in place using the selected method.
func (p Plan) Apply(m Method, f *frame.Frame) {
	switch m {
	case ContrastEnhancement:
		if p.K != 1 {
			k := p.K
			f.MapInPlace(func(px pixel.RGB) pixel.RGB { return px.Scale(k) })
		}
	case BrightnessCompensation:
		if p.Delta != 0 {
			d := p.Delta
			f.MapInPlace(func(px pixel.RGB) pixel.RGB { return px.Add(d) })
		}
	case ToneMapping:
		if p.K != 1 {
			k := p.K
			f.MapInPlace(func(px pixel.RGB) pixel.RGB {
				r, g, b := px.Normalized()
				return pixel.FromNormalized(toneMap(r*k), toneMap(g*k), toneMap(b*k))
			})
		}
	default:
		panic(fmt.Sprintf("compensate: unknown method %d", int(m)))
	}
}

// Compensated returns a compensated copy of f, leaving f untouched.
func (p Plan) Compensated(m Method, f *frame.Frame) *frame.Frame {
	g := f.Clone()
	p.Apply(m, g)
	return g
}

// ClippedFraction returns the fraction of pixels of f whose luminance
// saturates under the plan's gain — the realised quality degradation.
func (p Plan) ClippedFraction(f *frame.Frame) float64 {
	if p.K <= 1 {
		return 0
	}
	limit := 255 / p.K
	clipped := 0
	for _, px := range f.Pix {
		if px.Luma() > limit+1e-9 {
			clipped++
		}
	}
	return float64(clipped) / float64(len(f.Pix))
}

// Fidelity quantifies how well the compensated frame at the dimmed
// backlight reproduces the original at full backlight, in perceived
// intensity terms (no camera in the loop; package camera provides the
// measured variant).
type Fidelity struct {
	// MeanAbsErr is the mean absolute perceived-intensity error,
	// normalised to the full-backlight white intensity.
	MeanAbsErr float64
	// MaxErr is the worst-case pixel error on the same scale.
	MaxErr float64
	// Clipped is the fraction of pixels whose compensated luminance
	// saturated.
	Clipped float64
}

// Evaluate computes the perceived-intensity fidelity of plan p applied to
// frame f (method: contrast enhancement) on device dev.
func Evaluate(dev *display.Profile, p Plan, f *frame.Frame) Fidelity {
	return EvaluateMethod(dev, p, f, ContrastEnhancement)
}

// EvaluateMethod computes perceived-intensity fidelity for any
// compensation method. For tone mapping "clipped" counts pixels in the
// compressed shoulder region rather than hard-saturated ones.
func EvaluateMethod(dev *display.Profile, p Plan, f *frame.Frame, m Method) Fidelity {
	lFull := dev.Luminance(display.MaxLevel)
	lDim := dev.Luminance(p.Level)
	white := dev.Transmittance * lFull
	var sum, max float64
	clipped := 0
	for _, px := range f.Pix {
		y := px.Luma() / 255
		orig := dev.Transmittance * lFull * y
		var yComp float64
		switch m {
		case ContrastEnhancement:
			yComp = y * p.K
			if yComp > 1 {
				yComp = 1
				clipped++
			}
		case BrightnessCompensation:
			yComp = y + p.Delta/255
			if yComp > 1 {
				yComp = 1
				clipped++
			}
		case ToneMapping:
			raw := y * p.K
			yComp = toneMap(raw)
			if raw > toneKnee {
				clipped++
			}
		default:
			panic(fmt.Sprintf("compensate: unknown method %d", int(m)))
		}
		got := dev.Transmittance * lDim * yComp
		err := abs(orig-got) / white
		sum += err
		if err > max {
			max = err
		}
	}
	n := float64(len(f.Pix))
	return Fidelity{MeanAbsErr: sum / n, MaxErr: max, Clipped: float64(clipped) / n}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
