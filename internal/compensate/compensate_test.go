package compensate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
)

func TestQualityLevelsMatchPaper(t *testing.T) {
	want := []float64{0, 0.05, 0.10, 0.15, 0.20}
	if len(QualityLevels) != len(want) {
		t.Fatalf("QualityLevels = %v", QualityLevels)
	}
	for i, q := range want {
		if QualityLevels[i] != q {
			t.Errorf("QualityLevels[%d] = %v, want %v", i, QualityLevels[i], q)
		}
	}
}

func TestSceneTargetLossless(t *testing.T) {
	h := histogram.FromLuma([]uint8{10, 100, 153})
	if got := SceneTarget(h, 0); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("SceneTarget(0) = %v, want 0.6", got)
	}
}

func TestSceneTargetWithBudget(t *testing.T) {
	// 95 dark pixels, 5 bright: a 10% budget clips the bright tail.
	luma := make([]uint8, 0, 100)
	for i := 0; i < 95; i++ {
		luma = append(luma, 51)
	}
	for i := 0; i < 5; i++ {
		luma = append(luma, 255)
	}
	h := histogram.FromLuma(luma)
	if got := SceneTarget(h, 0.10); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("SceneTarget(0.10) = %v, want 0.2", got)
	}
}

func TestPlanForFullBrightness(t *testing.T) {
	dev := display.IPAQ5555()
	p := PlanFor(dev, 1.0)
	if p.Level != display.MaxLevel {
		t.Errorf("Level = %d, want 255", p.Level)
	}
	if math.Abs(p.K-1) > 1e-9 {
		t.Errorf("K = %v, want 1", p.K)
	}
	if p.Delta != 0 {
		t.Errorf("Delta = %v, want 0", p.Delta)
	}
}

func TestPlanForDimsAndCompensates(t *testing.T) {
	dev := display.IPAQ5555()
	p := PlanFor(dev, 0.5)
	if p.Level >= display.MaxLevel || p.Level < dev.MinLevel {
		t.Errorf("Level = %d out of expected range", p.Level)
	}
	wantK := 1 / dev.Luminance(p.Level)
	if math.Abs(p.K-wantK) > 1e-9 {
		t.Errorf("K = %v, want %v", p.K, wantK)
	}
	if p.K < 1 {
		t.Errorf("K = %v < 1; compensation must brighten", p.K)
	}
}

func TestPlanForClampsTarget(t *testing.T) {
	dev := display.IPAQ5555()
	if p := PlanFor(dev, 1.7); p.Level != display.MaxLevel {
		t.Errorf("target>1: level = %d, want 255", p.Level)
	}
	if p := PlanFor(dev, -0.2); p.Level != dev.MinLevel {
		t.Errorf("target<0: level = %d, want min %d", p.Level, dev.MinLevel)
	}
}

func TestApplyContrastScalesPixels(t *testing.T) {
	p := Plan{K: 2}
	f := frame.Solid(2, 2, pixel.Gray(60))
	p.Apply(ContrastEnhancement, f)
	if f.At(0, 0) != pixel.Gray(120) {
		t.Errorf("pixel = %v, want gray 120", f.At(0, 0))
	}
}

func TestApplyBrightnessAddsDelta(t *testing.T) {
	p := Plan{K: 2, Delta: 30}
	f := frame.Solid(2, 2, pixel.Gray(60))
	p.Apply(BrightnessCompensation, f)
	if f.At(0, 0) != pixel.Gray(90) {
		t.Errorf("pixel = %v, want gray 90", f.At(0, 0))
	}
}

func TestApplyUnknownMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown method did not panic")
		}
	}()
	Plan{K: 2}.Apply(Method(99), frame.New(1, 1))
}

func TestCompensatedDoesNotMutate(t *testing.T) {
	p := Plan{K: 2}
	f := frame.Solid(2, 2, pixel.Gray(60))
	g := p.Compensated(ContrastEnhancement, f)
	if f.At(0, 0) != pixel.Gray(60) {
		t.Error("Compensated mutated the input")
	}
	if g.At(0, 0) != pixel.Gray(120) {
		t.Errorf("Compensated result = %v", g.At(0, 0))
	}
}

func TestClippedFraction(t *testing.T) {
	f := frame.New(2, 1)
	f.Set(0, 0, pixel.Gray(100)) // 100*2 = 200: survives
	f.Set(1, 0, pixel.Gray(200)) // 200*2 = 400: clips
	p := Plan{K: 2}
	if got := p.ClippedFraction(f); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ClippedFraction = %v, want 0.5", got)
	}
	if got := (Plan{K: 1}).ClippedFraction(f); got != 0 {
		t.Errorf("K=1 ClippedFraction = %v, want 0", got)
	}
}

func TestEvaluateLosslessIsExact(t *testing.T) {
	// Dark frame, lossless target: compensation preserves perceived
	// intensity exactly (up to 8-bit rounding in real use; Evaluate works
	// on continuous luminance so it is exact here).
	dev := display.IPAQ5555()
	f := frame.Solid(4, 4, pixel.Gray(80))
	target := SceneTarget(histogram.FromFrame(f), 0)
	p := PlanFor(dev, target)
	fid := Evaluate(dev, p, f)
	if fid.Clipped != 0 {
		t.Errorf("lossless plan clipped %v of pixels", fid.Clipped)
	}
	if fid.MeanAbsErr > 0.01 || fid.MaxErr > 0.02 {
		t.Errorf("lossless fidelity err = %+v, want ~0", fid)
	}
}

func TestEvaluateDetectsClipping(t *testing.T) {
	dev := display.IPAQ5555()
	f := frame.New(2, 1)
	f.Set(0, 0, pixel.Gray(40))
	f.Set(1, 0, pixel.Gray(250))
	// Aggressive target well below the bright pixel: it must clip.
	p := PlanFor(dev, 0.3)
	fid := Evaluate(dev, p, f)
	if fid.Clipped != 0.5 {
		t.Errorf("Clipped = %v, want 0.5", fid.Clipped)
	}
	if fid.MaxErr <= 0 {
		t.Error("MaxErr = 0 despite clipping")
	}
}

func TestMethodString(t *testing.T) {
	if ContrastEnhancement.String() != "contrast" ||
		BrightnessCompensation.String() != "brightness" {
		t.Error("Method.String mismatch")
	}
}

// Property: the realised clipped fraction never exceeds the histogram
// budget when the plan is derived from the same frame's histogram. This is
// the end-to-end quality guarantee of the technique on any device.
func TestBudgetRespectedProperty(t *testing.T) {
	devs := display.Devices()
	f := func(samples []uint8, budgetRaw, devRaw uint8) bool {
		if len(samples) == 0 {
			return true
		}
		dev := devs[int(devRaw)%len(devs)]
		budget := float64(budgetRaw) / 255 * 0.20
		fr := frame.New(len(samples), 1)
		for i, s := range samples {
			fr.Pix[i] = pixel.Gray(s)
		}
		h := histogram.FromFrame(fr)
		p := PlanFor(dev, SceneTarget(h, budget))
		return p.ClippedFraction(fr) <= budget+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lower targets never yield higher backlight levels.
func TestPlanMonotoneProperty(t *testing.T) {
	dev := display.Zaurus5600()
	f := func(a, b uint8) bool {
		ta, tb := float64(a)/255, float64(b)/255
		if ta > tb {
			ta, tb = tb, ta
		}
		return PlanFor(dev, ta).Level <= PlanFor(dev, tb).Level
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: K*Luminance(Level) == Luminance(MaxLevel): perceived intensity
// of unclipped pixels is preserved by construction.
func TestGainMatchesDimmingProperty(t *testing.T) {
	for _, dev := range display.Devices() {
		f := func(raw uint8) bool {
			p := PlanFor(dev, float64(raw)/255)
			got := p.K * dev.Luminance(p.Level)
			return math.Abs(got-dev.Luminance(display.MaxLevel)) < 1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", dev.Name, err)
		}
	}
}

func TestToneMapProperties(t *testing.T) {
	// Identity below the knee, monotone, bounded by 1, continuous at knee.
	prev := -1.0
	for i := 0; i <= 300; i++ {
		x := float64(i) / 100
		y := toneMap(x)
		if y < prev {
			t.Fatalf("toneMap not monotone at %v", x)
		}
		prev = y
		if y > 1+1e-12 {
			t.Fatalf("toneMap(%v) = %v exceeds 1", x, y)
		}
		if x <= toneKnee && y != x {
			t.Fatalf("toneMap(%v) = %v below knee, want identity", x, y)
		}
	}
	if d := toneMap(toneKnee+1e-9) - toneKnee; d < 0 || d > 1e-6 {
		t.Errorf("toneMap discontinuous at knee: %v", d)
	}
}

func TestApplyToneMapping(t *testing.T) {
	p := Plan{K: 2}
	f := frame.New(2, 1)
	f.Set(0, 0, pixel.Gray(60))  // 0.47 after gain: below knee, linear
	f.Set(1, 0, pixel.Gray(140)) // 1.10 after gain: in the shoulder
	p.Apply(ToneMapping, f)
	if got := f.At(0, 0); got != pixel.Gray(120) {
		t.Errorf("below-knee pixel = %v, want gray 120", got)
	}
	bright := f.At(1, 0)
	if bright.R == 255 {
		t.Error("tone-mapped highlight hard-clipped to 255")
	}
	if bright.R < 230 {
		t.Errorf("tone-mapped highlight %v implausibly dark", bright)
	}
}

func TestToneMappingPreservesHighlightDetail(t *testing.T) {
	// Hard clipping maps every bright pixel to the same saturated value;
	// tone mapping keeps them distinguishable. This is DTM's argument:
	// structure in the highlights survives.
	p := Plan{K: 2}
	f := frame.New(2, 1)
	f.Set(0, 0, pixel.Gray(150)) // 1.18 after gain
	f.Set(1, 0, pixel.Gray(190)) // 1.49 after gain
	hard := p.Compensated(ContrastEnhancement, f)
	soft := p.Compensated(ToneMapping, f)
	if hard.At(0, 0) != hard.At(1, 0) {
		t.Fatalf("hard clip kept highlights distinct: %v vs %v", hard.At(0, 0), hard.At(1, 0))
	}
	if soft.At(0, 0) == soft.At(1, 0) {
		t.Error("tone mapping collapsed distinct highlights")
	}
	if soft.At(0, 0).Luma() >= soft.At(1, 0).Luma() {
		t.Error("tone mapping broke highlight ordering")
	}
}

func TestEvaluateMethodBrightness(t *testing.T) {
	dev := display.IPAQ5555()
	f := frame.Solid(2, 2, pixel.Gray(100))
	p := PlanFor(dev, 0.6)
	fid := EvaluateMethod(dev, p, f, BrightnessCompensation)
	if fid.MeanAbsErr < 0 || fid.Clipped < 0 {
		t.Errorf("fidelity = %+v", fid)
	}
}

func TestEvaluateMethodUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	EvaluateMethod(display.IPAQ5555(), Plan{K: 1}, frame.New(1, 1), Method(42))
}

func TestToneMappingMethodString(t *testing.T) {
	if ToneMapping.String() != "tonemap" {
		t.Error("ToneMapping.String mismatch")
	}
}

func TestValidateBudget(t *testing.T) {
	for _, q := range QualityLevels {
		if err := ValidateBudget(q); err != nil {
			t.Errorf("ladder level %g rejected: %v", q, err)
		}
	}
	if err := ValidateBudget(0.07); err != nil {
		t.Errorf("in-range budget between rungs rejected: %v", err)
	}
	for _, q := range []float64{-0.01, 0.21, 1} {
		if err := ValidateBudget(q); err == nil {
			t.Errorf("out-of-ladder budget %g accepted", q)
		}
	}
}
