package compensate_test

import (
	"fmt"

	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
)

// The compensation loop: pick a scene target from its histogram under a
// clipping budget, plan the backlight level and gain for a device, and
// apply the paper's contrast enhancement.
func ExamplePlanFor() {
	f := frame.New(10, 1)
	for i := range f.Pix {
		f.Pix[i] = pixel.Gray(uint8(30 + i*5)) // dark ramp, max 75
	}
	f.Set(9, 0, pixel.Gray(250)) // one bright highlight

	h := histogram.FromFrame(f)
	lossless := compensate.SceneTarget(h, 0)
	clipped := compensate.SceneTarget(h, 0.15) // may clip the highlight

	dev := display.IPAQ5555()
	plan := compensate.PlanFor(dev, clipped)
	fmt.Printf("lossless target %.2f, 15%% target %.2f\n", lossless, clipped)
	fmt.Printf("backlight %d/255, gain %.1fx\n", plan.Level, plan.K)

	comp := plan.Compensated(compensate.ContrastEnhancement, f)
	fmt.Printf("dark pixel 30 -> %d\n", comp.At(0, 0).R)
	// Output:
	// lossless target 0.98, 15% target 0.27
	// backlight 46/255, gain 3.6x
	// dark pixel 30 -> 108
}
