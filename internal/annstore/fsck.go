package annstore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Report summarises a store scan — either the fast Open-time scan or a
// full Fsck.
type Report struct {
	// Entries is the number of artifacts indexed when the scan
	// finished (Open) or began (Fsck).
	Entries int
	// OK counts artifacts whose payload verified end to end (Fsck
	// only; Open verifies headers and defers payloads to read time).
	OK int
	// Quarantined counts files moved aside because they failed
	// validation.
	Quarantined int
	// Adopted counts valid artifacts found on disk without a journal
	// record (lost to a crash mid-journal) and re-indexed.
	Adopted int
	// TmpRemoved counts leftover temp files from interrupted atomic
	// writes that were deleted.
	TmpRemoved int
	// Bytes is the total verified payload bytes (Fsck only).
	Bytes int64
}

// Corrupt reports whether the scan found anything it had to quarantine.
func (r Report) Corrupt() bool { return r.Quarantined > 0 }

func (r Report) String() string {
	return fmt.Sprintf("%d entries, %d verified (%d bytes), %d quarantined, %d adopted, %d temp files removed",
		r.Entries, r.OK, r.Bytes, r.Quarantined, r.Adopted, r.TmpRemoved)
}

// Fsck verifies every resident artifact end to end — full read, header
// and payload checksums, key match — quarantining anything that fails,
// and sweeps the objects directory for strays (temp leftovers are
// deleted; valid un-indexed artifacts are adopted, invalid ones
// quarantined). It is the slow, exhaustive counterpart of the Open
// scan, for operators who want a verdict now rather than at read time.
func (s *Store) Fsck() (Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep Report
	if s.closed {
		return rep, errClosed
	}
	rep.Entries = s.ll.Len()
	els := make([]*list.Element, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		els = append(els, el)
	}
	for _, el := range els {
		e := el.Value.(*sentry)
		data, err := os.ReadFile(filepath.Join(s.objectsDir, e.file))
		if err == nil {
			var key Key
			var payload []byte
			key, payload, err = decodeArtifact(data)
			if err == nil && key != e.key {
				err = fmt.Errorf("%w: key mismatch", ErrCorrupt)
			}
			if err == nil {
				rep.OK++
				rep.Bytes += int64(len(payload))
				continue
			}
		}
		s.logf("annstore: fsck: %s failed verification: %v", e.file, err)
		s.dropLocked(el, true)
		s.count("annstore_corrupt_total", corruptHelp, e.key.Kind)
		rep.Quarantined++
	}

	// Stray sweep: after Open this should find nothing, but an
	// operator can point fsck at a store that was copied or hand-edited.
	des, err := os.ReadDir(s.objectsDir)
	if err != nil {
		return rep, err
	}
	indexed := make(map[string]bool, len(s.index))
	for el := s.ll.Front(); el != nil; el = el.Next() {
		indexed[el.Value.(*sentry).file] = true
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || indexed[name] {
			continue
		}
		if !strings.HasSuffix(name, artifactSuffix) {
			os.Remove(filepath.Join(s.objectsDir, name))
			rep.TmpRemoved++
			continue
		}
		if s.adoptOrphan(name) {
			rep.Adopted++
			// Journal the adoption so the next Open needs no re-verify.
			e := s.ll.Front().Value.(*sentry)
			if err := s.appendJournalLocked(journalRec{put: true, file: e.file, size: e.size, crc: e.payloadCRC}); err != nil {
				s.logf("annstore: fsck: journalling adopted %s failed: %v", e.file, err)
			}
		} else {
			rep.Quarantined++
		}
	}
	s.evictLocked()
	s.gauges()
	return rep, nil
}
