// Package annstore is the persistent tier under the annotation-artifact
// cache: a content-addressed, crash-safe artifact store on local disk.
// The paper's scaling story is that annotation work happens once "at the
// server or a proxy" and is amortised over every handheld (§3) — but
// amortisation only holds if the artifacts outlive one process. The
// store lets a drained or crashed streamd restart warm: tracks, encoded
// variants and device level tables computed before the restart are
// served again byte-identically, with zero recomputation.
//
// Crash safety is structural, not best-effort:
//
//   - Every artifact is written atomically: temp file in the same
//     directory, fsync, rename, directory fsync. A kill -9 at any
//     instant leaves either the old file or the new file, never a torn
//     mix under the final name.
//   - Every file carries a checksummed self-describing header (the full
//     key, payload length, payload CRC). Reads re-verify the payload
//     CRC, so damage is detected at the moment it would matter.
//   - A manifest journal (one self-validating record per mutation)
//     makes startup a single sequential read plus one small header read
//     per entry instead of a full store read. A torn journal tail is
//     truncated and the orphan scan re-adopts — after full
//     verification — any artifact the lost records described.
//   - Anything that fails validation is quarantined (moved aside, never
//     served, kept for inspection) and counted, so a corrupt entry
//     costs one recomputation, not a wrong answer.
//
// Keys are anncache.Key — (kind, content digest, quality index, device
// profile) — so the disk tier addresses exactly what the memory tier
// does and a read-through miss path is a straight key pass-down.
package annstore

import (
	"container/list"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/anncache"
	"repro/internal/obs"
)

// Key identifies one stored artifact, exactly as the memory tier keys
// it: (kind, content digest, quality index, device profile).
type Key = anncache.Key

// Options tunes Open.
type Options struct {
	// MaxBytes is the byte budget across artifact files (<= 0 means
	// unlimited). When a Put exceeds it, least-recently-used entries
	// are deleted from disk.
	MaxBytes int64
	// Logf, when non-nil, receives quarantine and recovery notices.
	Logf func(format string, args ...any)
}

// Store is the disk tier. All methods are safe for concurrent use.
type Store struct {
	mu            sync.Mutex
	dir           string
	objectsDir    string
	quarantineDir string
	journalPath   string
	journal       *os.File
	journalRecs   int // records in the journal file, live + dead
	capacity      int64
	used          int64
	ll            *list.List // front = most recently used; values are *sentry
	index         map[Key]*list.Element
	logf          func(string, ...any)
	closed        bool
	quarantined   int64 // lifetime count, including Open-time

	reg       *obs.Registry
	regLabels []obs.Label
	// Tallies accumulated before an observer attaches (Open-time
	// quarantines); SetObserver flushes them into the counters.
	pendingCorrupt     uint64
	pendingQuarantined uint64

	openRep Report
}

// sentry is one indexed artifact file.
type sentry struct {
	key        Key
	file       string
	size       int64 // whole file: header + payload
	payloadCRC uint32
}

var errClosed = errors.New("annstore: store is closed")

// Open loads (or creates) the store at dir: it replays the journal,
// validates every referenced file's size and header, quarantines
// anything torn or corrupt, removes leftover temp files, and adopts
// journal-less artifacts after fully verifying them. The scan reads
// only headers, so startup cost is one small read per entry (see
// BenchmarkStoreWarmStart); payloads are CRC-checked on every Get.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:           dir,
		objectsDir:    filepath.Join(dir, "objects"),
		quarantineDir: filepath.Join(dir, "quarantine"),
		journalPath:   filepath.Join(dir, "journal"),
		capacity:      opts.MaxBytes,
		ll:            list.New(),
		index:         make(map[Key]*list.Element),
		logf:          opts.Logf,
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	for _, d := range []string{s.objectsDir, s.quarantineDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	dirty, err := s.scan()
	if err != nil {
		return nil, err
	}
	if dirty {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	j, err := os.OpenFile(s.journalPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.journal = j
	s.evictLocked() // a lowered budget applies immediately
	return s, nil
}

// scan rebuilds the in-memory index from the journal and the objects
// directory; it returns whether the journal needs compacting (torn
// tail, dead records, drops, or adoptions).
func (s *Store) scan() (dirty bool, err error) {
	data, err := os.ReadFile(s.journalPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return false, err
	}
	recs, clean := replayJournal(data)
	if !clean {
		s.logf("annstore: journal tail torn or damaged, truncating (will re-verify orphans)")
		dirty = true
	}
	s.journalRecs = len(recs)

	// Last record per file wins; replay order carries recency.
	live := map[string]journalRec{}
	var order []string
	for _, r := range recs {
		switch {
		case r.put:
			live[r.file] = r
			order = append(order, r.file)
		case r.touch:
			// Recency only: re-append so the entry replays as newer.
			if _, ok := live[r.file]; ok {
				order = append(order, r.file)
			}
		default:
			if _, ok := live[r.file]; ok {
				delete(live, r.file)
				dirty = true
			}
		}
	}
	if len(order) > len(live) {
		dirty = true // dead puts in the journal
	}

	// Validate journalled entries, newest first so ties keep the most
	// recent copy; PushBack preserves most-recent-first order.
	inIndex := map[string]bool{}
	for i := len(order) - 1; i >= 0; i-- {
		file := order[i]
		rec, ok := live[file]
		if !ok || inIndex[file] {
			continue
		}
		inIndex[file] = true
		path := filepath.Join(s.objectsDir, file)
		fi, err := os.Stat(path)
		if errors.Is(err, os.ErrNotExist) {
			// Evicted or lost before the crash; drop the record.
			dirty = true
			continue
		}
		if err != nil {
			return dirty, err
		}
		if fi.Size() != rec.size {
			// Journalled size disagrees with the file: torn or damaged.
			s.quarantineFile(file, fmt.Sprintf("size %d, journal says %d", fi.Size(), rec.size))
			s.openRep.Quarantined++
			dirty = true
			continue
		}
		h, err := readFileHeader(path)
		if err != nil || h.headerSize+h.payloadLen != fi.Size() || h.payloadCRC != rec.crc {
			s.quarantineFile(file, "header validation failed")
			s.openRep.Quarantined++
			dirty = true
			continue
		}
		if _, dup := s.index[h.key]; dup {
			// Two files claim one key (possible only via hand-edited
			// stores); keep the newer, drop the older.
			os.Remove(path)
			dirty = true
			continue
		}
		el := s.ll.PushBack(&sentry{key: h.key, file: file, size: fi.Size(), payloadCRC: h.payloadCRC})
		s.index[h.key] = el
		s.used += fi.Size()
		s.openRep.Entries++
	}

	// Sweep the objects directory: delete temp leftovers, and fully
	// verify then adopt (or quarantine) artifacts the journal lost.
	des, err := os.ReadDir(s.objectsDir)
	if err != nil {
		return dirty, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || inIndex[name] {
			continue
		}
		if !strings.HasSuffix(name, artifactSuffix) {
			os.Remove(filepath.Join(s.objectsDir, name))
			s.openRep.TmpRemoved++
			continue
		}
		dirty = true
		if s.adoptOrphan(name) {
			s.openRep.Adopted++
			s.openRep.Entries++
		} else {
			s.openRep.Quarantined++
		}
	}
	return dirty, nil
}

// adoptOrphan fully verifies an un-journalled artifact file and, when
// valid, indexes it as most-recently used (it was written just before
// the crash that lost its journal record). Invalid files are
// quarantined. Reports whether the file was adopted.
func (s *Store) adoptOrphan(file string) bool {
	path := filepath.Join(s.objectsDir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		s.quarantineFile(file, err.Error())
		return false
	}
	key, payload, err := decodeArtifact(data)
	if err != nil || fileName(key) != file {
		s.quarantineFile(file, "orphan failed verification")
		return false
	}
	if _, dup := s.index[key]; dup {
		os.Remove(path)
		return false
	}
	el := s.ll.PushFront(&sentry{
		key: key, file: file, size: int64(len(data)),
		payloadCRC: crc32.Checksum(payload, castagnoli),
	})
	s.index[key] = el
	s.used += int64(len(data))
	s.logf("annstore: adopted orphan artifact %s after verification", file)
	return true
}

const artifactSuffix = ".art"

// fileName maps a key to its artifact file name: a readable sanitised
// prefix plus an FNV-1a hash of the exact key, so sanitisation can
// never collide two keys onto one file.
func fileName(k Key) string {
	h := fnv.New64a()
	io.WriteString(h, k.Kind)
	h.Write([]byte{0})
	io.WriteString(h, k.Digest)
	h.Write([]byte{0})
	io.WriteString(h, strconv.Itoa(k.Quality))
	h.Write([]byte{0})
	io.WriteString(h, k.Device)
	base := sanitize(k.Kind) + "-" + sanitize(k.Digest) + "-q" + strconv.Itoa(k.Quality)
	if k.Device != "" {
		base += "-" + sanitize(k.Device)
	}
	if len(base) > 100 {
		base = base[:100]
	}
	return fmt.Sprintf("%s-%016x%s", base, h.Sum64(), artifactSuffix)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// SetObserver publishes the store's metrics on r with the given labels
// (e.g. role=server). Counts accumulated before the observer attached
// (Open-time quarantines) are flushed into the counters.
func (s *Store) SetObserver(r *obs.Registry, labels ...obs.Label) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = r
	s.regLabels = labels
	if r == nil {
		return
	}
	if s.pendingCorrupt > 0 {
		r.Counter("annstore_corrupt_total", corruptHelp,
			append([]obs.Label{obs.L("kind", "unknown")}, labels...)...).Add(s.pendingCorrupt)
		s.pendingCorrupt = 0
	}
	if s.pendingQuarantined > 0 {
		r.Counter("annstore_quarantined_total", quarantinedHelp, labels...).Add(s.pendingQuarantined)
		s.pendingQuarantined = 0
	}
	s.gauges()
}

const (
	corruptHelp     = "Store artifacts that failed checksum or structural validation."
	quarantinedHelp = "Store files moved to quarantine instead of being served."
)

// count and gauges require s.mu held.
func (s *Store) count(name, help, kind string) {
	if s.reg == nil {
		return
	}
	labels := s.regLabels
	if kind != "" {
		labels = append([]obs.Label{obs.L("kind", kind)}, s.regLabels...)
	}
	s.reg.Counter(name, help, labels...).Inc()
}

func (s *Store) gauges() {
	if s.reg == nil {
		return
	}
	s.reg.Gauge("annstore_entries", "Artifacts resident in the persistent store.", s.regLabels...).
		Set(float64(s.ll.Len()))
	s.reg.Gauge("annstore_bytes", "Bytes of artifact files resident in the persistent store.", s.regLabels...).
		Set(float64(s.used))
}

// Get returns the stored payload for key. The whole file is re-read and
// CRC-verified on every call; a file that fails verification is
// quarantined and reported as a miss, so a corrupt entry costs a
// recomputation, never a wrong answer.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	el, ok := s.index[key]
	if !ok {
		s.count("annstore_misses_total", "Store lookups that found no entry.", key.Kind)
		return nil, false
	}
	e := el.Value.(*sentry)
	data, err := os.ReadFile(filepath.Join(s.objectsDir, e.file))
	if err == nil {
		k, payload, derr := decodeArtifact(data)
		if derr == nil && k == key {
			s.ll.MoveToFront(el)
			s.appendTouchLocked(e.file)
			s.count("annstore_hits_total", "Store lookups served from disk.", key.Kind)
			return payload, true
		}
		err = derr
		if err == nil {
			err = fmt.Errorf("%w: key mismatch", ErrCorrupt)
		}
	}
	s.logf("annstore: quarantining %s: %v", e.file, err)
	s.dropLocked(el, true)
	s.count("annstore_corrupt_total", corruptHelp, key.Kind)
	s.count("annstore_misses_total", "Store lookups that found no entry.", key.Kind)
	s.gauges()
	return nil, false
}

// Ref locates a stored artifact's payload inside its on-disk file:
// path is the artifact file and the payload occupies [Off, Off+Len).
// Artifact files are only ever replaced by atomic rename, so an open
// Ref either reads exactly the content that was indexed or fails to
// open (the entry was evicted) — never a torn mix. Refs carry no CRC
// protection of their own; callers pair them with a verifying Get.
type Ref struct {
	Path string
	Off  int64
	Len  int64
}

// GetRef returns the payload location for key without reading the
// payload, so large artifacts can be streamed from disk (e.g. via
// sendfile) instead of being copied through memory. Unlike Get it does
// not bump recency or verify the payload CRC — it is meant to follow a
// successful Get of the same key in the same lookup.
func (s *Store) GetRef(key Key) (Ref, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Ref{}, false
	}
	el, ok := s.index[key]
	if !ok {
		return Ref{}, false
	}
	e := el.Value.(*sentry)
	path := filepath.Join(s.objectsDir, e.file)
	h, err := readFileHeader(path)
	if err != nil || h.key != key {
		return Ref{}, false
	}
	return Ref{Path: path, Off: h.headerSize, Len: h.payloadLen}, true
}

// Put stores payload under key, replacing any previous artifact. The
// write is atomic (temp + fsync + rename + dir fsync) and journalled
// only after it is durable, so a crash at any point leaves either the
// old entry or the new one. Re-putting identical content is a cheap
// recency bump.
func (s *Store) Put(key Key, payload []byte) error {
	content, err := encodeArtifact(key, payload)
	if err != nil {
		return err
	}
	crc := crc32.Checksum(payload, castagnoli)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if el, ok := s.index[key]; ok {
		e := el.Value.(*sentry)
		if e.size == int64(len(content)) && e.payloadCRC == crc {
			s.ll.MoveToFront(el)
			return nil
		}
	}
	file := fileName(key)
	if err := WriteFileAtomic(filepath.Join(s.objectsDir, file), content); err != nil {
		return err
	}
	if err := s.appendJournalLocked(journalRec{put: true, file: file, size: int64(len(content)), crc: crc}); err != nil {
		return err
	}
	if el, ok := s.index[key]; ok {
		e := el.Value.(*sentry)
		s.used += int64(len(content)) - e.size
		e.size = int64(len(content))
		e.payloadCRC = crc
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&sentry{key: key, file: file, size: int64(len(content)), payloadCRC: crc})
		s.index[key] = el
		s.used += int64(len(content))
	}
	s.count("annstore_puts_total", "Artifacts written to the persistent store.", key.Kind)
	s.evictLocked()
	s.gauges()
	return nil
}

// evictLocked deletes least-recently-used artifacts until the byte
// budget holds. Like the memory tier, the newest entry always stays, so
// one oversized artifact still persists (monopolising the store).
func (s *Store) evictLocked() {
	if s.capacity <= 0 {
		return
	}
	for s.used > s.capacity && s.ll.Len() > 1 {
		el := s.ll.Back()
		e := el.Value.(*sentry)
		s.dropLocked(el, false)
		s.count("annstore_evictions_total", "Store artifacts deleted to stay in the byte budget.", e.key.Kind)
	}
}

// dropLocked removes an indexed entry; quarantine moves the file aside
// for inspection, otherwise it is deleted. Either way a journal del
// record is appended (best effort — on failure the next Open drops the
// stale record anyway).
func (s *Store) dropLocked(el *list.Element, quarantine bool) {
	e := el.Value.(*sentry)
	s.ll.Remove(el)
	delete(s.index, e.key)
	s.used -= e.size
	if quarantine {
		s.quarantineFile(e.file, "")
	} else {
		os.Remove(filepath.Join(s.objectsDir, e.file))
	}
	if s.journal != nil {
		if err := s.appendJournalLocked(journalRec{file: e.file}); err != nil {
			s.logf("annstore: journal del failed: %v", err)
		}
	}
}

// quarantineFile moves objects/file into the quarantine directory
// (replacing any previous quarantined copy of the same name) and counts
// it. Failing that, the file is deleted — it must never be served.
func (s *Store) quarantineFile(file, why string) {
	if why != "" {
		s.logf("annstore: quarantining %s: %s", file, why)
	}
	src := filepath.Join(s.objectsDir, file)
	if err := os.Rename(src, filepath.Join(s.quarantineDir, file)); err != nil {
		os.Remove(src)
	}
	s.quarantined++
	if s.reg == nil {
		s.pendingQuarantined++
		if why != "" {
			s.pendingCorrupt++
		}
	} else {
		s.count("annstore_quarantined_total", quarantinedHelp, "")
	}
}

// appendTouchLocked records read recency, without fsync: a lost tail
// of touches only degrades eviction ordering after a crash, so the
// durability cost of syncing every read is not worth paying.
func (s *Store) appendTouchLocked(file string) {
	if s.journal == nil {
		return
	}
	if _, err := s.journal.Write(appendJournalRec(nil, journalRec{touch: true, file: file})); err != nil {
		s.logf("annstore: journal touch failed: %v", err)
		return
	}
	s.journalRecs++
	if s.journalRecs > 2*s.ll.Len()+64 {
		if err := s.compactJournalLocked(); err != nil {
			s.logf("annstore: journal compaction failed: %v", err)
		}
	}
}

// appendJournalLocked durably appends one record.
func (s *Store) appendJournalLocked(r journalRec) error {
	line := appendJournalRec(nil, r)
	if _, err := s.journal.Write(line); err != nil {
		return err
	}
	if err := s.journal.Sync(); err != nil {
		return err
	}
	s.journalRecs++
	// Compact once dead records dominate, so the journal stays
	// proportional to the live set rather than the mutation history.
	if s.journalRecs > 2*s.ll.Len()+64 {
		if err := s.compactJournalLocked(); err != nil {
			s.logf("annstore: journal compaction failed: %v", err)
		}
	}
	return nil
}

// compactLocked rewrites the journal from the live index (least recent
// first, so replay reproduces the LRU order) with an atomic file swap.
func (s *Store) compactLocked() error {
	var buf []byte
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*sentry)
		buf = appendJournalRec(buf, journalRec{put: true, file: e.file, size: e.size, crc: e.payloadCRC})
	}
	if err := WriteFileAtomic(s.journalPath, buf); err != nil {
		return err
	}
	s.journalRecs = s.ll.Len()
	return nil
}

// compactJournalLocked is the runtime variant: the append handle is
// cycled around the atomic rewrite.
func (s *Store) compactJournalLocked() error {
	if err := s.journal.Close(); err != nil {
		return err
	}
	if err := s.compactLocked(); err != nil {
		// Reopen the (old or new) journal either way so appends keep
		// working; worst case the next Open re-verifies a stale tail.
		j, jerr := os.OpenFile(s.journalPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if jerr == nil {
			s.journal = j
		}
		return err
	}
	j, err := os.OpenFile(s.journalPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// Len returns the number of resident artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes returns the resident artifact bytes (headers included).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Quarantined returns the lifetime count of files quarantined by this
// Store instance, including the Open-time scan.
func (s *Store) Quarantined() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// Keys returns every resident key, most recently used first.
func (s *Store) Keys() []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]Key, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*sentry).key)
	}
	return keys
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// OpenReport returns what the Open-time scan found.
func (s *Store) OpenReport() Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.openRep
}

// Close syncs and closes the journal. The store refuses further use.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.journal.Sync(); err != nil {
		s.journal.Close()
		return err
	}
	return s.journal.Close()
}
