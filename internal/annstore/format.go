package annstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Artifact file layout (version 1):
//
//	magic "ASt1"                      4 bytes
//	header length                     u16 BE (bytes between here and the header CRC)
//	header:
//	  format version                  u8
//	  kind                            u8 length + bytes
//	  digest                          u16 BE length + bytes
//	  quality                         i32 BE (two's complement)
//	  device                          u8 length + bytes
//	  payload length                  u64 BE
//	  payload CRC                     u32 BE (Castagnoli)
//	header CRC                        u32 BE over magic..header
//	payload                           payload-length bytes
//
// The header carries the full key, so a file is self-describing: fsck
// and orphan adoption never need the journal to know what a file is.
// The header CRC catches torn or bit-flipped metadata before the
// payload length is trusted; the payload CRC catches payload damage on
// every read. Any mismatch anywhere classifies the file as corrupt —
// corrupt files are quarantined, never served.

var artifactMagic = [4]byte{'A', 'S', 't', '1'}

const formatVersion = 1

// ErrCorrupt reports an artifact file that failed structural or
// checksum validation. Corrupt entries are quarantined, not served.
var ErrCorrupt = errors.New("annstore: corrupt artifact")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeArtifact renders the on-disk file content for (key, payload).
func encodeArtifact(key Key, payload []byte) ([]byte, error) {
	if len(key.Kind) > 255 || len(key.Device) > 255 {
		return nil, fmt.Errorf("annstore: kind/device name too long in %+v", key)
	}
	if len(key.Digest) > 65535 {
		return nil, fmt.Errorf("annstore: digest too long in %+v", key)
	}
	hdr := make([]byte, 0, 32+len(key.Kind)+len(key.Digest)+len(key.Device))
	hdr = append(hdr, formatVersion)
	hdr = append(hdr, byte(len(key.Kind)))
	hdr = append(hdr, key.Kind...)
	hdr = binary.BigEndian.AppendUint16(hdr, uint16(len(key.Digest)))
	hdr = append(hdr, key.Digest...)
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(int32(key.Quality)))
	hdr = append(hdr, byte(len(key.Device)))
	hdr = append(hdr, key.Device...)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(payload)))
	hdr = binary.BigEndian.AppendUint32(hdr, crc32.Checksum(payload, castagnoli))

	out := make([]byte, 0, 4+2+len(hdr)+4+len(payload))
	out = append(out, artifactMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(hdr)))
	out = append(out, hdr...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(out, castagnoli))
	out = append(out, payload...)
	return out, nil
}

// artifactHeader is the decoded, validated file header.
type artifactHeader struct {
	key        Key
	payloadLen int64
	payloadCRC uint32
	headerSize int64 // bytes before the payload starts
}

// decodeHeader parses and checksums the header from the start of data
// (which may be a prefix of the file, as long as it covers the header).
func decodeHeader(data []byte) (artifactHeader, error) {
	var h artifactHeader
	if len(data) < 6 || [4]byte(data[:4]) != artifactMagic {
		return h, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	hdrLen := int(binary.BigEndian.Uint16(data[4:6]))
	if len(data) < 6+hdrLen+4 {
		return h, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	sum := binary.BigEndian.Uint32(data[6+hdrLen:])
	if crc32.Checksum(data[:6+hdrLen], castagnoli) != sum {
		return h, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	p := data[6 : 6+hdrLen]
	next := func(n int) ([]byte, bool) {
		if len(p) < n {
			return nil, false
		}
		b := p[:n]
		p = p[n:]
		return b, true
	}
	ver, ok := next(1)
	if !ok || ver[0] != formatVersion {
		return h, fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	}
	str := func(lenBytes int) (string, bool) {
		lb, ok := next(lenBytes)
		if !ok {
			return "", false
		}
		n := 0
		for _, b := range lb {
			n = n<<8 | int(b)
		}
		s, ok := next(n)
		return string(s), ok
	}
	var qb, tail []byte
	if h.key.Kind, ok = str(1); !ok {
		return h, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if h.key.Digest, ok = str(2); !ok {
		return h, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if qb, ok = next(4); !ok {
		return h, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	h.key.Quality = int(int32(binary.BigEndian.Uint32(qb)))
	if h.key.Device, ok = str(1); !ok {
		return h, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if tail, ok = next(12); !ok || len(p) != 0 {
		return h, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	h.payloadLen = int64(binary.BigEndian.Uint64(tail[:8]))
	h.payloadCRC = binary.BigEndian.Uint32(tail[8:])
	h.headerSize = int64(6 + hdrLen + 4)
	if h.payloadLen < 0 {
		return h, fmt.Errorf("%w: negative payload length", ErrCorrupt)
	}
	return h, nil
}

// decodeArtifact validates a whole file and returns its key and payload.
func decodeArtifact(data []byte) (Key, []byte, error) {
	h, err := decodeHeader(data)
	if err != nil {
		return Key{}, nil, err
	}
	if int64(len(data)) != h.headerSize+h.payloadLen {
		return Key{}, nil, fmt.Errorf("%w: size mismatch (%d bytes, want %d)",
			ErrCorrupt, len(data), h.headerSize+h.payloadLen)
	}
	payload := data[h.headerSize:]
	if crc32.Checksum(payload, castagnoli) != h.payloadCRC {
		return Key{}, nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	return h.key, payload, nil
}

// readFileHeader reads just enough of path to validate its header — the
// fast-startup scan reads a few hundred bytes per entry instead of the
// whole artifact.
func readFileHeader(path string) (artifactHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifactHeader{}, err
	}
	defer f.Close()
	// Header size is bounded: 6 + (at most 32+255+65535+255) + 4. Read
	// a first chunk and extend only if the declared header is longer.
	buf := make([]byte, 4096)
	n, err := io.ReadFull(f, buf)
	short := err == io.ErrUnexpectedEOF || err == io.EOF
	if err != nil && !short {
		return artifactHeader{}, err
	}
	buf = buf[:n]
	h, derr := decodeHeader(buf)
	if derr == nil || short {
		// Either the header parsed, or we hold the whole file already
		// and the verdict is final.
		return h, derr
	}
	want := 6 + int(binary.BigEndian.Uint16(buf[4:6])) + 4
	if want > n {
		rest := make([]byte, want-n)
		m, _ := io.ReadFull(f, rest)
		buf = append(buf, rest[:m]...)
	}
	return decodeHeader(buf)
}

// AtomicFile writes a file so a crash at any instant leaves either the
// old content or the new content at path, never a torn mix: bytes land
// in a temp file in the same directory, Commit fsyncs and renames into
// place, and the directory itself is fsynced so the rename is durable.
type AtomicFile struct {
	f    *os.File
	bw   *bufio.Writer
	path string
	done bool
}

// CreateAtomic starts an atomic write of path. Call Commit to publish
// or Abort to discard; Abort after Commit is a no-op, so
// `defer a.Abort()` is the idiomatic cleanup.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, bw: bufio.NewWriter(f), path: path}, nil
}

func (a *AtomicFile) Write(p []byte) (int, error) { return a.bw.Write(p) }

// Commit flushes, fsyncs and renames the temp file into place, then
// fsyncs the directory so the rename survives a power cut.
func (a *AtomicFile) Commit() error {
	if a.done {
		return errors.New("annstore: atomic file already committed or aborted")
	}
	a.done = true
	if err := a.bw.Flush(); err != nil {
		a.discard()
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.discard()
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the write, removing the temp file. No-op after Commit.
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.discard()
}

func (a *AtomicFile) discard() {
	a.f.Close()
	os.Remove(a.f.Name())
}

// WriteFileAtomic writes data to path through an AtomicFile.
func WriteFileAtomic(path string, data []byte) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if _, err := a.Write(data); err != nil {
		return err
	}
	return a.Commit()
}

// syncDir fsyncs a directory so a just-renamed file is durable. Errors
// are ignored: some filesystems reject directory fsync, and the worst
// case is the pre-crash state, which the startup scan already handles.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
