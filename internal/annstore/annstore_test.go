package annstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKey(i int) Key {
	return Key{Kind: "track", Digest: fmt.Sprintf("digest%04d", i), Quality: i % 3}
}

func testPayload(i int) []byte {
	b := make([]byte, 512+i)
	for j := range b {
		b[j] = byte(i + j*7)
	}
	return b
}

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	st, err := Open(dir, Options{MaxBytes: maxBytes, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return st
}

// objectFiles returns the artifact files currently on disk.
func objectFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(filepath.Join(dir, "objects"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		names = append(names, de.Name())
	}
	return names
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	defer st.Close()

	keys := []Key{
		{Kind: "track", Digest: "abc", Quality: -1},
		{Kind: "variant", Digest: "abc+g8q4", Quality: 2},
		{Kind: "levels", Digest: "abc", Quality: -1, Device: "ipaq5555"},
		{Kind: "weird", Digest: strings.Repeat("x", 300) + "/../;", Quality: 0, Device: "a b"},
	}
	for i, k := range keys {
		if err := st.Put(k, testPayload(i)); err != nil {
			t.Fatalf("Put(%+v): %v", k, err)
		}
	}
	for i, k := range keys {
		got, ok := st.Get(k)
		if !ok {
			t.Fatalf("Get(%+v) missed", k)
		}
		if !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("Get(%+v) returned wrong payload", k)
		}
	}
	if _, ok := st.Get(Key{Kind: "track", Digest: "nope"}); ok {
		t.Fatal("Get of absent key hit")
	}

	// Idempotent re-put keeps one entry; a changed payload replaces it.
	if err := st.Put(keys[0], testPayload(0)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(keys) {
		t.Fatalf("Len = %d after idempotent re-put, want %d", st.Len(), len(keys))
	}
	if err := st.Put(keys[0], []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	got, ok := st.Get(keys[0])
	if !ok || string(got) != "replacement" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	if st.Len() != len(keys) {
		t.Fatalf("Len = %d after replace, want %d", st.Len(), len(keys))
	}
}

func TestWarmReopen(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	const n = 20
	for i := 0; i < n; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes := st.Bytes()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openT(t, dir, 0)
	defer st2.Close()
	if st2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", st2.Len(), n)
	}
	if st2.Bytes() != wantBytes {
		t.Fatalf("reopened Bytes = %d, want %d", st2.Bytes(), wantBytes)
	}
	if q := st2.Quarantined(); q != 0 {
		t.Fatalf("clean reopen quarantined %d files", q)
	}
	for i := 0; i < n; i++ {
		got, ok := st2.Get(testKey(i))
		if !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("entry %d lost or damaged across reopen", i)
		}
	}
}

func TestEvictionByByteBudget(t *testing.T) {
	dir := t.TempDir()
	// Each entry is ~600 bytes of payload plus a small header; a 2000
	// byte budget holds about three.
	st := openT(t, dir, 2000)
	defer st.Close()
	for i := 0; i < 10; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Bytes() > 2000 {
		t.Fatalf("Bytes = %d over the 2000 budget", st.Bytes())
	}
	if st.Len() >= 10 {
		t.Fatal("no eviction happened")
	}
	if got := len(objectFiles(t, dir)); got != st.Len() {
		t.Fatalf("%d files on disk, index holds %d", got, st.Len())
	}
	// The newest entry must survive.
	if _, ok := st.Get(testKey(9)); !ok {
		t.Fatal("most recent entry was evicted")
	}
	// An evicted entry is a plain miss.
	if _, ok := st.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived a budget 10x too small")
	}
}

func TestRecencyGuidesEviction(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the oldest so it becomes the most recent...
	if _, ok := st.Get(testKey(0)); !ok {
		t.Fatal("touch missed")
	}
	total := st.Bytes()
	st.Close()
	// ...and recency must survive the restart: shrinking the budget to
	// roughly two entries should keep 0 and evict 1 first.
	st2 := openT(t, dir, total*5/8)
	defer st2.Close()
	if _, ok := st2.Get(testKey(0)); !ok {
		t.Fatal("recently-touched entry evicted before older ones after reopen")
	}
	if _, ok := st2.Get(testKey(1)); ok {
		t.Fatal("least-recently-used entry survived the shrunken budget")
	}
}

func TestCorruptPayloadQuarantinedNotServed(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	defer st.Close()
	key := testKey(1)
	if err := st.Put(key, testPayload(1)); err != nil {
		t.Fatal(err)
	}
	files := objectFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("want 1 object file, got %v", files)
	}
	// Flip one payload byte in place — size stays right, CRC does not.
	path := filepath.Join(dir, "objects", files[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(key); ok {
		t.Fatal("corrupt artifact was served")
	}
	if q := st.Quarantined(); q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	if qf, _ := os.ReadDir(filepath.Join(dir, "quarantine")); len(qf) != 1 {
		t.Fatal("corrupt file not moved to quarantine")
	}
	if st.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", st.Len())
	}
	// The recompute path re-puts and the store works again.
	if err := st.Put(key, testPayload(1)); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(key); !ok || !bytes.Equal(got, testPayload(1)) {
		t.Fatal("store unusable after quarantine + re-put")
	}
}

// TestTornOrFlippedFileNeverServesWrongBytes is the core safety
// property: whatever prefix or bit-flip damage an artifact file
// suffers, a reopened store either serves the exact original payload or
// misses — never wrong bytes.
func TestTornOrFlippedFileNeverServesWrongBytes(t *testing.T) {
	key := testKey(7)
	want := testPayload(7)

	build := func(t *testing.T) (dir, path string, size int64) {
		dir = t.TempDir()
		st := openT(t, dir, 0)
		if err := st.Put(key, want); err != nil {
			t.Fatal(err)
		}
		st.Close()
		files := objectFiles(t, dir)
		if len(files) != 1 {
			t.Fatalf("want 1 file, got %v", files)
		}
		path = filepath.Join(dir, "objects", files[0])
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return dir, path, fi.Size()
	}

	check := func(t *testing.T, dir string, wantMiss bool) {
		st := openT(t, dir, 0)
		defer st.Close()
		got, ok := st.Get(key)
		if ok && !bytes.Equal(got, want) {
			t.Fatal("damaged store served wrong bytes")
		}
		if wantMiss && ok {
			t.Fatal("damaged artifact served as a hit")
		}
	}

	_, path0, size := build(t)
	_ = path0
	step := size / 13
	if step == 0 {
		step = 1
	}
	for cut := int64(0); cut < size; cut += step {
		cut := cut
		t.Run(fmt.Sprintf("truncate_%d", cut), func(t *testing.T) {
			dir, path, _ := build(t)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
			check(t, dir, true)
		})
	}
	for off := int64(0); off < size; off += step {
		off := off
		t.Run(fmt.Sprintf("bitflip_%d", off), func(t *testing.T) {
			dir, path, _ := build(t)
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 1)
			if _, err := f.ReadAt(b, off); err != nil {
				t.Fatal(err)
			}
			b[0] ^= 0x40
			if _, err := f.WriteAt(b, off); err != nil {
				t.Fatal(err)
			}
			f.Close()
			check(t, dir, true)
		})
	}
}

func TestJournalTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Simulate a crash mid-append: a torn, CRC-less final record.
	j, err := os.OpenFile(filepath.Join(dir, "journal"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.WriteString("put half-a-reco"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	st2 := openT(t, dir, 0)
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("Len = %d after torn journal tail, want 5", st2.Len())
	}
	for i := 0; i < 5; i++ {
		if got, ok := st2.Get(testKey(i)); !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("entry %d lost to a torn journal tail", i)
		}
	}
	// The reopen compacted the journal; a third open must be clean.
	st2.Close()
	st3 := openT(t, dir, 0)
	defer st3.Close()
	if st3.Len() != 5 || st3.Quarantined() != 0 {
		t.Fatalf("post-compaction open: Len=%d quarantined=%d", st3.Len(), st3.Quarantined())
	}
}

func TestOrphansAdoptedAfterJournalLoss(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	for i := 0; i < 4; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	if err := os.Remove(filepath.Join(dir, "journal")); err != nil {
		t.Fatal(err)
	}

	st2 := openT(t, dir, 0)
	defer st2.Close()
	if st2.Len() != 4 {
		t.Fatalf("Len = %d after journal loss, want 4 adopted orphans", st2.Len())
	}
	if rep := st2.OpenReport(); rep.Adopted != 4 {
		t.Fatalf("OpenReport.Adopted = %d, want 4", rep.Adopted)
	}
	for i := 0; i < 4; i++ {
		if got, ok := st2.Get(testKey(i)); !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("entry %d not adopted intact", i)
		}
	}
}

func TestMissingFileDropped(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	for i := 0; i < 3; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	files := objectFiles(t, dir)
	if err := os.Remove(filepath.Join(dir, "objects", files[0])); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, 0)
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("Len = %d after deleting one file, want 2", st2.Len())
	}
	if q := st2.Quarantined(); q != 0 {
		t.Fatalf("a cleanly missing file quarantined %d entries", q)
	}
}

func TestTempFilesRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	if err := st.Put(testKey(0), testPayload(0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	tmp := filepath.Join(dir, "objects", "something.art.tmp123")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openT(t, dir, 0)
	defer st2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover temp file survived Open")
	}
	if rep := st2.OpenReport(); rep.TmpRemoved != 1 {
		t.Fatalf("OpenReport.TmpRemoved = %d, want 1", rep.TmpRemoved)
	}
}

func TestJournalStaysCompact(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	defer st.Close()
	key := testKey(0)
	// 300 replacing writes to one key: without compaction the journal
	// would hold 300 records for one live entry.
	for i := 0; i < 300; i++ {
		if err := st.Put(key, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte{'\n'}); n > 100 {
		t.Fatalf("journal holds %d records for 1 live entry; compaction is not working", n)
	}
	if got, ok := st.Get(key); !ok || string(got) != "payload-299" {
		t.Fatal("latest payload lost across compactions")
	}
}

func TestFsckQuarantinesAndReports(t *testing.T) {
	dir := t.TempDir()
	st := openT(t, dir, 0)
	defer st.Close()
	for i := 0; i < 3; i++ {
		if err := st.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Payload damage that the fast Open scan would NOT see (size and
	// header intact): only a full fsck or a read catches it.
	files := objectFiles(t, dir)
	path := filepath.Join(dir, "objects", files[0])
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	rep, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || rep.OK != 2 {
		t.Fatalf("fsck report = %+v, want 1 quarantined / 2 ok", rep)
	}
	if !rep.Corrupt() {
		t.Fatal("Corrupt() = false with a quarantined entry")
	}
	rep2, err := st.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Quarantined != 0 || rep2.OK != 2 {
		t.Fatalf("second fsck = %+v, want clean", rep2)
	}
}

func TestAtomicFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.avs")

	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(a, "hello ")
	fmt.Fprint(a, "world")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	a.Abort() // no-op after Commit
	if got, _ := os.ReadFile(path); string(got) != "hello world" {
		t.Fatalf("committed content = %q", got)
	}

	// An aborted write leaves the old content and no temp files.
	b, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(b, "torn")
	b.Abort()
	if got, _ := os.ReadFile(path); string(got) != "hello world" {
		t.Fatalf("abort clobbered the file: %q", got)
	}
	des, _ := os.ReadDir(dir)
	if len(des) != 1 {
		t.Fatalf("temp files left behind: %v", des)
	}

	if err := WriteFileAtomic(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("WriteFileAtomic = %q", got)
	}
}
