package annstore

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
)

// The manifest journal is an append-only text file, one record per
// committed mutation, so startup learns the store's contents from one
// sequential read instead of opening every artifact:
//
//	put <file> <size> <payload-crc-hex> <line-crc-hex>
//	del <file> <line-crc-hex>
//	tch <file> <line-crc-hex>
//
// tch (touch) records carry read recency so the LRU order survives a
// restart; they are appended without fsync — losing a tail of touches
// only costs eviction accuracy, never correctness.
//
// The trailing CRC (Castagnoli, over the line up to and including the
// space before it) makes every record self-validating: a crash mid-
// append leaves a torn final line that fails its CRC, and replay simply
// stops there — the artifacts the lost records described are still on
// disk and are re-adopted by the orphan scan, which fully verifies them
// first. Records are appended only after the artifact rename (and the
// directory fsync making it durable), so a journalled entry always
// refers to a fully-written file; size mismatches at startup therefore
// indicate real damage and quarantine the file.
//
// Replay applies records in order (last record for a file wins), so the
// journal also carries recency: replay order seeds the LRU order the
// eviction policy uses. When dead records outnumber live ones the
// journal is compacted — rewritten atomically from the live index.

type journalRec struct {
	put   bool
	touch bool
	file  string
	size  int64
	crc   uint32
}

// appendJournalRec renders one record, with its line CRC, onto dst.
func appendJournalRec(dst []byte, r journalRec) []byte {
	start := len(dst)
	switch {
	case r.put:
		dst = append(dst, "put "...)
		dst = append(dst, r.file...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, r.size, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, uint64(r.crc), 16)
	case r.touch:
		dst = append(dst, "tch "...)
		dst = append(dst, r.file...)
	default:
		dst = append(dst, "del "...)
		dst = append(dst, r.file...)
	}
	dst = append(dst, ' ')
	sum := crc32.Checksum(dst[start:], castagnoli)
	dst = strconv.AppendUint(dst, uint64(sum), 16)
	dst = append(dst, '\n')
	return dst
}

// replayJournal parses data into records, stopping at the first torn or
// malformed line. clean reports whether the whole journal parsed — a
// false return means the tail was lost to a crash (or damage) and the
// caller should compact.
func replayJournal(data []byte) (recs []journalRec, clean bool) {
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return recs, false // torn final line (no terminator)
		}
		line := data[:nl]
		data = data[nl+1:]
		r, err := parseJournalLine(line)
		if err != nil {
			return recs, false
		}
		recs = append(recs, r)
	}
	return recs, true
}

func parseJournalLine(line []byte) (journalRec, error) {
	var r journalRec
	// The line CRC covers everything up to and including the space
	// before it.
	sp := bytes.LastIndexByte(line, ' ')
	if sp < 0 {
		return r, fmt.Errorf("annstore: malformed journal line")
	}
	want, err := strconv.ParseUint(string(line[sp+1:]), 16, 32)
	if err != nil {
		return r, fmt.Errorf("annstore: bad journal line CRC field: %w", err)
	}
	if crc32.Checksum(line[:sp+1], castagnoli) != uint32(want) {
		return r, fmt.Errorf("annstore: journal line CRC mismatch")
	}
	fields := bytes.Fields(line[:sp])
	switch {
	case len(fields) == 4 && string(fields[0]) == "put":
		r.put = true
		r.file = string(fields[1])
		if r.size, err = strconv.ParseInt(string(fields[2]), 10, 64); err != nil {
			return r, fmt.Errorf("annstore: bad journal size: %w", err)
		}
		crc, err := strconv.ParseUint(string(fields[3]), 16, 32)
		if err != nil {
			return r, fmt.Errorf("annstore: bad journal payload CRC: %w", err)
		}
		r.crc = uint32(crc)
		return r, nil
	case len(fields) == 2 && string(fields[0]) == "del":
		r.file = string(fields[1])
		return r, nil
	case len(fields) == 2 && string(fields[0]) == "tch":
		r.touch = true
		r.file = string(fields[1])
		return r, nil
	}
	return r, fmt.Errorf("annstore: unrecognised journal record")
}
