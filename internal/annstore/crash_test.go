package annstore

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The crash tests prove the acceptance property end to end: a process
// killed with SIGKILL in the middle of store writes never leaves an
// artifact that a reopened store serves corrupt. The helper below
// re-execs this test binary (the standard helper-process pattern) and
// writes deterministic artifacts in a tight loop until the parent kills
// it; the parent then reopens the store, fscks it, and verifies every
// surviving entry bit for bit.

const (
	crashHelperEnv = "ANNSTORE_CRASH_HELPER"
	crashDirEnv    = "ANNSTORE_CRASH_DIR"
)

// crashPayload is the deterministic content for the i-th artifact, big
// enough that a mid-write kill lands inside a payload often.
func crashPayload(i int) []byte {
	b := make([]byte, 8192)
	for j := range b {
		b[j] = byte(i*131 + j*7 + j>>8)
	}
	return b
}

func crashKey(i int) Key {
	return Key{Kind: "crash", Digest: fmt.Sprintf("clip%06d", i), Quality: i % 4}
}

// TestCrashHelperProcess is not a test: it is the victim process. It
// writes artifacts as fast as it can until SIGKILL arrives.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("helper process for TestCrashRecoveryAfterKill9")
	}
	st, err := Open(os.Getenv(crashDirEnv), Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper open:", err)
		os.Exit(3)
	}
	for i := 0; ; i++ {
		if err := st.Put(crashKey(i), crashPayload(i)); err != nil {
			fmt.Fprintln(os.Stderr, "helper put:", err)
			os.Exit(3)
		}
	}
}

func TestCrashRecoveryAfterKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Three rounds, killing at increasing store sizes, so the SIGKILL
	// lands at different phases (first puts, steady state, post-
	// compaction appends).
	for round, minEntries := range []int{3, 25, 80} {
		t.Run(fmt.Sprintf("round%d_kill_after_%d", round, minEntries), func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(exe, "-test.run", "^TestCrashHelperProcess$", "-test.v")
			cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashDirEnv+"="+dir)
			var out bytes.Buffer
			cmd.Stdout, cmd.Stderr = &out, &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			// Wait until the helper has committed at least minEntries
			// artifacts, then kill it without warning.
			objDir := filepath.Join(dir, "objects")
			deadline := time.Now().Add(30 * time.Second)
			for {
				des, _ := os.ReadDir(objDir)
				if len(des) >= minEntries {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatalf("helper wrote only %d entries in 30s:\n%s", len(des), out.String())
				}
				time.Sleep(200 * time.Microsecond)
			}
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			cmd.Wait()

			// Recovery: the reopened store must serve only intact
			// artifacts, each byte-identical to what the helper wrote.
			st := openT(t, dir, 0)
			defer st.Close()
			rep, err := st.Fsck()
			if err != nil {
				t.Fatal(err)
			}
			served := 0
			for _, key := range st.Keys() {
				i, err := strconv.Atoi(strings.TrimPrefix(key.Digest, "clip"))
				if err != nil {
					t.Fatalf("unexpected key in store: %+v", key)
				}
				got, ok := st.Get(key)
				if !ok {
					continue // quarantined at read: acceptable, it was not served
				}
				if !bytes.Equal(got, crashPayload(i)) {
					t.Fatalf("artifact %d served corrupt after kill -9", i)
				}
				served++
			}
			if served < minEntries-1 {
				t.Fatalf("only %d of at least %d artifacts survived recovery (report: %s)",
					served, minEntries, rep)
			}
			t.Logf("served %d intact artifacts; open scan %+v; fsck %s",
				served, st.OpenReport(), rep)

			// And the recovered store must be fully usable: a second
			// clean reopen plus fresh writes.
			st.Close()
			st2 := openT(t, dir, 0)
			defer st2.Close()
			if err := st2.Put(Key{Kind: "post", Digest: "recovery"}, []byte("ok")); err != nil {
				t.Fatal(err)
			}
			if got, ok := st2.Get(Key{Kind: "post", Digest: "recovery"}); !ok || string(got) != "ok" {
				t.Fatal("store not writable after crash recovery")
			}
		})
	}
}
