package annstore

import (
	"fmt"
	"testing"
)

// BenchmarkStoreWarmStart measures the startup scan (journal replay +
// header verification) as the store grows. This is the latency a server
// pays before it can serve its first request after a restart, so it
// should stay roughly linear in entry count with a small constant.
func BenchmarkStoreWarmStart(b *testing.B) {
	for _, entries := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			dir := b.TempDir()
			st, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			var bytes int64
			for i := 0; i < entries; i++ {
				p := testPayload(i % 97)
				bytes += int64(len(p))
				if err := st.Put(testKey(i), p); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != entries {
					b.Fatalf("warm open found %d of %d entries", st.Len(), entries)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
