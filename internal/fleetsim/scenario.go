// Package fleetsim is the closed-loop fleet-scale evaluation harness:
// a seeded load generator that drives hundreds to thousands of
// concurrent stream client sessions — mixed device profiles, fixed and
// adaptive quality, Poisson arrivals, fault schedules, node churn —
// against a streamd cluster, verifies every delivered frame against
// bit-exact references, and reconstructs the fleet's power story from
// two independent sources: the clients' own power.Ledger accounting and
// the servers' /metrics expositions. The paper evaluates one handheld
// at a time; this package asks whether the annotation pipeline's
// savings and QoS hold when an operator's whole fleet hits the serving
// tier at once.
package fleetsim

import (
	"fmt"
	"time"

	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/video"
)

// DeviceClass is one slice of the fleet's device mix: a display profile
// name, its share of the session population, and (for adaptive
// sessions) the battery each session starts with.
type DeviceClass struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// BatteryWh, when nonzero, arms adaptive sessions of this class with
	// a draining battery gauge (the ladder's battery floor input).
	BatteryWh float64 `json:"battery_wh,omitempty"`
}

// Scenario is one fleet experiment, fully declarative: the same
// scenario and seed must reproduce the same session population.
type Scenario struct {
	Name     string `json:"name"`
	Sessions int    `json:"sessions"`
	// MaxConcurrent bounds in-flight sessions (the load generator's
	// admission window, not the servers').
	MaxConcurrent int `json:"max_concurrent"`
	// ArrivalRate is the Poisson arrival intensity in sessions/second;
	// 0 releases every session immediately (bounded by MaxConcurrent).
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	// AdaptiveFrac is the fraction of sessions that negotiate the
	// adaptive quality ladder (protocol v4); the rest play fixed v3.
	AdaptiveFrac float64 `json:"adaptive_frac,omitempty"`
	// Rungs is the quality-rung pool fixed sessions draw from
	// (indexes into compensate.QualityLevels).
	Rungs []int `json:"rungs"`
	// AdaptiveRung is the ceiling rung adaptive sessions start at.
	AdaptiveRung int           `json:"adaptive_rung,omitempty"`
	Devices      []DeviceClass `json:"devices"`
	// Nodes is the cluster size booted in-process (ignored when the
	// runner is pointed at an external cluster).
	Nodes int `json:"nodes"`
	// MaxSessionsPerNode, when nonzero, caps each node's concurrent
	// sessions so over-capacity load is shed (stream_sessions_shed_total).
	MaxSessionsPerNode int `json:"max_sessions_per_node,omitempty"`
	// Faults is a faults.ParseConfig schedule wrapped around every
	// node's listener ("" = healthy links).
	Faults string `json:"faults,omitempty"`
	// KillOwnerFrac, when nonzero, kills the variant-shard owner of the
	// first clip after this fraction of sessions has completed — the
	// churn drill. In-flight sessions must retry/resume elsewhere and
	// still deliver exact bytes.
	KillOwnerFrac float64 `json:"kill_owner_frac,omitempty"`
	// SessionTTL is the abandon-on-stall deadline per session
	// (0 = wait forever).
	SessionTTL time.Duration `json:"session_ttl,omitempty"`
	// Clip geometry (defaults 32x24 @ 8 fps — the test-tier size; the
	// power model scales with time, not pixels).
	ClipW int `json:"clip_w,omitempty"`
	ClipH int `json:"clip_h,omitempty"`
	FPS   int `json:"fps,omitempty"`
}

// withDefaults fills the zero-valued knobs.
func (sc Scenario) withDefaults() Scenario {
	if sc.MaxConcurrent <= 0 {
		sc.MaxConcurrent = 32
	}
	if len(sc.Rungs) == 0 {
		sc.Rungs = []int{1, 2, 3}
	}
	if sc.AdaptiveRung <= 0 {
		sc.AdaptiveRung = 3
	}
	if len(sc.Devices) == 0 {
		sc.Devices = DefaultDevices()
	}
	if sc.Nodes <= 0 {
		sc.Nodes = 1
	}
	if sc.ClipW <= 0 {
		sc.ClipW = 32
	}
	if sc.ClipH <= 0 {
		sc.ClipH = 24
	}
	if sc.FPS <= 0 {
		sc.FPS = 8
	}
	return sc
}

// Validate rejects a scenario the runner cannot execute.
func (sc Scenario) Validate() error {
	sc = sc.withDefaults()
	if sc.Name == "" {
		return fmt.Errorf("fleetsim: scenario has no name")
	}
	if sc.Sessions <= 0 {
		return fmt.Errorf("fleetsim: scenario %s: sessions must be positive", sc.Name)
	}
	for _, r := range sc.Rungs {
		if r < 0 || r >= len(compensate.QualityLevels) {
			return fmt.Errorf("fleetsim: scenario %s: rung %d out of range", sc.Name, r)
		}
	}
	if sc.AdaptiveRung < 0 || sc.AdaptiveRung >= len(compensate.QualityLevels) {
		return fmt.Errorf("fleetsim: scenario %s: adaptive rung %d out of range", sc.Name, sc.AdaptiveRung)
	}
	if sc.AdaptiveFrac < 0 || sc.AdaptiveFrac > 1 {
		return fmt.Errorf("fleetsim: scenario %s: adaptive_frac %v out of [0,1]", sc.Name, sc.AdaptiveFrac)
	}
	if sc.KillOwnerFrac < 0 || sc.KillOwnerFrac >= 1 {
		return fmt.Errorf("fleetsim: scenario %s: kill_owner_frac %v out of [0,1)", sc.Name, sc.KillOwnerFrac)
	}
	if sc.KillOwnerFrac > 0 && sc.Nodes < 2 {
		return fmt.Errorf("fleetsim: scenario %s: owner churn needs at least 2 nodes", sc.Name)
	}
	total := 0.0
	for _, d := range sc.Devices {
		if display.ByName(d.Name) == nil {
			return fmt.Errorf("fleetsim: scenario %s: unknown device %q", sc.Name, d.Name)
		}
		if d.Weight < 0 {
			return fmt.Errorf("fleetsim: scenario %s: negative weight for %s", sc.Name, d.Name)
		}
		total += d.Weight
	}
	if total <= 0 {
		return fmt.Errorf("fleetsim: scenario %s: device weights sum to zero", sc.Name)
	}
	return nil
}

// DefaultDevices is the canonical fleet mix: the paper's three
// evaluation handhelds, weighted toward the iPAQ 5555 testbed.
func DefaultDevices() []DeviceClass {
	return []DeviceClass{
		{Name: "ipaq5555", Weight: 0.5, BatteryWh: 4.0},
		{Name: "ipaq3650", Weight: 0.3, BatteryWh: 3.5},
		{Name: "zaurus5600", Weight: 0.2, BatteryWh: 3.2},
	}
}

// Catalog builds the fleet's clip set: three seeded synthetic clips
// spanning the luminance regimes the paper's savings depend on (a dark
// clip saves the most backlight, a bright one the least). The content
// is a pure function of geometry, so reference digests reproduce.
func Catalog(w, h, fps int) map[string]core.Source {
	night := video.MustNew("night", w, h, fps, 31, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.10, MaxLuma: 0.70, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.22, LumaSpread: 0.12, MaxLuma: 0.92, HighlightFrac: 0.01},
		{Frames: 8, BaseLuma: 0.18, LumaSpread: 0.10, MaxLuma: 0.80, HighlightFrac: 0.02},
	})
	noon := video.MustNew("noon", w, h, fps, 47, []video.SceneSpec{
		{Frames: 12, BaseLuma: 0.60, LumaSpread: 0.15, MaxLuma: 1.00, HighlightFrac: 0.05},
		{Frames: 10, BaseLuma: 0.55, LumaSpread: 0.12, MaxLuma: 0.98, HighlightFrac: 0.04},
	})
	dusk := video.MustNew("dusk", w, h, fps, 59, []video.SceneSpec{
		{Frames: 8, BaseLuma: 0.45, LumaSpread: 0.15, MaxLuma: 0.95, HighlightFrac: 0.03},
		{Frames: 10, BaseLuma: 0.25, LumaSpread: 0.10, MaxLuma: 0.75, HighlightFrac: 0.01},
		{Frames: 8, BaseLuma: 0.35, LumaSpread: 0.12, MaxLuma: 0.88, HighlightFrac: 0.02},
	})
	return map[string]core.Source{
		"night": core.ClipSource{Clip: night},
		"noon":  core.ClipSource{Clip: noon},
		"dusk":  core.ClipSource{Clip: dusk},
	}
}

// clipNames is the catalog in deterministic draw order.
var clipNames = []string{"night", "noon", "dusk"}

// Canonical is the committed scenario matrix (EXPERIMENTS.md): the
// three fleet shapes CI gates against BENCH_fleet.json.
func Canonical() []Scenario {
	return []Scenario{
		{
			// Byte-deterministic by construction: fixed-quality only,
			// healthy links, no churn — the determinism-test scenario.
			Name:          "small-healthy",
			Sessions:      60,
			MaxConcurrent: 16,
			ArrivalRate:   300,
			AdaptiveFrac:  0,
			Rungs:         []int{1, 2, 3},
			Nodes:         3,
		},
		{
			// Lossy links: added latency, fragmented writes, and a reset
			// schedule that kills a handful of early connections so the
			// retry/resume path carries real traffic.
			Name:          "medium-lossy",
			Sessions:      200,
			MaxConcurrent: 32,
			ArrivalRate:   400,
			AdaptiveFrac:  0.3,
			Rungs:         []int{1, 2, 3},
			AdaptiveRung:  3,
			Nodes:         3,
			Faults:        "latency=200us,short,reset=20000:35000:50000,seed=11",
			SessionTTL:    2 * time.Minute,
		},
		{
			// The churn drill from the issue's acceptance bar: 1000 mixed
			// sessions against 3 nodes with the variant-shard owner killed
			// a quarter of the way in.
			Name:          "large-churn",
			Sessions:      1000,
			MaxConcurrent: 64,
			ArrivalRate:   800,
			AdaptiveFrac:  0.3,
			Rungs:         []int{1, 2, 3},
			AdaptiveRung:  3,
			Nodes:         3,
			KillOwnerFrac: 0.25,
			SessionTTL:    2 * time.Minute,
		},
	}
}

// ScenarioByName returns the canonical scenario with the given name.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Canonical() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("fleetsim: unknown scenario %q", name)
}
