package fleetsim

import (
	"bytes"
	"testing"
	"time"
)

// determinismScenario is a trimmed fixed-quality healthy fleet: the
// shape whose report Core is guaranteed byte-identical across runs.
func determinismScenario() Scenario {
	return Scenario{
		Name:          "det-fixed-healthy",
		Sessions:      24,
		MaxConcurrent: 8,
		ArrivalRate:   400,
		Rungs:         []int{1, 2, 3},
		Nodes:         2,
	}
}

// TestFleetReportDeterminism pins the canonical-report contract: the
// same (scenario, seed) must produce byte-identical CanonicalJSON
// across two independent runs — cluster boot, goroutine scheduling and
// arrival jitter must never leak into Core.
func TestFleetReportDeterminism(t *testing.T) {
	sc := determinismScenario()
	r1, err := Run(sc, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := r1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Errorf("same seed produced different canonical reports:\n--- run 1\n%s\n--- run 2\n%s", j1, j2)
	}
	// A different seed draws a different population: the canonical
	// report must move, or the seed is not actually wired through.
	r3, err := Run(sc, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	j3, err := r3.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(j1, j3) {
		t.Error("seeds 7 and 8 produced identical canonical reports")
	}
}

// TestFleetSmallHealthy runs the canonical healthy scenario end to end
// and holds it to the full bar: all sessions complete, zero wrong
// bytes, zero shed, power saved, and the client-side ledger sum agrees
// with the server-side /metrics reconstruction.
func TestFleetSmallHealthy(t *testing.T) {
	sc, err := ScenarioByName("small-healthy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.Check(); len(bad) > 0 {
		t.Fatalf("healthy fleet failed its checks: %v", bad)
	}
	c, o := rep.Core, rep.Observed
	if c.Completed != sc.Sessions {
		t.Errorf("completed %d of %d sessions", c.Completed, sc.Sessions)
	}
	if c.SavedJoules <= 0 || c.SavedPct <= 0 {
		t.Errorf("no power saved: %v J (%v%%)", c.SavedJoules, c.SavedPct)
	}
	// Every completed session was served annotated by exactly one node,
	// so the servers' session_total must equal the client count and the
	// two saved-joules stories must agree to float tolerance.
	if int(o.ServerSessions) != c.Completed {
		t.Errorf("servers accounted %.0f sessions, clients %d", o.ServerSessions, c.Completed)
	}
	if o.LedgerAgreement > 1e-9 {
		t.Errorf("ledger agreement %.3e, want exact to float tolerance", o.LedgerAgreement)
	}
	if o.Shed != 0 {
		t.Errorf("%.0f sessions shed on an uncapped fleet", o.Shed)
	}
	if c.WrongBytes != 0 {
		t.Errorf("%d wrong-bytes sessions", c.WrongBytes)
	}
	// 3 clips x up to 3 rungs: the cluster computed each artifact once
	// and filled the rest — fills must have happened.
	if o.PeerFills == 0 {
		t.Error("no peer fills recorded across a 3-node cluster")
	}
	if len(rep.BenchLines()) == 0 || rep.String() == "" {
		t.Error("report renderers produced nothing")
	}
}

// TestFleetChurnThousandSessions is the issue's acceptance drill: 1000
// mixed adaptive/fixed sessions against a 3-node cluster with the
// variant-shard owner killed a quarter of the way in. Every session
// must complete with exact bytes and the fleet's savings must land in
// the model's expected band.
func TestFleetChurnThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-session churn drill skipped in -short")
	}
	sc, err := ScenarioByName("large-churn")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.Check(); len(bad) > 0 {
		t.Fatalf("churn fleet failed its checks: %v", bad)
	}
	c, o := rep.Core, rep.Observed
	if c.Completed != 1000 || c.Failed != 0 || c.Abandoned != 0 {
		t.Errorf("sessions: %d completed, %d failed, %d abandoned; want 1000/0/0",
			c.Completed, c.Failed, c.Abandoned)
	}
	if c.WrongBytes != 0 {
		t.Errorf("%d sessions delivered wrong bytes through the owner kill", c.WrongBytes)
	}
	if o.NodesKilled != 1 {
		t.Errorf("killed %d nodes, want 1", o.NodesKilled)
	}
	if c.AdaptiveSessions == 0 || c.AdaptiveSessions == c.Sessions {
		t.Errorf("adaptive mix degenerate: %d of %d", c.AdaptiveSessions, c.Sessions)
	}
	band := absf(c.SavedJoules-c.ExpectedSavedJoules) / c.ExpectedSavedJoules
	if band > 0.25 {
		t.Errorf("saved %.1f J vs expected %.1f J: %.0f%% outside the band",
			c.SavedJoules, c.ExpectedSavedJoules, band*100)
	}
}

// TestScenarioValidation pins the scenario guard rails.
func TestScenarioValidation(t *testing.T) {
	good := determinismScenario()
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
	bad := []Scenario{
		{Name: "", Sessions: 1},
		{Name: "x", Sessions: 0},
		{Name: "x", Sessions: 1, Rungs: []int{9}},
		{Name: "x", Sessions: 1, Devices: []DeviceClass{{Name: "nokia", Weight: 1}}},
		{Name: "x", Sessions: 1, KillOwnerFrac: 0.5, Nodes: 1},
		{Name: "x", Sessions: 1, AdaptiveFrac: 2},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("invalid scenario %+v accepted", sc)
		}
	}
	for _, sc := range Canonical() {
		if err := sc.Validate(); err != nil {
			t.Errorf("canonical scenario %s invalid: %v", sc.Name, err)
		}
	}
	if _, err := ScenarioByName("no-such"); err == nil {
		t.Error("unknown scenario name accepted")
	}
}

// TestAggregateValidity pins the N-run CV gate arithmetic.
func TestAggregateValidity(t *testing.T) {
	mk := func(pct float64) *Report {
		r := &Report{}
		r.Core.SavedPct = pct
		return r
	}
	v := Aggregate([]*Report{mk(40), mk(41), mk(39), mk(40), mk(40)})
	if v.Runs != 5 || absf(v.MeanPct-40) > 1e-9 {
		t.Errorf("mean = %v over %d runs", v.MeanPct, v.Runs)
	}
	if v.CV <= 0 || v.CV > 0.05 {
		t.Errorf("CV = %v, want small and positive", v.CV)
	}
	if one := Aggregate([]*Report{mk(40)}); one.CV != 0 || one.StdevPct != 0 {
		t.Errorf("single run must have zero spread, got %+v", one)
	}
}

// TestGenSpecsDeterministic pins the population generator: same seed
// same population, and arrivals are monotonically non-decreasing.
func TestGenSpecsDeterministic(t *testing.T) {
	sc := Scenario{
		Name: "g", Sessions: 50, ArrivalRate: 100,
		AdaptiveFrac: 0.3, Rungs: []int{1, 2, 3}, AdaptiveRung: 3,
		Devices: DefaultDevices(), Nodes: 1,
	}.withDefaults()
	a := genSpecs(sc, 3)
	b := genSpecs(sc, 3)
	adaptive := 0
	var prev time.Duration
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across same-seed draws", i)
		}
		if a[i].arrival < prev {
			t.Fatalf("arrival %d moved backwards", i)
		}
		prev = a[i].arrival
		if a[i].adaptive {
			adaptive++
			if a[i].rung != sc.AdaptiveRung {
				t.Fatalf("adaptive spec %d on rung %d, want ceiling %d", i, a[i].rung, sc.AdaptiveRung)
			}
		}
	}
	if adaptive == 0 || adaptive == len(a) {
		t.Errorf("adaptive mix degenerate: %d of %d", adaptive, len(a))
	}
}
