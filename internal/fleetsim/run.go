package fleetsim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adaptive"
	"repro/internal/battery"
	"repro/internal/breaker"
	"repro/internal/cluster"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/stream"
)

// Options is how the runner binds to the world outside the scenario.
type Options struct {
	// Seed drives the session population (arrivals, device mix, clip
	// and rung draws). Same scenario + same seed = same population.
	Seed int64
	// Addrs, when set, points the fleet at an external streamd cluster
	// instead of booting one in-process. The external catalog must
	// match Catalog() for the byte checks to hold; server-side scrapes
	// and churn injection are skipped (no process to kill).
	Addrs []string
	// Logf receives progress lines (nil = silent).
	Logf func(string, ...any)
}

// fleetBreaker fails over in tens of milliseconds so a killed owner
// costs the fleet a blip, not a timeout cascade.
var fleetBreaker = breaker.Config{
	Window: time.Second, Buckets: 4,
	FailureRate: 0.5, MinSamples: 1,
	OpenFor: 50 * time.Millisecond, HalfOpenProbes: 1, CloseAfter: 1,
}

// sessionSpec is one pre-drawn session of the population.
type sessionSpec struct {
	idx      int
	clip     string
	device   DeviceClass
	adaptive bool
	rung     int
	arrival  time.Duration
}

// genSpecs draws the whole session population up front from one seeded
// stream, so the population is a pure function of (scenario, seed) and
// independent of runtime scheduling.
func genSpecs(sc Scenario, seed int64) []sessionSpec {
	rng := rand.New(rand.NewSource(seed))
	totalW := 0.0
	for _, d := range sc.Devices {
		totalW += d.Weight
	}
	specs := make([]sessionSpec, sc.Sessions)
	at := 0.0
	for i := range specs {
		if sc.ArrivalRate > 0 {
			at += rng.ExpFloat64() / sc.ArrivalRate
		}
		clip := clipNames[rng.Intn(len(clipNames))]
		w := rng.Float64() * totalW
		dev := sc.Devices[len(sc.Devices)-1]
		for _, d := range sc.Devices {
			if w < d.Weight {
				dev = d
				break
			}
			w -= d.Weight
		}
		isAdaptive := rng.Float64() < sc.AdaptiveFrac
		rung := sc.Rungs[rng.Intn(len(sc.Rungs))]
		if isAdaptive {
			rung = sc.AdaptiveRung
		}
		specs[i] = sessionSpec{
			idx: i, clip: clip, device: dev,
			adaptive: isAdaptive, rung: rung,
			arrival: time.Duration(at * float64(time.Second)),
		}
	}
	return specs
}

// sessionResult is what one fleet session leaves behind.
type sessionResult struct {
	res       *stream.PlayResult
	err       error
	abandoned bool
	ttff      float64 // seconds from session start to first frame
	maxGap    float64 // worst inter-frame wall-clock gap, seconds
	digests   []uint64
}

// fleetNode is one in-process cluster member.
type fleetNode struct {
	srv  *stream.Server
	addr string
	reg  *obs.Registry
}

// frameDigest hashes a decoded frame's pixels — the same FNV-1a
// fingerprint the stream chaos tests use for bit-identity.
func frameDigest(f *frame.Frame) uint64 {
	h := fnv.New64a()
	var b [3]byte
	for _, p := range f.Pix {
		b[0], b[1], b[2] = p.R, p.G, p.B
		h.Write(b[:])
	}
	return h.Sum64()
}

// quiet is the discard logger for in-process servers.
func quiet(string, ...any) {}

// reserveAddr picks a free loopback port and releases it (the fleet
// boot needs every member's address before any member starts).
func reserveAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// bootFleet starts sc.Nodes clustered servers over the shared catalog,
// each with its own metrics registry and (when sc.Faults is set) a
// fault-injecting listener.
func bootFleet(sc Scenario, catalog map[string]core.Source) ([]*fleetNode, error) {
	fcfg, err := faults.ParseConfig(sc.Faults)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: %v", err)
	}
	addrs := make([]string, sc.Nodes)
	for i := range addrs {
		if addrs[i], err = reserveAddr(); err != nil {
			return nil, err
		}
	}
	nodes := make([]*fleetNode, sc.Nodes)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		srv := stream.NewServer(catalog)
		srv.SetLogf(quiet)
		if sc.MaxSessionsPerNode > 0 {
			srv.SetMaxSessions(sc.MaxSessionsPerNode)
		}
		if sc.Nodes > 1 {
			cn, err := cluster.New(cluster.Config{
				Self: addrs[i], Peers: peers,
				Breaker:    fleetBreaker,
				ProbeEvery: 20 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			srv.SetCluster(cn)
		}
		reg := obs.NewRegistry()
		srv.SetObserver(reg)
		ln, err := net.Listen("tcp", addrs[i])
		if err != nil {
			return nil, err
		}
		if fcfg.Enabled() {
			srv.Serve(faults.WrapListener(ln, fcfg))
		} else {
			srv.Serve(ln)
		}
		nodes[i] = &fleetNode{srv: srv, addr: addrs[i], reg: reg}
	}
	return nodes, nil
}

// Run executes one fleet scenario and seals its report. The run is
// closed-loop: it boots the cluster (unless pointed at one), drives the
// whole seeded session population through it, then verifies delivered
// bytes against reference streams and reconciles the client-side power
// ledgers with the servers' own /metrics story.
func Run(sc Scenario, opts Options) (*Report, error) {
	sc = sc.withDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = quiet
	}
	catalog := Catalog(sc.ClipW, sc.ClipH, sc.FPS)

	// The reference server: a standalone healthy node over the same
	// catalog, used after the run for bit-exact frame references and
	// the independent per-session savings expectation.
	refSrv := stream.NewServer(catalog)
	refSrv.SetLogf(quiet)
	refAddr, err := refSrv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer refSrv.Close()

	var nodes []*fleetNode
	addrs := opts.Addrs
	external := len(addrs) > 0
	if external {
		if sc.KillOwnerFrac > 0 {
			return nil, fmt.Errorf("fleetsim: cannot kill nodes of an external cluster")
		}
	} else {
		if nodes, err = bootFleet(sc, catalog); err != nil {
			return nil, err
		}
		defer func() {
			for _, n := range nodes {
				n.srv.Close()
			}
		}()
		addrs = make([]string, len(nodes))
		for i, n := range nodes {
			addrs[i] = n.addr
		}
	}

	// Churn: pick the variant-shard owner of the first clip and arm a
	// one-shot kill after the configured fraction of completions.
	killAfter := 0
	var owner *fleetNode
	if sc.KillOwnerFrac > 0 {
		killAfter = int(sc.KillOwnerFrac * float64(sc.Sessions))
		if killAfter < 1 {
			killAfter = 1
		}
		dg := core.SourceDigest(catalog[clipNames[0]])
		members := nodes[0].srv.Cluster().Members()
		ownerAddr := cluster.Owner(members, cluster.RouteKey("variant", dg))
		for _, n := range nodes {
			if n.addr == ownerAddr {
				owner = n
				break
			}
		}
		if owner == nil {
			return nil, fmt.Errorf("fleetsim: variant owner %s not in fleet", ownerAddr)
		}
	}

	specs := genSpecs(sc, opts.Seed)
	clientReg := obs.NewRegistry()
	results := make([]*sessionResult, len(specs))

	logf("fleetsim: %s: %d sessions over %d nodes (seed %d)", sc.Name, len(specs), len(addrs), opts.Seed)
	start := time.Now()
	sem := make(chan struct{}, sc.MaxConcurrent)
	var wg sync.WaitGroup
	var completions atomic.Int64
	var killOnce sync.Once
	killed := 0
	for i := range specs {
		wg.Add(1)
		go func(spec sessionSpec) {
			defer wg.Done()
			if d := spec.arrival - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			results[spec.idx] = runSession(spec, sc, addrs, clientReg)
			if owner != nil && completions.Add(1) == int64(killAfter) {
				killOnce.Do(func() {
					logf("fleetsim: killing variant owner %s after %d sessions", owner.addr, killAfter)
					owner.srv.Close()
					killed = 1
				})
			}
		}(specs[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	logf("fleetsim: %s: fleet drained in %.1fs", sc.Name, elapsed.Seconds())

	rep := &Report{Scenario: sc, Seed: opts.Seed}
	rep.Observed.ElapsedSeconds = elapsed.Seconds()
	rep.Observed.NodesKilled = killed
	foldCore(rep, sc, specs, results)
	if err := verifyAndExpect(rep, sc, specs, results, refAddr.String()); err != nil {
		return nil, err
	}
	fillQuantiles(rep, results)
	if !external {
		scrapeFleet(rep, nodes)
	}
	return rep, nil
}

// runSession plays one fleet session with failover dialing across the
// member list, recording wall-clock QoS and per-frame digests.
func runSession(spec sessionSpec, sc Scenario, addrs []string, clientReg *obs.Registry) *sessionResult {
	sr := &sessionResult{}
	dev := display.ByName(spec.device.Name)
	client := &stream.Client{
		Device:      dev,
		Obs:         clientReg,
		Retry:       stream.RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Millisecond, MaxDelay: 300 * time.Millisecond},
		ReadTimeout: 5 * time.Second,
	}
	if spec.adaptive {
		cfg := &adaptive.LadderConfig{}
		if spec.device.BatteryWh > 0 {
			cfg.Battery = battery.NewGaugeWh(spec.device.BatteryWh)
		}
		client.Ladder = cfg
	}
	// Failover dial: start from this session's home node (sessions
	// spread round-robin) and rotate through the member list until a
	// dial lands — a dead member costs one refused connect, not a
	// failed session.
	home := spec.idx % len(addrs)
	client.Dial = func(network, _ string) (net.Conn, error) {
		var lastErr error
		for k := 0; k < len(addrs); k++ {
			c, err := net.DialTimeout(network, addrs[(home+k)%len(addrs)], 2*time.Second)
			if err == nil {
				return c, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}

	t0 := time.Now()
	var last time.Time
	client.OnFrame = func(i int, f *frame.Frame, _ int) {
		now := time.Now()
		if i == 0 {
			sr.digests = sr.digests[:0]
			sr.ttff = now.Sub(t0).Seconds()
		} else if gap := now.Sub(last).Seconds(); gap > sr.maxGap {
			sr.maxGap = gap
		}
		last = now
		sr.digests = append(sr.digests, frameDigest(f))
	}

	ctx := context.Background()
	if sc.SessionTTL > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sc.SessionTTL)
		defer cancel()
	}
	// Request the middle of the rung's budget bracket so wire
	// quantization cannot land the session one rung low.
	quality := compensate.QualityLevels[spec.rung] + 0.025
	sr.res, sr.err = client.PlayContext(ctx, addrs[home], spec.clip, quality)
	if sr.err != nil && errors.Is(sr.err, context.DeadlineExceeded) {
		sr.abandoned = true
	}
	return sr
}

// foldCore folds per-session ledgers into the deterministic Core, in
// session-index order so the float summation order is fixed.
func foldCore(rep *Report, sc Scenario, specs []sessionSpec, results []*sessionResult) {
	c := &rep.Core
	c.Sessions = len(specs)
	c.SwitchHistogram = map[string]int{}
	c.RungSeconds = map[string]float64{}
	for i, sr := range results {
		if sr == nil || sr.err != nil {
			if sr != nil && sr.abandoned {
				c.Abandoned++
			} else {
				c.Failed++
			}
			continue
		}
		c.Completed++
		if specs[i].adaptive {
			c.AdaptiveSessions++
		}
		res := sr.res
		led := res.Ledger
		c.Frames += int64(res.Frames)
		c.SessionJoules += led.SessionJoules
		c.BaselineJoules += led.BaselineJoules
		c.SavedJoules += led.SavedJoules
		c.RadioJoules += led.RadioJoules
		c.WireBytes += led.WireBytes
		c.AnnotationBytes += led.AnnotationBytes
		c.Rebuffers += led.Rebuffers
		c.Retries += res.Retries
		c.Resumes += res.Resumes
		c.QualitySwitches += led.QualitySwitches
		c.SwitchHistogram[strconv.Itoa(led.QualitySwitches)]++
		if len(led.RungSeconds) > 0 {
			for _, r := range led.SortedRungs() {
				c.RungSeconds[strconv.Itoa(r)] += led.RungSeconds[r]
			}
		} else {
			// Fixed-quality sessions never name a rung to the ledger;
			// their whole playback dwells on the requested rung.
			c.RungSeconds[strconv.Itoa(specs[i].rung)] += led.Seconds
		}
	}
	if c.BaselineJoules > 0 {
		c.SavedPct = 100 * c.SavedJoules / c.BaselineJoules
	}
}

// refKey identifies one reference stream.
type refKey struct {
	clip string
	rung int
}

// refEntry caches one reference play: the bit-exact digests of the
// (clip, rung) stream and the modeled savings per device that played.
type refEntry struct {
	digests []uint64
	saved   map[string]float64 // device name -> reference SavedJoules
}

// verifyAndExpect plays reference sessions against the standalone
// server to (a) check every delivered fleet frame bit-exactly against
// the stream of the rung it was served at and (b) build the
// independent savings expectation for the session population.
func verifyAndExpect(rep *Report, sc Scenario, specs []sessionSpec, results []*sessionResult, refAddr string) error {
	refs := map[refKey]*refEntry{}
	ref := func(clip string, rung int, device string) (*refEntry, error) {
		k := refKey{clip, rung}
		e := refs[k]
		if e != nil {
			if _, ok := e.saved[device]; ok {
				return e, nil
			}
		}
		var digests []uint64
		client := &stream.Client{Device: display.ByName(device)}
		client.OnFrame = func(i int, f *frame.Frame, _ int) {
			if i == 0 {
				digests = digests[:0]
			}
			digests = append(digests, frameDigest(f))
		}
		res, err := client.Play(refAddr, clip, compensate.QualityLevels[rung]+0.025)
		if err != nil {
			return nil, fmt.Errorf("fleetsim: reference play %s rung %d: %w", clip, rung, err)
		}
		if e == nil {
			e = &refEntry{digests: digests, saved: map[string]float64{}}
			refs[k] = e
		}
		e.saved[device] = res.Ledger.SavedJoules
		return e, nil
	}

	for i, sr := range results {
		if sr == nil || sr.err != nil {
			continue
		}
		spec := specs[i]
		// Expectation at the requested rung (the adaptive ceiling for
		// ladder sessions), summed in index order.
		e, err := ref(spec.clip, spec.rung, spec.device.Name)
		if err != nil {
			return err
		}
		rep.Core.ExpectedSavedJoules += e.saved[spec.device.Name]
		// Byte check: each frame against the reference stream of the
		// rung it was actually served at.
		wrong := false
		for fi, d := range sr.digests {
			rung := spec.rung
			if len(sr.res.RungByFrame) > fi {
				rung = int(sr.res.RungByFrame[fi])
			}
			re, err := ref(spec.clip, rung, spec.device.Name)
			if err != nil {
				return err
			}
			if fi >= len(re.digests) || re.digests[fi] != d {
				wrong = true
				break
			}
		}
		if wrong {
			rep.Core.WrongBytes++
		}
	}
	return nil
}

// fillQuantiles computes the wall-clock latency quantiles over
// completed sessions.
func fillQuantiles(rep *Report, results []*sessionResult) {
	var ttffs, gaps []float64
	for _, sr := range results {
		if sr == nil || sr.err != nil {
			continue
		}
		ttffs = append(ttffs, sr.ttff)
		gaps = append(gaps, sr.maxGap)
	}
	rep.Observed.TTFFP50 = quantile(ttffs, 0.50)
	rep.Observed.TTFFP99 = quantile(ttffs, 0.99)
	rep.Observed.FrameGapP50 = quantile(gaps, 0.50)
	rep.Observed.FrameGapP99 = quantile(gaps, 0.99)
}

// scrapeFleet renders every node's registry as a Prometheus exposition
// (killed nodes included — the registry outlives the listener), parses
// it back through the typed parser, and folds the server-side story.
func scrapeFleet(rep *Report, nodes []*fleetNode) {
	o := &rep.Observed
	role := obs.L("role", "server")
	for _, n := range nodes {
		var sb strings.Builder
		if err := n.reg.WritePrometheus(&sb); err != nil {
			continue
		}
		e, err := obs.ParseExposition(strings.NewReader(sb.String()))
		if err != nil {
			continue
		}
		o.ScrapedNodes++
		o.ServerSessions += e.Sum("session_total", role)
		o.ServerSessionJoules += e.Sum("power_session_joules", role)
		o.ServerBaselineJoules += e.Sum("power_baseline_joules", role)
		o.ServerSavedJoules += e.Sum("power_saved_joules", role)
		o.Shed += e.Sum("stream_sessions_shed_total", role)
		o.SessionErrors += e.Sum("stream_session_errors_total", role)
		o.PeerFills += e.Sum("cluster_peer_fills_total", role)
		o.FillFailures += e.Sum("cluster_fill_failures_total", role)
		o.FallbackComputes += e.Sum("cluster_route_total", role, obs.L("decision", "fallback_compute"))
		for _, s := range e.Samples("cluster_peer_state", role) {
			if s.Value != 0 {
				o.BreakerOpenPeers++
			}
		}
	}
	if saved := rep.Core.SavedJoules; saved != 0 {
		o.LedgerAgreement = absf(saved-o.ServerSavedJoules) / absf(saved)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
