package fleetsim

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Core is the deterministic half of a fleet report: every field is a
// pure function of (scenario, seed) when the scenario is fixed-quality
// over healthy links, because it folds the clients' modeled power
// ledgers in session-index order (a fixed float summation order) and
// modeled joules do not depend on wall-clock scheduling. Adaptive
// sessions and injected faults can move the quality-switch and
// rebuffer fields — EXPERIMENTS.md scopes which scenarios are gated
// byte-identically and which statistically.
type Core struct {
	Sessions  int `json:"sessions"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Abandoned int `json:"abandoned"`
	// WrongBytes counts sessions with at least one delivered frame that
	// was not bit-identical to the reference stream of the rung it was
	// served at. The fleet's exactly-once correctness bar: always 0.
	WrongBytes       int   `json:"wrong_bytes"`
	AdaptiveSessions int   `json:"adaptive_sessions"`
	Frames           int64 `json:"frames"`

	// Client-side power story, folded from per-session power.Ledger
	// reports in session-index order.
	SessionJoules  float64 `json:"session_joules"`
	BaselineJoules float64 `json:"baseline_joules"`
	SavedJoules    float64 `json:"saved_joules"`
	SavedPct       float64 `json:"saved_pct"`
	RadioJoules    float64 `json:"radio_joules"`
	// ExpectedSavedJoules is the independent expectation: the sum over
	// the session population of reference-session savings at each
	// session's requested rung (ceiling rung for adaptive sessions),
	// measured against a standalone healthy server. The fleet's saved
	// joules must land in a band around this number no matter what the
	// cluster went through.
	ExpectedSavedJoules float64 `json:"expected_saved_joules"`

	WireBytes       int64 `json:"wire_bytes"`
	AnnotationBytes int64 `json:"annotation_bytes"`
	Rebuffers       int   `json:"rebuffers"`
	Retries         int   `json:"retries"`
	Resumes         int   `json:"resumes"`

	QualitySwitches int `json:"quality_switches"`
	// SwitchHistogram maps switches-per-session to session count.
	SwitchHistogram map[string]int `json:"switch_histogram"`
	// RungSeconds is fleet playback time per quality rung.
	RungSeconds map[string]float64 `json:"rung_seconds"`
}

// Observed is the wall-clock half: latency quantiles, scrape-derived
// server-side aggregates, and the agreement between the two power
// stories. Never byte-stable across runs; gated by bands, not bytes.
type Observed struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Time-to-first-frame and worst per-session inter-frame gap
	// quantiles across completed sessions, in seconds.
	TTFFP50     float64 `json:"ttff_p50_seconds"`
	TTFFP99     float64 `json:"ttff_p99_seconds"`
	FrameGapP50 float64 `json:"frame_gap_p50_seconds"`
	FrameGapP99 float64 `json:"frame_gap_p99_seconds"`

	// Server-side reconstruction, summed over every node's /metrics
	// exposition (role="server").
	ServerSessions       float64 `json:"server_sessions"`
	ServerSessionJoules  float64 `json:"server_session_joules"`
	ServerBaselineJoules float64 `json:"server_baseline_joules"`
	ServerSavedJoules    float64 `json:"server_saved_joules"`
	// LedgerAgreement is the relative difference between client-summed
	// and server-summed saved joules (0 = exact agreement). Meaningful
	// only when every session completed on a single node in one
	// attempt; churn legitimately splits a session's accounting.
	LedgerAgreement float64 `json:"ledger_agreement_rel"`

	Shed             float64 `json:"shed"`
	SessionErrors    float64 `json:"session_errors"`
	PeerFills        float64 `json:"peer_fills"`
	FillFailures     float64 `json:"fill_failures"`
	FallbackComputes float64 `json:"fallback_computes"`
	// BreakerOpenPeers counts peer breakers not closed at final scrape.
	BreakerOpenPeers int `json:"breaker_open_peers"`
	NodesKilled      int `json:"nodes_killed"`
	ScrapedNodes     int `json:"scraped_nodes"`
}

// Report is one fleet run's full output.
type Report struct {
	Scenario Scenario `json:"scenario"`
	Seed     int64    `json:"seed"`
	Core     Core     `json:"core"`
	Observed Observed `json:"observed"`
}

// CanonicalJSON renders the deterministic contract of the report —
// scenario, seed and Core — with sorted map keys and fixed field
// order, so two runs of the same (scenario, seed) compare with
// bytes.Equal. Observed is deliberately excluded: wall-clock latency
// never reproduces byte-for-byte.
func (r *Report) CanonicalJSON() ([]byte, error) {
	canon := struct {
		Scenario Scenario `json:"scenario"`
		Seed     int64    `json:"seed"`
		Core     Core     `json:"core"`
	}{r.Scenario, r.Seed, r.Core}
	return json.MarshalIndent(canon, "", "  ")
}

// JSON renders the full report (Core + Observed).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// BenchLines renders the report as `go test -bench`-shaped lines, the
// shape cmd/benchgate parses, so BENCH_fleet.json can gate fleet
// metrics with the same tool and policy as the serving benchmarks.
func (r *Report) BenchLines() string {
	f := func(v float64) string {
		return fmt.Sprintf("%.6g", v)
	}
	fields := []string{
		fmt.Sprintf("BenchmarkFleet/%s 1", r.Scenario.Name),
		f(r.Core.SavedJoules), "saved_joules",
		f(r.Core.SavedPct), "saved_pct",
		f(float64(r.Core.Frames)), "frames",
		f(float64(r.Core.Completed)), "completed",
		f(float64(r.Core.Failed)), "failed",
		f(float64(r.Core.WrongBytes)), "wrong_bytes",
		f(r.Observed.Shed), "shed",
		f(float64(r.Core.Rebuffers)), "rebuffers",
		f(float64(r.Core.QualitySwitches)), "quality_switches",
	}
	return strings.Join(fields, " ") + "\n"
}

// String is the one-screen human summary.
func (r *Report) String() string {
	var b strings.Builder
	c, o := r.Core, r.Observed
	fmt.Fprintf(&b, "fleet %s (seed %d): %d sessions — %d completed, %d failed, %d abandoned, %d wrong-bytes\n",
		r.Scenario.Name, r.Seed, c.Sessions, c.Completed, c.Failed, c.Abandoned, c.WrongBytes)
	fmt.Fprintf(&b, "power:   %.1f J saved of %.1f J baseline (%.1f%%), expected %.1f J; radio %.1f J\n",
		c.SavedJoules, c.BaselineJoules, c.SavedPct, c.ExpectedSavedJoules, c.RadioJoules)
	fmt.Fprintf(&b, "qos:     %d rebuffers, %d retries, %d resumes, %d quality switches; ttff p50/p99 %.0f/%.0f ms, gap p99 %.0f ms\n",
		c.Rebuffers, c.Retries, c.Resumes, c.QualitySwitches,
		o.TTFFP50*1000, o.TTFFP99*1000, o.FrameGapP99*1000)
	fmt.Fprintf(&b, "cluster: %d nodes scraped (%d killed), shed %.0f, peer fills %.0f, fallback computes %.0f, fill failures %.0f\n",
		o.ScrapedNodes, o.NodesKilled, o.Shed, o.PeerFills, o.FallbackComputes, o.FillFailures)
	fmt.Fprintf(&b, "agree:   server saved %.1f J vs client %.1f J (rel diff %.2e) over %.0f server sessions in %.1fs",
		o.ServerSavedJoules, c.SavedJoules, o.LedgerAgreement, o.ServerSessions, o.ElapsedSeconds)
	return b.String()
}

// Check runs the scenario's built-in acceptance assertions and returns
// the violations (empty = pass). The bar scales with what the scenario
// injects: every scenario demands exact bytes and no lost sessions; a
// healthy scenario additionally demands zero shed, zero retries and
// exact two-source agreement; a churn scenario demands completion
// through the kill and savings inside the model's expected band.
func (r *Report) Check() []string {
	var bad []string
	c, o := r.Core, r.Observed
	fail := func(format string, a ...any) {
		bad = append(bad, fmt.Sprintf(format, a...))
	}
	if c.Completed+c.Failed+c.Abandoned != c.Sessions {
		fail("session accounting leaks: %d+%d+%d != %d", c.Completed, c.Failed, c.Abandoned, c.Sessions)
	}
	if c.WrongBytes != 0 {
		fail("%d sessions delivered wrong bytes", c.WrongBytes)
	}
	if c.Failed != 0 {
		fail("%d sessions failed", c.Failed)
	}
	if c.Completed > 0 && c.SavedJoules <= 0 {
		fail("no power saved (%.3f J) across %d completed sessions", c.SavedJoules, c.Completed)
	}
	// The two-source band: fleet savings within ±25% of the
	// reference-session expectation (adaptive down-switching and churn
	// move it inside the band, never outside).
	if c.ExpectedSavedJoules > 0 {
		rel := math.Abs(c.SavedJoules-c.ExpectedSavedJoules) / c.ExpectedSavedJoules
		if rel > 0.25 {
			fail("saved %.1f J outside ±25%% of expected %.1f J", c.SavedJoules, c.ExpectedSavedJoules)
		}
	}
	healthy := r.Scenario.Faults == "" && r.Scenario.KillOwnerFrac == 0 &&
		r.Scenario.MaxSessionsPerNode == 0
	if healthy {
		if c.Abandoned != 0 {
			fail("%d sessions abandoned on a healthy fleet", c.Abandoned)
		}
		if o.Shed != 0 {
			fail("%.0f sessions shed on an uncapped fleet", o.Shed)
		}
		if c.Retries != 0 {
			fail("%d retries over healthy links", c.Retries)
		}
		if o.ScrapedNodes > 0 && o.LedgerAgreement > 1e-6 {
			fail("client/server ledgers disagree by %.2e (want exact on a healthy fleet)", o.LedgerAgreement)
		}
	}
	if r.Scenario.KillOwnerFrac > 0 {
		if c.Completed != c.Sessions {
			fail("churn drill: %d of %d sessions completed", c.Completed, c.Sessions)
		}
		if o.NodesKilled == 0 {
			fail("churn drill never killed a node")
		}
	}
	return bad
}

// Validity is the N-run statistical gate from the benchmarking policy:
// the coefficient of variation of saved_pct across independent seeded
// runs must stay under the threshold for the scenario's numbers to be
// quotable.
type Validity struct {
	Runs     int     `json:"runs"`
	MeanPct  float64 `json:"mean_saved_pct"`
	StdevPct float64 `json:"stdev_saved_pct"`
	CV       float64 `json:"cv"`
}

// Aggregate computes the cross-run validity stats over saved_pct.
func Aggregate(reports []*Report) Validity {
	v := Validity{Runs: len(reports)}
	if len(reports) == 0 {
		return v
	}
	for _, r := range reports {
		v.MeanPct += r.Core.SavedPct
	}
	v.MeanPct /= float64(len(reports))
	for _, r := range reports {
		d := r.Core.SavedPct - v.MeanPct
		v.StdevPct += d * d
	}
	if len(reports) > 1 {
		v.StdevPct = math.Sqrt(v.StdevPct / float64(len(reports)-1))
	} else {
		v.StdevPct = 0
	}
	if v.MeanPct != 0 {
		v.CV = v.StdevPct / math.Abs(v.MeanPct)
	}
	return v
}

// quantile returns the q-quantile (0..1) of vals by nearest-rank over
// a sorted copy; 0 for an empty slice.
func quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
