package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pixel"
)

func TestNewIsBlack(t *testing.T) {
	f := New(4, 3)
	if f.W != 4 || f.H != 3 || len(f.Pix) != 12 {
		t.Fatalf("New(4,3) shape = %dx%d/%d", f.W, f.H, len(f.Pix))
	}
	for i, p := range f.Pix {
		if p != (pixel.RGB{}) {
			t.Fatalf("pixel %d = %v, want black", i, p)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	f := New(5, 4)
	p := pixel.RGB{R: 1, G: 2, B: 3}
	f.Set(3, 2, p)
	if got := f.At(3, 2); got != p {
		t.Errorf("At(3,2) = %v, want %v", got, p)
	}
	if got := f.Pix[2*5+3]; got != p {
		t.Errorf("backing slice index mismatch: %v", got)
	}
}

func TestSolid(t *testing.T) {
	p := pixel.Gray(200)
	f := Solid(3, 3, p)
	for _, q := range f.Pix {
		if q != p {
			t.Fatalf("Solid pixel = %v, want %v", q, p)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := Solid(2, 2, pixel.Gray(10))
	g := f.Clone()
	g.Set(0, 0, pixel.Gray(99))
	if f.At(0, 0) != pixel.Gray(10) {
		t.Error("Clone shares backing storage")
	}
	if !f.Equal(f.Clone()) {
		t.Error("Clone not equal to original")
	}
}

func TestMaxAvgLuma(t *testing.T) {
	f := New(2, 1)
	f.Set(0, 0, pixel.Gray(100))
	f.Set(1, 0, pixel.Gray(50))
	if got := f.MaxLuma(); math.Abs(got-100) > 1e-9 {
		t.Errorf("MaxLuma = %v, want 100", got)
	}
	if got := f.AvgLuma(); math.Abs(got-75) > 1e-9 {
		t.Errorf("AvgLuma = %v, want 75", got)
	}
}

func TestMapDoesNotMutate(t *testing.T) {
	f := Solid(2, 2, pixel.Gray(10))
	g := f.Map(func(p pixel.RGB) pixel.RGB { return p.Scale(2) })
	if f.At(0, 0) != pixel.Gray(10) {
		t.Error("Map mutated the receiver")
	}
	if g.At(0, 0) != pixel.Gray(20) {
		t.Errorf("Map result = %v, want gray 20", g.At(0, 0))
	}
}

func TestMapInPlace(t *testing.T) {
	f := Solid(2, 2, pixel.Gray(10))
	f.MapInPlace(func(p pixel.RGB) pixel.RGB { return p.Add(5) })
	if f.At(1, 1) != pixel.Gray(15) {
		t.Errorf("MapInPlace result = %v, want gray 15", f.At(1, 1))
	}
}

func TestEqual(t *testing.T) {
	a := Solid(2, 2, pixel.Gray(7))
	b := Solid(2, 2, pixel.Gray(7))
	if !a.Equal(b) {
		t.Error("identical frames not Equal")
	}
	b.Set(0, 1, pixel.Gray(8))
	if a.Equal(b) {
		t.Error("different frames Equal")
	}
	c := Solid(2, 3, pixel.Gray(7))
	if a.Equal(c) {
		t.Error("different shapes Equal")
	}
}

func TestPSNRIdentical(t *testing.T) {
	f := Solid(4, 4, pixel.Gray(128))
	if got := f.PSNR(f.Clone()); got != 99 {
		t.Errorf("PSNR(identical) = %v, want 99 sentinel", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	f := Solid(4, 4, pixel.Gray(100))
	g := Solid(4, 4, pixel.Gray(110))
	// MSE = 100 on every channel -> PSNR = 10*log10(255^2/100) ~ 28.13 dB.
	want := 10 * math.Log10(255*255/100.0)
	if got := f.PSNR(g); math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PSNR with mismatched dims did not panic")
		}
	}()
	New(2, 2).PSNR(New(3, 2))
}

// Property: MaxLuma is an upper bound for AvgLuma and both lie in 0..255.
func TestLumaBoundsProperty(t *testing.T) {
	f := func(vals [9]uint8) bool {
		fr := New(3, 3)
		for i, v := range vals {
			fr.Pix[i] = pixel.RGB{R: v, G: vals[(i+1)%9], B: vals[(i+2)%9]}
		}
		max, avg := fr.MaxLuma(), fr.AvgLuma()
		return avg <= max+1e-9 && max <= 255 && avg >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PSNR is symmetric.
func TestPSNRSymmetricProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		fa := Solid(2, 2, pixel.Gray(a))
		fb := Solid(2, 2, pixel.Gray(b))
		return math.Abs(fa.PSNR(fb)-fb.PSNR(fa)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPPMRoundTrip(t *testing.T) {
	f := New(5, 3)
	for i := range f.Pix {
		f.Pix[i] = pixel.RGB{R: uint8(i * 11), G: uint8(i * 7), B: uint8(255 - i*13)}
	}
	var buf bytes.Buffer
	if err := f.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(got) {
		t.Error("PPM round trip altered pixels")
	}
}

func TestReadPPMRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"P5\n2 2\n255\n",
		"P6\n0 2\n255\n",
		"P6\n2 2\n65535\n",
		"P6\n2 2\n255\nxx", // truncated pixels
	}
	for i, s := range cases {
		if _, err := ReadPPM(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
