// Package frame defines the in-memory video frame representation shared by
// the generator, codec, compensation and display pipeline.
//
// A Frame stores interleaved 8-bit RGB pixels in a single backing slice so
// that whole-frame operations (luminance scans, compensation) are a single
// linear pass. Frames are small on the target class of device (QVGA and
// below), so frames are copied freely where that keeps APIs simple.
package frame

import (
	"fmt"
	"math"

	"repro/internal/pixel"
)

// Frame is a W×H raster of RGB pixels stored row-major.
type Frame struct {
	W, H int
	Pix  []pixel.RGB // len == W*H
}

// New returns a black frame of the given dimensions.
// It panics if either dimension is not positive, matching the hardware
// constraint that a display raster is never empty.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]pixel.RGB, w*h)}
}

// Solid returns a frame filled with the given pixel.
func Solid(w, h int, p pixel.RGB) *Frame {
	f := New(w, h)
	for i := range f.Pix {
		f.Pix[i] = p
	}
	return f
}

// At returns the pixel at (x, y). Callers must pass in-bounds coordinates.
func (f *Frame) At(x, y int) pixel.RGB { return f.Pix[y*f.W+x] }

// Set stores p at (x, y). Callers must pass in-bounds coordinates.
func (f *Frame) Set(x, y int, p pixel.RGB) { f.Pix[y*f.W+x] = p }

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]pixel.RGB, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// MaxLuma returns the maximum pixel luminance in the frame (0..255).
func (f *Frame) MaxLuma() float64 {
	max := 0.0
	for _, p := range f.Pix {
		if y := p.Luma(); y > max {
			max = y
		}
	}
	return max
}

// AvgLuma returns the mean pixel luminance in the frame (0..255).
func (f *Frame) AvgLuma() float64 {
	sum := 0.0
	for _, p := range f.Pix {
		sum += p.Luma()
	}
	return sum / float64(len(f.Pix))
}

// Map returns a new frame with fn applied to every pixel.
func (f *Frame) Map(fn func(pixel.RGB) pixel.RGB) *Frame {
	g := New(f.W, f.H)
	for i, p := range f.Pix {
		g.Pix[i] = fn(p)
	}
	return g
}

// MapInPlace applies fn to every pixel of f.
func (f *Frame) MapInPlace(fn func(pixel.RGB) pixel.RGB) {
	for i, p := range f.Pix {
		f.Pix[i] = fn(p)
	}
}

// Equal reports whether f and g have identical dimensions and pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.W != g.W || f.H != g.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			return false
		}
	}
	return true
}

// PSNR returns the peak signal-to-noise ratio of g relative to reference f,
// in dB, computed over all RGB channels. Identical frames return +Inf
// (represented as a large sentinel, 99 dB, the convention used by video
// quality tooling to keep aggregates finite).
func (f *Frame) PSNR(g *Frame) float64 {
	if f.W != g.W || f.H != g.H {
		panic("frame: PSNR dimension mismatch")
	}
	var se float64
	for i := range f.Pix {
		a, b := f.Pix[i], g.Pix[i]
		dr := float64(a.R) - float64(b.R)
		dg := float64(a.G) - float64(b.G)
		db := float64(a.B) - float64(b.B)
		se += dr*dr + dg*dg + db*db
	}
	n := float64(3 * len(f.Pix))
	mse := se / n
	if mse == 0 {
		return 99
	}
	return 10 * math.Log10(255*255/mse)
}
