package frame

import (
	"bufio"
	"fmt"
	"io"
)

// WritePPM serialises the frame as a binary PPM (P6) image — the simplest
// portable way to eyeball generated, compensated or snapshot frames with
// any image viewer.
func (f *Frame) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", f.W, f.H); err != nil {
		return err
	}
	for _, p := range f.Pix {
		if _, err := bw.Write([]byte{p.R, p.G, p.B}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPPM parses a binary PPM (P6) image with 8-bit samples.
func ReadPPM(r io.Reader) (*Frame, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("frame: reading PPM magic: %w", err)
	}
	if magic != "P6" {
		return nil, fmt.Errorf("frame: unsupported PPM magic %q", magic)
	}
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("frame: reading PPM header: %w", err)
	}
	if w <= 0 || h <= 0 || w*h > 1<<26 {
		return nil, fmt.Errorf("frame: implausible PPM dimensions %dx%d", w, h)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("frame: unsupported PPM max value %d", maxVal)
	}
	// Single whitespace byte after the header.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("frame: reading PPM separator: %w", err)
	}
	f := New(w, h)
	buf := make([]byte, 3*w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("frame: reading PPM pixels: %w", err)
	}
	for i := range f.Pix {
		f.Pix[i].R = buf[3*i]
		f.Pix[i].G = buf[3*i+1]
		f.Pix[i].B = buf[3*i+2]
	}
	return f, nil
}
