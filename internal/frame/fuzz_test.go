package frame

import (
	"bytes"
	"testing"

	"repro/internal/pixel"
)

// FuzzReadPPM drives the PPM parser with arbitrary bytes.
func FuzzReadPPM(f *testing.F) {
	img := Solid(3, 2, pixel.Gray(100))
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("P6\n1 1\n255\nabc"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadPPM(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WritePPM(&out); err != nil {
			t.Fatalf("re-encode of accepted PPM failed: %v", err)
		}
		back, err := ReadPPM(&out)
		if err != nil || !back.Equal(got) {
			t.Fatal("PPM re-encode not stable")
		}
	})
}
