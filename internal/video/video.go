// Package video provides the video-content substrate for the reproduction.
//
// The paper evaluates on ten movie previews and short clips downloaded from
// apple.com trailers ("these clips vary in length between 30 seconds and 3
// minutes and have scenes ranging from slow to fast motion", §5). Those
// MPEG files are not redistributable and decoding them would need an
// ffmpeg binding, so this package synthesises clips with the same
// *luminance structure*: sequences of scenes, most of them dark with
// sparse bright highlights, some with uniformly bright backgrounds
// (the paper singles out hunter_subres and ice_age as bright). The
// backlight-scaling technique consumes only per-frame luminance
// statistics, so matching those statistics preserves the experiment.
//
// Generation is fully deterministic: frame i of a clip is a pure function
// of the clip spec and i, so tests, benches and the streaming pipeline all
// see identical content without storing any frames.
package video

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// SceneSpec describes the luminance structure of one scene.
type SceneSpec struct {
	// Frames is the scene length in frames.
	Frames int
	// BaseLuma is the dominant background luminance (0..1).
	BaseLuma float64
	// LumaSpread is the background luminance range around BaseLuma.
	LumaSpread float64
	// MaxLuma is the luminance of the brightest features (0..1). The
	// generator guarantees a sprinkling of pixels at this level so the
	// frame maximum is stable across the scene.
	MaxLuma float64
	// HighlightFrac is the fraction of pixels at or near MaxLuma. Small
	// values model the "highlights concentrated in a few points or
	// spots" case that backlight scaling exploits; large values model
	// bright scenes where clipping buys little.
	HighlightFrac float64
	// Chroma is the colourfulness of the scene (0 = grayscale, 1 = vivid).
	Chroma float64
	// Motion is the per-frame drift of the background pattern in pixels;
	// it determines how well inter-frame coding compresses the scene.
	Motion float64
	// Flicker is the amplitude of frame-to-frame luminance jitter within
	// the scene (kept below the scene-change threshold by construction
	// in library clips).
	Flicker float64
	// Hue selects the scene's colour cast in [0,1).
	Hue float64
}

// Clip is a deterministic synthetic video clip.
type Clip struct {
	Name   string
	W, H   int
	FPS    int
	Scenes []SceneSpec
	Seed   int64

	starts []int // cumulative scene start frames
	total  int
}

// New assembles a clip and validates its scene list.
func New(name string, w, h, fps int, seed int64, scenes []SceneSpec) (*Clip, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("video: clip %q: invalid dimensions %dx%d", name, w, h)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("video: clip %q: invalid fps %d", name, fps)
	}
	if len(scenes) == 0 {
		return nil, fmt.Errorf("video: clip %q: no scenes", name)
	}
	c := &Clip{Name: name, W: w, H: h, FPS: fps, Scenes: scenes, Seed: seed}
	c.starts = make([]int, len(scenes))
	for i, s := range scenes {
		if s.Frames <= 0 {
			return nil, fmt.Errorf("video: clip %q: scene %d has %d frames", name, i, s.Frames)
		}
		if s.MaxLuma < s.BaseLuma {
			return nil, fmt.Errorf("video: clip %q: scene %d MaxLuma %v below BaseLuma %v",
				name, i, s.MaxLuma, s.BaseLuma)
		}
		c.starts[i] = c.total
		c.total += s.Frames
	}
	return c, nil
}

// MustNew is New for static clip definitions that cannot fail.
func MustNew(name string, w, h, fps int, seed int64, scenes []SceneSpec) *Clip {
	c, err := New(name, w, h, fps, seed, scenes)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalFrames returns the clip length in frames.
func (c *Clip) TotalFrames() int { return c.total }

// Duration returns the clip length in seconds.
func (c *Clip) Duration() float64 { return float64(c.total) / float64(c.FPS) }

// SceneIndexAt returns the index of the scene containing frame i, and the
// offset of i within it. Ground truth for scene-detection tests.
func (c *Clip) SceneIndexAt(i int) (scene, offset int) {
	if i < 0 || i >= c.total {
		panic(fmt.Sprintf("video: frame %d out of range [0,%d)", i, c.total))
	}
	lo, hi := 0, len(c.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, i - c.starts[lo]
}

// SceneStart returns the first frame index of scene s.
func (c *Clip) SceneStart(s int) int { return c.starts[s] }

// Frame renders frame i of the clip. Rendering is deterministic: the same
// (clip, i) always produces the identical frame.
func (c *Clip) Frame(i int) *frame.Frame {
	si, off := c.SceneIndexAt(i)
	s := c.Scenes[si]
	f := frame.New(c.W, c.H)

	// Scene-local deterministic generators. The highlight layout changes
	// slowly (every few frames) to model moving specular points.
	sceneSeed := c.Seed*1000003 + int64(si)*7919
	hlRng := rand.New(rand.NewSource(sceneSeed + int64(off/4)))

	flicker := 0.0
	if s.Flicker > 0 {
		fRng := rand.New(rand.NewSource(sceneSeed + 31*int64(off)))
		flicker = (fRng.Float64()*2 - 1) * s.Flicker
	}

	// Smooth drifting background: two low-frequency sinusoid products
	// give a cheap, codec-friendly pattern with controllable motion.
	t := float64(off) * s.Motion
	phaseX := float64(sceneSeed%97) / 97 * 2 * math.Pi
	phaseY := float64(sceneSeed%89) / 89 * 2 * math.Pi
	fw, fh := float64(c.W), float64(c.H)

	cb, cr := chromaFor(s.Hue, s.Chroma)

	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			u := (float64(x) + t) / fw * 2 * math.Pi
			v := (float64(y) + 0.6*t) / fh * 2 * math.Pi
			pattern := 0.5 + 0.25*math.Sin(2*u+phaseX) + 0.25*math.Cos(3*v+phaseY)*math.Sin(u+v)
			luma := s.BaseLuma + (pattern-0.5)*s.LumaSpread + flicker
			f.Set(x, y, lumaToRGB(luma, cb, cr))
		}
	}

	// Sparse highlights at MaxLuma. At least a handful per frame so the
	// frame maximum is pinned to the scene maximum.
	n := int(s.HighlightFrac * float64(c.W*c.H))
	if n < 4 {
		n = 4
	}
	for k := 0; k < n; k++ {
		x := hlRng.Intn(c.W)
		y := hlRng.Intn(c.H)
		// Highlights near but not all exactly at the peak: a small
		// deterministic spread populates the top of the histogram.
		lum := s.MaxLuma - hlRng.Float64()*0.04*(s.MaxLuma-s.BaseLuma)
		f.Set(x, y, lumaToRGB(lum+flicker, cb/2, cr/2))
	}
	// Pin four pixels exactly at MaxLuma (corner-adjacent spread pattern)
	// so max-luminance scene statistics are exact.
	for k := 0; k < 4; k++ {
		x := (hlRng.Intn(c.W-2) + 1)
		y := (hlRng.Intn(c.H-2) + 1)
		f.Set(x, y, lumaToRGB(s.MaxLuma, 0, 0))
	}
	return f
}

// lumaToRGB builds an RGB pixel with the requested normalised luminance
// and chroma offsets, going through YCbCr so the luminance is exact up to
// clamping.
func lumaToRGB(luma, cb, cr float64) pixel.RGB {
	y := pixel.Clamp01(luma) * 255
	return pixel.ToRGB(pixel.YCbCr{
		Y:  pixel.ClampU8(y),
		Cb: pixel.ClampU8(128 + cb*chromaScale(y)),
		Cr: pixel.ClampU8(128 + cr*chromaScale(y)),
	})
}

// chromaScale limits chroma near the luma extremes so the YCbCr→RGB
// conversion does not clip channels (which would perturb luminance).
func chromaScale(y float64) float64 {
	head := math.Min(y, 255-y)
	return math.Min(48, head*0.6)
}

// chromaFor converts a hue angle and saturation into Cb/Cr offsets.
func chromaFor(hue, chroma float64) (cb, cr float64) {
	a := hue * 2 * math.Pi
	return chroma * math.Cos(a), chroma * math.Sin(a)
}
