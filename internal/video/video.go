// Package video provides the video-content substrate for the reproduction.
//
// The paper evaluates on ten movie previews and short clips downloaded from
// apple.com trailers ("these clips vary in length between 30 seconds and 3
// minutes and have scenes ranging from slow to fast motion", §5). Those
// MPEG files are not redistributable and decoding them would need an
// ffmpeg binding, so this package synthesises clips with the same
// *luminance structure*: sequences of scenes, most of them dark with
// sparse bright highlights, some with uniformly bright backgrounds
// (the paper singles out hunter_subres and ice_age as bright). The
// backlight-scaling technique consumes only per-frame luminance
// statistics, so matching those statistics preserves the experiment.
//
// Generation is fully deterministic: frame i of a clip is a pure function
// of the clip spec and i, so tests, benches and the streaming pipeline all
// see identical content without storing any frames.
package video

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// SceneSpec describes the luminance structure of one scene.
type SceneSpec struct {
	// Frames is the scene length in frames.
	Frames int
	// BaseLuma is the dominant background luminance (0..1).
	BaseLuma float64
	// LumaSpread is the background luminance range around BaseLuma.
	LumaSpread float64
	// MaxLuma is the luminance of the brightest features (0..1). The
	// generator guarantees a sprinkling of pixels at this level so the
	// frame maximum is stable across the scene.
	MaxLuma float64
	// HighlightFrac is the fraction of pixels at or near MaxLuma. Small
	// values model the "highlights concentrated in a few points or
	// spots" case that backlight scaling exploits; large values model
	// bright scenes where clipping buys little.
	HighlightFrac float64
	// Chroma is the colourfulness of the scene (0 = grayscale, 1 = vivid).
	Chroma float64
	// Motion is the per-frame drift of the background pattern in pixels;
	// it determines how well inter-frame coding compresses the scene.
	Motion float64
	// Flicker is the amplitude of frame-to-frame luminance jitter within
	// the scene (kept below the scene-change threshold by construction
	// in library clips).
	Flicker float64
	// Hue selects the scene's colour cast in [0,1).
	Hue float64
}

// Clip is a deterministic synthetic video clip.
type Clip struct {
	Name   string
	W, H   int
	FPS    int
	Scenes []SceneSpec
	Seed   int64

	starts []int // cumulative scene start frames
	total  int

	// Highlight layouts are pure functions of (scene, frame/4); caching
	// them skips re-seeding and re-drawing the RNG on every frame of the
	// same 4-frame group. Bounded (see highlightLayout) and safe for the
	// pipeline's parallel per-frame workers.
	hlMu    sync.Mutex
	hlCache map[uint64]*hlLayout
}

// hlPt is one sparse highlight: position plus its pre-flicker luminance.
type hlPt struct {
	x, y int
	lum  float64
}

// hlLayout is the deterministic highlight placement shared by the four
// consecutive frames of one group.
type hlLayout struct {
	pts  []hlPt
	pins [4][2]int // pixels pinned exactly at the scene maximum
}

// New assembles a clip and validates its scene list.
func New(name string, w, h, fps int, seed int64, scenes []SceneSpec) (*Clip, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("video: clip %q: invalid dimensions %dx%d", name, w, h)
	}
	if fps <= 0 {
		return nil, fmt.Errorf("video: clip %q: invalid fps %d", name, fps)
	}
	if len(scenes) == 0 {
		return nil, fmt.Errorf("video: clip %q: no scenes", name)
	}
	c := &Clip{Name: name, W: w, H: h, FPS: fps, Scenes: scenes, Seed: seed}
	c.starts = make([]int, len(scenes))
	for i, s := range scenes {
		if s.Frames <= 0 {
			return nil, fmt.Errorf("video: clip %q: scene %d has %d frames", name, i, s.Frames)
		}
		if s.MaxLuma < s.BaseLuma {
			return nil, fmt.Errorf("video: clip %q: scene %d MaxLuma %v below BaseLuma %v",
				name, i, s.MaxLuma, s.BaseLuma)
		}
		c.starts[i] = c.total
		c.total += s.Frames
	}
	return c, nil
}

// MustNew is New for static clip definitions that cannot fail.
func MustNew(name string, w, h, fps int, seed int64, scenes []SceneSpec) *Clip {
	c, err := New(name, w, h, fps, seed, scenes)
	if err != nil {
		panic(err)
	}
	return c
}

// TotalFrames returns the clip length in frames.
func (c *Clip) TotalFrames() int { return c.total }

// Duration returns the clip length in seconds.
func (c *Clip) Duration() float64 { return float64(c.total) / float64(c.FPS) }

// SceneIndexAt returns the index of the scene containing frame i, and the
// offset of i within it. Ground truth for scene-detection tests.
func (c *Clip) SceneIndexAt(i int) (scene, offset int) {
	if i < 0 || i >= c.total {
		panic(fmt.Sprintf("video: frame %d out of range [0,%d)", i, c.total))
	}
	lo, hi := 0, len(c.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if c.starts[mid] <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, i - c.starts[lo]
}

// SceneStart returns the first frame index of scene s.
func (c *Clip) SceneStart(s int) int { return c.starts[s] }

// Frame renders frame i of the clip. Rendering is deterministic: the same
// (clip, i) always produces the identical frame.
//
// The implementation hoists every x-only and y-only term of the background
// pattern out of the pixel loop and serves the chroma-saturated luminance
// range from a per-frame lookup table. Each hoisted value is produced by
// the same float64 operations in the same order as the original per-pixel
// expression, so the rendered bytes are bit-identical to the naive
// triple-nested form (pinned by the pipeline golden tests).
func (c *Clip) Frame(i int) *frame.Frame {
	si, off := c.SceneIndexAt(i)
	s := c.Scenes[si]
	f := frame.New(c.W, c.H)

	// Scene-local deterministic generators. The highlight layout changes
	// slowly (every few frames) to model moving specular points.
	sceneSeed := c.Seed*1000003 + int64(si)*7919
	hl := c.highlightLayout(si, off/4, s, sceneSeed)

	flicker := 0.0
	if s.Flicker > 0 {
		fRng := rand.New(rand.NewSource(sceneSeed + 31*int64(off)))
		flicker = (fRng.Float64()*2 - 1) * s.Flicker
	}

	// Smooth drifting background: two low-frequency sinusoid products
	// give a cheap, codec-friendly pattern with controllable motion.
	t := float64(off) * s.Motion
	phaseX := float64(sceneSeed%97) / 97 * 2 * math.Pi
	phaseY := float64(sceneSeed%89) / 89 * 2 * math.Pi
	fw, fh := float64(c.W), float64(c.H)

	cb, cr := chromaFor(s.Hue, s.Chroma)

	// Column terms: u and 0.5 + 0.25*sin(2u+phaseX) depend only on x;
	// row terms: v and 0.25*cos(3v+phaseY) depend only on y. Only
	// sin(u+v) remains per pixel (expanding it algebraically would not
	// be bit-identical, so it stays).
	us := make([]float64, c.W)
	ax := make([]float64, c.W)
	for x := 0; x < c.W; x++ {
		u := (float64(x) + t) / fw * 2 * math.Pi
		us[x] = u
		ax[x] = 0.5 + 0.25*math.Sin(2*u+phaseX)
	}
	vs := make([]float64, c.H)
	by := make([]float64, c.H)
	for y := 0; y < c.H; y++ {
		v := (float64(y) + 0.6*t) / fh * 2 * math.Pi
		vs[y] = v
		by[y] = 0.25 * math.Cos(3*v+phaseY)
	}

	// Chroma-saturated fast path: for unclamped luma y255 in [80,175],
	// chromaScale caps at exactly 48 (fl(80*0.6) == 48 and rounding is
	// monotone), so Cb/Cr — and therefore the whole pixel — depend only
	// on the quantized luma byte. Memoise those pixels per frame; lumas
	// outside the cap fall back to the full conversion.
	cbSat := pixel.ClampU8(128 + cb*48)
	crSat := pixel.ClampU8(128 + cr*48)
	var lut [256]pixel.RGB
	var lutOK [256]bool

	for y := 0; y < c.H; y++ {
		row := f.Pix[y*c.W : (y+1)*c.W]
		v, b := vs[y], by[y]
		for x := range row {
			pattern := ax[x] + b*math.Sin(us[x]+v)
			luma := s.BaseLuma + (pattern-0.5)*s.LumaSpread + flicker
			y255 := pixel.Clamp01(luma) * 255
			if y255 >= 80 && y255 <= 175 {
				yi := pixel.ClampU8(y255)
				if !lutOK[yi] {
					lut[yi] = pixel.ToRGB(pixel.YCbCr{Y: yi, Cb: cbSat, Cr: crSat})
					lutOK[yi] = true
				}
				row[x] = lut[yi]
			} else {
				row[x] = lumaToRGB(luma, cb, cr)
			}
		}
	}

	// Sparse highlights at MaxLuma (layout cached per 4-frame group;
	// flicker is per frame, so it is applied here, not in the cache).
	for _, p := range hl.pts {
		f.Set(p.x, p.y, lumaToRGB(p.lum+flicker, cb/2, cr/2))
	}
	// Pin four pixels exactly at MaxLuma (corner-adjacent spread pattern)
	// so max-luminance scene statistics are exact.
	pin := lumaToRGB(s.MaxLuma, 0, 0)
	for _, xy := range hl.pins {
		f.Set(xy[0], xy[1], pin)
	}
	return f
}

// highlightLayout returns the highlight placement for one (scene, frame/4)
// group, drawing it exactly as the original per-frame code did: n sparse
// (x, y, luminance) triples followed by four pinned positions, all from one
// RNG seeded with sceneSeed+group. The cache is cleared wholesale past 64
// groups to bound memory; entries are cheap to regenerate.
func (c *Clip) highlightLayout(si, group int, s SceneSpec, sceneSeed int64) *hlLayout {
	key := uint64(si)<<32 | uint64(uint32(group))
	c.hlMu.Lock()
	if l, ok := c.hlCache[key]; ok {
		c.hlMu.Unlock()
		return l
	}
	c.hlMu.Unlock()

	rng := rand.New(rand.NewSource(sceneSeed + int64(group)))
	n := int(s.HighlightFrac * float64(c.W*c.H))
	if n < 4 {
		n = 4
	}
	l := &hlLayout{pts: make([]hlPt, n)}
	for k := 0; k < n; k++ {
		x := rng.Intn(c.W)
		y := rng.Intn(c.H)
		// Highlights near but not all exactly at the peak: a small
		// deterministic spread populates the top of the histogram.
		lum := s.MaxLuma - rng.Float64()*0.04*(s.MaxLuma-s.BaseLuma)
		l.pts[k] = hlPt{x: x, y: y, lum: lum}
	}
	for k := 0; k < 4; k++ {
		x := (rng.Intn(c.W-2) + 1)
		y := (rng.Intn(c.H-2) + 1)
		l.pins[k] = [2]int{x, y}
	}

	c.hlMu.Lock()
	if c.hlCache == nil {
		c.hlCache = make(map[uint64]*hlLayout)
	} else if len(c.hlCache) >= 64 {
		clear(c.hlCache)
	}
	c.hlCache[key] = l
	c.hlMu.Unlock()
	return l
}

// lumaToRGB builds an RGB pixel with the requested normalised luminance
// and chroma offsets, going through YCbCr so the luminance is exact up to
// clamping.
func lumaToRGB(luma, cb, cr float64) pixel.RGB {
	y := pixel.Clamp01(luma) * 255
	return pixel.ToRGB(pixel.YCbCr{
		Y:  pixel.ClampU8(y),
		Cb: pixel.ClampU8(128 + cb*chromaScale(y)),
		Cr: pixel.ClampU8(128 + cr*chromaScale(y)),
	})
}

// chromaScale limits chroma near the luma extremes so the YCbCr→RGB
// conversion does not clip channels (which would perturb luminance).
func chromaScale(y float64) float64 {
	head := math.Min(y, 255-y)
	return math.Min(48, head*0.6)
}

// chromaFor converts a hue angle and saturation into Cb/Cr offsets.
func chromaFor(hue, chroma float64) (cb, cr float64) {
	a := hue * 2 * math.Pi
	return chroma * math.Cos(a), chroma * math.Sin(a)
}
