package video

import (
	"bytes"
	"testing"

	"repro/internal/frame"
)

// FuzzReadY4M drives the Y4M parser with arbitrary bytes.
func FuzzReadY4M(f *testing.F) {
	src := MustNew("seed", 8, 6, 10, 1, []SceneSpec{
		{Frames: 2, BaseLuma: 0.3, LumaSpread: 0.1, MaxLuma: 0.8, HighlightFrac: 0.02},
	})
	var buf bytes.Buffer
	if err := WriteY4M(&buf, clipSizeAdapter{src}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("YUV4MPEG2 W2 H2 F30:1 C444\nFRAME\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		clip, err := ReadY4M(bytes.NewReader(data))
		if err != nil {
			return
		}
		if clip.TotalFrames() == 0 {
			t.Fatal("accepted stream with zero frames")
		}
		_ = clip.Frame(0)
	})
}

type clipSizeAdapter struct{ c *Clip }

func (a clipSizeAdapter) Size() (int, int)         { return a.c.W, a.c.H }
func (a clipSizeAdapter) FPS() int                 { return a.c.FPS }
func (a clipSizeAdapter) TotalFrames() int         { return a.c.TotalFrames() }
func (a clipSizeAdapter) Frame(i int) *frame.Frame { return a.c.Frame(i) }
