package video

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/histogram"
)

func testScenes() []SceneSpec {
	return []SceneSpec{
		{Frames: 10, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.8, HighlightFrac: 0.01, Chroma: 0.4, Motion: 1},
		{Frames: 5, BaseLuma: 0.6, LumaSpread: 0.2, MaxLuma: 0.95, HighlightFrac: 0.3, Chroma: 0.2},
	}
}

func testClip(t *testing.T) *Clip {
	t.Helper()
	c, err := New("test", 32, 24, 10, 42, testScenes())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		w, h   int
		fps    int
		scenes []SceneSpec
	}{
		{"zero width", 0, 10, 10, testScenes()},
		{"zero height", 10, 0, 10, testScenes()},
		{"zero fps", 10, 10, 0, testScenes()},
		{"no scenes", 10, 10, 10, nil},
		{"zero-frame scene", 10, 10, 10, []SceneSpec{{Frames: 0, MaxLuma: 1}}},
		{"max below base", 10, 10, 10, []SceneSpec{{Frames: 5, BaseLuma: 0.9, MaxLuma: 0.5}}},
	}
	for _, c := range cases {
		if _, err := New("bad", c.w, c.h, c.fps, 1, c.scenes); err == nil {
			t.Errorf("%s: New accepted invalid spec", c.name)
		}
	}
}

func TestTotalsAndDuration(t *testing.T) {
	c := testClip(t)
	if c.TotalFrames() != 15 {
		t.Errorf("TotalFrames = %d, want 15", c.TotalFrames())
	}
	if got := c.Duration(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Duration = %v, want 1.5", got)
	}
}

func TestSceneIndexAt(t *testing.T) {
	c := testClip(t)
	cases := []struct{ frame, scene, offset int }{
		{0, 0, 0}, {9, 0, 9}, {10, 1, 0}, {14, 1, 4},
	}
	for _, cs := range cases {
		s, off := c.SceneIndexAt(cs.frame)
		if s != cs.scene || off != cs.offset {
			t.Errorf("SceneIndexAt(%d) = (%d,%d), want (%d,%d)",
				cs.frame, s, off, cs.scene, cs.offset)
		}
	}
	if c.SceneStart(1) != 10 {
		t.Errorf("SceneStart(1) = %d, want 10", c.SceneStart(1))
	}
}

func TestSceneIndexAtPanicsOutOfRange(t *testing.T) {
	c := testClip(t)
	for _, i := range []int{-1, 15} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SceneIndexAt(%d) did not panic", i)
				}
			}()
			c.SceneIndexAt(i)
		}()
	}
}

func TestFrameDeterministic(t *testing.T) {
	c := testClip(t)
	a := c.Frame(7)
	b := c.Frame(7)
	if !a.Equal(b) {
		t.Error("Frame(7) not deterministic")
	}
}

func TestFrameMaxLumaPinnedToScene(t *testing.T) {
	c := testClip(t)
	for i := 0; i < c.TotalFrames(); i++ {
		si, _ := c.SceneIndexAt(i)
		want := c.Scenes[si].MaxLuma * 255
		got := c.Frame(i).MaxLuma()
		// Flicker and chroma clamping allow a small deviation.
		if math.Abs(got-want) > 12 {
			t.Errorf("frame %d: max luma %v, scene max %v", i, got, want)
		}
	}
}

func TestSceneLuminanceCharacter(t *testing.T) {
	c := testClip(t)
	dark := c.Frame(2)
	bright := c.Frame(12)
	if dark.AvgLuma() >= bright.AvgLuma() {
		t.Errorf("dark scene avg %v not below bright scene avg %v",
			dark.AvgLuma(), bright.AvgLuma())
	}
	// The dark scene's highlights are sparse: clipping 5% of pixels
	// must lower the ceiling a lot; in the bright scene it must not.
	hd := histogram.FromFrame(dark)
	hb := histogram.FromFrame(bright)
	dropDark := float64(hd.Max() - hd.ClipLevel(0.05))
	dropBright := float64(hb.Max() - hb.ClipLevel(0.05))
	if dropDark < 50 {
		t.Errorf("dark scene 5%% clip drop = %v levels, want large", dropDark)
	}
	if dropBright > 40 {
		t.Errorf("bright scene 5%% clip drop = %v levels, want small", dropBright)
	}
}

func TestSceneChangeVisibleInMaxLuma(t *testing.T) {
	c := testClip(t)
	before := c.Frame(9).MaxLuma()
	after := c.Frame(10).MaxLuma()
	if math.Abs(after-before)/255 < 0.10 {
		t.Errorf("scene change not visible: max luma %v -> %v", before, after)
	}
}

func TestLibraryShape(t *testing.T) {
	opt := LibraryOptions{W: 16, H: 12, FPS: 8, DurationScale: 0.1}
	clips := Library(opt)
	if len(clips) != 10 {
		t.Fatalf("library has %d clips, want 10", len(clips))
	}
	names := map[string]bool{}
	for _, c := range clips {
		names[c.Name] = true
		if c.W != 16 || c.H != 12 || c.FPS != 8 {
			t.Errorf("%s: unexpected raster %dx%d@%d", c.Name, c.W, c.H, c.FPS)
		}
		if c.TotalFrames() < 2 {
			t.Errorf("%s: too short: %d frames", c.Name, c.TotalFrames())
		}
		if len(c.Scenes) < 2 {
			t.Errorf("%s: only %d scenes", c.Name, len(c.Scenes))
		}
	}
	for _, want := range []string{"themovie", "ice_age", "theincredibles-tlr2"} {
		if !names[want] {
			t.Errorf("library missing clip %q", want)
		}
	}
}

func TestLibraryDurationsMatchPaperRange(t *testing.T) {
	opt := DefaultLibraryOptions()
	opt.W, opt.H = 8, 6 // tiny raster; duration independent of raster
	for _, c := range Library(opt) {
		d := c.Duration()
		if d < 29 || d > 181 {
			t.Errorf("%s: duration %vs outside the paper's 30s–3min range", c.Name, d)
		}
	}
}

func TestLibraryBrightClipsAreBright(t *testing.T) {
	opt := LibraryOptions{W: 24, H: 18, FPS: 6, DurationScale: 0.15}
	avg := func(name string) float64 {
		c := ClipByName(name, opt)
		if c == nil {
			t.Fatalf("clip %q missing", name)
		}
		var sum float64
		n := c.TotalFrames()
		for i := 0; i < n; i++ {
			sum += c.Frame(i).AvgLuma()
		}
		return sum / float64(n)
	}
	iceAge := avg("ice_age")
	hunter := avg("hunter_subres")
	rotk := avg("returnoftheking")
	incr := avg("theincredibles-tlr2")
	if iceAge <= rotk || iceAge <= incr {
		t.Errorf("ice_age avg %v not brighter than dark clips (%v, %v)", iceAge, rotk, incr)
	}
	if hunter <= rotk {
		t.Errorf("hunter_subres avg %v not brighter than returnoftheking %v", hunter, rotk)
	}
}

func TestClipByNameUnknown(t *testing.T) {
	if c := ClipByName("matrix", DefaultLibraryOptions()); c != nil {
		t.Error("ClipByName(matrix) returned a clip")
	}
}

func TestClipNamesOrder(t *testing.T) {
	names := ClipNames()
	if len(names) != 10 || names[0] != "themovie" || names[9] != "theincredibles-tlr2" {
		t.Errorf("ClipNames = %v", names)
	}
}

// Property: every generated frame's pixels have luminance within the
// scene's declared bounds (with slack for flicker and chroma clamping).
func TestFrameLumaWithinSceneBoundsProperty(t *testing.T) {
	c := testClip(t)
	f := func(raw uint8) bool {
		i := int(raw) % c.TotalFrames()
		si, _ := c.SceneIndexAt(i)
		s := c.Scenes[si]
		fr := c.Frame(i)
		min := (s.BaseLuma - s.LumaSpread - s.Flicker) * 255
		max := (s.MaxLuma + s.Flicker) * 255
		return fr.MaxLuma() <= max+8 && fr.AvgLuma() >= min-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
