package video

import (
	"math/rand"
)

// The ten clips of the paper's evaluation (§5, Figures 9–10), modelled by
// their luminance character:
//
//   - most clips are dark-scene heavy with sparse bright highlights
//     (street lights, specular points), which is what makes annotation-
//     driven scaling effective;
//   - hunter_subres and ice_age have bright backgrounds ("pixels are
//     concentrated in the high luminance range"), so clipping buys little;
//   - lengths range from 30 seconds to 3 minutes.
//
// Scene lists are synthesised deterministically from a per-clip profile so
// every run sees identical content.

// profile describes a clip's statistical character.
type profile struct {
	name     string
	seconds  int
	dark     float64 // fraction of dark scenes
	mid      float64 // fraction of mid scenes (rest is bright)
	seed     int64
	motion   float64 // typical background drift, px/frame
	minScene float64 // min scene length, seconds
	maxScene float64 // max scene length, seconds
}

var profiles = []profile{
	{name: "themovie", seconds: 120, dark: 0.55, mid: 0.30, seed: 101, motion: 0.7, minScene: 2, maxScene: 6},
	{name: "catwoman", seconds: 150, dark: 0.60, mid: 0.30, seed: 102, motion: 1.2, minScene: 1.5, maxScene: 5},
	{name: "hunter_subres", seconds: 45, dark: 0.08, mid: 0.30, seed: 103, motion: 0.5, minScene: 2, maxScene: 7},
	{name: "i_robot", seconds: 150, dark: 0.55, mid: 0.30, seed: 104, motion: 1.0, minScene: 1.5, maxScene: 5},
	{name: "ice_age", seconds: 90, dark: 0.02, mid: 0.08, seed: 105, motion: 0.8, minScene: 2, maxScene: 6},
	{name: "officexp", seconds: 30, dark: 0.35, mid: 0.45, seed: 106, motion: 0.3, minScene: 2, maxScene: 8},
	{name: "returnoftheking", seconds: 180, dark: 0.65, mid: 0.25, seed: 107, motion: 0.9, minScene: 2, maxScene: 6},
	{name: "shrek2", seconds: 135, dark: 0.40, mid: 0.40, seed: 108, motion: 0.8, minScene: 2, maxScene: 6},
	{name: "spiderman2", seconds: 150, dark: 0.55, mid: 0.30, seed: 109, motion: 1.1, minScene: 1.5, maxScene: 5},
	{name: "theincredibles-tlr2", seconds: 120, dark: 0.65, mid: 0.25, seed: 110, motion: 1.0, minScene: 2, maxScene: 6},
}

// LibraryOptions controls the rendered size of library clips. Smaller
// rasters and shorter durations keep analysis fast while preserving the
// luminance statistics the technique consumes.
type LibraryOptions struct {
	W, H int
	FPS  int
	// DurationScale scales every clip's nominal length (1.0 = the
	// paper's 30s–3min runtimes).
	DurationScale float64
}

// DefaultLibraryOptions renders at a PDA-proportioned quarter raster with
// paper-scale durations.
func DefaultLibraryOptions() LibraryOptions {
	return LibraryOptions{W: 120, H: 90, FPS: 10, DurationScale: 1.0}
}

// Library synthesises the ten evaluation clips.
func Library(opt LibraryOptions) []*Clip {
	clips := make([]*Clip, 0, len(profiles))
	for _, p := range profiles {
		clips = append(clips, p.build(opt))
	}
	return clips
}

// ClipByName synthesises a single library clip, or returns nil if the name
// is unknown.
func ClipByName(name string, opt LibraryOptions) *Clip {
	for _, p := range profiles {
		if p.name == name {
			return p.build(opt)
		}
	}
	return nil
}

// ClipNames lists the library clips in the paper's Figure 9/10 order.
func ClipNames() []string {
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.name
	}
	return names
}

func (p profile) build(opt LibraryOptions) *Clip {
	if opt.DurationScale <= 0 {
		opt.DurationScale = 1
	}
	rng := rand.New(rand.NewSource(p.seed))
	targetFrames := int(float64(p.seconds) * opt.DurationScale * float64(opt.FPS))
	if targetFrames < opt.FPS {
		targetFrames = opt.FPS
	}

	// Carve the clip into scene slots first, then assign classes from an
	// exactly proportioned, shuffled deck. Sampling classes independently
	// would let short renders of a dark clip come out bright by chance;
	// the deck keeps each clip's character at any DurationScale.
	var lengths []int
	total := 0
	for total < targetFrames {
		secs := p.minScene + rng.Float64()*(p.maxScene-p.minScene)
		n := int(secs * float64(opt.FPS))
		if n < 2 {
			n = 2
		}
		if total+n > targetFrames {
			n = targetFrames - total
			if n < 2 {
				break
			}
		}
		lengths = append(lengths, n)
		total += n
	}
	if len(lengths) == 0 {
		lengths = []int{targetFrames}
	}
	classes := p.classDeck(rng, len(lengths))
	scenes := make([]SceneSpec, len(lengths))
	for i, n := range lengths {
		scenes[i] = p.sampleScene(rng, n, classes[i])
		// A real cut changes the brightest content abruptly; resample
		// the scene peak until it is clearly separated from the
		// previous scene's, so the paper's max-luminance scene
		// detector sees the boundary.
		if i > 0 {
			for attempt := 0; attempt < 16 && !separated(scenes[i-1], scenes[i]); attempt++ {
				scenes[i].MaxLuma = resampleMax(rng, classes[i])
			}
		}
	}
	return MustNew(p.name, opt.W, opt.H, opt.FPS, p.seed, scenes)
}

// minPeakSeparation is the minimum |ΔMaxLuma| between adjacent scenes,
// comfortably above the detector's 10% threshold.
const minPeakSeparation = 0.13

func separated(a, b SceneSpec) bool {
	d := a.MaxLuma - b.MaxLuma
	if d < 0 {
		d = -d
	}
	return d >= minPeakSeparation && b.MaxLuma >= b.BaseLuma
}

// resampleMax draws a fresh scene peak for the class.
func resampleMax(rng *rand.Rand, class sceneClass) float64 {
	switch class {
	case classDark:
		return 0.55 + rng.Float64()*0.45
	case classMid:
		return 0.72 + rng.Float64()*0.28
	default:
		return 0.86 + rng.Float64()*0.14
	}
}

type sceneClass int

const (
	classDark sceneClass = iota
	classMid
	classBright
)

// classDeck builds a shuffled class assignment with exact proportions.
func (p profile) classDeck(rng *rand.Rand, n int) []sceneClass {
	deck := make([]sceneClass, n)
	nDark := int(p.dark*float64(n) + 0.5)
	nMid := int(p.mid*float64(n) + 0.5)
	if nDark+nMid > n {
		nMid = n - nDark
	}
	for i := range deck {
		switch {
		case i < nDark:
			deck[i] = classDark
		case i < nDark+nMid:
			deck[i] = classMid
		default:
			deck[i] = classBright
		}
	}
	rng.Shuffle(n, func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	return deck
}

// sampleScene draws one scene of the given class.
func (p profile) sampleScene(rng *rand.Rand, frames int, class sceneClass) SceneSpec {
	s := SceneSpec{
		Frames:  frames,
		Chroma:  0.3 + rng.Float64()*0.5,
		Motion:  p.motion * (0.5 + rng.Float64()),
		Flicker: rng.Float64() * 0.015,
		Hue:     rng.Float64(),
	}
	switch class {
	case classDark:
		// Dark scene: dim background, a few bright highlight points.
		// Lossless operation is bounded by the highlights; a small
		// clipping budget removes them and unlocks large savings.
		s.BaseLuma = 0.22 + rng.Float64()*0.14
		s.LumaSpread = 0.16 + rng.Float64()*0.08
		s.MaxLuma = 0.55 + rng.Float64()*0.45
		s.HighlightFrac = 0.002 + rng.Float64()*0.018
	case classMid:
		// Mid scene: moderate background, moderately dense highlights
		// that straddle the 5–20% clipping budgets.
		s.BaseLuma = 0.36 + rng.Float64()*0.16
		s.LumaSpread = 0.15 + rng.Float64()*0.05
		s.MaxLuma = 0.72 + rng.Float64()*0.28
		s.HighlightFrac = 0.02 + rng.Float64()*0.04
	default:
		// Bright scene: the histogram mass sits in the high range, so
		// even a 20% budget barely lowers the required luminance.
		s.BaseLuma = 0.66 + rng.Float64()*0.12
		s.LumaSpread = 0.15 + rng.Float64()*0.05
		s.MaxLuma = 0.86 + rng.Float64()*0.14
		s.HighlightFrac = 0.30 + rng.Float64()*0.15
	}
	if s.MaxLuma > 1 {
		s.MaxLuma = 1
	}
	return s
}
