package video

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/frame"
)

func TestY4MRoundTrip(t *testing.T) {
	src := MustNew("y4m", 24, 18, 12, 7, []SceneSpec{
		{Frames: 5, BaseLuma: 0.3, LumaSpread: 0.2, MaxLuma: 0.9, HighlightFrac: 0.02, Chroma: 0.5},
	})
	var buf bytes.Buffer
	if err := WriteY4M(&buf, clipAdapter{src}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadY4M(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 24 || got.H != 18 || got.Rate != 12 {
		t.Fatalf("header round trip: %dx%d@%d", got.W, got.H, got.Rate)
	}
	if got.TotalFrames() != 5 {
		t.Fatalf("frames = %d", got.TotalFrames())
	}
	for i := 0; i < 5; i++ {
		orig := src.Frame(i)
		back := got.Frame(i)
		// YCbCr round trip is lossy by ±2 per channel; PSNR stays high.
		if psnr := orig.PSNR(back); psnr < 45 {
			t.Errorf("frame %d PSNR = %.1f through Y4M", i, psnr)
		}
	}
}

// clipAdapter gives Clip the Size method the writer wants.
type clipAdapter struct{ c *Clip }

func (a clipAdapter) Size() (int, int)         { return a.c.W, a.c.H }
func (a clipAdapter) FPS() int                 { return a.c.FPS }
func (a clipAdapter) TotalFrames() int         { return a.c.TotalFrames() }
func (a clipAdapter) Frame(i int) *frame.Frame { return a.c.Frame(i) }

func TestReadY4MRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"MPEG4 W2 H2\n",
		"YUV4MPEG2 W0 H2 F30:1 C444\n",
		"YUV4MPEG2 W2 H2 F30:1 C420\n",
		"YUV4MPEG2 W2 H2 F30:1 C444\n",          // no frames
		"YUV4MPEG2 W2 H2 F30:1 C444\nBADMARK\n", // bad marker
		"YUV4MPEG2 W2 H2 F30:1 C444\nFRAME\nxx", // short frame
	}
	for i, s := range cases {
		if _, err := ReadY4M(strings.NewReader(s)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
