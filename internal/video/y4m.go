package video

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// Y4M (YUV4MPEG2) export/import: the uncompressed interchange format every
// video toolchain reads (mpv, ffmpeg, x264). Exporting a synthetic clip
// lets a human actually watch what the power experiments ran on, and
// importing lets real footage drive the pipeline.
//
// Frames are written as C444 (full-resolution planes, BT.601 full range)
// to avoid a lossy subsample on export; the codec package does its own
// 4:2:0 internally.

// WriteY4M writes the frames of src as a YUV4MPEG2 stream.
func WriteY4M(w io.Writer, src interface {
	Size() (int, int)
	FPS() int
	TotalFrames() int
	Frame(int) *frame.Frame
}) error {
	bw := bufio.NewWriter(w)
	width, height := src.Size()
	if _, err := fmt.Fprintf(bw, "YUV4MPEG2 W%d H%d F%d:1 Ip A1:1 C444\n",
		width, height, src.FPS()); err != nil {
		return err
	}
	n := src.TotalFrames()
	plane := make([]byte, width*height)
	for i := 0; i < n; i++ {
		if _, err := bw.WriteString("FRAME\n"); err != nil {
			return err
		}
		f := src.Frame(i)
		// Y, then Cb, then Cr, full resolution.
		for c := 0; c < 3; c++ {
			for j, p := range f.Pix {
				yc := pixel.ToYCbCr(p)
				switch c {
				case 0:
					plane[j] = yc.Y
				case 1:
					plane[j] = yc.Cb
				default:
					plane[j] = yc.Cr
				}
			}
			if _, err := bw.Write(plane); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Y4MClip is a decoded Y4M stream usable as a core.Source.
type Y4MClip struct {
	W, H   int
	Rate   int
	frames []*frame.Frame
}

// Size implements the source interface.
func (c *Y4MClip) Size() (int, int) { return c.W, c.H }

// FPS implements the source interface.
func (c *Y4MClip) FPS() int { return c.Rate }

// TotalFrames implements the source interface.
func (c *Y4MClip) TotalFrames() int { return len(c.frames) }

// Frame implements the source interface.
func (c *Y4MClip) Frame(i int) *frame.Frame { return c.frames[i] }

// ReadY4M parses a C444 YUV4MPEG2 stream written by WriteY4M.
func ReadY4M(r io.Reader) (*Y4MClip, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("video: reading Y4M header: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) == 0 || fields[0] != "YUV4MPEG2" {
		return nil, fmt.Errorf("video: not a YUV4MPEG2 stream")
	}
	clip := &Y4MClip{Rate: 30}
	c444 := false
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "W"):
			clip.W, _ = strconv.Atoi(f[1:])
		case strings.HasPrefix(f, "H"):
			clip.H, _ = strconv.Atoi(f[1:])
		case strings.HasPrefix(f, "F"):
			if num, _, ok := strings.Cut(f[1:], ":"); ok {
				clip.Rate, _ = strconv.Atoi(num)
			}
		case f == "C444":
			c444 = true
		}
	}
	if clip.W <= 0 || clip.H <= 0 || clip.W*clip.H > 1<<24 {
		return nil, fmt.Errorf("video: implausible Y4M dimensions %dx%d", clip.W, clip.H)
	}
	if !c444 {
		return nil, fmt.Errorf("video: only C444 Y4M is supported")
	}
	if clip.Rate <= 0 {
		clip.Rate = 30
	}
	planeSize := clip.W * clip.H
	buf := make([]byte, 3*planeSize)
	for {
		marker, err := br.ReadString('\n')
		if err == io.EOF && marker == "" {
			break
		}
		if err != nil && marker == "" {
			return nil, fmt.Errorf("video: reading Y4M frame marker: %w", err)
		}
		if !strings.HasPrefix(marker, "FRAME") {
			return nil, fmt.Errorf("video: bad Y4M frame marker %q", strings.TrimSpace(marker))
		}
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("video: short Y4M frame: %w", err)
		}
		f := frame.New(clip.W, clip.H)
		for j := range f.Pix {
			f.Pix[j] = pixel.ToRGB(pixel.YCbCr{
				Y:  buf[j],
				Cb: buf[planeSize+j],
				Cr: buf[2*planeSize+j],
			})
		}
		clip.frames = append(clip.frames, f)
	}
	if len(clip.frames) == 0 {
		return nil, fmt.Errorf("video: Y4M stream has no frames")
	}
	return clip, nil
}
