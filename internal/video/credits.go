package video

import (
	"math/rand"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// CreditsClip synthesises the one content type the paper reports its
// fixed-percentage clipping heuristic mishandles (§4.3): end credits —
// bright text scrolling over a uniform dark background, where clipping
// "may distort the text if too many pixels are clipped". The text pixels
// are a deterministic function of position, so callers can build an exact
// region-of-interest mask for any frame.
type CreditsClip struct {
	W, H   int
	Rate   int // frames per second
	Frames int
	Seed   int64
	// TextLuma and BackLuma are the normalised luminances of glyph and
	// background pixels.
	TextLuma, BackLuma float64
	// ScrollPerFrame is the upward scroll speed in pixels per frame.
	ScrollPerFrame int
}

// Credits returns a credits roll with defaults matching a movie's end
// titles: near-white text on a near-black background, scrolling one pixel
// per frame.
func Credits(w, h, fps, frames int, seed int64) *CreditsClip {
	return &CreditsClip{
		W: w, H: h, Rate: fps, Frames: frames, Seed: seed,
		TextLuma: 0.94, BackLuma: 0.07, ScrollPerFrame: 1,
	}
}

// Size implements the source interface.
func (c *CreditsClip) Size() (int, int) { return c.W, c.H }

// FPS implements the source interface.
func (c *CreditsClip) FPS() int { return c.Rate }

// TotalFrames implements the source interface.
func (c *CreditsClip) TotalFrames() int { return c.Frames }

// TextAt reports whether pixel (x, y) of frame i is part of a glyph. Text
// is laid out in bands of 2 glyph rows followed by 7 blank rows, scrolling
// upward; within a glyph row, runs of 2–5 lit columns alternate with gaps,
// drawn deterministically per absolute text line. Glyphs cover roughly a
// tenth of the frame, so the paper's 15–20% clipping budgets can (and, the
// paper reports, do) eat into the text.
func (c *CreditsClip) TextAt(i, x, y int) bool {
	// Absolute row in the scrolled text space.
	row := y + i*c.ScrollPerFrame
	const band = 9 // 2 text rows + 7 blank
	if row%band >= 2 {
		return false
	}
	line := row / band
	// Deterministic glyph pattern for this text line.
	rng := rand.New(rand.NewSource(c.Seed*31 + int64(line)))
	margin := c.W / 8
	pos := margin + rng.Intn(4)
	for pos < c.W-margin {
		run := 2 + rng.Intn(4)
		gap := 1 + rng.Intn(3)
		if x >= pos && x < pos+run {
			return true
		}
		if x < pos {
			return false
		}
		pos += run + gap
	}
	return false
}

// Frame renders frame i.
func (c *CreditsClip) Frame(i int) *frame.Frame {
	f := frame.New(c.W, c.H)
	text := pixel.Gray(pixel.ClampU8(c.TextLuma * 255))
	back := pixel.Gray(pixel.ClampU8(c.BackLuma * 255))
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.TextAt(i, x, y) {
				f.Set(x, y, text)
			} else {
				f.Set(x, y, back)
			}
		}
	}
	return f
}

// TextFraction returns the fraction of frame i's pixels that are glyphs.
func (c *CreditsClip) TextFraction(i int) float64 {
	n := 0
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.TextAt(i, x, y) {
				n++
			}
		}
	}
	return float64(n) / float64(c.W*c.H)
}
