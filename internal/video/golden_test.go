package video

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// referenceFrame is the original, naive renderer: per-pixel trig with no
// hoisting, no chroma LUT, and a freshly seeded highlight RNG on every
// call. The optimized Clip.Frame must reproduce it bit for bit — this is
// the golden contract that lets every downstream byte-identity guarantee
// (codec output, stream artifacts, resume, adaptive rungs) rest on a
// deterministic generator.
func referenceFrame(c *Clip, i int) *frame.Frame {
	si, off := c.SceneIndexAt(i)
	s := c.Scenes[si]
	f := frame.New(c.W, c.H)

	sceneSeed := c.Seed*1000003 + int64(si)*7919
	hlRng := rand.New(rand.NewSource(sceneSeed + int64(off/4)))

	flicker := 0.0
	if s.Flicker > 0 {
		fRng := rand.New(rand.NewSource(sceneSeed + 31*int64(off)))
		flicker = (fRng.Float64()*2 - 1) * s.Flicker
	}

	t := float64(off) * s.Motion
	phaseX := float64(sceneSeed%97) / 97 * 2 * math.Pi
	phaseY := float64(sceneSeed%89) / 89 * 2 * math.Pi
	fw, fh := float64(c.W), float64(c.H)

	cb, cr := chromaFor(s.Hue, s.Chroma)

	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			u := (float64(x) + t) / fw * 2 * math.Pi
			v := (float64(y) + 0.6*t) / fh * 2 * math.Pi
			pattern := 0.5 + 0.25*math.Sin(2*u+phaseX) + 0.25*math.Cos(3*v+phaseY)*math.Sin(u+v)
			luma := s.BaseLuma + (pattern-0.5)*s.LumaSpread + flicker
			f.Set(x, y, refLumaToRGB(luma, cb, cr))
		}
	}

	n := int(s.HighlightFrac * float64(c.W*c.H))
	if n < 4 {
		n = 4
	}
	for k := 0; k < n; k++ {
		x := hlRng.Intn(c.W)
		y := hlRng.Intn(c.H)
		lum := s.MaxLuma - hlRng.Float64()*0.04*(s.MaxLuma-s.BaseLuma)
		f.Set(x, y, refLumaToRGB(lum+flicker, cb/2, cr/2))
	}
	for k := 0; k < 4; k++ {
		x := (hlRng.Intn(c.W-2) + 1)
		y := (hlRng.Intn(c.H-2) + 1)
		f.Set(x, y, refLumaToRGB(s.MaxLuma, 0, 0))
	}
	return f
}

func refLumaToRGB(luma, cb, cr float64) pixel.RGB {
	y := pixel.Clamp01(luma) * 255
	refChromaScale := func(y float64) float64 {
		head := math.Min(y, 255-y)
		return math.Min(48, head*0.6)
	}
	return pixel.ToRGB(pixel.YCbCr{
		Y:  pixel.ClampU8(y),
		Cb: pixel.ClampU8(128 + cb*refChromaScale(y)),
		Cr: pixel.ClampU8(128 + cr*refChromaScale(y)),
	})
}

// TestFrameMatchesReferenceRenderer renders every frame of every library
// clip (bounded per clip) with both renderers and requires exact pixel
// equality. Clips cover dark, bright, colourful, flickering and
// fast-motion scenes, so the chroma-LUT cap boundary and the hoisted trig
// all get exercised.
func TestFrameMatchesReferenceRenderer(t *testing.T) {
	opt := DefaultLibraryOptions()
	opt.DurationScale = 0.05
	for _, name := range ClipNames() {
		c := ClipByName(name, opt)
		limit := c.TotalFrames()
		if limit > 48 {
			limit = 48
		}
		for i := 0; i < limit; i++ {
			got := c.Frame(i)
			want := referenceFrame(c, i)
			if !got.Equal(want) {
				t.Fatalf("clip %q frame %d differs from reference renderer", name, i)
			}
		}
	}
}

// TestFrameMatchesReferenceRendererExtremes drives synthetic scene specs
// at the edges the library avoids: luma pinned to 0 and 1, zero spread,
// saturating flicker, and a base luma straddling the chroma-saturation
// cap (y255 near 80 and 175) where the LUT fast path hands off to the
// full conversion.
func TestFrameMatchesReferenceRendererExtremes(t *testing.T) {
	scenes := []SceneSpec{
		{Frames: 6, BaseLuma: 0.0, LumaSpread: 0.0, MaxLuma: 0.0, HighlightFrac: 0, Chroma: 0, Motion: 0, Flicker: 0, Hue: 0},
		{Frames: 6, BaseLuma: 1.0, LumaSpread: 0.0, MaxLuma: 1.0, HighlightFrac: 0.5, Chroma: 1, Motion: 3, Flicker: 0.2, Hue: 0.9},
		{Frames: 6, BaseLuma: 80.0 / 255, LumaSpread: 0.02, MaxLuma: 0.9, HighlightFrac: 0.01, Chroma: 0.7, Motion: 1.5, Flicker: 0.01, Hue: 0.3},
		{Frames: 6, BaseLuma: 175.0 / 255, LumaSpread: 0.02, MaxLuma: 0.99, HighlightFrac: 0.02, Chroma: 0.4, Motion: 0.5, Flicker: 0, Hue: 0.6},
		{Frames: 6, BaseLuma: 0.5, LumaSpread: 1.0, MaxLuma: 1.0, HighlightFrac: 0.1, Chroma: 1, Motion: 7, Flicker: 0.4, Hue: 0.1},
	}
	c := MustNew("extremes", 37, 29, 8, 12345, scenes)
	for i := 0; i < c.TotalFrames(); i++ {
		got := c.Frame(i)
		want := referenceFrame(c, i)
		if !got.Equal(want) {
			t.Fatalf("extremes frame %d differs from reference renderer", i)
		}
	}
}
