package scene

import (
	"repro/internal/histogram"
)

// HistogramDetector is an alternative boundary detector that fires on
// whole-histogram change (earth mover's distance between consecutive
// frames) rather than on the maximum-luminance change the paper's
// heuristic uses. EMD is used rather than a bin-wise distance because
// within-scene luminance flicker shifts the whole histogram by a few
// levels — a small move of mass — while a cut reshapes the distribution.
// The paper's detector is the right tool for backlight scaling — the
// backlight target *is* a max-luminance statistic — but it is blind to
// cuts between scenes that share a peak while differing everywhere else.
// The ablation benches quantify that trade-off against generator ground
// truth.
type HistogramDetector struct {
	// Threshold is the earth mover's distance (in luminance levels)
	// that signals a cut.
	Threshold float64
	// MinInterval rate-limits boundaries, like the paper's detector.
	MinInterval int

	scenes  []Scene
	cur     *Scene
	prev    *histogram.H
	prevMax float64
	n       int
}

// NewHistogramDetector returns a detector with the given thresholds.
// Threshold must be in (0, 255]; MinInterval at least 1.
func NewHistogramDetector(threshold float64, minInterval int) *HistogramDetector {
	if threshold <= 0 || threshold > 255 {
		panic("scene: histogram threshold outside (0,255]")
	}
	if minInterval < 1 {
		panic("scene: min interval < 1")
	}
	return &HistogramDetector{Threshold: threshold, MinInterval: minInterval}
}

// Feed consumes the next frame's statistics (Hist must be non-nil).
func (d *HistogramDetector) Feed(st FrameStats) {
	if st.Hist == nil {
		panic("scene: histogram detector needs frame histograms")
	}
	if d.cur == nil {
		d.cur = &Scene{Start: d.n, End: d.n, MaxLuma: st.MaxLuma, Hist: &histogram.H{}}
	} else {
		dist := histogram.EMD(d.prev, st.Hist)
		if dist >= d.Threshold && d.cur.Len() >= d.MinInterval {
			d.scenes = append(d.scenes, *d.cur)
			d.cur = &Scene{Start: d.n, End: d.n, MaxLuma: st.MaxLuma, Hist: &histogram.H{}}
		}
	}
	if st.MaxLuma > d.cur.MaxLuma {
		d.cur.MaxLuma = st.MaxLuma
	}
	d.cur.Hist.Add(st.Hist)
	d.cur.End = d.n + 1
	d.prev = st.Hist
	d.prevMax = st.MaxLuma
	d.n++
}

// Finish flushes the open scene and returns all detected scenes.
func (d *HistogramDetector) Finish() []Scene {
	if d.cur != nil {
		d.scenes = append(d.scenes, *d.cur)
		d.cur = nil
	}
	return d.scenes
}

// DetectHistogram runs the histogram detector over a stats sequence.
func DetectHistogram(threshold float64, minInterval int, stats []FrameStats) []Scene {
	d := NewHistogramDetector(threshold, minInterval)
	for _, st := range stats {
		d.Feed(st)
	}
	return d.Finish()
}

// BoundaryScore compares detected scene boundaries against ground truth
// with a tolerance (frames). It returns precision (detected boundaries
// that are real) and recall (real boundaries that were detected). The
// implicit boundary at frame 0 is excluded.
func BoundaryScore(detected, truth []int, tolerance int) (precision, recall float64) {
	match := func(b int, ref []int) bool {
		for _, r := range ref {
			if abs(b-r) <= tolerance {
				return true
			}
		}
		return false
	}
	if len(detected) > 0 {
		hits := 0
		for _, b := range detected {
			if match(b, truth) {
				hits++
			}
		}
		precision = float64(hits) / float64(len(detected))
	}
	if len(truth) > 0 {
		hits := 0
		for _, r := range truth {
			if match(r, detected) {
				hits++
			}
		}
		recall = float64(hits) / float64(len(truth))
	}
	return precision, recall
}

// Boundaries extracts the start frames of all scenes but the first.
func Boundaries(scenes []Scene) []int {
	var out []int
	for i, s := range scenes {
		if i > 0 {
			out = append(out, s.Start)
		}
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
