// Package scene implements the paper's scene-detection heuristic (§4.3,
// Figure 6): frames are grouped into scenes by the stability of their
// maximum luminance. "A change of 10% or more in frame maximum luminance
// level is considered a scene change, but only if it does not occur more
// frequently than a threshold interval" — the interval rate-limit is what
// prevents visible backlight flicker. Both thresholds were experimentally
// set in the paper; they are configuration here so the ablation benches can
// sweep them.
package scene

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/histogram"
)

// Config holds the two experimentally set thresholds.
type Config struct {
	// Threshold is the normalised change in frame maximum luminance
	// (fraction of full scale) that signals a scene change. Paper: 0.10.
	Threshold float64
	// MinInterval is the minimum scene length in frames; changes arriving
	// sooner are absorbed into the current scene to avoid flicker.
	MinInterval int
}

// DefaultConfig returns the paper's settings at the given frame rate:
// a 10% threshold and a half-second minimum interval.
func DefaultConfig(fps int) Config {
	min := fps / 2
	if min < 1 {
		min = 1
	}
	return Config{Threshold: 0.10, MinInterval: min}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("scene: threshold %v outside (0,1]", c.Threshold)
	}
	if c.MinInterval < 1 {
		return fmt.Errorf("scene: min interval %d < 1", c.MinInterval)
	}
	return nil
}

// FrameStats is the per-frame information the detector consumes. Only
// luminance statistics are needed — never the pixels — which is what lets
// the server run detection as a single streaming pass.
type FrameStats struct {
	MaxLuma float64      // 0..255
	Hist    *histogram.H // luminance histogram of the frame
}

// StatsOf extracts FrameStats from a rendered frame. Histogram and frame
// maximum come out of one fused pixel scan (bit-identical to computing
// them separately; see histogram.Scan).
func StatsOf(f *frame.Frame) FrameStats {
	h, max := histogram.Scan(f)
	return FrameStats{MaxLuma: max, Hist: h}
}

// Scene is a detected group of frames with similar maximum luminance.
type Scene struct {
	Start, End int     // frame range [Start, End)
	MaxLuma    float64 // maximum frame luminance over the scene, 0..255
	Hist       *histogram.H
}

// Len returns the scene length in frames.
func (s Scene) Len() int { return s.End - s.Start }

// Detector incrementally groups frames into scenes.
type Detector struct {
	cfg     Config
	scenes  []Scene
	cur     *Scene
	prevMax float64
	n       int
}

// NewDetector returns a detector with the given thresholds.
// It panics on an invalid configuration; configurations are static.
func NewDetector(cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Detector{cfg: cfg}
}

// Feed consumes the next frame's statistics.
func (d *Detector) Feed(st FrameStats) {
	if d.cur == nil {
		d.cur = &Scene{Start: d.n, End: d.n, MaxLuma: st.MaxLuma, Hist: &histogram.H{}}
	} else {
		change := math.Abs(st.MaxLuma-d.prevMax) / 255
		if change >= d.cfg.Threshold && d.cur.Len() >= d.cfg.MinInterval {
			d.scenes = append(d.scenes, *d.cur)
			d.cur = &Scene{Start: d.n, End: d.n, MaxLuma: st.MaxLuma, Hist: &histogram.H{}}
		}
	}
	if st.MaxLuma > d.cur.MaxLuma {
		d.cur.MaxLuma = st.MaxLuma
	}
	if st.Hist != nil {
		d.cur.Hist.Add(st.Hist)
	}
	d.cur.End = d.n + 1
	d.prevMax = st.MaxLuma
	d.n++
}

// Finish flushes the open scene and returns all detected scenes. The
// detector may continue to be fed afterwards only by creating a new one.
func (d *Detector) Finish() []Scene {
	if d.cur != nil {
		d.scenes = append(d.scenes, *d.cur)
		d.cur = nil
	}
	return d.scenes
}

// Detect runs the detector over a sequence of per-frame statistics.
func Detect(cfg Config, stats []FrameStats) []Scene {
	d := NewDetector(cfg)
	for _, st := range stats {
		d.Feed(st)
	}
	return d.Finish()
}
