package scene

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/video"
)

func stats(maxes ...float64) []FrameStats {
	s := make([]FrameStats, len(maxes))
	for i, m := range maxes {
		s[i] = FrameStats{MaxLuma: m, Hist: histogram.FromLuma([]uint8{uint8(m)})}
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{Threshold: 0.1, MinInterval: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Threshold: 0, MinInterval: 1},
		{Threshold: 1.5, MinInterval: 1},
		{Threshold: 0.1, MinInterval: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(10)
	if c.Threshold != 0.10 || c.MinInterval != 5 {
		t.Errorf("DefaultConfig(10) = %+v", c)
	}
	if DefaultConfig(1).MinInterval != 1 {
		t.Error("DefaultConfig(1) min interval must clamp to 1")
	}
}

func TestSingleSceneWhenStable(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 2},
		stats(100, 102, 98, 101, 100))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
	s := got[0]
	if s.Start != 0 || s.End != 5 || s.Len() != 5 {
		t.Errorf("scene bounds = [%d,%d)", s.Start, s.End)
	}
	if s.MaxLuma != 102 {
		t.Errorf("scene MaxLuma = %v, want 102", s.MaxLuma)
	}
}

func TestSplitsOnLargeChange(t *testing.T) {
	// 100 -> 180 is a 31% change: must split (min interval satisfied).
	got := Detect(Config{Threshold: 0.1, MinInterval: 2},
		stats(100, 100, 100, 180, 180))
	if len(got) != 2 {
		t.Fatalf("detected %d scenes, want 2", len(got))
	}
	if got[0].End != 3 || got[1].Start != 3 {
		t.Errorf("split at %d/%d, want 3", got[0].End, got[1].Start)
	}
	if got[1].MaxLuma != 180 {
		t.Errorf("second scene max = %v", got[1].MaxLuma)
	}
}

func TestSmallChangeDoesNotSplit(t *testing.T) {
	// 100 -> 120 is ~7.8% of full scale: below the 10% threshold.
	got := Detect(Config{Threshold: 0.1, MinInterval: 1},
		stats(100, 120, 100, 120))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
}

func TestMinIntervalSuppressesFlicker(t *testing.T) {
	// Alternating 50/200 would split every frame without the rate limit.
	cfg := Config{Threshold: 0.1, MinInterval: 4}
	got := Detect(cfg, stats(50, 200, 50, 200, 50, 200, 50, 200))
	for _, s := range got[:len(got)-1] {
		if s.Len() < cfg.MinInterval {
			t.Errorf("scene [%d,%d) shorter than min interval", s.Start, s.End)
		}
	}
}

// --- first-frame and flush regression suite -------------------------------
//
// The edge cases a parallel pipeline would amplify if they were wrong:
// boundaries landing exactly on MinInterval, clips shorter than the
// interval, black leaders (prevMax == 0), and repeated flushes. None may
// divide by zero or produce a zero-length scene.

// A change arriving exactly MinInterval frames into the current scene is
// the earliest split the rate limit allows — it must fire, and the
// completed scene must be exactly MinInterval long.
func TestSplitExactlyAtMinInterval(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 3},
		stats(100, 100, 100, 200, 200, 200))
	if len(got) != 2 {
		t.Fatalf("detected %d scenes, want 2", len(got))
	}
	if got[0].Len() != 3 || got[1].Start != 3 {
		t.Errorf("scenes = [%d,%d) [%d,%d), want split exactly at 3",
			got[0].Start, got[0].End, got[1].Start, got[1].End)
	}
	// One frame earlier the same change must be absorbed.
	got = Detect(Config{Threshold: 0.1, MinInterval: 3},
		stats(100, 100, 200, 200, 200, 200))
	if len(got) != 1 {
		t.Fatalf("change before MinInterval split anyway: %d scenes", len(got))
	}
}

// A clip shorter than MinInterval still flushes as one (short) scene —
// never zero scenes, never a zero-length scene.
func TestClipShorterThanMinInterval(t *testing.T) {
	for frames := 1; frames < 5; frames++ {
		maxes := make([]float64, frames)
		for i := range maxes {
			maxes[i] = float64(40 + 60*(i%2)) // wild flicker, all absorbed
		}
		got := Detect(Config{Threshold: 0.1, MinInterval: 5}, stats(maxes...))
		if len(got) != 1 {
			t.Fatalf("%d-frame clip: detected %d scenes, want 1", frames, len(got))
		}
		if got[0].Start != 0 || got[0].End != frames {
			t.Errorf("%d-frame clip: scene [%d,%d)", frames, got[0].Start, got[0].End)
		}
	}
}

// A black leader (MaxLuma 0) followed by content: the 0 -> bright jump is
// a plain absolute change, no division by the zero previous maximum.
func TestBlackLeader(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 2},
		stats(0, 0, 0, 200, 200, 200))
	if len(got) != 2 {
		t.Fatalf("detected %d scenes, want 2 (leader + content)", len(got))
	}
	if got[0].MaxLuma != 0 || got[1].MaxLuma != 200 {
		t.Errorf("scene maxima = %v/%v, want 0/200", got[0].MaxLuma, got[1].MaxLuma)
	}
	// All-black clip: one scene, target computation downstream must see
	// MaxLuma 0 without inventing frames.
	got = Detect(Config{Threshold: 0.1, MinInterval: 2}, stats(0, 0, 0, 0))
	if len(got) != 1 || got[0].Len() != 4 {
		t.Fatalf("all-black clip: %+v", got)
	}
}

// Finish is idempotent and never emits a zero-length scene; the single
// frame case exercises the smallest possible flush.
func TestFinishFlushSemantics(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.1, MinInterval: 4})
	d.Feed(FrameStats{MaxLuma: 90})
	first := d.Finish()
	if len(first) != 1 || first[0].Len() != 1 {
		t.Fatalf("single-frame flush = %+v", first)
	}
	// A second Finish must not duplicate or emit an empty scene.
	if again := d.Finish(); len(again) != 1 {
		t.Errorf("double Finish emitted %d scenes, want 1", len(again))
	}
	for _, s := range first {
		if s.Len() <= 0 {
			t.Errorf("zero-length scene [%d,%d)", s.Start, s.End)
		}
	}
}

// The histogram detector honours the same first-frame rules: no access to
// a previous histogram on frame zero, min-interval suppression intact.
func TestHistogramDetectorFirstFrame(t *testing.T) {
	d := NewHistogramDetector(30, 2)
	d.Feed(FrameStats{MaxLuma: 10, Hist: histogram.FromLuma([]uint8{10})})
	d.Feed(FrameStats{MaxLuma: 250, Hist: histogram.FromLuma([]uint8{250})})
	got := d.Finish()
	if len(got) != 1 {
		t.Fatalf("change inside min interval split anyway: %d scenes", len(got))
	}
	if got[0].Hist.Total != 2 {
		t.Errorf("aggregate hist total = %d, want 2", got[0].Hist.Total)
	}
}

func TestSceneHistAggregates(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 1}, stats(10, 20, 30))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
	if got[0].Hist.Total != 3 {
		t.Errorf("scene hist total = %d, want 3", got[0].Hist.Total)
	}
}

func TestNilHistAccepted(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.1, MinInterval: 1})
	d.Feed(FrameStats{MaxLuma: 50})
	d.Feed(FrameStats{MaxLuma: 55})
	got := d.Finish()
	if len(got) != 1 || got[0].Hist.Total != 0 {
		t.Errorf("unexpected scenes %+v", got)
	}
}

func TestFinishEmpty(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.1, MinInterval: 1})
	if got := d.Finish(); len(got) != 0 {
		t.Errorf("Finish on empty detector = %v", got)
	}
}

func TestNewDetectorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDetector accepted invalid config")
		}
	}()
	NewDetector(Config{})
}

func TestStatsOf(t *testing.T) {
	f := frame.Solid(4, 4, pixel.Gray(77))
	st := StatsOf(f)
	if math.Abs(st.MaxLuma-77) > 1e-9 {
		t.Errorf("MaxLuma = %v, want 77", st.MaxLuma)
	}
	if st.Hist.Total != 16 || st.Hist.Count[77] != 16 {
		t.Errorf("hist = %v", st.Hist)
	}
}

// Detection on a synthetic library clip should land near the ground-truth
// scene boundaries when scene maxima differ enough.
func TestDetectRecoversClipScenes(t *testing.T) {
	c := video.MustNew("scenes", 24, 18, 10, 7, []video.SceneSpec{
		{Frames: 12, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.45, HighlightFrac: 0.01},
		{Frames: 12, BaseLuma: 0.5, LumaSpread: 0.1, MaxLuma: 0.95, HighlightFrac: 0.05},
		{Frames: 12, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.60, HighlightFrac: 0.01},
	})
	var st []FrameStats
	for i := 0; i < c.TotalFrames(); i++ {
		st = append(st, StatsOf(c.Frame(i)))
	}
	got := Detect(DefaultConfig(c.FPS), st)
	if len(got) != 3 {
		t.Fatalf("detected %d scenes, want 3: %+v", len(got), got)
	}
	wantStarts := []int{0, 12, 24}
	for i, s := range got {
		if s.Start != wantStarts[i] {
			t.Errorf("scene %d starts at %d, want %d", i, s.Start, wantStarts[i])
		}
	}
}

// Property: scenes partition the frame range exactly.
func TestScenesPartitionProperty(t *testing.T) {
	f := func(maxes []uint8, thRaw, minRaw uint8) bool {
		if len(maxes) == 0 {
			return true
		}
		cfg := Config{
			Threshold:   0.02 + float64(thRaw)/255*0.5,
			MinInterval: 1 + int(minRaw)%8,
		}
		st := make([]FrameStats, len(maxes))
		for i, m := range maxes {
			st[i] = FrameStats{MaxLuma: float64(m)}
		}
		scenes := Detect(cfg, st)
		pos := 0
		for _, s := range scenes {
			if s.Start != pos || s.End <= s.Start {
				return false
			}
			pos = s.End
		}
		return pos == len(maxes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every scene except the last respects the minimum interval, and
// scene MaxLuma equals the max of its frames.
func TestSceneInvariantsProperty(t *testing.T) {
	f := func(maxes []uint8, minRaw uint8) bool {
		if len(maxes) == 0 {
			return true
		}
		cfg := Config{Threshold: 0.1, MinInterval: 1 + int(minRaw)%6}
		st := make([]FrameStats, len(maxes))
		for i, m := range maxes {
			st[i] = FrameStats{MaxLuma: float64(m)}
		}
		scenes := Detect(cfg, st)
		for i, s := range scenes {
			if i < len(scenes)-1 && s.Len() < cfg.MinInterval {
				return false
			}
			want := 0.0
			for _, m := range maxes[s.Start:s.End] {
				if float64(m) > want {
					want = float64(m)
				}
			}
			if s.MaxLuma != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
