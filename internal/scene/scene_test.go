package scene

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/video"
)

func stats(maxes ...float64) []FrameStats {
	s := make([]FrameStats, len(maxes))
	for i, m := range maxes {
		s[i] = FrameStats{MaxLuma: m, Hist: histogram.FromLuma([]uint8{uint8(m)})}
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	good := Config{Threshold: 0.1, MinInterval: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{Threshold: 0, MinInterval: 1},
		{Threshold: 1.5, MinInterval: 1},
		{Threshold: 0.1, MinInterval: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(10)
	if c.Threshold != 0.10 || c.MinInterval != 5 {
		t.Errorf("DefaultConfig(10) = %+v", c)
	}
	if DefaultConfig(1).MinInterval != 1 {
		t.Error("DefaultConfig(1) min interval must clamp to 1")
	}
}

func TestSingleSceneWhenStable(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 2},
		stats(100, 102, 98, 101, 100))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
	s := got[0]
	if s.Start != 0 || s.End != 5 || s.Len() != 5 {
		t.Errorf("scene bounds = [%d,%d)", s.Start, s.End)
	}
	if s.MaxLuma != 102 {
		t.Errorf("scene MaxLuma = %v, want 102", s.MaxLuma)
	}
}

func TestSplitsOnLargeChange(t *testing.T) {
	// 100 -> 180 is a 31% change: must split (min interval satisfied).
	got := Detect(Config{Threshold: 0.1, MinInterval: 2},
		stats(100, 100, 100, 180, 180))
	if len(got) != 2 {
		t.Fatalf("detected %d scenes, want 2", len(got))
	}
	if got[0].End != 3 || got[1].Start != 3 {
		t.Errorf("split at %d/%d, want 3", got[0].End, got[1].Start)
	}
	if got[1].MaxLuma != 180 {
		t.Errorf("second scene max = %v", got[1].MaxLuma)
	}
}

func TestSmallChangeDoesNotSplit(t *testing.T) {
	// 100 -> 120 is ~7.8% of full scale: below the 10% threshold.
	got := Detect(Config{Threshold: 0.1, MinInterval: 1},
		stats(100, 120, 100, 120))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
}

func TestMinIntervalSuppressesFlicker(t *testing.T) {
	// Alternating 50/200 would split every frame without the rate limit.
	cfg := Config{Threshold: 0.1, MinInterval: 4}
	got := Detect(cfg, stats(50, 200, 50, 200, 50, 200, 50, 200))
	for _, s := range got[:len(got)-1] {
		if s.Len() < cfg.MinInterval {
			t.Errorf("scene [%d,%d) shorter than min interval", s.Start, s.End)
		}
	}
}

func TestSceneHistAggregates(t *testing.T) {
	got := Detect(Config{Threshold: 0.1, MinInterval: 1}, stats(10, 20, 30))
	if len(got) != 1 {
		t.Fatalf("detected %d scenes, want 1", len(got))
	}
	if got[0].Hist.Total != 3 {
		t.Errorf("scene hist total = %d, want 3", got[0].Hist.Total)
	}
}

func TestNilHistAccepted(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.1, MinInterval: 1})
	d.Feed(FrameStats{MaxLuma: 50})
	d.Feed(FrameStats{MaxLuma: 55})
	got := d.Finish()
	if len(got) != 1 || got[0].Hist.Total != 0 {
		t.Errorf("unexpected scenes %+v", got)
	}
}

func TestFinishEmpty(t *testing.T) {
	d := NewDetector(Config{Threshold: 0.1, MinInterval: 1})
	if got := d.Finish(); len(got) != 0 {
		t.Errorf("Finish on empty detector = %v", got)
	}
}

func TestNewDetectorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDetector accepted invalid config")
		}
	}()
	NewDetector(Config{})
}

func TestStatsOf(t *testing.T) {
	f := frame.Solid(4, 4, pixel.Gray(77))
	st := StatsOf(f)
	if math.Abs(st.MaxLuma-77) > 1e-9 {
		t.Errorf("MaxLuma = %v, want 77", st.MaxLuma)
	}
	if st.Hist.Total != 16 || st.Hist.Count[77] != 16 {
		t.Errorf("hist = %v", st.Hist)
	}
}

// Detection on a synthetic library clip should land near the ground-truth
// scene boundaries when scene maxima differ enough.
func TestDetectRecoversClipScenes(t *testing.T) {
	c := video.MustNew("scenes", 24, 18, 10, 7, []video.SceneSpec{
		{Frames: 12, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.45, HighlightFrac: 0.01},
		{Frames: 12, BaseLuma: 0.5, LumaSpread: 0.1, MaxLuma: 0.95, HighlightFrac: 0.05},
		{Frames: 12, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.60, HighlightFrac: 0.01},
	})
	var st []FrameStats
	for i := 0; i < c.TotalFrames(); i++ {
		st = append(st, StatsOf(c.Frame(i)))
	}
	got := Detect(DefaultConfig(c.FPS), st)
	if len(got) != 3 {
		t.Fatalf("detected %d scenes, want 3: %+v", len(got), got)
	}
	wantStarts := []int{0, 12, 24}
	for i, s := range got {
		if s.Start != wantStarts[i] {
			t.Errorf("scene %d starts at %d, want %d", i, s.Start, wantStarts[i])
		}
	}
}

// Property: scenes partition the frame range exactly.
func TestScenesPartitionProperty(t *testing.T) {
	f := func(maxes []uint8, thRaw, minRaw uint8) bool {
		if len(maxes) == 0 {
			return true
		}
		cfg := Config{
			Threshold:   0.02 + float64(thRaw)/255*0.5,
			MinInterval: 1 + int(minRaw)%8,
		}
		st := make([]FrameStats, len(maxes))
		for i, m := range maxes {
			st[i] = FrameStats{MaxLuma: float64(m)}
		}
		scenes := Detect(cfg, st)
		pos := 0
		for _, s := range scenes {
			if s.Start != pos || s.End <= s.Start {
				return false
			}
			pos = s.End
		}
		return pos == len(maxes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every scene except the last respects the minimum interval, and
// scene MaxLuma equals the max of its frames.
func TestSceneInvariantsProperty(t *testing.T) {
	f := func(maxes []uint8, minRaw uint8) bool {
		if len(maxes) == 0 {
			return true
		}
		cfg := Config{Threshold: 0.1, MinInterval: 1 + int(minRaw)%6}
		st := make([]FrameStats, len(maxes))
		for i, m := range maxes {
			st[i] = FrameStats{MaxLuma: float64(m)}
		}
		scenes := Detect(cfg, st)
		for i, s := range scenes {
			if i < len(scenes)-1 && s.Len() < cfg.MinInterval {
				return false
			}
			want := 0.0
			for _, m := range maxes[s.Start:s.End] {
				if float64(m) > want {
					want = float64(m)
				}
			}
			if s.MaxLuma != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
