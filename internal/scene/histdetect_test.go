package scene

import (
	"testing"
	"testing/quick"

	"repro/internal/histogram"
	"repro/internal/video"
)

func clipStats(t *testing.T, c *video.Clip) []FrameStats {
	t.Helper()
	stats := make([]FrameStats, c.TotalFrames())
	for i := range stats {
		stats[i] = StatsOf(c.Frame(i))
	}
	return stats
}

func TestHistogramDetectorFindsContentCuts(t *testing.T) {
	// Two scenes with the SAME maximum luminance but different
	// backgrounds: invisible to the max-luminance heuristic, obvious to
	// the histogram detector.
	c := video.MustNew("same-peak", 24, 18, 10, 3, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.9, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.55, LumaSpread: 0.1, MaxLuma: 0.9, HighlightFrac: 0.01},
	})
	stats := clipStats(t, c)

	maxLuma := Detect(DefaultConfig(c.FPS), stats)
	hist := DetectHistogram(10, 2, stats)

	if len(maxLuma) != 1 {
		t.Errorf("max-luminance heuristic found %d scenes; equal peaks should merge", len(maxLuma))
	}
	if len(hist) != 2 {
		t.Fatalf("histogram detector found %d scenes, want 2", len(hist))
	}
	if hist[1].Start != 10 {
		t.Errorf("histogram boundary at %d, want 10", hist[1].Start)
	}
}

func TestHistogramDetectorRecoversLibraryBoundaries(t *testing.T) {
	opt := video.LibraryOptions{W: 48, H: 36, FPS: 8, DurationScale: 0.2}
	c := video.ClipByName("returnoftheking", opt)
	stats := clipStats(t, c)
	detected := DetectHistogram(10, 2, stats)
	var truth []int
	for i := 1; i < len(c.Scenes); i++ {
		truth = append(truth, c.SceneStart(i))
	}
	precision, recall := BoundaryScore(Boundaries(detected), truth, 1)
	if recall < 0.7 {
		t.Errorf("histogram detector recall = %v on clean cuts", recall)
	}
	if precision < 0.9 {
		t.Errorf("histogram detector precision = %v", precision)
	}
}

func TestHistogramDetectorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogramDetector(0, 1) },
		func() { NewHistogramDetector(300, 1) },
		func() { NewHistogramDetector(10, 0) },
		func() { NewHistogramDetector(10, 1).Feed(FrameStats{MaxLuma: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBoundaryScore(t *testing.T) {
	precision, recall := BoundaryScore([]int{10, 20, 31}, []int{10, 20, 30, 40}, 1)
	if precision != 1 {
		t.Errorf("precision = %v, want 1 (31 matches 30 within tolerance)", precision)
	}
	if recall != 0.75 {
		t.Errorf("recall = %v, want 0.75 (40 missed)", recall)
	}
	p0, r0 := BoundaryScore(nil, nil, 1)
	if p0 != 0 || r0 != 0 {
		t.Errorf("empty score = %v/%v", p0, r0)
	}
}

func TestBoundaries(t *testing.T) {
	scenes := []Scene{{Start: 0, End: 5}, {Start: 5, End: 9}, {Start: 9, End: 12}}
	got := Boundaries(scenes)
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Errorf("Boundaries = %v", got)
	}
	if Boundaries(nil) != nil {
		t.Error("Boundaries(nil) not nil")
	}
}

// Property: the histogram detector partitions the frame range and
// respects the minimum interval.
func TestHistogramDetectorPartitionProperty(t *testing.T) {
	f := func(lumas []uint8, thRaw, miRaw uint8) bool {
		if len(lumas) == 0 {
			return true
		}
		th := 1 + float64(thRaw)/255*40
		mi := 1 + int(miRaw)%5
		stats := make([]FrameStats, len(lumas))
		for i, l := range lumas {
			stats[i] = FrameStats{
				MaxLuma: float64(l),
				Hist:    histogram.FromLuma([]uint8{l, l / 2}),
			}
		}
		scenes := DetectHistogram(th, mi, stats)
		pos := 0
		for i, s := range scenes {
			if s.Start != pos || s.End <= s.Start {
				return false
			}
			if i < len(scenes)-1 && s.Len() < mi {
				return false
			}
			pos = s.End
		}
		return pos == len(lumas)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
