package scene_test

import (
	"fmt"

	"repro/internal/scene"
)

// The paper's heuristic: a >=10% change in frame maximum luminance starts
// a new scene, rate-limited by the minimum interval.
func ExampleDetect() {
	var stats []scene.FrameStats
	for _, max := range []float64{100, 101, 99, 100, 180, 182, 181, 90, 91} {
		stats = append(stats, scene.FrameStats{MaxLuma: max})
	}
	scenes := scene.Detect(scene.Config{Threshold: 0.10, MinInterval: 2}, stats)
	for i, s := range scenes {
		fmt.Printf("scene %d: frames [%d,%d) max %.0f\n", i, s.Start, s.End, s.MaxLuma)
	}
	// Output:
	// scene 0: frames [0,4) max 101
	// scene 1: frames [4,7) max 182
	// scene 2: frames [7,9) max 91
}
