package netsched

import "time"

// Buffer tracks live playout-buffer health for an adaptive streaming
// session: how far ahead of the playout clock the delivered frames
// reach. Unlike the offline playout simulation above, it is fed from a
// real receive loop — each delivered frame extends the buffered
// horizon by one frame time, while the wall clock advances playback at
// real time. The lead (buffered seconds not yet played) is the signal
// the quality ladder steers by: shrinking lead means the link is
// falling behind and the session should walk down a rung before it
// stalls.
type Buffer struct {
	fps       float64
	now       func() time.Time
	start     time.Time // first delivery; zero until then
	delivered int
	maxLag    float64
}

// NewBuffer builds a playout buffer tracker for a stream at the given
// frame rate. Non-positive rates are clamped to 1 fps so a hostile
// header cannot divide by zero.
func NewBuffer(fps float64) *Buffer {
	if fps <= 0 {
		fps = 1
	}
	return &Buffer{fps: fps, now: time.Now}
}

// SetClock replaces the wall clock, for deterministic tests.
func (b *Buffer) SetClock(now func() time.Time) { b.now = now }

// Deliver records n received frames. The playout clock starts at the
// first delivery.
func (b *Buffer) Deliver(n int) {
	if b == nil || n <= 0 {
		return
	}
	if b.start.IsZero() {
		b.start = b.now()
	}
	// Sample the deficit before crediting this delivery: the stall a
	// real-time player suffered is the gap at the moment frames resumed.
	if lead := b.LeadSeconds(); lead < -b.maxLag {
		b.maxLag = -lead
	}
	b.delivered += n
}

// LeadSeconds returns how many seconds of playback the delivered
// frames cover beyond the playout clock. Positive lead is buffered
// headroom; negative lead means playback has caught up with delivery —
// a stall in a real-time player. Before the first delivery the lead
// is zero.
func (b *Buffer) LeadSeconds() float64 {
	if b == nil || b.start.IsZero() {
		return 0
	}
	content := float64(b.delivered) / b.fps
	elapsed := b.now().Sub(b.start).Seconds()
	return content - elapsed
}

// MaxLagSeconds returns the deepest observed deficit (most negative
// lead) at any delivery, in seconds — the worst stall a real-time
// player would have suffered. Zero if delivery always kept ahead.
func (b *Buffer) MaxLagSeconds() float64 {
	if b == nil {
		return 0
	}
	// The lag may have deepened since the last delivery; sample it and
	// persist the deepened high-water mark. Returning the live sample
	// without persisting let a later read report a *shallower* worst
	// stall once the deficit recovered (or the wall clock stepped
	// backward), so the metric could shrink after it had been observed.
	if lead := b.LeadSeconds(); lead < -b.maxLag {
		b.maxLag = -lead
	}
	return b.maxLag
}
