package netsched

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
)

// Playout simulation: burst scheduling saves radio energy, but a client
// that sleeps between bursts gambles that the link will deliver each
// scene's bytes before playback reaches it. This simulation quantifies
// that robustness trade-off under bandwidth jitter — startup delay,
// rebuffering events and stall time — for the burst policy at a given
// prefetch lead versus a greedy always-filling receiver.

// Link models a wireless link with multiplicative rate jitter.
type Link struct {
	// Mbps is the nominal throughput.
	Mbps float64
	// JitterFrac is the ± fraction of rate variation per step.
	JitterFrac float64
	// Seed makes the jitter deterministic.
	Seed int64
}

// rate returns the link rate (bytes/second) for one step.
func (l Link) rateBytes(rng *rand.Rand) float64 {
	r := l.Mbps * 1e6 / 8
	if l.JitterFrac > 0 {
		r *= 1 + l.JitterFrac*(rng.Float64()*2-1)
	}
	return r
}

// PlayoutPolicy selects the receive strategy for the playout simulation.
type PlayoutPolicy int

const (
	// Greedy keeps the radio on and fills the buffer as fast as the link
	// allows (maximum robustness, maximum energy).
	Greedy PlayoutPolicy = iota
	// Burst wakes LeadSeconds before each scene and fetches exactly that
	// scene (the annotated schedule), sleeping otherwise.
	Burst
)

// PlayoutConfig tunes the simulation.
type PlayoutConfig struct {
	Policy PlayoutPolicy
	// LeadSeconds is how early a burst starts before its scene plays.
	LeadSeconds float64
	// StartupPrebuffer is the fraction of the first scene that must be
	// buffered before playback starts (default 1.0: the whole scene).
	StartupPrebuffer float64
	// Step is the simulation step in seconds (default 0.01).
	Step float64
	// Obs, when set, receives playout telemetry: the buffer-depth gauge,
	// rebuffer counter and stall-time counter.
	Obs *obs.Registry
}

// PlayoutResult reports the user-visible outcome.
type PlayoutResult struct {
	StartupSeconds float64
	Rebuffers      int
	StallSeconds   float64
	// AwakeSeconds is the radio-on time (energy proxy; exact energy
	// comes from the WNIC model).
	AwakeSeconds float64
}

// SimulatePlayout plays the scene schedule over the link under the given
// policy and returns startup/stall behaviour.
func SimulatePlayout(link Link, scenes []Scene, cfg PlayoutConfig) (PlayoutResult, error) {
	if link.Mbps <= 0 {
		return PlayoutResult{}, fmt.Errorf("netsched: non-positive link rate")
	}
	if link.JitterFrac < 0 || link.JitterFrac >= 1 {
		return PlayoutResult{}, fmt.Errorf("netsched: jitter fraction %v outside [0,1)", link.JitterFrac)
	}
	if len(scenes) == 0 {
		return PlayoutResult{}, fmt.Errorf("netsched: no scenes")
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.01
	}
	if cfg.StartupPrebuffer <= 0 || cfg.StartupPrebuffer > 1 {
		cfg.StartupPrebuffer = 1
	}
	rng := rand.New(rand.NewSource(link.Seed))

	// Per-scene byte positions and playback start times.
	type sceneInfo struct {
		startByte   float64 // cumulative bytes before this scene
		bytes       float64
		startPlay   float64 // playback time the scene begins at
		consumeRate float64 // bytes per playback second
	}
	infos := make([]sceneInfo, len(scenes))
	var cumBytes, cumTime float64
	for i, s := range scenes {
		infos[i] = sceneInfo{
			startByte: cumBytes,
			bytes:     float64(s.Bytes),
			startPlay: cumTime,
		}
		if s.Seconds > 0 {
			infos[i].consumeRate = float64(s.Bytes) / s.Seconds
		}
		cumBytes += float64(s.Bytes)
		cumTime += s.Seconds
	}
	totalBytes := cumBytes
	totalPlay := cumTime

	var res PlayoutResult
	received := 0.0 // contiguous bytes received
	playPos := 0.0  // playback position in seconds
	started := false
	startupNeed := infos[0].startByte + infos[0].bytes*cfg.StartupPrebuffer

	// byteAtPlayPos returns the stream byte offset playback has consumed
	// up to time p.
	byteAtPlayPos := func(p float64) float64 {
		var b float64
		for _, inf := range infos {
			if p <= inf.startPlay {
				break
			}
			dur := inf.bytes / maxf(inf.consumeRate, 1e-9)
			elapsed := p - inf.startPlay
			if elapsed >= dur {
				b = inf.startByte + inf.bytes
			} else {
				b = inf.startByte + elapsed*inf.consumeRate
				break
			}
		}
		return b
	}

	// wantReceiving decides whether the radio is on this step.
	wantReceiving := func(now float64) bool {
		if received >= totalBytes {
			return false
		}
		if cfg.Policy == Greedy {
			return true
		}
		// Burst: on when inside any scene's fetch window (its playback
		// start minus lead, until its bytes are in).
		for _, inf := range infos {
			if received < inf.startByte+inf.bytes && now >= inf.startPlay-cfg.LeadSeconds {
				// Fetch scenes in order; only the first incomplete
				// scene matters.
				return received < inf.startByte+inf.bytes
			}
		}
		return false
	}

	bufferGauge := cfg.Obs.Gauge("netsched_playout_buffer_bytes",
		"Bytes received but not yet consumed by playback.")
	rebuffers := cfg.Obs.Counter("netsched_playout_rebuffers_total",
		"Playback stall events (buffer ran dry mid-stream).")
	stallSteps := cfg.Obs.Counter("netsched_playout_stall_ms_total",
		"Total milliseconds of playback stalled waiting for data.")

	const maxSimSeconds = 24 * 3600
	now := 0.0
	stalledLastStep := false
	for playPos < totalPlay && now < maxSimSeconds {
		if wantReceiving(now) {
			received += link.rateBytes(rng) * cfg.Step
			if received > totalBytes {
				received = totalBytes
			}
			res.AwakeSeconds += cfg.Step
		}
		if bufferGauge != nil {
			bufferGauge.Set(received - byteAtPlayPos(playPos))
		}
		if !started {
			if received >= startupNeed {
				started = true
			} else {
				res.StartupSeconds += cfg.Step
			}
		} else {
			// Playback advances only if the next chunk is buffered.
			needed := byteAtPlayPos(playPos + cfg.Step)
			if received+1e-6 >= needed {
				playPos += cfg.Step
				stalledLastStep = false
			} else {
				if !stalledLastStep {
					res.Rebuffers++
					rebuffers.Inc()
				}
				res.StallSeconds += cfg.Step
				stallSteps.Add(uint64(cfg.Step*1000 + 0.5))
				stalledLastStep = true
				now += cfg.Step
				continue
			}
		}
		now += cfg.Step
	}
	return res, nil
}
