package netsched_test

import (
	"fmt"

	"repro/internal/netsched"
)

// With per-scene byte counts annotated in advance, the client receives
// each scene in one burst and sleeps the radio for the rest of it.
func ExampleWNIC_Compare() {
	wnic := netsched.DefaultWNIC()
	scenes := []netsched.Scene{
		{Bytes: 300_000, Seconds: 5},
		{Bytes: 450_000, Seconds: 7},
		{Bytes: 250_000, Seconds: 4},
	}
	results, _ := wnic.Compare(scenes, 0.1)
	for _, r := range results {
		fmt.Printf("%-10s %5.1f J (%.0f%% saved, %d wakeups)\n",
			r.Policy, r.EnergyJoules, r.Savings*100, r.Wakeups)
	}
	// Output:
	// always-on   12.1 J (0% saved, 0 wakeups)
	// psm          2.5 J (79% saved, 160 wakeups)
	// annotated    2.1 J (83% saved, 3 wakeups)
}
