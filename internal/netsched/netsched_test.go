package netsched

import (
	"math"
	"testing"
	"testing/quick"
)

// stream is a 60s clip at a typical trailer bitrate (~500 kbit/s).
func stream() []Scene {
	return []Scene{
		{Bytes: 250_000, Seconds: 4},
		{Bytes: 180_000, Seconds: 3},
		{Bytes: 400_000, Seconds: 6},
		{Bytes: 300_000, Seconds: 5},
		{Bytes: 600_000, Seconds: 10},
		{Bytes: 2_000_000, Seconds: 32},
	}
}

func TestDefaultWNICValidates(t *testing.T) {
	if err := DefaultWNIC().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadWNIC(t *testing.T) {
	mutations := []func(*WNIC){
		func(w *WNIC) { w.RxWatts = 0 },
		func(w *WNIC) { w.IdleWatts = 0 },
		func(w *WNIC) { w.SleepWatts = -1 },
		func(w *WNIC) { w.SleepWatts = w.IdleWatts },
		func(w *WNIC) { w.IdleWatts = w.RxWatts + 1 },
		func(w *WNIC) { w.Mbps = 0 },
		func(w *WNIC) { w.WakeSeconds = -1 },
	}
	for i, mutate := range mutations {
		w := DefaultWNIC()
		mutate(w)
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSceneAnnotationRoundTrip(t *testing.T) {
	scenes := stream()
	got, err := DecodeScenes(EncodeScenes(scenes))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scenes) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range scenes {
		if got[i].Bytes != scenes[i].Bytes {
			t.Errorf("scene %d bytes = %d, want %d", i, got[i].Bytes, scenes[i].Bytes)
		}
		if math.Abs(got[i].Seconds-scenes[i].Seconds) > 0.001 {
			t.Errorf("scene %d seconds = %v, want %v", i, got[i].Seconds, scenes[i].Seconds)
		}
	}
}

func TestDecodeScenesRejectsGarbage(t *testing.T) {
	for i, data := range [][]byte{nil, {1, 2}, {0, 0, 0, 3, 5}, {255, 255, 255, 255}} {
		if _, err := DecodeScenes(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecodeScenesNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeScenes(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlwaysOnEnergy(t *testing.T) {
	w := DefaultWNIC()
	scenes := []Scene{{Bytes: 625_000, Seconds: 10}} // exactly 1s of rx at 5Mbps
	res := w.AlwaysOn(scenes)
	want := w.RxWatts*1 + w.IdleWatts*9
	if math.Abs(res.EnergyJoules-want) > 1e-9 {
		t.Errorf("always-on energy = %v, want %v", res.EnergyJoules, want)
	}
}

func TestAnnotatedBeatsAlwaysOnAndPSM(t *testing.T) {
	w := DefaultWNIC()
	results, err := w.Compare(stream(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	on, psm, ann := byName["always-on"], byName["psm"], byName["annotated"]
	if ann.EnergyJoules >= psm.EnergyJoules {
		t.Errorf("annotated %v J not below PSM %v J", ann.EnergyJoules, psm.EnergyJoules)
	}
	if psm.EnergyJoules >= on.EnergyJoules {
		t.Errorf("PSM %v J not below always-on %v J", psm.EnergyJoules, on.EnergyJoules)
	}
	if ann.Savings < 0.5 {
		t.Errorf("annotated savings = %v, want large at trailer bitrates", ann.Savings)
	}
	if on.Savings != 0 {
		t.Errorf("always-on savings = %v", on.Savings)
	}
	// Annotated wakes once per scene; PSM once per beacon.
	if ann.Wakeups != len(stream()) {
		t.Errorf("annotated wakeups = %d, want %d", ann.Wakeups, len(stream()))
	}
	if psm.Wakeups <= ann.Wakeups {
		t.Errorf("PSM wakeups %d not above annotated %d", psm.Wakeups, ann.Wakeups)
	}
}

func TestAnnotatedSleepsMostOfTheTime(t *testing.T) {
	w := DefaultWNIC()
	res := w.Annotated(stream())
	if res.SleepFraction < 0.8 {
		t.Errorf("sleep fraction = %v; trailer bitrates should allow deep sleep", res.SleepFraction)
	}
}

func TestAnnotatedDenseSceneStaysAwake(t *testing.T) {
	w := DefaultWNIC()
	// Scene needs more rx time than its duration: no sleep possible.
	scenes := []Scene{{Bytes: 10_000_000, Seconds: 1}}
	res := w.Annotated(scenes)
	if res.SleepFraction != 0 {
		t.Errorf("dense scene slept %v", res.SleepFraction)
	}
	if res.EnergyJoules <= 0 {
		t.Error("no energy accounted")
	}
}

func TestPSMValidation(t *testing.T) {
	w := DefaultWNIC()
	if _, err := w.PSM(stream(), 0); err == nil {
		t.Error("zero beacon accepted")
	}
	bad := DefaultWNIC()
	bad.Mbps = 0
	if _, err := bad.Compare(stream(), 0.1); err == nil {
		t.Error("invalid WNIC accepted by Compare")
	}
}

func TestPSMBeaconGranularityTradeoff(t *testing.T) {
	w := DefaultWNIC()
	coarse, err := w.PSM(stream(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := w.PSM(stream(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Finer beacons wake more often and pay more wake overhead.
	if fine.Wakeups <= coarse.Wakeups {
		t.Errorf("fine beacons woke %d times, coarse %d", fine.Wakeups, coarse.Wakeups)
	}
}

// Property: energies are non-negative and annotated never exceeds
// always-on for any feasible stream.
func TestPolicyOrderingProperty(t *testing.T) {
	w := DefaultWNIC()
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		scenes := make([]Scene, len(raw))
		for i, r := range raw {
			scenes[i] = Scene{Bytes: int(r) * 100, Seconds: 1 + float64(r%7)}
		}
		results, err := w.Compare(scenes, 0.1)
		if err != nil {
			return false
		}
		for _, res := range results {
			if res.EnergyJoules < 0 {
				return false
			}
		}
		return results[2].EnergyJoules <= results[0].EnergyJoules+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func playoutScenes() []Scene {
	return []Scene{
		{Bytes: 300_000, Seconds: 5},
		{Bytes: 400_000, Seconds: 6},
		{Bytes: 350_000, Seconds: 5},
		{Bytes: 800_000, Seconds: 5}, // high-bitrate action scene
		{Bytes: 500_000, Seconds: 8},
	}
}

func TestPlayoutAmpleBandwidthNoStalls(t *testing.T) {
	link := Link{Mbps: 5, Seed: 1}
	for _, policy := range []PlayoutPolicy{Greedy, Burst} {
		res, err := SimulatePlayout(link, playoutScenes(), PlayoutConfig{
			Policy: policy, LeadSeconds: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Rebuffers != 0 || res.StallSeconds > 0 {
			t.Errorf("policy %d: stalled %v (%d rebuffers) with ample bandwidth",
				policy, res.StallSeconds, res.Rebuffers)
		}
		if res.StartupSeconds <= 0 {
			t.Errorf("policy %d: zero startup delay", policy)
		}
	}
}

func TestPlayoutBurstSleepsRadioMore(t *testing.T) {
	link := Link{Mbps: 5, Seed: 2}
	greedy, err := SimulatePlayout(link, playoutScenes(), PlayoutConfig{Policy: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := SimulatePlayout(link, playoutScenes(), PlayoutConfig{Policy: Burst, LeadSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy front-loads the download: its radio-on time equals the
	// transfer time too, but it never sleeps while data remains; with a
	// fast link both finish early, so compare awake time directly.
	if burst.AwakeSeconds > greedy.AwakeSeconds+0.5 {
		t.Errorf("burst awake %vs vs greedy %vs", burst.AwakeSeconds, greedy.AwakeSeconds)
	}
}

func TestPlayoutTightLinkBurstNeedsLead(t *testing.T) {
	// Link barely above the stream bitrate: bursting with no lead stalls;
	// a generous lead recovers.
	link := Link{Mbps: 0.6, JitterFrac: 0.3, Seed: 3}
	noLead, err := SimulatePlayout(link, playoutScenes(), PlayoutConfig{Policy: Burst, LeadSeconds: 0})
	if err != nil {
		t.Fatal(err)
	}
	withLead, err := SimulatePlayout(link, playoutScenes(), PlayoutConfig{Policy: Burst, LeadSeconds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if noLead.StallSeconds <= withLead.StallSeconds {
		t.Errorf("lead did not help: %vs stalls without vs %vs with",
			noLead.StallSeconds, withLead.StallSeconds)
	}
}

func TestPlayoutValidation(t *testing.T) {
	if _, err := SimulatePlayout(Link{Mbps: 0}, playoutScenes(), PlayoutConfig{}); err == nil {
		t.Error("zero-rate link accepted")
	}
	if _, err := SimulatePlayout(Link{Mbps: 1, JitterFrac: 1.5}, playoutScenes(), PlayoutConfig{}); err == nil {
		t.Error("absurd jitter accepted")
	}
	if _, err := SimulatePlayout(Link{Mbps: 1}, nil, PlayoutConfig{}); err == nil {
		t.Error("empty scenes accepted")
	}
}

func TestPlayoutDeterministic(t *testing.T) {
	link := Link{Mbps: 1, JitterFrac: 0.2, Seed: 9}
	cfg := PlayoutConfig{Policy: Burst, LeadSeconds: 2}
	a, err := SimulatePlayout(link, playoutScenes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulatePlayout(link, playoutScenes(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same-seed playout differs: %+v vs %+v", a, b)
	}
}
