package netsched

import (
	"testing"
)

// FuzzDecodeScenes hardens the scene-bytes side-channel parser: hostile
// counts and truncated uvarints must error, never panic or over-allocate,
// and accepted payloads must round-trip.
func FuzzDecodeScenes(f *testing.F) {
	f.Add(EncodeScenes([]Scene{{Bytes: 100, Seconds: 2}}))
	f.Add(EncodeScenes([]Scene{{Bytes: 1 << 30, Seconds: 0.001}, {Bytes: 0, Seconds: 0}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		scenes, err := DecodeScenes(data)
		if err != nil {
			return
		}
		re, err := DecodeScenes(EncodeScenes(scenes))
		if err != nil {
			t.Fatalf("accepted payload does not round-trip: %v", err)
		}
		if len(re) != len(scenes) {
			t.Fatalf("round trip changed scene count: %d vs %d", len(re), len(scenes))
		}
	})
}
