// Package netsched implements the third application the paper names for
// software annotations (§3): "because the information is available even
// before decoding the data, more optimizations are possible ... (for
// example network packet optimizations)."
//
// A streaming client with annotated per-scene byte counts knows, before a
// scene begins, exactly how much data it will need and when. It can
// therefore pull each scene's data in a single burst at full link rate and
// put the WLAN interface to sleep for the rest of the scene — instead of
// keeping the radio awake for trickled packets. The comparators are an
// always-on receiver and standard 802.11 power-save mode (PSM), which
// wakes at every beacon to check for buffered packets.
package netsched

import (
	"encoding/binary"
	"fmt"
)

// WNIC models a PDA-class 802.11b CompactFlash card.
type WNIC struct {
	RxWatts    float64 // actively receiving
	IdleWatts  float64 // awake, listening
	SleepWatts float64 // power-save doze
	// WakeSeconds is the transition cost charged (at idle power) every
	// time the card leaves sleep.
	WakeSeconds float64
	// Mbps is the effective receive throughput.
	Mbps float64
}

// DefaultWNIC mirrors published measurements of 802.11b CF cards used on
// iPAQs: receive ~0.9 W, idle-listen ~0.74 W, doze ~0.045 W, ~5 Mbit/s
// effective throughput.
func DefaultWNIC() *WNIC {
	return &WNIC{
		RxWatts:     0.90,
		IdleWatts:   0.74,
		SleepWatts:  0.045,
		WakeSeconds: 0.004,
		Mbps:        5.0,
	}
}

// Validate reports parameter problems.
func (w *WNIC) Validate() error {
	switch {
	case w.RxWatts <= 0 || w.IdleWatts <= 0 || w.SleepWatts < 0:
		return fmt.Errorf("netsched: non-positive power values: %+v", *w)
	case w.SleepWatts >= w.IdleWatts || w.IdleWatts > w.RxWatts:
		return fmt.Errorf("netsched: power ordering violated: %+v", *w)
	case w.Mbps <= 0:
		return fmt.Errorf("netsched: non-positive throughput")
	case w.WakeSeconds < 0:
		return fmt.Errorf("netsched: negative wake latency")
	}
	return nil
}

// rxSeconds is the time to receive n bytes at link rate.
func (w *WNIC) rxSeconds(bytes int) float64 {
	return float64(bytes) * 8 / (w.Mbps * 1e6)
}

// Scene is one annotated stretch of the stream: its payload size and its
// playback duration.
type Scene struct {
	Bytes   int
	Seconds float64
}

// --- scene-bytes annotations (container.ChunkSceneBytes payload) ---

// EncodeScenes serialises per-scene byte counts and durations
// (milliseconds) as uvarints after a u32 count.
func EncodeScenes(scenes []Scene) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(scenes)))
	for _, s := range scenes {
		buf = binary.AppendUvarint(buf, uint64(s.Bytes))
		buf = binary.AppendUvarint(buf, uint64(s.Seconds*1000+0.5))
	}
	return buf
}

// DecodeScenes parses an EncodeScenes payload.
func DecodeScenes(data []byte) ([]Scene, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("netsched: short scene annotation")
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(n) > uint64(len(data)) {
		return nil, fmt.Errorf("netsched: implausible scene count %d", n)
	}
	out := make([]Scene, 0, n)
	pos := 4
	for i := uint32(0); i < n; i++ {
		b, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("netsched: truncated at scene %d", i)
		}
		pos += k
		ms, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("netsched: truncated at scene %d duration", i)
		}
		pos += k
		out = append(out, Scene{Bytes: int(b), Seconds: float64(ms) / 1000})
	}
	return out, nil
}

// Result aggregates one receive policy over a stream.
type Result struct {
	Policy string
	// EnergyJoules is the WNIC energy over the playback.
	EnergyJoules float64
	// Savings is relative to the always-on policy.
	Savings float64
	// SleepFraction is the share of playback time spent dozing.
	SleepFraction float64
	// Wakeups counts sleep→awake transitions.
	Wakeups int
}

// AlwaysOn keeps the radio awake for the whole playback: data trickles in
// at the stream's average rate, the card listens in between.
func (w *WNIC) AlwaysOn(scenes []Scene) Result {
	var energy float64
	for _, s := range scenes {
		rx := w.rxSeconds(s.Bytes)
		energy += w.RxWatts*rx + w.IdleWatts*maxf(s.Seconds-rx, 0)
	}
	return Result{Policy: "always-on", EnergyJoules: energy}
}

// PSM wakes at every beacon interval to receive the data buffered at the
// access point since the last beacon, then dozes again.
func (w *WNIC) PSM(scenes []Scene, beaconSeconds float64) (Result, error) {
	if beaconSeconds <= 0 {
		return Result{}, fmt.Errorf("netsched: non-positive beacon interval")
	}
	res := Result{Policy: "psm"}
	var sleep, total float64
	for _, s := range scenes {
		if s.Seconds <= 0 {
			continue
		}
		rate := float64(s.Bytes) / s.Seconds // bytes per second of playback
		perBeacon := rate * beaconSeconds
		beacons := int(s.Seconds/beaconSeconds + 0.5)
		for b := 0; b < beacons; b++ {
			rx := w.rxSeconds(int(perBeacon + 0.5))
			awake := rx + w.WakeSeconds
			if awake > beaconSeconds {
				awake = beaconSeconds
				rx = beaconSeconds - w.WakeSeconds
			}
			res.EnergyJoules += w.RxWatts*rx + w.IdleWatts*w.WakeSeconds +
				w.SleepWatts*(beaconSeconds-awake)
			sleep += beaconSeconds - awake
			res.Wakeups++
		}
		total += s.Seconds
	}
	if total > 0 {
		res.SleepFraction = sleep / total
	}
	return res, nil
}

// Annotated receives each scene's bytes in one burst at scene start (the
// annotation told the client the size in advance), then sleeps until the
// next scene.
func (w *WNIC) Annotated(scenes []Scene) Result {
	res := Result{Policy: "annotated"}
	var sleep, total float64
	for _, s := range scenes {
		rx := w.rxSeconds(s.Bytes)
		awake := rx + w.WakeSeconds
		if awake > s.Seconds {
			// Scene too dense to burst fully; stay awake for all of it.
			res.EnergyJoules += w.RxWatts*rx + w.IdleWatts*(maxf(s.Seconds-rx, 0))
			res.Wakeups++
			total += s.Seconds
			continue
		}
		res.EnergyJoules += w.RxWatts*rx + w.IdleWatts*w.WakeSeconds +
			w.SleepWatts*(s.Seconds-awake)
		sleep += s.Seconds - awake
		res.Wakeups++
		total += s.Seconds
	}
	if total > 0 {
		res.SleepFraction = sleep / total
	}
	return res
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Compare runs all three policies and fills in savings relative to
// always-on.
func (w *WNIC) Compare(scenes []Scene, beaconSeconds float64) ([]Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	on := w.AlwaysOn(scenes)
	psm, err := w.PSM(scenes, beaconSeconds)
	if err != nil {
		return nil, err
	}
	ann := w.Annotated(scenes)
	results := []Result{on, psm, ann}
	for i := range results {
		if on.EnergyJoules > 0 {
			results[i].Savings = 1 - results[i].EnergyJoules/on.EnergyJoules
		}
	}
	return results, nil
}
