package netsched

import (
	"math"
	"testing"
	"time"
)

// fakeClock is a manually advanced wall clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBufferLead(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	b := NewBuffer(10) // 0.1s per frame
	b.SetClock(clk.now)
	if b.LeadSeconds() != 0 {
		t.Errorf("lead before first delivery = %v, want 0", b.LeadSeconds())
	}
	b.Deliver(20) // 2s of content, clock starts now
	if got := b.LeadSeconds(); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("lead = %v, want 2.0", got)
	}
	clk.advance(1500 * time.Millisecond)
	if got := b.LeadSeconds(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("lead after 1.5s playback = %v, want 0.5", got)
	}
	if b.MaxLagSeconds() != 0 {
		t.Errorf("MaxLag = %v while ahead, want 0", b.MaxLagSeconds())
	}
	// Playback overruns delivery: 1s more elapses with no frames.
	clk.advance(1 * time.Second)
	if got := b.LeadSeconds(); math.Abs(got+0.5) > 1e-9 {
		t.Errorf("lead = %v, want -0.5 (stalled)", got)
	}
	if got := b.MaxLagSeconds(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MaxLag = %v, want 0.5", got)
	}
	// Recovery: a burst refills the buffer, but the worst lag sticks.
	b.Deliver(30)
	if got := b.LeadSeconds(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("lead after refill = %v, want 2.5", got)
	}
	if got := b.MaxLagSeconds(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MaxLag after recovery = %v, want 0.5 (sticky)", got)
	}
}

// TestBufferMaxLagPersistsAcrossClockStep is the regression test for
// the unpersisted live sample: MaxLagSeconds used to return the
// sampled deficit without writing it back to the high-water mark, so
// an observed worst stall could shrink on a later read once the wall
// clock stepped backward (an NTP adjustment — Buffer runs on wall
// time) with no delivery in between to re-sample the deep point.
func TestBufferMaxLagPersistsAcrossClockStep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBuffer(1) // 1s per frame
	b.SetClock(clk.now)
	b.Deliver(1) // 1s of content, clock starts
	clk.advance(10 * time.Second)
	if got := b.MaxLagSeconds(); math.Abs(got-9.0) > 1e-9 {
		t.Fatalf("MaxLag at deep stall = %v, want 9.0", got)
	}
	// The wall clock steps back 7s; the live deficit is now only 2s,
	// but the 9s stall was already observed and must not un-happen.
	clk.advance(-7 * time.Second)
	if got := b.MaxLagSeconds(); math.Abs(got-9.0) > 1e-9 {
		t.Errorf("MaxLag after backward clock step = %v, want 9.0 (sticky)", got)
	}
	// Nor may a recovery delivery reset it.
	b.Deliver(100)
	if got := b.MaxLagSeconds(); math.Abs(got-9.0) > 1e-9 {
		t.Errorf("MaxLag after recovery = %v, want 9.0 (sticky)", got)
	}
}

func TestBufferDegenerate(t *testing.T) {
	var b *Buffer
	b.Deliver(10)
	if b.LeadSeconds() != 0 || b.MaxLagSeconds() != 0 {
		t.Error("nil buffer not zero")
	}
	clamped := NewBuffer(0) // hostile fps clamps to 1
	clk := &fakeClock{t: time.Unix(0, 0)}
	clamped.SetClock(clk.now)
	clamped.Deliver(3)
	if got := clamped.LeadSeconds(); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("clamped-fps lead = %v, want 3.0", got)
	}
	clamped.Deliver(0)
	clamped.Deliver(-1)
	if got := clamped.LeadSeconds(); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("non-positive deliveries changed lead: %v", got)
	}
}
