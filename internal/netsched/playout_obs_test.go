package netsched

import (
	"testing"

	"repro/internal/obs"
)

func TestPlayoutTelemetry(t *testing.T) {
	scenes := []Scene{
		{Bytes: 400_000, Seconds: 2},
		{Bytes: 600_000, Seconds: 3},
	}
	reg := obs.NewRegistry()
	// A slow, jittery link forces at least some stalling under Burst
	// with no lead time.
	link := Link{Mbps: 1.2, JitterFrac: 0.5, Seed: 7}
	res, err := SimulatePlayout(link, scenes, PlayoutConfig{
		Policy: Burst, LeadSeconds: 0, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rebuffers := reg.Counter("netsched_playout_rebuffers_total", "").Value()
	if int(rebuffers) != res.Rebuffers {
		t.Errorf("rebuffer counter = %d, result says %d", rebuffers, res.Rebuffers)
	}
	stallMS := reg.Counter("netsched_playout_stall_ms_total", "").Value()
	if res.StallSeconds > 0 && stallMS == 0 {
		t.Errorf("stall counter = 0 with %vs of stalls", res.StallSeconds)
	}
	// The buffer gauge was maintained (a fully drained buffer ends ~0).
	g := reg.Gauge("netsched_playout_buffer_bytes", "")
	if g == nil {
		t.Fatal("buffer gauge never registered")
	}
	if g.Value() < 0 {
		t.Errorf("buffer gauge = %v, want >= 0", g.Value())
	}
}

func TestPlayoutWithoutObserverUnchanged(t *testing.T) {
	scenes := []Scene{{Bytes: 100_000, Seconds: 1}}
	link := Link{Mbps: 5, Seed: 1}
	with, err := SimulatePlayout(link, scenes, PlayoutConfig{Policy: Greedy, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := SimulatePlayout(link, scenes, PlayoutConfig{Policy: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if with != without {
		t.Errorf("telemetry changed simulation results: %+v vs %+v", with, without)
	}
}
