package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Leveled key=value logging for the daemons and CLIs: one line per
// event, `ts=... level=... msg=...` followed by structured fields, so
// grep and awk work on the output without a parser. The Printf method
// adapts the logger to the Server/Proxy SetLogf hook and anything else
// expecting a log.Printf shape. All methods are no-ops on a nil
// *Logger, matching the package's nil-disables convention.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger writes leveled key=value lines to one destination. Safe for
// concurrent use; a nil *Logger discards everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// NewLogger builds a logger writing to w, dropping events below min.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.min.Load()
}

// Debug, Info, Warn and Error emit one line at their level. kv is
// alternating key, value pairs; values render via fmt and are quoted
// when they contain spaces.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Printf emits a formatted message at info level — the adapter for
// Server/Proxy SetLogf and other log.Printf-shaped hooks.
func (l *Logger) Printf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(time.Now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	writeLogValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		writeLogValue(&b, fmt.Sprint(kv[i+1]))
	}
	if len(kv)%2 == 1 {
		// A dangling key still surfaces rather than vanishing.
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=?", kv[len(kv)-1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// writeLogValue quotes values that would break key=value tokenisation.
func writeLogValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \t\n\"=") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}
