// Package obs is the repository's dependency-free telemetry substrate:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms), lightweight span tracing for the pipeline stages, and an
// HTTP debug server exposing /metrics in Prometheus text exposition
// format alongside /healthz, expvar and net/http/pprof.
//
// The paper's whole argument is quantitative (backlight power roughly
// proportional to level, up to 65% saved, negligible client overhead),
// so every stage of the reproduction must be observable at runtime.
// Instrumentation is designed to cost nothing when disabled: a nil
// *Registry hands out nil metric handles, and every metric method is a
// no-op on a nil receiver — callers instrument unconditionally and pay
// zero allocations unless an observer was installed.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (rendered as name{key="value"}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric family types, as rendered in the TYPE comment.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// atomicFloat is a float64 with atomic Set/Add.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Gauge is a value that can go up and down. All methods are no-ops on a
// nil receiver.
type Gauge struct {
	v atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.set(v)
	}
}

// Add offsets the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g != nil {
		g.v.add(delta)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.value()
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the
// overflow. All methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.value()
}

// DefLatencyBuckets covers sub-millisecond stage work up to multi-second
// whole-pipeline passes.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// series is one labelled instance within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name, help, typ string
	bounds          []float64
	series          map[string]*series
	order           []string
}

// Registry holds metric families and the recent-span ring. A nil
// *Registry is the disabled state: every constructor returns nil and
// every nil metric method is a no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	spanMu   sync.Mutex
	spanRing []SpanRecord // lazily sized; see SetSpanRingSize
	spanN    uint64

	// Completed sampled trace spans, separately ring-buffered so a
	// burst of metric-only spans cannot evict a request tree before
	// /debug/traces is scraped.
	traceMu     sync.Mutex
	traceRing   []SpanRecord
	traceN      uint64
	traceW      io.Writer
	sampleRatio float64
	sampleSet   bool
	traceWMu    sync.Mutex

	readyMu    sync.Mutex
	ready      map[string]func() error
	readyOrder []string

	rt runtimeState
}

// RegisterReadiness adds a named readiness check consulted by /readyz:
// the endpoint reports ready only while every registered check returns
// nil. Re-registering a name replaces its check. No-op on a nil
// registry.
func (r *Registry) RegisterReadiness(name string, check func() error) {
	if r == nil || check == nil {
		return
	}
	r.readyMu.Lock()
	defer r.readyMu.Unlock()
	if r.ready == nil {
		r.ready = map[string]func() error{}
	}
	if _, exists := r.ready[name]; !exists {
		r.readyOrder = append(r.readyOrder, name)
	}
	r.ready[name] = check
}

// readinessErrors runs every registered check and returns "name: err"
// lines for the failing ones, in registration order.
func (r *Registry) readinessErrors() []string {
	if r == nil {
		return nil
	}
	r.readyMu.Lock()
	names := append([]string(nil), r.readyOrder...)
	checks := make([]func() error, len(names))
	for i, n := range names {
		checks[i] = r.ready[n]
	}
	r.readyMu.Unlock()
	var out []string
	for i, f := range checks {
		if err := f(); err != nil {
			out = append(out, names[i]+": "+err.Error())
		}
	}
	return out
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter returns the counter registered under name with the given
// labels, creating it on first use. Returns nil when r is nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, typeCounter, nil, labels).c
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use. Returns nil when r is nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, typeGauge, nil, labels).g
}

// Histogram returns the histogram registered under name with the given
// bucket upper bounds and labels, creating it on first use. Bounds must
// be ascending; they are fixed by the first registration of the family.
// Returns nil when r is nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, help, typeHistogram, bounds, labels).h
}

func (r *Registry) getOrCreate(name, help, typ string, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q in metric %q", l.Key, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		if typ == typeHistogram {
			if len(bounds) == 0 {
				bounds = DefLatencyBuckets
			}
			if !sort.Float64sAreSorted(bounds) {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		fam = &family{name: name, help: help, typ: typ, bounds: bounds, series: map[string]*series{}}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, fam.typ, typ))
	}
	sig := labelSig(labels)
	s, ok := fam.series[sig]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{
				bounds:  fam.bounds,
				buckets: make([]atomic.Uint64, len(fam.bounds)+1),
			}
		}
		fam.series[sig] = s
		fam.order = append(fam.order, sig)
	}
	return s
}

// labelSig builds the map key distinguishing label sets within a family.
func labelSig(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (families in registration order, series in
// first-use order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		fam := r.families[name]
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, escapeHelp(fam.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, sig := range fam.order {
			s := fam.series[sig]
			switch fam.typ {
			case typeCounter:
				b.WriteString(fam.name)
				writeLabels(&b, s.labels, "")
				fmt.Fprintf(&b, " %d\n", s.c.Value())
			case typeGauge:
				b.WriteString(fam.name)
				writeLabels(&b, s.labels, "")
				fmt.Fprintf(&b, " %s\n", formatFloat(s.g.Value()))
			case typeHistogram:
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.buckets[i].Load()
					b.WriteString(fam.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, formatFloat(bound))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += s.h.buckets[len(s.h.bounds)].Load()
				b.WriteString(fam.name)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, "+Inf")
				fmt.Fprintf(&b, " %d\n", cum)
				b.WriteString(fam.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels, "")
				fmt.Fprintf(&b, " %s\n", formatFloat(s.h.Sum()))
				b.WriteString(fam.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels, "")
				fmt.Fprintf(&b, " %d\n", s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLabels renders {k="v",...}; le is the histogram bucket bound
// appended last ("" for none).
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
