package obs

import (
	"context"
	"time"
)

// SpanMetric is the histogram family every span records into, one
// series per span name (label "span").
const SpanMetric = "span_duration_seconds"

const spanRingSize = 128

// SpanRecord is one completed span, kept in the registry's recent-span
// ring for the /debug/spans endpoint.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

type registryKey struct{}

// WithRegistry attaches a registry to a context so instrumented code
// deep in the pipeline can find it without plumbing.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry attached by WithRegistry, or nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// Span measures one named stretch of work. It is a value type so the
// disabled path allocates nothing; End on the zero Span is a no-op.
type Span struct {
	r     *Registry
	h     *Histogram
	name  string
	start time.Time
}

// StartSpan begins a span against the context's registry (no-op when
// none is attached).
func StartSpan(ctx context.Context, name string) Span {
	return FromContext(ctx).StartSpan(name)
}

// StartSpan begins a span recording into the registry's
// span_duration_seconds histogram under the given name.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	h := r.Histogram(SpanMetric, "Latency of named pipeline stages.", DefLatencyBuckets, Label{Key: "span", Value: name})
	return Span{r: r, h: h, name: name, start: time.Now()}
}

// End records the span's duration.
func (s Span) End() {
	if s.h == nil {
		return
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	s.r.recordSpan(SpanRecord{Name: s.name, Start: s.start, Duration: d})
}

func (r *Registry) recordSpan(rec SpanRecord) {
	r.spanMu.Lock()
	r.spanRing[r.spanN%spanRingSize] = rec
	r.spanN++
	r.spanMu.Unlock()
}

// RecentSpans returns up to the last spanRingSize completed spans,
// newest first.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	n := r.spanN
	if n > spanRingSize {
		n = spanRingSize
	}
	out := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.spanRing[(r.spanN-1-i)%spanRingSize])
	}
	return out
}
