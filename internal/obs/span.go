package obs

import (
	"context"
	"strconv"
	"time"
)

// SpanMetric is the histogram family every span records into, one
// series per span name (label "span").
const SpanMetric = "span_duration_seconds"

// defaultSpanRingSize is the recent-span ring capacity when
// SetSpanRingSize was not called.
const defaultSpanRingSize = 128

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// SpanRecord is one completed span, kept in the registry's recent-span
// ring for the /debug/spans endpoint. Spans begun inside an active
// trace additionally carry their trace identity and parentage, from
// which /debug/traces reassembles whole request trees.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Trace    TraceID
	Span     SpanID
	Parent   SpanID
	Attrs    []Attr
}

type registryKey struct{}

// WithRegistry attaches a registry to a context so instrumented code
// deep in the pipeline can find it without plumbing.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry attached by WithRegistry, or nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// spanData is the trace-participation state of a span: its identity,
// its parent within the trace, and any attributes set so far. It is a
// separate allocation so that plain metric-only spans — and every span
// on the disabled path — stay allocation-free.
type spanData struct {
	sc     SpanContext
	parent SpanID
	attrs  []Attr
}

// Span measures one named stretch of work. It is a value type so the
// disabled path allocates nothing; End on the zero Span is a no-op.
type Span struct {
	r     *Registry
	h     *Histogram
	d     *spanData
	name  string
	start time.Time
}

// StartSpan begins a span against the context's registry (no-op when
// none is attached). When ctx carries an active trace (via StartTrace,
// StartSpanCtx or WithSpanContext) the span joins it as a child of the
// active span; otherwise it records into the histogram and span ring
// only, exactly as before tracing existed.
func StartSpan(ctx context.Context, name string) Span {
	r := FromContext(ctx)
	if r == nil {
		return Span{}
	}
	if SpanContextFrom(ctx).Valid() {
		return r.startSpanIn(ctx, name)
	}
	return r.StartSpan(name)
}

// StartSpan begins a metric-only span recording into the registry's
// span_duration_seconds histogram under the given name.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	h := r.Histogram(SpanMetric, "Latency of named pipeline stages.", DefLatencyBuckets, Label{Key: "span", Value: name})
	return Span{r: r, h: h, name: name, start: time.Now()}
}

// SpanContext returns the span's trace identity (zero for metric-only
// and disabled spans).
func (s Span) SpanContext() SpanContext {
	if s.d == nil {
		return SpanContext{}
	}
	return s.d.sc
}

// SetAttr annotates the span with a key/value pair, surfaced in
// /debug/spans and /debug/traces. No-op on the disabled path. Pointer
// receiver: a metric-only span allocates its side data on first use,
// and that must stick to the caller's span, not a copy.
func (s *Span) SetAttr(key, value string) {
	if s.h == nil {
		return
	}
	if s.d == nil {
		s.d = &spanData{}
	}
	s.d.attrs = append(s.d.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt is SetAttr for integer values.
func (s *Span) SetAttrInt(key string, v int64) {
	if s.h == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// End records the span's duration into the histogram and the span ring,
// and — when the span belongs to a sampled trace — into the trace ring
// and JSONL export.
func (s Span) End() {
	if s.h == nil {
		return
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	rec := SpanRecord{Name: s.name, Start: s.start, Duration: d}
	if s.d != nil {
		rec.Trace = s.d.sc.Trace
		rec.Span = s.d.sc.Span
		rec.Parent = s.d.parent
		rec.Attrs = s.d.attrs
	}
	s.r.recordSpan(rec)
	if s.d != nil && s.d.sc.Valid() && s.d.sc.Sampled {
		s.r.recordTraceSpan(rec)
	}
}

func (r *Registry) recordSpan(rec SpanRecord) {
	r.spanMu.Lock()
	if r.spanRing == nil {
		r.spanRing = make([]SpanRecord, defaultSpanRingSize)
	}
	r.spanRing[r.spanN%uint64(len(r.spanRing))] = rec
	r.spanN++
	r.spanMu.Unlock()
}

// SetSpanRingSize bounds the recent-span ring behind /debug/spans
// (default 128). Resizing clears the ring.
func (r *Registry) SetSpanRingSize(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.spanMu.Lock()
	r.spanRing = make([]SpanRecord, n)
	r.spanN = 0
	r.spanMu.Unlock()
}

// RecentSpans returns up to the ring's worth of completed spans, newest
// first.
func (r *Registry) RecentSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	if r.spanRing == nil {
		return nil
	}
	size := uint64(len(r.spanRing))
	n := r.spanN
	if n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.spanRing[(r.spanN-1-i)%size])
	}
	return out
}
