package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartTraceRootsAndParents(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)

	ctx, root := StartTrace(ctx, "client.play")
	rootSC := root.SpanContext()
	if !rootSC.Valid() {
		t.Fatal("root span context not valid")
	}
	if !rootSC.Sampled {
		t.Fatal("default sampling should keep every trace")
	}
	if got := SpanContextFrom(ctx); got != rootSC {
		t.Fatalf("context carries %+v, want root %+v", got, rootSC)
	}

	cctx, child := StartSpanCtx(ctx, "server.session")
	childSC := child.SpanContext()
	if childSC.Trace != rootSC.Trace {
		t.Errorf("child trace %s, want inherited %s", childSC.Trace, rootSC.Trace)
	}
	if childSC.Span == rootSC.Span {
		t.Error("child reused the parent's span ID")
	}
	if got := SpanContextFrom(cctx); got != childSC {
		t.Errorf("child context carries %+v, want %+v", got, childSC)
	}

	// A plain StartSpan below an active trace joins it too.
	leaf := StartSpan(cctx, "annstore.get")
	if leaf.SpanContext().Trace != rootSC.Trace {
		t.Error("StartSpan under an active trace did not join it")
	}
	leaf.End()
	child.End()
	root.End()

	trees := r.TraceTrees(0)
	if len(trees) != 1 {
		t.Fatalf("got %d trees, want 1", len(trees))
	}
	tree := trees[0]
	if tree.Trace != rootSC.Trace || tree.Spans != 3 {
		t.Fatalf("tree %s with %d spans, want %s with 3", tree.Trace, tree.Spans, rootSC.Trace)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Record.Name != "client.play" {
		t.Fatalf("tree roots = %+v, want single client.play", tree.Roots)
	}
	sess := tree.Roots[0].Children
	if len(sess) != 1 || sess[0].Record.Name != "server.session" {
		t.Fatalf("root children = %+v, want single server.session", sess)
	}
	if len(sess[0].Children) != 1 || sess[0].Children[0].Record.Name != "annstore.get" {
		t.Fatalf("session children = %+v, want single annstore.get", sess[0].Children)
	}
}

func TestStartSpanCtxRootsFreshTrace(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	_, sp := StartSpanCtx(ctx, "server.session")
	if !sp.SpanContext().Valid() {
		t.Fatal("span hit without a propagated parent should root a fresh trace")
	}
	sp.End()
	if trees := r.TraceTrees(0); len(trees) != 1 || trees[0].Roots[0].Record.Name != "server.session" {
		t.Fatalf("trees = %+v, want one rooted at server.session", trees)
	}
}

func TestSpanAttributes(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	_, sp := StartTrace(ctx, "op")
	sp.SetAttr("clip", "ice_age")
	sp.SetAttrInt("bytes", 1234)
	sp.End()
	recs := r.recentTraceSpans()
	if len(recs) != 1 {
		t.Fatalf("got %d trace spans, want 1", len(recs))
	}
	want := []Attr{{"clip", "ice_age"}, {"bytes", "1234"}}
	if len(recs[0].Attrs) != 2 || recs[0].Attrs[0] != want[0] || recs[0].Attrs[1] != want[1] {
		t.Fatalf("attrs = %+v, want %+v", recs[0].Attrs, want)
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	// Simulates the protocol hop: the receiving process installs the
	// decoded SpanContext and its session span must join the trace.
	r := NewRegistry()
	remote := SpanContext{Trace: newTraceID(), Span: newSpanID(), Sampled: true}
	ctx := WithSpanContext(WithRegistry(context.Background(), r), remote)
	_, sp := StartSpanCtx(ctx, "server.session")
	sc := sp.SpanContext()
	if sc.Trace != remote.Trace {
		t.Fatalf("session trace %s, want remote %s", sc.Trace, remote.Trace)
	}
	sp.End()
	// The remote parent never lands in this ring; its child must still
	// surface as a root rather than vanish.
	trees := r.TraceTrees(0)
	if len(trees) != 1 || len(trees[0].Roots) != 1 {
		t.Fatalf("trees = %+v, want one orphan root", trees)
	}
	if got := trees[0].Roots[0].Record.Parent; got != remote.Span {
		t.Errorf("orphan root parent = %s, want %s", got, remote.Span)
	}
}

func TestTraceSampling(t *testing.T) {
	r := NewRegistry()
	r.SetTraceSampling(0)
	ctx := WithRegistry(context.Background(), r)
	ctx, sp := StartTrace(ctx, "op")
	if sp.SpanContext().Sampled {
		t.Fatal("ratio 0 sampled a trace")
	}
	_, child := StartSpanCtx(ctx, "child")
	if child.SpanContext().Sampled {
		t.Fatal("child did not inherit the unsampled decision")
	}
	child.End()
	sp.End()
	if trees := r.TraceTrees(0); len(trees) != 0 {
		t.Fatalf("unsampled spans landed in the trace ring: %+v", trees)
	}
	// Metrics still observe unsampled spans.
	if h := r.Histogram(SpanMetric, "", nil, L("span", "op")); h.Count() != 1 {
		t.Errorf("unsampled span skipped the histogram (count %d)", h.Count())
	}

	// A sampled remote decision overrides the local ratio.
	remote := SpanContext{Trace: newTraceID(), Span: newSpanID(), Sampled: true}
	_, sp2 := StartSpanCtx(WithSpanContext(ctx, remote), "joined")
	if !sp2.SpanContext().Sampled {
		t.Error("remote sampled decision not honoured")
	}
	sp2.End()
}

func TestTraceRingBoundsAndResize(t *testing.T) {
	r := NewRegistry()
	r.SetTraceRingSize(4)
	ctx := WithRegistry(context.Background(), r)
	for i := 0; i < 10; i++ {
		_, sp := StartTrace(ctx, "op")
		sp.End()
	}
	if got := len(r.recentTraceSpans()); got != 4 {
		t.Fatalf("trace ring holds %d spans, want 4", got)
	}
	// Metric-only spans must not evict trace spans.
	for i := 0; i < 100; i++ {
		r.StartSpan("burst").End()
	}
	if got := len(r.recentTraceSpans()); got != 4 {
		t.Fatalf("metric-only burst disturbed the trace ring (%d spans)", got)
	}
}

func TestSpanRingResize(t *testing.T) {
	r := NewRegistry()
	r.SetSpanRingSize(8)
	for i := 0; i < 50; i++ {
		r.StartSpan("s").End()
	}
	if got := len(r.RecentSpans()); got != 8 {
		t.Fatalf("span ring holds %d, want 8", got)
	}
}

func TestTraceJSONLWriter(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.SetTraceWriter(&buf)
	ctx := WithRegistry(context.Background(), r)
	ctx, root := StartTrace(ctx, "client.play")
	_, child := StartSpanCtx(ctx, "server.session")
	child.SetAttr("clip", "shrek2")
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2:\n%s", len(lines), buf.String())
	}
	var j struct {
		Trace  string            `json:"trace"`
		Parent string            `json:"parent"`
		Name   string            `json:"name"`
		Attrs  map[string]string `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &j); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if j.Name != "server.session" || j.Attrs["clip"] != "shrek2" || j.Parent == "" {
		t.Errorf("child line = %+v, want server.session with clip attr and parent", j)
	}
	if j.Trace != root.SpanContext().Trace.String() {
		t.Errorf("exported trace %s, want %s", j.Trace, root.SpanContext().Trace)
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	ctx, root := StartTrace(ctx, "client.play")
	_, child := StartSpanCtx(ctx, "anncache.lookup")
	child.SetAttr("outcome", "computed")
	time.Sleep(2 * time.Millisecond)
	child.End()
	root.End()

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d, want 200", code)
	}
	var trees []struct {
		Trace string `json:"trace"`
		Spans int    `json:"spans"`
		Roots []struct {
			Name     string `json:"name"`
			Children []struct {
				Name  string            `json:"name"`
				Attrs map[string]string `json:"attrs"`
			} `json:"children"`
		} `json:"roots"`
	}
	if err := json.Unmarshal([]byte(body), &trees); err != nil {
		t.Fatalf("/debug/traces body not JSON: %v\n%s", err, body)
	}
	if len(trees) != 1 || trees[0].Spans != 2 || len(trees[0].Roots) != 1 {
		t.Fatalf("trees = %+v, want one two-span tree", trees)
	}
	tr := trees[0]
	if tr.Roots[0].Name != "client.play" ||
		len(tr.Roots[0].Children) != 1 ||
		tr.Roots[0].Children[0].Name != "anncache.lookup" ||
		tr.Roots[0].Children[0].Attrs["outcome"] != "computed" {
		t.Errorf("unexpected tree shape: %+v", tr)
	}

	// min filter: everything here is far shorter than a minute.
	if _, body := get("/debug/traces?min=1m"); strings.TrimSpace(body) != "[]" {
		t.Errorf("?min=1m body = %q, want []", body)
	}
	if code, _ := get("/debug/traces?min=bogus"); code != http.StatusBadRequest {
		t.Errorf("?min=bogus = %d, want 400", code)
	}

	// /debug/spans lists the trace ID and attributes.
	_, spans := get("/debug/spans")
	if !strings.Contains(spans, "trace="+root.SpanContext().Trace.String()) {
		t.Errorf("/debug/spans missing trace ID:\n%s", spans)
	}
	if !strings.Contains(spans, "outcome=computed") {
		t.Errorf("/debug/spans missing attributes:\n%s", spans)
	}
}

// TestConcurrentTracingAndScrape drives traced spans from many
// goroutines while /metrics and /debug/traces are scraped — the -race
// regression for the trace ring, the JSONL writer and the runtime
// metric refresh.
func TestConcurrentTracingAndScrape(t *testing.T) {
	r := NewRegistry()
	r.SetTraceRingSize(64)
	r.SetTraceWriter(io.Discard)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	ctx := WithRegistry(context.Background(), r)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tctx, root := StartTrace(ctx, "client.play")
				_, child := StartSpanCtx(tctx, "anncache.lookup")
				child.SetAttr("outcome", "hit")
				child.End()
				root.End()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, path := range []string{"/metrics", "/debug/traces", "/debug/spans"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(r.TraceTrees(0)) == 0 {
		t.Error("no trace trees recorded under concurrency")
	}
}

// TestTracingDisabledAllocatesNothing pins the zero-cost contract for
// the new trace entry points: with no registry attached, rooting a
// trace, opening child spans and setting attributes must not allocate.
func TestTracingDisabledAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		tctx, root := StartTrace(ctx, "client.play")
		cctx, child := StartSpanCtx(tctx, "server.session")
		child.SetAttr("clip", "x")
		child.SetAttrInt("bytes", 42)
		StartSpan(cctx, "leaf").End()
		child.End()
		root.End()
	}); n != 0 {
		t.Fatalf("disabled tracing allocates %v/op", n)
	}
}

func TestRuntimeMetricsOnScrape(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		"go_goroutines ",
		"go_heap_alloc_bytes ",
		"go_gc_pause_seconds_bucket",
		"process_start_time_seconds ",
		`go_build_info{`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
