package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"info", LevelInfo, true},
		{"", LevelInfo, true},
		{"WARN", LevelWarn, true},
		{"warning", LevelWarn, true},
		{" error ", LevelError, true},
		{"loud", LevelInfo, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestLoggerLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("dropped")
	l.Info("session_done", "clip", "ice_age", "frames", 45)
	l.Warn("spaced", "msg2", "two words", "empty", "")
	l.Error("boom", "err", `x="1"`)

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (debug dropped):\n%s", len(lines), out)
	}
	if strings.Contains(out, "dropped") {
		t.Error("debug event emitted below the threshold")
	}
	if !strings.Contains(lines[0], "level=info msg=session_done clip=ice_age frames=45") {
		t.Errorf("info line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[0], "ts=") {
		t.Errorf("line missing timestamp: %q", lines[0])
	}
	if !strings.Contains(lines[1], `msg2="two words"`) || !strings.Contains(lines[1], `empty=""`) {
		t.Errorf("values not quoted: %q", lines[1])
	}
	if !strings.Contains(lines[2], `err="x=\"1\""`) {
		t.Errorf("equals/quotes not escaped: %q", lines[2])
	}

	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Error("SetLevel(debug) did not enable debug")
	}
	buf.Reset()
	l.Debug("now_visible", "odd")
	if got := buf.String(); !strings.Contains(got, "msg=now_visible odd=?") {
		t.Errorf("dangling key lost: %q", got)
	}
}

func TestLoggerPrintfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Printf("stream server: %v sessions", 3)
	if got := buf.String(); !strings.Contains(got, `level=info msg="stream server: 3 sessions"`) {
		t.Errorf("Printf line = %q", got)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	l.Printf("x %d", 1)
	l.SetLevel(LevelError)
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("tick", "n", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}
