package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the registry's Prometheus text
// exposition: a small typed parser so scrape consumers (fleetsim, the
// e2e tests, future dashboards) query metric values through one
// validated code path instead of each hand-splitting lines.

// Sample is one exposition sample line: a metric name, its label set
// (in file order) and the value. Histogram series surface under their
// rendered names (name_bucket / name_sum / name_count) with the le
// label in place, exactly as written.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Matches reports whether the sample carries every label in want
// (subset match; an empty want matches everything).
func (s Sample) Matches(want ...Label) bool {
	for _, w := range want {
		found := false
		for _, l := range s.Labels {
			if l == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Exposition is a parsed /metrics scrape: every sample plus the family
// types declared by the TYPE comments.
type Exposition struct {
	samples []Sample
	types   map[string]string // family name -> counter|gauge|histogram
	byName  map[string][]int  // sample name -> indexes into samples
}

// ParseExposition parses Prometheus text exposition format as the
// registry renders it. It is strict — blank lines, malformed comments,
// unterminated label sets, invalid metric names and duplicate series
// are errors — so tests that feed it a scrape body validate the
// format for free.
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{
		types:  map[string]string{},
		byName: map[string][]int{},
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			return nil, fmt.Errorf("obs: exposition line %d: blank line", lineNo)
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				f := strings.Fields(rest)
				if len(f) != 2 {
					return nil, fmt.Errorf("obs: exposition line %d: malformed TYPE comment %q", lineNo, line)
				}
				e.types[f[0]] = f[1]
				continue
			}
			if strings.HasPrefix(line, "# HELP ") {
				continue
			}
			return nil, fmt.Errorf("obs: exposition line %d: malformed comment %q", lineNo, line)
		}
		s, key, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %v", lineNo, err)
		}
		if seen[key] {
			return nil, fmt.Errorf("obs: exposition line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true
		e.byName[s.Name] = append(e.byName[s.Name], len(e.samples))
		e.samples = append(e.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseSampleLine splits `name{k="v",...} value` into a Sample plus the
// series key used for duplicate detection.
func parseSampleLine(line string) (Sample, string, error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp <= 0 || sp == len(line)-1 {
		return Sample{}, "", fmt.Errorf("malformed sample %q", line)
	}
	key, valStr := line[:sp], line[sp+1:]
	val, err := parseValue(valStr)
	if err != nil {
		return Sample{}, "", fmt.Errorf("unparseable value in %q: %v", line, err)
	}
	s := Sample{Name: key, Value: val}
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if !strings.HasSuffix(key, "}") {
			return Sample{}, "", fmt.Errorf("unterminated label set in %q", line)
		}
		s.Name = key[:i]
		labels, err := parseLabels(key[i+1 : len(key)-1])
		if err != nil {
			return Sample{}, "", fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
	}
	if !validName(s.Name) {
		return Sample{}, "", fmt.Errorf("invalid metric name in %q", line)
	}
	return s, key, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed label set")
		}
		key := s[:eq]
		if key != "le" && !validName(key) {
			return nil, fmt.Errorf("invalid label key %q", key)
		}
		// Scan the quoted value honouring escapes.
		var b strings.Builder
		i := eq + 2
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape in label %q", key)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			b.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		out = append(out, Label{Key: key, Value: b.String()})
		s = s[i:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("malformed label separator")
			}
			s = s[1:]
		}
	}
	return out, nil
}

// Type returns the declared TYPE of a metric family ("" when the
// exposition carried no TYPE comment for it).
func (e *Exposition) Type(family string) string {
	if e == nil {
		return ""
	}
	return e.types[family]
}

// Names returns every distinct sample name, sorted.
func (e *Exposition) Names() []string {
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.byName))
	for n := range e.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Samples returns every sample with the given name whose labels carry
// the given subset, in exposition order.
func (e *Exposition) Samples(name string, labels ...Label) []Sample {
	if e == nil {
		return nil
	}
	var out []Sample
	for _, i := range e.byName[name] {
		if e.samples[i].Matches(labels...) {
			out = append(out, e.samples[i])
		}
	}
	return out
}

// Value returns the sample whose name and full label set match exactly
// (order-insensitive). ok is false when no such series exists.
func (e *Exposition) Value(name string, labels ...Label) (v float64, ok bool) {
	if e == nil {
		return 0, false
	}
	for _, i := range e.byName[name] {
		s := e.samples[i]
		if len(s.Labels) == len(labels) && s.Matches(labels...) {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds up every series of name whose labels carry the given subset
// — the aggregation fleetsim uses to fold one family across label
// dimensions (and, summing several scrapes, across nodes).
func (e *Exposition) Sum(name string, labels ...Label) float64 {
	var total float64
	for _, s := range e.Samples(name, labels...) {
		total += s.Value
	}
	return total
}
