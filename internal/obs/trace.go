package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"math/rand/v2"
	"sort"
	"time"
)

// This file extends the span primitive into real distributed traces:
// 128-bit trace identities, parent/child span relationships, key/value
// attributes and head sampling, propagated via context in-process and
// via the stream protocol's v3 header extension across process hops.
// One cold-miss request yields a single tree — client.play → proxy
// session → upstream fetch → server session → pipeline stages — that
// /debug/traces serves as JSON and -trace-dir exports as JSONL.
//
// The zero-cost contract of the rest of the package holds: with no
// registry attached every trace call is a no-op that allocates nothing
// (benchmark-enforced).

// TraceID is a 128-bit trace identity shared by every span of one
// request, across processes.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 32 hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identity, unique within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 16 hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// SpanContext is the portable identity of one span: enough to parent a
// child span in another goroutine or another process. The zero value is
// "no trace".
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// newTraceID / newSpanID draw random identities from the global
// goroutine-safe PRNG (math/rand/v2 is seeded from the OS).
func newTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[:8], rand.Uint64())
	binary.BigEndian.PutUint64(t[8:], rand.Uint64())
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.BigEndian.PutUint64(s[:], rand.Uint64())
	}
	return s
}

// spanCtxKey carries the active SpanContext (the parent for StartSpan
// calls below it) through a context.
type spanCtxKey struct{}

// WithSpanContext returns ctx with sc as the active span context. The
// receiving side of a process hop uses it to parent local spans under
// the remote caller's span (decoded from the protocol header).
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom returns the active span context, or the zero value.
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// StartTrace begins a new trace rooted at a span named name, against the
// context's registry. The head sampling decision is made here, from the
// registry's sampling ratio, and inherited by every child span (local
// and remote). With no registry attached it is a free no-op returning
// ctx unchanged.
func StartTrace(ctx context.Context, name string) (context.Context, Span) {
	r := FromContext(ctx)
	if r == nil {
		return ctx, Span{}
	}
	sp := r.StartSpan(name)
	sp.d = &spanData{sc: SpanContext{
		Trace:   newTraceID(),
		Span:    newSpanID(),
		Sampled: r.sampleTrace(),
	}}
	return WithSpanContext(ctx, sp.d.sc), sp
}

// StartSpanCtx begins a span like StartSpan and additionally returns a
// context under which further spans become its children. When ctx
// carries no active span the new span roots a fresh trace, so a tier
// that is hit directly (no propagated header) still produces a tree.
func StartSpanCtx(ctx context.Context, name string) (context.Context, Span) {
	r := FromContext(ctx)
	if r == nil {
		return ctx, Span{}
	}
	if !SpanContextFrom(ctx).Valid() {
		return StartTrace(ctx, name)
	}
	sp := r.startSpanIn(ctx, name)
	return WithSpanContext(ctx, sp.d.sc), sp
}

// startSpanIn builds a traced child span of ctx's active span context.
func (r *Registry) startSpanIn(ctx context.Context, name string) Span {
	parent := SpanContextFrom(ctx)
	sp := r.StartSpan(name)
	sp.d = &spanData{
		sc: SpanContext{
			Trace:   parent.Trace,
			Span:    newSpanID(),
			Sampled: parent.Sampled,
		},
		parent: parent.Span,
	}
	return sp
}

// sampleTrace makes the head sampling decision for a new root. The
// default ratio is 1 (trace everything).
func (r *Registry) sampleTrace() bool {
	r.traceMu.Lock()
	ratio, set := r.sampleRatio, r.sampleSet
	r.traceMu.Unlock()
	if !set || ratio >= 1 {
		return true
	}
	if ratio <= 0 {
		return false
	}
	return rand.Float64() < ratio
}

// SetTraceSampling sets the head sampling ratio for new traces rooted at
// this registry (0 disables tracing, 1 traces everything; the default).
// Sampled-ness propagates with the trace, so a downstream tier honours
// the caller's decision regardless of its own ratio.
func (r *Registry) SetTraceSampling(ratio float64) {
	if r == nil {
		return
	}
	r.traceMu.Lock()
	r.sampleRatio, r.sampleSet = ratio, true
	r.traceMu.Unlock()
}

// defaultTraceRingSize bounds the completed-trace-span ring when
// SetTraceRingSize was not called.
const defaultTraceRingSize = 2048

// SetTraceRingSize bounds the ring of completed trace spans served by
// /debug/traces (default 2048). Resizing clears the ring.
func (r *Registry) SetTraceRingSize(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.traceMu.Lock()
	r.traceRing = make([]SpanRecord, n)
	r.traceN = 0
	r.traceMu.Unlock()
}

// SetTraceWriter streams every completed sampled span to w as one JSON
// line (the -trace-dir export). Writes are serialised; a nil w stops the
// export.
func (r *Registry) SetTraceWriter(w io.Writer) {
	if r == nil {
		return
	}
	r.traceMu.Lock()
	r.traceW = w
	r.traceMu.Unlock()
}

// spanJSON is the JSONL export / debug-endpoint shape of one span.
type spanJSON struct {
	Trace    string            `json:"trace"`
	Span     string            `json:"span"`
	Parent   string            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration float64           `json:"dur_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

func recordJSON(rec SpanRecord) spanJSON {
	j := spanJSON{
		Trace:    rec.Trace.String(),
		Span:     rec.Span.String(),
		Name:     rec.Name,
		Start:    rec.Start,
		Duration: float64(rec.Duration) / float64(time.Millisecond),
	}
	if !rec.Parent.IsZero() {
		j.Parent = rec.Parent.String()
	}
	if len(rec.Attrs) > 0 {
		j.Attrs = make(map[string]string, len(rec.Attrs))
		for _, a := range rec.Attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	return j
}

// recordTraceSpan lands a completed sampled span in the trace ring and,
// when an export writer is attached, appends its JSON line.
func (r *Registry) recordTraceSpan(rec SpanRecord) {
	r.traceMu.Lock()
	if r.traceRing == nil {
		r.traceRing = make([]SpanRecord, defaultTraceRingSize)
	}
	r.traceRing[r.traceN%uint64(len(r.traceRing))] = rec
	r.traceN++
	w := r.traceW
	r.traceMu.Unlock()
	if w != nil {
		line, err := json.Marshal(recordJSON(rec))
		if err != nil {
			return
		}
		line = append(line, '\n')
		// Serialise concurrent exports without holding the ring lock
		// across a potentially slow writer.
		r.traceWMu.Lock()
		w.Write(line)
		r.traceWMu.Unlock()
	}
}

// recentTraceSpans snapshots the trace ring, oldest first.
func (r *Registry) recentTraceSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if r.traceRing == nil {
		return nil
	}
	size := uint64(len(r.traceRing))
	n := r.traceN
	if n > size {
		n = size
	}
	out := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.traceRing[(r.traceN-n+i)%size])
	}
	return out
}

// TraceNode is one span with its children, as assembled by TraceTrees.
type TraceNode struct {
	Record   SpanRecord
	Children []*TraceNode
}

// TraceTree is one assembled trace: every span of a trace ID still in
// the ring, in parent/child form. Spans whose parent fell out of the
// ring (or ended in another process) surface as additional roots, so a
// partial view is still a forest rather than lost.
type TraceTree struct {
	Trace    TraceID
	Start    time.Time
	Duration time.Duration // earliest span start to latest span end
	Spans    int
	Roots    []*TraceNode
}

// TraceTrees groups the completed-span ring by trace ID and assembles
// parent/child trees, newest trace first, dropping traces shorter than
// min (0 keeps everything).
func (r *Registry) TraceTrees(min time.Duration) []TraceTree {
	recs := r.recentTraceSpans()
	if len(recs) == 0 {
		return nil
	}
	byTrace := map[TraceID][]*TraceNode{}
	var order []TraceID
	for _, rec := range recs {
		if _, seen := byTrace[rec.Trace]; !seen {
			order = append(order, rec.Trace)
		}
		byTrace[rec.Trace] = append(byTrace[rec.Trace], &TraceNode{Record: rec})
	}
	var trees []TraceTree
	for _, id := range order {
		nodes := byTrace[id]
		byID := make(map[SpanID]*TraceNode, len(nodes))
		for _, n := range nodes {
			byID[n.Record.Span] = n
		}
		tree := TraceTree{Trace: id, Spans: len(nodes)}
		var start, end time.Time
		for _, n := range nodes {
			if parent, ok := byID[n.Record.Parent]; ok && !n.Record.Parent.IsZero() && parent != n {
				parent.Children = append(parent.Children, n)
			} else {
				tree.Roots = append(tree.Roots, n)
			}
			if start.IsZero() || n.Record.Start.Before(start) {
				start = n.Record.Start
			}
			if e := n.Record.Start.Add(n.Record.Duration); e.After(end) {
				end = e
			}
		}
		for _, n := range nodes {
			sort.Slice(n.Children, func(i, j int) bool {
				return n.Children[i].Record.Start.Before(n.Children[j].Record.Start)
			})
		}
		sort.Slice(tree.Roots, func(i, j int) bool {
			return tree.Roots[i].Record.Start.Before(tree.Roots[j].Record.Start)
		})
		tree.Start = start
		tree.Duration = end.Sub(start)
		if tree.Duration >= min {
			trees = append(trees, tree)
		}
	}
	// Newest trace first (by earliest span start).
	sort.Slice(trees, func(i, j int) bool { return trees[i].Start.After(trees[j].Start) })
	return trees
}

// traceTreeJSON is the /debug/traces shape of one trace.
type traceTreeJSON struct {
	Trace    string         `json:"trace"`
	Start    time.Time      `json:"start"`
	Duration float64        `json:"dur_ms"`
	Spans    int            `json:"spans"`
	Roots    []traceNodeJSON `json:"roots"`
}

type traceNodeJSON struct {
	spanJSON
	Children []traceNodeJSON `json:"children,omitempty"`
}

func nodeJSON(n *TraceNode) traceNodeJSON {
	out := traceNodeJSON{spanJSON: recordJSON(n.Record)}
	for _, c := range n.Children {
		out.Children = append(out.Children, nodeJSON(c))
	}
	return out
}

// writeTracesJSON renders the assembled trees as the /debug/traces body.
func (r *Registry) writeTracesJSON(w io.Writer, min time.Duration) error {
	trees := r.TraceTrees(min)
	out := make([]traceTreeJSON, 0, len(trees))
	for _, t := range trees {
		tj := traceTreeJSON{
			Trace:    t.Trace.String(),
			Start:    t.Start,
			Duration: float64(t.Duration) / float64(time.Millisecond),
			Spans:    t.Spans,
		}
		for _, root := range t.Roots {
			tj.Roots = append(tj.Roots, nodeJSON(root))
		}
		out = append(out, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
