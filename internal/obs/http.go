package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the debug mux: /metrics (Prometheus text exposition),
// /healthz (liveness), /readyz (readiness, driven by RegisterReadiness
// checks), /debug/vars (expvar), /debug/pprof/*, /debug/spans and
// /debug/traces.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.updateRuntimeMetrics()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if errs := r.readinessErrors(); len(errs) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, e := range errs {
				fmt.Fprintln(w, e)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range r.RecentSpans() {
			fmt.Fprintf(w, "%s\t%s\t%s",
				s.Start.Format("15:04:05.000"), s.Name, s.Duration)
			if !s.Trace.IsZero() {
				fmt.Fprintf(w, "\ttrace=%s", s.Trace)
			}
			for _, a := range s.Attrs {
				v := a.Value
				if strings.ContainsAny(v, " \t\n") {
					v = fmt.Sprintf("%q", v)
				}
				fmt.Fprintf(w, "\t%s=%s", a.Key, v)
			}
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		var min time.Duration
		if q := req.URL.Query().Get("min"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil {
				http.Error(w, "bad min duration: "+err.Error(), http.StatusBadRequest)
				return
			}
			min = d
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.writeTracesJSON(w, min)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "debug endpoints:")
		for _, p := range []string{"/metrics", "/healthz", "/readyz", "/debug/vars", "/debug/pprof/", "/debug/spans", "/debug/traces"} {
			fmt.Fprintln(w, "  "+p)
		}
	})
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the registry's debug handler on addr (":0" picks a
// free port) and serves it in the background.
func ServeDebug(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close shuts the listener and any in-flight handlers down.
func (d *DebugServer) Close() error { return d.srv.Close() }
