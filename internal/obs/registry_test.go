package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "Frames.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %v, want 2", got)
	}
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if h.Sum() != 5.55 {
		t.Errorf("histogram sum = %v, want 5.55", h.Sum())
	}
}

func TestGetOrCreateReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", L("clip", "rotk"))
	b := r.Counter("x_total", "X.", L("clip", "rotk"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "X.", L("clip", "iceage"))
	if a == c {
		t.Error("different labels shared a counter")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "M.")
	defer func() {
		if recover() == nil {
			t.Error("registering m as gauge after counter did not panic")
		}
	}()
	r.Gauge("m", "M.")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with-dash", "sp ace", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c_seconds", "", nil)
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c != nil || g != nil || h != nil {
		t.Error("nil registry handed out non-nil metrics")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if r.RecentSpans() != nil {
		t.Error("nil RecentSpans non-nil")
	}
}

func TestNoOpPathIsAllocationFree(t *testing.T) {
	var r *Registry
	if n := testing.AllocsPerRun(100, func() {
		r.Counter("a_total", "").Inc()
	}); n != 0 {
		t.Errorf("nil counter path allocates %v/op", n)
	}
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
	}); n != 0 {
		t.Errorf("nil metric methods allocate %v/op", n)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total", "Frames sent.", L("clip", `ro"tk`)).Add(7)
	r.Gauge("active_conns", "Active connections.").Set(2)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP frames_total Frames sent.",
		"# TYPE frames_total counter",
		`frames_total{clip="ro\"tk"} 7`,
		"# TYPE active_conns gauge",
		"active_conns 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 3",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name value" or "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if sp := strings.LastIndexByte(line, ' '); sp <= 0 || sp == len(line)-1 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Mix registration (map path) and updates (atomic path).
				r.Counter("shared_total", "S.").Inc()
				r.Gauge("shared_gauge", "S.").Add(1)
				r.Histogram("shared_seconds", "S.", []float64{0.5}).Observe(float64(i%2) * 0.9)
				if i%100 == 0 {
					r.Counter("worker_total", "W.", L("w", string(rune('a'+w)))).Inc()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "S.").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge", "S.").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_seconds", "S.", []float64{0.5}).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}
