package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Go runtime health exported on /metrics: goroutine and heap gauges, a
// GC pause histogram, process start time, and a build-info gauge —
// enough to tell a leaking or GC-thrashing streamd from a healthy one
// without attaching pprof. Values are refreshed at scrape time by the
// /metrics handler rather than by a background poller, so an idle
// process stays idle.

// processStart approximates process start (obs package init).
var processStart = time.Now()

// gcPauseBuckets covers stop-the-world pauses from microseconds to the
// pathological hundred-millisecond range.
var gcPauseBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1,
}

// runtimeState is the per-registry bookkeeping behind the runtime
// metrics: which GC cycles have already been folded into the pause
// histogram, and one-time build-info resolution.
type runtimeState struct {
	mu        sync.Mutex
	lastNumGC uint32
	buildOnce sync.Once
}

// updateRuntimeMetrics refreshes the go_* and process_* families; the
// /metrics handler calls it before rendering.
func (r *Registry) updateRuntimeMetrics() {
	if r == nil {
		return
	}
	r.Gauge("go_goroutines", "Current number of goroutines.").
		Set(float64(runtime.NumGoroutine()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.").
		Set(float64(ms.HeapAlloc))

	h := r.Histogram("go_gc_pause_seconds", "Stop-the-world GC pause durations.", gcPauseBuckets)
	r.rt.mu.Lock()
	if ms.NumGC > r.rt.lastNumGC {
		// Fold in only the cycles since the previous scrape; the
		// PauseNs ring keeps the last 256, which bounds the catch-up.
		n := ms.NumGC - r.rt.lastNumGC
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
			h.Observe(float64(ms.PauseNs[idx]) / 1e9)
		}
		r.rt.lastNumGC = ms.NumGC
	}
	r.rt.mu.Unlock()

	r.Gauge("process_start_time_seconds", "Start time of the process since unix epoch in seconds.").
		Set(float64(processStart.UnixNano()) / 1e9)

	r.rt.buildOnce.Do(func() {
		labels := []Label{{Key: "goversion", Value: runtime.Version()}}
		if bi, ok := debug.ReadBuildInfo(); ok {
			labels = append(labels,
				Label{Key: "path", Value: bi.Main.Path},
				Label{Key: "version", Value: bi.Main.Version})
		}
		r.Gauge("go_build_info", "Build information of the running binary; value is always 1.", labels...).Set(1)
	})
}
