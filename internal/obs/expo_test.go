package obs

import (
	"math"
	"strings"
	"testing"
)

// TestParseExpositionRoundTrip renders a populated registry and parses
// it back: every counter, gauge and histogram series must come back
// with its exact value, label set and family type.
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs_total", "Requests.", L("role", "server")).Add(7)
	reg.Counter("reqs_total", "Requests.", L("role", "proxy")).Add(3)
	reg.Gauge("joules", "Energy.", L("role", "server")).Set(12.5)
	reg.Gauge("temp", "Escapes.", L("path", `a\b"c`)).Set(-2)
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	e, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}

	if v, ok := e.Value("reqs_total", L("role", "server")); !ok || v != 7 {
		t.Errorf("reqs_total{role=server} = %v, %v; want 7", v, ok)
	}
	if got := e.Sum("reqs_total"); got != 10 {
		t.Errorf("Sum(reqs_total) = %v, want 10", got)
	}
	if v, ok := e.Value("joules", L("role", "server")); !ok || v != 12.5 {
		t.Errorf("joules = %v, %v; want 12.5", v, ok)
	}
	if v, ok := e.Value("temp", L("path", `a\b"c`)); !ok || v != -2 {
		t.Errorf("escaped label round trip = %v, %v; want -2", v, ok)
	}
	if typ := e.Type("lat_seconds"); typ != "histogram" {
		t.Errorf("Type(lat_seconds) = %q, want histogram", typ)
	}
	if v, ok := e.Value("lat_seconds_count"); !ok || v != 3 {
		t.Errorf("lat_seconds_count = %v, %v; want 3", v, ok)
	}
	if v, ok := e.Value("lat_seconds_bucket", L("le", "+Inf")); !ok || v != 3 {
		t.Errorf("+Inf bucket = %v, %v; want 3", v, ok)
	}
	if v, ok := e.Value("lat_seconds_bucket", L("le", "0.1")); !ok || v != 1 {
		t.Errorf("0.1 bucket = %v, %v; want 1", v, ok)
	}
	if got := e.Sum("lat_seconds_sum"); math.Abs(got-5.55) > 1e-9 {
		t.Errorf("lat_seconds_sum = %v, want 5.55", got)
	}
}

// TestParseExpositionSubsetMatch pins the Sum/Samples subset semantics
// used to aggregate one family across its other label dimensions.
func TestParseExpositionSubsetMatch(t *testing.T) {
	text := "# TYPE fills counter\n" +
		`fills{role="server",kind="track"} 2` + "\n" +
		`fills{role="server",kind="variant"} 3` + "\n" +
		`fills{role="proxy",kind="track"} 10` + "\n"
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Sum("fills", L("role", "server")); got != 5 {
		t.Errorf("Sum(role=server) = %v, want 5", got)
	}
	if got := e.Sum("fills", L("kind", "track")); got != 12 {
		t.Errorf("Sum(kind=track) = %v, want 12", got)
	}
	if got := len(e.Samples("fills")); got != 3 {
		t.Errorf("Samples(fills) = %d series, want 3", got)
	}
	if _, ok := e.Value("fills", L("role", "server")); ok {
		t.Error("Value with a partial label set must not match")
	}
	if names := e.Names(); len(names) != 1 || names[0] != "fills" {
		t.Errorf("Names() = %v", names)
	}
}

// TestParseExpositionRejectsMalformed keeps the parser as strict as the
// hand parser it replaced: tests feeding it a scrape body validate the
// exposition format as a side effect.
func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []struct{ name, text string }{
		{"blank line", "a 1\n\nb 2\n"},
		{"bad comment", "#oops\n"},
		{"no value", "metric_name\n"},
		{"bad value", "m nope\n"},
		{"unterminated labels", `m{a="b" 1` + "\n"},
		{"unterminated value", `m{a="b 1` + "\n"},
		{"bad name", "9metric 1\n"},
		{"bad label key", `m{9k="v"} 1` + "\n"},
		{"duplicate series", `m{a="b"} 1` + "\n" + `m{a="b"} 2` + "\n"},
		{"bad escape", `m{a="\q"} 1` + "\n"},
	}
	for _, tc := range bad {
		if _, err := ParseExposition(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: parse accepted %q", tc.name, tc.text)
		}
	}
	// +Inf / -Inf values are legal (gauge extremes, histogram bounds).
	e, err := ParseExposition(strings.NewReader("m +Inf\n"))
	if err != nil {
		t.Fatalf("+Inf value rejected: %v", err)
	}
	if v, _ := e.Value("m"); !math.IsInf(v, 1) {
		t.Errorf("m = %v, want +Inf", v)
	}
}
