package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "Hits.").Inc()
	r.StartSpan("stage").End()
	h := r.Handler()

	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "hits_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d, want expvar json with memstats", code)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, h, "/debug/spans"); code != 200 || !strings.Contains(body, "stage") {
		t.Errorf("/debug/spans = %d %q", code, body)
	}
	if code, body := get(t, h, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "Up.").Set(1)
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("metrics body = %q", body)
	}
}
