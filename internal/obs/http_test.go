package obs

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "Hits.").Inc()
	r.StartSpan("stage").End()
	h := r.Handler()

	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "hits_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, h, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d, want expvar json with memstats", code)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, body := get(t, h, "/debug/spans"); code != 200 || !strings.Contains(body, "stage") {
		t.Errorf("/debug/spans = %d %q", code, body)
	}
	if code, body := get(t, h, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, h, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up", "Up.").Set(1)
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up 1") {
		t.Errorf("metrics body = %q", body)
	}
}

func TestReadyzNoChecksIsReady(t *testing.T) {
	r := NewRegistry()
	if code, body := get(t, r.Handler(), "/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/readyz with no checks = %d %q, want 200 ok", code, body)
	}
}

func TestReadyzReflectsChecks(t *testing.T) {
	r := NewRegistry()
	var serverErr, proxyErr error
	r.RegisterReadiness("server", func() error { return serverErr })
	r.RegisterReadiness("proxy", func() error { return proxyErr })
	h := r.Handler()

	if code, _ := get(t, h, "/readyz"); code != 200 {
		t.Fatalf("/readyz = %d with passing checks, want 200", code)
	}

	serverErr = errors.New("draining")
	code, body := get(t, h, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with a failing check, want 503", code)
	}
	if !strings.Contains(body, "server: draining") {
		t.Errorf("/readyz body = %q, want the failing check named", body)
	}
	if strings.Contains(body, "proxy") {
		t.Errorf("/readyz body = %q, must not list passing checks", body)
	}

	// Re-registering a name replaces the check.
	r.RegisterReadiness("server", func() error { return nil })
	if code, _ := get(t, h, "/readyz"); code != 200 {
		t.Errorf("/readyz = %d after replacing the failing check, want 200", code)
	}
}

func TestReadyzOnNilRegistry(t *testing.T) {
	var r *Registry
	r.RegisterReadiness("x", func() error { return errors.New("boom") }) // must not panic
	if errs := r.readinessErrors(); errs != nil {
		t.Errorf("nil registry readiness = %v, want nil", errs)
	}
}
