package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := NewRegistry()
	ctx := WithRegistry(context.Background(), r)
	sp := StartSpan(ctx, "annotate.scene_detect")
	time.Sleep(time.Millisecond)
	sp.End()

	h := r.Histogram(SpanMetric, "", nil, L("span", "annotate.scene_detect"))
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d, want 1", h.Count())
	}
	if h.Sum() <= 0 {
		t.Errorf("span histogram sum = %v, want > 0", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `span_duration_seconds_count{span="annotate.scene_detect"} 1`) {
		t.Errorf("span series missing from exposition:\n%s", b.String())
	}
}

func TestSpanNoOpWithoutRegistry(t *testing.T) {
	sp := StartSpan(context.Background(), "x")
	sp.End() // must not panic
	var r *Registry
	r.StartSpan("y").End()
	if n := testing.AllocsPerRun(100, func() {
		StartSpan(context.Background(), "hot.path").End()
	}); n != 0 {
		t.Errorf("no-op span allocates %v/op", n)
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) != nil")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext(Background) != nil")
	}
	r := NewRegistry()
	if FromContext(WithRegistry(context.Background(), r)) != r {
		t.Error("registry did not round-trip through context")
	}
	// Attaching nil leaves the context unchanged.
	ctx := context.Background()
	if WithRegistry(ctx, nil) != ctx {
		t.Error("WithRegistry(ctx, nil) wrapped the context")
	}
}

func TestRecentSpansRing(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < defaultSpanRingSize+10; i++ {
		r.StartSpan("s").End()
	}
	spans := r.RecentSpans()
	if len(spans) != defaultSpanRingSize {
		t.Fatalf("ring holds %d spans, want %d", len(spans), defaultSpanRingSize)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.After(spans[i-1].Start) {
			t.Fatal("RecentSpans not newest-first")
		}
	}
}
