package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestParseConfigRoundTrip(t *testing.T) {
	in := "latency=2ms,bw=65536,short,corrupt=0.01,reset=4096:8192,repeat,seed=7"
	c, err := ParseConfig(in)
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency != 2*time.Millisecond || c.BandwidthBPS != 65536 || !c.ShortWrites {
		t.Errorf("parsed %+v", c)
	}
	if c.CorruptRate != 0.01 || c.Seed != 7 || !c.ResetRepeat {
		t.Errorf("parsed %+v", c)
	}
	if len(c.ResetAfter) != 2 || c.ResetAfter[0] != 4096 || c.ResetAfter[1] != 8192 {
		t.Errorf("reset schedule %v", c.ResetAfter)
	}
	// The rendered form must parse back to the same config.
	c2, err := ParseConfig(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != c2.String() {
		t.Errorf("round trip %q vs %q", c, c2)
	}
	if !c.Enabled() {
		t.Error("config with faults reports disabled")
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"latency=zzz", "bw=-1", "corrupt=2", "reset=0", "reset=a",
		"nope=1", "short=1", "repeat=x",
	} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) accepted", s)
		}
	}
}

func TestZeroConfigDisabled(t *testing.T) {
	c, err := ParseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Error("empty config enabled")
	}
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	if WrapListener(ln, c) != ln {
		t.Error("disabled config should not wrap the listener")
	}
}

// pipePair returns a wrapped client end and the raw server end.
func pipePair(cfg Config) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return NewInjector(cfg).Wrap(a), b
}

func TestResetAfterBudget(t *testing.T) {
	wrapped, peer := pipePair(Config{Seed: 1, ResetAfter: []int64{100}})
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	buf := make([]byte, 64)
	n1, err := wrapped.Write(buf)
	if err != nil || n1 != 64 {
		t.Fatalf("first write: n=%d err=%v", n1, err)
	}
	n2, err := wrapped.Write(buf)
	if !errors.Is(err, ErrInjectedReset) || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("second write: err=%v, want injected reset", err)
	}
	if n2 != 36 {
		t.Errorf("second write delivered %d bytes before reset, want 36", n2)
	}
	if _, err := wrapped.Write(buf); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("write after reset: %v", err)
	}
}

func TestResetScheduleByConnection(t *testing.T) {
	in := NewInjector(Config{Seed: 1, ResetAfter: []int64{10}})
	// First connection resets, second (past the schedule) never does.
	for i, wantReset := range []bool{true, false} {
		a, b := net.Pipe()
		go io.Copy(io.Discard, b)
		w := in.Wrap(a)
		_, err := w.Write(make([]byte, 1000))
		gotReset := errors.Is(err, ErrInjectedReset)
		if gotReset != wantReset {
			t.Errorf("conn %d: reset=%v err=%v, want reset=%v", i, gotReset, err, wantReset)
		}
		a.Close()
		b.Close()
	}
}

func TestShortWritesFragment(t *testing.T) {
	wrapped, peer := pipePair(Config{Seed: 42, ShortWrites: true})
	defer peer.Close()
	sizes := make(chan int, 64)
	go func() {
		defer close(sizes)
		buf := make([]byte, 256)
		for {
			n, err := peer.Read(buf)
			if n > 0 {
				sizes <- n
			}
			if err != nil {
				return
			}
		}
	}()
	if _, err := wrapped.Write(make([]byte, 200)); err != nil {
		t.Fatal(err)
	}
	wrapped.Close()
	var reads, total int
	for n := range sizes {
		reads++
		total += n
		if n > 16 {
			t.Errorf("fragment of %d bytes exceeds the 16-byte cap", n)
		}
	}
	if total != 200 {
		t.Errorf("delivered %d bytes, want 200", total)
	}
	if reads < 200/16 {
		t.Errorf("only %d fragments for 200 bytes", reads)
	}
}

func TestCorruptionFlipsOneBit(t *testing.T) {
	wrapped, peer := pipePair(Config{Seed: 3, CorruptRate: 1})
	defer peer.Close()
	in := bytes.Repeat([]byte{0xAA}, 32)
	got := make([]byte, 32)
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(peer, got)
		done <- err
	}()
	if _, err := wrapped.Write(in); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range in {
		diff += popcount(in[i] ^ got[i])
	}
	if diff != 1 {
		t.Errorf("%d bits differ, want exactly 1 (rate=1, one write)", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		wrapped, peer := pipePair(Config{Seed: 9, CorruptRate: 0.5, ShortWrites: true})
		defer peer.Close()
		var got bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			io.Copy(&got, peer)
		}()
		wrapped.Write(bytes.Repeat([]byte{0x5C}, 128))
		wrapped.Close()
		<-done
		return got.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("same seed produced different corruption")
	}
}

func TestWrapListenerInjects(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, Config{Seed: 1, ResetAfter: []int64{8}})
	defer ln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(io.Discard, c)
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, werr := conn.Write(make([]byte, 100))
	if !errors.Is(werr, ErrInjectedReset) {
		t.Errorf("accepted conn write err = %v, want injected reset", werr)
	}
}
