// Package faults injects deterministic network faults into net.Conn and
// net.Listener values: added latency, bandwidth throttling, fragmented
// (short) writes, mid-stream connection resets and byte corruption. The
// stream stack's resilience work (deadlines, retry/backoff, session
// resume, graceful degradation) is only trustworthy if it is exercised,
// and real handheld radio links are exactly this hostile; the injector
// makes those conditions reproducible — every fault decision derives
// from a seed, so a failing chaos run replays bit-for-bit.
//
// The wrappers are usable both from tests (wrap a Dialer or Listener)
// and live via the -faults flag on cmd/streamd.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Config describes the faults to inject. The zero value injects nothing.
type Config struct {
	// Seed makes every random decision reproducible. Connections are
	// numbered in accept/dial order and each derives its own RNG from
	// Seed and its ordinal, so concurrent connections stay deterministic
	// independently of scheduling.
	Seed int64
	// Latency is added once per Read and per Write call.
	Latency time.Duration
	// BandwidthBPS throttles each direction to roughly this many bytes
	// per second (0 = unlimited).
	BandwidthBPS int
	// ThrottlePhases, when set, replaces BandwidthBPS with a
	// byte-scheduled bandwidth profile: each connection counts its
	// cumulative bytes (both directions) and throttles at the current
	// phase's rate, advancing when the phase's byte length is spent. The
	// last phase is open-ended. This is how chaos tests script "link
	// collapses, then recovers" against a deterministic byte position
	// instead of a wall-clock timer.
	ThrottlePhases []ThrottlePhase
	// ShortWrites fragments every Write into small chunks written
	// separately, so peers observe short reads at arbitrary offsets.
	ShortWrites bool
	// CorruptRate is the per-Write probability of flipping one bit in
	// the outgoing chunk (0 = never).
	CorruptRate float64
	// ResetAfter is a per-connection schedule of byte budgets: the n-th
	// wrapped connection is reset (underlying conn closed, ECONNRESET
	// returned) once budget bytes have crossed it in either direction.
	// Connections beyond the schedule are not reset unless ResetRepeat
	// is set, in which case the schedule cycles.
	ResetAfter []int64
	// ResetRepeat cycles ResetAfter for connections past its end.
	ResetRepeat bool
}

// ThrottlePhase is one leg of a phased bandwidth profile.
type ThrottlePhase struct {
	// Bytes is the phase length: how many connection bytes it covers
	// before the next phase takes over. 0 means open-ended (legal only
	// for the final phase).
	Bytes int64
	// BPS is the throttle during the phase (0 = unlimited).
	BPS int
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Latency > 0 || c.BandwidthBPS > 0 || len(c.ThrottlePhases) > 0 ||
		c.ShortWrites || c.CorruptRate > 0 || len(c.ResetAfter) > 0
}

// String renders the config in ParseConfig's syntax.
func (c Config) String() string {
	var parts []string
	if c.Latency > 0 {
		parts = append(parts, "latency="+c.Latency.String())
	}
	if c.BandwidthBPS > 0 {
		parts = append(parts, fmt.Sprintf("bw=%d", c.BandwidthBPS))
	}
	if len(c.ThrottlePhases) > 0 {
		s := make([]string, len(c.ThrottlePhases))
		for i, p := range c.ThrottlePhases {
			s[i] = fmt.Sprintf("%d@%d", p.Bytes, p.BPS)
		}
		parts = append(parts, "phases="+strings.Join(s, ":"))
	}
	if c.ShortWrites {
		parts = append(parts, "short")
	}
	if c.CorruptRate > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", c.CorruptRate))
	}
	if len(c.ResetAfter) > 0 {
		s := make([]string, len(c.ResetAfter))
		for i, v := range c.ResetAfter {
			s[i] = strconv.FormatInt(v, 10)
		}
		parts = append(parts, "reset="+strings.Join(s, ":"))
	}
	if c.ResetRepeat {
		parts = append(parts, "repeat")
	}
	parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	return strings.Join(parts, ",")
}

// ParseConfig parses the -faults flag syntax: comma-separated
// key=value items.
//
//	latency=2ms           added delay per Read/Write
//	bw=65536              throttle to N bytes/second
//	phases=65536@8192:0@0 phased throttle: bytes@bps legs, last open-ended
//	short                 fragment writes into small chunks
//	corrupt=0.01       per-write bit-flip probability
//	reset=4096:8192    reset the n-th connection after its budget
//	repeat             cycle the reset schedule over all connections
//	seed=7             deterministic RNG seed
func ParseConfig(s string) (Config, error) {
	var c Config
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, item := range strings.Split(s, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(item), "=")
		switch key {
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return c, fmt.Errorf("faults: bad latency %q", val)
			}
			c.Latency = d
		case "bw":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return c, fmt.Errorf("faults: bad bandwidth %q", val)
			}
			c.BandwidthBPS = n
		case "phases":
			for _, leg := range strings.Split(val, ":") {
				bs, rs, ok := strings.Cut(leg, "@")
				if !ok {
					return c, fmt.Errorf("faults: bad phase %q (want bytes@bps)", leg)
				}
				bytes, err := strconv.ParseInt(bs, 10, 64)
				if err != nil || bytes < 0 {
					return c, fmt.Errorf("faults: bad phase bytes %q", bs)
				}
				bps, err := strconv.Atoi(rs)
				if err != nil || bps < 0 {
					return c, fmt.Errorf("faults: bad phase rate %q", rs)
				}
				c.ThrottlePhases = append(c.ThrottlePhases, ThrottlePhase{Bytes: bytes, BPS: bps})
			}
			for i, p := range c.ThrottlePhases {
				if p.Bytes == 0 && i != len(c.ThrottlePhases)-1 {
					return c, fmt.Errorf("faults: open-ended phase %d before the last", i)
				}
			}
		case "short":
			if hasVal {
				return c, fmt.Errorf("faults: short takes no value")
			}
			c.ShortWrites = true
		case "corrupt":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return c, fmt.Errorf("faults: bad corrupt rate %q", val)
			}
			c.CorruptRate = p
		case "reset":
			for _, b := range strings.Split(val, ":") {
				n, err := strconv.ParseInt(b, 10, 64)
				if err != nil || n <= 0 {
					return c, fmt.Errorf("faults: bad reset budget %q", b)
				}
				c.ResetAfter = append(c.ResetAfter, n)
			}
		case "repeat":
			if hasVal {
				return c, fmt.Errorf("faults: repeat takes no value")
			}
			c.ResetRepeat = true
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: bad seed %q", val)
			}
			c.Seed = n
		default:
			return c, fmt.Errorf("faults: unknown item %q", item)
		}
	}
	return c, nil
}

// ErrInjectedReset marks a connection the injector reset mid-stream. It
// wraps syscall.ECONNRESET so errors.Is(err, syscall.ECONNRESET) holds,
// matching what a real peer reset produces.
var ErrInjectedReset = fmt.Errorf("faults: injected reset: %w", syscall.ECONNRESET)

// Injector hands out fault-wrapped connections, numbering them so every
// connection's faults are deterministic. One Injector is shared by a
// Listener (server side) or Dialer (client side).
type Injector struct {
	cfg  Config
	next atomic.Int64
}

// NewInjector builds an injector over cfg.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Wrap wraps one connection with the injector's faults. Each call
// consumes the next connection ordinal.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	ord := in.next.Add(1) - 1
	fc := &conn{
		Conn: c,
		cfg:  in.cfg,
		rng:  rand.New(rand.NewSource(in.cfg.Seed ^ (ord+1)*0x5851F42D4C957F2D)),
	}
	fc.budget = int64(-1)
	if n := len(in.cfg.ResetAfter); n > 0 {
		if int(ord) < n {
			fc.budget = in.cfg.ResetAfter[ord]
		} else if in.cfg.ResetRepeat {
			fc.budget = in.cfg.ResetAfter[int(ord)%n]
		}
	}
	return fc
}

// listener wraps Accept with fault injection.
type listener struct {
	net.Listener
	in *Injector
}

// WrapListener returns a listener whose accepted connections carry the
// injector's faults. If cfg injects nothing, ln is returned unchanged.
func WrapListener(ln net.Listener, cfg Config) net.Listener {
	if !cfg.Enabled() {
		return ln
	}
	return &listener{Listener: ln, in: NewInjector(cfg)}
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// Dialer returns a dial function that wraps every new connection with
// the injector's faults (for client-side chaos in tests).
func (in *Injector) Dialer(dial func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	if dial == nil {
		dial = net.Dial
	}
	return func(network, addr string) (net.Conn, error) {
		c, err := dial(network, addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

// conn injects faults into one connection. Reads and writes may run
// concurrently (one goroutine each, as net.Conn allows); the RNG and
// byte budget are locked.
type conn struct {
	net.Conn
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand
	budget int64 // remaining bytes before reset; -1 = never
	reset  bool

	// Phased-throttle cursor: current phase and bytes spent inside it.
	// Both directions share the counter, so the profile is a property of
	// the connection, not of each half.
	phase      int
	phaseSpent int64
}

// spend consumes n bytes of the reset budget, returning how many of them
// fit and whether the budget is now exhausted.
func (c *conn) spend(n int) (allowed int, exhausted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return 0, true
	}
	if c.budget < 0 {
		return n, false
	}
	if int64(n) <= c.budget {
		c.budget -= int64(n)
		return n, false
	}
	allowed = int(c.budget)
	c.budget = 0
	c.reset = true
	return allowed, true
}

// refund returns unused budget (a Read that asked for more than
// arrived).
func (c *conn) refund(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	if c.budget >= 0 && !c.reset {
		c.budget += int64(n)
	}
	c.mu.Unlock()
}

func (c *conn) throttle(n int) {
	if n <= 0 {
		return
	}
	if len(c.cfg.ThrottlePhases) > 0 {
		c.throttlePhased(n)
		return
	}
	if c.cfg.BandwidthBPS > 0 {
		time.Sleep(time.Duration(float64(n) / float64(c.cfg.BandwidthBPS) * float64(time.Second)))
	}
}

// throttlePhased charges n bytes against the phase schedule, sleeping
// for however long the bytes take at each phase's rate. A chunk that
// straddles a boundary pays each phase its share.
func (c *conn) throttlePhased(n int) {
	var sleep float64
	c.mu.Lock()
	for n > 0 {
		ph := c.cfg.ThrottlePhases[c.phase]
		take := n
		last := c.phase == len(c.cfg.ThrottlePhases)-1
		if ph.Bytes > 0 && !last {
			if left := ph.Bytes - c.phaseSpent; int64(take) > left {
				take = int(left)
			}
		}
		if ph.BPS > 0 {
			sleep += float64(take) / float64(ph.BPS)
		}
		c.phaseSpent += int64(take)
		n -= take
		if !last && ph.Bytes > 0 && c.phaseSpent >= ph.Bytes {
			c.phase++
			c.phaseSpent = 0
		}
	}
	c.mu.Unlock()
	if sleep > 0 {
		time.Sleep(time.Duration(sleep * float64(time.Second)))
	}
}

func (c *conn) Read(p []byte) (int, error) {
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	allowed, exhausted := c.spend(len(p))
	if allowed == 0 && exhausted {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	n, err := c.Conn.Read(p[:allowed])
	c.throttle(n)
	if exhausted && err == nil {
		// Deliver the last bytes, then kill the connection so the next
		// Read observes the reset.
		c.Conn.Close()
	} else {
		c.refund(allowed - n)
	}
	return n, err
}

func (c *conn) Write(p []byte) (int, error) {
	if c.cfg.Latency > 0 {
		time.Sleep(c.cfg.Latency)
	}
	written := 0
	for written < len(p) {
		chunk := p[written:]
		if c.cfg.ShortWrites {
			c.mu.Lock()
			limit := 1 + c.rng.Intn(16)
			c.mu.Unlock()
			if len(chunk) > limit {
				chunk = chunk[:limit]
			}
		}
		allowed, exhausted := c.spend(len(chunk))
		if allowed == 0 && exhausted {
			c.Conn.Close()
			return written, ErrInjectedReset
		}
		chunk = chunk[:allowed]
		chunk = c.maybeCorrupt(chunk)
		n, err := c.Conn.Write(chunk)
		written += n
		c.throttle(n)
		if err != nil {
			return written, err
		}
		if exhausted {
			c.Conn.Close()
			return written, ErrInjectedReset
		}
	}
	return written, nil
}

// maybeCorrupt flips one bit of the chunk (on a copy) with the
// configured probability.
func (c *conn) maybeCorrupt(chunk []byte) []byte {
	if c.cfg.CorruptRate <= 0 || len(chunk) == 0 {
		return chunk
	}
	c.mu.Lock()
	hit := c.rng.Float64() < c.cfg.CorruptRate
	var at, bit int
	if hit {
		at = c.rng.Intn(len(chunk))
		bit = c.rng.Intn(8)
	}
	c.mu.Unlock()
	if !hit {
		return chunk
	}
	out := make([]byte, len(chunk))
	copy(out, chunk)
	out[at] ^= 1 << bit
	return out
}
