package faults

import (
	"io"
	"testing"
	"time"
)

func TestParsePhases(t *testing.T) {
	c, err := ParseConfig("phases=1024@512:0@4096,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	want := []ThrottlePhase{{Bytes: 1024, BPS: 512}, {Bytes: 0, BPS: 4096}}
	if len(c.ThrottlePhases) != 2 || c.ThrottlePhases[0] != want[0] || c.ThrottlePhases[1] != want[1] {
		t.Errorf("parsed %+v, want %+v", c.ThrottlePhases, want)
	}
	if !c.Enabled() {
		t.Error("phased config reports disabled")
	}
	c2, err := ParseConfig(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != c2.String() {
		t.Errorf("round trip %q vs %q", c, c2)
	}
	for _, s := range []string{
		"phases=1024",         // no rate
		"phases=x@512",        // bad bytes
		"phases=1024@y",       // bad rate
		"phases=-1@512",       // negative bytes
		"phases=1024@-1",      // negative rate
		"phases=0@512:1024@0", // open-ended leg before the last
	} {
		if _, err := ParseConfig(s); err == nil {
			t.Errorf("ParseConfig(%q) accepted", s)
		}
	}
}

func TestPhasedThrottleSchedule(t *testing.T) {
	// Phase 1: 2 KiB at an unmeasurably fast rate. Phase 2: slow. The
	// first writes must return quickly, later ones must sleep.
	wrapped, peer := pipePair(Config{Seed: 1, ThrottlePhases: []ThrottlePhase{
		{Bytes: 2048, BPS: 0},
		{Bytes: 0, BPS: 16 * 1024},
	}})
	defer peer.Close()
	go io.Copy(io.Discard, peer)

	buf := make([]byte, 2048)
	start := time.Now()
	if _, err := wrapped.Write(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Errorf("unlimited phase took %v", d)
	}
	// 4 KiB at 16 KiB/s is 250ms.
	start = time.Now()
	if _, err := wrapped.Write(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Write(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Errorf("throttled phase took only %v, want ~250ms", d)
	}
}

func TestPhasedThrottleStraddle(t *testing.T) {
	// One write straddling the boundary pays each phase its share: 1 KiB
	// free, then 1 KiB at 8 KiB/s = 125ms.
	wrapped, peer := pipePair(Config{Seed: 1, ThrottlePhases: []ThrottlePhase{
		{Bytes: 1024, BPS: 0},
		{Bytes: 0, BPS: 8 * 1024},
	}})
	defer peer.Close()
	go io.Copy(io.Discard, peer)
	start := time.Now()
	if _, err := wrapped.Write(make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	d := time.Since(start)
	if d < 75*time.Millisecond || d > 500*time.Millisecond {
		t.Errorf("straddling write took %v, want ~125ms", d)
	}
}
