// Package roi implements user-supervised annotations (§3: "the user may
// specify which parts or objects of the video stream are more important in
// a power-quality trade-off scenario") and addresses the one failure mode
// the paper reports for its fixed-percentage clipping heuristic: end
// credits, where clipped text over a uniform background is immediately
// visible ("this is subject of future study", §4.3).
//
// A region of interest is a pixel mask per scene. The clipping budget is
// applied only to pixels outside the mask; pixels inside it are never
// clipped, so the scene's luminance target is at least the ROI's own
// maximum. Power savings shrink accordingly — but only on scenes where
// the protected content is actually bright.
package roi

import (
	"fmt"
	"math"

	"repro/internal/annotation"
	"repro/internal/compensate"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/scene"
)

// Mask marks the protected pixels of a raster.
type Mask struct {
	W, H int
	bits []bool
}

// NewMask returns an empty (nothing protected) mask.
func NewMask(w, h int) *Mask {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("roi: invalid mask dimensions %dx%d", w, h))
	}
	return &Mask{W: w, H: h, bits: make([]bool, w*h)}
}

// Rect returns a mask protecting the rectangle [x0,x1)×[y0,y1), clamped to
// the raster.
func Rect(w, h, x0, y0, x1, y1 int) *Mask {
	m := NewMask(w, h)
	for y := max(y0, 0); y < min(y1, h); y++ {
		for x := max(x0, 0); x < min(x1, w); x++ {
			m.bits[y*w+x] = true
		}
	}
	return m
}

// At reports whether (x, y) is protected.
func (m *Mask) At(x, y int) bool { return m.bits[y*m.W+x] }

// Set marks (x, y) as protected (out-of-bounds ignored).
func (m *Mask) Set(x, y int) {
	if x < 0 || x >= m.W || y < 0 || y >= m.H {
		return
	}
	m.bits[y*m.W+x] = true
}

// Coverage returns the protected fraction of the raster.
func (m *Mask) Coverage() float64 {
	n := 0
	for _, b := range m.bits {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(m.bits))
}

// Split builds separate luminance histograms for the protected and
// unprotected pixels of f. The mask must match the frame's raster.
func (m *Mask) Split(f *frame.Frame) (inside, outside *histogram.H, err error) {
	if f.W != m.W || f.H != m.H {
		return nil, nil, fmt.Errorf("roi: mask %dx%d does not match frame %dx%d",
			m.W, m.H, f.W, f.H)
	}
	inside, outside = &histogram.H{}, &histogram.H{}
	for i, p := range f.Pix {
		if m.bits[i] {
			inside.Count[p.Luma8()]++
			inside.Total++
		} else {
			outside.Count[p.Luma8()]++
			outside.Total++
		}
	}
	return inside, outside, nil
}

// FrameTarget returns the luminance target for one frame at the given
// clipping budget with the mask protected: the budget applies only to
// unprotected pixels, and the target never drops below the brightest
// protected pixel.
func (m *Mask) FrameTarget(f *frame.Frame, budget float64) (float64, error) {
	inside, outside, err := m.Split(f)
	if err != nil {
		return 0, err
	}
	target := compensate.SceneTarget(outside, budget)
	if inside.Total > 0 {
		roiCeil := float64(inside.Max()) / 255
		if roiCeil > target {
			target = roiCeil
		}
	}
	return target, nil
}

// MaskFunc supplies the protection mask for a frame index; returning nil
// means the frame has no protected region.
type MaskFunc func(frameIdx int) *Mask

// Source is the subset of core.Source the annotator needs (duplicated
// here to avoid an import cycle with core).
type Source interface {
	Size() (w, h int)
	FPS() int
	TotalFrames() int
	Frame(i int) *frame.Frame
}

// Annotate runs the offline analysis with ROI protection: scene detection
// is unchanged (max-luminance heuristic), but each scene's per-quality
// targets honour the mask on every frame.
func Annotate(src Source, maskOf MaskFunc, cfg scene.Config, quality []float64) (*annotation.Track, []scene.Scene, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if quality == nil {
		quality = compensate.QualityLevels
	}
	n := src.TotalFrames()
	if n == 0 {
		return nil, nil, fmt.Errorf("roi: empty source")
	}
	det := scene.NewDetector(cfg)
	// frameTargets[q][i] is frame i's protected target at quality q.
	frameTargets := make([][]float64, len(quality))
	for q := range frameTargets {
		frameTargets[q] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		f := src.Frame(i)
		det.Feed(scene.StatsOf(f))
		mask := maskOf(i)
		for qi, q := range quality {
			var t float64
			if mask == nil {
				t = compensate.SceneTarget(histogram.FromFrame(f), q)
			} else {
				var err error
				t, err = mask.FrameTarget(f, q)
				if err != nil {
					return nil, nil, err
				}
			}
			frameTargets[qi][i] = t
		}
	}
	scenes := det.Finish()
	track := &annotation.Track{FPS: src.FPS(), Quality: quality}
	for _, s := range scenes {
		r := annotation.Record{Frames: s.Len(), Targets: make([]uint8, len(quality))}
		for qi := range quality {
			var target float64
			for i := s.Start; i < s.End; i++ {
				if frameTargets[qi][i] > target {
					target = frameTargets[qi][i]
				}
			}
			r.Targets[qi] = uint8(math.Ceil(target * 255))
		}
		track.Records = append(track.Records, r)
	}
	return track, scenes, nil
}

// ClippedInROI returns the fraction of protected pixels of f that clip
// when the frame is compensated for the given target — the text-distortion
// metric for the credits scenario. Zero means the protected content
// survives intact.
func ClippedInROI(m *Mask, f *frame.Frame, target float64) (float64, error) {
	inside, _, err := m.Split(f)
	if err != nil {
		return 0, err
	}
	if inside.Total == 0 {
		return 0, nil
	}
	return inside.ClippedFraction(int(target*255 + 0.5)), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
