package roi_test

import (
	"fmt"

	"repro/internal/compensate"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/roi"
)

// Protecting a region of interest keeps its pixels below the clip level
// regardless of the budget — the fix for the paper's end-credits failure.
func ExampleMask_FrameTarget() {
	// Dark frame with a bright title band across the top two rows.
	f := frame.Solid(10, 10, pixel.Gray(30))
	for y := 0; y < 2; y++ {
		for x := 0; x < 10; x++ {
			f.Set(x, y, pixel.Gray(240))
		}
	}
	unprotected := compensate.SceneTarget(histogram.FromFrame(f), 0.20)

	title := roi.Rect(10, 10, 0, 0, 10, 2)
	protected, _ := title.FrameTarget(f, 0.20)
	fmt.Printf("unprotected target: %.2f (title clipped away)\n", unprotected)
	fmt.Printf("protected target:   %.2f (title intact)\n", protected)
	// Output:
	// unprotected target: 0.12 (title clipped away)
	// protected target:   0.94 (title intact)
}
