package roi

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/compensate"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/scene"
	"repro/internal/video"
)

func TestRectMask(t *testing.T) {
	m := Rect(10, 8, 2, 1, 5, 4)
	if !m.At(2, 1) || !m.At(4, 3) {
		t.Error("rect interior not protected")
	}
	if m.At(5, 4) || m.At(1, 1) || m.At(9, 7) {
		t.Error("rect exterior protected")
	}
	want := float64(3*3) / 80
	if got := m.Coverage(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Coverage = %v, want %v", got, want)
	}
}

func TestRectClamps(t *testing.T) {
	m := Rect(4, 4, -5, -5, 100, 100)
	if m.Coverage() != 1 {
		t.Errorf("clamped full rect coverage = %v", m.Coverage())
	}
}

func TestNewMaskPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewMask(0, 4)
}

func TestSetIgnoresOutOfBounds(t *testing.T) {
	m := NewMask(2, 2)
	m.Set(-1, 0)
	m.Set(5, 5)
	m.Set(1, 1)
	if m.Coverage() != 0.25 {
		t.Errorf("coverage = %v", m.Coverage())
	}
}

func TestSplitHistograms(t *testing.T) {
	f := frame.New(4, 1)
	f.Set(0, 0, pixel.Gray(10))
	f.Set(1, 0, pixel.Gray(20))
	f.Set(2, 0, pixel.Gray(200))
	f.Set(3, 0, pixel.Gray(210))
	m := Rect(4, 1, 2, 0, 4, 1) // protect the two bright pixels
	inside, outside, err := m.Split(f)
	if err != nil {
		t.Fatal(err)
	}
	if inside.Total != 2 || outside.Total != 2 {
		t.Fatalf("split totals %d/%d", inside.Total, outside.Total)
	}
	if inside.Max() != 210 || outside.Max() != 20 {
		t.Errorf("split maxima %d/%d", inside.Max(), outside.Max())
	}
}

func TestSplitDimensionMismatch(t *testing.T) {
	if _, _, err := NewMask(3, 3).Split(frame.New(4, 4)); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestFrameTargetProtectsROI(t *testing.T) {
	// Dark background with a bright protected region: even a huge budget
	// must not lower the target below the ROI ceiling.
	f := frame.Solid(10, 10, pixel.Gray(30))
	for y := 0; y < 2; y++ {
		for x := 0; x < 10; x++ {
			f.Set(x, y, pixel.Gray(240))
		}
	}
	m := Rect(10, 10, 0, 0, 10, 2)
	target, err := m.FrameTarget(f, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if target < 240.0/255 {
		t.Errorf("target %v dropped below protected ceiling", target)
	}
	// Without protection the same frame clips the bright band away.
	unprot := compensate.SceneTarget(histogram.FromFrame(f), 0.20)
	if unprot >= target {
		t.Errorf("unprotected target %v not below protected %v", unprot, target)
	}
}

func TestAnnotateCreditsProtectsText(t *testing.T) {
	credits := video.Credits(48, 36, 8, 24, 5)
	maskOf := func(i int) *Mask {
		m := NewMask(credits.W, credits.H)
		for y := 0; y < credits.H; y++ {
			for x := 0; x < credits.W; x++ {
				if credits.TextAt(i, x, y) {
					m.Set(x, y)
				}
			}
		}
		return m
	}
	cfg := scene.DefaultConfig(credits.Rate)

	protected, _, err := Annotate(credits, maskOf, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	unprotected, _, err := Annotate(credits, func(int) *Mask { return nil }, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	// At the 20% quality level the unprotected annotation clips the text
	// (text is ~10-20% of pixels over a uniform dark background — the
	// paper's reported failure); protection must keep every glyph pixel.
	qi := 4
	for i := 0; i < credits.TotalFrames(); i++ {
		f := credits.Frame(i)
		m := maskOf(i)
		pTarget := protected.TargetAt(i, qi)
		uTarget := unprotected.TargetAt(i, qi)
		pClip, err := ClippedInROI(m, f, pTarget)
		if err != nil {
			t.Fatal(err)
		}
		if pClip > 0 {
			t.Fatalf("frame %d: protected annotation clips %v of text", i, pClip)
		}
		uClip, err := ClippedInROI(m, f, uTarget)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && uClip == 0 {
			t.Error("unprotected annotation never clips text; scenario too easy")
		}
	}
}

func TestAnnotateNilMaskMatchesPlain(t *testing.T) {
	// With no masks the ROI annotator reduces to the strict per-frame
	// annotator semantics.
	clip := video.MustNew("plain", 24, 18, 8, 9, []video.SceneSpec{
		{Frames: 8, BaseLuma: 0.2, LumaSpread: 0.1, MaxLuma: 0.7, HighlightFrac: 0.01},
		{Frames: 8, BaseLuma: 0.4, LumaSpread: 0.1, MaxLuma: 0.95, HighlightFrac: 0.05},
	})
	src := clipSource{clip}
	cfg := scene.DefaultConfig(clip.FPS)
	track, _, err := Annotate(src, func(int) *Mask { return nil }, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if track.TotalFrames() != clip.TotalFrames() {
		t.Errorf("frames = %d", track.TotalFrames())
	}
	for _, r := range track.Records {
		for q := 1; q < len(r.Targets); q++ {
			if r.Targets[q] > r.Targets[q-1] {
				t.Fatalf("targets not monotone: %v", r.Targets)
			}
		}
	}
}

func TestAnnotateValidation(t *testing.T) {
	credits := video.Credits(8, 8, 8, 4, 1)
	if _, _, err := Annotate(credits, func(int) *Mask { return nil }, scene.Config{}, nil); err == nil {
		t.Error("bad config accepted")
	}
	wrong := func(int) *Mask { return NewMask(3, 3) }
	if _, _, err := Annotate(credits, wrong, scene.DefaultConfig(8), nil); err == nil {
		t.Error("mismatched mask accepted")
	}
}

// clipSource adapts video.Clip (mirror of core.ClipSource, kept local to
// avoid importing core in this test).
type clipSource struct{ c *video.Clip }

func (s clipSource) Size() (int, int)         { return s.c.W, s.c.H }
func (s clipSource) FPS() int                 { return s.c.FPS }
func (s clipSource) TotalFrames() int         { return s.c.TotalFrames() }
func (s clipSource) Frame(i int) *frame.Frame { return s.c.Frame(i) }

// Property: a protected target is never below the unprotected target.
func TestProtectionRaisesTargetProperty(t *testing.T) {
	f := func(vals [16]uint8, budgetRaw uint8, maskBits uint16) bool {
		fr := frame.New(4, 4)
		for i, v := range vals {
			fr.Pix[i] = pixel.Gray(v)
		}
		m := NewMask(4, 4)
		for i := 0; i < 16; i++ {
			if maskBits>>uint(i)&1 == 1 {
				m.Set(i%4, i/4)
			}
		}
		budget := float64(budgetRaw) / 255 * 0.2
		prot, err := m.FrameTarget(fr, budget)
		if err != nil {
			return false
		}
		unprot := compensate.SceneTarget(histogram.FromFrame(fr), budget)
		// Not strictly comparable (the budget re-normalises over fewer
		// pixels), but protection must cover the ROI ceiling.
		inside, _, _ := m.Split(fr)
		if inside.Total > 0 && prot < float64(inside.Max())/255-1e-9 {
			return false
		}
		_ = unprot
		return prot >= 0 && prot <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
