package camera

import (
	"math"
	"testing"
)

func calibrationTimes() []float64 {
	return []float64{0.25, 0.5, 1, 2, 4}
}

func TestCharacterizeRecoversMonotoneResponse(t *testing.T) {
	cam := Default()
	g, err := cam.Characterize(24, calibrationTimes(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// g must be monotone non-decreasing over the well-covered range.
	lo, hi := coveredRange(cam)
	prev := math.Inf(-1)
	for z := lo; z <= hi; z++ {
		if g[z] < prev-0.02 { // tolerate solver ripple below noise level
			t.Fatalf("recovered response not monotone at %d: %v < %v", z, g[z], prev)
		}
		if g[z] > prev {
			prev = g[z]
		}
	}
	// Anchor: g(128) ~ 0.
	if math.Abs(g[128]) > 0.01 {
		t.Errorf("anchor g(128) = %v, want ~0", g[128])
	}
}

func TestCharacterizeMatchesTrueResponse(t *testing.T) {
	cam := Default()
	g, err := cam.Characterize(24, calibrationTimes(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: output z corresponds to log exposure
	// ln(((z/255 - toe)/(1-toe))^(1/gamma)). Compare after removing the
	// anchor offset at z=128.
	truth := func(z int) float64 {
		e := (float64(z)/255 - cam.Toe) / (1 - cam.Toe)
		return math.Log(math.Pow(e, 1/cam.ResponseGamma))
	}
	offset := truth(128)
	lo, hi := coveredRange(cam)
	var errSum float64
	n := 0
	for z := lo; z <= hi; z++ {
		want := truth(z) - offset
		errSum += math.Abs(g[z] - want)
		n++
	}
	if mean := errSum / float64(n); mean > 0.15 {
		t.Errorf("mean |g - truth| = %v log units, want < 0.15", mean)
	}
}

// coveredRange returns the pixel-value range the calibration patches
// actually exercise (extremes are extrapolated by the smoothness prior and
// not held to accuracy bounds).
func coveredRange(cam *Camera) (lo, hi int) {
	min, max := 255, 0
	for p := 0; p < 24; p++ {
		radiance := 0.03 + 0.97*float64(p)/23
		for _, t := range calibrationTimes() {
			z := int(math.Round(cam.Response(radiance*t) * 255))
			if z < min {
				min = z
			}
			if z > max {
				max = z
			}
		}
	}
	return min + 3, max - 3
}

func TestRecoverResponseValidation(t *testing.T) {
	if _, err := RecoverResponse(nil, RecoverOptions{}); err == nil {
		t.Error("empty samples accepted")
	}
	one := []Sample{{Patch: 0, Value: 10, ExposureTime: 1}}
	if _, err := RecoverResponse(one, RecoverOptions{}); err == nil {
		t.Error("single sample accepted")
	}
	bad := []Sample{
		{Patch: 0, Value: 10, ExposureTime: 1},
		{Patch: 1, Value: 20, ExposureTime: 0},
		{Patch: 0, Value: 30, ExposureTime: 2},
		{Patch: 1, Value: 40, ExposureTime: 2},
	}
	if _, err := RecoverResponse(bad, RecoverOptions{}); err == nil {
		t.Error("zero exposure accepted")
	}
	neg := []Sample{
		{Patch: -1, Value: 10, ExposureTime: 1},
		{Patch: 1, Value: 20, ExposureTime: 1},
		{Patch: 0, Value: 30, ExposureTime: 2},
		{Patch: 1, Value: 40, ExposureTime: 2},
	}
	if _, err := RecoverResponse(neg, RecoverOptions{}); err == nil {
		t.Error("negative patch accepted")
	}
}

func TestCharacterizeValidation(t *testing.T) {
	cam := Default()
	if _, err := cam.Characterize(1, calibrationTimes(), RecoverOptions{}); err == nil {
		t.Error("single patch accepted")
	}
	if _, err := cam.Characterize(10, []float64{1}, RecoverOptions{}); err == nil {
		t.Error("single exposure accepted")
	}
}

func TestRecoverDifferentCameras(t *testing.T) {
	// Two cameras with different gammas must recover visibly different
	// curves (slope in log-exposure space differs by the gamma ratio).
	steep := Default()
	steep.ResponseGamma = 0.35
	shallow := Default()
	shallow.ResponseGamma = 0.65
	gs, err := steep.Characterize(24, calibrationTimes(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gh, err := shallow.Characterize(24, calibrationTimes(), RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare recovered log-exposure span over a mid range.
	spanS := gs[200] - gs[60]
	spanH := gh[200] - gh[60]
	if spanS <= spanH {
		t.Errorf("steeper camera recovered smaller span: %v vs %v", spanS, spanH)
	}
}
