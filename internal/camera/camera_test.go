package camera

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/pixel"
)

func TestResponseMonotone(t *testing.T) {
	c := Default()
	prev := -1.0
	for i := 0; i <= 1000; i++ {
		r := c.Response(float64(i) / 1000)
		if r < prev {
			t.Fatalf("response not monotone at %d", i)
		}
		prev = r
	}
}

func TestResponseNonlinear(t *testing.T) {
	c := Default()
	mid := c.Response(0.5)
	if math.Abs(mid-0.5) < 0.1 {
		t.Errorf("midpoint response %v too close to linear; camera must be nonlinear", mid)
	}
}

func TestResponseSaturates(t *testing.T) {
	c := Default()
	if got := c.Response(2.0); math.Abs(got-1) > 1e-9 {
		t.Errorf("Response(2) = %v, want 1 (saturated)", got)
	}
	if got := c.Response(-0.5); got != c.Toe {
		t.Errorf("Response(-0.5) = %v, want toe %v", got, c.Toe)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	c := Default()
	dev := display.IPAQ5555()
	f := frame.Solid(8, 8, pixel.Gray(120))
	a := c.Snapshot(dev, f, 200)
	b := c.Snapshot(dev, f, 200)
	if !a.Equal(b) {
		t.Error("snapshots with same seed differ")
	}
}

func TestSnapshotBrightnessTracksBacklight(t *testing.T) {
	c := Default()
	c.NoiseSigma = 0 // isolate the optical path
	dev := display.IPAQ5555()
	f := frame.Solid(8, 8, pixel.Gray(180))
	bright := c.Snapshot(dev, f, display.MaxLevel).AvgLuma()
	dim := c.Snapshot(dev, f, 80).AvgLuma()
	if dim >= bright {
		t.Errorf("dim snapshot (%v) not darker than bright (%v)", dim, bright)
	}
}

func TestSnapshotSeesReflectiveFloor(t *testing.T) {
	// Even at backlight 0 a transflective panel shows something — the
	// property a pure simulation misses and the camera captures.
	c := Default()
	c.NoiseSigma = 0
	dev := display.IPAQ5555()
	f := frame.Solid(8, 8, pixel.Gray(255))
	dark := c.Snapshot(dev, f, 0).AvgLuma()
	if dark <= c.Toe*255 {
		t.Errorf("snapshot at backlight 0 = %v, expected reflective floor to show", dark)
	}
}

func TestCompareIdenticalSetup(t *testing.T) {
	// Same frame, full backlight on both sides: snapshots should agree
	// closely (only sensor noise differs via seed reuse -> identical).
	c := Default()
	dev := display.IPAQ5555()
	f := frame.Solid(16, 16, pixel.Gray(100))
	cmp := c.Compare(dev, f, f, display.MaxLevel)
	if cmp.MeanShift != 0 {
		t.Errorf("identical compare MeanShift = %v, want 0", cmp.MeanShift)
	}
	if cmp.Intersection < 0.999 {
		t.Errorf("identical compare Intersection = %v, want ~1", cmp.Intersection)
	}
}

func TestCompareDetectsCompensationQuality(t *testing.T) {
	// A correctly compensated dark frame at ~60% backlight should look
	// close to the original at full backlight; an uncompensated one
	// should not. This is the paper's Figure 4 experiment.
	c := Default()
	c.NoiseSigma = 0
	dev := display.IPAQ5555()

	orig := frame.New(16, 16)
	for i := range orig.Pix {
		orig.Pix[i] = pixel.Gray(uint8(20 + (i*97)%120)) // dark content, max ~139
	}
	dimLevel := dev.LevelFor(0.62)
	k := 1.0 / dev.Luminance(dimLevel)
	comp := orig.Map(func(p pixel.RGB) pixel.RGB { return p.Scale(k) })

	good := c.Compare(dev, orig, comp, dimLevel)
	bad := c.Compare(dev, orig, orig, dimLevel)

	if math.Abs(good.MeanShift) >= math.Abs(bad.MeanShift) {
		t.Errorf("compensated shift %v not smaller than uncompensated %v",
			good.MeanShift, bad.MeanShift)
	}
	if good.EMD >= bad.EMD {
		t.Errorf("compensated EMD %v not smaller than uncompensated %v", good.EMD, bad.EMD)
	}
	if math.Abs(good.MeanShift) > 12 {
		t.Errorf("compensated mean shift %v too large; compensation should roughly preserve appearance", good.MeanShift)
	}
}

func TestCompareFillsHistogramFields(t *testing.T) {
	c := Default()
	dev := display.Zaurus5600()
	f := frame.Solid(4, 4, pixel.Gray(90))
	cmp := c.Compare(dev, f, f, 128)
	if cmp.RefHist == nil || cmp.CompHist == nil || cmp.RefSnapshot == nil || cmp.CompSnapshot == nil {
		t.Fatal("Compare left nil artifacts")
	}
	if cmp.RefHist.Total != 16 || cmp.CompHist.Total != 16 {
		t.Errorf("histogram totals = %d/%d, want 16", cmp.RefHist.Total, cmp.CompHist.Total)
	}
	if cmp.RefAvg != cmp.RefHist.Average() {
		t.Error("RefAvg inconsistent with RefHist")
	}
}

// Property: the response stays within [toe, 1] for any radiance.
func TestResponseRangeProperty(t *testing.T) {
	c := Default()
	f := func(raw int16) bool {
		r := c.Response(float64(raw) / 1000)
		return r >= c.Toe-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: snapshots preserve frame dimensions.
func TestSnapshotShapeProperty(t *testing.T) {
	c := Default()
	c.NoiseSigma = 0
	dev := display.IPAQ3650()
	f := func(w, h uint8, level uint8) bool {
		fr := frame.New(int(w%16)+1, int(h%16)+1)
		s := c.Snapshot(dev, fr, int(level))
		return s.W == fr.W && s.H == fr.H
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
