// Package camera simulates the digital camera the paper introduces as an
// objective quality-validation instrument (§4.2, Figure 2): the PDA screen
// is photographed once displaying the original frame at full backlight
// (reference snapshot) and once displaying the compensated frame at the
// reduced backlight (compensated snapshot); the two snapshots' luminance
// histograms are then compared.
//
// A digital camera "has a monotonic nonlinear transfer function" (Debevec &
// Malik, SIGGRAPH 1997); the simulated response here is a smooth monotone
// s-curve with adjustable exposure plus deterministic sensor noise, so the
// snapshot captures the actual display characteristics (transfer curve,
// reflective floor, minimum drive) that a pure pixel-level simulation would
// miss — exactly the argument the paper makes for using a camera.
package camera

import (
	"math"
	"math/rand"

	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
)

// Camera models a digital still camera pointed at a PDA screen.
type Camera struct {
	// Exposure scales scene radiance before the response curve; 1.0
	// frames a full-white full-backlight screen at the top of the range.
	Exposure float64
	// ResponseGamma (<1) bends the monotone response; consumer cameras
	// compress highlights.
	ResponseGamma float64
	// Toe lifts the response near black (sensor pedestal/flare).
	Toe float64
	// NoiseSigma is the standard deviation of additive sensor noise in
	// 0..255 output units.
	NoiseSigma float64
	// Seed makes the sensor noise deterministic per camera instance.
	Seed int64
}

// Default returns a camera with a typical consumer response, matched to a
// full-backlight white screen.
func Default() *Camera {
	return &Camera{
		Exposure:      1.0,
		ResponseGamma: 0.45,
		Toe:           0.02,
		NoiseSigma:    0.8,
		Seed:          1,
	}
}

// Response maps normalised scene radiance (0..1-ish; values above 1 are
// saturated) to a normalised sensor output in 0..1. It is strictly
// monotone on [0,1], which is the only property the histogram comparison
// requires of a real camera.
func (c *Camera) Response(radiance float64) float64 {
	e := radiance * c.Exposure
	if e <= 0 {
		return c.Toe
	}
	if e >= 1 {
		e = 1
	}
	return c.Toe + (1-c.Toe)*math.Pow(e, c.ResponseGamma)
}

// Snapshot photographs the given frame as displayed on dev at the given
// backlight level, returning the captured gray image as a frame. The
// optical path is: pixel luminance → panel white response at the backlight
// level (including reflective floor) → camera response → quantisation,
// with sensor noise added per pixel.
func (c *Camera) Snapshot(dev *display.Profile, f *frame.Frame, level int) *frame.Frame {
	rng := rand.New(rand.NewSource(c.Seed))
	// Normalise so a white screen at full backlight maps to 1.0 radiance.
	fullWhite := dev.WhiteResponse(255, display.MaxLevel)
	shot := frame.New(f.W, f.H)
	for i, p := range f.Pix {
		y := p.Luma() // 0..255
		radiance := dev.WhiteResponse(int(y+0.5), level) / fullWhite
		out := c.Response(radiance)*255 + rng.NormFloat64()*c.NoiseSigma
		shot.Pix[i] = pixel.Gray(pixel.ClampU8(out))
	}
	return shot
}

// Comparison is the outcome of validating a compensated frame against its
// reference via two snapshots (Figure 2's flow, reported as in Figure 4).
type Comparison struct {
	RefAvg, CompAvg           float64 // snapshot average brightness
	RefRange, CompRange       int     // snapshot dynamic range
	MeanShift                 float64 // CompAvg - RefAvg
	Intersection              float64 // histogram intersection similarity
	EMD                       float64 // earth mover's distance, luma levels
	RefHist, CompHist         *histogram.H
	RefSnapshot, CompSnapshot *frame.Frame
}

// Compare photographs the original frame at full backlight and the
// compensated frame at the dimmed level, then compares the snapshot
// histograms. A small |MeanShift| and high Intersection mean the
// compensation preserved the displayed appearance.
func (c *Camera) Compare(dev *display.Profile, original, compensated *frame.Frame, dimLevel int) Comparison {
	ref := c.Snapshot(dev, original, display.MaxLevel)
	comp := c.Snapshot(dev, compensated, dimLevel)
	hr := histogram.FromFrame(ref)
	hc := histogram.FromFrame(comp)
	return Comparison{
		RefAvg:       hr.Average(),
		CompAvg:      hc.Average(),
		RefRange:     hr.DynamicRange(),
		CompRange:    hc.DynamicRange(),
		MeanShift:    histogram.MeanShift(hr, hc),
		Intersection: histogram.Intersection(hr, hc),
		EMD:          histogram.EMD(hr, hc),
		RefHist:      hr,
		CompHist:     hc,
		RefSnapshot:  ref,
		CompSnapshot: comp,
	}
}
