package camera

import (
	"fmt"
	"math"
)

// Response-curve recovery after Debevec & Malik (SIGGRAPH 1997), the work
// the paper cites for the camera's "monotonic nonlinear transfer function"
// (§4.2). The camera photographs a set of patches at several known
// exposure times; from the observed pixel values the log inverse response
// g — with g(Z) = ln E + ln t for a pixel of irradiance E captured at
// exposure t — is recovered by regularised least squares. Characterising
// the camera this way is what justifies comparing snapshot histograms
// across backlight levels: the camera is a monotone (if nonlinear) meter.

// Sample is one observation: the pixel value a patch produced at a known
// exposure time.
type Sample struct {
	// Patch identifies the (unknown-irradiance) scene patch, 0-based.
	Patch int
	// Value is the 8-bit camera output.
	Value uint8
	// ExposureTime is the relative shutter time.
	ExposureTime float64
}

// RecoverOptions tunes the solver.
type RecoverOptions struct {
	// Smoothness is the curvature penalty λ (default 64).
	Smoothness float64
}

// RecoverResponse solves for the log inverse response g[0..255]. The
// returned curve is anchored with g[128] = 0, following the original
// formulation. At least two patches and two exposures are required, and
// every value bin used must be covered by an observation.
func RecoverResponse(samples []Sample, opt RecoverOptions) ([256]float64, error) {
	var g [256]float64
	if opt.Smoothness <= 0 {
		opt.Smoothness = 64
	}
	patches := 0
	for _, s := range samples {
		if s.Patch < 0 {
			return g, fmt.Errorf("camera: negative patch index")
		}
		if s.ExposureTime <= 0 {
			return g, fmt.Errorf("camera: non-positive exposure time")
		}
		if s.Patch+1 > patches {
			patches = s.Patch + 1
		}
	}
	if patches < 2 || len(samples) < 4 {
		return g, fmt.Errorf("camera: need at least 2 patches and 4 samples, got %d/%d",
			patches, len(samples))
	}

	// Unknowns: g[0..255] then lnE[0..patches-1].
	n := 256 + patches
	// Normal equations accumulated directly: M x = v with
	// M = sum w^2 a a^T over equation rows a.
	M := make([][]float64, n)
	for i := range M {
		M[i] = make([]float64, n)
	}
	v := make([]float64, n)

	addRow := func(idx []int, coef []float64, rhs, w float64) {
		for i, ii := range idx {
			for j, jj := range idx {
				M[ii][jj] += w * w * coef[i] * coef[j]
			}
			v[ii] += w * w * coef[i] * rhs
		}
	}

	// Data term: g(Z) - lnE_p = ln t, hat-weighted so extremes count less.
	for _, s := range samples {
		w := hatWeight(s.Value)
		if w <= 0 {
			w = 0.5 // keep extreme samples weakly informative
		}
		addRow([]int{int(s.Value), 256 + s.Patch}, []float64{1, -1}, math.Log(s.ExposureTime), w)
	}
	// Smoothness term: g(z-1) - 2 g(z) + g(z+1) = 0.
	for z := 1; z < 255; z++ {
		w := math.Sqrt(opt.Smoothness) * hatWeight(uint8(z))
		addRow([]int{z - 1, z, z + 1}, []float64{1, -2, 1}, 0, w)
	}
	// Anchor: g(128) = 0.
	addRow([]int{128}, []float64{1}, 0, 1000)

	x, err := solve(M, v)
	if err != nil {
		return g, err
	}
	copy(g[:], x[:256])
	return g, nil
}

// hatWeight is Debevec–Malik's tent weighting over the value range.
func hatWeight(z uint8) float64 {
	if z <= 127 {
		return float64(z) / 127
	}
	return float64(255-z) / 128
}

// solve performs Gaussian elimination with partial pivoting on M x = v.
func solve(M [][]float64, v []float64) ([]float64, error) {
	n := len(M)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[best][col]) {
				best = r
			}
		}
		if math.Abs(M[best][col]) < 1e-12 {
			return nil, fmt.Errorf("camera: response system singular at %d (insufficient coverage)", col)
		}
		M[col], M[best] = M[best], M[col]
		v[col], v[best] = v[best], v[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := M[r][col] / M[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			v[r] -= f * v[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := v[r]
		for c := r + 1; c < n; c++ {
			s -= M[r][c] * x[c]
		}
		x[r] = s / M[r][r]
	}
	return x, nil
}

// Characterize runs the full calibration flow against this camera:
// photograph `patches` gray patches of spread radiances at the given
// exposure times and recover the response from the observations. Sensor
// noise is ignored for calibration (long-exposure averaging).
func (c *Camera) Characterize(patches int, times []float64, opt RecoverOptions) ([256]float64, error) {
	if patches < 2 || len(times) < 2 {
		var g [256]float64
		return g, fmt.Errorf("camera: need >=2 patches and >=2 exposure times")
	}
	var samples []Sample
	for p := 0; p < patches; p++ {
		radiance := 0.03 + 0.97*float64(p)/float64(patches-1)
		for _, t := range times {
			out := c.Response(radiance * t)
			samples = append(samples, Sample{
				Patch:        p,
				Value:        uint8(math.Min(255, math.Max(0, math.Round(out*255)))),
				ExposureTime: t,
			})
		}
	}
	return RecoverResponse(samples, opt)
}
