package camera_test

import (
	"fmt"

	"repro/internal/camera"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
)

// The paper's validation flow (Figure 2): photograph the original frame
// at full backlight and the compensated frame at the dimmed level, then
// compare the snapshot histograms.
func ExampleCamera_Compare() {
	cam := camera.Default()
	cam.NoiseSigma = 0
	dev := display.IPAQ5555()

	f := frame.New(16, 16)
	for i := range f.Pix {
		f.Pix[i] = pixel.Gray(uint8(20 + (i*5)%100)) // dark content
	}
	target := compensate.SceneTarget(histogram.FromFrame(f), 0.05)
	level := dev.LevelFor(target)
	comp := core.CompensateFrame(f, target, compensate.ContrastEnhancement)

	good := cam.Compare(dev, f, comp, level)
	bad := cam.Compare(dev, f, f, level)
	fmt.Printf("compensated shift:   %+.1f levels\n", good.MeanShift)
	fmt.Printf("uncompensated shift: %+.1f levels\n", bad.MeanShift)
	fmt.Printf("backlight power saved: %.0f%%\n", dev.SavingsAtLevel(level)*100)
	// Output:
	// compensated shift:   +1.9 levels
	// uncompensated shift: -40.9 levels
	// backlight power saved: 65%
}
