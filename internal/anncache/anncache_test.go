package anncache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func key(i int) Key { return Key{Kind: "track", Digest: fmt.Sprintf("d%d", i), Quality: -1} }

func put(t *testing.T, c *Cache, k Key, val any, cost int64) {
	t.Helper()
	if _, err := c.GetOrCompute(k, func() (any, int64, error) { return val, cost, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(30)
	for i := 0; i < 3; i++ {
		put(t, c, key(i), i, 10)
	}
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d, want 3/30", c.Len(), c.Bytes())
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	v, err := c.GetOrCompute(key(0), func() (any, int64, error) {
		t.Fatal("hit must not recompute")
		return nil, 0, nil
	})
	if err != nil || v.(int) != 0 {
		t.Fatalf("hit returned (%v, %v)", v, err)
	}
	put(t, c, key(3), 3, 10)
	if c.Len() != 3 {
		t.Fatalf("Len=%d after eviction, want 3", c.Len())
	}
	if _, ok := c.Peek(key(1)); ok {
		t.Fatal("key 1 should have been evicted as LRU")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Peek(key(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestOversizedEntryStays(t *testing.T) {
	c := New(10)
	put(t, c, key(0), 0, 100) // bigger than the whole budget
	if c.Len() != 1 {
		t.Fatalf("oversized newest entry must stay resident, Len=%d", c.Len())
	}
	put(t, c, key(1), 1, 5)
	if _, ok := c.Peek(key(0)); ok {
		t.Fatal("oversized entry should be first out once something newer lands")
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(key(0), func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation must not be cached")
	}
	put(t, c, key(0), 7, 1)
	if v, _ := c.Peek(key(0)); v.(int) != 7 {
		t.Fatal("retry after failure should cache normally")
	}
}

func TestSingleFlightDedup(t *testing.T) {
	c := New(0)
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute(key(0), func() (any, int64, error) {
				computes.Add(1)
				<-gate
				return "artifact", 1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

func TestDoAlwaysComputesAndKeepsStaleOnFailure(t *testing.T) {
	c := New(0)
	k := Key{Kind: "clip", Digest: "night", Quality: -1}
	var computes int
	fresh := func() (any, int64, error) { computes++; return computes, 1, nil }
	if v, _ := c.Do(k, fresh); v.(int) != 1 {
		t.Fatal("first Do should compute")
	}
	if v, _ := c.Do(k, fresh); v.(int) != 2 {
		t.Fatal("second Do must recompute even though the entry is cached")
	}
	// A failed revalidation surfaces the error but keeps the stale entry.
	if _, err := c.Do(k, func() (any, int64, error) { return nil, 0, errors.New("upstream down") }); err == nil {
		t.Fatal("Do must propagate compute errors")
	}
	if v, ok := c.Peek(k); !ok || v.(int) != 2 {
		t.Fatalf("stale entry lost: (%v, %v)", v, ok)
	}
}

func TestSetCapacityEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 5; i++ {
		put(t, c, key(i), i, 10)
	}
	c.SetCapacity(20)
	if c.Len() != 2 || c.Bytes() != 20 {
		t.Fatalf("Len=%d Bytes=%d after shrink, want 2/20", c.Len(), c.Bytes())
	}
}

func TestMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := New(25)
	c.SetObserver(r, obs.L("role", "server"))
	put(t, c, key(0), 0, 10) // miss
	put(t, c, key(0), 0, 10) // hit
	put(t, c, key(1), 1, 10) // miss
	put(t, c, key(2), 2, 10) // miss, evicts key 0
	role := obs.L("role", "server")
	kind := obs.L("kind", "track")
	if got := r.Counter("anncache_misses_total", "", kind, role).Value(); got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := r.Counter("anncache_hits_total", "", kind, role).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := r.Counter("anncache_evictions_total", "", kind, role).Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := r.Gauge("anncache_entries", "", role).Value(); got != 2 {
		t.Errorf("entries gauge = %v, want 2", got)
	}
	if got := r.Gauge("anncache_bytes", "", role).Value(); got != 20 {
		t.Errorf("bytes gauge = %v, want 20", got)
	}
}

// TestSingleFlightErrorPropagation pins the failure contract of the
// single-flight path: every waiter that joined a failing computation
// receives the error, the flight is removed, and a later lookup for the
// same key computes afresh — the key is not poisoned.
func TestSingleFlightErrorPropagation(t *testing.T) {
	c := New(0)
	boom := errors.New("pipeline exploded")
	started := make(chan struct{})
	gate := make(chan struct{})
	var computes atomic.Int64

	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(key(0), func() (any, int64, error) {
			computes.Add(1)
			close(started)
			<-gate
			return nil, 0, boom
		})
		leaderErr <- err
	}()
	<-started

	r := obs.NewRegistry()
	c.SetObserver(r)
	const waiters = 6
	errs := make(chan error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetOrCompute(key(0), func() (any, int64, error) {
				computes.Add(1)
				return "unexpected", 1, nil
			})
			errs <- err
		}()
	}
	// Wait until every waiter has actually joined the in-flight
	// computation, then fail it.
	joined := r.Counter("anncache_singleflight_waits_total", "", obs.L("kind", "track"))
	for joined.Value() < waiters {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader err = %v, want %v", err, boom)
	}
	close(errs)
	n := 0
	for err := range errs {
		n++
		if !errors.Is(err, boom) {
			t.Fatalf("waiter err = %v, want %v (every waiter must see the failure)", err, boom)
		}
	}
	if n != waiters {
		t.Fatalf("collected %d waiter errors, want %d", n, waiters)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (waiters must join, not race)", got)
	}
	// The failed flight must be gone and the key must retry cleanly.
	v, err := c.GetOrCompute(key(0), func() (any, int64, error) { return "fresh", 1, nil })
	if err != nil || v != "fresh" {
		t.Fatalf("retry after failure = (%v, %v), want fresh value", v, err)
	}
	if v, ok := c.Peek(key(0)); !ok || v != "fresh" {
		t.Fatalf("retried value not cached: (%v, %v)", v, ok)
	}
}

// TestSingleFlightPanicUnblocksWaiters: a panicking compute must not
// leave waiters blocked or the key wedged — waiters get an error, the
// panic propagates on the computing goroutine, and the next lookup
// computes afresh.
func TestSingleFlightPanicUnblocksWaiters(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Do(key(0), func() (any, int64, error) {
			close(started)
			panic("compute blew up")
		})
	}()
	<-started

	// Waiters joining before or after the panic must both unblock.
	_, err := c.GetOrCompute(key(0), func() (any, int64, error) { return "later", 1, nil })
	if err != nil && !errors.Is(err, ErrComputePanicked) {
		t.Fatalf("waiter err = %v, want nil or ErrComputePanicked", err)
	}
	if r := <-panicked; r == nil {
		t.Fatal("panic was swallowed; it must propagate on the computing goroutine")
	}
	// The key is not poisoned.
	v, err := c.GetOrCompute(key(0), func() (any, int64, error) { return "fresh", 1, nil })
	if err != nil || (v != "fresh" && v != "later") {
		t.Fatalf("lookup after panic = (%v, %v), want a computed value", v, err)
	}
}
