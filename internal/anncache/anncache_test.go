package anncache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func key(i int) Key { return Key{Kind: "track", Digest: fmt.Sprintf("d%d", i), Quality: -1} }

func put(t *testing.T, c *Cache, k Key, val any, cost int64) {
	t.Helper()
	if _, err := c.GetOrCompute(k, func() (any, int64, error) { return val, cost, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(30)
	for i := 0; i < 3; i++ {
		put(t, c, key(i), i, 10)
	}
	if c.Len() != 3 || c.Bytes() != 30 {
		t.Fatalf("Len=%d Bytes=%d, want 3/30", c.Len(), c.Bytes())
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	v, err := c.GetOrCompute(key(0), func() (any, int64, error) {
		t.Fatal("hit must not recompute")
		return nil, 0, nil
	})
	if err != nil || v.(int) != 0 {
		t.Fatalf("hit returned (%v, %v)", v, err)
	}
	put(t, c, key(3), 3, 10)
	if c.Len() != 3 {
		t.Fatalf("Len=%d after eviction, want 3", c.Len())
	}
	if _, ok := c.Peek(key(1)); ok {
		t.Fatal("key 1 should have been evicted as LRU")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Peek(key(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestOversizedEntryStays(t *testing.T) {
	c := New(10)
	put(t, c, key(0), 0, 100) // bigger than the whole budget
	if c.Len() != 1 {
		t.Fatalf("oversized newest entry must stay resident, Len=%d", c.Len())
	}
	put(t, c, key(1), 1, 5)
	if _, ok := c.Peek(key(0)); ok {
		t.Fatal("oversized entry should be first out once something newer lands")
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(key(0), func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation must not be cached")
	}
	put(t, c, key(0), 7, 1)
	if v, _ := c.Peek(key(0)); v.(int) != 7 {
		t.Fatal("retry after failure should cache normally")
	}
}

func TestSingleFlightDedup(t *testing.T) {
	c := New(0)
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.GetOrCompute(key(0), func() (any, int64, error) {
				computes.Add(1)
				<-gate
				return "artifact", 1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "artifact" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

func TestDoAlwaysComputesAndKeepsStaleOnFailure(t *testing.T) {
	c := New(0)
	k := Key{Kind: "clip", Digest: "night", Quality: -1}
	var computes int
	fresh := func() (any, int64, error) { computes++; return computes, 1, nil }
	if v, _ := c.Do(k, fresh); v.(int) != 1 {
		t.Fatal("first Do should compute")
	}
	if v, _ := c.Do(k, fresh); v.(int) != 2 {
		t.Fatal("second Do must recompute even though the entry is cached")
	}
	// A failed revalidation surfaces the error but keeps the stale entry.
	if _, err := c.Do(k, func() (any, int64, error) { return nil, 0, errors.New("upstream down") }); err == nil {
		t.Fatal("Do must propagate compute errors")
	}
	if v, ok := c.Peek(k); !ok || v.(int) != 2 {
		t.Fatalf("stale entry lost: (%v, %v)", v, ok)
	}
}

func TestSetCapacityEvicts(t *testing.T) {
	c := New(0)
	for i := 0; i < 5; i++ {
		put(t, c, key(i), i, 10)
	}
	c.SetCapacity(20)
	if c.Len() != 2 || c.Bytes() != 20 {
		t.Fatalf("Len=%d Bytes=%d after shrink, want 2/20", c.Len(), c.Bytes())
	}
}

func TestMetrics(t *testing.T) {
	r := obs.NewRegistry()
	c := New(25)
	c.SetObserver(r, obs.L("role", "server"))
	put(t, c, key(0), 0, 10) // miss
	put(t, c, key(0), 0, 10) // hit
	put(t, c, key(1), 1, 10) // miss
	put(t, c, key(2), 2, 10) // miss, evicts key 0
	role := obs.L("role", "server")
	kind := obs.L("kind", "track")
	if got := r.Counter("anncache_misses_total", "", kind, role).Value(); got != 3 {
		t.Errorf("misses = %d, want 3", got)
	}
	if got := r.Counter("anncache_hits_total", "", kind, role).Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := r.Counter("anncache_evictions_total", "", kind, role).Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := r.Gauge("anncache_entries", "", role).Value(); got != 2 {
		t.Errorf("entries gauge = %v, want 2", got)
	}
	if got := r.Gauge("anncache_bytes", "", role).Value(); got != 20 {
		t.Errorf("bytes gauge = %v, want 20", got)
	}
}
