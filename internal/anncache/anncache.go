// Package anncache caches the artifacts the offline annotation pipeline
// produces — encoded annotation tracks, compensated quality variants,
// device-level side chunks, fetched clips — so the server and proxy
// compute each one once and reuse it across clients.
//
// The cache is a byte-budgeted LRU keyed by (artifact kind, content
// digest, quality index, device profile), with single-flight dedup:
// concurrent requests for the same missing key block on one computation
// instead of racing N copies of the pipeline. That is the scaling story
// of the paper's §3 — annotation work happens once "at the server or a
// proxy" and is amortised over every handheld that streams the clip.
package anncache

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrComputePanicked is what single-flight waiters receive when the
// computing goroutine panicked; the panic itself propagates on the
// computing goroutine.
var ErrComputePanicked = errors.New("anncache: compute panicked")

// Key identifies one cached artifact.
type Key struct {
	// Kind names the artifact class: "track", "variant", "levels",
	// "clip", ... Metrics are partitioned by it.
	Kind string
	// Digest fingerprints the source content (core.SourceDigest), or is
	// the clip name for artifacts keyed by identity rather than content.
	Digest string
	// Quality is the quality-level index, or -1 when not applicable.
	Quality int
	// Device is the display-profile name, or "" when device independent.
	Device string
}

type entry struct {
	key  Key
	val  any
	cost int64
}

type flight struct {
	done chan struct{}
	val  any
	cost int64
	err  error
}

// Cache is a byte-budgeted LRU with single-flight computation.
// The zero value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int64 // <= 0 means unlimited
	used     int64
	ll       *list.List // front = most recent; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*flight

	reg       *obs.Registry
	regLabels []obs.Label
}

// New returns a cache bounded to capacityBytes of artifact cost
// (capacityBytes <= 0 means unlimited).
func New(capacityBytes int64) *Cache {
	return &Cache{
		capacity: capacityBytes,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
	}
}

// SetCapacity adjusts the byte budget and evicts down to it.
func (c *Cache) SetCapacity(capacityBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacityBytes
	c.evictLocked()
}

// SetObserver publishes the cache's hit/miss/eviction counters and
// occupancy gauges on r, with the given labels on every metric (e.g.
// role=server vs role=proxy). Pass nil to detach.
func (c *Cache) SetObserver(r *obs.Registry, labels ...obs.Label) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = r
	c.regLabels = labels
}

// count and gauges require c.mu held (they read reg/regLabels); the
// registry has its own lock and never calls back into the cache.
func (c *Cache) count(name, help, kind string) {
	if c.reg == nil {
		return
	}
	labels := append([]obs.Label{obs.L("kind", kind)}, c.regLabels...)
	c.reg.Counter(name, help, labels...).Inc()
}

func (c *Cache) gauges() {
	if c.reg == nil {
		return
	}
	c.reg.Gauge("anncache_entries", "Artifacts resident in the annotation cache.", c.regLabels...).
		Set(float64(c.ll.Len()))
	c.reg.Gauge("anncache_bytes", "Bytes of artifact cost resident in the annotation cache.", c.regLabels...).
		Set(float64(c.used))
}

// GetOrCompute returns the cached value for key, computing it at most
// once across concurrent callers. compute returns the value, its cost in
// bytes, and an error; errors are returned to every waiter and nothing
// is cached.
func (c *Cache) GetOrCompute(key Key, compute func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.count("anncache_hits_total", "Annotation-cache lookups served from cache.", key.Kind)
		c.mu.Unlock()
		return el.Value.(*entry).val, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.count("anncache_singleflight_waits_total",
			"Annotation-cache lookups that joined an in-flight computation.", key.Kind)
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	c.count("anncache_misses_total", "Annotation-cache lookups that had to compute.", key.Kind)
	return c.compute(key, compute, false)
}

// Do always runs compute (joining an in-flight one), refreshing the
// cached value on success. Unlike GetOrCompute it never serves the entry
// without computing — callers that must revalidate an origin on every
// request use Do, then fall back to Peek for stale data when the origin
// is unreachable. A failed Do leaves any previously cached value intact.
func (c *Cache) Do(key Key, compute func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if fl, ok := c.inflight[key]; ok {
		c.count("anncache_singleflight_waits_total",
			"Annotation-cache lookups that joined an in-flight computation.", key.Kind)
		c.mu.Unlock()
		<-fl.done
		return fl.val, fl.err
	}
	return c.compute(key, compute, true)
}

// compute runs fn for key with c.mu held on entry; it releases the lock
// around fn and re-acquires it to publish the result. If fn panics the
// flight is settled with an error and removed before the panic
// propagates, so waiters unblock (seeing the error) and the key is not
// poisoned — a later call computes afresh.
func (c *Cache) compute(key Key, fn func() (any, int64, error), refresh bool) (any, error) {
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	settled := false
	defer func() {
		if settled {
			return
		}
		// fn panicked: unblock waiters with an error, leave the cache
		// untouched, and let the panic keep unwinding.
		fl.err = ErrComputePanicked
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.cost, fl.err = fn()
	settled = true

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.putLocked(key, fl.val, fl.cost, refresh)
	}
	c.gauges()
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}

// Peek returns the cached value without recency promotion, metric bumps
// or single-flight interaction — the stale-fallback read path.
func (c *Cache) Peek(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*entry).val, true
	}
	return nil, false
}

func (c *Cache) putLocked(key Key, val any, cost int64, refresh bool) {
	if cost < 0 {
		cost = 0
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		if !refresh {
			c.ll.MoveToFront(el)
			return
		}
		c.used += cost - e.cost
		e.val, e.cost = val, cost
		c.ll.MoveToFront(el)
		c.evictLocked()
		return
	}
	el := c.ll.PushFront(&entry{key: key, val: val, cost: cost})
	c.entries[key] = el
	c.used += cost
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until the budget holds.
// The newest entry always stays so an artifact larger than the whole
// budget is still served (it just monopolises the cache).
func (c *Cache) evictLocked() {
	if c.capacity <= 0 {
		return
	}
	for c.used > c.capacity && c.ll.Len() > 1 {
		el := c.ll.Back()
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.entries, e.key)
		c.used -= e.cost
		c.count("anncache_evictions_total", "Annotation-cache entries evicted to stay in budget.", e.key.Kind)
	}
}

// Len returns the number of resident artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the resident artifact cost in bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
