// Package core ties the substrates into the paper's contribution: the
// annotation-driven backlight scaling pipeline.
//
// Offline (server/proxy side):
//
//	source frames → luminance statistics → scene detection → annotation
//	track (per-scene targets at each quality level)
//
// Online (client side, simulated):
//
//	annotated stream → per-scene backlight level via the device's inverse
//	transfer LUT → compensated frames displayed at the dimmed backlight →
//	power trace → analytic (Figure 9) and DAQ-measured (Figure 10) savings
//
// The compensation applied to the stream is device independent (the server
// offers the same quality variants to every client; §4.3): frames are
// scaled by k = 1/target so the scene's post-clipping ceiling reaches full
// scale, and each device dims to the backlight level that restores the
// original perceived intensity through its own transfer function.
package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/scene"
	"repro/internal/video"
)

// Source abstracts a decodable video source (a synthetic clip, a decoded
// container stream, ...).
type Source interface {
	// Size returns the frame dimensions.
	Size() (w, h int)
	// FPS returns the playback rate.
	FPS() int
	// TotalFrames returns the stream length.
	TotalFrames() int
	// Frame renders/decodes frame i.
	Frame(i int) *frame.Frame
}

// ClipSource adapts a synthetic video.Clip to the Source interface.
type ClipSource struct{ Clip *video.Clip }

// Size implements Source.
func (s ClipSource) Size() (int, int) { return s.Clip.W, s.Clip.H }

// FPS implements Source.
func (s ClipSource) FPS() int { return s.Clip.FPS }

// TotalFrames implements Source.
func (s ClipSource) TotalFrames() int { return s.Clip.TotalFrames() }

// Frame implements Source.
func (s ClipSource) Frame(i int) *frame.Frame { return s.Clip.Frame(i) }

// Annotate runs the offline analysis pass: one streaming sweep over the
// source collecting per-frame luminance statistics, scene detection with
// the given thresholds, and annotation of every scene at every quality
// level. Scene targets are computed so the clipping budget holds on every
// frame of the scene, not merely in aggregate. It returns the track and
// the detected scenes (the latter for diagnostics and figures).
func Annotate(src Source, cfg scene.Config, quality []float64) (*annotation.Track, []scene.Scene, error) {
	return AnnotateContext(context.Background(), src, cfg, quality)
}

// AnnotateContext is Annotate with telemetry: when the context carries
// an obs.Registry (obs.WithRegistry), each stage of the offline pass —
// luminance statistics, scene detection, track construction — records a
// latency span, and frame/scene counters are advanced. It runs the
// sequential path; use AnnotatePipeline for the concurrent one.
func AnnotateContext(ctx context.Context, src Source, cfg scene.Config, quality []float64) (*annotation.Track, []scene.Scene, error) {
	return AnnotatePipeline(ctx, src, cfg, quality, AnnotateOptions{})
}

// PlaybackOptions configures a simulated playback run.
type PlaybackOptions struct {
	// Device is the client display profile.
	Device *display.Profile
	// Quality is the clipping budget the user requested (fraction).
	Quality float64
	// Method is the compensation operator (contrast enhancement by
	// default, as in the paper).
	Method compensate.Method
	// PerFrame retains the per-frame series needed by Figure 6.
	PerFrame bool
	// EvaluateQuality computes perceived-intensity fidelity per frame
	// (slower; used by the quality experiments).
	EvaluateQuality bool
}

// FrameRecord is the per-frame series for Figure 6.
type FrameRecord struct {
	Index      int
	MaxLuma    float64 // original frame max luminance, 0..255
	Target     float64 // annotated scene target luminance, 0..1
	Level      int     // backlight level set for this frame
	PowerSaved float64 // instantaneous backlight power savings, 0..1
}

// Report aggregates a playback run.
type Report struct {
	Device  string
	Quality float64
	Frames  int
	Scenes  int

	// BacklightSavings is the analytic backlight energy saving vs full
	// backlight (the Figure 9 quantity).
	BacklightSavings float64
	// TotalSavings is the analytic whole-device energy saving.
	TotalSavings float64
	// MeasuredTotalSavings is the DAQ-sampled whole-device saving (the
	// Figure 10 quantity).
	MeasuredTotalSavings float64

	// AvgLevel is the mean backlight level during playback.
	AvgLevel float64
	// Switches counts backlight level changes (flicker proxy).
	Switches int
	// MaxStep is the largest single backlight level change.
	MaxStep int

	// MeanClipped is the average fraction of pixels clipped per frame.
	MeanClipped float64
	// MeanAbsErr / MaxErr are perceived-intensity errors (set when
	// EvaluateQuality is on).
	MeanAbsErr float64
	MaxErr     float64

	// AnnotationBytes is the side-channel overhead carried by the stream.
	AnnotationBytes int

	// PerFrame is the Figure 6 series (nil unless requested).
	PerFrame []FrameRecord

	// Trace and Reference are the playback power traces (optimised and
	// full-backlight), exposed for the DAQ and battery estimates.
	Trace, Reference *power.Trace
}

// Play simulates annotated playback of src on the configured device and
// returns the aggregated report. The power model is the default playback
// model for the device; the DAQ is the paper's bench configuration.
func Play(src Source, track *annotation.Track, opt PlaybackOptions) (*Report, error) {
	return PlayContext(context.Background(), src, track, opt)
}

// PlayContext is Play with telemetry: when the context carries an
// obs.Registry, the simulated online path records a latency span and
// publishes per-quality-level savings gauges (the Figure 9/10
// quantities, live).
func PlayContext(ctx context.Context, src Source, track *annotation.Track, opt PlaybackOptions) (*Report, error) {
	if opt.Device == nil {
		return nil, fmt.Errorf("core: playback needs a device profile")
	}
	if err := opt.Device.Validate(); err != nil {
		return nil, err
	}
	if opt.Quality < 0 || opt.Quality > 1 {
		return nil, fmt.Errorf("core: quality budget %v outside [0,1]", opt.Quality)
	}
	n := src.TotalFrames()
	if n == 0 {
		return nil, fmt.Errorf("core: empty source")
	}

	dev := opt.Device
	dev.BuildInverse()
	model := power.DefaultModel(dev)
	qi := track.QualityIndex(opt.Quality)
	cursor := track.NewCursor(qi)
	frameSeconds := 1 / float64(src.FPS())

	rep := &Report{
		Device:          dev.Name,
		Quality:         track.Quality[qi],
		Frames:          n,
		Scenes:          len(track.Records),
		AnnotationBytes: track.Size(),
		Trace:           &power.Trace{},
		Reference:       &power.Trace{},
	}

	level := display.MaxLevel
	prevLevel := -1
	var levelSum float64
	var clippedSum, errSum, errMax float64

	sp := obs.StartSpan(ctx, "play.simulate")
	for i := 0; i < n; i++ {
		target, sceneStart := cursor.Next()
		if sceneStart {
			level = dev.LevelFor(target)
		}
		if prevLevel >= 0 && level != prevLevel {
			rep.Switches++
			if step := absInt(level - prevLevel); step > rep.MaxStep {
				rep.MaxStep = step
			}
		}
		prevLevel = level
		levelSum += float64(level)

		state := power.State{Decoding: true, NetworkActive: true, BacklightLevel: level}
		rep.Trace.Append(frameSeconds, state)
		refState := state
		refState.BacklightLevel = display.MaxLevel
		rep.Reference.Append(frameSeconds, refState)

		if opt.EvaluateQuality || opt.PerFrame {
			f := src.Frame(i)
			if opt.EvaluateQuality {
				plan := serverPlan(target, level)
				fid := compensate.Evaluate(dev, plan, f)
				clippedSum += fid.Clipped
				errSum += fid.MeanAbsErr
				if fid.MaxErr > errMax {
					errMax = fid.MaxErr
				}
			}
			if opt.PerFrame {
				rep.PerFrame = append(rep.PerFrame, FrameRecord{
					Index:      i,
					MaxLuma:    f.MaxLuma(),
					Target:     target,
					Level:      level,
					PowerSaved: dev.SavingsAtLevel(level),
				})
			}
		}
	}

	sp.End()

	rep.AvgLevel = levelSum / float64(n)
	rep.BacklightSavings = model.BacklightSavings(rep.Reference, rep.Trace)
	rep.TotalSavings = model.Savings(rep.Reference, rep.Trace)
	if r := obs.FromContext(ctx); r != nil {
		q := obs.L("quality", strconv.FormatFloat(rep.Quality, 'g', -1, 64))
		r.Gauge("pipeline_backlight_savings_ratio",
			"Backlight energy saved vs full backlight on the last playback at this quality level.", q).
			Set(rep.BacklightSavings)
		r.Gauge("pipeline_total_savings_ratio",
			"Whole-device energy saved vs full backlight on the last playback at this quality level.", q).
			Set(rep.TotalSavings)
	}
	if opt.EvaluateQuality {
		rep.MeanClipped = clippedSum / float64(n)
		rep.MeanAbsErr = errSum / float64(n)
		rep.MaxErr = errMax
	}

	daq := power.DefaultDAQ()
	measured, err := daq.MeasuredSavings(model, rep.Reference, rep.Trace)
	if err != nil {
		return nil, err
	}
	rep.MeasuredTotalSavings = measured
	return rep, nil
}

// serverPlan reconstructs the plan a server-compensated stream implies at
// the client: the gain is device independent (1/target), the level is the
// device's.
func serverPlan(target float64, level int) compensate.Plan {
	k := 1.0
	if target > 0 {
		k = 1 / target
	}
	return compensate.Plan{Target: target, Level: level, K: k}
}

// CompensateFrame applies the server-side, device-independent compensation
// for a scene with the given target: contrast enhancement by 1/target.
// Exposed for the stream/proxy pipeline and the camera validation flow.
func CompensateFrame(f *frame.Frame, target float64, m compensate.Method) *frame.Frame {
	k := 1.0
	if target > 0 {
		k = 1 / target
	}
	plan := compensate.Plan{Target: target, K: k, Delta: (1 - target) * 255}
	return plan.Compensated(m, f)
}

// Sweep runs Play across all the track's quality levels and returns one
// report per level — the inner loop of Figures 9 and 10.
func Sweep(src Source, track *annotation.Track, dev *display.Profile) ([]*Report, error) {
	reports := make([]*Report, 0, len(track.Quality))
	for _, q := range track.Quality {
		rep, err := Play(src, track, PlaybackOptions{Device: dev, Quality: q})
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// EstimateAveragePower predicts the device's mean playback power at
// quality index qi directly from the annotation track — no frames needed,
// which is what lets a client do this during negotiation, before any
// content arrives (§3's "available even before decoding the data").
func EstimateAveragePower(track *annotation.Track, dev *display.Profile, model *power.Model, qi int) float64 {
	if qi < 0 || qi >= len(track.Quality) || track.TotalFrames() == 0 {
		return model.Instant(power.State{Decoding: true, NetworkActive: true, BacklightLevel: display.MaxLevel})
	}
	dev.BuildInverse()
	var energy, seconds float64
	for _, rec := range track.Records {
		level := dev.LevelFor(float64(rec.Targets[qi]) / 255)
		secs := float64(rec.Frames) / float64(track.FPS)
		energy += model.Instant(power.State{
			Decoding: true, NetworkActive: true, BacklightLevel: level,
		}) * secs
		seconds += secs
	}
	if seconds == 0 {
		return 0
	}
	return energy / seconds
}

// QualityForRuntime picks the lowest clipping budget whose predicted
// playback power lets the battery last at least hours — automating the
// user's power/quality decision (§4.2: "the user decides if some quality
// can be traded for more power savings"). It returns the chosen quality
// index and the predicted runtime at that level; ok is false when even the
// most aggressive level cannot reach the target (the caller then gets the
// best available).
func QualityForRuntime(track *annotation.Track, dev *display.Profile, pack *battery.Pack, hours float64) (qi int, predictedHours float64, ok bool) {
	model := power.DefaultModel(dev)
	best := len(track.Quality) - 1
	for i := range track.Quality {
		p := EstimateAveragePower(track, dev, model, i)
		h := pack.HoursAt(p)
		if h >= hours {
			return i, h, true
		}
		if i == best {
			return i, h, false
		}
	}
	return best, 0, false
}
