package core

import (
	"math"
	"testing"

	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/pixel"
	"repro/internal/power"
	"repro/internal/scene"
	"repro/internal/video"
)

// darkClip has dark scenes with sparse bright highlights: the favourable
// case for annotation-driven scaling.
func darkClip() *video.Clip {
	return video.MustNew("dark", 40, 30, 10, 11, []video.SceneSpec{
		{Frames: 15, BaseLuma: 0.15, LumaSpread: 0.12, MaxLuma: 0.78, HighlightFrac: 0.01},
		{Frames: 15, BaseLuma: 0.22, LumaSpread: 0.14, MaxLuma: 0.95, HighlightFrac: 0.008},
	})
}

// brightClip has its histogram mass in the high range: the ice_age case.
func brightClip() *video.Clip {
	return video.MustNew("bright", 40, 30, 10, 12, []video.SceneSpec{
		{Frames: 15, BaseLuma: 0.72, LumaSpread: 0.18, MaxLuma: 1.0, HighlightFrac: 0.3},
		{Frames: 15, BaseLuma: 0.68, LumaSpread: 0.18, MaxLuma: 0.98, HighlightFrac: 0.28},
	})
}

func annotate(t *testing.T, c *video.Clip) *annotation.Track {
	t.Helper()
	track, scenes, err := Annotate(ClipSource{c}, scene.DefaultConfig(c.FPS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenes) == 0 || track.TotalFrames() != c.TotalFrames() {
		t.Fatalf("annotation mismatch: %d scenes, %d frames tracked",
			len(scenes), track.TotalFrames())
	}
	return track
}

func TestAnnotateFindsScenes(t *testing.T) {
	c := darkClip()
	track, scenes, err := Annotate(ClipSource{c}, scene.DefaultConfig(c.FPS), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenes) != 2 {
		t.Errorf("detected %d scenes, want 2", len(scenes))
	}
	if len(track.Records) != len(scenes) {
		t.Errorf("track has %d records for %d scenes", len(track.Records), len(scenes))
	}
}

func TestAnnotateRejectsBadInput(t *testing.T) {
	c := darkClip()
	if _, _, err := Annotate(ClipSource{c}, scene.Config{}, nil); err == nil {
		t.Error("invalid scene config accepted")
	}
}

func TestPlayLosslessSavesPower(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	rep, err := Play(ClipSource{c}, track, PlaybackOptions{
		Device: display.IPAQ5555(), Quality: 0, EvaluateQuality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BacklightSavings <= 0 {
		t.Errorf("lossless backlight savings = %v, want > 0 (dark content)", rep.BacklightSavings)
	}
	if rep.MeanClipped > 1e-9 {
		t.Errorf("lossless playback clipped %v of pixels", rep.MeanClipped)
	}
	if rep.AvgLevel >= display.MaxLevel {
		t.Errorf("AvgLevel = %v, backlight never dimmed", rep.AvgLevel)
	}
}

func TestPlayQualityIncreasesSavings(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	dev := display.IPAQ5555()
	reports, err := Sweep(ClipSource{c}, track, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(compensate.QualityLevels) {
		t.Fatalf("sweep returned %d reports", len(reports))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].BacklightSavings < reports[i-1].BacklightSavings-1e-9 {
			t.Errorf("savings not monotone in quality: %v then %v",
				reports[i-1].BacklightSavings, reports[i].BacklightSavings)
		}
	}
	// The paper sees a big jump already at 5% on dark content.
	if jump := reports[1].BacklightSavings - reports[0].BacklightSavings; jump < 0.10 {
		t.Errorf("5%% quality jump = %v, want noticeable (>0.10)", jump)
	}
}

func TestDarkBeatsBright(t *testing.T) {
	dev := display.IPAQ5555()
	dark := darkClip()
	bright := brightClip()
	repDark, err := Play(ClipSource{dark}, annotate(t, dark),
		PlaybackOptions{Device: dev, Quality: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	repBright, err := Play(ClipSource{bright}, annotate(t, bright),
		PlaybackOptions{Device: dev, Quality: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if repDark.BacklightSavings <= repBright.BacklightSavings {
		t.Errorf("dark savings %v not above bright savings %v",
			repDark.BacklightSavings, repBright.BacklightSavings)
	}
	if repBright.BacklightSavings > 0.35 {
		t.Errorf("bright clip saves %v; should be limited", repBright.BacklightSavings)
	}
}

func TestMeasuredTracksAnalytic(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	rep, err := Play(ClipSource{c}, track, PlaybackOptions{Device: display.IPAQ5555(), Quality: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeasuredTotalSavings-rep.TotalSavings) > 0.02 {
		t.Errorf("measured %v vs analytic %v total savings", rep.MeasuredTotalSavings, rep.TotalSavings)
	}
	// Total savings ~= backlight savings x backlight share.
	share := rep.BacklightSavings * 0.28
	if math.Abs(rep.TotalSavings-share) > 0.08 {
		t.Errorf("total savings %v far from backlight*share %v", rep.TotalSavings, share)
	}
}

func TestPerFrameSeries(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	rep, err := Play(ClipSource{c}, track, PlaybackOptions{
		Device: display.IPAQ5555(), Quality: 0.10, PerFrame: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerFrame) != c.TotalFrames() {
		t.Fatalf("per-frame series has %d entries", len(rep.PerFrame))
	}
	for i, fr := range rep.PerFrame {
		if fr.Index != i {
			t.Fatalf("record %d has index %d", i, fr.Index)
		}
		if fr.Level < 0 || fr.Level > display.MaxLevel {
			t.Errorf("frame %d level %d out of range", i, fr.Level)
		}
		if fr.PowerSaved < 0 || fr.PowerSaved > 1 {
			t.Errorf("frame %d power saved %v out of range", i, fr.PowerSaved)
		}
	}
}

func TestPerSceneBacklightLimitsSwitches(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	dev := display.IPAQ5555()
	perScene, err := Play(ClipSource{c}, track, PlaybackOptions{Device: dev, Quality: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if perScene.Switches >= len(track.Records) {
		t.Errorf("per-scene playback switched %d times for %d scenes",
			perScene.Switches, len(track.Records))
	}
}

func TestPlayValidation(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	if _, err := Play(ClipSource{c}, track, PlaybackOptions{Quality: 0}); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := Play(ClipSource{c}, track, PlaybackOptions{
		Device: display.IPAQ5555(), Quality: 2,
	}); err == nil {
		t.Error("quality > 1 accepted")
	}
}

func TestCompensateFrame(t *testing.T) {
	f := frame.Solid(4, 4, pixel.Gray(128)) // luminance 128/255 ~ 0.502
	comp := CompensateFrame(f, 0.5, compensate.ContrastEnhancement)
	// A pixel at the target luminance must land at (near) full scale.
	if got := comp.MaxLuma(); got < 250 {
		t.Errorf("compensated max luma = %v, want ~255", got)
	}
	if f.MaxLuma() > 130 {
		t.Error("CompensateFrame mutated the input")
	}
	// Target 1 means gain 1: a no-op.
	same := CompensateFrame(f, 1, compensate.ContrastEnhancement)
	if !same.Equal(f) {
		t.Error("target 1 altered the frame")
	}
	// Target 0 must not blow up.
	safe := CompensateFrame(f, 0, compensate.ContrastEnhancement)
	if !safe.Equal(f) {
		t.Error("target 0 not treated as gain 1")
	}
}

func TestCompensateFrameBrightnessMethod(t *testing.T) {
	f := frame.Solid(2, 2, pixel.Gray(100))
	comp := CompensateFrame(f, 0.6, compensate.BrightnessCompensation)
	want := pixel.Gray(202) // 100 + (1-0.6)*255 = 202
	if comp.At(0, 0) != want {
		t.Errorf("brightness-compensated pixel = %v, want %v", comp.At(0, 0), want)
	}
}

func TestEstimateAveragePowerMatchesPlayback(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	dev := display.IPAQ5555()
	model := power.DefaultModel(dev)
	qi := track.QualityIndex(0.10)
	est := EstimateAveragePower(track, dev, model, qi)
	rep, err := Play(ClipSource{c}, track, PlaybackOptions{Device: dev, Quality: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	actual := model.AveragePower(rep.Trace)
	if math.Abs(est-actual) > 0.01 {
		t.Errorf("estimated %vW vs played %vW", est, actual)
	}
}

func TestEstimateAveragePowerDegenerate(t *testing.T) {
	dev := display.IPAQ5555()
	model := power.DefaultModel(dev)
	empty := &annotation.Track{FPS: 10, Quality: []float64{0}}
	full := model.Instant(power.State{Decoding: true, NetworkActive: true, BacklightLevel: display.MaxLevel})
	if got := EstimateAveragePower(empty, dev, model, 0); math.Abs(got-full) > 1e-9 {
		t.Errorf("empty track estimate = %v, want full-backlight %v", got, full)
	}
	if got := EstimateAveragePower(empty, dev, model, 5); math.Abs(got-full) > 1e-9 {
		t.Errorf("bad index estimate = %v", got)
	}
}

func TestQualityForRuntime(t *testing.T) {
	c := darkClip()
	track := annotate(t, c)
	dev := display.IPAQ5555()
	pack := battery.IPAQ1900()
	model := power.DefaultModel(dev)

	// An easily achievable target picks the best (lossless) quality.
	easy := pack.HoursAt(EstimateAveragePower(track, dev, model, 0)) - 0.01
	qi, hours, ok := QualityForRuntime(track, dev, pack, easy)
	if !ok || qi != 0 {
		t.Errorf("easy target picked quality %d (ok=%v)", qi, ok)
	}
	if hours < easy {
		t.Errorf("predicted %vh below target %vh", hours, easy)
	}

	// A target between lossless and max-aggression picks an intermediate
	// or aggressive level.
	hardPower := EstimateAveragePower(track, dev, model, len(track.Quality)-1)
	mid := pack.HoursAt(hardPower) - 0.01
	qi, _, ok = QualityForRuntime(track, dev, pack, mid)
	if !ok {
		t.Errorf("reachable target reported unreachable")
	}
	if qi == 0 {
		t.Errorf("demanding target picked lossless quality")
	}

	// An impossible target reports ok=false with the best effort.
	qi, hours, ok = QualityForRuntime(track, dev, pack, 1e6)
	if ok {
		t.Error("impossible target reported reachable")
	}
	if qi != len(track.Quality)-1 || hours <= 0 {
		t.Errorf("impossible target best effort = %d/%v", qi, hours)
	}
}
