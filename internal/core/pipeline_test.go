package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/scene"
	"repro/internal/video"
)

// pipelineClip has enough scenes and frames that the reorder buffer and
// per-quality fan-out actually exercise out-of-order completion.
func pipelineClip() *video.Clip {
	return video.MustNew("pipeline", 48, 36, 12, 21, []video.SceneSpec{
		{Frames: 18, BaseLuma: 0.15, LumaSpread: 0.12, MaxLuma: 0.78, HighlightFrac: 0.01},
		{Frames: 14, BaseLuma: 0.70, LumaSpread: 0.18, MaxLuma: 1.0, HighlightFrac: 0.3},
		{Frames: 20, BaseLuma: 0.30, LumaSpread: 0.15, MaxLuma: 0.9, HighlightFrac: 0.05},
		{Frames: 16, BaseLuma: 0.55, LumaSpread: 0.20, MaxLuma: 0.97, HighlightFrac: 0.12},
	})
}

// TestAnnotatePipelineMatchesSequential is the golden comparison: the
// parallel pipeline must produce a byte-identical encoded track and the
// same scene list as the sequential path, for every worker count. Run
// under -race in CI.
func TestAnnotatePipelineMatchesSequential(t *testing.T) {
	c := pipelineClip()
	src := ClipSource{c}
	cfg := scene.DefaultConfig(c.FPS)
	ctx := context.Background()

	seqTrack, seqScenes, err := AnnotatePipeline(ctx, src, cfg, nil, AnnotateOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := seqTrack.Encode()

	for _, workers := range []int{2, 3, 4, 8} {
		track, scenes, err := AnnotatePipeline(ctx, src, cfg, nil, AnnotateOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(track.Encode(), golden) {
			t.Errorf("workers=%d: encoded track differs from sequential", workers)
		}
		if len(scenes) != len(seqScenes) {
			t.Fatalf("workers=%d: %d scenes, sequential found %d", workers, len(scenes), len(seqScenes))
		}
		for i := range scenes {
			got, want := scenes[i], seqScenes[i]
			if got.Start != want.Start || got.End != want.End || got.MaxLuma != want.MaxLuma {
				t.Errorf("workers=%d: scene %d = %+v, want %+v", workers, i, got, want)
			}
			if (got.Hist == nil) != (want.Hist == nil) || (got.Hist != nil && *got.Hist != *want.Hist) {
				t.Errorf("workers=%d: scene %d histogram differs", workers, i)
			}
		}
	}
}

// TestAnnotatePipelineCancellation: a pre-cancelled context must abort the
// parallel path with ctx.Err() and leak no goroutines (the -race build
// would flag unsynchronised stragglers writing stats).
func TestAnnotatePipelineCancellation(t *testing.T) {
	c := pipelineClip()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := AnnotatePipeline(ctx, ClipSource{c}, scene.DefaultConfig(c.FPS), nil, AnnotateOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSourceDigest(t *testing.T) {
	a := ClipSource{pipelineClip()}
	b := ClipSource{pipelineClip()}
	if SourceDigest(a) != SourceDigest(b) {
		t.Fatal("identical sources must digest identically")
	}
	other := ClipSource{darkClip()}
	if SourceDigest(a) == SourceDigest(other) {
		t.Fatal("different content must digest differently")
	}
}
