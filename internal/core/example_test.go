package core_test

import (
	"fmt"
	"log"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/scene"
	"repro/internal/video"
)

// The full pipeline in six lines: synthesise a clip, annotate it offline,
// and simulate annotated playback on a characterised device.
func Example() {
	clip := video.MustNew("demo", 40, 30, 10, 11, []video.SceneSpec{
		{Frames: 15, BaseLuma: 0.15, LumaSpread: 0.12, MaxLuma: 0.78, HighlightFrac: 0.01},
		{Frames: 15, BaseLuma: 0.22, LumaSpread: 0.14, MaxLuma: 0.95, HighlightFrac: 0.008},
	})
	src := core.ClipSource{Clip: clip}
	track, scenes, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Play(src, track, core.PlaybackOptions{
		Device: display.IPAQ5555(), Quality: 0.10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d scenes, %dB of annotations\n", len(scenes), track.Size())
	fmt.Printf("backlight saved: %.0f%%\n", rep.BacklightSavings*100)
	// Output:
	// 2 scenes, 58B of annotations
	// backlight saved: 83%
}

// QualityForRuntime automates the user's power/quality decision: given a
// runtime target, it picks the gentlest quality level that reaches it.
func ExampleQualityForRuntime() {
	clip := video.MustNew("flight", 40, 30, 10, 11, []video.SceneSpec{
		{Frames: 15, BaseLuma: 0.15, LumaSpread: 0.12, MaxLuma: 0.78, HighlightFrac: 0.01},
		{Frames: 15, BaseLuma: 0.22, LumaSpread: 0.14, MaxLuma: 0.95, HighlightFrac: 0.008},
	})
	track, _, err := core.Annotate(core.ClipSource{Clip: clip}, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		log.Fatal(err)
	}
	qi, hours, ok := core.QualityForRuntime(track, display.IPAQ5555(), battery.IPAQ1900(), 2.5)
	fmt.Printf("quality %.0f%%, %.1fh, reachable=%v\n", track.Quality[qi]*100, hours, ok)
	// Output:
	// quality 5%, 2.8h, reachable=true
}
