package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/annotation"
	"repro/internal/obs"
	"repro/internal/scene"
)

// AnnotateOptions configures the offline annotation pipeline.
type AnnotateOptions struct {
	// Workers bounds the worker pool that computes per-frame luminance
	// statistics and the per-quality fan-out of track construction.
	// Values <= 1 select the sequential path. Callers wanting a sensible
	// parallel default should pass runtime.GOMAXPROCS(0).
	Workers int
}

// AnnotatePipeline is the staged, concurrent form of Annotate. Per-frame
// statistics (histogram + max luma) are embarrassingly parallel, so a
// bounded pool of opt.Workers goroutines computes them while a reorder
// buffer feeds the inherently sequential scene detector in frame order —
// detection overlaps decode instead of waiting for it. Track construction
// then fans out per quality level. Output is byte-identical to the
// sequential path for any worker count: every stage computes the same
// deterministic function, only the schedule changes.
func AnnotatePipeline(ctx context.Context, src Source, cfg scene.Config, quality []float64, opt AnnotateOptions) (*annotation.Track, []scene.Scene, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	n := src.TotalFrames()
	if n == 0 {
		return nil, nil, fmt.Errorf("core: empty source")
	}
	workers := opt.Workers
	if workers > n {
		workers = n
	}

	var stats []scene.FrameStats
	var scenes []scene.Scene
	if workers <= 1 {
		sp := obs.StartSpan(ctx, "annotate.luma_stats")
		stats = make([]scene.FrameStats, 0, n)
		for i := 0; i < n; i++ {
			stats = append(stats, scene.StatsOf(src.Frame(i)))
		}
		sp.End()

		sp = obs.StartSpan(ctx, "annotate.scene_detect")
		det := scene.NewDetector(cfg)
		for _, st := range stats {
			det.Feed(st)
		}
		scenes = det.Finish()
		sp.End()
	} else {
		// The two stages overlap, so both spans cover the fused region;
		// each still records exactly once per run, like the sequential
		// path, which keeps stage-latency dashboards comparable.
		spStats := obs.StartSpan(ctx, "annotate.luma_stats")
		spScene := obs.StartSpan(ctx, "annotate.scene_detect")
		stats = make([]scene.FrameStats, n)
		idx := make(chan int)
		completed := make(chan int, workers*2)
		go func() {
			defer close(idx)
			for i := 0; i < n; i++ {
				select {
				case idx <- i:
				case <-ctx.Done():
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					stats[i] = scene.StatsOf(src.Frame(i))
					completed <- i
				}
			}()
		}
		go func() {
			wg.Wait()
			close(completed)
		}()

		// Reorder buffer: frames complete out of order, the detector
		// must see them in order.
		det := scene.NewDetector(cfg)
		ready := make([]bool, n)
		next := 0
		for i := range completed {
			ready[i] = true
			for next < n && ready[next] {
				det.Feed(stats[next])
				next++
			}
		}
		scenes = det.Finish()
		spScene.End()
		spStats.End()
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}

	sp := obs.StartSpan(ctx, "annotate.build_track")
	track := annotation.FromStatsParallel(src.FPS(), scenes, stats, quality, workers)
	sp.End()

	if r := obs.FromContext(ctx); r != nil {
		r.Counter("pipeline_frames_processed_total",
			"Frames analysed by the offline annotation pass.").Add(uint64(n))
		r.Counter("pipeline_scenes_detected_total",
			"Scenes found by the offline annotation pass.").Add(uint64(len(scenes)))
	}
	return track, scenes, nil
}

// SourceDigest fingerprints a source's decoded content (FNV-1a over
// dimensions, rate, length and every frame's 8-bit luma plane). Two
// sources with equal digests produce identical annotation tracks and
// compensated variants, which is what lets caches key on content rather
// than on clip names.
func SourceDigest(src Source) string {
	h := fnv.New64a()
	w, ht := src.Size()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(w))
	put(uint64(ht))
	put(uint64(src.FPS()))
	n := src.TotalFrames()
	put(uint64(n))
	luma := make([]uint8, 0, w*ht)
	for i := 0; i < n; i++ {
		f := src.Frame(i)
		luma = luma[:0]
		for _, p := range f.Pix {
			luma = append(luma, p.Luma8())
		}
		h.Write(luma)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
