// Package backlightdev models the hardware backlight interface the
// paper's player drives through the Familiar Linux backlight driver: the
// kernel exposes a small number of discrete brightness steps (not the
// 0..255 software scale), and well-behaved drivers ramp between levels
// over a few frames instead of popping, because an abrupt large jump is
// exactly the flicker the paper's minimum-scene-interval threshold exists
// to avoid.
//
// The device sits between the annotation-driven controller (which asks
// for 0..255 levels) and the display power model (which consumes the
// level actually set), so experiments can quantify what hardware step
// quantisation and ramping cost relative to the ideal continuous control.
package backlightdev

import (
	"fmt"

	"repro/internal/display"
)

// Device is a simulated backlight driver.
type Device struct {
	// Steps is the number of discrete hardware levels (>= 2); requested
	// 0..255 levels are rounded UP to the next step so a scene is never
	// under-lit by quantisation.
	Steps int
	// RampPerUpdate caps how far the output may move per Set call (in
	// 0..255 units). 0 disables ramping (immediate jumps).
	RampPerUpdate int

	current int // current output level, 0..255 scale
	pending int // level the driver is ramping towards
	sets    int // Set calls
	moves   int // updates where the output changed
}

// New returns a driver with the given hardware resolution, starting at
// full brightness.
func New(steps, rampPerUpdate int) (*Device, error) {
	if steps < 2 || steps > 256 {
		return nil, fmt.Errorf("backlightdev: %d steps outside [2,256]", steps)
	}
	if rampPerUpdate < 0 {
		return nil, fmt.Errorf("backlightdev: negative ramp")
	}
	return &Device{
		Steps:         steps,
		RampPerUpdate: rampPerUpdate,
		current:       display.MaxLevel,
		pending:       display.MaxLevel,
	}, nil
}

// Quantize returns the hardware level (0..255 scale) the driver would use
// for a requested level: the smallest representable step at or above it.
func (d *Device) Quantize(level int) int {
	if level < 0 {
		level = 0
	}
	if level > display.MaxLevel {
		level = display.MaxLevel
	}
	stepSize := float64(display.MaxLevel) / float64(d.Steps-1)
	idx := int(float64(level) / stepSize)
	if float64(idx)*stepSize < float64(level) {
		idx++
	}
	if idx > d.Steps-1 {
		idx = d.Steps - 1
	}
	return int(float64(idx)*stepSize + 0.5)
}

// Set requests a new target level. The driver quantises it and, when
// ramping is enabled, walks the output towards it by at most
// RampPerUpdate per call. It returns the level actually output after this
// update — what the panel (and the power model) sees this frame.
func (d *Device) Set(level int) int {
	d.sets++
	d.pending = d.Quantize(level)
	return d.step()
}

// Tick advances one update period without a new request, continuing any
// ramp in progress (called once per frame by the player).
func (d *Device) Tick() int { return d.step() }

func (d *Device) step() int {
	if d.current == d.pending {
		return d.current
	}
	next := d.pending
	if d.RampPerUpdate > 0 {
		if diff := d.pending - d.current; diff > d.RampPerUpdate {
			next = d.current + d.RampPerUpdate
		} else if diff < -d.RampPerUpdate {
			next = d.current - d.RampPerUpdate
		}
	}
	if next != d.current {
		d.moves++
	}
	d.current = next
	return d.current
}

// Level returns the current output level.
func (d *Device) Level() int { return d.current }

// Settled reports whether the output has reached the last requested level.
func (d *Device) Settled() bool { return d.current == d.pending }

// Moves returns how many updates changed the output (flicker accounting at
// the hardware interface).
func (d *Device) Moves() int { return d.moves }

// QuantizationLoss measures the backlight power wasted by hardware
// quantisation for a level schedule on a device profile: requested levels
// are rounded up to hardware steps, so quantised playback draws at least
// as much power as the continuous schedule.
func QuantizationLoss(dev *display.Profile, d *Device, levels []int, fps int) (continuousJ, quantizedJ float64) {
	if fps <= 0 {
		return 0, 0
	}
	dt := 1 / float64(fps)
	for _, l := range levels {
		continuousJ += dev.BacklightPower(l) * dt
		quantizedJ += dev.BacklightPower(d.Quantize(l)) * dt
	}
	return continuousJ, quantizedJ
}
