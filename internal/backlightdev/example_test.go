package backlightdev_test

import (
	"fmt"

	"repro/internal/backlightdev"
)

// A real driver exposes discrete steps and ramps between levels instead
// of popping; requested levels are rounded up so scenes are never
// under-lit.
func ExampleDevice_Set() {
	drv, _ := backlightdev.New(32, 64) // 32 hardware steps, ramp 64/update
	out := drv.Set(100)                // big jump down from full
	fmt.Println("after set: ", out)
	for !drv.Settled() {
		out = drv.Tick()
	}
	fmt.Println("settled at:", out, "(requested 100, quantised up)")
	// Output:
	// after set:  191
	// settled at: 107 (requested 100, quantised up)
}
