package backlightdev

import (
	"testing"
	"testing/quick"

	"repro/internal/display"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0); err == nil {
		t.Error("1 step accepted")
	}
	if _, err := New(300, 0); err == nil {
		t.Error("300 steps accepted")
	}
	if _, err := New(16, -1); err == nil {
		t.Error("negative ramp accepted")
	}
	d, err := New(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Level() != display.MaxLevel {
		t.Errorf("initial level = %d, want full", d.Level())
	}
}

func TestQuantizeRoundsUp(t *testing.T) {
	d, _ := New(16, 0) // steps at 0, 17, 34, ...
	cases := []struct{ in, wantMin int }{
		{0, 0}, {1, 1}, {17, 17}, {18, 18}, {255, 255}, {300, 255}, {-5, 0},
	}
	for _, c := range cases {
		got := d.Quantize(c.in)
		if got < c.wantMin && c.in >= 0 && c.in <= 255 {
			t.Errorf("Quantize(%d) = %d, under-lights", c.in, got)
		}
	}
	// Never under the request, never more than one step above.
	stepSize := 255.0 / 15
	for level := 0; level <= 255; level++ {
		q := d.Quantize(level)
		if q < level {
			t.Fatalf("Quantize(%d) = %d under-lights", level, q)
		}
		if float64(q-level) > stepSize+1 {
			t.Fatalf("Quantize(%d) = %d overshoots a full step", level, q)
		}
	}
}

func TestQuantize256StepsIsIdentity(t *testing.T) {
	d, _ := New(256, 0)
	for level := 0; level <= 255; level++ {
		if got := d.Quantize(level); got != level {
			t.Fatalf("Quantize(%d) = %d with 256 steps", level, got)
		}
	}
}

func TestSetImmediateWithoutRamp(t *testing.T) {
	d, _ := New(256, 0)
	if got := d.Set(40); got != 40 {
		t.Errorf("Set(40) output %d", got)
	}
	if !d.Settled() {
		t.Error("not settled after immediate set")
	}
}

func TestRampWalksTowardsTarget(t *testing.T) {
	d, _ := New(256, 50) // start at 255
	out := d.Set(55)     // long way down
	if out != 205 {
		t.Errorf("first update output %d, want 205", out)
	}
	steps := 1
	for !d.Settled() {
		d.Tick()
		steps++
		if steps > 10 {
			t.Fatal("ramp never settled")
		}
	}
	if d.Level() != 55 {
		t.Errorf("settled at %d, want 55", d.Level())
	}
	if steps != 4 {
		t.Errorf("ramp took %d updates, want 4 (200/50)", steps)
	}
}

func TestRampUpwards(t *testing.T) {
	d, _ := New(256, 64)
	d.Set(0)
	for !d.Settled() {
		d.Tick()
	}
	d.Set(255)
	updates := 1
	for !d.Settled() {
		d.Tick()
		updates++
	}
	if updates != 4 { // 255/64 -> 4 updates
		t.Errorf("upward ramp took %d updates", updates)
	}
}

func TestMovesCountsChanges(t *testing.T) {
	d, _ := New(256, 0)
	d.Set(100)
	d.Set(100)
	d.Tick()
	d.Set(50)
	if d.Moves() != 2 {
		t.Errorf("Moves = %d, want 2", d.Moves())
	}
}

func TestQuantizationLoss(t *testing.T) {
	dev := display.IPAQ5555()
	coarse, _ := New(4, 0)
	fine, _ := New(64, 0)
	levels := []int{40, 80, 120, 160, 200}
	cont, qCoarse := QuantizationLoss(dev, coarse, levels, 10)
	_, qFine := QuantizationLoss(dev, fine, levels, 10)
	if qCoarse < cont || qFine < cont {
		t.Error("quantised playback cheaper than continuous; rounding must be upward")
	}
	if qCoarse <= qFine {
		t.Errorf("4-step device (%v J) not costlier than 64-step (%v J)", qCoarse, qFine)
	}
	if c, q := QuantizationLoss(dev, fine, levels, 0); c != 0 || q != 0 {
		t.Error("fps=0 not treated as empty")
	}
}

// Property: output never under-lights the (quantised) request once
// settled, and the ramp moves monotonically towards the target.
func TestRampMonotoneProperty(t *testing.T) {
	f := func(startRaw, targetRaw, rampRaw uint8) bool {
		d, err := New(64, int(rampRaw)%100)
		if err != nil {
			return false
		}
		d.Set(int(startRaw))
		for i := 0; i < 40 && !d.Settled(); i++ {
			d.Tick()
		}
		start := d.Level()
		target := d.Quantize(int(targetRaw))
		d.Set(int(targetRaw))
		prev := start
		for i := 0; i < 300 && !d.Settled(); i++ {
			cur := d.Tick()
			if target > start && cur < prev {
				return false
			}
			if target < start && cur > prev {
				return false
			}
			prev = cur
		}
		return d.Level() == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
