// Package quality provides the objective video-quality metrics the
// backlight-scaling literature evaluates with: PSNR (used by QABS [Cheng
// et al. 2005], which minimises quality degradation in PSNR terms), SSIM
// (structural similarity, the standard successor), and a temporal flicker
// score for backlight schedules. The paper itself argues histograms are
// the better validation metric for display experiments (§4.2) — package
// histogram provides those — but the comparisons against related work
// need the pixel-domain metrics too.
package quality

import (
	"fmt"
	"math"

	"repro/internal/frame"
)

// PSNR returns the luma peak signal-to-noise ratio of got relative to ref
// in dB (99 dB sentinel for identical content).
func PSNR(ref, got *frame.Frame) (float64, error) {
	if ref.W != got.W || ref.H != got.H {
		return 0, fmt.Errorf("quality: dimension mismatch %dx%d vs %dx%d",
			ref.W, ref.H, got.W, got.H)
	}
	var se float64
	for i := range ref.Pix {
		d := ref.Pix[i].Luma() - got.Pix[i].Luma()
		se += d * d
	}
	mse := se / float64(len(ref.Pix))
	if mse == 0 {
		return 99, nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// SSIM window size (8×8, non-overlapping, as in the fast variant used by
// video tooling).
const ssimWindow = 8

// SSIM constants for 8-bit dynamic range.
var (
	ssimC1 = math.Pow(0.01*255, 2)
	ssimC2 = math.Pow(0.03*255, 2)
)

// SSIM returns the mean structural similarity of got relative to ref over
// the luma plane, in [-1, 1] (1 = identical). Frames smaller than the
// window are compared as a single window.
func SSIM(ref, got *frame.Frame) (float64, error) {
	if ref.W != got.W || ref.H != got.H {
		return 0, fmt.Errorf("quality: dimension mismatch %dx%d vs %dx%d",
			ref.W, ref.H, got.W, got.H)
	}
	lumaR := lumaPlane(ref)
	lumaG := lumaPlane(got)
	var sum float64
	windows := 0
	stepX, stepY := ssimWindow, ssimWindow
	if ref.W < ssimWindow {
		stepX = ref.W
	}
	if ref.H < ssimWindow {
		stepY = ref.H
	}
	for y := 0; y+stepY <= ref.H; y += stepY {
		for x := 0; x+stepX <= ref.W; x += stepX {
			sum += ssimWindowScore(lumaR, lumaG, ref.W, x, y, stepX, stepY)
			windows++
		}
	}
	if windows == 0 {
		return 0, fmt.Errorf("quality: frame too small for SSIM")
	}
	return sum / float64(windows), nil
}

func lumaPlane(f *frame.Frame) []float64 {
	out := make([]float64, len(f.Pix))
	for i, p := range f.Pix {
		out[i] = p.Luma()
	}
	return out
}

func ssimWindowScore(a, b []float64, stride, x0, y0, w, h int) float64 {
	n := float64(w * h)
	var muA, muB float64
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			muA += a[y*stride+x]
			muB += b[y*stride+x]
		}
	}
	muA /= n
	muB /= n
	var varA, varB, cov float64
	for y := y0; y < y0+h; y++ {
		for x := x0; x < x0+w; x++ {
			da := a[y*stride+x] - muA
			db := b[y*stride+x] - muB
			varA += da * da
			varB += db * db
			cov += da * db
		}
	}
	varA /= n - 1
	varB /= n - 1
	cov /= n - 1
	return ((2*muA*muB + ssimC1) * (2*cov + ssimC2)) /
		((muA*muA + muB*muB + ssimC1) * (varA + varB + ssimC2))
}

// FlickerScore quantifies visible backlight flicker in a level schedule:
// the mean absolute level change per second weighted by step size
// (large abrupt steps are what users perceive). Zero means a constant
// backlight.
func FlickerScore(levels []int, fps int) float64 {
	if len(levels) < 2 || fps <= 0 {
		return 0
	}
	var sum float64
	for i := 1; i < len(levels); i++ {
		d := float64(levels[i] - levels[i-1])
		if d < 0 {
			d = -d
		}
		// Quadratic weighting: a 128-step jump is far worse than many
		// 1-step adjustments.
		sum += d * d / 255
	}
	seconds := float64(len(levels)) / float64(fps)
	return sum / seconds
}

// SequenceStats aggregates per-frame metric values.
type SequenceStats struct {
	Mean, Min float64
	N         int
}

// Aggregate folds per-frame metric values into summary statistics.
func Aggregate(values []float64) SequenceStats {
	if len(values) == 0 {
		return SequenceStats{}
	}
	st := SequenceStats{Min: math.Inf(1), N: len(values)}
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
	}
	st.Mean = sum / float64(len(values))
	return st
}
