package quality_test

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/pixel"
	"repro/internal/quality"
)

// SSIM tolerates a uniform brightness shift far better than structural
// damage — which is why it complements PSNR for display experiments.
func ExampleSSIM() {
	ref := frame.New(16, 16)
	for i := range ref.Pix {
		ref.Pix[i] = pixel.Gray(uint8(40 + (i*7)%120))
	}
	shifted := ref.Map(func(p pixel.RGB) pixel.RGB { return p.Add(10) })
	flat := frame.Solid(16, 16, pixel.Gray(uint8(ref.AvgLuma())))

	s1, _ := quality.SSIM(ref, shifted)
	s2, _ := quality.SSIM(ref, flat)
	fmt.Printf("brightness shift: %.2f\n", s1)
	fmt.Printf("flattened:        %.2f\n", s2)
	// Output:
	// brightness shift: 1.00
	// flattened:        0.06
}
