package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/pixel"
)

func grad(w, h int, base uint8) *frame.Frame {
	f := frame.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Set(x, y, pixel.Gray(uint8(int(base)+x*3%100)))
		}
	}
	return f
}

func TestPSNRIdentical(t *testing.T) {
	f := grad(16, 16, 50)
	got, err := PSNR(f, f.Clone())
	if err != nil || got != 99 {
		t.Errorf("PSNR = %v, %v", got, err)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := frame.Solid(8, 8, pixel.Gray(100))
	b := frame.Solid(8, 8, pixel.Gray(110))
	got, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/100.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestPSNRMismatch(t *testing.T) {
	if _, err := PSNR(frame.New(4, 4), frame.New(5, 4)); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestSSIMIdentical(t *testing.T) {
	f := grad(32, 32, 40)
	got, err := SSIM(f, f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("SSIM(identical) = %v, want 1", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	f := grad(32, 32, 40)
	slightly := f.Map(func(p pixel.RGB) pixel.RGB { return p.Add(4) })
	badly := f.Map(func(p pixel.RGB) pixel.RGB { return pixel.Gray(255 - p.R) })
	s1, err := SSIM(f, slightly)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SSIM(f, badly)
	if err != nil {
		t.Fatal(err)
	}
	if s1 <= s2 {
		t.Errorf("slight change SSIM %v not above severe change %v", s1, s2)
	}
	if s1 < 0.9 {
		t.Errorf("small brightness shift scored %v; SSIM should be tolerant", s1)
	}
}

func TestSSIMStructuralVsBrightness(t *testing.T) {
	// SSIM forgives a uniform brightness shift far more than structure
	// destruction with the same MSE budget — the reason it complements
	// PSNR here.
	f := grad(32, 32, 60)
	shifted := f.Map(func(p pixel.RGB) pixel.RGB { return p.Add(12) })
	flattened := frame.Solid(32, 32, pixel.Gray(uint8(f.AvgLuma())))
	sShift, _ := SSIM(f, shifted)
	sFlat, _ := SSIM(f, flattened)
	if sShift <= sFlat {
		t.Errorf("brightness shift (%v) scored no better than flattening (%v)", sShift, sFlat)
	}
}

func TestSSIMSmallFrames(t *testing.T) {
	f := grad(4, 4, 10)
	if _, err := SSIM(f, f.Clone()); err != nil {
		t.Errorf("small-frame SSIM failed: %v", err)
	}
}

func TestSSIMMismatch(t *testing.T) {
	if _, err := SSIM(frame.New(8, 8), frame.New(8, 9)); err == nil {
		t.Error("mismatch accepted")
	}
}

func TestFlickerScore(t *testing.T) {
	if got := FlickerScore([]int{100, 100, 100}, 10); got != 0 {
		t.Errorf("constant schedule flicker = %v", got)
	}
	smooth := FlickerScore([]int{100, 101, 102, 103, 104, 105}, 10)
	jumpy := FlickerScore([]int{100, 228, 100, 228, 100, 228}, 10)
	if smooth >= jumpy {
		t.Errorf("smooth %v not below jumpy %v", smooth, jumpy)
	}
	if FlickerScore(nil, 10) != 0 || FlickerScore([]int{1}, 10) != 0 || FlickerScore([]int{1, 2}, 0) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

func TestAggregate(t *testing.T) {
	st := Aggregate([]float64{3, 1, 2})
	if st.Mean != 2 || st.Min != 1 || st.N != 3 {
		t.Errorf("Aggregate = %+v", st)
	}
	if z := Aggregate(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty Aggregate = %+v", z)
	}
}

// Property: SSIM is symmetric and bounded.
func TestSSIMSymmetricProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		fa := grad(16, 16, a)
		fb := grad(16, 16, b)
		s1, err1 := SSIM(fa, fb)
		s2, err2 := SSIM(fb, fa)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(s1-s2) < 1e-9 && s1 <= 1+1e-9 && s1 >= -1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
