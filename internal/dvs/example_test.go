package dvs_test

import (
	"fmt"

	"repro/internal/dvs"
)

// An annotated governor knows each frame's decode cost in advance and
// picks the slowest operating point that meets the deadline.
func ExampleSimulate() {
	table := dvs.XScale()
	// Ten cheap frames, then an expensive one.
	est := make([]float64, 11)
	for i := range est {
		est[i] = 6e6
	}
	est[10] = 24e6
	actual := dvs.ActualCycles(est, 0, 1) // no noise
	ann := dvs.Annotate(est, 0.10)

	static, _ := dvs.Simulate(table, dvs.StaticMax{}, actual, 1.0/15)
	annotated, _ := dvs.Simulate(table, dvs.Annotated{Cycles: ann}, actual, 1.0/15)
	fmt.Printf("static:    %.0f MHz avg, %d misses\n", static.AvgMHz, static.Misses)
	fmt.Printf("annotated: %.0f MHz avg, %d misses, %.0f%% energy saved\n",
		annotated.AvgMHz, annotated.Misses,
		(1-annotated.EnergyJoules/static.EnergyJoules)*100)
	// Output:
	// static:    400 MHz avg, 0 misses
	// annotated: 127 MHz avg, 0 misses, 63% energy saved
}
