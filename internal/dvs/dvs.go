// Package dvs implements the second application the paper names for
// software annotations (§3): "optimizations like frequency/voltage scaling
// can be applied before decoding is finished, because the annotated
// information is available early from the data stream."
//
// The stream is annotated with per-frame decode-complexity estimates
// (cycles). During playback a governor picks, for each frame, the lowest
// CPU operating point that still meets the frame deadline. An annotated
// governor knows each frame's cost in advance; the history-based
// alternative must predict it from past frames and pays for mispredictions
// with missed deadlines (dropped/late frames) — the same
// annotations-vs-prediction argument as the backlight technique.
//
// The CPU model is an XScale-class core (PXA25x): four frequency/voltage
// operating points with active power k·f·V², calibrated so the top point
// matches the 0.9 W decode power used by the whole-device model.
package dvs

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/codec"
)

// OperatingPoint is one frequency/voltage setting.
type OperatingPoint struct {
	MHz   int
	Volts float64
	// IdleWatts is the power when the core idles at this point waiting
	// for the next frame.
	IdleWatts float64
}

// Table is an ordered (ascending MHz) set of operating points.
type Table struct {
	Points []OperatingPoint
	// SwitchCapF is the effective switched capacitance × activity
	// constant k in P = k·f·V² (watts per Hz·V²).
	SwitchCapF float64
}

// XScale returns the PXA25x-like table used in the experiments. Active
// power at 400 MHz/1.3 V is 0.90 W, matching power.DefaultModel's CPU
// decode draw.
func XScale() *Table {
	return &Table{
		Points: []OperatingPoint{
			{MHz: 100, Volts: 0.85, IdleWatts: 0.08},
			{MHz: 200, Volts: 1.00, IdleWatts: 0.12},
			{MHz: 300, Volts: 1.10, IdleWatts: 0.18},
			{MHz: 400, Volts: 1.30, IdleWatts: 0.25},
		},
		SwitchCapF: 0.90 / (400e6 * 1.3 * 1.3),
	}
}

// ActiveWatts returns the active power at point i.
func (t *Table) ActiveWatts(i int) float64 {
	p := t.Points[i]
	return t.SwitchCapF * float64(p.MHz) * 1e6 * p.Volts * p.Volts
}

// Validate reports structural problems with the table.
func (t *Table) Validate() error {
	if len(t.Points) == 0 {
		return fmt.Errorf("dvs: empty table")
	}
	if t.SwitchCapF <= 0 {
		return fmt.Errorf("dvs: non-positive switch capacitance")
	}
	for i, p := range t.Points {
		if p.MHz <= 0 || p.Volts <= 0 || p.IdleWatts < 0 {
			return fmt.Errorf("dvs: invalid point %d: %+v", i, p)
		}
		if i > 0 && p.MHz <= t.Points[i-1].MHz {
			return fmt.Errorf("dvs: points not ascending at %d", i)
		}
	}
	return nil
}

// lowestMeeting returns the index of the slowest point that can retire
// `cycles` within `seconds`, or the fastest point if none can.
func (t *Table) lowestMeeting(cycles float64, seconds float64) int {
	for i, p := range t.Points {
		if cycles <= float64(p.MHz)*1e6*seconds {
			return i
		}
	}
	return len(t.Points) - 1
}

// CycleModel estimates decode cost from an encoded frame — the model the
// server uses when generating decode annotations. Costs are in cycles.
type CycleModel struct {
	// Base is the fixed per-frame overhead (headers, output conversion
	// setup).
	Base float64
	// PerByte is the entropy-decode cost per compressed byte.
	PerByte float64
	// PerPixel is the reconstruction cost (IDCT, motion comp, colour
	// conversion) per output pixel.
	PerPixel float64
	// IntraFactor scales the per-pixel cost of I frames (all blocks
	// coded, no skips).
	IntraFactor float64
}

// DefaultCycleModel is calibrated so a QVGA stream at 15 fps keeps a
// 400 MHz XScale around 60–90% busy (I frames near the top, P frames
// around half), as MPEG-1 playback on the iPAQ did.
func DefaultCycleModel() CycleModel {
	return CycleModel{Base: 1.0e6, PerByte: 120, PerPixel: 140, IntraFactor: 1.35}
}

// Estimate returns the modelled decode cost of ef at the given raster.
func (m CycleModel) Estimate(ef *codec.EncodedFrame, w, h int) float64 {
	c := m.Base + m.PerByte*float64(len(ef.Data)) + m.PerPixel*float64(w*h)
	if ef.Type == codec.IFrame {
		c = m.Base + m.PerByte*float64(len(ef.Data)) + m.PerPixel*float64(w*h)*m.IntraFactor
	}
	return c
}

// --- decode-cycle annotations (container.ChunkDecodeCycles payload) ---

// EncodeCycles serialises per-frame cycle annotations: u32 count followed
// by zig-zag delta varints (consecutive frames have similar cost, so the
// deltas are small).
func EncodeCycles(cycles []uint32) []byte {
	buf := binary.BigEndian.AppendUint32(nil, uint32(len(cycles)))
	prev := int64(0)
	for _, c := range cycles {
		delta := int64(c) - prev
		buf = binary.AppendVarint(buf, delta)
		prev = int64(c)
	}
	return buf
}

// DecodeCycles parses an EncodeCycles payload.
func DecodeCycles(data []byte) ([]uint32, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("dvs: short cycle annotation")
	}
	n := binary.BigEndian.Uint32(data)
	if uint64(n) > uint64(len(data))*10 {
		return nil, fmt.Errorf("dvs: implausible cycle count %d", n)
	}
	out := make([]uint32, 0, n)
	pos := 4
	prev := int64(0)
	for i := uint32(0); i < n; i++ {
		delta, k := binary.Varint(data[pos:])
		if k <= 0 {
			return nil, fmt.Errorf("dvs: truncated cycle annotation at %d", i)
		}
		pos += k
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("dvs: negative cycles at %d", i)
		}
		out = append(out, uint32(prev))
	}
	return out, nil
}

// --- governors ---

// Governor picks an operating point for each frame.
type Governor interface {
	// Name identifies the governor in reports.
	Name() string
	// Pick returns the operating-point index for frame i. actualPast
	// holds the true cycle counts of frames < i (what a deployed
	// governor could have measured).
	Pick(t *Table, i int, deadline float64, actualPast []float64) int
}

// StaticMax always runs at the fastest point (the no-DVS reference).
type StaticMax struct{}

// Name implements Governor.
func (StaticMax) Name() string { return "static-max" }

// Pick implements Governor.
func (StaticMax) Pick(t *Table, _ int, _ float64, _ []float64) int {
	return len(t.Points) - 1
}

// Annotated follows the stream's decode-cycle annotations.
type Annotated struct {
	// Cycles are the annotated per-frame costs (including the server's
	// safety margin).
	Cycles []uint32
}

// Name implements Governor.
func (Annotated) Name() string { return "annotated" }

// Pick implements Governor.
func (a Annotated) Pick(t *Table, i int, deadline float64, _ []float64) int {
	if i >= len(a.Cycles) {
		return len(t.Points) - 1
	}
	return t.lowestMeeting(float64(a.Cycles[i]), deadline)
}

// Reactive predicts the next frame's cost as the maximum of a trailing
// window of measured costs plus a margin — the client-side alternative
// that needs no annotations.
type Reactive struct {
	// Window is the number of past frames considered (default 8).
	Window int
	// Margin scales the prediction (default 1.1).
	Margin float64
}

// Name implements Governor.
func (Reactive) Name() string { return "reactive" }

// Pick implements Governor.
func (r Reactive) Pick(t *Table, i int, deadline float64, actualPast []float64) int {
	if i == 0 || len(actualPast) == 0 {
		return len(t.Points) - 1
	}
	window := r.Window
	if window <= 0 {
		window = 8
	}
	margin := r.Margin
	if margin == 0 {
		margin = 1.1
	}
	lo := len(actualPast) - window
	if lo < 0 {
		lo = 0
	}
	pred := 0.0
	for _, c := range actualPast[lo:] {
		if c > pred {
			pred = c
		}
	}
	return t.lowestMeeting(pred*margin, deadline)
}

// Oracle picks from the true costs — the energy lower bound.
type Oracle struct {
	Cycles []float64
}

// Name implements Governor.
func (Oracle) Name() string { return "oracle" }

// Pick implements Governor.
func (o Oracle) Pick(t *Table, i int, deadline float64, _ []float64) int {
	if i >= len(o.Cycles) {
		return len(t.Points) - 1
	}
	return t.lowestMeeting(o.Cycles[i], deadline)
}

// --- simulation ---

// Result aggregates a simulated playback under one governor.
type Result struct {
	Governor string
	// EnergyJoules is the CPU energy over the run.
	EnergyJoules float64
	// Savings is the energy saved vs running StaticMax on the same frames.
	Savings float64
	// Misses counts frames whose decode overran the deadline.
	Misses int
	// MissRate is Misses normalised by frame count.
	MissRate float64
	// AvgMHz is the mean selected frequency.
	AvgMHz float64
	// Switches counts operating-point changes.
	Switches int
}

// Simulate plays `actual` per-frame cycle costs under the governor at the
// given frame deadline (seconds). Each frame runs at the chosen point;
// slack before the deadline idles at that point's idle power. Frames that
// overrun the deadline are counted as misses (decode continues; the next
// frame still gets a full deadline, modelling a player that drops late
// frames).
func Simulate(t *Table, g Governor, actual []float64, deadline float64) (Result, error) {
	if err := t.Validate(); err != nil {
		return Result{}, err
	}
	if deadline <= 0 {
		return Result{}, fmt.Errorf("dvs: non-positive deadline")
	}
	res := Result{Governor: g.Name()}
	var mhzSum float64
	prev := -1
	for i, cycles := range actual {
		op := g.Pick(t, i, deadline, actual[:i])
		if op < 0 || op >= len(t.Points) {
			return Result{}, fmt.Errorf("dvs: governor %s picked invalid point %d", g.Name(), op)
		}
		p := t.Points[op]
		busy := cycles / (float64(p.MHz) * 1e6)
		if busy > deadline {
			res.Misses++
			res.EnergyJoules += t.ActiveWatts(op) * deadline
		} else {
			res.EnergyJoules += t.ActiveWatts(op)*busy + p.IdleWatts*(deadline-busy)
		}
		mhzSum += float64(p.MHz)
		if prev >= 0 && op != prev {
			res.Switches++
		}
		prev = op
	}
	if n := len(actual); n > 0 {
		res.AvgMHz = mhzSum / float64(n)
		res.MissRate = float64(res.Misses) / float64(n)
	}
	return res, nil
}

// ActualCycles derives "measured" per-frame decode costs from estimates:
// the model's estimate perturbed by deterministic execution noise (cache
// effects, OS jitter), as a real player would observe.
func ActualCycles(estimates []float64, noiseFrac float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(estimates))
	for i, e := range estimates {
		out[i] = e * (1 + noiseFrac*(rng.Float64()*2-1))
	}
	return out
}

// Annotate builds the stream annotation from estimates: the estimate plus
// a safety margin covering execution noise, rounded up.
func Annotate(estimates []float64, margin float64) []uint32 {
	out := make([]uint32, len(estimates))
	for i, e := range estimates {
		out[i] = uint32(e*(1+margin)) + 1
	}
	return out
}
