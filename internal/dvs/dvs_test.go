package dvs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/codec"
)

func TestXScaleValidates(t *testing.T) {
	if err := XScale().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestActiveWattsCalibration(t *testing.T) {
	tab := XScale()
	top := tab.ActiveWatts(len(tab.Points) - 1)
	if math.Abs(top-0.90) > 1e-9 {
		t.Errorf("400MHz active power = %v, want 0.90", top)
	}
	// P = k f V^2 is strictly increasing along the table.
	for i := 1; i < len(tab.Points); i++ {
		if tab.ActiveWatts(i) <= tab.ActiveWatts(i-1) {
			t.Errorf("power not increasing at point %d", i)
		}
	}
	// 100MHz @ 0.85V should be far cheaper than 400 @ 1.3: ratio
	// (100*0.7225)/(400*1.69) ~ 0.107.
	if ratio := tab.ActiveWatts(0) / top; ratio > 0.15 {
		t.Errorf("low point ratio = %v, want well below max", ratio)
	}
}

func TestValidateCatchesBadTables(t *testing.T) {
	bad := []*Table{
		{},
		{Points: []OperatingPoint{{MHz: 100, Volts: 1}}, SwitchCapF: 0},
		{Points: []OperatingPoint{{MHz: 0, Volts: 1}}, SwitchCapF: 1},
		{Points: []OperatingPoint{{MHz: 200, Volts: 1}, {MHz: 100, Volts: 1}}, SwitchCapF: 1},
		{Points: []OperatingPoint{{MHz: 100, Volts: 1, IdleWatts: -1}}, SwitchCapF: 1},
	}
	for i, tab := range bad {
		if err := tab.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLowestMeeting(t *testing.T) {
	tab := XScale()
	deadline := 0.1 // 100ms
	cases := []struct {
		cycles float64
		want   int
	}{
		{5e6, 0},   // 5M cycles in 100ms needs 50MHz -> 100MHz point
		{15e6, 1},  // needs 150MHz -> 200
		{25e6, 2},  // needs 250MHz -> 300
		{39e6, 3},  // needs 390MHz -> 400
		{100e6, 3}, // infeasible -> fastest
		{10e6, 0},  // exactly 100MHz
	}
	for _, c := range cases {
		if got := tab.lowestMeeting(c.cycles, deadline); got != c.want {
			t.Errorf("lowestMeeting(%v) = %d, want %d", c.cycles, got, c.want)
		}
	}
}

func TestCycleModelEstimates(t *testing.T) {
	m := DefaultCycleModel()
	p := &codec.EncodedFrame{Type: codec.PFrame, Data: make([]byte, 1000)}
	i := &codec.EncodedFrame{Type: codec.IFrame, Data: make([]byte, 1000)}
	cp := m.Estimate(p, 320, 240)
	ci := m.Estimate(i, 320, 240)
	if ci <= cp {
		t.Errorf("I frame estimate %v not above P frame %v", ci, cp)
	}
	big := &codec.EncodedFrame{Type: codec.PFrame, Data: make([]byte, 10000)}
	if m.Estimate(big, 320, 240) <= cp {
		t.Error("larger payload not costlier")
	}
	// QVGA at 15fps keeps a 400MHz core under but near full utilisation.
	budget := 400e6 / 15.0
	if ci > budget {
		t.Errorf("I frame estimate %v exceeds the 400MHz budget %v", ci, budget)
	}
	if cp < 0.3*budget {
		t.Errorf("P frame estimate %v implausibly cheap", cp)
	}
}

func TestCycleAnnotationRoundTrip(t *testing.T) {
	cycles := []uint32{1000000, 1100000, 900000, 25000000, 0, 42}
	got, err := DecodeCycles(EncodeCycles(cycles))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cycles) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range cycles {
		if got[i] != cycles[i] {
			t.Errorf("cycle %d = %d, want %d", i, got[i], cycles[i])
		}
	}
}

func TestDecodeCyclesRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {1}, {0, 0, 0, 5}, {255, 255, 255, 255, 1}}
	for i, data := range cases {
		if _, err := DecodeCycles(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCycleAnnotationRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		for i := range raw {
			raw[i] %= 1 << 30
		}
		got, err := DecodeCycles(EncodeCycles(raw))
		if err != nil {
			return false
		}
		if len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if got[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCyclesNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		DecodeCycles(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// workload builds a plausible mixed-complexity cycle sequence.
func workload() []float64 {
	est := make([]float64, 120)
	for i := range est {
		if i%10 == 0 {
			est[i] = 22e6 // I frames
		} else {
			est[i] = 12e6 + float64(i%7)*1e6
		}
	}
	return est
}

func TestSimulateStaticBaseline(t *testing.T) {
	tab := XScale()
	actual := ActualCycles(workload(), 0.08, 1)
	deadline := 1.0 / 15
	res, err := Simulate(tab, StaticMax{}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("static misses = %d", res.Misses)
	}
	if res.AvgMHz != 400 {
		t.Errorf("static avg MHz = %v", res.AvgMHz)
	}
	if res.Switches != 0 {
		t.Errorf("static switches = %d", res.Switches)
	}
}

func TestAnnotatedSavesEnergyWithoutMisses(t *testing.T) {
	tab := XScale()
	est := workload()
	actual := ActualCycles(est, 0.08, 1)
	ann := Annotate(est, 0.10)
	deadline := 1.0 / 15

	static, err := Simulate(tab, StaticMax{}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	annotated, err := Simulate(tab, Annotated{Cycles: ann}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if annotated.Misses != 0 {
		t.Errorf("annotated misses = %d; margin should cover noise", annotated.Misses)
	}
	saving := 1 - annotated.EnergyJoules/static.EnergyJoules
	if saving < 0.15 {
		t.Errorf("annotated DVS saving = %v, want substantial", saving)
	}
	if annotated.AvgMHz >= 400 {
		t.Error("annotated never scaled down")
	}
}

func TestOracleLowerBound(t *testing.T) {
	tab := XScale()
	est := workload()
	actual := ActualCycles(est, 0.08, 1)
	deadline := 1.0 / 15
	oracle, err := Simulate(tab, Oracle{Cycles: actual}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	annotated, err := Simulate(tab, Annotated{Cycles: Annotate(est, 0.10)}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Misses != 0 {
		t.Errorf("oracle missed %d deadlines", oracle.Misses)
	}
	if annotated.EnergyJoules < oracle.EnergyJoules-1e-9 {
		t.Errorf("annotated (%v J) beat the oracle (%v J)", annotated.EnergyJoules, oracle.EnergyJoules)
	}
}

func TestReactiveMissesOnComplexityJumps(t *testing.T) {
	tab := XScale()
	// Complexity jumps: long cheap stretch then an expensive frame —
	// history prediction scales down, then gets caught out.
	est := make([]float64, 100)
	for i := range est {
		est[i] = 6e6
		if i%20 == 19 {
			est[i] = 24e6
		}
	}
	actual := ActualCycles(est, 0.05, 3)
	deadline := 1.0 / 15
	reactive, err := Simulate(tab, Reactive{}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	annotated, err := Simulate(tab, Annotated{Cycles: Annotate(est, 0.10)}, actual, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if reactive.Misses == 0 {
		t.Error("reactive governor never missed; complexity jumps should catch it")
	}
	if annotated.Misses != 0 {
		t.Errorf("annotated missed %d deadlines", annotated.Misses)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(&Table{}, StaticMax{}, []float64{1}, 0.1); err == nil {
		t.Error("invalid table accepted")
	}
	if _, err := Simulate(XScale(), StaticMax{}, []float64{1}, 0); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestGovernorNames(t *testing.T) {
	names := map[string]Governor{
		"static-max": StaticMax{},
		"annotated":  Annotated{},
		"reactive":   Reactive{},
		"oracle":     Oracle{},
	}
	for want, g := range names {
		if g.Name() != want {
			t.Errorf("Name() = %q, want %q", g.Name(), want)
		}
	}
}

// Property: simulation energy is non-negative and misses never exceed the
// frame count.
func TestSimulateSanityProperty(t *testing.T) {
	tab := XScale()
	f := func(raw []uint16, govRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		actual := make([]float64, len(raw))
		for i, r := range raw {
			actual[i] = float64(r) * 1e3
		}
		govs := []Governor{StaticMax{}, Reactive{}, Oracle{Cycles: actual}}
		g := govs[int(govRaw)%len(govs)]
		res, err := Simulate(tab, g, actual, 1.0/15)
		if err != nil {
			return false
		}
		return res.EnergyJoules >= 0 && res.Misses <= len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
