package display

import (
	"fmt"
	"math"
)

// Profile fitting: the paper characterises each PDA by photographing gray
// screens at varying backlight levels (§5) and uses the resulting
// luminance-backlight transfer "to compute the backlight level needed to
// achieve a desired luminance level during playback". This file implements
// that calibration step: given measured (backlight level, normalised
// luminance) samples, recover the transfer-curve parameters
// (ReflectiveFloor, ResponseGamma, ResponseKnee) by least squares.
//
// The fit is a coarse grid search refined by coordinate descent — the
// parameter space is tiny and smooth, and calibration runs offline.

// Measurement is one camera observation of a full-white screen.
type Measurement struct {
	Level int
	// Luminance is normalised so the full-backlight observation is 1.0.
	Luminance float64
}

// FitOptions bounds the parameter search.
type FitOptions struct {
	// FloorMax bounds the reflective floor (default 0.2).
	FloorMax float64
	// GammaMin/GammaMax bound the response exponent (default 0.3..3).
	GammaMin, GammaMax float64
	// KneeMax bounds the saturation knee (default 2).
	KneeMax float64
}

func (o FitOptions) withDefaults() FitOptions {
	if o.FloorMax <= 0 {
		o.FloorMax = 0.2
	}
	if o.GammaMin <= 0 {
		o.GammaMin = 0.3
	}
	if o.GammaMax <= o.GammaMin {
		o.GammaMax = 3
	}
	if o.KneeMax <= 0 {
		o.KneeMax = 2
	}
	return o
}

// FitTransfer recovers transfer-curve parameters from measurements. The
// returned profile has only the optical parameters set (floor, gamma,
// knee); power and panel fields must come from electrical measurements.
// At least 5 samples spanning the level range are required.
func FitTransfer(name string, samples []Measurement, opt FitOptions) (*Profile, float64, error) {
	opt = opt.withDefaults()
	if len(samples) < 5 {
		return nil, 0, fmt.Errorf("display: need >=5 calibration samples, got %d", len(samples))
	}
	lo, hi := MaxLevel, 0
	for _, s := range samples {
		if s.Level < 0 || s.Level > MaxLevel {
			return nil, 0, fmt.Errorf("display: sample level %d out of range", s.Level)
		}
		if s.Luminance < 0 || s.Luminance > 1.2 {
			return nil, 0, fmt.Errorf("display: sample luminance %v implausible", s.Luminance)
		}
		if s.Level < lo {
			lo = s.Level
		}
		if s.Level > hi {
			hi = s.Level
		}
	}
	if hi-lo < MaxLevel/2 {
		return nil, 0, fmt.Errorf("display: samples span only [%d,%d]; sweep the full range", lo, hi)
	}

	sse := func(floor, gamma, knee float64) float64 {
		p := Profile{ReflectiveFloor: floor, ResponseGamma: gamma, ResponseKnee: knee}
		var s float64
		for _, m := range samples {
			d := p.Luminance(m.Level) - m.Luminance
			s += d * d
		}
		return s
	}

	// Coarse grid.
	bestF, bestG, bestK := 0.0, 1.0, 0.0
	best := math.Inf(1)
	for f := 0.0; f <= opt.FloorMax; f += opt.FloorMax / 8 {
		for g := opt.GammaMin; g <= opt.GammaMax; g += (opt.GammaMax - opt.GammaMin) / 24 {
			for k := 0.0; k <= opt.KneeMax; k += opt.KneeMax / 10 {
				if e := sse(f, g, k); e < best {
					best, bestF, bestG, bestK = e, f, g, k
				}
			}
		}
	}
	// Coordinate descent refinement.
	stepF, stepG, stepK := opt.FloorMax/8, (opt.GammaMax-opt.GammaMin)/24, opt.KneeMax/10
	for iter := 0; iter < 60; iter++ {
		improved := false
		try := func(f, g, k float64) {
			if f < 0 || f > opt.FloorMax || g < opt.GammaMin || g > opt.GammaMax || k < 0 || k > opt.KneeMax {
				return
			}
			if e := sse(f, g, k); e < best {
				best, bestF, bestG, bestK = e, f, g, k
				improved = true
			}
		}
		try(bestF+stepF, bestG, bestK)
		try(bestF-stepF, bestG, bestK)
		try(bestF, bestG+stepG, bestK)
		try(bestF, bestG-stepG, bestK)
		try(bestF, bestG, bestK+stepK)
		try(bestF, bestG, bestK-stepK)
		if !improved {
			stepF /= 2
			stepG /= 2
			stepK /= 2
			if stepG < 1e-5 {
				break
			}
		}
	}

	p := &Profile{
		Name:            name,
		ReflectiveFloor: bestF,
		ResponseGamma:   bestG,
		ResponseKnee:    bestK,
	}
	rmse := math.Sqrt(best / float64(len(samples)))
	return p, rmse, nil
}

// CalibrationSamples generates the measurement sweep a characterisation
// run would produce from this profile (the forward direction, for tests
// and demos): n levels evenly spread over the range.
func (p *Profile) CalibrationSamples(n int) []Measurement {
	if n < 2 {
		n = 2
	}
	out := make([]Measurement, 0, n)
	for i := 0; i < n; i++ {
		level := i * MaxLevel / (n - 1)
		out = append(out, Measurement{Level: level, Luminance: p.Luminance(level)})
	}
	return out
}
