package display_test

import (
	"fmt"

	"repro/internal/display"
)

// The runtime operation of the paper's client: turn an annotated scene
// target into a backlight level through the device's inverse transfer
// table, then read the power saved at that level.
func ExampleProfile_LevelFor() {
	dev := display.IPAQ5555()
	target := 0.5 // annotated scene luminance
	level := dev.LevelFor(target)
	fmt.Printf("level %d/255, delivers %.3f, saves %.0f%% of backlight power\n",
		level, dev.Luminance(level), dev.SavingsAtLevel(level)*100)
	// Output:
	// level 102/255, delivers 0.506, saves 58% of backlight power
}

// Characterisation recovers a device's transfer curve from measured
// samples — what the paper does with a digital camera per PDA model.
func ExampleFitTransfer() {
	samples := display.IPAQ3650().CalibrationSamples(24)
	fitted, rmse, err := display.FitTransfer("bench-ipaq", samples, display.FitOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gamma %.1f, knee %.1f, RMSE < 0.01: %v\n",
		fitted.ResponseGamma, fitted.ResponseKnee, rmse < 0.01)
	// Output:
	// gamma 1.8, knee 0.3, RMSE < 0.01: true
}
