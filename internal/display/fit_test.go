package display

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitRecoversEachDevice(t *testing.T) {
	for _, dev := range Devices() {
		samples := dev.CalibrationSamples(24)
		fit, rmse, err := FitTransfer(dev.Name+"-fit", samples, FitOptions{})
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if rmse > 0.01 {
			t.Errorf("%s: fit RMSE %v too high on noiseless samples", dev.Name, rmse)
		}
		// The fitted curve must reproduce the transfer everywhere, not
		// just at sample points.
		for level := 0; level <= MaxLevel; level += 5 {
			want := dev.Luminance(level)
			got := fit.Luminance(level)
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s: fitted curve off at level %d: %v vs %v",
					dev.Name, level, got, want)
			}
		}
	}
}

func TestFitSurvivesMeasurementNoise(t *testing.T) {
	dev := IPAQ3650()
	rng := rand.New(rand.NewSource(5))
	samples := dev.CalibrationSamples(32)
	for i := range samples {
		samples[i].Luminance += rng.NormFloat64() * 0.01
		if samples[i].Luminance < 0 {
			samples[i].Luminance = 0
		}
	}
	fit, rmse, err := FitTransfer("noisy", samples, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 0.03 {
		t.Errorf("noisy fit RMSE = %v", rmse)
	}
	// The backlight levels the fitted curve would pick must agree with
	// the true device within a few levels — that is what playback needs.
	fit.MinLevel = dev.MinLevel
	fit.Transmittance = dev.Transmittance
	fit.BacklightIdleWatts = dev.BacklightIdleWatts
	fit.BacklightMaxWatts = dev.BacklightMaxWatts + 0.0001
	for _, target := range []float64{0.2, 0.4, 0.6, 0.8} {
		a := dev.LevelFor(target)
		b := fit.LevelFor(target)
		if absInt(a-b) > 12 {
			t.Errorf("target %v: true level %d vs fitted %d", target, a, b)
		}
	}
}

func TestFitValidation(t *testing.T) {
	dev := IPAQ5555()
	few := dev.CalibrationSamples(3)
	if _, _, err := FitTransfer("x", few, FitOptions{}); err == nil {
		t.Error("too few samples accepted")
	}
	bad := dev.CalibrationSamples(8)
	bad[0].Level = -1
	if _, _, err := FitTransfer("x", bad, FitOptions{}); err == nil {
		t.Error("out-of-range level accepted")
	}
	bad2 := dev.CalibrationSamples(8)
	bad2[3].Luminance = 9
	if _, _, err := FitTransfer("x", bad2, FitOptions{}); err == nil {
		t.Error("implausible luminance accepted")
	}
	// Narrow level span.
	narrow := []Measurement{{10, 0.1}, {20, 0.15}, {30, 0.2}, {40, 0.22}, {50, 0.25}}
	if _, _, err := FitTransfer("x", narrow, FitOptions{}); err == nil {
		t.Error("narrow sweep accepted")
	}
}

func TestCalibrationSamplesShape(t *testing.T) {
	dev := Zaurus5600()
	s := dev.CalibrationSamples(10)
	if len(s) != 10 || s[0].Level != 0 || s[9].Level != MaxLevel {
		t.Errorf("samples = %+v", s)
	}
	if got := dev.CalibrationSamples(1); len(got) != 2 {
		t.Errorf("n=1 gave %d samples", len(got))
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
