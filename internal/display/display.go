// Package display models the LCD panels and backlights of the handhelds
// used in the paper's evaluation: an HP iPAQ 3650 and a Sharp Zaurus
// SL-5600 (reflective panels with CCFL backlights) and an HP iPAQ 5555
// (transflective panel with a white-LED backlight).
//
// The paper's central device-specific artifact is the backlight→luminance
// transfer function: "measured luminance response to backlight level (set
// by software) is not always linear and is influenced by the quality and
// type of the display" (§2, Figure 7), while luminance is almost linear in
// the displayed white level (Figure 8). This package provides those
// forward transfer curves, the inverse lookup table used at runtime ("a
// simple multiplication, followed by a table look-up", §4.3), the perceived
// intensity model I = ρ·L·Y, and the backlight power curve ("power
// consumption of the LCD is almost proportional to backlight level, but
// little dependent of pixel values", §5).
package display

import (
	"fmt"
	"math"
)

// PanelType enumerates LCD panel constructions (§4.1).
type PanelType int

const (
	// Reflective panels perform best in ambient light.
	Reflective PanelType = iota
	// Transmissive panels rely entirely on the backlight.
	Transmissive
	// Transflective panels combine both; most recent handhelds use them.
	Transflective
)

func (t PanelType) String() string {
	switch t {
	case Reflective:
		return "reflective"
	case Transmissive:
		return "transmissive"
	case Transflective:
		return "transflective"
	default:
		return fmt.Sprintf("PanelType(%d)", int(t))
	}
}

// BacklightType enumerates backlight sources (§2).
type BacklightType int

const (
	// CCFL is a cold cathode fluorescent lamp: high-voltage AC drive,
	// suited to larger panels, with a minimum stable drive level.
	CCFL BacklightType = iota
	// LED is a white-LED array: simple drive circuitry, lower power,
	// faster response; increasingly used in small devices.
	LED
)

func (t BacklightType) String() string {
	switch t {
	case CCFL:
		return "CCFL"
	case LED:
		return "LED"
	default:
		return fmt.Sprintf("BacklightType(%d)", int(t))
	}
}

// MaxLevel is the maximum software-settable backlight level.
const MaxLevel = 255

// Profile describes one device's display subsystem. All luminance values
// are normalised so that a full-white frame at full backlight measures 1.0.
type Profile struct {
	Name      string
	Panel     PanelType
	Backlight BacklightType

	// Transmittance is ρ in I = ρ·L·Y, the fraction of backlight
	// luminance passed by a fully open (white) LCD cell.
	Transmittance float64

	// MinLevel is the lowest stable backlight drive level; CCFL tubes
	// cannot be dimmed arbitrarily low without extinguishing.
	MinLevel int

	// ReflectiveFloor is the residual relative luminance at backlight 0
	// due to the reflective path of the panel (nonzero for reflective
	// and transflective panels under ambient light).
	ReflectiveFloor float64

	// ResponseGamma and ResponseKnee shape the measured, nonlinear
	// backlight→luminance curve (see Luminance).
	ResponseGamma float64
	ResponseKnee  float64

	// PanelGamma is the mild nonlinearity of luminance vs displayed
	// white level; near 1.0 on the measured devices (Figure 8).
	PanelGamma float64

	// BacklightIdleWatts is the driver overhead at level 0 and
	// BacklightMaxWatts the total backlight power at level 255; power
	// interpolates almost linearly between them (§5).
	BacklightIdleWatts float64
	BacklightMaxWatts  float64

	// PanelWatts is the panel logic/driver power, independent of content.
	PanelWatts float64

	inverse *[MaxLevel + 1]int // lazily built via BuildInverse
}

// Luminance returns the normalised screen luminance of a full-white frame
// at the given backlight level: the device's measured transfer function
// (Figure 7). The curve blends a power-law segment with a soft knee so
// that each backlight technology exhibits its characteristic shape, plus
// the panel's reflective floor.
func (p *Profile) Luminance(level int) float64 {
	b := clampLevel(level)
	x := float64(b) / MaxLevel
	resp := math.Pow(x, p.ResponseGamma)
	if p.ResponseKnee > 0 {
		// Soft saturation knee: CCFL tubes approach peak brightness
		// before maximum drive; LEDs stay closer to the power law.
		resp = (1 + p.ResponseKnee) * resp / (1 + p.ResponseKnee*resp)
	}
	return p.ReflectiveFloor + (1-p.ReflectiveFloor)*resp
}

// WhiteResponse returns the normalised measured luminance when a solid
// frame of the given white value (0..255) is displayed at the given
// backlight level — Figure 8's experiment. It is almost linear in white.
func (p *Profile) WhiteResponse(white int, level int) float64 {
	w := float64(clampLevel(white)) / MaxLevel
	return p.Luminance(level) * math.Pow(w, p.PanelGamma)
}

// PerceivedIntensity returns I = ρ·L·Y for a pixel of normalised
// luminance y displayed at the given backlight level.
func (p *Profile) PerceivedIntensity(level int, y float64) float64 {
	return p.Transmittance * p.Luminance(level) * y
}

// BuildInverse precomputes the inverse transfer lookup table. It is called
// automatically by LevelFor but may be invoked eagerly (the server does so
// during the negotiation phase).
func (p *Profile) BuildInverse() {
	if p.inverse != nil {
		return
	}
	var lut [MaxLevel + 1]int
	for i := range lut {
		target := float64(i) / MaxLevel
		lut[i] = p.searchLevel(target)
	}
	p.inverse = &lut
}

// searchLevel finds the minimal backlight level whose luminance reaches
// target, by binary search over the monotone transfer curve.
func (p *Profile) searchLevel(target float64) int {
	if p.Luminance(MaxLevel) < target {
		return MaxLevel
	}
	lo, hi := p.MinLevel, MaxLevel
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Luminance(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LevelFor returns the minimal backlight level that achieves the given
// normalised luminance (0..1): the runtime operation of the paper's
// client — a multiply to index the table, then a lookup. Levels below the
// device's minimum stable drive are raised to MinLevel.
func (p *Profile) LevelFor(luminance float64) int {
	p.BuildInverse()
	if luminance <= 0 {
		return p.MinLevel
	}
	if luminance >= 1 {
		return MaxLevel
	}
	return p.inverse[int(luminance*MaxLevel+0.5)]
}

// BacklightPower returns the backlight power draw in watts at the given
// level. The measured curve is almost proportional to level; CCFL adds a
// small inverter overhead with a mild superlinearity at high drive.
func (p *Profile) BacklightPower(level int) float64 {
	x := float64(clampLevel(level)) / MaxLevel
	shape := x
	if p.Backlight == CCFL {
		// Inverter losses grow slightly faster than light output.
		shape = 0.9*x + 0.1*x*x
	}
	return p.BacklightIdleWatts + (p.BacklightMaxWatts-p.BacklightIdleWatts)*shape
}

// SavingsAtLevel returns the fraction of full-backlight power saved when
// running at the given level: the quantity plotted in Figures 6 and 9.
func (p *Profile) SavingsAtLevel(level int) float64 {
	full := p.BacklightPower(MaxLevel)
	if full <= 0 {
		return 0
	}
	return 1 - p.BacklightPower(level)/full
}

func clampLevel(v int) int {
	if v < 0 {
		return 0
	}
	if v > MaxLevel {
		return MaxLevel
	}
	return v
}

// Validate reports whether the profile's parameters are physically
// meaningful; it is run on profiles received over the wire during the
// streaming negotiation phase.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("display: profile has no name")
	case p.Transmittance <= 0 || p.Transmittance > 1:
		return fmt.Errorf("display: %s: transmittance %v outside (0,1]", p.Name, p.Transmittance)
	case p.MinLevel < 0 || p.MinLevel >= MaxLevel:
		return fmt.Errorf("display: %s: min level %d outside [0,255)", p.Name, p.MinLevel)
	case p.ReflectiveFloor < 0 || p.ReflectiveFloor >= 1:
		return fmt.Errorf("display: %s: reflective floor %v outside [0,1)", p.Name, p.ReflectiveFloor)
	case p.ResponseGamma <= 0:
		return fmt.Errorf("display: %s: response gamma %v not positive", p.Name, p.ResponseGamma)
	case p.ResponseKnee < 0:
		return fmt.Errorf("display: %s: response knee %v negative", p.Name, p.ResponseKnee)
	case p.PanelGamma <= 0:
		return fmt.Errorf("display: %s: panel gamma %v not positive", p.Name, p.PanelGamma)
	case p.BacklightIdleWatts < 0 || p.BacklightMaxWatts <= p.BacklightIdleWatts:
		return fmt.Errorf("display: %s: backlight power range [%v,%v] invalid",
			p.Name, p.BacklightIdleWatts, p.BacklightMaxWatts)
	case p.PanelWatts < 0:
		return fmt.Errorf("display: %s: panel power %v negative", p.Name, p.PanelWatts)
	}
	return nil
}
