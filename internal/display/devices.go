package display

// The three devices characterised in §5. Parameter values are modelled on
// the qualitative behaviour the paper reports: each display technology
// shows a different backlight→luminance shape (Figure 7), luminance is
// nearly linear in white level (Figure 8), and on the iPAQ 5555 the LED
// backlight at full drive accounts for roughly 25–30% of whole-device
// power during playback (§4).

// IPAQ5555 models the HP iPAQ h5555: transflective panel, white-LED
// backlight — the device used for the paper's power measurements.
func IPAQ5555() *Profile {
	return &Profile{
		Name:               "ipaq5555",
		Panel:              Transflective,
		Backlight:          LED,
		Transmittance:      0.072,
		MinLevel:           4,
		ReflectiveFloor:    0.035,
		ResponseGamma:      0.88, // concave: brightness rises fast, then eases off
		ResponseKnee:       0.18,
		PanelGamma:         1.04,
		BacklightIdleWatts: 0.020,
		BacklightMaxWatts:  0.600,
		PanelWatts:         0.180,
	}
}

// IPAQ3650 models the HP iPAQ h3650: reflective panel with a CCFL
// frontlight; the tube needs a minimum drive level and its light output
// has a pronounced S-shape versus drive.
func IPAQ3650() *Profile {
	return &Profile{
		Name:               "ipaq3650",
		Panel:              Reflective,
		Backlight:          CCFL,
		Transmittance:      0.055,
		MinLevel:           20,
		ReflectiveFloor:    0.060,
		ResponseGamma:      1.80, // slow start at low drive
		ResponseKnee:       0.30, // mild saturation near full drive
		PanelGamma:         1.08,
		BacklightIdleWatts: 0.060, // CCFL inverter overhead
		BacklightMaxWatts:  0.750,
		PanelWatts:         0.210,
	}
}

// Zaurus5600 models the Sharp Zaurus SL-5600: reflective panel, CCFL
// frontlight, with a more convex response than the iPAQ 3650.
func Zaurus5600() *Profile {
	return &Profile{
		Name:               "zaurus5600",
		Panel:              Reflective,
		Backlight:          CCFL,
		Transmittance:      0.060,
		MinLevel:           16,
		ReflectiveFloor:    0.050,
		ResponseGamma:      1.30,
		ResponseKnee:       0,
		PanelGamma:         1.06,
		BacklightIdleWatts: 0.050,
		BacklightMaxWatts:  0.700,
		PanelWatts:         0.200,
	}
}

// Devices returns the three characterised profiles in the order the paper
// lists them.
func Devices() []*Profile {
	return []*Profile{IPAQ3650(), Zaurus5600(), IPAQ5555()}
}

// ByName returns the named device profile, or nil if unknown.
func ByName(name string) *Profile {
	for _, d := range Devices() {
		if d.Name == name {
			return d
		}
	}
	return nil
}
