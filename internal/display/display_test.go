package display

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDevicesValidate(t *testing.T) {
	for _, d := range Devices() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if d := ByName("ipaq5555"); d == nil || d.Backlight != LED {
		t.Errorf("ByName(ipaq5555) = %+v", d)
	}
	if d := ByName("nokia"); d != nil {
		t.Errorf("ByName(nokia) = %+v, want nil", d)
	}
}

func TestLuminanceEndpoints(t *testing.T) {
	for _, d := range Devices() {
		if got := d.Luminance(MaxLevel); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: Luminance(255) = %v, want 1", d.Name, got)
		}
		if got := d.Luminance(0); math.Abs(got-d.ReflectiveFloor) > 1e-9 {
			t.Errorf("%s: Luminance(0) = %v, want floor %v", d.Name, got, d.ReflectiveFloor)
		}
	}
}

func TestLuminanceMonotone(t *testing.T) {
	for _, d := range Devices() {
		prev := -1.0
		for b := 0; b <= MaxLevel; b++ {
			l := d.Luminance(b)
			if l < prev {
				t.Fatalf("%s: Luminance not monotone at level %d (%v < %v)", d.Name, b, l, prev)
			}
			prev = l
		}
	}
}

func TestLuminanceIsNonlinear(t *testing.T) {
	// Figure 7: the measured curve departs visibly from the identity
	// line; check the midpoint deviation exceeds 5% on every device.
	for _, d := range Devices() {
		mid := d.Luminance(MaxLevel / 2)
		if math.Abs(mid-0.5) < 0.05 {
			t.Errorf("%s: midpoint luminance %v too close to linear", d.Name, mid)
		}
	}
}

func TestDevicesHaveDistinctCurves(t *testing.T) {
	// "Each display technology showed a different transfer characteristic."
	ds := Devices()
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			var maxDiff float64
			for b := 0; b <= MaxLevel; b += 8 {
				d := math.Abs(ds[i].Luminance(b) - ds[j].Luminance(b))
				if d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff < 0.03 {
				t.Errorf("%s and %s transfer curves nearly identical (max diff %v)",
					ds[i].Name, ds[j].Name, maxDiff)
			}
		}
	}
}

func TestWhiteResponseNearlyLinear(t *testing.T) {
	// Figure 8: luminance is almost linear in the displayed white level.
	d := IPAQ5555()
	full := d.WhiteResponse(255, MaxLevel)
	for w := 0; w <= 255; w += 15 {
		got := d.WhiteResponse(w, MaxLevel)
		linear := full * float64(w) / 255
		if math.Abs(got-linear) > 0.03 {
			t.Errorf("WhiteResponse(%d) = %v, deviates from linear %v", w, got, linear)
		}
	}
}

func TestWhiteResponseScalesWithBacklight(t *testing.T) {
	d := IPAQ5555()
	// At backlight 128 the whole curve shrinks by the 128-level luminance.
	ratio := d.Luminance(128)
	for w := 16; w <= 255; w += 16 {
		got := d.WhiteResponse(w, 128)
		want := d.WhiteResponse(w, MaxLevel) * ratio
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("WhiteResponse(%d,128) = %v, want %v", w, got, want)
		}
	}
}

func TestLevelForInvertsLuminance(t *testing.T) {
	for _, d := range Devices() {
		for _, target := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			level := d.LevelFor(target)
			if got := d.Luminance(level); got+1e-9 < target-1.0/MaxLevel {
				t.Errorf("%s: LevelFor(%v) = %d gives luminance %v below target",
					d.Name, target, level, got)
			}
			// Minimality: one level lower must not reach the quantised target.
			if level > d.MinLevel {
				q := math.Round(target*MaxLevel) / MaxLevel
				if d.Luminance(level-1) >= q && d.Luminance(level) > d.Luminance(level-1) {
					t.Errorf("%s: LevelFor(%v) = %d not minimal", d.Name, target, level)
				}
			}
		}
	}
}

func TestLevelForExtremes(t *testing.T) {
	d := IPAQ3650()
	if got := d.LevelFor(0); got != d.MinLevel {
		t.Errorf("LevelFor(0) = %d, want MinLevel %d", got, d.MinLevel)
	}
	if got := d.LevelFor(1); got != MaxLevel {
		t.Errorf("LevelFor(1) = %d, want 255", got)
	}
	if got := d.LevelFor(2); got != MaxLevel {
		t.Errorf("LevelFor(2) = %d, want 255", got)
	}
}

func TestBacklightPowerMonotoneAndBounded(t *testing.T) {
	for _, d := range Devices() {
		prev := -1.0
		for b := 0; b <= MaxLevel; b++ {
			p := d.BacklightPower(b)
			if p < prev {
				t.Fatalf("%s: power not monotone at %d", d.Name, b)
			}
			prev = p
		}
		if got := d.BacklightPower(0); math.Abs(got-d.BacklightIdleWatts) > 1e-9 {
			t.Errorf("%s: power(0) = %v, want idle %v", d.Name, got, d.BacklightIdleWatts)
		}
		if got := d.BacklightPower(MaxLevel); math.Abs(got-d.BacklightMaxWatts) > 1e-9 {
			t.Errorf("%s: power(255) = %v, want max %v", d.Name, got, d.BacklightMaxWatts)
		}
	}
}

func TestBacklightPowerAlmostProportional(t *testing.T) {
	// §5: "power consumption of the LCD is almost proportional to
	// backlight level". Check deviation from the idle->max chord is <6%.
	for _, d := range Devices() {
		span := d.BacklightMaxWatts - d.BacklightIdleWatts
		for b := 0; b <= MaxLevel; b += 5 {
			chord := d.BacklightIdleWatts + span*float64(b)/MaxLevel
			if math.Abs(d.BacklightPower(b)-chord) > 0.06*span {
				t.Errorf("%s: power(%d) deviates from proportional by >6%%", d.Name, b)
			}
		}
	}
}

func TestSavingsAtLevel(t *testing.T) {
	d := IPAQ5555()
	if got := d.SavingsAtLevel(MaxLevel); got != 0 {
		t.Errorf("SavingsAtLevel(255) = %v, want 0", got)
	}
	half := d.SavingsAtLevel(127)
	if half < 0.40 || half > 0.55 {
		t.Errorf("SavingsAtLevel(127) = %v, want ~0.5 for near-proportional power", half)
	}
}

func TestPerceivedIntensityModel(t *testing.T) {
	d := IPAQ5555()
	// I = rho * L * Y: doubling Y doubles I; full backlight/white gives rho.
	if got := d.PerceivedIntensity(MaxLevel, 1); math.Abs(got-d.Transmittance) > 1e-9 {
		t.Errorf("I(255,1) = %v, want rho %v", got, d.Transmittance)
	}
	i1 := d.PerceivedIntensity(100, 0.3)
	i2 := d.PerceivedIntensity(100, 0.6)
	if math.Abs(i2-2*i1) > 1e-12 {
		t.Errorf("intensity not linear in Y: %v vs %v", i1, i2)
	}
}

// The compensation identity the whole technique rests on: if the image is
// scaled by k = L(full)/L(dim) without clipping, perceived intensity at the
// dim level matches the original at full backlight.
func TestCompensationIdentity(t *testing.T) {
	for _, d := range Devices() {
		for _, level := range []int{64, 128, 200} {
			k := d.Luminance(MaxLevel) / d.Luminance(level)
			y := 0.3 // dark pixel: k*y stays <= 1, no clipping
			if k*y > 1 {
				continue
			}
			orig := d.PerceivedIntensity(MaxLevel, y)
			comp := d.PerceivedIntensity(level, k*y)
			if math.Abs(orig-comp) > 1e-9 {
				t.Errorf("%s level %d: compensation identity broken: %v vs %v",
					d.Name, level, orig, comp)
			}
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.Transmittance = 0 },
		func(p *Profile) { p.Transmittance = 1.5 },
		func(p *Profile) { p.MinLevel = -1 },
		func(p *Profile) { p.MinLevel = 255 },
		func(p *Profile) { p.ReflectiveFloor = 1 },
		func(p *Profile) { p.ResponseGamma = 0 },
		func(p *Profile) { p.ResponseKnee = -0.1 },
		func(p *Profile) { p.PanelGamma = -1 },
		func(p *Profile) { p.BacklightMaxWatts = 0 },
		func(p *Profile) { p.PanelWatts = -0.1 },
	}
	for i, mutate := range bad {
		p := IPAQ5555()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid profile", i)
		}
	}
}

// Property: for any target luminance, LevelFor returns a level within the
// legal range whose luminance covers the (quantised) target.
func TestLevelForCoversTargetProperty(t *testing.T) {
	for _, d := range Devices() {
		f := func(raw uint16) bool {
			target := float64(raw) / math.MaxUint16
			level := d.LevelFor(target)
			if level < d.MinLevel || level > MaxLevel {
				return false
			}
			q := math.Round(target*MaxLevel) / MaxLevel
			if q > d.Luminance(MaxLevel) {
				return level == MaxLevel
			}
			return d.Luminance(level) >= q-1e-9 || level == d.MinLevel
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// Property: savings decrease as level rises.
func TestSavingsMonotoneProperty(t *testing.T) {
	d := Zaurus5600()
	f := func(a, b uint8) bool {
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		return d.SavingsAtLevel(la) >= d.SavingsAtLevel(lb)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
