package breaker

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// clock is a manually-advanced time source.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *clock { return &clock{now: time.Unix(1_000_000, 0)} }

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// record builds a breaker whose transitions are appended to a log.
func record(t *testing.T, cfg Config) (*Breaker, *clock, *[]string) {
	t.Helper()
	ck := newClock()
	var log []string
	cfg.Now = ck.Now
	cfg.OnStateChange = func(from, to State) {
		log = append(log, fmt.Sprintf("%s->%s", from, to))
	}
	return New(cfg), ck, &log
}

// call runs one admitted call with the given outcome, failing the test
// if the breaker rejects it.
func call(t *testing.T, b *Breaker, success bool) {
	t.Helper()
	done, ok := b.Allow()
	if !ok {
		t.Fatalf("Allow rejected in state %v", b.State())
	}
	done(success)
}

func TestStaysClosedBelowMinSamples(t *testing.T) {
	b, _, _ := record(t, Config{MinSamples: 5, FailureRate: 0.5})
	for i := 0; i < 4; i++ {
		call(t, b, false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v after 4 failures with MinSamples 5, want closed", b.State())
	}
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %v after 5th failure, want open", b.State())
	}
}

func TestFailureRateThreshold(t *testing.T) {
	b, _, _ := record(t, Config{MinSamples: 4, FailureRate: 0.5})
	// 3 successes + 2 failures = 40% failure rate: stays closed.
	for i := 0; i < 3; i++ {
		call(t, b, true)
	}
	call(t, b, false)
	call(t, b, false)
	if b.State() != Closed {
		t.Fatalf("state = %v at 40%% failures, want closed", b.State())
	}
	// One more failure crosses 50%.
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %v at 50%% failures, want open", b.State())
	}
}

func TestOpenRejectsUntilCooldown(t *testing.T) {
	b, ck, _ := record(t, Config{MinSamples: 1, OpenFor: 5 * time.Second})
	call(t, b, false)
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call")
	}
	ck.Advance(4 * time.Second)
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before the cool-down elapsed")
	}
	ck.Advance(time.Second)
	done, ok := b.Allow()
	if !ok {
		t.Fatal("breaker did not admit a probe after the cool-down")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v during probe, want half-open", b.State())
	}
	done(true)
	if b.State() != Closed {
		t.Fatalf("state = %v after probe success, want closed", b.State())
	}
}

func TestHalfOpenFailureReopens(t *testing.T) {
	b, ck, log := record(t, Config{MinSamples: 1, OpenFor: time.Second})
	call(t, b, false) // closed -> open
	ck.Advance(time.Second)
	done, ok := b.Allow()
	if !ok {
		t.Fatal("no probe admitted")
	}
	done(false) // half-open -> open again
	if b.State() != Open {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
	// The full lifecycle so far.
	want := []string{"closed->open", "open->half-open", "half-open->open"}
	if len(*log) != len(want) {
		t.Fatalf("transitions = %v, want %v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, (*log)[i], want[i])
		}
	}
	// And it recovers on the next successful probe.
	ck.Advance(time.Second)
	call(t, b, true)
	if b.State() != Closed {
		t.Fatalf("state = %v after recovery, want closed", b.State())
	}
}

func TestHalfOpenProbeQuota(t *testing.T) {
	b, ck, _ := record(t, Config{MinSamples: 1, OpenFor: time.Second, HalfOpenProbes: 1})
	call(t, b, false)
	ck.Advance(time.Second)
	done, ok := b.Allow()
	if !ok {
		t.Fatal("no probe admitted")
	}
	// The probe slot is taken: further calls are rejected.
	if _, ok := b.Allow(); ok {
		t.Fatal("second concurrent probe admitted with HalfOpenProbes=1")
	}
	done(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestCloseAfterRequiresConsecutiveSuccesses(t *testing.T) {
	b, ck, _ := record(t, Config{MinSamples: 1, OpenFor: time.Second, CloseAfter: 2})
	call(t, b, false)
	ck.Advance(time.Second)
	call(t, b, true)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v after 1/2 probe successes, want half-open", b.State())
	}
	call(t, b, true)
	if b.State() != Closed {
		t.Fatalf("state = %v after 2/2 probe successes, want closed", b.State())
	}
}

func TestWindowExpiresOldFailures(t *testing.T) {
	b, ck, _ := record(t, Config{
		Window: 10 * time.Second, Buckets: 10,
		MinSamples: 3, FailureRate: 0.5,
	})
	call(t, b, false)
	call(t, b, false)
	// Two failures sit in the window; let them expire entirely.
	ck.Advance(11 * time.Second)
	if _, fail := b.Counts(); fail != 0 {
		t.Fatalf("windowed failures = %d after expiry, want 0", fail)
	}
	// A fresh failure alone is below MinSamples: no trip.
	call(t, b, false)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (old failures must have expired)", b.State())
	}
}

func TestDoneIsIdempotent(t *testing.T) {
	b, _, _ := record(t, Config{MinSamples: 2, FailureRate: 0.5})
	done, _ := b.Allow()
	done(false)
	done(false) // must not double-count
	if _, fail := b.Counts(); fail != 1 {
		t.Fatalf("failures = %d after duplicate done, want 1", fail)
	}
}

func TestTripResetsWindow(t *testing.T) {
	b, ck, _ := record(t, Config{MinSamples: 1, OpenFor: time.Second})
	call(t, b, false)
	if succ, fail := b.Counts(); succ != 0 || fail != 0 {
		t.Fatalf("counts = %d/%d after trip, want a reset window", succ, fail)
	}
	// After recovery a single old-style failure must re-trip only on its
	// own merits (MinSamples 1 here, so it does — but from a clean slate).
	ck.Advance(time.Second)
	call(t, b, true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestConcurrentCalls(t *testing.T) {
	b := New(Config{MinSamples: 1000000}) // never trips; exercises races
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if done, ok := b.Allow(); ok {
					done(j%2 == 0)
				}
			}
		}(i)
	}
	wg.Wait()
	succ, fail := b.Counts()
	if succ+fail != 8*200 {
		t.Fatalf("recorded %d samples, want %d", succ+fail, 8*200)
	}
}
