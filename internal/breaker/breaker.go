// Package breaker implements a three-state circuit breaker for calls to
// an unreliable dependency. The streaming tier uses one breaker per
// upstream origin: while an origin is healthy the breaker is Closed and
// calls flow; once the failure rate over a rolling window trips the
// threshold the breaker Opens and callers skip the origin entirely
// (failing over to another, or serving stale) instead of burning
// timeouts against a dead peer; after a cool-down the breaker admits a
// single HalfOpen probe, and only a probe success closes it again.
//
// The clock is injectable, so every transition is unit-testable without
// sleeping, and state changes can be observed through a callback (the
// proxy exports them as metrics and drives failover ordering off them).
package breaker

import (
	"sync"
	"time"
)

// State is the breaker's admission state. The numeric values are stable
// and exported as a metric: 0 closed (healthy), 1 half-open (probing),
// 2 open (shedding).
type State int

const (
	// Closed admits every call; failures are tallied in the rolling
	// window.
	Closed State = iota
	// HalfOpen admits up to Config.HalfOpenProbes concurrent probe
	// calls; a failure reopens, enough successes close.
	HalfOpen
	// Open rejects every call until Config.OpenFor has elapsed.
	Open
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// Config tunes a Breaker. The zero value gets sensible defaults from
// New: a 10s window in 10 buckets, 50% failure rate over at least 5
// samples to trip, 5s open, one half-open probe, one success to close.
type Config struct {
	// Window is the width of the rolling failure-rate window.
	Window time.Duration
	// Buckets is the window's rotation granularity; old samples expire
	// one bucket (Window/Buckets) at a time.
	Buckets int
	// FailureRate is the windowed failure fraction (0..1] at or above
	// which a Closed breaker trips.
	FailureRate float64
	// MinSamples is the minimum number of windowed samples before the
	// rate is considered meaningful; below it the breaker never trips.
	MinSamples int
	// OpenFor is how long an Open breaker rejects before admitting
	// half-open probes.
	OpenFor time.Duration
	// HalfOpenProbes caps concurrent calls admitted while HalfOpen.
	HalfOpenProbes int
	// CloseAfter is the number of consecutive half-open successes that
	// close the breaker.
	CloseAfter int
	// Now overrides the clock (tests drive transitions deterministically).
	Now func() time.Time
	// OnStateChange, when set, observes every transition. It is called
	// outside the breaker's lock, in transition order per breaker.
	OnStateChange func(from, to State)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.Buckets <= 0 {
		c.Buckets = 10
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket is one slice of the rolling window.
type bucket struct {
	succ, fail int
}

// Breaker is a three-state circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg Config

	mu       sync.Mutex
	state    State
	openedAt time.Time
	buckets  []bucket
	cur      int
	curStart time.Time
	probes   int // outstanding half-open probes
	hoSucc   int // consecutive half-open successes
}

// New builds a breaker in the Closed state.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, buckets: make([]bucket, cfg.Buckets)}
}

// transition records a state change; the returned thunk invokes the
// callback and must run after the lock is released.
func (b *Breaker) transition(to State) func() {
	from := b.state
	b.state = to
	if cb := b.cfg.OnStateChange; cb != nil {
		return func() { cb(from, to) }
	}
	return func() {}
}

// advance expires window buckets older than now.
func (b *Breaker) advance(now time.Time) {
	width := b.cfg.Window / time.Duration(len(b.buckets))
	if b.curStart.IsZero() {
		b.curStart = now
		return
	}
	steps := int(now.Sub(b.curStart) / width)
	if steps <= 0 {
		return
	}
	if steps >= len(b.buckets) {
		for i := range b.buckets {
			b.buckets[i] = bucket{}
		}
		b.curStart = now
		return
	}
	for i := 0; i < steps; i++ {
		b.cur = (b.cur + 1) % len(b.buckets)
		b.buckets[b.cur] = bucket{}
	}
	b.curStart = b.curStart.Add(width * time.Duration(steps))
}

func (b *Breaker) countsLocked() (succ, fail int) {
	for _, bk := range b.buckets {
		succ += bk.succ
		fail += bk.fail
	}
	return succ, fail
}

func (b *Breaker) resetWindowLocked(now time.Time) {
	for i := range b.buckets {
		b.buckets[i] = bucket{}
	}
	b.cur = 0
	b.curStart = now
}

// Allow asks to make one call. When admitted it returns a done callback
// that MUST be invoked exactly once with the call's outcome; when the
// breaker is Open (and the cool-down has not elapsed) or the half-open
// probe quota is taken, it returns (nil, false) and the caller should
// fail over or shed.
func (b *Breaker) Allow() (done func(success bool), ok bool) {
	b.mu.Lock()
	now := b.cfg.Now()
	b.advance(now)
	notify := func() {}
	switch b.state {
	case Open:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			b.mu.Unlock()
			return nil, false
		}
		notify = b.transition(HalfOpen)
		b.probes = 0
		b.hoSucc = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.mu.Unlock()
			notify()
			return nil, false
		}
		b.probes++
	}
	b.mu.Unlock()
	notify()
	var once sync.Once
	return func(success bool) { once.Do(func() { b.done(success) }) }, true
}

// done settles one admitted call.
func (b *Breaker) done(success bool) {
	b.mu.Lock()
	now := b.cfg.Now()
	b.advance(now)
	if success {
		b.buckets[b.cur].succ++
	} else {
		b.buckets[b.cur].fail++
	}
	notify := func() {}
	switch b.state {
	case Closed:
		if !success {
			succ, fail := b.countsLocked()
			if succ+fail >= b.cfg.MinSamples &&
				float64(fail)/float64(succ+fail) >= b.cfg.FailureRate {
				notify = b.transition(Open)
				b.openedAt = now
				b.resetWindowLocked(now)
			}
		}
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			notify = b.transition(Open)
			b.openedAt = now
			b.hoSucc = 0
		} else {
			b.hoSucc++
			if b.hoSucc >= b.cfg.CloseAfter {
				notify = b.transition(Closed)
				b.resetWindowLocked(now)
			}
		}
	case Open:
		// A straggler from before the trip; its sample is recorded, the
		// state machine ignores it.
	}
	b.mu.Unlock()
	notify()
}

// State returns the breaker's current state. An Open breaker whose
// cool-down has elapsed still reports Open until a call (or probe) is
// admitted — transitions happen on Allow, not on observation.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counts returns the windowed success/failure tallies (for metrics and
// debugging).
func (b *Breaker) Counts() (successes, failures int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance(b.cfg.Now())
	return b.countsLocked()
}
