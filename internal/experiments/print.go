package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/power"
)

// The Fprint helpers render each experiment the way the paper's figures
// label their axes, so the cmd/experiments output reads side by side with
// the PDF.

// FprintFig3 renders the histogram-properties summary.
func FprintFig3(w io.Writer, r Fig3Result) {
	fmt.Fprintf(w, "Figure 3 — image histogram properties (sample dark frame)\n")
	fmt.Fprintf(w, "  pixels          %d\n", r.Hist.Total)
	fmt.Fprintf(w, "  average point   %.1f\n", r.Average)
	fmt.Fprintf(w, "  dynamic range   [%d, %d] (%d levels)\n", r.Min, r.Max, r.DynamicRange)
	fmt.Fprintf(w, "  histogram (16 buckets of 16 levels):\n")
	for b := 0; b < 16; b++ {
		var n uint64
		for v := b * 16; v < (b+1)*16; v++ {
			n += r.Hist.Count[v]
		}
		bar := strings.Repeat("#", int(n*48/(r.Hist.Total+1)))
		fmt.Fprintf(w, "    %3d-%3d %7d %s\n", b*16, (b+1)*16-1, n, bar)
	}
}

// FprintFig4 renders the camera-validation comparison.
func FprintFig4(w io.Writer, r Fig4Result) {
	fmt.Fprintf(w, "Figure 4 — original (full backlight) vs compensated (%d/255 backlight) camera snapshots\n", r.DimLevel)
	fmt.Fprintf(w, "  reference avg brightness    %.1f\n", r.RefAvg)
	fmt.Fprintf(w, "  compensated avg brightness  %.1f\n", r.CompAvg)
	fmt.Fprintf(w, "  mean shift (compensated)    %+.1f\n", r.MeanShift)
	fmt.Fprintf(w, "  mean shift (no compensation) %+.1f\n", r.UncompShift)
	fmt.Fprintf(w, "  histogram intersection      %.3f\n", r.Intersection)
	fmt.Fprintf(w, "  earth mover's distance      %.1f levels\n", r.EMD)
}

// FprintFig5 renders the quality trade-off table.
func FprintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5 — quality trade-off: clipped (lost) high-luminance pixels\n")
	fmt.Fprintf(w, "  %-8s %-10s %-10s %s\n", "quality", "cliplevel", "target", "pixels lost")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8.0f %-10d %-10.3f %.2f%%\n",
			r.Quality*100, r.ClipLevel, r.Target, r.Lost*100)
	}
}

// FprintFig6 renders the scene-grouping playback series (subsampled).
func FprintFig6(w io.Writer, r Fig6Result) {
	fmt.Fprintf(w, "Figure 6 — scene grouping during playback (%s, 10%% quality, %d scenes)\n",
		r.Clip, r.Scenes)
	fmt.Fprintf(w, "  %-8s %-10s %-10s %-8s %s\n",
		"t(s)", "frame max", "scene max", "level", "power saved")
	step := len(r.Records) / 40
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.Records); i += step {
		rec := r.Records[i]
		fmt.Fprintf(w, "  %-8.1f %-10.3f %-10.3f %-8d %.1f%%\n",
			float64(rec.Index)/float64(r.FPS),
			rec.MaxLuma/255, rec.Target, rec.Level, rec.PowerSaved*100)
	}
}

// FprintFig7 renders the brightness-vs-backlight characterisation.
func FprintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintf(w, "Figure 7 — measured brightness vs backlight value (white screen)\n")
	if len(rows) == 0 {
		return
	}
	devs := make([]string, 0, len(rows[0].Measured))
	for name := range rows[0].Measured {
		devs = append(devs, name)
	}
	sort.Strings(devs)
	fmt.Fprintf(w, "  %-10s", "backlight")
	for _, d := range devs {
		fmt.Fprintf(w, " %-12s", d)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10d", r.Level)
		for _, d := range devs {
			fmt.Fprintf(w, " %-12.1f", r.Measured[d])
		}
		fmt.Fprintln(w)
	}
}

// FprintFig8 renders the brightness-vs-white characterisation.
func FprintFig8(w io.Writer, dev string, rows []Fig8Row) {
	fmt.Fprintf(w, "Figure 8 — measured brightness vs white level (%s)\n", dev)
	fmt.Fprintf(w, "  %-8s %-14s %s\n", "white", "backlight=255", "backlight=128")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %-14.1f %.1f\n", r.White, r.AtFull, r.AtHalf)
	}
}

// FprintFig9 renders the simulated backlight savings table.
func FprintFig9(w io.Writer, rows []SavingsRow) {
	fmt.Fprintf(w, "Figure 9 — LCD backlight power savings, simulated (%%)\n")
	fprintSavings(w, rows, func(r SavingsRow) []float64 { return r.Backlight })
}

// FprintFig10 renders the measured total savings table.
func FprintFig10(w io.Writer, rows []SavingsRow) {
	fmt.Fprintf(w, "Figure 10 — total device power savings, DAQ-measured (%%)\n")
	fprintSavings(w, rows, func(r SavingsRow) []float64 { return r.Total })
}

func fprintSavings(w io.Writer, rows []SavingsRow, series func(SavingsRow) []float64) {
	fmt.Fprintf(w, "  %-22s", "clip")
	for _, q := range compensate.QualityLevels {
		fmt.Fprintf(w, " %5.0f%%", q*100)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s", r.Clip)
		for _, v := range series(r) {
			fmt.Fprintf(w, " %5.1f ", v*100)
		}
		fmt.Fprintln(w)
	}
}

// FprintOverhead renders the annotation overhead accounting.
func FprintOverhead(w io.Writer, rows []SavingsRow) {
	fmt.Fprintf(w, "Annotation overhead (§4.3: \"hundreds of bytes\" per clip)\n")
	fmt.Fprintf(w, "  %-22s %-8s %-8s %s\n", "clip", "scenes", "frames", "annotation bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %-8d %-8d %d\n", r.Clip, r.Scenes, r.Frames, r.AnnotationBytes)
	}
}

// FprintPowerBreakdown renders the component power audit (§4 claim).
func FprintPowerBreakdown(w io.Writer) {
	fmt.Fprintf(w, "Power breakdown during playback (backlight at full drive)\n")
	fmt.Fprintf(w, "  %-12s %-10s %-10s %-10s %-10s %-10s %s\n",
		"device", "cpu", "network", "panel", "backlight", "total", "backlight share")
	for _, dev := range display.Devices() {
		m := power.DefaultModel(dev)
		s := power.State{Decoding: true, NetworkActive: true, BacklightLevel: display.MaxLevel}
		total := m.Instant(s)
		fmt.Fprintf(w, "  %-12s %-10.2f %-10.2f %-10.2f %-10.2f %-10.2f %.1f%%\n",
			dev.Name, m.CPUDecodeWatts, m.NetworkWatts, dev.PanelWatts,
			dev.BacklightPower(display.MaxLevel), total, m.BacklightShare()*100)
	}
}

// FprintThresholds renders the scene-threshold ablation.
func FprintThresholds(w io.Writer, rows []ThresholdRow) {
	fmt.Fprintf(w, "Ablation — scene threshold and minimum interval (10%% quality)\n")
	fmt.Fprintf(w, "  %-10s %-10s %-8s %-10s %-10s %s\n",
		"threshold", "min(frm)", "scenes", "savings%", "switches", "max step")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10.2f %-10d %-8d %-10.1f %-10d %d\n",
			r.Threshold, r.MinInterval, r.Scenes, r.Savings*100, r.Switches, r.MaxStep)
	}
}

// FprintGranularity renders the per-scene vs per-frame ablation.
func FprintGranularity(w io.Writer, rows []GranularityRow) {
	fmt.Fprintf(w, "Ablation — backlight update granularity (10%% quality)\n")
	fmt.Fprintf(w, "  %-10s %-10s %-10s %s\n", "mode", "savings%", "switches", "max step")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-10.1f %-10d %d\n", r.Mode, r.Savings*100, r.Switches, r.MaxStep)
	}
}

// FprintBaselines renders the baseline policy comparison.
func FprintBaselines(w io.Writer, budget float64, rows []baseline.Result) {
	fmt.Fprintf(w, "Baseline comparison (%.0f%% quality budget)\n", budget*100)
	fmt.Fprintf(w, "  %-14s %-10s %-10s %-12s %-10s %s\n",
		"strategy", "savings%", "switches", "switch/sec", "max step", "violations%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %-10.1f %-10d %-12.2f %-10d %.1f\n",
			r.Strategy, r.BacklightSavings*100, r.Switches, r.SwitchesPerSec,
			r.MaxStep, r.ViolationRate*100)
	}
}

// FprintTransfer renders the transfer-awareness ablation.
func FprintTransfer(w io.Writer, rows []TransferRow) {
	fmt.Fprintf(w, "Ablation — inverse-LUT vs naive linear backlight mapping (10%% quality)\n")
	fmt.Fprintf(w, "  %-12s %-12s %-12s %s\n", "device", "LUT sav%", "naive sav%", "naive underlit%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-12.1f %-12.1f %.1f\n",
			r.Device, r.LUTSavings*100, r.NaiveSavings*100, r.NaiveUnderlit*100)
	}
}

// FprintMethods renders the compensation-method ablation.
func FprintMethods(w io.Writer, rows []MethodRow) {
	fmt.Fprintf(w, "Ablation — contrast enhancement vs brightness compensation\n")
	fmt.Fprintf(w, "  %-12s %-12s %-12s %s\n", "method", "mean err", "max err", "clipped%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-12.4f %-12.4f %.2f\n",
			r.Method, r.MeanAbsErr, r.MaxErr, r.Clipped*100)
	}
}

// FprintDetectors renders the scene-detector ablation.
func FprintDetectors(w io.Writer, clip string, rows []DetectorRow) {
	fmt.Fprintf(w, "Ablation — scene detector: max-luminance heuristic vs EMD histogram (%s)\n", clip)
	fmt.Fprintf(w, "  %-16s %-8s %-12s %-10s %s\n", "detector", "scenes", "precision", "recall", "savings%@10")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %-8d %-12.2f %-10.2f %.1f\n",
			r.Detector, r.Scenes, r.Precision, r.Recall, r.Savings*100)
	}
}

// FprintHardware renders the hardware-steps ablation.
func FprintHardware(w io.Writer, rows []HardwareRow) {
	fmt.Fprintf(w, "Ablation — backlight driver hardware resolution (10%% quality)\n")
	fmt.Fprintf(w, "  %-8s %-12s %s\n", "steps", "savings%", "loss vs continuous (pts)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %-12.1f %.2f\n", r.Steps, r.Savings*100, r.LossPts*100)
	}
}
