// Package experiments regenerates every figure of the paper's evaluation.
// Each Fig* function produces the data series behind the corresponding
// figure; the Fprint* helpers render them as text tables. cmd/experiments
// prints them all; the repository-root benchmarks wrap each generator so
// `go test -bench` both times and reproduces the evaluation.
package experiments

import (
	"repro/internal/camera"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/histogram"
	"repro/internal/pixel"
	"repro/internal/scene"
	"repro/internal/video"
)

// Options scales the experiment workloads. The defaults trade clip length
// for runtime while preserving per-scene statistics; pass
// DurationScale 1.0 for paper-length clips.
type Options struct {
	Library video.LibraryOptions
	Device  *display.Profile
}

// Default returns options sized to regenerate all figures in seconds.
func Default() Options {
	return Options{
		Library: video.LibraryOptions{W: 80, H: 60, FPS: 8, DurationScale: 0.15},
		Device:  display.IPAQ5555(),
	}
}

// sampleDarkFrame renders a representative dark news-style frame (used by
// Figures 3–5: dark background, sparse bright highlights).
func sampleDarkFrame(opt Options) *frame.Frame {
	c := video.MustNew("sample", opt.Library.W, opt.Library.H, opt.Library.FPS, 77,
		[]video.SceneSpec{{
			Frames: 2, BaseLuma: 0.18, LumaSpread: 0.14, MaxLuma: 0.92,
			HighlightFrac: 0.012, Chroma: 0.3,
		}})
	return c.Frame(0)
}

// --- Figure 3: image histogram properties ---

// Fig3Result captures the histogram properties the paper's Figure 3
// annotates: the average point and the dynamic range.
type Fig3Result struct {
	Hist         *histogram.H
	Average      float64
	Min, Max     int
	DynamicRange int
}

// Fig3 computes histogram properties of the sample frame.
func Fig3(opt Options) Fig3Result {
	h := histogram.FromFrame(sampleDarkFrame(opt))
	return Fig3Result{
		Hist:         h,
		Average:      h.Average(),
		Min:          h.Min(),
		Max:          h.Max(),
		DynamicRange: h.DynamicRange(),
	}
}

// --- Figure 4: camera validation of compensation ---

// Fig4Result is the original-vs-compensated snapshot comparison of
// Figure 4 (reference at full backlight, compensated at ~50% backlight).
type Fig4Result struct {
	DimLevel     int
	RefAvg       float64
	CompAvg      float64
	MeanShift    float64
	Intersection float64
	EMD          float64
	// UncompShift is the mean shift when the backlight is dimmed without
	// compensating — the failure the technique avoids.
	UncompShift float64
}

// Fig4 photographs the sample frame before and after compensation.
func Fig4(opt Options) Fig4Result {
	dev := opt.Device
	cam := camera.Default()
	f := sampleDarkFrame(opt)

	// Target the scene ceiling at a 5% clipping budget, as the paper's
	// news-clip example does, dimming to roughly half backlight.
	h := histogram.FromFrame(f)
	target := compensate.SceneTarget(h, 0.05)
	level := dev.LevelFor(target)
	comp := core.CompensateFrame(f, target, compensate.ContrastEnhancement)

	withComp := cam.Compare(dev, f, comp, level)
	withoutComp := cam.Compare(dev, f, f, level)
	return Fig4Result{
		DimLevel:     level,
		RefAvg:       withComp.RefAvg,
		CompAvg:      withComp.CompAvg,
		MeanShift:    withComp.MeanShift,
		Intersection: withComp.Intersection,
		EMD:          withComp.EMD,
		UncompShift:  withoutComp.MeanShift,
	}
}

// --- Figure 5: quality trade-off (clipped pixels) ---

// Fig5Row is one quality level's clipping outcome on the sample frame.
type Fig5Row struct {
	Quality   float64
	ClipLevel int     // luminance ceiling after clipping
	Lost      float64 // fraction of pixels actually clipped
	Target    float64 // normalised scene target
}

// Fig5 sweeps the paper's quality levels over the sample frame's
// histogram.
func Fig5(opt Options) []Fig5Row {
	h := histogram.FromFrame(sampleDarkFrame(opt))
	rows := make([]Fig5Row, 0, len(compensate.QualityLevels))
	for _, q := range compensate.QualityLevels {
		lvl := h.ClipLevel(q)
		rows = append(rows, Fig5Row{
			Quality:   q,
			ClipLevel: lvl,
			Lost:      h.ClippedFraction(lvl),
			Target:    float64(lvl) / 255,
		})
	}
	return rows
}

// --- Figure 6: scene grouping during playback ---

// Fig6Result is the per-frame playback series of Figure 6: frame maximum
// luminance, the scene maximum the annotation carries, and the
// instantaneous backlight power saving, at the paper's 10% quality level.
type Fig6Result struct {
	Clip    string
	FPS     int
	Records []core.FrameRecord
	Scenes  int
}

// Fig6 plays one library clip (returnoftheking by default: dark,
// scene-rich) and records the series.
func Fig6(opt Options, clipName string) (Fig6Result, error) {
	if clipName == "" {
		clipName = "returnoftheking"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	track, scenes, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		return Fig6Result{}, err
	}
	rep, err := core.Play(src, track, core.PlaybackOptions{
		Device:   opt.Device,
		Quality:  0.10,
		PerFrame: true,
	})
	if err != nil {
		return Fig6Result{}, err
	}
	return Fig6Result{Clip: clipName, FPS: clip.FPS, Records: rep.PerFrame, Scenes: len(scenes)}, nil
}

// --- Figure 7: measured brightness vs backlight level ---

// Fig7Row is one backlight level's measured brightness per device.
type Fig7Row struct {
	Level    int
	Measured map[string]float64 // device name -> camera-measured brightness (0..255)
}

// Fig7 characterises all three devices with the simulated camera: a white
// screen photographed at increasing backlight levels.
func Fig7(levels []int) []Fig7Row {
	if levels == nil {
		for l := 0; l <= display.MaxLevel; l += 17 {
			levels = append(levels, l)
		}
	}
	cam := camera.Default()
	cam.NoiseSigma = 0
	white := frame.Solid(16, 16, pixel.Gray(255))
	rows := make([]Fig7Row, 0, len(levels))
	for _, l := range levels {
		row := Fig7Row{Level: l, Measured: map[string]float64{}}
		for _, dev := range display.Devices() {
			shot := cam.Snapshot(dev, white, l)
			row.Measured[dev.Name] = shot.AvgLuma()
		}
		rows = append(rows, row)
	}
	return rows
}

// --- Figure 8: measured brightness vs white level ---

// Fig8Row is one white level's measured brightness at two backlight
// settings (255 and 128), on the measurement device.
type Fig8Row struct {
	White  int
	AtFull float64
	AtHalf float64
}

// Fig8 characterises panel response to content on the given device.
func Fig8(dev *display.Profile, whites []int) []Fig8Row {
	if whites == nil {
		for v := 0; v <= 255; v += 17 {
			whites = append(whites, v)
		}
	}
	cam := camera.Default()
	cam.NoiseSigma = 0
	rows := make([]Fig8Row, 0, len(whites))
	for _, v := range whites {
		f := frame.Solid(16, 16, pixel.Gray(uint8(v)))
		rows = append(rows, Fig8Row{
			White:  v,
			AtFull: cam.Snapshot(dev, f, display.MaxLevel).AvgLuma(),
			AtHalf: cam.Snapshot(dev, f, 128).AvgLuma(),
		})
	}
	return rows
}

// --- Figures 9 and 10: the power-savings sweep ---

// SavingsRow is one clip's savings across the paper's quality levels.
type SavingsRow struct {
	Clip string
	// Backlight[q] is the simulated LCD backlight saving (Figure 9) and
	// Total[q] the DAQ-measured whole-device saving (Figure 10) at
	// quality level q.
	Backlight []float64
	Total     []float64
	// Annotation overhead accounting (§5 claim).
	AnnotationBytes int
	Scenes          int
	Frames          int
}

// Sweep runs the full ten-clip, five-quality evaluation and returns one
// row per clip, in the paper's order. It is the workload behind Figures 9
// and 10.
func Sweep(opt Options) ([]SavingsRow, error) {
	rows := make([]SavingsRow, 0, 10)
	for _, name := range video.ClipNames() {
		clip := video.ClipByName(name, opt.Library)
		src := core.ClipSource{Clip: clip}
		track, scenes, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
		if err != nil {
			return nil, err
		}
		row := SavingsRow{
			Clip:            name,
			AnnotationBytes: track.Size(),
			Scenes:          len(scenes),
			Frames:          clip.TotalFrames(),
		}
		reports, err := core.Sweep(src, track, opt.Device)
		if err != nil {
			return nil, err
		}
		for _, rep := range reports {
			row.Backlight = append(row.Backlight, rep.BacklightSavings)
			row.Total = append(row.Total, rep.MeasuredTotalSavings)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
