package experiments

import (
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/annotation"
	"repro/internal/battery"
	"repro/internal/codec"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/netsched"
	"repro/internal/power"
	"repro/internal/roi"
	"repro/internal/scene"
	"repro/internal/video"
)

// These experiments exercise the further annotation applications the paper
// names in §3 (frequency/voltage scaling, network packet optimisations),
// the battery-life motivation of §1, and the end-credits failure mode of
// §4.3 — the extensions DESIGN.md lists beyond the figure reproductions.

// qvgaPixels is the raster the decode-complexity model is calibrated
// against (the PDA decodes QVGA even when the experiment renders smaller).
const qvgaPixels = 320 * 240

// encodeClip compresses a library clip and returns the encoder frames.
func encodeClip(opt Options, clipName string) (*video.Clip, []*codec.EncodedFrame, error) {
	clip := video.ClipByName(clipName, opt.Library)
	if clip == nil {
		return nil, nil, fmt.Errorf("experiments: unknown clip %q", clipName)
	}
	enc, err := codec.NewEncoder(clip.W, clip.H, clip.FPS, 4)
	if err != nil {
		return nil, nil, err
	}
	frames := make([]*codec.EncodedFrame, 0, clip.TotalFrames())
	for i := 0; i < clip.TotalFrames(); i++ {
		ef, err := enc.Encode(clip.Frame(i))
		if err != nil {
			return nil, nil, err
		}
		frames = append(frames, ef)
	}
	return clip, frames, nil
}

// DVSRows runs the annotation-driven frequency/voltage scaling experiment
// on one clip: per-frame decode-cycle annotations vs a reactive governor
// vs static maximum frequency, at a QVGA/15fps decode workload.
func DVSRows(opt Options, clipName string) ([]dvs.Result, error) {
	if clipName == "" {
		clipName = "i_robot"
	}
	clip, frames, err := encodeClip(opt, clipName)
	if err != nil {
		return nil, err
	}
	model := dvs.DefaultCycleModel()
	// The experiment raster is shrunk for speed; complexity is modelled
	// at the raster the PDA actually decodes, so payload sizes are
	// scaled to QVGA too.
	scale := float64(qvgaPixels) / float64(clip.W*clip.H)
	estimates := make([]float64, len(frames))
	for i, ef := range frames {
		scaled := &codec.EncodedFrame{Type: ef.Type, QScale: ef.QScale,
			Data: make([]byte, int(float64(len(ef.Data))*scale))}
		estimates[i] = model.Estimate(scaled, 320, 240)
	}
	actual := dvs.ActualCycles(estimates, 0.08, 42)
	annotated := dvs.Annotate(estimates, 0.10)
	table := dvs.XScale()
	deadline := 1.0 / 15

	governors := []dvs.Governor{
		dvs.StaticMax{},
		// A short window lets the predictor scale down between I frames
		// — and get caught out when the next one lands, the §3 argument
		// against history-based prediction.
		dvs.Reactive{Window: 3},
		dvs.Annotated{Cycles: annotated},
		dvs.Oracle{Cycles: actual},
	}
	results := make([]dvs.Result, 0, len(governors))
	var static float64
	for _, g := range governors {
		res, err := dvs.Simulate(table, g, actual, deadline)
		if err != nil {
			return nil, err
		}
		if res.Governor == "static-max" {
			static = res.EnergyJoules
		}
		if static > 0 {
			res.Savings = 1 - res.EnergyJoules/static
		}
		results = append(results, res)
	}
	return results, nil
}

// FprintDVS renders the DVS experiment.
func FprintDVS(w io.Writer, clip string, rows []dvs.Result) {
	fmt.Fprintf(w, "Application — annotation-driven CPU frequency/voltage scaling (%s, QVGA@15fps)\n", clip)
	fmt.Fprintf(w, "  %-12s %-10s %-10s %-10s %-10s %s\n",
		"governor", "energy(J)", "savings%", "avg MHz", "switches", "deadline misses")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-10.2f %-10.1f %-10.0f %-10d %d (%.1f%%)\n",
			r.Governor, r.EnergyJoules, r.Savings*100, r.AvgMHz, r.Switches,
			r.Misses, r.MissRate*100)
	}
}

// NetworkRows runs the annotation-driven receive scheduling experiment:
// per-scene byte counts let the WNIC burst and doze.
func NetworkRows(opt Options, clipName string) ([]netsched.Result, error) {
	if clipName == "" {
		clipName = "returnoftheking"
	}
	clip, frames, err := encodeClip(opt, clipName)
	if err != nil {
		return nil, err
	}
	src := core.ClipSource{Clip: clip}
	_, scenes, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		return nil, err
	}
	// Per-scene payloads, scaled to the QVGA stream the PDA receives.
	scale := float64(qvgaPixels) / float64(clip.W*clip.H)
	nsScenes := make([]netsched.Scene, 0, len(scenes))
	for _, s := range scenes {
		bytes := 0
		for i := s.Start; i < s.End; i++ {
			bytes += len(frames[i].Data)
		}
		nsScenes = append(nsScenes, netsched.Scene{
			Bytes:   int(float64(bytes) * scale),
			Seconds: float64(s.Len()) / float64(clip.FPS),
		})
	}
	return netsched.DefaultWNIC().Compare(nsScenes, 0.1)
}

// FprintNetwork renders the network scheduling experiment.
func FprintNetwork(w io.Writer, clip string, rows []netsched.Result) {
	fmt.Fprintf(w, "Application — annotation-driven WNIC receive scheduling (%s, QVGA stream)\n", clip)
	fmt.Fprintf(w, "  %-12s %-10s %-10s %-10s %s\n",
		"policy", "energy(J)", "savings%", "sleep%", "wakeups")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-10.2f %-10.1f %-10.1f %d\n",
			r.Policy, r.EnergyJoules, r.Savings*100, r.SleepFraction*100, r.Wakeups)
	}
}

// BatteryRow is one quality level's battery outcome.
type BatteryRow struct {
	Quality    float64
	AvgWatts   float64
	Minutes    float64
	GainOverQ0 float64 // runtime gain vs full backlight
}

// BatteryRows converts the playback sweep of one clip into minutes of
// video per charge on the stock pack.
func BatteryRows(opt Options, clipName string) ([]BatteryRow, error) {
	if clipName == "" {
		clipName = "catwoman"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		return nil, err
	}
	pack := battery.IPAQ1900()
	model := power.DefaultModel(opt.Device)
	rows := make([]BatteryRow, 0, len(track.Quality)+1)

	reports, err := core.Sweep(src, track, opt.Device)
	if err != nil {
		return nil, err
	}
	refMinutes := pack.PlaybackMinutes(model, reports[0].Reference)
	rows = append(rows, BatteryRow{Quality: -1, AvgWatts: model.AveragePower(reports[0].Reference), Minutes: refMinutes})
	for _, rep := range reports {
		min := pack.PlaybackMinutes(model, rep.Trace)
		rows = append(rows, BatteryRow{
			Quality:    rep.Quality,
			AvgWatts:   model.AveragePower(rep.Trace),
			Minutes:    min,
			GainOverQ0: min/refMinutes - 1,
		})
	}
	return rows, nil
}

// FprintBattery renders the battery experiment. The Quality==-1 row is the
// full-backlight reference.
func FprintBattery(w io.Writer, clip string, rows []BatteryRow) {
	fmt.Fprintf(w, "Battery life — minutes of video per charge (%s, 1250mAh Li-ion, Peukert 1.05)\n", clip)
	fmt.Fprintf(w, "  %-12s %-10s %-10s %s\n", "quality", "avg W", "minutes", "runtime gain")
	for _, r := range rows {
		label := "reference"
		if r.Quality >= 0 {
			label = fmt.Sprintf("%.0f%%", r.Quality*100)
		}
		fmt.Fprintf(w, "  %-12s %-10.2f %-10.0f %+.1f%%\n",
			label, r.AvgWatts, r.Minutes, r.GainOverQ0*100)
	}
}

// CreditsRow is one quality level's outcome on the end-credits scenario.
type CreditsRow struct {
	Quality float64
	// PlainSavings / PlainTextClipped: fixed-percentage heuristic.
	PlainSavings     float64
	PlainTextClipped float64
	// ROISavings / ROITextClipped: with the text protected.
	ROISavings     float64
	ROITextClipped float64
}

// CreditsRows runs the end-credits scenario (§4.3's reported failure) with
// and without ROI protection.
func CreditsRows(opt Options) ([]CreditsRow, error) {
	credits := video.Credits(opt.Library.W, opt.Library.H, opt.Library.FPS,
		4*opt.Library.FPS, 9)
	maskOf := func(i int) *roi.Mask {
		m := roi.NewMask(credits.W, credits.H)
		for y := 0; y < credits.H; y++ {
			for x := 0; x < credits.W; x++ {
				if credits.TextAt(i, x, y) {
					m.Set(x, y)
				}
			}
		}
		return m
	}
	cfg := scene.DefaultConfig(credits.Rate)
	plain, _, err := roi.Annotate(credits, func(int) *roi.Mask { return nil }, cfg, nil)
	if err != nil {
		return nil, err
	}
	protected, _, err := roi.Annotate(credits, maskOf, cfg, nil)
	if err != nil {
		return nil, err
	}

	dev := opt.Device
	dev.BuildInverse()
	rows := make([]CreditsRow, 0, len(compensate.QualityLevels))
	n := credits.TotalFrames()
	for qi, q := range compensate.QualityLevels {
		row := CreditsRow{Quality: q}
		var plainPower, roiPower, full float64
		for i := 0; i < n; i++ {
			f := credits.Frame(i)
			m := maskOf(i)
			pt := plain.TargetAt(i, qi)
			rt := protected.TargetAt(i, qi)
			pc, err := roi.ClippedInROI(m, f, pt)
			if err != nil {
				return nil, err
			}
			rc, err := roi.ClippedInROI(m, f, rt)
			if err != nil {
				return nil, err
			}
			row.PlainTextClipped += pc
			row.ROITextClipped += rc
			plainPower += dev.BacklightPower(dev.LevelFor(pt))
			roiPower += dev.BacklightPower(dev.LevelFor(rt))
			full += dev.BacklightPower(255)
		}
		row.PlainTextClipped /= float64(n)
		row.ROITextClipped /= float64(n)
		row.PlainSavings = 1 - plainPower/full
		row.ROISavings = 1 - roiPower/full
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintCredits renders the end-credits scenario.
func FprintCredits(w io.Writer, rows []CreditsRow) {
	fmt.Fprintf(w, "End credits (§4.3 failure mode) — fixed-percentage clipping vs ROI-protected text\n")
	fmt.Fprintf(w, "  %-8s %-14s %-16s %-14s %s\n",
		"quality", "plain sav%", "text clipped%", "ROI sav%", "ROI text clipped%")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8.0f %-14.1f %-16.1f %-14.1f %.1f\n",
			r.Quality*100, r.PlainSavings*100, r.PlainTextClipped*100,
			r.ROISavings*100, r.ROITextClipped*100)
	}
}

// AdaptiveRows simulates a long playback session on an undersized battery
// under three policies: always-lossless (dies early), always-aggressive
// (finishes at the lowest quality), and the battery-aware controller that
// degrades only as far as the budget requires.
func AdaptiveRows(opt Options, repeats int) ([]adaptive.Result, error) {
	if repeats < 1 {
		repeats = 3
	}
	var playlist []*annotation.Track
	for i := 0; i < repeats; i++ {
		for _, name := range []string{"returnoftheking", "catwoman", "i_robot"} {
			clip := video.ClipByName(name, opt.Library)
			track, _, err := core.Annotate(core.ClipSource{Clip: clip},
				scene.DefaultConfig(clip.FPS), nil)
			if err != nil {
				return nil, err
			}
			playlist = append(playlist, track)
		}
	}
	dev := opt.Device
	model := power.DefaultModel(dev)
	pack := battery.IPAQ1900()
	pack.PeukertExponent = 1
	var seconds float64
	for _, tr := range playlist {
		seconds += float64(tr.TotalFrames()) / float64(tr.FPS)
	}
	lossless := core.EstimateAveragePower(playlist[0], dev, model, 0)
	pack.CapacitymAh = lossless * seconds / 3600 / pack.NominalVolts * 1000 * 0.92

	policies := []adaptive.Policy{
		adaptive.Fixed{QualityIndex: 0},
		adaptive.Fixed{QualityIndex: 4},
		adaptive.NewBatteryAware(dev),
	}
	results := make([]adaptive.Result, 0, len(policies))
	for _, p := range policies {
		res, err := adaptive.Simulate(playlist, dev, pack, p)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// FprintAdaptive renders the adaptive-session experiment.
func FprintAdaptive(w io.Writer, rows []adaptive.Result) {
	fmt.Fprintf(w, "Adaptive quality — playlist on an undersized battery\n")
	fmt.Fprintf(w, "  %-16s %-16s %-12s %-14s %s\n",
		"policy", "watched (min)", "completed", "mean quality", "switches")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %-5.1f of %-7.1f %-12v %-14.3f %d\n",
			r.Policy, r.MinutesWatched, r.PlaylistMinutes, r.Completed,
			r.MeanQuality, r.QualityChanges)
	}
}
