package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestDVSRowsShape(t *testing.T) {
	rows, err := DVSRows(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	misses := map[string]int{}
	for _, r := range rows {
		byName[r.Governor] = r.Savings
		misses[r.Governor] = r.Misses
	}
	if byName["static-max"] != 0 {
		t.Errorf("static savings = %v", byName["static-max"])
	}
	if byName["annotated"] <= 0.05 {
		t.Errorf("annotated DVS savings = %v, want substantial", byName["annotated"])
	}
	if byName["oracle"] < byName["annotated"]-1e-9 {
		t.Errorf("oracle %v below annotated %v", byName["oracle"], byName["annotated"])
	}
	if misses["annotated"] != 0 {
		t.Errorf("annotated missed %d deadlines", misses["annotated"])
	}
	if misses["static-max"] != 0 {
		t.Errorf("static missed %d deadlines; workload must be feasible", misses["static-max"])
	}
	// The history-based governor trades quality for savings.
	if misses["reactive"] == 0 && byName["reactive"] >= byName["annotated"] {
		t.Error("reactive governor matched annotated without any misses; scenario too easy")
	}
}

func TestNetworkRowsShape(t *testing.T) {
	rows, err := NetworkRows(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Policy] = r.EnergyJoules
	}
	if byName["annotated"] >= byName["always-on"] {
		t.Errorf("annotated %v J not below always-on %v J",
			byName["annotated"], byName["always-on"])
	}
	if byName["annotated"] >= byName["psm"] {
		t.Errorf("annotated %v J not below PSM %v J", byName["annotated"], byName["psm"])
	}
}

func TestBatteryRowsShape(t *testing.T) {
	rows, err := BatteryRows(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // reference + 5 quality levels
		t.Fatalf("rows = %d", len(rows))
	}
	ref := rows[0]
	if ref.Quality != -1 || ref.GainOverQ0 != 0 {
		t.Errorf("reference row = %+v", ref)
	}
	prev := ref.Minutes
	for _, r := range rows[1:] {
		if r.Minutes < prev-1e-9 {
			t.Errorf("runtime decreased at quality %v: %v -> %v", r.Quality, prev, r.Minutes)
		}
		prev = r.Minutes
	}
	if last := rows[len(rows)-1]; last.GainOverQ0 < 0.10 {
		t.Errorf("20%% quality runtime gain = %v, want >= 10%%", last.GainOverQ0)
	}
}

func TestCreditsRowsShape(t *testing.T) {
	rows, err := CreditsRows(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var plainFails bool
	for _, r := range rows {
		if r.ROITextClipped > 0 {
			t.Errorf("quality %v: ROI-protected text clipped %v", r.Quality, r.ROITextClipped)
		}
		if r.PlainTextClipped > 0.5 {
			plainFails = true
			if r.PlainSavings <= r.ROISavings {
				t.Errorf("quality %v: plain clipped the text without saving more power", r.Quality)
			}
		}
	}
	if !plainFails {
		t.Error("plain heuristic never distorted the credits; scenario does not reproduce §4.3")
	}
}

func TestApplicationPrinters(t *testing.T) {
	opt := fast()
	var buf bytes.Buffer
	dvsRows, err := DVSRows(opt, "")
	if err != nil {
		t.Fatal(err)
	}
	FprintDVS(&buf, "i_robot", dvsRows)
	netRows, err := NetworkRows(opt, "")
	if err != nil {
		t.Fatal(err)
	}
	FprintNetwork(&buf, "returnoftheking", netRows)
	batRows, err := BatteryRows(opt, "")
	if err != nil {
		t.Fatal(err)
	}
	FprintBattery(&buf, "catwoman", batRows)
	creditRows, err := CreditsRows(opt)
	if err != nil {
		t.Fatal(err)
	}
	FprintCredits(&buf, creditRows)
	out := buf.String()
	for _, want := range []string{
		"frequency/voltage", "WNIC", "minutes of video", "End credits",
		"annotated", "psm", "reference",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDVSRowsUnknownClip(t *testing.T) {
	if _, err := DVSRows(fast(), "nope"); err == nil {
		t.Error("unknown clip accepted")
	}
}

func TestQualityMetricsShape(t *testing.T) {
	rows, err := QualityMetrics(fast(), "", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.SnapSSIM < 0.5 || r.SnapSSIM > 1 {
			t.Errorf("quality %v: SSIM = %v", r.Quality, r.SnapSSIM)
		}
		if r.SnapPSNR < 10 {
			t.Errorf("quality %v: PSNR = %v", r.Quality, r.SnapPSNR)
		}
		if i > 0 && r.MeanClipped < rows[i-1].MeanClipped-1e-9 {
			t.Errorf("clipping not monotone at %v", r.Quality)
		}
	}
	// More clipping budget means lower fidelity at the top level than
	// lossless (weak ordering; noise-free snapshots).
	if rows[4].SnapPSNR > rows[0].SnapPSNR+1 {
		t.Errorf("20%% quality PSNR %v above lossless %v", rows[4].SnapPSNR, rows[0].SnapPSNR)
	}
}

func TestQualityMetricsUnknownClip(t *testing.T) {
	if _, err := QualityMetrics(fast(), "nope", 1); err == nil {
		t.Error("unknown clip accepted")
	}
}

func TestAdaptiveRowsShape(t *testing.T) {
	rows, err := AdaptiveRows(fast(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	lossless, aggressive, aware := rows[0], rows[1], rows[2]
	if lossless.Completed {
		t.Error("lossless completed on the undersized pack")
	}
	if !aggressive.Completed || !aware.Completed {
		t.Errorf("aggressive/aware did not complete: %v/%v",
			aggressive.Completed, aware.Completed)
	}
	if aware.MeanQuality >= aggressive.MeanQuality {
		t.Errorf("battery-aware mean quality %v not better than always-aggressive %v",
			aware.MeanQuality, aggressive.MeanQuality)
	}
	if aware.MinutesWatched <= lossless.MinutesWatched {
		t.Error("battery-aware watched no more than lossless")
	}
}
