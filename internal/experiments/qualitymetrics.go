package experiments

import (
	"fmt"
	"io"

	"repro/internal/camera"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/quality"
	"repro/internal/scene"
	"repro/internal/video"
)

// QualityRow summarises the displayed-appearance quality of one quality
// level: camera snapshots of the original frame at full backlight vs the
// compensated frame at the annotated level, scored with PSNR and SSIM,
// plus the realised clipping and the flicker score of the backlight
// schedule. QABS evaluates in PSNR terms; the paper prefers histogram
// comparisons — this experiment provides both sides.
type QualityRow struct {
	Quality     float64
	SnapPSNR    float64 // mean over sampled frames, dB
	SnapSSIM    float64
	MeanClipped float64
	Flicker     float64
}

// QualityMetrics measures displayed-appearance quality across the quality
// sweep on one clip. Every sampleEvery-th frame is photographed (the
// camera path is the slow part).
func QualityMetrics(opt Options, clipName string, sampleEvery int) ([]QualityRow, error) {
	if clipName == "" {
		clipName = "themovie"
	}
	if sampleEvery < 1 {
		sampleEvery = 4
	}
	clip := video.ClipByName(clipName, opt.Library)
	if clip == nil {
		return nil, fmt.Errorf("experiments: unknown clip %q", clipName)
	}
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		return nil, err
	}
	dev := opt.Device
	dev.BuildInverse()
	cam := camera.Default()
	cam.NoiseSigma = 0

	rows := make([]QualityRow, 0, len(track.Quality))
	n := clip.TotalFrames()
	for qi, q := range track.Quality {
		row := QualityRow{Quality: q}
		cursor := track.NewCursor(qi)
		level := display.MaxLevel
		levels := make([]int, 0, n)
		var psnrs, ssims []float64
		var clippedSum float64
		samples := 0
		for i := 0; i < n; i++ {
			target, sceneStart := cursor.Next()
			if sceneStart {
				level = dev.LevelFor(target)
			}
			levels = append(levels, level)
			if i%sampleEvery != 0 {
				continue
			}
			f := clip.Frame(i)
			comp := core.CompensateFrame(f, target, compensate.ContrastEnhancement)
			ref := cam.Snapshot(dev, f, display.MaxLevel)
			got := cam.Snapshot(dev, comp, level)
			p, err := quality.PSNR(ref, got)
			if err != nil {
				return nil, err
			}
			s, err := quality.SSIM(ref, got)
			if err != nil {
				return nil, err
			}
			psnrs = append(psnrs, p)
			ssims = append(ssims, s)
			plan := compensate.Plan{Target: target, K: gainFor(target)}
			clippedSum += plan.ClippedFraction(f)
			samples++
		}
		row.SnapPSNR = quality.Aggregate(psnrs).Mean
		row.SnapSSIM = quality.Aggregate(ssims).Mean
		row.Flicker = quality.FlickerScore(levels, clip.FPS)
		if samples > 0 {
			row.MeanClipped = clippedSum / float64(samples)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func gainFor(target float64) float64 {
	if target <= 0 {
		return 1
	}
	return 1 / target
}

// FprintQuality renders the quality-metrics experiment.
func FprintQuality(w io.Writer, clip string, rows []QualityRow) {
	fmt.Fprintf(w, "Displayed-appearance quality across quality levels (%s, camera snapshots)\n", clip)
	fmt.Fprintf(w, "  %-8s %-12s %-10s %-12s %s\n",
		"quality", "PSNR(dB)", "SSIM", "clipped%", "flicker")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8.0f %-12.1f %-10.3f %-12.2f %.2f\n",
			r.Quality*100, r.SnapPSNR, r.SnapSSIM, r.MeanClipped*100, r.Flicker)
	}
}
