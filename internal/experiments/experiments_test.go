package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/display"
	"repro/internal/video"
)

// fast returns options small enough for unit tests.
func fast() Options {
	return Options{
		Library: video.LibraryOptions{W: 40, H: 30, FPS: 6, DurationScale: 0.15},
		Device:  display.IPAQ5555(),
	}
}

func TestFig3Properties(t *testing.T) {
	r := Fig3(fast())
	if r.Hist.Total == 0 {
		t.Fatal("empty histogram")
	}
	if r.Average <= 0 || r.Average >= 255 {
		t.Errorf("average = %v", r.Average)
	}
	if r.DynamicRange <= 0 || r.Max <= r.Min {
		t.Errorf("range = [%d,%d]", r.Min, r.Max)
	}
	// Dark frame: average well below midpoint, but bright highlights
	// keep the ceiling high.
	if r.Average > 128 {
		t.Errorf("average %v too bright for a dark sample frame", r.Average)
	}
	if r.Max < 180 {
		t.Errorf("max %v; highlights should reach the top range", r.Max)
	}
}

func TestFig4CompensationBeatsNoCompensation(t *testing.T) {
	r := Fig4(fast())
	if r.DimLevel >= display.MaxLevel {
		t.Errorf("dim level = %d, nothing was saved", r.DimLevel)
	}
	if absf(r.MeanShift) >= absf(r.UncompShift) {
		t.Errorf("compensated shift %v not smaller than uncompensated %v",
			r.MeanShift, r.UncompShift)
	}
	if r.Intersection < 0.5 {
		t.Errorf("intersection %v; compensated snapshot too different", r.Intersection)
	}
}

func TestFig5Monotone(t *testing.T) {
	rows := Fig5(fast())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Lost > r.Quality+1e-9 {
			t.Errorf("quality %v: lost %v exceeds budget", r.Quality, r.Lost)
		}
		if i > 0 && r.ClipLevel > rows[i-1].ClipLevel {
			t.Errorf("clip level rose with budget at row %d", i)
		}
	}
	// The dark sample frame must show the characteristic 5% jump.
	if rows[1].ClipLevel >= rows[0].ClipLevel-20 {
		t.Errorf("5%% budget barely moved the ceiling: %d -> %d",
			rows[0].ClipLevel, rows[1].ClipLevel)
	}
}

func TestFig6Series(t *testing.T) {
	r, err := Fig6(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Clip != "returnoftheking" {
		t.Errorf("default clip = %s", r.Clip)
	}
	if len(r.Records) == 0 || r.Scenes < 2 {
		t.Fatalf("series: %d records, %d scenes", len(r.Records), r.Scenes)
	}
	for _, rec := range r.Records {
		if rec.Target <= 0 || rec.Target > 1 {
			t.Fatalf("target %v out of range", rec.Target)
		}
		// Scene max (target base) is never below what this frame needs
		// at the clipped level would allow; at least sane bounds:
		if rec.Level < 0 || rec.Level > display.MaxLevel {
			t.Fatalf("level %d out of range", rec.Level)
		}
	}
}

func TestFig7ShapesAndMonotone(t *testing.T) {
	rows := Fig7(nil)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	prev := map[string]float64{}
	for _, r := range rows {
		if len(r.Measured) != 3 {
			t.Fatalf("expected 3 devices, got %d", len(r.Measured))
		}
		for dev, v := range r.Measured {
			if v < prev[dev]-1e-9 {
				t.Errorf("%s: brightness not monotone at level %d", dev, r.Level)
			}
			prev[dev] = v
		}
	}
	// Devices must differ visibly somewhere (distinct transfer curves).
	mid := rows[len(rows)/2].Measured
	if absf(mid["ipaq5555"]-mid["ipaq3650"]) < 5 {
		t.Errorf("device curves indistinct at midpoint: %v", mid)
	}
}

func TestFig8NearlyLinearAndOrdered(t *testing.T) {
	rows := Fig8(display.IPAQ5555(), nil)
	for _, r := range rows {
		if r.AtHalf > r.AtFull+1e-9 {
			t.Errorf("white %d: half backlight brighter than full", r.White)
		}
	}
	if rows[0].AtFull >= rows[len(rows)-1].AtFull {
		t.Error("brightness not increasing in white level")
	}
}

func TestSweepShapeMatchesPaper(t *testing.T) {
	rows, err := Sweep(fast())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	byClip := map[string]SavingsRow{}
	for _, r := range rows {
		byClip[r.Clip] = r
		if len(r.Backlight) != 5 || len(r.Total) != 5 {
			t.Fatalf("%s: series lengths %d/%d", r.Clip, len(r.Backlight), len(r.Total))
		}
		for q := 1; q < 5; q++ {
			if r.Backlight[q] < r.Backlight[q-1]-0.02 {
				t.Errorf("%s: backlight savings dropped at quality %d (%v -> %v)",
					r.Clip, q, r.Backlight[q-1], r.Backlight[q])
			}
		}
		for q := 0; q < 5; q++ {
			if r.Total[q] > r.Backlight[q]+0.02 {
				t.Errorf("%s: total savings %v exceed backlight savings %v",
					r.Clip, r.Total[q], r.Backlight[q])
			}
		}
		if r.AnnotationBytes <= 0 || r.AnnotationBytes > 2048 {
			t.Errorf("%s: annotation bytes = %d", r.Clip, r.AnnotationBytes)
		}
	}
	// Paper shape: bright clips (hunter_subres, ice_age) are limited;
	// dark clips do much better.
	dark := byClip["theincredibles-tlr2"].Backlight[2]
	ice := byClip["ice_age"].Backlight[2]
	hunter := byClip["hunter_subres"].Backlight[2]
	if dark <= ice || dark <= hunter {
		t.Errorf("dark clip savings %v not above bright clips (%v, %v)", dark, ice, hunter)
	}
	if ice > 0.35 {
		t.Errorf("ice_age backlight savings %v; paper shows it limited", ice)
	}
	// Total savings stay well below backlight savings (25-30% share).
	if byClip["themovie"].Total[2] > 0.3 {
		t.Errorf("themovie total savings %v implausibly high", byClip["themovie"].Total[2])
	}
}

func TestAblateThresholds(t *testing.T) {
	rows, err := AblateThresholds(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	// Looser thresholds must not detect more scenes at fixed interval.
	for mi := 0; mi < 4; mi++ {
		for i := 1; i < 5; i++ {
			cur := rows[i*4+mi]
			prevRow := rows[(i-1)*4+mi]
			if cur.Scenes > prevRow.Scenes {
				t.Errorf("threshold %v: more scenes (%d) than looser %v (%d)",
					cur.Threshold, cur.Scenes, prevRow.Threshold, prevRow.Scenes)
			}
		}
	}
}

func TestAblateGranularity(t *testing.T) {
	rows, err := AblateGranularity(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	perScene, perFrame := rows[0], rows[1]
	if perFrame.Savings < perScene.Savings-1e-9 {
		t.Errorf("per-frame savings %v below per-scene %v", perFrame.Savings, perScene.Savings)
	}
	if perFrame.Switches <= perScene.Switches {
		t.Errorf("per-frame switches %d not above per-scene %d (flicker)",
			perFrame.Switches, perScene.Switches)
	}
}

func TestBaselinesOrdering(t *testing.T) {
	rows, err := Baselines(fast(), "", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Strategy] = r.BacklightSavings
	}
	if byName["static"] > 1e-9 {
		t.Errorf("static saves %v", byName["static"])
	}
	if byName["oracle-frame"] <= byName["static"] {
		t.Error("oracle does not beat static")
	}
	if byName["annotated"] <= 0 {
		t.Error("annotated saves nothing")
	}
}

func TestAblateTransferAwareness(t *testing.T) {
	rows, err := AblateTransferAwareness(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// On the LED device (concave response) the LUT dims deeper than the
	// naive mapping; on CCFL S-curves naive under-lights some scenes.
	var led, ccfl TransferRow
	for _, r := range rows {
		switch r.Device {
		case "ipaq5555":
			led = r
		case "ipaq3650":
			ccfl = r
		}
	}
	if led.LUTSavings <= led.NaiveSavings {
		t.Errorf("LED: LUT savings %v not above naive %v", led.LUTSavings, led.NaiveSavings)
	}
	if ccfl.NaiveUnderlit <= 0 {
		t.Errorf("CCFL: naive mapping never under-lit (%v); expected quality loss", ccfl.NaiveUnderlit)
	}
	if led.NaiveUnderlit > 0 {
		t.Errorf("LED: naive mapping under-lit %v; concave response should over-light", led.NaiveUnderlit)
	}
}

func TestAblateCompensationMethod(t *testing.T) {
	rows := AblateCompensationMethod(fast())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	contrast, brightness := rows[0], rows[1]
	if contrast.Method != "contrast" || brightness.Method != "brightness" {
		t.Fatalf("unexpected order: %v", rows)
	}
	// Contrast enhancement preserves the L*Y product for unclipped
	// pixels; additive brightness distorts dark pixels. The paper chose
	// contrast for a reason.
	if contrast.MeanAbsErr >= brightness.MeanAbsErr {
		t.Errorf("contrast err %v not below brightness err %v",
			contrast.MeanAbsErr, brightness.MeanAbsErr)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	opt := fast()
	var buf bytes.Buffer
	FprintFig3(&buf, Fig3(opt))
	FprintFig4(&buf, Fig4(opt))
	FprintFig5(&buf, Fig5(opt))
	fig6, err := Fig6(opt, "")
	if err != nil {
		t.Fatal(err)
	}
	FprintFig6(&buf, fig6)
	FprintFig7(&buf, Fig7([]int{0, 128, 255}))
	FprintFig8(&buf, "ipaq5555", Fig8(display.IPAQ5555(), []int{0, 128, 255}))
	rows, err := Sweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	FprintFig9(&buf, rows)
	FprintFig10(&buf, rows)
	FprintOverhead(&buf, rows)
	FprintPowerBreakdown(&buf)
	out := buf.String()
	for _, want := range []string{
		"Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "ice_age", "backlight share",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAblateDetectors(t *testing.T) {
	rows, err := AblateDetectors(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Scenes < 1 {
			t.Errorf("%s found no scenes", r.Detector)
		}
		if r.Savings <= 0 {
			t.Errorf("%s produced no savings", r.Detector)
		}
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s scores out of range: %+v", r.Detector, r)
		}
	}
}

func TestAblateHardwareSteps(t *testing.T) {
	rows, err := AblateHardwareSteps(fast(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.LossPts < -1e-9 {
			t.Errorf("%d steps: negative loss %v", r.Steps, r.LossPts)
		}
		if i > 0 && r.Savings < rows[i-1].Savings-1e-9 {
			t.Errorf("savings decreased with finer hardware at %d steps", r.Steps)
		}
	}
	if rows[len(rows)-1].LossPts > 1e-9 {
		t.Errorf("256-step driver lost %v pts; should be lossless", rows[len(rows)-1].LossPts)
	}
	if rows[0].LossPts <= rows[len(rows)-1].LossPts {
		t.Error("coarse driver not costlier than fine driver")
	}
}
