package experiments

import (
	"repro/internal/annotation"
	"repro/internal/backlightdev"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/scene"
	"repro/internal/video"
)

// The ablations quantify the design choices DESIGN.md calls out: the two
// scene-detection thresholds, per-scene vs per-frame backlight updates,
// the baseline policy comparison, and transfer-function awareness.

// ThresholdRow is one scene-threshold configuration's outcome.
type ThresholdRow struct {
	Threshold   float64
	MinInterval int
	Scenes      int
	Savings     float64 // backlight savings at 10% quality
	Switches    int
	MaxStep     int
}

// AblateThresholds sweeps the scene-change threshold and minimum scene
// interval on one clip at the 10% quality level.
func AblateThresholds(opt Options, clipName string) ([]ThresholdRow, error) {
	if clipName == "" {
		clipName = "spiderman2"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	var rows []ThresholdRow
	for _, th := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		for _, mi := range []int{1, clip.FPS / 2, clip.FPS, 2 * clip.FPS} {
			if mi < 1 {
				mi = 1
			}
			cfg := scene.Config{Threshold: th, MinInterval: mi}
			track, scenes, err := core.Annotate(src, cfg, nil)
			if err != nil {
				return nil, err
			}
			rep, err := core.Play(src, track, core.PlaybackOptions{
				Device: opt.Device, Quality: 0.10,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ThresholdRow{
				Threshold:   th,
				MinInterval: mi,
				Scenes:      len(scenes),
				Savings:     rep.BacklightSavings,
				Switches:    rep.Switches,
				MaxStep:     rep.MaxStep,
			})
		}
	}
	return rows, nil
}

// GranularityRow compares per-scene and per-frame backlight updates.
type GranularityRow struct {
	Mode     string
	Savings  float64
	Switches int
	MaxStep  int
}

// AblateGranularity plays one clip with scene-level and frame-level
// backlight updates (§4.3: "sometimes, better results are obtained if we
// allow backlight changes for each frame (but it may introduce some
// flicker)"). The frame-level variant is a track annotated at the finest
// granularity: a one-level threshold and a one-frame minimum interval.
func AblateGranularity(opt Options, clipName string) ([]GranularityRow, error) {
	if clipName == "" {
		clipName = "catwoman"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	configs := []struct {
		mode string
		cfg  scene.Config
	}{
		{"per-scene", scene.DefaultConfig(clip.FPS)},
		{"per-frame", scene.Config{Threshold: 1.0 / 255, MinInterval: 1}},
	}
	var rows []GranularityRow
	for _, c := range configs {
		track, _, err := core.Annotate(src, c.cfg, nil)
		if err != nil {
			return nil, err
		}
		rep, err := core.Play(src, track, core.PlaybackOptions{
			Device: opt.Device, Quality: 0.10,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, GranularityRow{
			Mode: c.mode, Savings: rep.BacklightSavings,
			Switches: rep.Switches, MaxStep: rep.MaxStep,
		})
	}
	return rows, nil
}

// Baselines evaluates every baseline strategy on one clip at the given
// quality budget.
func Baselines(opt Options, clipName string, budget float64) ([]baseline.Result, error) {
	if clipName == "" {
		clipName = "i_robot"
	}
	clip := video.ClipByName(clipName, opt.Library)
	stats := make([]scene.FrameStats, clip.TotalFrames())
	for i := range stats {
		stats[i] = scene.StatsOf(clip.Frame(i))
	}
	strategies := []baseline.Strategy{
		baseline.Static{},
		baseline.OracleFrame{},
		baseline.History{},
		baseline.Smoothed{},
		baseline.Annotated{Config: scene.DefaultConfig(clip.FPS)},
	}
	results := make([]baseline.Result, 0, len(strategies))
	for _, s := range strategies {
		levels := s.Levels(opt.Device, stats, budget)
		results = append(results, baseline.Evaluate(s.Name(), opt.Device, stats, levels, clip.FPS, budget))
	}
	return results, nil
}

// TransferRow compares the device-aware inverse-LUT backlight mapping with
// a naive linear mapping (level = target×255) on one device.
type TransferRow struct {
	Device string
	// LUTSavings / NaiveSavings: backlight savings at 10% quality.
	LUTSavings   float64
	NaiveSavings float64
	// NaiveUnderlit is the fraction of scenes where the naive level's
	// luminance falls short of the target (visible quality loss the LUT
	// avoids by construction).
	NaiveUnderlit float64
}

// AblateTransferAwareness quantifies why the paper characterises each
// display: ignoring the nonlinear transfer either wastes power or
// under-lights scenes, depending on the curve's direction.
func AblateTransferAwareness(opt Options, clipName string) ([]TransferRow, error) {
	if clipName == "" {
		clipName = "themovie"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	var rows []TransferRow
	for _, dev := range display.Devices() {
		track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
		if err != nil {
			return nil, err
		}
		qi := track.QualityIndex(0.10)
		var lutPower, naivePower, fullPower float64
		underlit := 0
		for _, rec := range track.Records {
			target := float64(rec.Targets[qi]) / 255
			secs := float64(rec.Frames) / float64(clip.FPS)
			lut := dev.LevelFor(target)
			naive := int(target*display.MaxLevel + 0.5)
			lutPower += dev.BacklightPower(lut) * secs
			naivePower += dev.BacklightPower(naive) * secs
			fullPower += dev.BacklightPower(display.MaxLevel) * secs
			if dev.Luminance(naive)+1e-9 < target {
				underlit++
			}
		}
		rows = append(rows, TransferRow{
			Device:        dev.Name,
			LUTSavings:    1 - lutPower/fullPower,
			NaiveSavings:  1 - naivePower/fullPower,
			NaiveUnderlit: float64(underlit) / float64(len(track.Records)),
		})
	}
	return rows, nil
}

// MethodRow compares contrast enhancement with brightness compensation.
type MethodRow struct {
	Method     string
	MeanAbsErr float64
	MaxErr     float64
	Clipped    float64
}

// AblateCompensationMethod measures perceived-intensity fidelity of the
// two compensation operators on the sample frame at a 50% luminance
// target.
func AblateCompensationMethod(opt Options) []MethodRow {
	dev := opt.Device
	f := sampleDarkFrame(opt)
	target := 0.55
	level := dev.LevelFor(target)
	lDim := dev.Luminance(level)
	lFull := dev.Luminance(display.MaxLevel)
	white := dev.Transmittance * lFull

	evaluate := func(g func(y float64) float64) MethodRow {
		var sum, max float64
		clipped := 0
		for _, px := range f.Pix {
			y := px.Luma() / 255
			orig := dev.Transmittance * lFull * y
			yc := g(y)
			if yc > 1 {
				yc = 1
				clipped++
			}
			got := dev.Transmittance * lDim * yc
			err := abs(orig-got) / white
			sum += err
			if err > max {
				max = err
			}
		}
		n := float64(len(f.Pix))
		return MethodRow{MeanAbsErr: sum / n, MaxErr: max, Clipped: float64(clipped) / n}
	}

	k := 1 / target
	delta := 1 - target
	contrast := evaluate(func(y float64) float64 { return y * k })
	contrast.Method = "contrast"
	brightness := evaluate(func(y float64) float64 { return y + delta })
	brightness.Method = "brightness"
	return []MethodRow{contrast, brightness}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// DetectorRow compares the paper's max-luminance scene detector with the
// EMD histogram detector against generator ground truth on one clip.
type DetectorRow struct {
	Detector  string
	Scenes    int
	Precision float64
	Recall    float64
	// Savings is the backlight saving at 10% quality when the detected
	// scenes drive the annotation.
	Savings float64
}

// AblateDetectors scores both detectors on one clip: boundary accuracy
// against ground truth, and the power the resulting annotation achieves.
func AblateDetectors(opt Options, clipName string) ([]DetectorRow, error) {
	if clipName == "" {
		clipName = "returnoftheking"
	}
	clip := video.ClipByName(clipName, opt.Library)
	stats := make([]scene.FrameStats, clip.TotalFrames())
	for i := range stats {
		stats[i] = scene.StatsOf(clip.Frame(i))
	}
	var truth []int
	for i := 1; i < len(clip.Scenes); i++ {
		truth = append(truth, clip.SceneStart(i))
	}

	score := func(name string, scenes []scene.Scene) (DetectorRow, error) {
		p, r := scene.BoundaryScore(scene.Boundaries(scenes), truth, 1)
		track := annotationFromStats(clip.FPS, scenes, stats)
		rep, err := core.Play(core.ClipSource{Clip: clip}, track, core.PlaybackOptions{
			Device: opt.Device, Quality: 0.10,
		})
		if err != nil {
			return DetectorRow{}, err
		}
		return DetectorRow{
			Detector: name, Scenes: len(scenes),
			Precision: p, Recall: r, Savings: rep.BacklightSavings,
		}, nil
	}

	maxRow, err := score("max-luminance", scene.Detect(scene.DefaultConfig(clip.FPS), stats))
	if err != nil {
		return nil, err
	}
	histRow, err := score("histogram-emd", scene.DetectHistogram(10, clip.FPS/2+1, stats))
	if err != nil {
		return nil, err
	}
	return []DetectorRow{maxRow, histRow}, nil
}

// annotationFromStats is a small local helper mirroring core.Annotate's
// track construction for externally detected scenes.
func annotationFromStats(fps int, scenes []scene.Scene, stats []scene.FrameStats) *annotation.Track {
	return annotation.FromStats(fps, scenes, stats, nil)
}

// HardwareRow is one hardware-resolution configuration's outcome.
type HardwareRow struct {
	Steps   int
	Savings float64 // backlight savings at 10% quality through the driver
	LossPts float64 // percentage points lost vs continuous control
}

// AblateHardwareSteps quantifies what the backlight driver's discrete
// hardware steps cost: requested levels round up to the next step, so a
// coarse driver gives back part of the savings.
func AblateHardwareSteps(opt Options, clipName string) ([]HardwareRow, error) {
	if clipName == "" {
		clipName = "returnoftheking"
	}
	clip := video.ClipByName(clipName, opt.Library)
	src := core.ClipSource{Clip: clip}
	track, _, err := core.Annotate(src, scene.DefaultConfig(clip.FPS), nil)
	if err != nil {
		return nil, err
	}
	rep, err := core.Play(src, track, core.PlaybackOptions{
		Device: opt.Device, Quality: 0.10, PerFrame: true,
	})
	if err != nil {
		return nil, err
	}
	levels := make([]int, len(rep.PerFrame))
	for i, fr := range rep.PerFrame {
		levels[i] = fr.Level
	}
	dev := opt.Device
	full := dev.BacklightPower(display.MaxLevel) * float64(len(levels)) / float64(clip.FPS)
	var rows []HardwareRow
	for _, steps := range []int{4, 8, 16, 32, 64, 256} {
		drv, err := backlightdev.New(steps, 0)
		if err != nil {
			return nil, err
		}
		cont, quant := backlightdev.QuantizationLoss(dev, drv, levels, clip.FPS)
		rows = append(rows, HardwareRow{
			Steps:   steps,
			Savings: 1 - quant/full,
			LossPts: (quant - cont) / full,
		})
	}
	return rows, nil
}
