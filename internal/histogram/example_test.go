package histogram_test

import (
	"fmt"

	"repro/internal/histogram"
)

// The clipping-budget computation at the heart of the quality levels:
// sacrificing the brightest pixels lowers the luminance the scene needs.
func ExampleH_ClipLevel() {
	// 90 dark pixels, 10 bright highlights.
	luma := make([]uint8, 0, 100)
	for i := 0; i < 90; i++ {
		luma = append(luma, 60)
	}
	for i := 0; i < 10; i++ {
		luma = append(luma, 250)
	}
	h := histogram.FromLuma(luma)
	fmt.Println("lossless ceiling:", h.ClipLevel(0))
	fmt.Println("with 10% budget: ", h.ClipLevel(0.10))
	fmt.Println("pixels lost:     ", h.ClippedFraction(h.ClipLevel(0.10)))
	// Output:
	// lossless ceiling: 250
	// with 10% budget:  60
	// pixels lost:      0.1
}
