package histogram

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/pixel"
)

func uniform(levels ...uint8) *H {
	return FromLuma(levels)
}

func TestFromFrameCountsAllPixels(t *testing.T) {
	f := frame.Solid(8, 4, pixel.Gray(100))
	h := FromFrame(f)
	if h.Total != 32 {
		t.Fatalf("Total = %d, want 32", h.Total)
	}
	if h.Count[100] != 32 {
		t.Fatalf("Count[100] = %d, want 32", h.Count[100])
	}
}

func TestAverage(t *testing.T) {
	h := uniform(0, 100, 200)
	if got := h.Average(); math.Abs(got-100) > 1e-9 {
		t.Errorf("Average = %v, want 100", got)
	}
	if got := (&H{}).Average(); got != 0 {
		t.Errorf("empty Average = %v, want 0", got)
	}
}

func TestMinMaxDynamicRange(t *testing.T) {
	h := uniform(10, 20, 250)
	if h.Min() != 10 || h.Max() != 250 || h.DynamicRange() != 240 {
		t.Errorf("min/max/range = %d/%d/%d", h.Min(), h.Max(), h.DynamicRange())
	}
	empty := &H{}
	if empty.DynamicRange() != 0 {
		t.Errorf("empty DynamicRange = %d", empty.DynamicRange())
	}
}

func TestPercentile(t *testing.T) {
	h := uniform(0, 50, 100, 150, 200, 250, 255, 255, 255, 255)
	cases := []struct {
		q    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.2, 50}, {0.5, 200}, {0.6, 250}, {1, 255},
		{-1, 0}, {2, 255},
	}
	for _, c := range cases {
		if got := h.Percentile(c.q); got != c.want {
			t.Errorf("Percentile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestClipLevelLossless(t *testing.T) {
	h := uniform(10, 20, 200)
	if got := h.ClipLevel(0); got != 200 {
		t.Errorf("ClipLevel(0) = %d, want max 200", got)
	}
}

func TestClipLevelBudget(t *testing.T) {
	// 100 pixels: 90 at 50, 10 at 255. A 10% budget may clip all ten
	// bright pixels; an 5% budget may not.
	luma := make([]uint8, 0, 100)
	for i := 0; i < 90; i++ {
		luma = append(luma, 50)
	}
	for i := 0; i < 10; i++ {
		luma = append(luma, 255)
	}
	h := FromLuma(luma)
	if got := h.ClipLevel(0.10); got != 50 {
		t.Errorf("ClipLevel(0.10) = %d, want 50", got)
	}
	if got := h.ClipLevel(0.05); got != 255 {
		t.Errorf("ClipLevel(0.05) = %d, want 255", got)
	}
}

func TestClipLevelExtremes(t *testing.T) {
	h := uniform(10, 200)
	if got := h.ClipLevel(1); got != 10 {
		t.Errorf("ClipLevel(1) = %d, want min", got)
	}
	if got := (&H{}).ClipLevel(0.5); got != 0 {
		t.Errorf("empty ClipLevel = %d, want 0", got)
	}
}

// TestPercentileBoundaries is the table-driven boundary audit: q=0, q=1,
// empty and all-zero histograms, the Percentile(1) == Max() invariant,
// and fractions whose float product lands a hair off an integer (the
// off-by-one the cumulative-count comparison used to be exposed to:
// 0.15*20 evaluates to 3.0000000000000004, so Ceil overshot by a pixel).
func TestPercentileBoundaries(t *testing.T) {
	twenty := make([]uint8, 0, 20)
	for i := 0; i < 20; i++ {
		twenty = append(twenty, uint8(i*10))
	}
	cases := []struct {
		name string
		h    *H
		q    float64
		want int
	}{
		{"empty q=0", &H{}, 0, 0},
		{"empty q=1", &H{}, 1, 0},
		{"all-zero q=0", uniform(0, 0, 0), 0, 0},
		{"all-zero q=0.5", uniform(0, 0, 0), 0.5, 0},
		{"all-zero q=1", uniform(0, 0, 0), 1, 0},
		{"single q=0", uniform(77), 0, 77},
		{"single q=1", uniform(77), 1, 77},
		// 0.15*20 = 3.0000000000000004 in float64; want the 3rd sample.
		{"float-rounding 0.15*20", FromLuma(twenty), 0.15, 20},
		// 0.35*20 = 6.999999999999999; Ceil keeps it at 7 either way.
		{"float-rounding 0.35*20", FromLuma(twenty), 0.35, 60},
		{"q clamped below", uniform(5, 9), -3, 5},
		{"q clamped above", uniform(5, 9), 7, 9},
	}
	for _, c := range cases {
		if got := c.h.Percentile(c.q); got != c.want {
			t.Errorf("%s: Percentile(%v) = %d, want %d", c.name, c.q, got, c.want)
		}
	}
}

// Invariant from the doc comment: Percentile(1) == Max() on any
// non-empty histogram.
func TestPercentileOneIsMaxProperty(t *testing.T) {
	f := func(samples []uint8) bool {
		if len(samples) == 0 {
			return true
		}
		h := FromLuma(samples)
		return h.Percentile(1) == h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClipLevelBoundaries audits ClipLevel the same way: exact-budget
// products that float arithmetic lands just under the true integer
// (0.29*100 = 28.999999999999996 truncated to 28, clipping one pixel
// fewer than the budget allows), plus the q=0/q=1/empty/all-zero edges.
func TestClipLevelBoundaries(t *testing.T) {
	// 100 pixels: 71 dark, 29 at full scale. A 29% budget must clip all
	// 29 bright pixels.
	luma := make([]uint8, 0, 100)
	for i := 0; i < 71; i++ {
		luma = append(luma, 40)
	}
	for i := 0; i < 29; i++ {
		luma = append(luma, 255)
	}
	skewed := FromLuma(luma)
	cases := []struct {
		name   string
		h      *H
		budget float64
		want   int
	}{
		{"empty", &H{}, 0.5, 0},
		{"all-zero lossless", uniform(0, 0), 0, 0},
		{"all-zero full budget", uniform(0, 0), 1, 0},
		{"budget 0 is max", uniform(3, 250), 0, 250},
		{"budget 1 is min", uniform(3, 250), 1, 3},
		{"negative budget is max", uniform(3, 250), -0.5, 250},
		{"float-rounding 0.29*100", skewed, 0.29, 40},
		{"just under the bright mass", skewed, 0.28, 255},
	}
	for _, c := range cases {
		if got := c.h.ClipLevel(c.budget); got != c.want {
			t.Errorf("%s: ClipLevel(%v) = %d, want %d", c.name, c.budget, got, c.want)
		}
	}
}

func TestClippedFraction(t *testing.T) {
	h := uniform(10, 100, 200, 250)
	if got := h.ClippedFraction(150); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ClippedFraction(150) = %v, want 0.5", got)
	}
	if got := h.ClippedFraction(255); got != 0 {
		t.Errorf("ClippedFraction(255) = %v, want 0", got)
	}
	if got := h.ClippedFraction(10); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ClippedFraction(10) = %v, want 0.75", got)
	}
	if got := h.ClippedFraction(0); got != 1 {
		t.Errorf("ClippedFraction(0) = %v, want 1", got)
	}
}

func TestAddMerges(t *testing.T) {
	a := uniform(10, 10)
	b := uniform(20)
	a.Add(b)
	if a.Total != 3 || a.Count[10] != 2 || a.Count[20] != 1 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestIntersectionIdentical(t *testing.T) {
	h := uniform(1, 2, 3, 200)
	if got := Intersection(h, h); math.Abs(got-1) > 1e-12 {
		t.Errorf("self Intersection = %v, want 1", got)
	}
}

func TestIntersectionDisjoint(t *testing.T) {
	a, b := uniform(10), uniform(200)
	if got := Intersection(a, b); got != 0 {
		t.Errorf("disjoint Intersection = %v, want 0", got)
	}
}

func TestChiSquare(t *testing.T) {
	h := uniform(5, 10)
	if got := ChiSquare(h, h); got != 0 {
		t.Errorf("self ChiSquare = %v, want 0", got)
	}
	a, b := uniform(10), uniform(200)
	if got := ChiSquare(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("disjoint ChiSquare = %v, want 2", got)
	}
}

func TestEMDShift(t *testing.T) {
	// Shifting a delta distribution by k levels moves k units of earth.
	a, b := uniform(100), uniform(110)
	if got := EMD(a, b); math.Abs(got-10) > 1e-9 {
		t.Errorf("EMD = %v, want 10", got)
	}
	if got := EMD(a, a); got != 0 {
		t.Errorf("self EMD = %v, want 0", got)
	}
}

func TestMeanShift(t *testing.T) {
	a, b := uniform(100), uniform(90)
	if got := MeanShift(a, b); math.Abs(got+10) > 1e-9 {
		t.Errorf("MeanShift = %v, want -10", got)
	}
}

func TestStringFormat(t *testing.T) {
	h := uniform(10, 20)
	want := "hist{n=2 avg=15.0 range=[10,20]}"
	if got := h.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: Percentile is monotone in q.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(samples []uint8, q1, q2 uint8) bool {
		if len(samples) == 0 {
			return true
		}
		h := FromLuma(samples)
		a, b := float64(q1)/255, float64(q2)/255
		if a > b {
			a, b = b, a
		}
		return h.Percentile(a) <= h.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the clipped fraction at the budget-derived clip level never
// exceeds the budget — the core guarantee the quality levels rely on.
func TestClipLevelRespectsBudgetProperty(t *testing.T) {
	f := func(samples []uint8, budgetRaw uint8) bool {
		if len(samples) == 0 {
			return true
		}
		h := FromLuma(samples)
		budget := float64(budgetRaw) / 255 * 0.25 // 0..25%
		level := h.ClipLevel(budget)
		return h.ClippedFraction(level) <= budget+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClipLevel is monotone non-increasing in the budget.
func TestClipLevelMonotoneProperty(t *testing.T) {
	f := func(samples []uint8, b1, b2 uint8) bool {
		if len(samples) == 0 {
			return true
		}
		h := FromLuma(samples)
		lo, hi := float64(b1)/255, float64(b2)/255
		if lo > hi {
			lo, hi = hi, lo
		}
		return h.ClipLevel(lo) >= h.ClipLevel(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EMD is a metric on these distributions — symmetric, zero on
// self, triangle inequality.
func TestEMDMetricProperty(t *testing.T) {
	f := func(a, b, c []uint8) bool {
		if len(a) == 0 || len(b) == 0 || len(c) == 0 {
			return true
		}
		ha, hb, hc := FromLuma(a), FromLuma(b), FromLuma(c)
		dab, dba := EMD(ha, hb), EMD(hb, ha)
		if math.Abs(dab-dba) > 1e-9 {
			return false
		}
		return EMD(ha, hc) <= dab+EMD(hb, hc)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intersection is in [0,1] and symmetric.
func TestIntersectionRangeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		ha, hb := FromLuma(a), FromLuma(b)
		s := Intersection(ha, hb)
		return s >= 0 && s <= 1+1e-12 && math.Abs(s-Intersection(hb, ha)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
