// Package histogram implements the 256-bin luminance histograms the paper
// uses both to drive the compensation algorithm (clipping-budget
// computation, Figure 5) and to validate quality objectively (Figures 3–4).
//
// A histogram "represents both the average luminance and dynamic range for
// an image" (paper §4.2); this package exposes exactly those properties plus
// the distance metrics used when comparing camera snapshots of the display.
package histogram

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/pixel"
)

// Bins is the number of luminance levels tracked (8-bit luma).
const Bins = 256

// H is a luminance histogram: H[i] counts pixels with rounded luma i.
type H struct {
	Count [Bins]uint64
	Total uint64
}

// FromFrame builds the luminance histogram of f.
func FromFrame(f *frame.Frame) *H {
	h, _ := Scan(f)
	return h
}

// Scan builds the luminance histogram of f and returns the maximum pixel
// luminance (0..255) from the same pass. The per-pixel luminance is
// computed once and feeds both the bin index and the running maximum, so
// the results are bit-identical to frame.MaxLuma plus a separate
// FromFrame at half the scan cost — which is what the annotation pipeline
// spends per frame after rendering.
func Scan(f *frame.Frame) (h *H, maxLuma float64) {
	h = &H{}
	for _, p := range f.Pix {
		y := p.Luma()
		if y > maxLuma {
			maxLuma = y
		}
		h.Count[pixel.ClampU8(y)]++
	}
	h.Total = uint64(len(f.Pix))
	return h, maxLuma
}

// FromLuma builds a histogram from raw 8-bit luma samples.
func FromLuma(luma []uint8) *H {
	h := &H{}
	for _, y := range luma {
		h.Count[y]++
	}
	h.Total = uint64(len(luma))
	return h
}

// Add merges other into h.
func (h *H) Add(other *H) {
	for i, c := range other.Count {
		h.Count[i] += c
	}
	h.Total += other.Total
}

// Average returns the mean luminance (the paper's "average point").
// An empty histogram averages to zero.
func (h *H) Average() float64 {
	if h.Total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.Count {
		sum += float64(i) * float64(c)
	}
	return sum / float64(h.Total)
}

// Min returns the lowest occupied luminance bin, or 0 if empty.
func (h *H) Min() int {
	for i, c := range h.Count {
		if c > 0 {
			return i
		}
	}
	return 0
}

// Max returns the highest occupied luminance bin, or 0 if empty.
func (h *H) Max() int {
	for i := Bins - 1; i >= 0; i-- {
		if h.Count[i] > 0 {
			return i
		}
	}
	return 0
}

// DynamicRange returns Max-Min, the paper's dynamic-range property.
func (h *H) DynamicRange() int {
	if h.Total == 0 {
		return 0
	}
	return h.Max() - h.Min()
}

// fracEps absorbs float rounding when converting a pixel fraction to an
// absolute pixel count: products like 0.15*20 evaluate to a hair above
// the exact integer (3.0000000000000004), and a bare Ceil or truncation
// would then be off by a whole pixel.
const fracEps = 1e-9

// Percentile returns the smallest luminance level v such that at least
// q (0..1) of the pixels have luminance <= v. Percentile(1) == Max().
func (h *H) Percentile(q float64) int {
	if h.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q*float64(h.Total) - fracEps))
	if need == 0 {
		return h.Min()
	}
	var cum uint64
	for i, c := range h.Count {
		cum += c
		if cum >= need {
			return i
		}
	}
	return Bins - 1
}

// ClipLevel returns the luminance level the scene can be clipped to when a
// fraction budget (0..1) of the brightest pixels is allowed to saturate:
// the smallest level v such that the number of pixels strictly brighter
// than v is at most budget*Total. budget==0 therefore returns Max(),
// i.e. lossless operation. budget>=1 returns Min(), the budget→1 limit
// of the search (for any budget<1 the answer is at least Min, because
// at Min every other pixel is brighter; a darker target would be
// gratuitous).
func (h *H) ClipLevel(budget float64) int {
	if h.Total == 0 {
		return 0
	}
	if budget <= 0 {
		return h.Max()
	}
	if budget >= 1 {
		return h.Min()
	}
	allowed := uint64(budget*float64(h.Total) + fracEps)
	var above uint64
	for v := Bins - 1; v > 0; v-- {
		above += h.Count[v]
		if above > allowed {
			return v
		}
	}
	return 0
}

// ClippedFraction returns the fraction of pixels with luminance strictly
// above level — the pixels that would be lost if the scene were clipped
// there (Figure 5's "clipped (lost) luminance values").
func (h *H) ClippedFraction(level int) float64 {
	if h.Total == 0 {
		return 0
	}
	var above uint64
	for v := level + 1; v < Bins; v++ {
		above += h.Count[v]
	}
	return float64(above) / float64(h.Total)
}

// normalized returns the probability mass function of h.
func (h *H) normalized() [Bins]float64 {
	var p [Bins]float64
	if h.Total == 0 {
		return p
	}
	for i, c := range h.Count {
		p[i] = float64(c) / float64(h.Total)
	}
	return p
}

// Intersection returns the histogram-intersection similarity in 0..1
// (1 = identical distributions).
func Intersection(a, b *H) float64 {
	pa, pb := a.normalized(), b.normalized()
	var s float64
	for i := range pa {
		s += math.Min(pa[i], pb[i])
	}
	return s
}

// ChiSquare returns the symmetric chi-square distance between the two
// normalised histograms (0 = identical).
func ChiSquare(a, b *H) float64 {
	pa, pb := a.normalized(), b.normalized()
	var s float64
	for i := range pa {
		if d := pa[i] + pb[i]; d > 0 {
			diff := pa[i] - pb[i]
			s += diff * diff / d
		}
	}
	return s
}

// EMD returns the 1-D earth mover's distance between the two normalised
// histograms, in luminance levels. For 1-D distributions this is the L1
// distance between CDFs, which is what makes it robust to small global
// brightness shifts — the property the paper exploits when comparing
// camera snapshots.
func EMD(a, b *H) float64 {
	pa, pb := a.normalized(), b.normalized()
	var cdf, s float64
	for i := range pa {
		cdf += pa[i] - pb[i]
		s += math.Abs(cdf)
	}
	return s
}

// MeanShift returns the signed difference in average luminance b-a, the
// "avg brightness" shift the paper reports under Figure 4.
func MeanShift(a, b *H) float64 { return b.Average() - a.Average() }

// String summarises the histogram the way the paper's Figure 3 annotates
// it: average point and dynamic range.
func (h *H) String() string {
	return fmt.Sprintf("hist{n=%d avg=%.1f range=[%d,%d]}",
		h.Total, h.Average(), h.Min(), h.Max())
}
