// Package pixel provides the colour arithmetic underlying the backlight
// scaling pipeline: RGB representations, YCbCr conversion and the luminance
// formula Y = rR + gG + bB used throughout the paper.
//
// All computations follow ITU-R BT.601, the colorimetry used by the MPEG-1
// era toolchain (Berkeley MPEG tools) that the original implementation was
// built on. Pixel component values are 8-bit (0..255) in storage and
// normalised float64 (0..1) in analysis code.
package pixel

// BT.601 luma weights. Y = LumaR*R + LumaG*G + LumaB*B.
const (
	LumaR = 0.299
	LumaG = 0.587
	LumaB = 0.114
)

// Per-channel product tables: lumaRTab[v] == LumaR*float64(v) computed with
// the identical float64 multiply, so summing table entries left to right
// yields bit-identical luminance to the spelled-out formula while replacing
// three multiplies per pixel with three loads on the whole-frame scan paths.
var lumaRTab, lumaGTab, lumaBTab [256]float64

func init() {
	for v := 0; v < 256; v++ {
		lumaRTab[v] = LumaR * float64(v)
		lumaGTab[v] = LumaG * float64(v)
		lumaBTab[v] = LumaB * float64(v)
	}
}

// RGB is an 8-bit-per-channel pixel as stored in frames.
type RGB struct {
	R, G, B uint8
}

// Luma returns the BT.601 luminance of p in 0..255 as a float64.
func (p RGB) Luma() float64 {
	return lumaRTab[p.R] + lumaGTab[p.G] + lumaBTab[p.B]
}

// Luma8 returns the luminance rounded to a 0..255 integer.
func (p RGB) Luma8() uint8 {
	return ClampU8(p.Luma())
}

// Normalized returns the channels scaled to 0..1.
func (p RGB) Normalized() (r, g, b float64) {
	return float64(p.R) / 255, float64(p.G) / 255, float64(p.B) / 255
}

// FromNormalized builds an RGB pixel from normalised channel values,
// saturating each channel to [0,1] first.
func FromNormalized(r, g, b float64) RGB {
	return RGB{
		R: ClampU8(r * 255),
		G: ClampU8(g * 255),
		B: ClampU8(b * 255),
	}
}

// ClampU8 rounds v to the nearest integer and saturates it to 0..255.
func ClampU8(v float64) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Clamp01 saturates v to the unit interval.
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Scale multiplies each channel by k and saturates, implementing the
// paper's contrast enhancement C' = min(1, C·k) on a single pixel.
// All three channels are scaled by the same amount so hue is preserved.
func (p RGB) Scale(k float64) RGB {
	return RGB{
		R: ClampU8(float64(p.R) * k),
		G: ClampU8(float64(p.G) * k),
		B: ClampU8(float64(p.B) * k),
	}
}

// Add adds delta (in 0..255 units) to each channel and saturates,
// implementing the paper's brightness compensation C' = min(1, C+δC).
func (p RGB) Add(delta float64) RGB {
	return RGB{
		R: ClampU8(float64(p.R) + delta),
		G: ClampU8(float64(p.G) + delta),
		B: ClampU8(float64(p.B) + delta),
	}
}

// YCbCr holds BT.601 full-range luma/chroma components as used by the codec.
type YCbCr struct {
	Y, Cb, Cr uint8
}

// ToYCbCr converts an RGB pixel to full-range BT.601 YCbCr.
func ToYCbCr(p RGB) YCbCr {
	r, b := float64(p.R), float64(p.B)
	y := lumaRTab[p.R] + lumaGTab[p.G] + lumaBTab[p.B]
	cb := 128 + (b-y)/1.772
	cr := 128 + (r-y)/1.402
	return YCbCr{Y: ClampU8(y), Cb: ClampU8(cb), Cr: ClampU8(cr)}
}

// ToRGB converts a full-range BT.601 YCbCr pixel back to RGB.
func ToRGB(p YCbCr) RGB {
	y := float64(p.Y)
	cb := float64(p.Cb) - 128
	cr := float64(p.Cr) - 128
	r := y + 1.402*cr
	b := y + 1.772*cb
	g := (y - LumaR*r - LumaB*b) / LumaG
	return RGB{R: ClampU8(r), G: ClampU8(g), B: ClampU8(b)}
}

// Gray returns the gray pixel with all channels equal to v.
func Gray(v uint8) RGB { return RGB{R: v, G: v, B: v} }
