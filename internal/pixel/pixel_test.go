package pixel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLumaWeightsSumToOne(t *testing.T) {
	if got := LumaR + LumaG + LumaB; math.Abs(got-1) > 1e-12 {
		t.Fatalf("luma weights sum to %v, want 1", got)
	}
}

func TestLumaExtremes(t *testing.T) {
	if got := (RGB{}).Luma(); got != 0 {
		t.Errorf("black luma = %v, want 0", got)
	}
	if got := (RGB{255, 255, 255}).Luma(); math.Abs(got-255) > 1e-9 {
		t.Errorf("white luma = %v, want 255", got)
	}
}

func TestLumaChannelWeights(t *testing.T) {
	cases := []struct {
		p    RGB
		want float64
	}{
		{RGB{R: 255}, 255 * LumaR},
		{RGB{G: 255}, 255 * LumaG},
		{RGB{B: 255}, 255 * LumaB},
		{RGB{R: 100, G: 100, B: 100}, 100},
	}
	for _, c := range cases {
		if got := c.p.Luma(); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Luma(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClampU8(t *testing.T) {
	cases := []struct {
		in   float64
		want uint8
	}{
		{-1, 0}, {0, 0}, {0.4, 0}, {0.5, 1}, {127.5, 128},
		{254.4, 254}, {255, 255}, {300, 255},
		{math.Inf(1), 255}, {math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := ClampU8(c.in); got != c.want {
			t.Errorf("ClampU8(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.25, 0.25}, {1, 1}, {1.5, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestScaleIdentity(t *testing.T) {
	p := RGB{10, 200, 97}
	if got := p.Scale(1); got != p {
		t.Errorf("Scale(1) = %v, want %v", got, p)
	}
}

func TestScaleSaturates(t *testing.T) {
	p := RGB{200, 10, 128}
	got := p.Scale(2)
	want := RGB{255, 20, 255}
	if got != want {
		t.Errorf("Scale(2) = %v, want %v", got, want)
	}
}

func TestAddSaturates(t *testing.T) {
	p := RGB{250, 0, 128}
	got := p.Add(10)
	want := RGB{255, 10, 138}
	if got != want {
		t.Errorf("Add(10) = %v, want %v", got, want)
	}
	got = p.Add(-20)
	want = RGB{230, 0, 108}
	if got != want {
		t.Errorf("Add(-20) = %v, want %v", got, want)
	}
}

func TestFromNormalizedRoundTrip(t *testing.T) {
	p := RGB{13, 77, 240}
	r, g, b := p.Normalized()
	if got := FromNormalized(r, g, b); got != p {
		t.Errorf("round trip = %v, want %v", got, p)
	}
}

func TestYCbCrGrayIsNeutral(t *testing.T) {
	for _, v := range []uint8{0, 1, 64, 128, 200, 255} {
		yc := ToYCbCr(Gray(v))
		if yc.Y != v {
			t.Errorf("gray %d: Y = %d, want %d", v, yc.Y, v)
		}
		if yc.Cb != 128 || yc.Cr != 128 {
			t.Errorf("gray %d: chroma = (%d,%d), want (128,128)", v, yc.Cb, yc.Cr)
		}
	}
}

func TestYCbCrRoundTripTolerance(t *testing.T) {
	// Full-range BT.601 conversion should round-trip within quantisation
	// error (±2 per channel after double 8-bit rounding).
	for r := 0; r < 256; r += 17 {
		for g := 0; g < 256; g += 17 {
			for b := 0; b < 256; b += 17 {
				p := RGB{uint8(r), uint8(g), uint8(b)}
				q := ToRGB(ToYCbCr(p))
				if absDiff(p.R, q.R) > 2 || absDiff(p.G, q.G) > 2 || absDiff(p.B, q.B) > 2 {
					t.Fatalf("round trip %v -> %v exceeds tolerance", p, q)
				}
			}
		}
	}
}

func absDiff(a, b uint8) int {
	d := int(a) - int(b)
	if d < 0 {
		return -d
	}
	return d
}

// Property: scaling by k>=1 never decreases any channel (monotone
// brightening), the core safety property behind contrast enhancement.
func TestScaleMonotoneProperty(t *testing.T) {
	f := func(r, g, b uint8, kRaw uint16) bool {
		k := 1 + float64(kRaw)/8192 // k in [1, ~9]
		p := RGB{r, g, b}
		q := p.Scale(k)
		return q.R >= p.R && q.G >= p.G && q.B >= p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: luminance is linear in uniform scaling before saturation.
func TestLumaScaleLinearProperty(t *testing.T) {
	f := func(r, g, b uint8) bool {
		p := RGB{r / 2, g / 2, b / 2} // keep headroom so Scale(2) cannot clip
		got := p.Scale(2).Luma()
		want := 2 * p.Luma()
		return math.Abs(got-want) <= 1.5*3 // rounding of 3 channels
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ClampU8 output always equals input when input is an integer in range.
func TestClampU8IdentityProperty(t *testing.T) {
	f := func(v uint8) bool { return ClampU8(float64(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: YCbCr conversion preserves luminance within rounding.
func TestYCbCrPreservesLumaProperty(t *testing.T) {
	f := func(r, g, b uint8) bool {
		p := RGB{r, g, b}
		yc := ToYCbCr(p)
		return math.Abs(float64(yc.Y)-p.Luma()) <= 0.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
