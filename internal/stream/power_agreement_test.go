package stream

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/compensate"
	"repro/internal/display"
	"repro/internal/obs"
)

// TestConcurrentSessionsLedgerAgreement pins the two-source power
// accounting contract the fleet simulator depends on: when N client
// sessions play concurrently against one server, the sum of the
// clients' Ledger joules must equal the server's power_* metrics to
// float tolerance — both sides model the same annotated stream, so any
// divergence means one of them double-counts or drops frames under
// concurrency.
func TestConcurrentSessionsLedgerAgreement(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const sessions = 8
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		clientSaved float64
		clientBase  float64
		clientSelf  float64
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Spread sessions over the quality ladder; +0.025 requests the
			// middle of the rung's bracket so wire quantization cannot land
			// one rung low.
			rung := 1 + i%3
			c := &Client{
				Device: display.ByName("ipaq5555"),
				Obs:    reg,
			}
			res, err := c.Play(addr.String(), "night", compensate.QualityLevels[rung]+0.025)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			mu.Lock()
			clientSaved += res.Ledger.SavedJoules
			clientBase += res.Ledger.BaselineJoules
			clientSelf += res.Ledger.SessionJoules
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(&buf)
	if err != nil {
		t.Fatal(err)
	}

	agree := func(metric string, clientSum float64) {
		t.Helper()
		server := exp.Sum(metric, obs.L("role", "server"))
		client := exp.Sum(metric, obs.L("role", "client"))
		for name, want := range map[string]float64{"server": server, "client": client} {
			rel := math.Abs(want-clientSum) / math.Abs(clientSum)
			if rel > 1e-9 {
				t.Errorf("%s %s-side = %v, ledger sum = %v (rel diff %.2e)",
					metric, name, want, clientSum, rel)
			}
		}
	}
	agree("power_saved_joules", clientSaved)
	agree("power_baseline_joules", clientBase)
	agree("power_session_joules", clientSelf)

	for _, role := range []string{"client", "server"} {
		if n := exp.Sum("session_total", obs.L("role", role)); n != sessions {
			t.Errorf("session_total{role=%q} = %v, want %d", role, n, sessions)
		}
	}
	if clientSaved <= 0 {
		t.Errorf("summed client ledgers saved %v J, want positive", clientSaved)
	}
}
