package stream_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/stream"
	"repro/internal/video"
)

// A complete streaming session on loopback TCP: a server stores a clip,
// a client negotiates it at a quality level and plays it, receiving the
// annotation side channels before the first frame.
func Example() {
	clip := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.2, LumaSpread: 0.12, MaxLuma: 0.95, HighlightFrac: 0.01},
	})
	server := stream.NewServer(map[string]core.Source{
		"night": core.ClipSource{Clip: clip},
	})
	server.SetLogf(func(string, ...any) {})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()

	client := &stream.Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d frames in %d scenes, annotated=%v\n", res.Frames, res.Scenes, res.Annotated)
	fmt.Printf("side channels: %d cycle annotations, %d scene-byte annotations\n",
		len(res.DecodeCycles), len(res.NetScenes))
	// Output:
	// 20 frames in 2 scenes, annotated=true
	// side channels: 20 cycle annotations, 2 scene-byte annotations
}
