package stream

import (
	"errors"
	"net"
	"time"

	"repro/internal/obs"
)

// Accept-loop backoff bounds: transient accept failures (EMFILE,
// ECONNABORTED, a flaky wrapped listener) are retried with exponential
// backoff instead of spinning hot or killing the loop.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// temporaryErr reports whether err advertises itself as transient.
func temporaryErr(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

// acceptWithBackoff accepts connections from ln, handing each to handle,
// until the listener is closed. Temporary errors are retried with capped
// exponential backoff (reset after every successful accept); a permanent
// error ends the loop.
func acceptWithBackoff(ln net.Listener, role string, logf func(string, ...any), acceptErrors *obs.Counter, handle func(net.Conn)) {
	delay := acceptBackoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // orderly shutdown, not an error
			}
			acceptErrors.Inc()
			if temporaryErr(err) {
				logf("%s: accept: %v (retrying in %v)", role, err, delay)
				time.Sleep(delay)
				delay *= 2
				if delay > acceptBackoffMax {
					delay = acceptBackoffMax
				}
				continue
			}
			logf("%s: accept: %v", role, err)
			return
		}
		delay = acceptBackoffMin
		handle(conn)
	}
}
