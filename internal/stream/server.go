package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/compensate"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/scene"
)

// DefaultCacheCapacity is the artifact-cache byte budget servers and
// proxies start with.
const DefaultCacheCapacity = 256 << 20

// EncodeConfig controls the codec parameters the server streams with.
type EncodeConfig struct {
	GOP    int // I-frame interval (defaults to one second of frames)
	QScale int // quantiser scale (defaults to 4)
}

func (c EncodeConfig) withDefaults(fps int) EncodeConfig {
	if c.GOP <= 0 {
		c.GOP = fps
	}
	if c.QScale <= 0 {
		c.QScale = 4
	}
	return c
}

// serverMetrics are the server's obs handles. Every field is nil until
// SetObserver installs a registry; nil metrics no-op, so the
// instrumentation below runs unconditionally at zero cost when
// telemetry is disabled.
type serverMetrics struct {
	activeConns  *obs.Gauge
	connsTotal   *obs.Counter
	framesSent   *obs.Counter
	bytesSent    *obs.Counter
	acceptErrors *obs.Counter
	sessErrors   *obs.Counter
	shed         *obs.Counter
	resumes      *obs.Counter
	queueDepth   *obs.Gauge
	panics       *obs.Counter
	draining     *obs.Gauge
}

func newServerMetrics(r *obs.Registry, role string) serverMetrics {
	l := obs.L("role", role)
	return serverMetrics{
		activeConns: r.Gauge("stream_active_conns",
			"Client connections currently being served.", l),
		connsTotal: r.Counter("stream_conns_total",
			"Client connections accepted since start.", l),
		framesSent: r.Counter("stream_frames_sent_total",
			"Encoded frames written to clients.", l),
		bytesSent: r.Counter("stream_bytes_sent_total",
			"Bytes written to clients (container payload).", l),
		acceptErrors: r.Counter("stream_accept_errors_total",
			"Listener accept errors (transient ones are retried with backoff).", l),
		sessErrors: r.Counter("stream_session_errors_total",
			"Sessions that ended with an error.", l),
		shed: r.Counter("stream_sessions_shed_total",
			"Connections shed by admission control (queue full or wait deadline expired).", l),
		resumes: r.Counter("stream_resumes_total",
			"Sessions resumed mid-clip via the start_frame extension.", l),
		queueDepth: r.Gauge("stream_admission_queue_depth",
			"Connections currently waiting in the admission queue.", l),
		panics: r.Counter("stream_session_panics_total",
			"Session goroutines that panicked and were recovered (session dropped, process alive).", l),
		draining: r.Gauge("stream_draining",
			"1 while the process is draining in-flight sessions for shutdown.", l),
	}
}

// Server stores clips and streams them, annotated and compensated, to
// clients. It plays the role of the multimedia server of Figure 1.
// The accept/drain/cache plumbing lives in the embedded nodeCore,
// shared with the Proxy.
type Server struct {
	nodeCore

	catalog map[string]core.Source
	scene   func(fps int) scene.Config
	enc     EncodeConfig

	// maxProto, when nonzero, rejects requests framed with a newer
	// protocol version — how tests (and operators pinning a fleet) model
	// an old server, exercising the client's stepwise downgrade.
	maxProto int

	// handshakeTimeout bounds reading the negotiation request;
	// writeTimeout is re-armed before every write, so a client that
	// stops draining its socket cannot pin a session goroutine.
	handshakeTimeout time.Duration
	writeTimeout     time.Duration
	// maxSessions caps concurrent sessions (0 = unlimited). Connections
	// over the cap wait in a bounded admission queue (queueDepth slots,
	// up to queueWait each) and are shed with a clean over-capacity
	// refusal only when the queue is full or the wait deadline expires —
	// a short burst rides the queue instead of being refused outright.
	maxSessions int
	queueDepth  int
	queueWait   time.Duration
	queueSet    bool
	slots       chan struct{}
	waiters     atomic.Int64

	// digests memoises the content digest per catalog clip name (the
	// catalog is immutable once the server is serving).
	digestMu sync.Mutex
	digests  map[string]string
}

// variant is one pre-encoded quality level of a clip, held in wire
// form: wire is the concatenation of the clip's container frame
// packets (container.AppendFramePacket framing, which is byte for byte
// what Writer.WriteFrame emits) and offs[i] is the byte offset of
// frame i's packet, with offs[len(frames)] == len(wire). Any frame run
// [i, j) can therefore reach a socket as the single pre-encoded slice
// wire[offs[i]:offs[j]] — no per-frame framing work, no copies, no
// allocations on the warm path. frames keeps the per-frame metadata
// the serving layer still inspects (frame type for I-frame boundaries,
// payload sizes for the cycle model); each frames[i].Data aliases its
// packet's payload inside wire.
type variant struct {
	frames []*codec.EncodedFrame
	wire   []byte
	offs   []uint32
	// ref, when set, locates wire inside a CRC-verified artifact file
	// of the persistent store, so sessions can stream it with sendfile
	// instead of holding the clip's bytes in user space.
	ref         wireFileRef
	cyclesChunk []byte
	scenesChunk []byte
}

// wireFileRef points at a variant's wire region inside a store
// artifact file: the region is file [off, off+n).
type wireFileRef struct {
	path string
	off  int64
	n    int64
}

// seal builds the wire form from v.frames and re-points each frame's
// Data at its payload inside the wire, so the packet bytes exist
// exactly once in memory. Must be called whenever frames change.
func (v *variant) seal() error {
	size := 0
	for _, ef := range v.frames {
		size += container.FramePacketOverhead + len(ef.Data)
	}
	wire := make([]byte, 0, size)
	offs := make([]uint32, 0, len(v.frames)+1)
	for _, ef := range v.frames {
		if ef.QScale < 0 || ef.QScale > 255 {
			return fmt.Errorf("stream: variant qscale %d not serialisable", ef.QScale)
		}
		offs = append(offs, uint32(len(wire)))
		var err error
		if wire, err = container.AppendFramePacket(wire, ef); err != nil {
			return err
		}
	}
	offs = append(offs, uint32(len(wire)))
	v.wire, v.offs = wire, offs
	for i, ef := range v.frames {
		end := int(offs[i+1])
		ef.Data = wire[end-len(ef.Data) : end : end]
	}
	return nil
}

// packets returns the pre-encoded packet run for frames [i, j).
func (v *variant) packets(i, j int) []byte {
	return v.wire[v.offs[i]:v.offs[j]]
}

// cost is the variant's cache cost in bytes.
func (v *variant) cost() int64 {
	c := int64(len(v.cyclesChunk)+len(v.scenesChunk)) + int64(len(v.wire))
	if v.wire == nil {
		for _, ef := range v.frames {
			c += int64(ef.Size())
		}
	}
	return c
}

// NewServer builds a server over the given catalog.
func NewServer(catalog map[string]core.Source) *Server {
	s := &Server{
		catalog:          catalog,
		scene:            scene.DefaultConfig,
		enc:              EncodeConfig{},
		handshakeTimeout: 10 * time.Second,
		writeTimeout:     30 * time.Second,
		digests:          map[string]string{},
	}
	s.initCore("server")
	s.resolveFetch = s.resolveFetchRequest
	return s
}

// SetTimeouts overrides the per-connection handshake-read and per-write
// deadlines (zero leaves a direction unbounded). Call before Listen.
func (s *Server) SetTimeouts(handshake, write time.Duration) {
	s.handshakeTimeout = handshake
	s.writeTimeout = write
}

// SetMaxSessions caps concurrent client sessions (0 = unlimited).
// Connections over the cap wait in a bounded admission queue and are
// shed with a clean over-capacity refusal only once the queue is full or
// the wait deadline expires (see SetAdmissionQueue). Call before Listen.
func (s *Server) SetMaxSessions(n int) { s.maxSessions = n }

// SetAdmissionQueue tunes load shedding under a SetMaxSessions cap:
// depth is the number of connections allowed to wait for a session slot
// (0 = shed immediately when at capacity, the pre-queue behaviour), wait
// is the longest any of them waits before being shed. The defaults are
// depth = max sessions and a 1s wait. Call before Listen.
func (s *Server) SetAdmissionQueue(depth int, wait time.Duration) {
	s.queueDepth = depth
	s.queueWait = wait
	s.queueSet = true
}

// SetEncodeConfig overrides codec parameters.
func (s *Server) SetEncodeConfig(c EncodeConfig) { s.enc = c }

// SetMaxProtocolVersion makes the server refuse requests framed with a
// newer protocol version, answering them exactly as a pre-v(n+1) server
// would ("bad request"), so clients fall back stepwise. Zero (the
// default) accepts every version the server knows. Call before Listen.
func (s *Server) SetMaxProtocolVersion(v int) { s.maxProto = v }

// Listen starts accepting connections on addr and returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections from a caller-provided listener (chaos runs
// wrap a fault-injecting listener around a plain TCP one).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	if s.maxSessions > 0 && s.slots == nil {
		s.slots = make(chan struct{}, s.maxSessions)
		if !s.queueSet {
			s.queueDepth = s.maxSessions
			s.queueWait = time.Second
		}
	}
	s.mu.Unlock()
	s.serve(ln, s.clientSession)
}

// clientSession runs one accepted connection: admission, then the
// protocol handler (teardown and panic isolation live in the shared
// session wrapper). A shed connection is a clean refusal, not an
// error.
func (s *Server) clientSession(conn net.Conn) error {
	admitStart := time.Now()
	if err := s.admit(); err != nil {
		// Load shedding: refuse cleanly so resilient clients back off
		// and retry instead of timing out mid-handshake.
		s.sm.shed.Inc()
		if s.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		WriteOverCapacity(conn)
		return nil
	}
	defer s.release()
	return s.handle(conn, time.Since(admitStart))
}

// admit acquires a session slot, waiting in the bounded admission queue
// when the server is at capacity. It returns ErrOverCapacity when the
// queue is full, the wait deadline expires, or a shutdown begins.
func (s *Server) admit() error {
	if s.slots == nil {
		return nil
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queueDepth <= 0 {
		return ErrOverCapacity
	}
	if s.waiters.Add(1) > int64(s.queueDepth) {
		s.waiters.Add(-1)
		return ErrOverCapacity
	}
	s.sm.queueDepth.Set(float64(s.waiters.Load()))
	defer func() {
		s.waiters.Add(-1)
		s.sm.queueDepth.Set(float64(s.waiters.Load()))
	}()
	wait := s.queueWait
	if wait <= 0 {
		wait = time.Second
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-t.C:
		return ErrOverCapacity
	case <-s.drainCh:
		return ErrOverCapacity
	case <-s.ctx.Done():
		return ErrOverCapacity
	}
}

// release returns a session slot to the admission pool.
func (s *Server) release() {
	if s.slots != nil {
		<-s.slots
	}
}

func (s *Server) handle(rawConn net.Conn, admitWait time.Duration) error {
	ctx := obs.WithRegistry(s.ctx, s.obsReg)
	// The negotiation must arrive promptly; every later write re-arms
	// its own deadline so a stalled client cannot pin the session.
	conn := &deadlineConn{Conn: rawConn, readTimeout: s.handshakeTimeout, writeTimeout: s.writeTimeout}
	// One listener, two protocols: the 4-byte magic routes peer
	// artifact fetches (AFR1) to the cluster path, everything else to
	// the client negotiation parser.
	var magic [4]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		WriteError(conn, "bad request")
		return fmt.Errorf("%w: short request: %v", ErrProtocol, err)
	}
	if magic == cluster.FetchMagic {
		return s.serveFetch(ctx, conn)
	}
	req, err := readRequestBody(magic, conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	if s.maxProto > 0 && req.Version > s.maxProto {
		// Answer exactly as a server predating req.Version would: its
		// ReadRequest would have choked on the unknown magic.
		WriteError(conn, "bad request")
		return fmt.Errorf("request version %d above pinned max %d", req.Version, s.maxProto)
	}
	// A v3 request carries the caller's span context: this session
	// becomes a child in the caller's trace. Without one, the session
	// roots a trace of its own.
	if req.Trace.Valid() {
		ctx = obs.WithSpanContext(ctx, req.Trace)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "server.session")
	defer sp.End()
	sp.SetAttr("clip", req.Clip)
	sp.SetAttr("device", req.Device)
	sp.SetAttrInt("version", int64(req.Version))
	if admitWait > time.Millisecond {
		sp.SetAttr("admit_wait", admitWait.Round(time.Millisecond).String())
	}
	src, ok := s.catalog[req.Clip]
	if !ok {
		WriteError(conn, fmt.Sprintf("unknown clip %q", req.Clip))
		sp.SetAttr("error", "unknown clip")
		return fmt.Errorf("unknown clip %q requested by %q", req.Clip, req.Device)
	}
	switch req.Mode {
	case ModeRaw:
		sp.SetAttr("mode", "raw")
		err = s.streamRaw(ctx, conn, req.Clip, src)
	default:
		sp.SetAttr("mode", "annotated")
		err = s.streamAnnotated(ctx, conn, src, req)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return err
}

// digestOf memoises the content digest of a catalog clip: catalog
// sources are immutable, so one full-decode fingerprint per name is
// enough to key every cached artifact by content.
func (s *Server) digestOf(name string, src core.Source) string {
	s.digestMu.Lock()
	defer s.digestMu.Unlock()
	if d, ok := s.digests[name]; ok {
		return d
	}
	d := core.SourceDigest(src)
	s.digests[name] = d
	return d
}

// sourceByDigest maps a content digest back to a catalog clip. The
// requester's clip-name hint is tried first (one digest computation);
// a stale or missing hint falls back to scanning the catalog, so a
// renamed clip still resolves as long as its content matches.
func (s *Server) sourceByDigest(hint, digest string) (string, core.Source, bool) {
	if src, ok := s.catalog[hint]; ok && s.digestOf(hint, src) == digest {
		return hint, src, true
	}
	for name, src := range s.catalog {
		if s.digestOf(name, src) == digest {
			return name, src, true
		}
	}
	return "", nil, false
}

// resolveFetchRequest answers a peer's AFR1 artifact fetch: this node
// is the shard owner (or is acting as one while the owner is down), so
// it resolves the artifact through its own tier — computing at most
// once fleet-wide — and returns the encoded bytes. The digest is
// always verified against the catalog before the clip-name hint is
// trusted, and variants are only served when the encoder signature
// matches this node's configuration: a mismatch is a clean not-found,
// telling the requester to compute under its own settings rather than
// receive bits encoded under different parameters.
func (s *Server) resolveFetchRequest(ctx context.Context, req cluster.FetchRequest) ([]byte, error) {
	name, src, ok := s.sourceByDigest(req.Clip, req.Digest)
	if !ok {
		return nil, fmt.Errorf("%w: no catalog clip with digest %.16s", cluster.ErrNotFound, req.Digest)
	}
	cfg := s.enc.withDefaults(src.FPS())
	switch req.Kind {
	case "track":
		tr, err := s.track(ctx, name, src)
		if err != nil {
			return nil, err
		}
		return trackCodec.encode(tr)
	case "levels":
		tr, err := s.track(ctx, name, src)
		if err != nil {
			return nil, err
		}
		b := deviceLevelsChunk(ctx, s.tierFor(name), req.Digest, req.Device, tr)
		if b == nil {
			return nil, fmt.Errorf("%w: unknown device %q", cluster.ErrNotFound, req.Device)
		}
		return b, nil
	case "variant":
		if req.Suffix != encSig(cfg) {
			return nil, fmt.Errorf("%w: encoder config %s here, %s requested", cluster.ErrNotFound, encSig(cfg), req.Suffix)
		}
		tr, err := s.track(ctx, name, src)
		if err != nil {
			return nil, err
		}
		v, err := variantFor(ctx, s.tierFor(name), req.Digest, src, tr, req.Quality, cfg)
		if err != nil {
			return nil, err
		}
		return encodeVariantArtifact(v)
	case "raw":
		if req.Suffix != encSig(cfg) {
			return nil, fmt.Errorf("%w: encoder config %s here, %s requested", cluster.ErrNotFound, encSig(cfg), req.Suffix)
		}
		v, err := rawVariantFor(ctx, s.tierFor(name), req.Digest, src, cfg)
		if err != nil {
			return nil, err
		}
		return encodeVariantArtifact(v)
	}
	return nil, fmt.Errorf("%w: unknown artifact kind %q", cluster.ErrNotFound, req.Kind)
}

// track returns the clip's annotation track, computing and caching it on
// first use (the offline analysis step). Concurrent sessions requesting
// an uncached clip share one pipeline run via single-flight.
func (s *Server) track(ctx context.Context, name string, src core.Source) (*annotation.Track, error) {
	dg := s.digestOf(name, src)
	v, err := s.tierFor(name).getOrCompute(ctx,
		anncache.Key{Kind: "track", Digest: dg, Quality: -1}, "", trackCodec,
		func(ctx context.Context) (any, int64, error) {
			t, _, err := core.AnnotatePipeline(ctx, src, s.scene(src.FPS()), nil,
				core.AnnotateOptions{Workers: s.annWorkers})
			if err != nil {
				return nil, 0, err
			}
			return t, int64(t.Size()), nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*annotation.Track), nil
}

// streamAnnotated sends the annotated, compensated stream: the paper's
// server role. Variants are encoded once per (content digest, quality
// index) and cached; the device-levels side channel is cached per device.
func (s *Server) streamAnnotated(ctx context.Context, conn *deadlineConn, src core.Source, req Request) error {
	track, err := s.track(ctx, req.Clip, src)
	if err != nil {
		WriteError(conn, "annotation failed")
		return err
	}
	dg := s.digestOf(req.Clip, src)
	qi := track.QualityIndex(req.Quality)
	cfg := s.enc.withDefaults(src.FPS())
	getVariant := func(ctx context.Context, q int) (*variant, error) {
		return variantFor(ctx, s.tierFor(req.Clip), dg, src, track, q, cfg)
	}
	v, err := getVariant(ctx, qi)
	if err != nil {
		WriteError(conn, "encoding failed")
		return err
	}
	from, err := resumePoint(v.frames, req)
	if err != nil {
		WriteError(conn, err.Error())
		return err
	}
	if from > 0 {
		s.sm.resumes.Inc()
	}
	levels := deviceLevelsChunk(ctx, s.tierFor(req.Clip), dg, req.Device, track)
	if req.Adaptive && req.Version >= 4 {
		sent, switches, err := sendAdaptive(ctx, conn, src, track, v, getVariant, levels, from, qi,
			s.obsReg, "server", s.sm.framesSent, s.sm.bytesSent)
		if err == nil {
			accountSessionPower(s.obsReg, "server", req, src, track, qi, from, sent, switches)
		}
		return err
	}
	sent, err := sendVariant(ctx, conn, src, track, v, levels, from, s.sm.framesSent, s.sm.bytesSent)
	if err == nil {
		// The session streamed to completion: fold its modeled power
		// accounting into the fleet-wide power_saved_* / session_*
		// families. The levels the client will apply are fully
		// determined by the track, device and quality index, so the
		// server can account savings without hearing back.
		accountSessionPower(s.obsReg, "server", req, src, track, qi, from, sent, nil)
	}
	return err
}

// accountSessionPower reconstructs a served session's power ledger from
// what went over the wire — per-scene backlight levels for the client's
// device at the negotiated quality — and aggregates it into the
// power_saved_* / session_* families under the given role. For an
// adaptive session, switches lists the mid-stream rung changes (in
// frame order), so each frame is accounted at the rung it was actually
// served at.
func accountSessionPower(reg *obs.Registry, role string, req Request, src core.Source, track *annotation.Track, qi, from int, wireBytes uint64, switches []rungSwitch) {
	if reg == nil {
		return
	}
	dev := display.ByName(req.Device)
	if dev == nil {
		return
	}
	levels := track.LevelsFor(dev)
	if len(levels) != len(track.Records) {
		return
	}
	led := power.NewLedger(dev)
	if req.Adaptive {
		led.SetRung(qi)
	}
	frameSeconds := 1 / float64(src.FPS())
	cur := qi
	next := 0
	pos := 0
	for si, rec := range track.Records {
		sceneStarted := false
		for i := 0; i < rec.Frames; i++ {
			for next < len(switches) && switches[next].frame <= pos {
				cur = switches[next].rung
				led.QualitySwitch(cur)
				next++
			}
			if pos >= from {
				lvl := levels[si][cur]
				if !sceneStarted {
					led.StartScene(si, lvl)
					sceneStarted = true
				}
				led.Frame(frameSeconds, lvl)
			}
			pos++
		}
	}
	led.AddWireBytes(int64(wireBytes))
	led.Report().EmitMetrics(reg, role)
}

// deviceLevelsChunk resolves the device-specific backlight level table
// side channel, cached per (content digest, device profile); nil when
// the device is unknown (the chunk is optional).
func deviceLevelsChunk(ctx context.Context, t tier, digest, deviceName string, track *annotation.Track) []byte {
	dev := display.ByName(deviceName)
	if dev == nil {
		return nil
	}
	v, err := t.getOrCompute(ctx,
		anncache.Key{Kind: "levels", Digest: digest, Quality: -1, Device: deviceName}, "", levelsCodec,
		func(context.Context) (any, int64, error) {
			levels, err := annotation.EncodeLevels(track.LevelsFor(dev))
			if err != nil {
				return nil, 0, err
			}
			return levels, int64(len(levels)), nil
		})
	if err != nil {
		return nil
	}
	return v.([]byte)
}

// resumePoint maps a v2 resume request onto the variant: the stream must
// restart at an I-frame, so the requested start frame is rounded down to
// the nearest intra boundary (frame 0 always is one).
func resumePoint(frames []*codec.EncodedFrame, req Request) (int, error) {
	if req.Version < 2 || req.StartFrame == 0 {
		return 0, nil
	}
	if req.StartFrame >= uint32(len(frames)) {
		return 0, fmt.Errorf("start frame %d beyond clip (%d frames)", req.StartFrame, len(frames))
	}
	from := int(req.StartFrame)
	for from > 0 && frames[from].Type != codec.IFrame {
		from--
	}
	return from, nil
}

// prepareVariant compensates and encodes src at quality index qi and
// computes the decode-cycle and scene-byte side channels. The whole
// stream is encoded before anything is sent so that all annotations are
// available to the client before it decodes anything — the point of
// annotating ahead of time (§3).
func prepareVariant(ctx context.Context, src core.Source, track *annotation.Track, qi int, cfg EncodeConfig) (*variant, error) {
	width, height := src.Size()
	enc, err := codec.NewEncoder(width, height, cfg.GOP, cfg.QScale)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx, "stream.compensate_encode")
	cursor := track.NewCursor(qi)
	n := src.TotalFrames()
	frames := make([]*codec.EncodedFrame, 0, n)
	for i := 0; i < n; i++ {
		target, _ := cursor.Next()
		f := core.CompensateFrame(src.Frame(i), target, compensate.ContrastEnhancement)
		ef, err := enc.Encode(f)
		if err != nil {
			return nil, err
		}
		frames = append(frames, ef)
	}
	sp.End()

	// Decode-complexity annotations (ChunkDecodeCycles).
	sp = obs.StartSpan(ctx, "stream.annotate_sidechannels")
	model := dvs.DefaultCycleModel()
	estimates := make([]float64, n)
	for i, ef := range frames {
		estimates[i] = model.Estimate(ef, width, height)
	}
	cycles := dvs.Annotate(estimates, 0.10)

	// Per-scene byte counts (ChunkSceneBytes), aligned with the
	// annotation track's records.
	var nsScenes []netsched.Scene
	pos := 0
	for _, rec := range track.Records {
		bytes := 0
		for i := pos; i < pos+rec.Frames && i < n; i++ {
			bytes += len(frames[i].Data)
		}
		nsScenes = append(nsScenes, netsched.Scene{
			Bytes:   bytes,
			Seconds: float64(rec.Frames) / float64(src.FPS()),
		})
		pos += rec.Frames
	}
	v := &variant{
		frames:      frames,
		cyclesChunk: dvs.EncodeCycles(cycles),
		scenesChunk: netsched.EncodeScenes(nsScenes),
	}
	sp.End()
	if err := v.seal(); err != nil {
		return nil, err
	}
	return v, nil
}

// prepareRawVariant encodes src untouched — no compensation, no side
// channels — into wire form: the payload of a ModeRaw session, cached
// through the artifact tier like any other variant so repeated raw
// fetches (a proxy re-filling after eviction, a second proxy cold
// start) stream cached bytes instead of re-encoding the clip.
func prepareRawVariant(ctx context.Context, src core.Source, cfg EncodeConfig) (*variant, error) {
	width, height := src.Size()
	enc, err := codec.NewEncoder(width, height, cfg.GOP, cfg.QScale)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx, "stream.raw_encode")
	defer sp.End()
	n := src.TotalFrames()
	frames := make([]*codec.EncodedFrame, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ef, err := enc.Encode(src.Frame(i))
		if err != nil {
			return nil, err
		}
		frames = append(frames, ef)
	}
	v := &variant{frames: frames}
	if err := v.seal(); err != nil {
		return nil, err
	}
	return v, nil
}

// rawVariantFor is variantFor's ModeRaw counterpart: encode once per
// (content digest, encoder config), serve forever.
func rawVariantFor(ctx context.Context, t tier, digest string, src core.Source, cfg EncodeConfig) (*variant, error) {
	vAny, err := t.getOrCompute(ctx,
		anncache.Key{Kind: "raw", Digest: digest, Quality: -1}, encSig(cfg), variantCodec,
		func(ctx context.Context) (any, int64, error) {
			v, err := prepareRawVariant(ctx, src, cfg)
			if err != nil {
				return nil, 0, err
			}
			return v, v.cost(), nil
		})
	if err != nil {
		return nil, err
	}
	return vAny.(*variant), nil
}

// countingWriter counts bytes written (the bytes-sent accounting).
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// ReadFrom forwards to the underlying writer's ReadFrom when it has
// one (the sendfile chain down to a TCP connection) while keeping the
// byte count; otherwise it copies through a pooled buffer so the warm
// path never allocates a fresh io.Copy buffer.
func (c *countingWriter) ReadFrom(r io.Reader) (int64, error) {
	if rf, ok := c.w.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(r)
		c.n += uint64(n)
		return n, err
	}
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(onlyWriter{c}, r, *bp)
	copyBufPool.Put(bp)
	return n, err
}

// wireChunkSize bounds a single write on the zero-copy path. Chunking
// keeps the old per-frame write semantics a stalled client depends on:
// each chunk re-arms the connection's write deadline and observes ctx
// cancellation, so one contiguous multi-megabyte wire write cannot pin
// a session past its timeout.
const wireChunkSize = 256 << 10

// errWireFileGone reports that a variant's backing artifact file could
// not be opened (evicted or store closed) before any byte was written;
// the in-memory wire is still authoritative, so callers fall back.
var errWireFileGone = errors.New("stream: wire artifact file unavailable")

// sendWire streams frames [from, to) of a sealed variant — the
// zero-copy warm path. The bytes go out as chunked slices of v.wire
// with no per-frame writes, copies or allocations; when the variant
// was decoded straight from a store artifact, the chunks stream from
// the file itself so a TCP connection can move them with sendfile.
func sendWire(ctx context.Context, cw *container.Writer, v *variant, from, to int, framesSent *obs.Counter) error {
	if from >= to {
		return nil
	}
	start, end := int64(v.offs[from]), int64(v.offs[to])
	if v.ref.path != "" {
		err := sendWireFile(ctx, cw, v.ref, start, end)
		if err == nil {
			framesSent.Add(uint64(to - from))
			return nil
		}
		if err != errWireFileGone {
			return err
		}
		// File gone before any byte moved: serve from memory instead.
	}
	for off := start; off < end; {
		if err := ctx.Err(); err != nil {
			return err
		}
		seg := off + wireChunkSize
		if seg > end {
			seg = end
		}
		if err := cw.WritePackets(v.wire[off:seg], 0); err != nil {
			return err
		}
		off = seg
	}
	framesSent.Add(uint64(to - from))
	return nil
}

// sendWireFile streams the wire range [start, end) from the variant's
// backing artifact file. It returns errWireFileGone only for failures
// that happen before any byte is written (open/seek); once bytes may
// have reached the socket, errors are final — retrying from memory
// would duplicate data on the wire.
func sendWireFile(ctx context.Context, cw *container.Writer, ref wireFileRef, start, end int64) error {
	f, err := os.Open(ref.path)
	if err != nil {
		return errWireFileGone
	}
	defer f.Close()
	if _, err := f.Seek(ref.off+start, io.SeekStart); err != nil {
		return errWireFileGone
	}
	for off := start; off < end; {
		if err := ctx.Err(); err != nil {
			return err
		}
		seg := end - off
		if seg > wireChunkSize {
			seg = wireChunkSize
		}
		if err := cw.ReadPacketsFrom(f, seg, 0); err != nil {
			return err
		}
		off += seg
	}
	return nil
}

// sendVariant writes the annotated container for a prepared variant,
// starting at frame index from (an I-frame boundary; nonzero for a
// resumed session, in which case the resume-offset side channel tells
// the client where the stream picks up). A non-nil levelsChunk is the
// device-specific backlight level table shipped as a side channel
// (§4.3's negotiation option).
//
// The returned byte count is the bytes actually written to w, success
// or failure: the counting wrapper is read exactly once, after the
// body finishes, and the same figure feeds the bytesSent counter — a
// mid-stream failure can neither double-count nor under-report what
// reached the wire.
func sendVariant(ctx context.Context, w io.Writer, src core.Source, track *annotation.Track, v *variant, levelsChunk []byte, from int, framesSent, bytesSent *obs.Counter) (uint64, error) {
	sp := obs.StartSpan(ctx, "stream.send")
	defer sp.End()
	cw0 := &countingWriter{w: w}
	err := func() error {
		width, height := src.Size()
		extra := map[uint8][]byte{
			container.ChunkDecodeCycles: v.cyclesChunk,
			container.ChunkSceneBytes:   v.scenesChunk,
		}
		if from > 0 {
			extra[container.ChunkResumeOffset] = container.EncodeResumeOffset(uint32(from))
		}
		if levelsChunk != nil {
			extra[container.ChunkDeviceLevels] = levelsChunk
		}
		cw, err := container.NewWriter(cw0, container.Header{
			W: width, H: height, FPS: src.FPS(),
			FrameCount:  len(v.frames) - from,
			Annotations: track,
			Extra:       extra,
		})
		if err != nil {
			return err
		}
		return sendWire(ctx, cw, v, from, len(v.frames), framesSent)
	}()
	bytesSent.Add(cw0.n)
	sp.SetAttrInt("bytes", int64(cw0.n))
	return cw0.n, err
}

// streamRaw sends the stored clip untouched (for proxies), serving the
// encoded form from the artifact tier: the first fetch pays one encode
// and writes through to the store, every later fetch streams the
// cached wire bytes zero-copy instead of re-encoding the clip.
func (s *Server) streamRaw(ctx context.Context, w io.Writer, name string, src core.Source) error {
	cw0 := &countingWriter{w: w}
	defer func() {
		s.sm.bytesSent.Add(cw0.n)
	}()
	cfg := s.enc.withDefaults(src.FPS())
	v, err := rawVariantFor(ctx, s.tierFor(name), s.digestOf(name, src), src, cfg)
	if err != nil {
		return err
	}
	width, height := src.Size()
	cw, err := container.NewWriter(cw0, container.Header{
		W: width, H: height, FPS: src.FPS(), FrameCount: src.TotalFrames(),
	})
	if err != nil {
		return err
	}
	return sendWire(ctx, cw, v, 0, len(v.frames), s.sm.framesSent)
}
