package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/compensate"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/dvs"
	"repro/internal/netsched"
	"repro/internal/obs"
	"repro/internal/scene"
)

// DefaultCacheCapacity is the artifact-cache byte budget servers and
// proxies start with.
const DefaultCacheCapacity = 256 << 20

// EncodeConfig controls the codec parameters the server streams with.
type EncodeConfig struct {
	GOP    int // I-frame interval (defaults to one second of frames)
	QScale int // quantiser scale (defaults to 4)
}

func (c EncodeConfig) withDefaults(fps int) EncodeConfig {
	if c.GOP <= 0 {
		c.GOP = fps
	}
	if c.QScale <= 0 {
		c.QScale = 4
	}
	return c
}

// serverMetrics are the server's obs handles. Every field is nil until
// SetObserver installs a registry; nil metrics no-op, so the
// instrumentation below runs unconditionally at zero cost when
// telemetry is disabled.
type serverMetrics struct {
	activeConns  *obs.Gauge
	connsTotal   *obs.Counter
	framesSent   *obs.Counter
	bytesSent    *obs.Counter
	acceptErrors *obs.Counter
	sessErrors   *obs.Counter
	refused      *obs.Counter
	resumes      *obs.Counter
}

func newServerMetrics(r *obs.Registry, role string) serverMetrics {
	l := obs.L("role", role)
	return serverMetrics{
		activeConns: r.Gauge("stream_active_conns",
			"Client connections currently being served.", l),
		connsTotal: r.Counter("stream_conns_total",
			"Client connections accepted since start.", l),
		framesSent: r.Counter("stream_frames_sent_total",
			"Encoded frames written to clients.", l),
		bytesSent: r.Counter("stream_bytes_sent_total",
			"Bytes written to clients (container payload).", l),
		acceptErrors: r.Counter("stream_accept_errors_total",
			"Unexpected listener accept errors.", l),
		sessErrors: r.Counter("stream_session_errors_total",
			"Sessions that ended with an error.", l),
		refused: r.Counter("stream_sessions_refused_total",
			"Connections refused by the max-concurrent-sessions limit.", l),
		resumes: r.Counter("stream_resumes_total",
			"Sessions resumed mid-clip via the start_frame extension.", l),
	}
}

// Server stores clips and streams them, annotated and compensated, to
// clients. It plays the role of the multimedia server of Figure 1.
type Server struct {
	catalog map[string]core.Source
	scene   func(fps int) scene.Config
	enc     EncodeConfig

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsReg *obs.Registry
	sm     serverMetrics

	// handshakeTimeout bounds reading the negotiation request;
	// writeTimeout is re-armed before every write, so a client that
	// stops draining its socket cannot pin a session goroutine.
	handshakeTimeout time.Duration
	writeTimeout     time.Duration
	// maxSessions caps concurrent sessions (0 = unlimited); connections
	// over the cap get a clean over-capacity refusal that resilient
	// clients back off and retry on.
	maxSessions int

	// ctx is cancelled by Close; sessions check it between frames so a
	// shutdown (or a client stalled past its write deadline) releases
	// the goroutine promptly.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup

	// cache holds every artifact the offline pipeline produces —
	// annotation tracks, encoded quality variants, device level tables —
	// keyed by content digest, with single-flight dedup across sessions.
	cache *anncache.Cache
	// annWorkers is the annotation pipeline's worker-pool size.
	annWorkers int
	// digests memoises the content digest per catalog clip name (the
	// catalog is immutable once the server is serving).
	digestMu sync.Mutex
	digests  map[string]string
}

// variant is one pre-encoded quality level of a clip.
type variant struct {
	frames      []*codec.EncodedFrame
	cyclesChunk []byte
	scenesChunk []byte
}

// cost is the variant's cache cost in bytes.
func (v *variant) cost() int64 {
	c := int64(len(v.cyclesChunk) + len(v.scenesChunk))
	for _, ef := range v.frames {
		c += int64(ef.Size())
	}
	return c
}

// NewServer builds a server over the given catalog.
func NewServer(catalog map[string]core.Source) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		catalog:          catalog,
		scene:            scene.DefaultConfig,
		enc:              EncodeConfig{},
		logFn:            log.Printf,
		handshakeTimeout: 10 * time.Second,
		writeTimeout:     30 * time.Second,
		ctx:              ctx,
		cancel:           cancel,
		conns:            map[net.Conn]struct{}{},
		cache:            anncache.New(DefaultCacheCapacity),
		annWorkers:       runtime.GOMAXPROCS(0),
		digests:          map[string]string{},
	}
}

// SetAnnotateWorkers sets the annotation pipeline's worker-pool size
// (<= 1 selects the sequential path). Call before Listen.
func (s *Server) SetAnnotateWorkers(n int) { s.annWorkers = n }

// SetCacheCapacity bounds the artifact cache to capacityBytes (<= 0 is
// unlimited), evicting immediately if already over.
func (s *Server) SetCacheCapacity(capacityBytes int64) { s.cache.SetCapacity(capacityBytes) }

// SetTimeouts overrides the per-connection handshake-read and per-write
// deadlines (zero leaves a direction unbounded). Call before Listen.
func (s *Server) SetTimeouts(handshake, write time.Duration) {
	s.handshakeTimeout = handshake
	s.writeTimeout = write
}

// SetMaxSessions caps concurrent client sessions; further connections
// receive a clean over-capacity refusal (0 = unlimited). Call before
// Listen.
func (s *Server) SetMaxSessions(n int) { s.maxSessions = n }

// SetLogf replaces the server's logger (tests silence it). Safe to call
// while the server is accepting connections.
func (s *Server) SetLogf(f func(string, ...any)) {
	s.logMu.Lock()
	s.logFn = f
	s.logMu.Unlock()
}

// logf logs through the current logger; the mutex makes SetLogf safe
// against concurrent session goroutines.
func (s *Server) logf(format string, args ...any) {
	s.logMu.Lock()
	f := s.logFn
	s.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry. Call before Listen.
func (s *Server) SetObserver(r *obs.Registry) {
	s.obsReg = r
	s.sm = newServerMetrics(r, "server")
	s.cache.SetObserver(r, obs.L("role", "server"))
}

// SetEncodeConfig overrides codec parameters.
func (s *Server) SetEncodeConfig(c EncodeConfig) { s.enc = c }

// Listen starts accepting connections on addr and returns the bound
// address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections from a caller-provided listener (chaos runs
// wrap a fault-injecting listener around a plain TCP one).
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // orderly shutdown, not an error
			}
			s.sm.acceptErrors.Inc()
			s.logf("stream server: accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		if s.maxSessions > 0 && len(s.conns) >= s.maxSessions {
			s.mu.Unlock()
			// Admission control: refuse cleanly so resilient clients
			// back off and retry instead of timing out mid-handshake.
			s.sm.refused.Inc()
			conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			WriteOverCapacity(conn)
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		s.sm.connsTotal.Inc()
		s.sm.activeConns.Add(1)
		go func() {
			defer s.handlers.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
				s.sm.activeConns.Add(-1)
			}()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				s.sm.sessErrors.Inc()
				s.logf("stream server: %v", err)
			}
		}()
	}
}

// Close stops the listener, cancels in-flight sessions and closes
// active connections.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.handlers.Wait()
}

func (s *Server) handle(rawConn net.Conn) error {
	ctx := obs.WithRegistry(s.ctx, s.obsReg)
	// The negotiation must arrive promptly; every later write re-arms
	// its own deadline so a stalled client cannot pin the session.
	conn := &deadlineConn{Conn: rawConn, readTimeout: s.handshakeTimeout, writeTimeout: s.writeTimeout}
	req, err := ReadRequest(conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	src, ok := s.catalog[req.Clip]
	if !ok {
		WriteError(conn, fmt.Sprintf("unknown clip %q", req.Clip))
		return fmt.Errorf("unknown clip %q requested by %q", req.Clip, req.Device)
	}
	switch req.Mode {
	case ModeRaw:
		return s.streamRaw(ctx, conn, src)
	default:
		return s.streamAnnotated(ctx, conn, src, req)
	}
}

// digestOf memoises the content digest of a catalog clip: catalog
// sources are immutable, so one full-decode fingerprint per name is
// enough to key every cached artifact by content.
func (s *Server) digestOf(name string, src core.Source) string {
	s.digestMu.Lock()
	defer s.digestMu.Unlock()
	if d, ok := s.digests[name]; ok {
		return d
	}
	d := core.SourceDigest(src)
	s.digests[name] = d
	return d
}

// track returns the clip's annotation track, computing and caching it on
// first use (the offline analysis step). Concurrent sessions requesting
// an uncached clip share one pipeline run via single-flight.
func (s *Server) track(ctx context.Context, name string, src core.Source) (*annotation.Track, error) {
	dg := s.digestOf(name, src)
	v, err := s.cache.GetOrCompute(
		anncache.Key{Kind: "track", Digest: dg, Quality: -1},
		func() (any, int64, error) {
			t, _, err := core.AnnotatePipeline(ctx, src, s.scene(src.FPS()), nil,
				core.AnnotateOptions{Workers: s.annWorkers})
			if err != nil {
				return nil, 0, err
			}
			return t, int64(t.Size()), nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*annotation.Track), nil
}

// streamAnnotated sends the annotated, compensated stream: the paper's
// server role. Variants are encoded once per (content digest, quality
// index) and cached; the device-levels side channel is cached per device.
func (s *Server) streamAnnotated(ctx context.Context, w io.Writer, src core.Source, req Request) error {
	track, err := s.track(ctx, req.Clip, src)
	if err != nil {
		WriteError(w, "annotation failed")
		return err
	}
	dg := s.digestOf(req.Clip, src)
	qi := track.QualityIndex(req.Quality)
	vAny, err := s.cache.GetOrCompute(
		anncache.Key{Kind: "variant", Digest: dg, Quality: qi},
		func() (any, int64, error) {
			v, err := prepareVariant(ctx, src, track, qi, s.enc.withDefaults(src.FPS()))
			if err != nil {
				return nil, 0, err
			}
			return v, v.cost(), nil
		})
	if err != nil {
		WriteError(w, "encoding failed")
		return err
	}
	v := vAny.(*variant)
	from, err := resumePoint(v.frames, req)
	if err != nil {
		WriteError(w, err.Error())
		return err
	}
	if from > 0 {
		s.sm.resumes.Inc()
	}
	levels := deviceLevelsChunk(s.cache, dg, req.Device, track)
	return sendVariant(ctx, w, src, track, v, levels, from, s.sm.framesSent, s.sm.bytesSent)
}

// deviceLevelsChunk resolves the device-specific backlight level table
// side channel, cached per (content digest, device profile); nil when
// the device is unknown (the chunk is optional).
func deviceLevelsChunk(c *anncache.Cache, digest, deviceName string, track *annotation.Track) []byte {
	dev := display.ByName(deviceName)
	if dev == nil {
		return nil
	}
	v, err := c.GetOrCompute(
		anncache.Key{Kind: "levels", Digest: digest, Quality: -1, Device: deviceName},
		func() (any, int64, error) {
			levels, err := annotation.EncodeLevels(track.LevelsFor(dev))
			if err != nil {
				return nil, 0, err
			}
			return levels, int64(len(levels)), nil
		})
	if err != nil {
		return nil
	}
	return v.([]byte)
}

// resumePoint maps a v2 resume request onto the variant: the stream must
// restart at an I-frame, so the requested start frame is rounded down to
// the nearest intra boundary (frame 0 always is one).
func resumePoint(frames []*codec.EncodedFrame, req Request) (int, error) {
	if req.Version < 2 || req.StartFrame == 0 {
		return 0, nil
	}
	if req.StartFrame >= uint32(len(frames)) {
		return 0, fmt.Errorf("start frame %d beyond clip (%d frames)", req.StartFrame, len(frames))
	}
	from := int(req.StartFrame)
	for from > 0 && frames[from].Type != codec.IFrame {
		from--
	}
	return from, nil
}

// prepareVariant compensates and encodes src at quality index qi and
// computes the decode-cycle and scene-byte side channels. The whole
// stream is encoded before anything is sent so that all annotations are
// available to the client before it decodes anything — the point of
// annotating ahead of time (§3).
func prepareVariant(ctx context.Context, src core.Source, track *annotation.Track, qi int, cfg EncodeConfig) (*variant, error) {
	width, height := src.Size()
	enc, err := codec.NewEncoder(width, height, cfg.GOP, cfg.QScale)
	if err != nil {
		return nil, err
	}
	sp := obs.StartSpan(ctx, "stream.compensate_encode")
	cursor := track.NewCursor(qi)
	n := src.TotalFrames()
	frames := make([]*codec.EncodedFrame, 0, n)
	for i := 0; i < n; i++ {
		target, _ := cursor.Next()
		f := core.CompensateFrame(src.Frame(i), target, compensate.ContrastEnhancement)
		ef, err := enc.Encode(f)
		if err != nil {
			return nil, err
		}
		frames = append(frames, ef)
	}
	sp.End()

	// Decode-complexity annotations (ChunkDecodeCycles).
	sp = obs.StartSpan(ctx, "stream.annotate_sidechannels")
	model := dvs.DefaultCycleModel()
	estimates := make([]float64, n)
	for i, ef := range frames {
		estimates[i] = model.Estimate(ef, width, height)
	}
	cycles := dvs.Annotate(estimates, 0.10)

	// Per-scene byte counts (ChunkSceneBytes), aligned with the
	// annotation track's records.
	var nsScenes []netsched.Scene
	pos := 0
	for _, rec := range track.Records {
		bytes := 0
		for i := pos; i < pos+rec.Frames && i < n; i++ {
			bytes += len(frames[i].Data)
		}
		nsScenes = append(nsScenes, netsched.Scene{
			Bytes:   bytes,
			Seconds: float64(rec.Frames) / float64(src.FPS()),
		})
		pos += rec.Frames
	}
	v := &variant{
		frames:      frames,
		cyclesChunk: dvs.EncodeCycles(cycles),
		scenesChunk: netsched.EncodeScenes(nsScenes),
	}
	sp.End()
	return v, nil
}

// countingWriter counts bytes written (the bytes-sent accounting).
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// sendVariant writes the annotated container for a prepared variant,
// starting at frame index from (an I-frame boundary; nonzero for a
// resumed session, in which case the resume-offset side channel tells
// the client where the stream picks up). A non-nil levelsChunk is the
// device-specific backlight level table shipped as a side channel
// (§4.3's negotiation option).
func sendVariant(ctx context.Context, w io.Writer, src core.Source, track *annotation.Track, v *variant, levelsChunk []byte, from int, framesSent, bytesSent *obs.Counter) error {
	sp := obs.StartSpan(ctx, "stream.send")
	defer sp.End()
	cw0 := &countingWriter{w: w}
	defer func() {
		bytesSent.Add(cw0.n)
	}()
	width, height := src.Size()
	extra := map[uint8][]byte{
		container.ChunkDecodeCycles: v.cyclesChunk,
		container.ChunkSceneBytes:   v.scenesChunk,
	}
	if from > 0 {
		extra[container.ChunkResumeOffset] = container.EncodeResumeOffset(uint32(from))
	}
	if levelsChunk != nil {
		extra[container.ChunkDeviceLevels] = levelsChunk
	}
	cw, err := container.NewWriter(cw0, container.Header{
		W: width, H: height, FPS: src.FPS(),
		FrameCount:  len(v.frames) - from,
		Annotations: track,
		Extra:       extra,
	})
	if err != nil {
		return err
	}
	for _, ef := range v.frames[from:] {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cw.WriteFrame(ef); err != nil {
			return err
		}
		framesSent.Inc()
	}
	return nil
}

// streamRaw sends the stored clip untouched (for proxies).
func (s *Server) streamRaw(ctx context.Context, w io.Writer, src core.Source) error {
	cw0 := &countingWriter{w: w}
	defer func() {
		s.sm.bytesSent.Add(cw0.n)
	}()
	width, height := src.Size()
	cw, err := container.NewWriter(cw0, container.Header{
		W: width, H: height, FPS: src.FPS(), FrameCount: src.TotalFrames(),
	})
	if err != nil {
		return err
	}
	cfg := s.enc.withDefaults(src.FPS())
	enc, err := codec.NewEncoder(width, height, cfg.GOP, cfg.QScale)
	if err != nil {
		return err
	}
	n := src.TotalFrames()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ef, err := enc.Encode(src.Frame(i))
		if err != nil {
			return err
		}
		if err := cw.WriteFrame(ef); err != nil {
			return err
		}
		s.sm.framesSent.Inc()
	}
	return nil
}
