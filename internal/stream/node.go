package stream

import (
	"context"
	"errors"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/anncache"
	"repro/internal/annstore"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// nodeCore is the serving substrate the Server and Proxy share: one
// process that accepts connections, dispatches each by its 4-byte
// magic (client sessions vs peer artifact fetches), owns the artifact
// cache/store tier, and drains cleanly. Embedding it lets a single
// streamd node simultaneously serve clients, fetch artifacts from
// cluster peers, and answer peer fetches over the same listener.
type nodeCore struct {
	// role labels logs and metrics ("server" or "proxy").
	role string

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsReg *obs.Registry
	sm     serverMetrics

	// ctx is cancelled by Close; sessions check it between frames so a
	// shutdown (or a client stalled past its write deadline) releases
	// the goroutine promptly.
	ctx    context.Context
	cancel context.CancelFunc

	// drainCh closes when a graceful shutdown begins: queued admissions
	// shed immediately while in-flight sessions keep streaming, and
	// background probers (upstream recovery, cluster peer health) stop.
	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	handlers sync.WaitGroup

	// cache holds every artifact the offline pipeline produces, keyed
	// by content digest, with single-flight dedup across sessions.
	cache *anncache.Cache
	// store, when set, is the persistent tier under the cache.
	store *annstore.Store
	// annWorkers is the annotation pipeline's worker-pool size.
	annWorkers int

	// cnode, when set, shards artifact ownership across the member
	// list: local misses fill from the shard owner before computing,
	// and incoming AFR1 frames are answered through resolveFetch.
	cnode *cluster.Node
	// resolveFetch produces the encoded bytes of a requested artifact
	// for a peer (role-specific: the server resolves from its catalog,
	// the proxy through its upstream fetch path).
	resolveFetch func(ctx context.Context, req cluster.FetchRequest) ([]byte, error)
}

// initCore readies the embedded substrate (called from the role
// constructors).
func (n *nodeCore) initCore(role string) {
	n.role = role
	n.logFn = log.Printf
	n.ctx, n.cancel = context.WithCancel(context.Background())
	n.drainCh = make(chan struct{})
	n.conns = map[net.Conn]struct{}{}
	n.cache = anncache.New(DefaultCacheCapacity)
	n.annWorkers = runtime.GOMAXPROCS(0)
}

// SetLogf replaces the node's logger (tests silence it). Safe to call
// while the node is accepting connections.
func (n *nodeCore) SetLogf(f func(string, ...any)) {
	n.logMu.Lock()
	n.logFn = f
	n.logMu.Unlock()
	if n.cnode != nil {
		n.cnode.SetLogf(f)
	}
}

// logf logs through the current logger; the mutex makes SetLogf safe
// against concurrent session goroutines.
func (n *nodeCore) logf(format string, args ...any) {
	n.logMu.Lock()
	f := n.logFn
	n.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry. Call before Listen. (The
// proxy shadows this to add its upstream metric families.)
func (n *nodeCore) SetObserver(r *obs.Registry) {
	n.obsReg = r
	n.sm = newServerMetrics(r, n.role)
	n.cache.SetObserver(r, obs.L("role", n.role))
	if n.cnode != nil {
		n.cnode.SetObserver(r, obs.L("role", n.role))
	}
}

// SetAnnotateWorkers sets the annotation pipeline's worker-pool size
// (<= 1 selects the sequential path). Call before Listen.
func (n *nodeCore) SetAnnotateWorkers(workers int) { n.annWorkers = workers }

// SetCacheCapacity bounds the artifact cache to capacityBytes (<= 0 is
// unlimited), evicting immediately if already over.
func (n *nodeCore) SetCacheCapacity(capacityBytes int64) { n.cache.SetCapacity(capacityBytes) }

// SetStore installs a persistent artifact store as the second tier
// beneath the memory cache: lookups go memory → disk → (peer fill) →
// compute, and computed artifacts are written through. Call before
// Listen.
func (n *nodeCore) SetStore(st *annstore.Store) { n.store = st }

// SetCluster joins the node to a sharded serving cluster: artifact
// misses route through cn's rendezvous hash and fill from the shard
// owner, and the listener answers peer AFR1 fetches. The node starts
// cn's health prober and stops it on drain. Call before Listen.
func (n *nodeCore) SetCluster(cn *cluster.Node) {
	n.cnode = cn
	if cn == nil {
		return
	}
	n.logMu.Lock()
	f := n.logFn
	n.logMu.Unlock()
	cn.SetLogf(f)
	if n.obsReg != nil {
		cn.SetObserver(n.obsReg, obs.L("role", n.role))
	}
}

// Cluster returns the attached cluster node (nil when unclustered).
func (n *nodeCore) Cluster() *cluster.Node { return n.cnode }

// tier is the local two-level artifact lookup (no peer fill) — what
// peer-facing resolution and unclustered nodes use.
func (n *nodeCore) tier() tier { return tier{cache: n.cache, store: n.store} }

// tierFor is the cluster-aware lookup for clip: memory → disk → shard
// owner → compute. The clip name rides each fetch as the hint that
// lets an owner map the one-way content digest back to its catalog.
func (n *nodeCore) tierFor(clip string) tier {
	return tier{cache: n.cache, store: n.store, node: n.cnode, clip: clip}
}

// serve installs ln and accepts connections, running handler for each
// inside the shared session wrapper (conn bookkeeping, panic
// isolation, error accounting).
func (n *nodeCore) serve(ln net.Listener, handler func(net.Conn) error) {
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	if n.cnode != nil {
		n.cnode.Start()
	}
	go n.acceptLoop(ln, handler)
}

func (n *nodeCore) acceptLoop(ln net.Listener, handler func(net.Conn) error) {
	acceptWithBackoff(ln, "stream "+n.role, n.logf, n.sm.acceptErrors, func(conn net.Conn) {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.handlers.Add(1)
		n.mu.Unlock()
		n.sm.connsTotal.Inc()
		n.sm.activeConns.Add(1)
		go n.session(conn, handler)
	})
}

// session runs one accepted connection through the role handler with
// teardown and panic isolation: a panic anywhere in the session is
// recovered here — the session dies, the process (and every other
// session) survives.
func (n *nodeCore) session(conn net.Conn, handler func(net.Conn) error) {
	defer n.handlers.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		conn.Close()
		n.sm.activeConns.Add(-1)
	}()
	defer func() {
		if r := recover(); r != nil {
			n.sm.panics.Inc()
			n.logf("stream %s: session panic (recovered): %v\n%s", n.role, r, debug.Stack())
		}
	}()
	if err := handler(conn); err != nil && !errors.Is(err, io.EOF) {
		n.sm.sessErrors.Inc()
		n.logf("stream %s: %v", n.role, err)
	}
}

// beginDrain stops the listener and flips the node to draining:
// /readyz-style checks fail immediately, queued admissions shed,
// background probers stop, but in-flight sessions keep streaming.
func (n *nodeCore) beginDrain() {
	n.draining.Store(true)
	n.sm.draining.Set(1)
	n.drainOnce.Do(func() { close(n.drainCh) })
	n.mu.Lock()
	n.closed = true
	if n.ln != nil {
		n.ln.Close()
	}
	n.mu.Unlock()
	if n.cnode != nil {
		// Peer-health probing must not outlive the node's useful life:
		// a draining node neither routes nor fills.
		n.cnode.Stop()
	}
}

// Shutdown gracefully stops the node: it stops accepting, sheds any
// admission queue, and lets in-flight sessions finish. If ctx expires
// first, remaining sessions are cancelled and their connections
// closed; the context error is returned. A nil return means every
// session drained cleanly.
func (n *nodeCore) Shutdown(ctx context.Context) error {
	n.beginDrain()
	done := make(chan struct{})
	go func() {
		n.handlers.Wait()
		close(done)
	}()
	select {
	case <-done:
		n.cancel()
		return nil
	case <-ctx.Done():
		n.cancel()
		n.mu.Lock()
		for c := range n.conns {
			c.Close()
		}
		n.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the listener, cancels in-flight sessions and closes
// active connections (an immediate, non-draining shutdown).
func (n *nodeCore) Close() {
	n.beginDrain()
	n.cancel()
	n.mu.Lock()
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.handlers.Wait()
}

// Ready implements the readiness contract for /readyz: nil while the
// node is accepting and not draining. (The proxy shadows this to also
// require a non-open upstream breaker.)
func (n *nodeCore) Ready() error {
	if n.draining.Load() {
		return errors.New("draining")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ln == nil {
		return errors.New("not serving")
	}
	if n.closed {
		return errors.New("closed")
	}
	return nil
}

// serveFetch answers one peer AFR1 fetch on a connection whose magic
// has already been consumed: resolve the artifact through the role's
// resolver and write it back CRC-trailed, or a clean typed failure.
// Resolver errors are normal cluster weather (unknown digest, encoder
// mismatch, upstream down) — the requester falls back to computing
// locally — so they answer the peer rather than erroring the session.
func (n *nodeCore) serveFetch(ctx context.Context, conn net.Conn) error {
	req, err := cluster.ReadFetchRequestBody(conn)
	if err != nil {
		return err
	}
	ctx, sp := obs.StartSpanCtx(ctx, "cluster.fetch_serve")
	defer sp.End()
	sp.SetAttr("kind", req.Kind)
	if r := n.obsReg; r != nil {
		r.Counter("cluster_fetch_served_total",
			"Peer fetch-artifact requests answered (success or clean refusal).",
			obs.L("role", n.role), obs.L("kind", req.Kind)).Inc()
	}
	resolve := n.resolveFetch
	if resolve == nil || n.cnode == nil {
		sp.SetAttr("error", "not clustered")
		return cluster.WriteFetchError(conn, cluster.CodeUnavailable, "node is not clustered")
	}
	payload, err := resolve(ctx, req)
	if err != nil {
		sp.SetAttr("error", err.Error())
		code := uint8(cluster.CodeUnavailable)
		if errors.Is(err, cluster.ErrNotFound) {
			code = cluster.CodeNotFound
		}
		return cluster.WriteFetchError(conn, code, err.Error())
	}
	sp.SetAttrInt("bytes", int64(len(payload)))
	return cluster.WriteFetchResponse(conn, payload)
}
