package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/breaker"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/scene"
)

// Proxy is the optional intermediary of Figure 1: "a high-end machine with
// the ability to process the video stream in real-time, on-the-fly". It
// pulls the raw stream from an upstream server, performs the annotation
// analysis and compensation itself, and serves clients exactly what the
// annotating server would have — demonstrating that "either the proxy or
// the server node suffices" (§3).
//
// The proxy assumes the upstream tier is unreliable: it can be given
// several upstream origins in failover order, each guarded by a circuit
// breaker — a dead or flapping origin is skipped until its half-open
// probe succeeds. Fetches carry dial and per-read deadlines and are
// retried with backoff, and when every upstream is down a
// previously-fetched copy of the clip is served stale rather than
// failing the client. The accept/drain/cache plumbing lives in the
// embedded nodeCore, shared with the Server.
type Proxy struct {
	nodeCore

	upstreams []*upstreamNode
	brCfg     breaker.Config
	enc       EncodeConfig

	upstreamLat     *obs.Histogram
	upstreamRetries *obs.Counter
	staleServes     *obs.Counter
	failovers       *obs.Counter
	probesTotal     *obs.Counter

	// Upstream fetch behaviour.
	retry        RetryPolicy
	dialTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	probeEvery   time.Duration
	dial         func(network, addr string) (net.Conn, error)

	// probeMu guards the prober's lifetime channels: Serve starts it at
	// most once, and drain/shutdown paths wait for it without racing a
	// concurrent start.
	probeMu   sync.Mutex
	probeDone chan struct{}
}

// upstreamNode is one upstream origin with its circuit breaker.
type upstreamNode struct {
	addr string
	br   *breaker.Breaker
}

// proxyEntry is one cached upstream clip.
type proxyEntry struct {
	src    core.Source
	track  *annotation.Track
	digest string
}

// cost approximates the entry's resident bytes: the decoded frames
// dominate (24 bytes per RGB pixel), plus the encoded track.
func (e *proxyEntry) cost() int64 {
	w, h := e.src.Size()
	return int64(e.src.TotalFrames())*int64(w)*int64(h)*24 + int64(e.track.Size())
}

// NewProxy builds a proxy over one or more upstream server addresses in
// failover order: fetches go to the first upstream whose breaker admits
// them, falling over to the next on failure.
func NewProxy(upstreams ...string) *Proxy {
	p := &Proxy{
		retry: RetryPolicy{MaxAttempts: 3},
		brCfg: breaker.Config{
			Window: 10 * time.Second, Buckets: 10,
			FailureRate: 0.5, MinSamples: 2,
			OpenFor: 3 * time.Second, HalfOpenProbes: 1, CloseAfter: 1,
		},
		dialTimeout:  5 * time.Second,
		readTimeout:  10 * time.Second,
		writeTimeout: 30 * time.Second,
		probeEvery:   500 * time.Millisecond,
	}
	p.initCore("proxy")
	p.resolveFetch = p.resolveFetchRequest
	p.setUpstreams(upstreams)
	return p
}

// setUpstreams (re)builds the upstream list with fresh breakers.
func (p *Proxy) setUpstreams(addrs []string) {
	p.upstreams = nil
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		node := &upstreamNode{addr: a}
		cfg := p.brCfg
		user := cfg.OnStateChange
		cfg.OnStateChange = func(from, to breaker.State) {
			p.onBreakerChange(node.addr, from, to)
			if user != nil {
				user(from, to)
			}
		}
		node.br = breaker.New(cfg)
		p.upstreams = append(p.upstreams, node)
	}
}

// onBreakerChange logs and exports every breaker transition.
func (p *Proxy) onBreakerChange(addr string, from, to breaker.State) {
	p.logf("stream proxy: upstream %s breaker %s -> %s", addr, from, to)
	if r := p.obsReg; r != nil {
		l := obs.L("role", "proxy")
		r.Gauge("proxy_breaker_state",
			"Per-upstream breaker state (0 closed, 1 half-open, 2 open).",
			l, obs.L("upstream", addr)).Set(float64(to))
		if to == breaker.Open {
			r.Counter("proxy_breaker_opens_total",
				"Upstream breakers tripped open.", l, obs.L("upstream", addr)).Inc()
		}
	}
}

// SetBreakerConfig overrides the per-upstream circuit-breaker tuning
// (rolling failure window, open cool-down, probe budget); the
// OnStateChange callback, if any, is chained after the proxy's own
// logging/metrics hook. Call before Listen.
func (p *Proxy) SetBreakerConfig(cfg breaker.Config) {
	p.brCfg = cfg
	addrs := p.UpstreamAddrs()
	p.setUpstreams(addrs)
}

// SetProbeInterval sets how often unhealthy upstreams are probed for
// recovery (dial-level reachability; 0 disables probing). Call before
// Listen.
func (p *Proxy) SetProbeInterval(d time.Duration) { p.probeEvery = d }

// UpstreamAddrs returns the configured upstream addresses in failover
// order.
func (p *Proxy) UpstreamAddrs() []string {
	addrs := make([]string, len(p.upstreams))
	for i, u := range p.upstreams {
		addrs[i] = u.addr
	}
	return addrs
}

// SetObserver installs a telemetry registry. Call before Listen.
func (p *Proxy) SetObserver(r *obs.Registry) {
	p.nodeCore.SetObserver(r)
	p.upstreamLat = r.Histogram("proxy_upstream_latency_seconds",
		"Time to fetch and decode a whole raw clip from the upstream server.",
		obs.DefLatencyBuckets, obs.L("role", "proxy"))
	p.upstreamRetries = r.Counter("proxy_upstream_retries_total",
		"Upstream fetch attempts retried after a failure.", obs.L("role", "proxy"))
	p.staleServes = r.Counter("proxy_stale_serves_total",
		"Sessions served from the stale clip cache because the upstream was down.",
		obs.L("role", "proxy"))
	p.failovers = r.Counter("proxy_failovers_total",
		"Fetches served by a non-primary upstream after failover.", obs.L("role", "proxy"))
	p.probesTotal = r.Counter("proxy_upstream_probes_total",
		"Recovery probes sent to unhealthy upstreams.", obs.L("role", "proxy"))
	for _, u := range p.upstreams {
		r.Gauge("proxy_breaker_state",
			"Per-upstream breaker state (0 closed, 1 half-open, 2 open).",
			obs.L("role", "proxy"), obs.L("upstream", u.addr)).Set(float64(u.br.State()))
	}
}

// SetRetryPolicy overrides the upstream fetch retry behaviour (the zero
// value means 3 attempts with the default backoff). Call before Listen.
func (p *Proxy) SetRetryPolicy(r RetryPolicy) {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	p.retry = r
}

// SetTimeouts overrides the upstream dial and per-read deadlines and the
// client-facing per-write deadline. Zero keeps the current value. Call
// before Listen.
func (p *Proxy) SetTimeouts(dial, read, write time.Duration) {
	if dial > 0 {
		p.dialTimeout = dial
	}
	if read > 0 {
		p.readTimeout = read
	}
	if write > 0 {
		p.writeTimeout = write
	}
}

// SetDial overrides the upstream dial function (tests inject faulty or
// tracked links).
func (p *Proxy) SetDial(dial func(network, addr string) (net.Conn, error)) {
	p.dial = dial
}

// Listen starts accepting client connections.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts client connections from a caller-provided listener
// (chaos runs wrap a fault-injecting listener around a plain TCP one)
// and starts the upstream recovery prober.
func (p *Proxy) Serve(ln net.Listener) {
	p.probeMu.Lock()
	if p.probeEvery > 0 && len(p.upstreams) > 0 && p.probeDone == nil && !p.draining.Load() {
		p.probeDone = make(chan struct{})
		go p.probeLoop(p.probeDone)
	}
	p.probeMu.Unlock()
	p.serve(ln, p.clientSession)
}

// clientSession adapts handle to the shared session wrapper.
func (p *Proxy) clientSession(conn net.Conn) error { return p.handle(conn) }

// probeLoop periodically probes unhealthy upstreams (anything not
// Closed) with a dial, driving their breakers open -> half-open ->
// closed as the origin recovers, without waiting for client traffic.
// It exits as soon as a drain begins — a draining node has no business
// dialing its upstreams — and Shutdown/Close wait for that exit, so
// probe goroutines never outlive the proxy.
func (p *Proxy) probeLoop(done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-p.drainCh:
			return
		case <-t.C:
			for _, u := range p.upstreams {
				if u.br.State() == breaker.Closed {
					continue
				}
				brDone, ok := u.br.Allow()
				if !ok {
					continue
				}
				p.probesTotal.Inc()
				conn, err := p.dialAddr(u.addr)
				if err == nil {
					conn.Close()
				}
				brDone(err == nil)
			}
		}
	}
}

// waitProber blocks until the recovery prober has exited (no-op when it
// never started).
func (p *Proxy) waitProber() {
	p.probeMu.Lock()
	done := p.probeDone
	p.probeMu.Unlock()
	if done != nil {
		<-done
	}
}

// Shutdown gracefully stops the proxy: stop accepting, let in-flight
// sessions finish, then force-close whatever remains when ctx expires
// (returning the context error). The recovery prober is stopped at
// drain begin and has exited by the time Shutdown returns.
func (p *Proxy) Shutdown(ctx context.Context) error {
	err := p.nodeCore.Shutdown(ctx)
	p.waitProber()
	return err
}

// Close stops the proxy listener, cancels in-flight sessions and waits
// for them and the recovery prober (an immediate, non-draining
// shutdown).
func (p *Proxy) Close() {
	p.nodeCore.Close()
	p.waitProber()
}

// Ready implements the readiness contract for /readyz: nil while the
// proxy is accepting, not draining, and at least one upstream breaker is
// not open.
func (p *Proxy) Ready() error {
	if err := p.nodeCore.Ready(); err != nil {
		return err
	}
	if len(p.upstreams) > 0 {
		allOpen := true
		for _, u := range p.upstreams {
			if u.br.State() != breaker.Open {
				allOpen = false
				break
			}
		}
		if allOpen {
			return errors.New("all upstream breakers open")
		}
	}
	return nil
}

func (p *Proxy) handle(rawConn net.Conn) error {
	ctx := obs.WithRegistry(p.ctx, p.obsReg)
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	// Dispatch by magic: peer artifact fetches (AFR1) answer through
	// the cluster path, everything else is a client negotiation.
	var magic [4]byte
	if _, err := io.ReadFull(conn, magic[:]); err != nil {
		WriteError(conn, "bad request")
		return fmt.Errorf("%w: short request: %v", ErrProtocol, err)
	}
	if magic == cluster.FetchMagic {
		return p.serveFetch(ctx, conn)
	}
	req, err := readRequestBody(magic, conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	// Join the client's trace (v3) or root one; everything below — the
	// upstream fetch, the annotation pipeline, the artifact lookups —
	// hangs off this session span.
	if req.Trace.Valid() {
		ctx = obs.WithSpanContext(ctx, req.Trace)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "proxy.session")
	defer sp.End()
	sp.SetAttr("clip", req.Clip)
	sp.SetAttr("device", req.Device)
	sp.SetAttrInt("version", int64(req.Version))
	entry, stale, err := p.fetchSource(ctx, req.Clip, req.Device)
	if err != nil {
		WriteError(conn, err.Error())
		sp.SetAttr("error", err.Error())
		return err
	}
	if stale {
		p.staleServes.Inc()
		sp.SetAttr("stale", "true")
		p.logf("stream proxy: upstream down, serving %q stale", req.Clip)
	}
	track := entry.track
	qi := track.QualityIndex(req.Quality)
	cfg := p.enc.withDefaults(entry.src.FPS())
	getVariant := func(ctx context.Context, q int) (*variant, error) {
		return variantFor(ctx, p.tierFor(req.Clip), entry.digest, entry.src, track, q, cfg)
	}
	v, err := getVariant(ctx, qi)
	if err != nil {
		WriteError(conn, "encoding failed")
		sp.SetAttr("error", "encoding failed")
		return err
	}
	from, err := resumePoint(v.frames, req)
	if err != nil {
		WriteError(conn, err.Error())
		sp.SetAttr("error", err.Error())
		return err
	}
	if from > 0 {
		p.sm.resumes.Inc()
	}
	levels := deviceLevelsChunk(ctx, p.tierFor(req.Clip), entry.digest, req.Device, track)
	if req.Adaptive && req.Version >= 4 {
		sent, switches, aerr := sendAdaptive(ctx, conn, entry.src, track, v, getVariant, levels, from, qi,
			p.obsReg, "proxy", p.sm.framesSent, p.sm.bytesSent)
		if aerr == nil {
			accountSessionPower(p.obsReg, "proxy", req, entry.src, track, qi, from, sent, switches)
		} else {
			sp.SetAttr("error", aerr.Error())
		}
		return aerr
	}
	sent, err := sendVariant(ctx, conn, entry.src, track, v, levels, from, p.sm.framesSent, p.sm.bytesSent)
	if err == nil {
		accountSessionPower(p.obsReg, "proxy", req, entry.src, track, qi, from, sent, nil)
	} else {
		sp.SetAttr("error", err.Error())
	}
	return err
}

// resolveFetchRequest answers a peer's AFR1 artifact fetch: the proxy
// revalidates the clip against its upstreams (or serves its stale
// copy), verifies the digest matches what the requester wants, and
// resolves through its own tier. An unreachable upstream with no stale
// copy is a clean unavailable — the requester falls back to its own
// compute path.
func (p *Proxy) resolveFetchRequest(ctx context.Context, req cluster.FetchRequest) ([]byte, error) {
	if req.Clip == "" {
		return nil, fmt.Errorf("%w: proxy resolution needs a clip hint", cluster.ErrNotFound)
	}
	entry, stale, err := p.fetchSource(ctx, req.Clip, req.Device)
	if err != nil {
		return nil, fmt.Errorf("%w: upstream fetch of %q: %v", cluster.ErrPeerUnavailable, req.Clip, err)
	}
	if stale {
		p.staleServes.Inc()
	}
	if entry.digest != req.Digest {
		return nil, fmt.Errorf("%w: clip %q content digest mismatch", cluster.ErrNotFound, req.Clip)
	}
	cfg := p.enc.withDefaults(entry.src.FPS())
	switch req.Kind {
	case "track":
		return trackCodec.encode(entry.track)
	case "levels":
		b := deviceLevelsChunk(ctx, p.tierFor(req.Clip), req.Digest, req.Device, entry.track)
		if b == nil {
			return nil, fmt.Errorf("%w: unknown device %q", cluster.ErrNotFound, req.Device)
		}
		return b, nil
	case "variant":
		if req.Suffix != encSig(cfg) {
			return nil, fmt.Errorf("%w: encoder config %s here, %s requested", cluster.ErrNotFound, encSig(cfg), req.Suffix)
		}
		v, err := variantFor(ctx, p.tierFor(req.Clip), entry.digest, entry.src, entry.track, req.Quality, cfg)
		if err != nil {
			return nil, err
		}
		return encodeVariantArtifact(v)
	case "raw":
		if req.Suffix != encSig(cfg) {
			return nil, fmt.Errorf("%w: encoder config %s here, %s requested", cluster.ErrNotFound, encSig(cfg), req.Suffix)
		}
		v, err := rawVariantFor(ctx, p.tierFor(req.Clip), entry.digest, entry.src, cfg)
		if err != nil {
			return nil, err
		}
		return encodeVariantArtifact(v)
	}
	return nil, fmt.Errorf("%w: unknown artifact kind %q", cluster.ErrNotFound, req.Kind)
}

// fetchSource returns the clip's decoded source and annotation track.
// Every request revalidates against the upstream (cache.Do: concurrent
// sessions share one in-flight fetch, but a cached copy never suppresses
// the fetch), and only when every retry fails does it degrade to the
// stale cached copy.
func (p *Proxy) fetchSource(ctx context.Context, clip, device string) (*proxyEntry, bool, error) {
	key := anncache.Key{Kind: "clip", Digest: clip, Quality: -1}
	v, err := p.cache.Do(key, func() (any, int64, error) {
		e, err := p.fetchAndAnnotate(ctx, clip, device)
		if err != nil {
			return nil, 0, err
		}
		return e, e.cost(), nil
	})
	if err != nil {
		if p.ctx.Err() != nil {
			return nil, false, p.ctx.Err()
		}
		// Upstream is down: degrade to the last good copy if we have one.
		if sv, ok := p.cache.Peek(key); ok {
			return sv.(*proxyEntry), true, nil
		}
		return nil, false, err
	}
	return v.(*proxyEntry), false, nil
}

// fetchAndAnnotate pulls the clip from the upstream with bounded retries
// and annotates it (the proxy's transcoder role). The track is cached by
// content digest, so refetching unchanged content skips re-annotation —
// and in a cluster, the track's shard owner is asked before the local
// pipeline runs.
func (p *Proxy) fetchAndAnnotate(ctx context.Context, clip, device string) (*proxyEntry, error) {
	retry := p.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.upstreamRetries.Inc()
			select {
			case <-time.After(retry.delay(attempt, newBackoffRNG())):
			case <-p.ctx.Done():
				return nil, p.ctx.Err()
			}
		}
		if p.ctx.Err() != nil {
			return nil, p.ctx.Err()
		}
		start := time.Now()
		src, err := p.fetchOnce(ctx, clip, device)
		if err != nil {
			lastErr = err
			continue
		}
		p.upstreamLat.Observe(time.Since(start).Seconds())
		dg := core.SourceDigest(src)
		tAny, err := p.tierFor(clip).getOrCompute(ctx,
			anncache.Key{Kind: "track", Digest: dg, Quality: -1}, "", trackCodec,
			func(ctx context.Context) (any, int64, error) {
				t, _, err := core.AnnotatePipeline(ctx,
					src, scene.DefaultConfig(src.FPS()), nil,
					core.AnnotateOptions{Workers: p.annWorkers})
				if err != nil {
					return nil, 0, err
				}
				return t, int64(t.Size()), nil
			})
		if err != nil {
			return nil, fmt.Errorf("annotation failed: %w", err)
		}
		return &proxyEntry{src: src, track: tAny.(*annotation.Track), digest: dg}, nil
	}
	return nil, fmt.Errorf("upstream unreachable after %d attempts: %v", retry.MaxAttempts, lastErr)
}

// fetchOnce tries each upstream in failover order, skipping any whose
// breaker rejects the call; each attempt settles its upstream's breaker
// with the outcome. A success from a non-primary upstream counts as a
// failover.
func (p *Proxy) fetchOnce(ctx context.Context, clip, device string) (core.Source, error) {
	if len(p.upstreams) == 0 {
		return nil, errors.New("no upstreams configured")
	}
	var lastErr error
	tried := 0
	for i, u := range p.upstreams {
		done, ok := u.br.Allow()
		if !ok {
			continue
		}
		tried++
		src, err := p.fetchRaw(ctx, u.addr, clip, device)
		done(err == nil)
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 && p.failovers != nil {
			p.failovers.Inc()
		}
		return src, nil
	}
	if tried == 0 {
		return nil, fmt.Errorf("all %d upstreams unavailable (breakers open)", len(p.upstreams))
	}
	return nil, lastErr
}

// fetchRaw pulls the unannotated stream from one upstream and buffers
// the decoded frames. The upstream connection is closed on every path,
// and each read carries a deadline so a hung upstream fails the attempt
// instead of wedging the session.
func (p *Proxy) fetchRaw(ctx context.Context, addr, clip, device string) (src core.Source, err error) {
	fctx, sp := obs.StartSpanCtx(ctx, "proxy.fetch_raw")
	defer sp.End()
	sp.SetAttr("upstream", addr)
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}()
	rawConn, err := p.dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("upstream unreachable: %w", err)
	}
	// The single close point for every return path below — the audit
	// for upstream connection leaks hangs off this defer.
	defer rawConn.Close()
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	req := Request{Clip: clip, Device: device, Mode: ModeRaw}
	// Propagate the trace across the hop: the v3 framing carries this
	// fetch span's context so the upstream server.session parents under
	// it. Without an active trace, keep the old v1 framing — nothing to
	// carry, and an old upstream stays compatible.
	if sc := obs.SpanContextFrom(fctx); sc.Valid() {
		req.Version = 3
		req.Trace = sc
	}
	if err := WriteRequest(conn, req); err != nil {
		return nil, err
	}
	magic, remoteErr, err := ReadResponseMagic(conn)
	if err != nil {
		return nil, err
	}
	if remoteErr != nil {
		return nil, remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(magicReader(magic), conn))
	if err != nil {
		return nil, err
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return nil, err
	}
	mem := &memSource{w: hdr.W, h: hdr.H, fps: hdr.FPS}
	for {
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := dec.Decode(ef)
		if err != nil {
			return nil, err
		}
		mem.frames = append(mem.frames, f)
	}
	if len(mem.frames) == 0 {
		return nil, fmt.Errorf("upstream sent empty stream")
	}
	if hdr.FrameCount > 0 && len(mem.frames) < hdr.FrameCount {
		return nil, fmt.Errorf("%w: upstream sent %d of %d frames",
			ErrTruncatedStream, len(mem.frames), hdr.FrameCount)
	}
	return mem, nil
}

func (p *Proxy) dialAddr(addr string) (net.Conn, error) {
	if p.dial != nil {
		return p.dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, p.dialTimeout)
}

// memSource is a decoded in-memory clip.
type memSource struct {
	w, h, fps int
	frames    []*frame.Frame
}

func (m *memSource) Size() (int, int)         { return m.w, m.h }
func (m *memSource) FPS() int                 { return m.fps }
func (m *memSource) TotalFrames() int         { return len(m.frames) }
func (m *memSource) Frame(i int) *frame.Frame { return m.frames[i] }

func magicReader(m [4]byte) io.Reader { return &sliceReader{b: m[:]} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
