package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/scene"
)

// Proxy is the optional intermediary of Figure 1: "a high-end machine with
// the ability to process the video stream in real-time, on-the-fly". It
// pulls the raw stream from an upstream server, performs the annotation
// analysis and compensation itself, and serves clients exactly what the
// annotating server would have — demonstrating that "either the proxy or
// the server node suffices" (§3).
type Proxy struct {
	upstream string
	enc      EncodeConfig

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsReg      *obs.Registry
	pm          serverMetrics
	upstreamLat *obs.Histogram

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewProxy builds a proxy forwarding to the upstream server address.
func NewProxy(upstream string) *Proxy {
	return &Proxy{upstream: upstream, logFn: log.Printf}
}

// SetLogf replaces the proxy's logger. Safe to call while the proxy is
// accepting connections.
func (p *Proxy) SetLogf(f func(string, ...any)) {
	p.logMu.Lock()
	p.logFn = f
	p.logMu.Unlock()
}

// logf logs through the current logger; the mutex makes SetLogf safe
// against concurrent session goroutines.
func (p *Proxy) logf(format string, args ...any) {
	p.logMu.Lock()
	f := p.logFn
	p.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry. Call before Listen.
func (p *Proxy) SetObserver(r *obs.Registry) {
	p.obsReg = r
	p.pm = newServerMetrics(r, "proxy")
	p.upstreamLat = r.Histogram("proxy_upstream_latency_seconds",
		"Time to fetch and decode a whole raw clip from the upstream server.",
		obs.DefLatencyBuckets, obs.L("role", "proxy"))
}

// Listen starts accepting client connections.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return // orderly shutdown, not an error
				}
				p.pm.acceptErrors.Inc()
				p.logf("stream proxy: accept: %v", err)
				return
			}
			p.wg.Add(1)
			p.pm.connsTotal.Inc()
			p.pm.activeConns.Add(1)
			go func() {
				defer p.wg.Done()
				defer func() {
					conn.Close()
					p.pm.activeConns.Add(-1)
				}()
				if err := p.handle(conn); err != nil && !errors.Is(err, io.EOF) {
					p.pm.sessErrors.Inc()
					p.logf("stream proxy: %v", err)
				}
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops the proxy listener and waits for active sessions.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) handle(conn net.Conn) error {
	ctx := obs.WithRegistry(context.Background(), p.obsReg)
	req, err := ReadRequest(conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	start := time.Now()
	src, err := p.fetchRaw(req.Clip, req.Device)
	if err != nil {
		WriteError(conn, err.Error())
		return err
	}
	p.upstreamLat.Observe(time.Since(start).Seconds())
	// The proxy's transcoder role: analyse, annotate, compensate, re-encode.
	track, _, err := core.AnnotateContext(ctx, src, scene.DefaultConfig(src.FPS()), nil)
	if err != nil {
		WriteError(conn, "annotation failed")
		return err
	}
	return writeAnnotatedStream(ctx, conn, src, track, req.Quality, p.enc.withDefaults(src.FPS()), req.Device, p.pm.framesSent, p.pm.bytesSent)
}

// fetchRaw pulls the unannotated stream from upstream and buffers the
// decoded frames.
func (p *Proxy) fetchRaw(clip, device string) (core.Source, error) {
	conn, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return nil, fmt.Errorf("upstream unreachable: %w", err)
	}
	defer conn.Close()
	if err := WriteRequest(conn, Request{Clip: clip, Device: device, Mode: ModeRaw}); err != nil {
		return nil, err
	}
	magic, remoteErr, err := ReadResponseMagic(conn)
	if err != nil {
		return nil, err
	}
	if remoteErr != nil {
		return nil, remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(magicReader(magic), conn))
	if err != nil {
		return nil, err
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return nil, err
	}
	mem := &memSource{w: hdr.W, h: hdr.H, fps: hdr.FPS}
	for {
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := dec.Decode(ef)
		if err != nil {
			return nil, err
		}
		mem.frames = append(mem.frames, f)
	}
	if len(mem.frames) == 0 {
		return nil, fmt.Errorf("upstream sent empty stream")
	}
	return mem, nil
}

// memSource is a decoded in-memory clip.
type memSource struct {
	w, h, fps int
	frames    []*frame.Frame
}

func (m *memSource) Size() (int, int)         { return m.w, m.h }
func (m *memSource) FPS() int                 { return m.fps }
func (m *memSource) TotalFrames() int         { return len(m.frames) }
func (m *memSource) Frame(i int) *frame.Frame { return m.frames[i] }

func magicReader(m [4]byte) io.Reader { return &sliceReader{b: m[:]} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
