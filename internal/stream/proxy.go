package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/annstore"
	"repro/internal/breaker"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/scene"
)

// Proxy is the optional intermediary of Figure 1: "a high-end machine with
// the ability to process the video stream in real-time, on-the-fly". It
// pulls the raw stream from an upstream server, performs the annotation
// analysis and compensation itself, and serves clients exactly what the
// annotating server would have — demonstrating that "either the proxy or
// the server node suffices" (§3).
//
// The proxy assumes the upstream tier is unreliable: it can be given
// several upstream origins in failover order, each guarded by a circuit
// breaker — a dead or flapping origin is skipped until its half-open
// probe succeeds. Fetches carry dial and per-read deadlines and are
// retried with backoff, and when every upstream is down a
// previously-fetched copy of the clip is served stale rather than
// failing the client.
type Proxy struct {
	upstreams []*upstreamNode
	brCfg     breaker.Config
	enc       EncodeConfig

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsReg          *obs.Registry
	pm              serverMetrics
	upstreamLat     *obs.Histogram
	upstreamRetries *obs.Counter
	staleServes     *obs.Counter
	failovers       *obs.Counter
	probesTotal     *obs.Counter

	// Upstream fetch behaviour.
	retry        RetryPolicy
	dialTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	probeEvery   time.Duration
	dial         func(network, addr string) (net.Conn, error)

	ctx    context.Context
	cancel context.CancelFunc

	drainCh   chan struct{}
	drainOnce sync.Once
	draining  atomic.Bool
	probeDone chan struct{}

	// cache holds the last good fetch per clip (decoded source plus its
	// annotation track) as the stale fallback when the upstream is down,
	// plus the derived artifacts — tracks keyed by content digest (a
	// refetch of unchanged content skips re-annotation) and encoded
	// variants shared across client sessions.
	cache *anncache.Cache
	// store, when set, persists derived artifacts (tracks, variants,
	// level tables — not fetched clips, which must revalidate) across
	// restarts, exactly as in the Server.
	store *annstore.Store
	// annWorkers is the annotation pipeline's worker-pool size.
	annWorkers int

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// upstreamNode is one upstream origin with its circuit breaker.
type upstreamNode struct {
	addr string
	br   *breaker.Breaker
}

// proxyEntry is one cached upstream clip.
type proxyEntry struct {
	src    core.Source
	track  *annotation.Track
	digest string
}

// cost approximates the entry's resident bytes: the decoded frames
// dominate (24 bytes per RGB pixel), plus the encoded track.
func (e *proxyEntry) cost() int64 {
	w, h := e.src.Size()
	return int64(e.src.TotalFrames())*int64(w)*int64(h)*24 + int64(e.track.Size())
}

// NewProxy builds a proxy over one or more upstream server addresses in
// failover order: fetches go to the first upstream whose breaker admits
// them, falling over to the next on failure.
func NewProxy(upstreams ...string) *Proxy {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Proxy{
		logFn: log.Printf,
		retry: RetryPolicy{MaxAttempts: 3},
		brCfg: breaker.Config{
			Window: 10 * time.Second, Buckets: 10,
			FailureRate: 0.5, MinSamples: 2,
			OpenFor: 3 * time.Second, HalfOpenProbes: 1, CloseAfter: 1,
		},
		dialTimeout:  5 * time.Second,
		readTimeout:  10 * time.Second,
		writeTimeout: 30 * time.Second,
		probeEvery:   500 * time.Millisecond,
		ctx:          ctx,
		cancel:       cancel,
		drainCh:      make(chan struct{}),
		cache:        anncache.New(DefaultCacheCapacity),
		annWorkers:   runtime.GOMAXPROCS(0),
		conns:        map[net.Conn]struct{}{},
	}
	p.setUpstreams(upstreams)
	return p
}

// setUpstreams (re)builds the upstream list with fresh breakers.
func (p *Proxy) setUpstreams(addrs []string) {
	p.upstreams = nil
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		node := &upstreamNode{addr: a}
		cfg := p.brCfg
		user := cfg.OnStateChange
		cfg.OnStateChange = func(from, to breaker.State) {
			p.onBreakerChange(node.addr, from, to)
			if user != nil {
				user(from, to)
			}
		}
		node.br = breaker.New(cfg)
		p.upstreams = append(p.upstreams, node)
	}
}

// onBreakerChange logs and exports every breaker transition.
func (p *Proxy) onBreakerChange(addr string, from, to breaker.State) {
	p.logf("stream proxy: upstream %s breaker %s -> %s", addr, from, to)
	if r := p.obsReg; r != nil {
		l := obs.L("role", "proxy")
		r.Gauge("proxy_breaker_state",
			"Per-upstream breaker state (0 closed, 1 half-open, 2 open).",
			l, obs.L("upstream", addr)).Set(float64(to))
		if to == breaker.Open {
			r.Counter("proxy_breaker_opens_total",
				"Upstream breakers tripped open.", l, obs.L("upstream", addr)).Inc()
		}
	}
}

// SetBreakerConfig overrides the per-upstream circuit-breaker tuning
// (rolling failure window, open cool-down, probe budget); the
// OnStateChange callback, if any, is chained after the proxy's own
// logging/metrics hook. Call before Listen.
func (p *Proxy) SetBreakerConfig(cfg breaker.Config) {
	p.brCfg = cfg
	addrs := p.UpstreamAddrs()
	p.setUpstreams(addrs)
}

// SetProbeInterval sets how often unhealthy upstreams are probed for
// recovery (dial-level reachability; 0 disables probing). Call before
// Listen.
func (p *Proxy) SetProbeInterval(d time.Duration) { p.probeEvery = d }

// UpstreamAddrs returns the configured upstream addresses in failover
// order.
func (p *Proxy) UpstreamAddrs() []string {
	addrs := make([]string, len(p.upstreams))
	for i, u := range p.upstreams {
		addrs[i] = u.addr
	}
	return addrs
}

// SetAnnotateWorkers sets the annotation pipeline's worker-pool size
// (<= 1 selects the sequential path). Call before Listen.
func (p *Proxy) SetAnnotateWorkers(n int) { p.annWorkers = n }

// SetCacheCapacity bounds the artifact cache to capacityBytes (<= 0 is
// unlimited), evicting immediately if already over.
func (p *Proxy) SetCacheCapacity(capacityBytes int64) { p.cache.SetCapacity(capacityBytes) }

// SetStore installs a persistent artifact store beneath the memory
// cache for derived artifacts (annotation tracks, encoded variants,
// device level tables). Fetched clips stay memory-only: their
// always-revalidate / serve-stale semantics are tied to the process's
// view of the upstream. Call before Listen.
func (p *Proxy) SetStore(st *annstore.Store) { p.store = st }

// tier bundles the memory cache with the optional persistent store.
func (p *Proxy) tier() tier { return tier{cache: p.cache, store: p.store} }

// SetLogf replaces the proxy's logger. Safe to call while the proxy is
// accepting connections.
func (p *Proxy) SetLogf(f func(string, ...any)) {
	p.logMu.Lock()
	p.logFn = f
	p.logMu.Unlock()
}

// logf logs through the current logger; the mutex makes SetLogf safe
// against concurrent session goroutines.
func (p *Proxy) logf(format string, args ...any) {
	p.logMu.Lock()
	f := p.logFn
	p.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry. Call before Listen.
func (p *Proxy) SetObserver(r *obs.Registry) {
	p.obsReg = r
	p.pm = newServerMetrics(r, "proxy")
	p.cache.SetObserver(r, obs.L("role", "proxy"))
	p.upstreamLat = r.Histogram("proxy_upstream_latency_seconds",
		"Time to fetch and decode a whole raw clip from the upstream server.",
		obs.DefLatencyBuckets, obs.L("role", "proxy"))
	p.upstreamRetries = r.Counter("proxy_upstream_retries_total",
		"Upstream fetch attempts retried after a failure.", obs.L("role", "proxy"))
	p.staleServes = r.Counter("proxy_stale_serves_total",
		"Sessions served from the stale clip cache because the upstream was down.",
		obs.L("role", "proxy"))
	p.failovers = r.Counter("proxy_failovers_total",
		"Fetches served by a non-primary upstream after failover.", obs.L("role", "proxy"))
	p.probesTotal = r.Counter("proxy_upstream_probes_total",
		"Recovery probes sent to unhealthy upstreams.", obs.L("role", "proxy"))
	for _, u := range p.upstreams {
		r.Gauge("proxy_breaker_state",
			"Per-upstream breaker state (0 closed, 1 half-open, 2 open).",
			obs.L("role", "proxy"), obs.L("upstream", u.addr)).Set(float64(u.br.State()))
	}
}

// SetRetryPolicy overrides the upstream fetch retry behaviour (the zero
// value means 3 attempts with the default backoff). Call before Listen.
func (p *Proxy) SetRetryPolicy(r RetryPolicy) {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	p.retry = r
}

// SetTimeouts overrides the upstream dial and per-read deadlines and the
// client-facing per-write deadline. Zero keeps the current value. Call
// before Listen.
func (p *Proxy) SetTimeouts(dial, read, write time.Duration) {
	if dial > 0 {
		p.dialTimeout = dial
	}
	if read > 0 {
		p.readTimeout = read
	}
	if write > 0 {
		p.writeTimeout = write
	}
}

// SetDial overrides the upstream dial function (tests inject faulty or
// tracked links).
func (p *Proxy) SetDial(dial func(network, addr string) (net.Conn, error)) {
	p.dial = dial
}

// Listen starts accepting client connections.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts client connections from a caller-provided listener
// (chaos runs wrap a fault-injecting listener around a plain TCP one)
// and starts the upstream recovery prober.
func (p *Proxy) Serve(ln net.Listener) {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	if p.probeEvery > 0 && len(p.upstreams) > 0 && p.probeDone == nil {
		p.probeDone = make(chan struct{})
		go p.probeLoop()
	}
	go func() {
		acceptWithBackoff(ln, "stream proxy", p.logf, p.pm.acceptErrors, func(conn net.Conn) {
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				conn.Close()
				return
			}
			p.conns[conn] = struct{}{}
			p.wg.Add(1)
			p.mu.Unlock()
			p.pm.connsTotal.Inc()
			p.pm.activeConns.Add(1)
			go p.session(conn)
		})
	}()
}

// session runs one client connection with panic isolation, mirroring
// Server.session.
func (p *Proxy) session(conn net.Conn) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		delete(p.conns, conn)
		p.mu.Unlock()
		conn.Close()
		p.pm.activeConns.Add(-1)
	}()
	defer func() {
		if r := recover(); r != nil {
			p.pm.panics.Inc()
			p.logf("stream proxy: session panic (recovered): %v\n%s", r, debug.Stack())
		}
	}()
	if err := p.handle(conn); err != nil && !errors.Is(err, io.EOF) {
		p.pm.sessErrors.Inc()
		p.logf("stream proxy: %v", err)
	}
}

// probeLoop periodically probes unhealthy upstreams (anything not
// Closed) with a dial, driving their breakers open -> half-open ->
// closed as the origin recovers, without waiting for client traffic.
func (p *Proxy) probeLoop() {
	defer close(p.probeDone)
	t := time.NewTicker(p.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
			for _, u := range p.upstreams {
				if u.br.State() == breaker.Closed {
					continue
				}
				done, ok := u.br.Allow()
				if !ok {
					continue
				}
				p.probesTotal.Inc()
				conn, err := p.dialAddr(u.addr)
				if err == nil {
					conn.Close()
				}
				done(err == nil)
			}
		}
	}
}

// beginDrain stops the listener and flips the proxy to draining.
func (p *Proxy) beginDrain() {
	p.draining.Store(true)
	p.pm.draining.Set(1)
	p.drainOnce.Do(func() { close(p.drainCh) })
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	p.mu.Unlock()
}

// Shutdown gracefully stops the proxy: stop accepting, let in-flight
// sessions finish, then force-close whatever remains when ctx expires
// (returning the context error).
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.beginDrain()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		p.cancel()
		p.mu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.mu.Unlock()
		<-done
	}
	p.cancel()
	if p.probeDone != nil {
		<-p.probeDone
	}
	return err
}

// Close stops the proxy listener, cancels in-flight sessions and waits
// for them (an immediate, non-draining shutdown).
func (p *Proxy) Close() {
	p.beginDrain()
	p.cancel()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	if p.probeDone != nil {
		<-p.probeDone
	}
}

// Ready implements the readiness contract for /readyz: nil while the
// proxy is accepting, not draining, and at least one upstream breaker is
// not open.
func (p *Proxy) Ready() error {
	if p.draining.Load() {
		return errors.New("draining")
	}
	p.mu.Lock()
	if p.ln == nil {
		p.mu.Unlock()
		return errors.New("not serving")
	}
	if p.closed {
		p.mu.Unlock()
		return errors.New("closed")
	}
	p.mu.Unlock()
	if len(p.upstreams) > 0 {
		allOpen := true
		for _, u := range p.upstreams {
			if u.br.State() != breaker.Open {
				allOpen = false
				break
			}
		}
		if allOpen {
			return errors.New("all upstream breakers open")
		}
	}
	return nil
}

func (p *Proxy) handle(rawConn net.Conn) error {
	ctx := obs.WithRegistry(p.ctx, p.obsReg)
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	req, err := ReadRequest(conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	// Join the client's trace (v3) or root one; everything below — the
	// upstream fetch, the annotation pipeline, the artifact lookups —
	// hangs off this session span.
	if req.Trace.Valid() {
		ctx = obs.WithSpanContext(ctx, req.Trace)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "proxy.session")
	defer sp.End()
	sp.SetAttr("clip", req.Clip)
	sp.SetAttr("device", req.Device)
	sp.SetAttrInt("version", int64(req.Version))
	entry, stale, err := p.fetchSource(ctx, req.Clip, req.Device)
	if err != nil {
		WriteError(conn, err.Error())
		sp.SetAttr("error", err.Error())
		return err
	}
	if stale {
		p.staleServes.Inc()
		sp.SetAttr("stale", "true")
		p.logf("stream proxy: upstream down, serving %q stale", req.Clip)
	}
	track := entry.track
	qi := track.QualityIndex(req.Quality)
	cfg := p.enc.withDefaults(entry.src.FPS())
	getVariant := func(ctx context.Context, q int) (*variant, error) {
		return variantFor(ctx, p.tier(), entry.digest, entry.src, track, q, cfg)
	}
	v, err := getVariant(ctx, qi)
	if err != nil {
		WriteError(conn, "encoding failed")
		sp.SetAttr("error", "encoding failed")
		return err
	}
	from, err := resumePoint(v.frames, req)
	if err != nil {
		WriteError(conn, err.Error())
		sp.SetAttr("error", err.Error())
		return err
	}
	if from > 0 {
		p.pm.resumes.Inc()
	}
	levels := deviceLevelsChunk(ctx, p.tier(), entry.digest, req.Device, track)
	if req.Adaptive && req.Version >= 4 {
		sent, switches, aerr := sendAdaptive(ctx, conn, entry.src, track, v, getVariant, levels, from, qi,
			p.obsReg, "proxy", p.pm.framesSent, p.pm.bytesSent)
		if aerr == nil {
			accountSessionPower(p.obsReg, "proxy", req, entry.src, track, qi, from, sent, switches)
		} else {
			sp.SetAttr("error", aerr.Error())
		}
		return aerr
	}
	sent, err := sendVariant(ctx, conn, entry.src, track, v, levels, from, p.pm.framesSent, p.pm.bytesSent)
	if err == nil {
		accountSessionPower(p.obsReg, "proxy", req, entry.src, track, qi, from, sent, nil)
	} else {
		sp.SetAttr("error", err.Error())
	}
	return err
}

// fetchSource returns the clip's decoded source and annotation track.
// Every request revalidates against the upstream (cache.Do: concurrent
// sessions share one in-flight fetch, but a cached copy never suppresses
// the fetch), and only when every retry fails does it degrade to the
// stale cached copy.
func (p *Proxy) fetchSource(ctx context.Context, clip, device string) (*proxyEntry, bool, error) {
	key := anncache.Key{Kind: "clip", Digest: clip, Quality: -1}
	v, err := p.cache.Do(key, func() (any, int64, error) {
		e, err := p.fetchAndAnnotate(ctx, clip, device)
		if err != nil {
			return nil, 0, err
		}
		return e, e.cost(), nil
	})
	if err != nil {
		if p.ctx.Err() != nil {
			return nil, false, p.ctx.Err()
		}
		// Upstream is down: degrade to the last good copy if we have one.
		if sv, ok := p.cache.Peek(key); ok {
			return sv.(*proxyEntry), true, nil
		}
		return nil, false, err
	}
	return v.(*proxyEntry), false, nil
}

// fetchAndAnnotate pulls the clip from the upstream with bounded retries
// and annotates it (the proxy's transcoder role). The track is cached by
// content digest, so refetching unchanged content skips re-annotation.
func (p *Proxy) fetchAndAnnotate(ctx context.Context, clip, device string) (*proxyEntry, error) {
	retry := p.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.upstreamRetries.Inc()
			select {
			case <-time.After(retry.delay(attempt, newBackoffRNG())):
			case <-p.ctx.Done():
				return nil, p.ctx.Err()
			}
		}
		if p.ctx.Err() != nil {
			return nil, p.ctx.Err()
		}
		start := time.Now()
		src, err := p.fetchOnce(ctx, clip, device)
		if err != nil {
			lastErr = err
			continue
		}
		p.upstreamLat.Observe(time.Since(start).Seconds())
		dg := core.SourceDigest(src)
		tAny, err := p.tier().getOrCompute(ctx,
			anncache.Key{Kind: "track", Digest: dg, Quality: -1}, "", trackCodec,
			func(ctx context.Context) (any, int64, error) {
				t, _, err := core.AnnotatePipeline(ctx,
					src, scene.DefaultConfig(src.FPS()), nil,
					core.AnnotateOptions{Workers: p.annWorkers})
				if err != nil {
					return nil, 0, err
				}
				return t, int64(t.Size()), nil
			})
		if err != nil {
			return nil, fmt.Errorf("annotation failed: %w", err)
		}
		return &proxyEntry{src: src, track: tAny.(*annotation.Track), digest: dg}, nil
	}
	return nil, fmt.Errorf("upstream unreachable after %d attempts: %v", retry.MaxAttempts, lastErr)
}

// fetchOnce tries each upstream in failover order, skipping any whose
// breaker rejects the call; each attempt settles its upstream's breaker
// with the outcome. A success from a non-primary upstream counts as a
// failover.
func (p *Proxy) fetchOnce(ctx context.Context, clip, device string) (core.Source, error) {
	if len(p.upstreams) == 0 {
		return nil, errors.New("no upstreams configured")
	}
	var lastErr error
	tried := 0
	for i, u := range p.upstreams {
		done, ok := u.br.Allow()
		if !ok {
			continue
		}
		tried++
		src, err := p.fetchRaw(ctx, u.addr, clip, device)
		done(err == nil)
		if err != nil {
			lastErr = err
			continue
		}
		if i > 0 && p.failovers != nil {
			p.failovers.Inc()
		}
		return src, nil
	}
	if tried == 0 {
		return nil, fmt.Errorf("all %d upstreams unavailable (breakers open)", len(p.upstreams))
	}
	return nil, lastErr
}

// fetchRaw pulls the unannotated stream from one upstream and buffers
// the decoded frames. The upstream connection is closed on every path,
// and each read carries a deadline so a hung upstream fails the attempt
// instead of wedging the session.
func (p *Proxy) fetchRaw(ctx context.Context, addr, clip, device string) (src core.Source, err error) {
	fctx, sp := obs.StartSpanCtx(ctx, "proxy.fetch_raw")
	defer sp.End()
	sp.SetAttr("upstream", addr)
	defer func() {
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
	}()
	rawConn, err := p.dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("upstream unreachable: %w", err)
	}
	// The single close point for every return path below — the audit
	// for upstream connection leaks hangs off this defer.
	defer rawConn.Close()
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	req := Request{Clip: clip, Device: device, Mode: ModeRaw}
	// Propagate the trace across the hop: the v3 framing carries this
	// fetch span's context so the upstream server.session parents under
	// it. Without an active trace, keep the old v1 framing — nothing to
	// carry, and an old upstream stays compatible.
	if sc := obs.SpanContextFrom(fctx); sc.Valid() {
		req.Version = 3
		req.Trace = sc
	}
	if err := WriteRequest(conn, req); err != nil {
		return nil, err
	}
	magic, remoteErr, err := ReadResponseMagic(conn)
	if err != nil {
		return nil, err
	}
	if remoteErr != nil {
		return nil, remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(magicReader(magic), conn))
	if err != nil {
		return nil, err
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return nil, err
	}
	mem := &memSource{w: hdr.W, h: hdr.H, fps: hdr.FPS}
	for {
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := dec.Decode(ef)
		if err != nil {
			return nil, err
		}
		mem.frames = append(mem.frames, f)
	}
	if len(mem.frames) == 0 {
		return nil, fmt.Errorf("upstream sent empty stream")
	}
	if hdr.FrameCount > 0 && len(mem.frames) < hdr.FrameCount {
		return nil, fmt.Errorf("%w: upstream sent %d of %d frames",
			ErrTruncatedStream, len(mem.frames), hdr.FrameCount)
	}
	return mem, nil
}

func (p *Proxy) dialAddr(addr string) (net.Conn, error) {
	if p.dial != nil {
		return p.dial("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, p.dialTimeout)
}

// memSource is a decoded in-memory clip.
type memSource struct {
	w, h, fps int
	frames    []*frame.Frame
}

func (m *memSource) Size() (int, int)         { return m.w, m.h }
func (m *memSource) FPS() int                 { return m.fps }
func (m *memSource) TotalFrames() int         { return len(m.frames) }
func (m *memSource) Frame(i int) *frame.Frame { return m.frames[i] }

func magicReader(m [4]byte) io.Reader { return &sliceReader{b: m[:]} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
