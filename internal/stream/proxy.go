package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/anncache"
	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/scene"
)

// Proxy is the optional intermediary of Figure 1: "a high-end machine with
// the ability to process the video stream in real-time, on-the-fly". It
// pulls the raw stream from an upstream server, performs the annotation
// analysis and compensation itself, and serves clients exactly what the
// annotating server would have — demonstrating that "either the proxy or
// the server node suffices" (§3).
//
// The proxy assumes the upstream link is unreliable: fetches carry dial
// and per-read deadlines and are retried with backoff, and when the
// upstream is down a previously-fetched copy of the clip is served stale
// rather than failing the client.
type Proxy struct {
	upstream string
	enc      EncodeConfig

	logMu sync.Mutex
	logFn func(format string, args ...any)

	obsReg          *obs.Registry
	pm              serverMetrics
	upstreamLat     *obs.Histogram
	upstreamRetries *obs.Counter
	staleServes     *obs.Counter

	// Upstream fetch behaviour.
	retry        RetryPolicy
	dialTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	dial         func(network, addr string) (net.Conn, error)

	ctx    context.Context
	cancel context.CancelFunc

	// cache holds the last good fetch per clip (decoded source plus its
	// annotation track) as the stale fallback when the upstream is down,
	// plus the derived artifacts — tracks keyed by content digest (a
	// refetch of unchanged content skips re-annotation) and encoded
	// variants shared across client sessions.
	cache *anncache.Cache
	// annWorkers is the annotation pipeline's worker-pool size.
	annWorkers int

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// proxyEntry is one cached upstream clip.
type proxyEntry struct {
	src    core.Source
	track  *annotation.Track
	digest string
}

// cost approximates the entry's resident bytes: the decoded frames
// dominate (24 bytes per RGB pixel), plus the encoded track.
func (e *proxyEntry) cost() int64 {
	w, h := e.src.Size()
	return int64(e.src.TotalFrames())*int64(w)*int64(h)*24 + int64(e.track.Size())
}

// NewProxy builds a proxy forwarding to the upstream server address.
func NewProxy(upstream string) *Proxy {
	ctx, cancel := context.WithCancel(context.Background())
	return &Proxy{
		upstream:     upstream,
		logFn:        log.Printf,
		retry:        RetryPolicy{MaxAttempts: 3},
		dialTimeout:  5 * time.Second,
		readTimeout:  10 * time.Second,
		writeTimeout: 30 * time.Second,
		ctx:          ctx,
		cancel:       cancel,
		cache:        anncache.New(DefaultCacheCapacity),
		annWorkers:   runtime.GOMAXPROCS(0),
	}
}

// SetAnnotateWorkers sets the annotation pipeline's worker-pool size
// (<= 1 selects the sequential path). Call before Listen.
func (p *Proxy) SetAnnotateWorkers(n int) { p.annWorkers = n }

// SetCacheCapacity bounds the artifact cache to capacityBytes (<= 0 is
// unlimited), evicting immediately if already over.
func (p *Proxy) SetCacheCapacity(capacityBytes int64) { p.cache.SetCapacity(capacityBytes) }

// SetLogf replaces the proxy's logger. Safe to call while the proxy is
// accepting connections.
func (p *Proxy) SetLogf(f func(string, ...any)) {
	p.logMu.Lock()
	p.logFn = f
	p.logMu.Unlock()
}

// logf logs through the current logger; the mutex makes SetLogf safe
// against concurrent session goroutines.
func (p *Proxy) logf(format string, args ...any) {
	p.logMu.Lock()
	f := p.logFn
	p.logMu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// SetObserver installs a telemetry registry. Call before Listen.
func (p *Proxy) SetObserver(r *obs.Registry) {
	p.obsReg = r
	p.pm = newServerMetrics(r, "proxy")
	p.cache.SetObserver(r, obs.L("role", "proxy"))
	p.upstreamLat = r.Histogram("proxy_upstream_latency_seconds",
		"Time to fetch and decode a whole raw clip from the upstream server.",
		obs.DefLatencyBuckets, obs.L("role", "proxy"))
	p.upstreamRetries = r.Counter("proxy_upstream_retries_total",
		"Upstream fetch attempts retried after a failure.", obs.L("role", "proxy"))
	p.staleServes = r.Counter("proxy_stale_serves_total",
		"Sessions served from the stale clip cache because the upstream was down.",
		obs.L("role", "proxy"))
}

// SetRetryPolicy overrides the upstream fetch retry behaviour (the zero
// value means 3 attempts with the default backoff). Call before Listen.
func (p *Proxy) SetRetryPolicy(r RetryPolicy) {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	p.retry = r
}

// SetTimeouts overrides the upstream dial and per-read deadlines and the
// client-facing per-write deadline. Zero keeps the current value. Call
// before Listen.
func (p *Proxy) SetTimeouts(dial, read, write time.Duration) {
	if dial > 0 {
		p.dialTimeout = dial
	}
	if read > 0 {
		p.readTimeout = read
	}
	if write > 0 {
		p.writeTimeout = write
	}
}

// SetDial overrides the upstream dial function (tests inject faulty or
// tracked links).
func (p *Proxy) SetDial(dial func(network, addr string) (net.Conn, error)) {
	p.dial = dial
}

// Listen starts accepting client connections.
func (p *Proxy) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts client connections from a caller-provided listener
// (chaos runs wrap a fault-injecting listener around a plain TCP one).
func (p *Proxy) Serve(ln net.Listener) {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return // orderly shutdown, not an error
				}
				p.pm.acceptErrors.Inc()
				p.logf("stream proxy: accept: %v", err)
				return
			}
			p.wg.Add(1)
			p.pm.connsTotal.Inc()
			p.pm.activeConns.Add(1)
			go func() {
				defer p.wg.Done()
				defer func() {
					conn.Close()
					p.pm.activeConns.Add(-1)
				}()
				if err := p.handle(conn); err != nil && !errors.Is(err, io.EOF) {
					p.pm.sessErrors.Inc()
					p.logf("stream proxy: %v", err)
				}
			}()
		}
	}()
}

// Close stops the proxy listener, cancels in-flight sessions and waits
// for them.
func (p *Proxy) Close() {
	p.cancel()
	p.mu.Lock()
	p.closed = true
	if p.ln != nil {
		p.ln.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) handle(rawConn net.Conn) error {
	ctx := obs.WithRegistry(p.ctx, p.obsReg)
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	req, err := ReadRequest(conn)
	if err != nil {
		WriteError(conn, "bad request")
		return err
	}
	entry, stale, err := p.fetchSource(req.Clip, req.Device)
	if err != nil {
		WriteError(conn, err.Error())
		return err
	}
	if stale {
		p.staleServes.Inc()
		p.logf("stream proxy: upstream down, serving %q stale", req.Clip)
	}
	track := entry.track
	qi := track.QualityIndex(req.Quality)
	vAny, err := p.cache.GetOrCompute(
		anncache.Key{Kind: "variant", Digest: entry.digest, Quality: qi},
		func() (any, int64, error) {
			v, err := prepareVariant(ctx, entry.src, track, qi, p.enc.withDefaults(entry.src.FPS()))
			if err != nil {
				return nil, 0, err
			}
			return v, v.cost(), nil
		})
	if err != nil {
		WriteError(conn, "encoding failed")
		return err
	}
	v := vAny.(*variant)
	from, err := resumePoint(v.frames, req)
	if err != nil {
		WriteError(conn, err.Error())
		return err
	}
	if from > 0 {
		p.pm.resumes.Inc()
	}
	levels := deviceLevelsChunk(p.cache, entry.digest, req.Device, track)
	return sendVariant(ctx, conn, entry.src, track, v, levels, from, p.pm.framesSent, p.pm.bytesSent)
}

// fetchSource returns the clip's decoded source and annotation track.
// Every request revalidates against the upstream (cache.Do: concurrent
// sessions share one in-flight fetch, but a cached copy never suppresses
// the fetch), and only when every retry fails does it degrade to the
// stale cached copy.
func (p *Proxy) fetchSource(clip, device string) (*proxyEntry, bool, error) {
	key := anncache.Key{Kind: "clip", Digest: clip, Quality: -1}
	v, err := p.cache.Do(key, func() (any, int64, error) {
		e, err := p.fetchAndAnnotate(clip, device)
		if err != nil {
			return nil, 0, err
		}
		return e, e.cost(), nil
	})
	if err != nil {
		if p.ctx.Err() != nil {
			return nil, false, p.ctx.Err()
		}
		// Upstream is down: degrade to the last good copy if we have one.
		if sv, ok := p.cache.Peek(key); ok {
			return sv.(*proxyEntry), true, nil
		}
		return nil, false, err
	}
	return v.(*proxyEntry), false, nil
}

// fetchAndAnnotate pulls the clip from the upstream with bounded retries
// and annotates it (the proxy's transcoder role). The track is cached by
// content digest, so refetching unchanged content skips re-annotation.
func (p *Proxy) fetchAndAnnotate(clip, device string) (*proxyEntry, error) {
	retry := p.retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.upstreamRetries.Inc()
			select {
			case <-time.After(retry.delay(attempt, newBackoffRNG())):
			case <-p.ctx.Done():
				return nil, p.ctx.Err()
			}
		}
		if p.ctx.Err() != nil {
			return nil, p.ctx.Err()
		}
		start := time.Now()
		src, err := p.fetchRaw(clip, device)
		if err != nil {
			lastErr = err
			continue
		}
		p.upstreamLat.Observe(time.Since(start).Seconds())
		dg := core.SourceDigest(src)
		tAny, err := p.cache.GetOrCompute(
			anncache.Key{Kind: "track", Digest: dg, Quality: -1},
			func() (any, int64, error) {
				t, _, err := core.AnnotatePipeline(obs.WithRegistry(p.ctx, p.obsReg),
					src, scene.DefaultConfig(src.FPS()), nil,
					core.AnnotateOptions{Workers: p.annWorkers})
				if err != nil {
					return nil, 0, err
				}
				return t, int64(t.Size()), nil
			})
		if err != nil {
			return nil, fmt.Errorf("annotation failed: %w", err)
		}
		return &proxyEntry{src: src, track: tAny.(*annotation.Track), digest: dg}, nil
	}
	return nil, fmt.Errorf("upstream unreachable after %d attempts: %v", retry.MaxAttempts, lastErr)
}

// fetchRaw pulls the unannotated stream from upstream and buffers the
// decoded frames. The upstream connection is closed on every path, and
// each read carries a deadline so a hung upstream fails the attempt
// instead of wedging the session.
func (p *Proxy) fetchRaw(clip, device string) (src core.Source, err error) {
	rawConn, err := p.dialUpstream()
	if err != nil {
		return nil, fmt.Errorf("upstream unreachable: %w", err)
	}
	// The single close point for every return path below — the audit
	// for upstream connection leaks hangs off this defer.
	defer rawConn.Close()
	conn := &deadlineConn{Conn: rawConn, readTimeout: p.readTimeout, writeTimeout: p.writeTimeout}
	if err := WriteRequest(conn, Request{Clip: clip, Device: device, Mode: ModeRaw}); err != nil {
		return nil, err
	}
	magic, remoteErr, err := ReadResponseMagic(conn)
	if err != nil {
		return nil, err
	}
	if remoteErr != nil {
		return nil, remoteErr
	}
	reader, err := container.NewReader(io.MultiReader(magicReader(magic), conn))
	if err != nil {
		return nil, err
	}
	hdr := reader.Header()
	dec, err := codec.NewDecoder(hdr.W, hdr.H)
	if err != nil {
		return nil, err
	}
	mem := &memSource{w: hdr.W, h: hdr.H, fps: hdr.FPS}
	for {
		ef, err := reader.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		f, err := dec.Decode(ef)
		if err != nil {
			return nil, err
		}
		mem.frames = append(mem.frames, f)
	}
	if len(mem.frames) == 0 {
		return nil, fmt.Errorf("upstream sent empty stream")
	}
	if hdr.FrameCount > 0 && len(mem.frames) < hdr.FrameCount {
		return nil, fmt.Errorf("%w: upstream sent %d of %d frames",
			ErrTruncatedStream, len(mem.frames), hdr.FrameCount)
	}
	return mem, nil
}

func (p *Proxy) dialUpstream() (net.Conn, error) {
	if p.dial != nil {
		return p.dial("tcp", p.upstream)
	}
	return net.DialTimeout("tcp", p.upstream, p.dialTimeout)
}

// memSource is a decoded in-memory clip.
type memSource struct {
	w, h, fps int
	frames    []*frame.Frame
}

func (m *memSource) Size() (int, int)         { return m.w, m.h }
func (m *memSource) FPS() int                 { return m.fps }
func (m *memSource) TotalFrames() int         { return len(m.frames) }
func (m *memSource) Frame(i int) *frame.Frame { return m.frames[i] }

func magicReader(m [4]byte) io.Reader { return &sliceReader{b: m[:]} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}
