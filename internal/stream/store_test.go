package stream

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/annstore"
	"repro/internal/obs"
)

// computeSpanNames are the spans the annotation/compensation pipeline
// emits. A warm restart that truly serves from the persistent store must
// record none of them.
var computeSpanNames = map[string]bool{
	"annotate.luma_stats":          true,
	"annotate.scene_detect":        true,
	"annotate.build_track":         true,
	"stream.compensate_encode":     true,
	"stream.annotate_sidechannels": true,
}

func countComputeSpans(r *obs.Registry) int {
	n := 0
	for _, s := range r.RecentSpans() {
		if computeSpanNames[s.Name] {
			n++
		}
	}
	return n
}

// startStoreServer brings up a server backed by a persistent store in
// dir, with a fresh registry so span counts isolate this incarnation.
func startStoreServer(t *testing.T, dir string) (*Server, *annstore.Store, *obs.Registry, string) {
	t.Helper()
	st, err := annstore.Open(dir, annstore.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	s.SetStore(st)
	st.SetObserver(reg, obs.L("role", "server"))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	return s, st, reg, addr.String()
}

func fetchAnnotated(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := Request{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated}
	if err := WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty annotated stream")
	}
	return data
}

// TestWarmRestartServesFromStore is the headline persistence property:
// populate the store by serving once, restart the server process state
// (new server, new memory cache, new registry, same store directory),
// and the restarted server streams bit-identical frames without running
// the annotation pipeline at all.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()

	s1, st1, reg1, addr1 := startStoreServer(t, dir)
	cold := fetchAnnotated(t, addr1)
	if n := countComputeSpans(reg1); n == 0 {
		t.Fatal("cold fetch recorded no pipeline spans; span accounting broken")
	}
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, st2, reg2, addr2 := startStoreServer(t, dir)
	defer s2.Close()
	defer st2.Close()
	if st2.Len() == 0 {
		t.Fatal("store empty after restart; nothing was persisted")
	}
	warm := fetchAnnotated(t, addr2)

	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm restart served different bytes: cold %d bytes, warm %d bytes",
			len(cold), len(warm))
	}
	if n := countComputeSpans(reg2); n != 0 {
		t.Errorf("warm fetch ran the pipeline: %d compute spans, want 0", n)
	}
}

// TestStoreCorruptionFallsBackToCompute flips payload bytes in every
// persisted artifact between restarts. The restarted server must notice
// (checksums), quarantine the damage, recompute, and still serve bytes
// identical to the cold run — corruption degrades to a cache miss, never
// to corrupt output.
func TestStoreCorruptionFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()

	s1, st1, _, addr1 := startStoreServer(t, dir)
	cold := fetchAnnotated(t, addr1)
	s1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip the final payload byte of every artifact on disk.
	objDir := filepath.Join(dir, "objects")
	des, err := os.ReadDir(objDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), ".art") {
			continue
		}
		path := filepath.Join(objDir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no artifacts on disk to corrupt")
	}

	s2, st2, reg2, addr2 := startStoreServer(t, dir)
	defer s2.Close()
	defer st2.Close()
	warm := fetchAnnotated(t, addr2)

	if !bytes.Equal(cold, warm) {
		t.Fatal("corrupted store produced different served bytes")
	}
	if n := countComputeSpans(reg2); n == 0 {
		t.Error("corrupt artifacts were served without recompute")
	}
	if st2.Quarantined() == 0 {
		t.Error("corrupt artifacts were not quarantined")
	}
}
