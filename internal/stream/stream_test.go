package stream

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/video"
)

func quiet(string, ...any) {}

func testCatalog() map[string]core.Source {
	dark := video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 10, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
		{Frames: 10, BaseLuma: 0.2, LumaSpread: 0.12, MaxLuma: 0.95, HighlightFrac: 0.01},
	})
	return map[string]core.Source{"night": core.ClipSource{Clip: dark}}
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr.String()
}

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Request{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated}
	if err := WriteRequest(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clip != want.Clip || got.Device != want.Device || got.Mode != want.Mode {
		t.Errorf("request round trip: %+v vs %+v", got, want)
	}
	if got.Quality < 0.09 || got.Quality > 0.11 {
		t.Errorf("quality = %v, want ~0.10", got.Quality)
	}
}

func TestRequestValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, Request{Clip: strings.Repeat("x", 300)}); err == nil {
		t.Error("overlong clip name accepted")
	}
	if err := WriteRequest(&buf, Request{Clip: "a", Quality: 2}); err == nil {
		t.Error("quality > 1 accepted")
	}
	if _, err := ReadRequest(bytes.NewReader([]byte("BAD!xxxxx"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadRequest(bytes.NewReader(nil)); err == nil {
		t.Error("empty request accepted")
	}
}

func TestErrorResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteError(&buf, "boom"); err != nil {
		t.Fatal(err)
	}
	_, remoteErr, err := ReadResponseMagic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if remoteErr == nil || !strings.Contains(remoteErr.Error(), "boom") {
		t.Errorf("remoteErr = %v", remoteErr)
	}
}

func TestClientPlaysAnnotatedStream(t *testing.T) {
	_, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if !res.Annotated || res.Scenes < 2 {
		t.Errorf("annotations missing: %+v", res)
	}
	if res.BacklightSavings <= 0.2 {
		t.Errorf("backlight savings = %v, want substantial on dark clip", res.BacklightSavings)
	}
	if res.AvgLevel >= display.MaxLevel {
		t.Error("backlight never dimmed")
	}
	if res.BytesAnn <= 0 || res.BytesAnn > 512 {
		t.Errorf("annotation bytes = %d, want small nonzero", res.BytesAnn)
	}
	if res.BytesStream <= res.BytesAnn {
		t.Errorf("stream bytes = %d implausibly small", res.BytesStream)
	}
	// The compensated stream must be brighter than the original content.
	if res.DecodedAvgLuma < 60 {
		t.Errorf("decoded avg luma = %v; compensation should brighten a dark clip",
			res.DecodedAvgLuma)
	}
}

func TestClientQualitySweepIncreasesSavings(t *testing.T) {
	_, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	lossless, err := client.Play(addr, "night", 0)
	if err != nil {
		t.Fatal(err)
	}
	aggressive, err := client.Play(addr, "night", 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if aggressive.BacklightSavings < lossless.BacklightSavings {
		t.Errorf("savings at 20%% (%v) below lossless (%v)",
			aggressive.BacklightSavings, lossless.BacklightSavings)
	}
}

func TestServerRejectsUnknownClip(t *testing.T) {
	_, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	_, err := client.Play(addr, "no-such-clip", 0.1)
	if err == nil || !strings.Contains(err.Error(), "unknown clip") {
		t.Errorf("err = %v, want unknown clip", err)
	}
}

func TestProxyServesAnnotatedFromRawUpstream(t *testing.T) {
	_, upstream := startServer(t)
	p := NewProxy(upstream)
	p.SetLogf(quiet)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	client := &Client{Device: display.Zaurus5600()}
	res, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Annotated {
		t.Fatal("proxy stream not annotated")
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if res.BacklightSavings <= 0.1 {
		t.Errorf("proxy-path savings = %v", res.BacklightSavings)
	}
}

func TestProxyUpstreamDown(t *testing.T) {
	p := NewProxy("127.0.0.1:1") // nothing listens there
	p.SetLogf(quiet)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	client := &Client{Device: display.IPAQ5555()}
	if _, err := client.Play(addr.String(), "night", 0.1); err == nil {
		t.Error("expected error when upstream is down")
	}
}

func TestClientWithoutDevice(t *testing.T) {
	c := &Client{}
	if _, err := c.Play("127.0.0.1:1", "x", 0); err == nil {
		t.Error("client without device accepted")
	}
}

func TestServerAndProxyAgreeOnSavings(t *testing.T) {
	// "Either the proxy or the server node suffices" — both paths should
	// deliver the same backlight schedule to the client.
	_, upstream := startServer(t)
	p := NewProxy(upstream)
	p.SetLogf(quiet)
	proxyAddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	client := &Client{Device: display.IPAQ5555()}
	direct, err := client.Play(upstream, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	viaProxy, err := client.Play(proxyAddr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	diff := direct.BacklightSavings - viaProxy.BacklightSavings
	if diff < 0 {
		diff = -diff
	}
	// The proxy analyses decoded (lossy) frames, so tiny deviations in
	// scene targets are expected; the schedules must agree closely.
	if diff > 0.05 {
		t.Errorf("server path %v vs proxy path %v savings",
			direct.BacklightSavings, viaProxy.BacklightSavings)
	}
}

func TestStreamCarriesApplicationAnnotations(t *testing.T) {
	_, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DecodeCycles) != res.Frames {
		t.Errorf("decode-cycle annotations: %d entries for %d frames",
			len(res.DecodeCycles), res.Frames)
	}
	for i, c := range res.DecodeCycles {
		if c == 0 {
			t.Fatalf("frame %d annotated with zero cycles", i)
		}
	}
	if len(res.NetScenes) != res.Scenes {
		t.Errorf("scene-byte annotations: %d entries for %d scenes",
			len(res.NetScenes), res.Scenes)
	}
	var annBytes int
	for _, s := range res.NetScenes {
		if s.Bytes <= 0 || s.Seconds <= 0 {
			t.Fatalf("degenerate scene annotation %+v", s)
		}
		annBytes += s.Bytes
	}
	// The per-scene byte counts must account for the stream payload
	// (headers and side channels excluded).
	if annBytes <= 0 || annBytes > res.BytesStream {
		t.Errorf("scene bytes %d vs stream bytes %d", annBytes, res.BytesStream)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const n = 8
	errs := make(chan error, n)
	results := make(chan *PlayResult, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			client := &Client{Device: display.Devices()[i%3]}
			res, err := client.Play(addr, "night", float64(i%5)*0.05)
			if err != nil {
				errs <- err
				return
			}
			results <- res
		}(i)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case res := <-results:
			if res.Frames != 20 {
				t.Errorf("session got %d frames", res.Frames)
			}
		}
	}
}

func TestServerCloseInterruptsSessions(t *testing.T) {
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		client := &Client{Device: display.IPAQ5555()}
		// May fail or succeed depending on timing; must not hang.
		client.Play(addr.String(), "night", 0.1)
	}()
	s.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client hung after server close")
	}
	// New connections must be refused after Close.
	client := &Client{Device: display.IPAQ5555()}
	if _, err := client.Play(addr.String(), "night", 0.1); err == nil {
		t.Error("play succeeded after server close")
	}
}

func TestServerAnnotationCacheIsReused(t *testing.T) {
	srv, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	if _, err := client.Play(addr, "night", 0.1); err != nil {
		t.Fatal(err)
	}
	// Second session must reuse the cached track (same pointer).
	src := testCatalog()["night"]
	first, err := srv.track(context.Background(), "night", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Play(addr, "night", 0.2); err != nil {
		t.Fatal(err)
	}
	second, err := srv.track(context.Background(), "night", src)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("annotation track recomputed")
	}
}

func TestServerResolvesDeviceLevels(t *testing.T) {
	_, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ServerLevels {
		t.Fatal("server did not resolve device levels for a known device")
	}
	// The server-resolved schedule must equal what the client would
	// compute with its own LUT: play with an unknown device name to force
	// the client-side path and compare savings.
	anon := *display.IPAQ5555()
	anon.Name = "unknown-device"
	clientLocal := &Client{Device: &anon}
	local, err := clientLocal.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if local.ServerLevels {
		t.Error("server resolved levels for an unknown device name")
	}
	if math.Abs(local.BacklightSavings-res.BacklightSavings) > 1e-9 {
		t.Errorf("server-level path %v vs client-LUT path %v savings",
			res.BacklightSavings, local.BacklightSavings)
	}
}

func TestVariantCacheServesIdenticalStreams(t *testing.T) {
	srv, addr := startServer(t)
	client := &Client{Device: display.IPAQ5555()}
	if _, err := client.Play(addr, "night", 0.10); err != nil {
		t.Fatal(err)
	}
	// One play populates track + variant + device-levels artifacts.
	if n := srv.cache.Len(); n != 3 {
		t.Fatalf("artifact cache has %d entries after first play, want 3", n)
	}
	// Same quality again: nothing new. Different quality: one more variant.
	if _, err := client.Play(addr, "night", 0.10); err != nil {
		t.Fatal(err)
	}
	if n := srv.cache.Len(); n != 3 {
		t.Errorf("artifact cache has %d entries after repeat play, want 3", n)
	}
	if _, err := client.Play(addr, "night", 0.20); err != nil {
		t.Fatal(err)
	}
	if n := srv.cache.Len(); n != 4 {
		t.Errorf("artifact cache has %d entries after new quality, want 4", n)
	}
}
