package stream

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/anncache"
	"repro/internal/annstore"
	"repro/internal/breaker"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/obs"
)

// TestProxyShutdownStopsRecoveryProber is the prober-lifecycle
// regression: the upstream recovery prober must stop when the proxy
// drains — not keep dialing dead upstreams from a goroutine that
// outlives the node. Runs several cycles so a leaked goroutine
// accumulates visibly in the final count.
func TestProxyShutdownStopsRecoveryProber(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		reg := obs.NewRegistry()
		p := NewProxy("127.0.0.1:1") // nothing listens here: dials refuse instantly
		p.SetLogf(quiet)
		p.SetProbeInterval(2 * time.Millisecond)
		p.SetBreakerConfig(breaker.Config{
			Window: time.Second, Buckets: 4, FailureRate: 0.5,
			MinSamples: 1, OpenFor: 5 * time.Millisecond, HalfOpenProbes: 1, CloseAfter: 1,
		})
		p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond})
		p.SetObserver(reg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		p.Serve(ln)

		// Trip the upstream breaker so the prober has live work.
		client := &Client{Device: display.IPAQ5555(), Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond}}
		if _, err := client.Play(ln.Addr().String(), "night", 0.10); err == nil {
			t.Fatal("play against a dead upstream unexpectedly succeeded")
		}
		probes := func() uint64 {
			return reg.Counter("proxy_upstream_probes_total", "", obs.L("role", "proxy")).Value()
		}
		deadline := time.Now().Add(2 * time.Second)
		for probes() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("prober never probed the tripped upstream")
			}
			time.Sleep(time.Millisecond)
		}

		// Alternate graceful and immediate shutdown: both must reap the
		// prober before returning.
		if i%2 == 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := p.Shutdown(ctx); err != nil {
				t.Fatalf("shutdown: %v", err)
			}
			cancel()
		} else {
			p.Close()
		}
		settled := probes()
		time.Sleep(20 * time.Millisecond)
		if got := probes(); got != settled {
			t.Fatalf("prober still dialing after shutdown (%d -> %d probes)", settled, got)
		}
	}
	// Every prober (and accept loop) must be gone: the goroutine count
	// settles back to around the baseline instead of growing by one
	// leaked prober per cycle.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d at start, %d after 4 proxy lifecycles", base, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestZeroCopyServeSurvivesStoreEviction is the GetRef-vs-eviction
// race: sessions streaming a variant straight from its store file while
// the LRU evicts that file must either finish from the still-open file
// or fall back to the in-memory wire before the first byte — never a
// short or corrupt stream.
func TestZeroCopyServeSurvivesStoreEviction(t *testing.T) {
	st, err := annstore.Open(t.TempDir(), annstore.Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetStore(st)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// First play computes the variant and writes it through; later
	// sessions serve its wire region from the store file.
	ref := playDigests(t, addr.String(), 0.10, nil)

	const sessions = 6
	results := make([][]uint64, sessions)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var digests []uint64
			client := &Client{Device: display.IPAQ5555()}
			client.OnFrame = func(fi int, f *frame.Frame, backlight int) {
				if fi == 0 {
					digests = digests[:0]
				}
				digests = append(digests, frameDigest(f))
			}
			<-start
			if _, err := client.Play(addr.String(), "night", 0.10); err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			results[i] = digests
		}(i)
	}
	// An eviction-sized Put races the sessions: it pushes the store
	// over budget and the LRU deletes every other artifact file —
	// including the variant being served.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		filler := make([]byte, (1<<20)-4096)
		if err := st.Put(anncache.Key{Kind: "filler", Digest: "x", Quality: -1}, filler); err != nil {
			t.Errorf("eviction put: %v", err)
		}
	}()
	close(start)
	wg.Wait()

	for i, got := range results {
		if got == nil {
			t.Fatalf("session %d produced no frames", i)
		}
		assertSameDigests(t, ref, got, "session racing eviction")
		_ = i
	}
	// The variant's file is gone; a fresh session must still be served
	// bit-identically from the memory fallback.
	if _, ok := st.GetRef(anncache.Key{Kind: "variant", Digest: "nonexistent", Quality: 0}); ok {
		t.Fatal("GetRef invented a ref for a missing key")
	}
	again := playDigests(t, addr.String(), 0.10, nil)
	assertSameDigests(t, ref, again, "post-eviction session")
}
