package stream

import (
	"sync"
	"testing"

	"repro/internal/display"
	"repro/internal/obs"
)

// TestSetLogfConcurrentWithSessions replaces the logger while sessions
// are active and erroring — the data race the unguarded logf field used
// to have (run with -race).
func TestSetLogfConcurrentWithSessions(t *testing.T) {
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.SetLogf(func(string, ...any) {})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &Client{Device: display.IPAQ5555()}
			client.Play(addr.String(), "night", 0.1)
			// Unknown clips force the server's error-logging path.
			client.Play(addr.String(), "no-such-clip", 0.1)
		}()
	}
	wg.Wait()

	p := NewProxy(addr.String())
	p.SetLogf(quiet)
	proxyAddr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				p.SetLogf(func(string, ...any) {})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &Client{Device: display.IPAQ5555()}
			client.Play(proxyAddr.String(), "night", 0.1)
		}()
	}
	wg.Wait()
}

func TestServerTelemetryCounts(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	client := &Client{Device: display.IPAQ5555()}
	for i := 0; i < 2; i++ {
		if _, err := client.Play(addr.String(), "night", 0.1); err != nil {
			t.Fatal(err)
		}
	}

	role := obs.L("role", "server")
	if got := reg.Counter("stream_conns_total", "", role).Value(); got != 2 {
		t.Errorf("conns_total = %d, want 2", got)
	}
	if got := reg.Counter("stream_frames_sent_total", "", role).Value(); got != 40 {
		t.Errorf("frames_sent_total = %d, want 40 (2 sessions x 20 frames)", got)
	}
	if got := reg.Counter("stream_bytes_sent_total", "", role).Value(); got == 0 {
		t.Error("bytes_sent_total = 0")
	}
	if got := reg.Gauge("stream_active_conns", "", role).Value(); got != 0 {
		t.Errorf("active_conns = %v after sessions ended, want 0", got)
	}
	// Each artifact kind — track, variant, device levels — misses once on
	// the first play and hits once on the replay.
	for _, kind := range []string{"track", "variant", "levels"} {
		k := obs.L("kind", kind)
		hits := reg.Counter("anncache_hits_total", "", k, role).Value()
		misses := reg.Counter("anncache_misses_total", "", k, role).Value()
		if misses != 1 || hits != 1 {
			t.Errorf("%s cache hits/misses = %d/%d, want 1/1", kind, hits, misses)
		}
	}
	if got := reg.Gauge("anncache_entries", "", role).Value(); got != 3 {
		t.Errorf("anncache_entries = %v, want 3 (track+variant+levels)", got)
	}
	if got := reg.Histogram(obs.SpanMetric, "", nil, obs.L("span", "annotate.scene_detect")).Count(); got != 1 {
		t.Errorf("annotate.scene_detect span count = %d, want 1 (cached on replay)", got)
	}
}

// TestUninstrumentedServerStillWorks pins the nil/no-op default: no
// SetObserver call, metrics stay nil, streaming is unaffected.
func TestUninstrumentedServerStillWorks(t *testing.T) {
	s, addr := startServer(t)
	if s.obsReg != nil {
		t.Fatal("server has a registry without SetObserver")
	}
	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr, "night", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
}

// TestAcceptLoopSurvivesListenerClose exercises the net.ErrClosed
// branch: closing must not bump the accept-error counter.
func TestAcceptLoopSurvivesListenerClose(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	if _, err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got := reg.Counter("stream_accept_errors_total", "", obs.L("role", "server")).Value(); got != 0 {
		t.Errorf("accept_errors_total = %d after orderly close, want 0", got)
	}

	p := NewProxy("127.0.0.1:1")
	p.SetLogf(quiet)
	p.SetObserver(reg)
	if _, err := p.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if got := reg.Counter("stream_accept_errors_total", "", obs.L("role", "proxy")).Value(); got != 0 {
		t.Errorf("proxy accept_errors_total = %d after orderly close, want 0", got)
	}
}
