package stream

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/container"
)

// FuzzReadRequest hardens the negotiation parser: arbitrary bytes must
// never panic, and anything it accepts must survive a write/read round
// trip unchanged (the v1, v2, and v3 framings).
func FuzzReadRequest(f *testing.F) {
	traced := Request{
		Clip: "night", Quality: 0.10, Device: "ipaq5555",
		Mode: ModeAnnotated, Version: 3, StartFrame: 7,
	}
	traced.Trace.Trace[0] = 0xab
	traced.Trace.Span[7] = 0x01
	traced.Trace.Sampled = true
	for _, req := range []Request{
		{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated},
		{Clip: "n", Quality: 1, Mode: ModeRaw},
		{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated, Version: 2, StartFrame: 7},
		{Clip: "day", Quality: 0.5, Device: "ipaq5555", Mode: ModeAnnotated, Version: 3},
		traced,
	} {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RQS1"))
	f.Add([]byte("RQS2\xff\x00\x01x\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRequest(&out, req); err != nil {
			t.Fatalf("parsed request %+v does not re-encode: %v", req, err)
		}
		got, err := ReadRequest(&out)
		if err != nil {
			t.Fatalf("re-encoded request does not parse: %v", err)
		}
		if got != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", got, req)
		}
	})
}

// FuzzReadResponseMagic hardens the response discriminator: no panic on
// arbitrary bytes, and the invariant that a nil-error return means the
// container magic was seen.
func FuzzReadResponseMagic(f *testing.F) {
	var okResp bytes.Buffer
	okResp.Write(container.Magic[:])
	f.Add(okResp.Bytes())
	var errResp bytes.Buffer
	WriteError(&errResp, "boom")
	f.Add(errResp.Bytes())
	var capResp bytes.Buffer
	WriteOverCapacity(&capResp)
	f.Add(capResp.Bytes())
	f.Add([]byte("ERR1\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		magic, remoteErr, err := ReadResponseMagic(bytes.NewReader(data))
		if err == nil && remoteErr == nil && magic != container.Magic {
			t.Fatalf("accepted magic %q", magic[:])
		}
		if remoteErr != nil && errors.Is(remoteErr, ErrOverCapacity) &&
			!bytes.Contains(data, []byte(overCapacityMsg)) {
			t.Fatalf("over-capacity verdict without the wire message in %q", data)
		}
	})
}
