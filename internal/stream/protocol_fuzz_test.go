package stream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/container"
)

// FuzzReadRequest hardens the negotiation parser: arbitrary bytes must
// never panic, and anything it accepts must survive a write/read round
// trip unchanged (the v1, v2, and v3 framings).
func FuzzReadRequest(f *testing.F) {
	traced := Request{
		Clip: "night", Quality: 0.10, Device: "ipaq5555",
		Mode: ModeAnnotated, Version: 3, StartFrame: 7,
	}
	traced.Trace.Trace[0] = 0xab
	traced.Trace.Span[7] = 0x01
	traced.Trace.Sampled = true
	for _, req := range []Request{
		{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated},
		{Clip: "n", Quality: 1, Mode: ModeRaw},
		{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated, Version: 2, StartFrame: 7},
		{Clip: "day", Quality: 0.5, Device: "ipaq5555", Mode: ModeAnnotated, Version: 3},
		{Clip: "night", Quality: 0.10, Device: "ipaq5555", Mode: ModeAnnotated, Version: 4, Adaptive: true},
		{Clip: "night", Quality: 0.05, Device: "ipaq5555", Mode: ModeAnnotated, Version: 4, Adaptive: true, StartFrame: 12},
		traced,
	} {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RQS1"))
	f.Add([]byte("RQS2\xff\x00\x01x\x00"))
	f.Add([]byte("RQS4\x02\x00\x01x\x00\x00\x00\x00\x00\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRequest(&out, req); err != nil {
			t.Fatalf("parsed request %+v does not re-encode: %v", req, err)
		}
		got, err := ReadRequest(&out)
		if err != nil {
			t.Fatalf("re-encoded request does not parse: %v", err)
		}
		if got != req {
			t.Fatalf("round trip changed the request: %+v vs %+v", got, req)
		}
	})
}

// FuzzReadResponseMagic hardens the response discriminator: no panic on
// arbitrary bytes, and the invariant that a nil-error return means the
// container magic was seen.
func FuzzReadResponseMagic(f *testing.F) {
	var okResp bytes.Buffer
	okResp.Write(container.Magic[:])
	f.Add(okResp.Bytes())
	var errResp bytes.Buffer
	WriteError(&errResp, "boom")
	f.Add(errResp.Bytes())
	var capResp bytes.Buffer
	WriteOverCapacity(&capResp)
	f.Add(capResp.Bytes())
	f.Add([]byte("ERR1\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		magic, remoteErr, err := ReadResponseMagic(bytes.NewReader(data))
		if err == nil && remoteErr == nil && magic != container.Magic {
			t.Fatalf("accepted magic %q", magic[:])
		}
		if remoteErr != nil && errors.Is(remoteErr, ErrOverCapacity) &&
			!bytes.Contains(data, []byte(overCapacityMsg)) {
			t.Fatalf("over-capacity verdict without the wire message in %q", data)
		}
	})
}

// FuzzReadQualitySwitch hardens the mid-stream control channel: no
// panic on arbitrary bytes, and anything accepted must round-trip.
func FuzzReadQualitySwitch(f *testing.F) {
	for rung := 0; rung < 5; rung++ {
		var buf bytes.Buffer
		if err := WriteQualitySwitch(&buf, rung); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("QSW1"))
	f.Add([]byte("QSW1\xff"))
	f.Add([]byte("XXXX\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rung, err := ReadQualitySwitch(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteQualitySwitch(&out, rung); err != nil {
			t.Fatalf("parsed rung %d does not re-encode: %v", rung, err)
		}
		got, err := ReadQualitySwitch(&out)
		if err != nil || got != rung {
			t.Fatalf("round trip changed the rung: %d vs %d (%v)", got, rung, err)
		}
	})
}

// TestRequestV4Framing pins the adaptive negotiation: the flag survives
// a round trip, only rides the v4 magic, and pre-v4 writers refuse it —
// the contract behind the 4 → 3 → 2 → 1 downgrade chain.
func TestRequestV4Framing(t *testing.T) {
	var buf bytes.Buffer
	want := Request{Clip: "night", Quality: 0.10, Device: "ipaq5555",
		Mode: ModeAnnotated, Version: 4, Adaptive: true, StartFrame: 3}
	if err := WriteRequest(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("RQS4")) {
		t.Fatalf("v4 request framed as %q", buf.Bytes()[:4])
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Adaptive || got.Version != 4 || got.StartFrame != 3 {
		t.Errorf("v4 round trip lost fields: %+v", got)
	}
	// The adaptive flag must not be expressible in older framings: a v3
	// writer that sneaked it through would desynchronise the downgrade.
	if err := WriteRequest(&bytes.Buffer{}, Request{
		Clip: "night", Mode: ModeAnnotated, Version: 3, Adaptive: true,
	}); err == nil {
		t.Error("adaptive flag accepted on a v3 request")
	}
	// A v4 request without the flag is legal (fixed session on new wire).
	plain := Request{Clip: "night", Quality: 0.2, Mode: ModeAnnotated, Version: 4}
	var pb bytes.Buffer
	if err := WriteRequest(&pb, plain); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadRequest(&pb); err != nil || got.Adaptive {
		t.Errorf("plain v4 round trip: %+v, %v", got, err)
	}
}

// TestQualitySwitchFraming pins the control-message wire format and its
// failure modes.
func TestQualitySwitchFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteQualitySwitch(&buf, 4); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "QSW1\x04" {
		t.Fatalf("wire bytes = %q, want QSW1\\x04", got)
	}
	if _, err := ReadQualitySwitch(bytes.NewReader([]byte("QSW9\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadQualitySwitch(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("clean EOF reported as %v", err)
	}
	if _, err := ReadQualitySwitch(bytes.NewReader([]byte("QS"))); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated message reported as %v, want a non-EOF error", err)
	}
	if err := WriteQualitySwitch(&bytes.Buffer{}, 300); err == nil {
		t.Error("out-of-range rung accepted")
	}
	if err := WriteQualitySwitch(&bytes.Buffer{}, -1); err == nil {
		t.Error("negative rung accepted")
	}
}
