package stream

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// newBackoffRNG seeds a jitter source for one retry loop.
func newBackoffRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// deadlineConn arms a fresh deadline before every Read and Write, so a
// stalled peer (or a lossy link that stops delivering) surfaces as a
// timeout instead of hanging the session forever. A zero timeout leaves
// that direction unbounded.
type deadlineConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}

// copyBufPool recycles chunk buffers for ReadFrom fallbacks, so the
// warm serve path never pays io.Copy's fresh 32 KiB buffer per call.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 64<<10)
	return &b
}}

// onlyWriter hides a writer's ReadFrom from io.CopyBuffer so the copy
// loop actually uses the supplied pooled buffer instead of recursing
// into the method being implemented.
type onlyWriter struct{ io.Writer }

// ReadFrom arms the write deadline once per call and forwards to the
// underlying connection's ReadFrom when it has one — for a
// *net.TCPConn that is the sendfile path, moving file-backed artifact
// bytes to the socket without dragging them through user space. Other
// connections fall back to a pooled-buffer copy. Callers bound each
// ReadFrom to a chunk-sized span so the single deadline covers a
// bounded write, matching Write's per-call semantics.
func (c *deadlineConn) ReadFrom(r io.Reader) (int64, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	if rf, ok := c.Conn.(io.ReaderFrom); ok {
		return rf.ReadFrom(r)
	}
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(onlyWriter{c.Conn}, r, *bp)
	copyBufPool.Put(bp)
	return n, err
}
