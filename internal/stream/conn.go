package stream

import (
	"math/rand"
	"net"
	"time"
)

// newBackoffRNG seeds a jitter source for one retry loop.
func newBackoffRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// deadlineConn arms a fresh deadline before every Read and Write, so a
// stalled peer (or a lossy link that stops delivering) surfaces as a
// timeout instead of hanging the session forever. A zero timeout leaves
// that direction unbounded.
type deadlineConn struct {
	net.Conn
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func (c *deadlineConn) Read(p []byte) (int, error) {
	if c.readTimeout > 0 {
		if err := c.Conn.SetReadDeadline(time.Now().Add(c.readTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Read(p)
}

func (c *deadlineConn) Write(p []byte) (int, error) {
	if c.writeTimeout > 0 {
		if err := c.Conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(p)
}
