package stream

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/annstore"
	"repro/internal/breaker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/frame"
	"repro/internal/obs"
)

// The clustered-serving end-to-end checks: a fleet of streamd server
// nodes sharing one catalog must compute each artifact exactly once
// fleet-wide (rendezvous routing + peer fill), serve bit-identical
// streams from every node, and survive the shard owner dying mid-stream
// — in-flight sessions finish untouched, new sessions fall back to
// breaker-guarded local compute, and a restarted owner rejoins warm
// from its store without a recompute herd.

// clusterTestBreaker trips after one failure and retries quickly, so
// churn tests converge in milliseconds instead of seconds.
var clusterTestBreaker = breaker.Config{
	Window: time.Second, Buckets: 4,
	FailureRate: 0.5, MinSamples: 1,
	OpenFor: 50 * time.Millisecond, HalfOpenProbes: 1, CloseAfter: 1,
}

type clusterTestNode struct {
	srv   *Server
	addr  string
	reg   *obs.Registry
	store *annstore.Store
	dir   string
}

// kill tears the node down hard (listener, sessions, store), as a
// crashed process would.
func (n *clusterTestNode) kill() {
	n.srv.Close()
	if n.store != nil {
		n.store.Close()
	}
}

// bootClusterServer starts one clustered server on addr with the given
// peer list; dir, when non-empty, backs it with a persistent store (the
// restart tests reopen the same dir).
func bootClusterServer(t *testing.T, addr string, peers []string, dir string) *clusterTestNode {
	t.Helper()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	node := &clusterTestNode{srv: s, reg: obs.NewRegistry(), dir: dir}
	if dir != "" {
		st, err := annstore.Open(dir, annstore.Options{MaxBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		node.store = st
		s.SetStore(st)
	}
	cn, err := cluster.New(cluster.Config{
		Self: addr, Peers: peers,
		Breaker:    clusterTestBreaker,
		ProbeEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetCluster(cn)
	s.SetObserver(node.reg)
	a, err := s.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	node.addr = a.String()
	t.Cleanup(node.kill)
	return node
}

// startClusterFleet boots n clustered servers on loopback, each knowing
// all the others, with per-node stores when withStores is set.
func startClusterFleet(t *testing.T, n int, withStores bool) []*clusterTestNode {
	t.Helper()
	// Reserve concrete ports first: every node must know the full
	// member list before it starts.
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = reserveAddr(t)
	}
	nodes := make([]*clusterTestNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		dir := ""
		if withStores {
			dir = t.TempDir()
		}
		nodes[i] = bootClusterServer(t, addrs[i], peers, dir)
	}
	return nodes
}

// reserveAddr picks a free loopback port and releases it immediately —
// the tiny reuse window is fine for tests.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// playDigests plays clip "night" at quality q and returns per-frame
// pixel digests (the bit-identity fingerprint). onFrame, when non-nil,
// observes each frame index as it decodes.
func playDigests(t *testing.T, addr string, q float64, onFrame func(i int)) []uint64 {
	t.Helper()
	var digests []uint64
	client := &Client{Device: display.IPAQ5555()}
	client.OnFrame = func(i int, f *frame.Frame, backlight int) {
		if i == 0 {
			digests = digests[:0]
		}
		digests = append(digests, frameDigest(f))
		if onFrame != nil {
			onFrame(i)
		}
	}
	if _, err := client.Play(addr, "night", q); err != nil {
		t.Fatalf("play via %s: %v", addr, err)
	}
	return digests
}

func assertSameDigests(t *testing.T, want, got []uint64, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d frames, want %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: frame %d differs", what, i)
		}
	}
}

func spanCount(reg *obs.Registry, name string) uint64 {
	return reg.Histogram(obs.SpanMetric, "", nil, obs.L("span", name)).Count()
}

func fleetSpanCount(nodes []*clusterTestNode, name string) uint64 {
	var total uint64
	for _, n := range nodes {
		total += spanCount(n.reg, name)
	}
	return total
}

func routeCount(n *clusterTestNode, decision string) uint64 {
	return n.reg.Counter("cluster_route_total", "",
		obs.L("role", "server"), obs.L("decision", decision)).Value()
}

func fillCount(n *clusterTestNode) uint64 {
	return n.reg.Counter("cluster_peer_fills_total", "", obs.L("role", "server")).Value()
}

// TestClusterExactlyOneComputeFleetWide plays the same clip through
// every node of a 3-node cluster in turn: each session must be
// bit-identical to a standalone server's, and the annotation pipeline
// and variant encoder must each have run exactly once across the whole
// fleet — every other node filled from the shard owner.
func TestClusterExactlyOneComputeFleetWide(t *testing.T) {
	_, refAddr := startServer(t)
	ref := playDigests(t, refAddr, 0.10, nil)

	nodes := startClusterFleet(t, 3, false)
	for i, n := range nodes {
		got := playDigests(t, n.addr, 0.10, nil)
		assertSameDigests(t, ref, got, n.addr)
		_ = i
	}

	if got := fleetSpanCount(nodes, "annotate.build_track"); got != 1 {
		t.Errorf("annotation pipeline ran %d times fleet-wide, want exactly 1", got)
	}
	if got := fleetSpanCount(nodes, "stream.compensate_encode"); got != 1 {
		t.Errorf("variant encoder ran %d times fleet-wide, want exactly 1", got)
	}
	var fills, served uint64
	for _, n := range nodes {
		fills += fillCount(n)
		for _, kind := range []string{"track", "variant", "levels"} {
			served += n.reg.Counter("cluster_fetch_served_total", "",
				obs.L("role", "server"), obs.L("kind", kind)).Value()
		}
	}
	if fills < 2 {
		t.Errorf("only %d peer fills fleet-wide; non-owners should have filled, not computed", fills)
	}
	if served < fills {
		t.Errorf("owners served %d fetches but requesters recorded %d fills", served, fills)
	}
}

// TestClusterPeerFillSingleFlight hits one cold non-owner node with
// four concurrent sessions: the cache's single-flight must fan them
// into at most one peer fetch per artifact kind, and the fleet still
// computes everything exactly once.
func TestClusterPeerFillSingleFlight(t *testing.T) {
	_, refAddr := startServer(t)
	ref := playDigests(t, refAddr, 0.10, nil)

	nodes := startClusterFleet(t, 3, false)
	// Pick a node that does not own the clip's track: its first session
	// must fill the track from a peer.
	src := testCatalog()["night"]
	dg := core.SourceDigest(src)
	members := nodes[0].srv.Cluster().Members()
	trackOwner := cluster.Owner(members, cluster.RouteKey("track", dg))
	var cold *clusterTestNode
	for _, n := range nodes {
		if n.addr != trackOwner {
			cold = n
			break
		}
	}

	const sessions = 4
	results := make([][]uint64, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var digests []uint64
			client := &Client{Device: display.IPAQ5555()}
			client.OnFrame = func(fi int, f *frame.Frame, backlight int) {
				if fi == 0 {
					digests = digests[:0]
				}
				digests = append(digests, frameDigest(f))
			}
			if _, err := client.Play(cold.addr, "night", 0.10); err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			results[i] = digests
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got == nil {
			t.Fatalf("session %d produced no frames", i)
		}
		assertSameDigests(t, ref, got, "concurrent session")
		_ = i
	}
	// Three artifact kinds exist (track, variant, levels); four
	// concurrent misses per kind must have fanned into at most one
	// fetch each.
	if fills := fillCount(cold); fills < 1 || fills > 3 {
		t.Errorf("cold node made %d peer fills for 4 concurrent sessions, want 1..3 (single-flight fan-in)", fills)
	}
	if got := fleetSpanCount(nodes, "annotate.build_track"); got != 1 {
		t.Errorf("annotation pipeline ran %d times fleet-wide, want exactly 1", got)
	}
}

// TestClusterChaosOwnerDeathMidStream is the churn drill: kill the
// variant shard owner while a client is mid-stream on another node.
// The in-flight session must finish bit-identical (its artifacts are
// already local); a new session needing a fresh artifact must fall
// back to breaker-guarded local compute, still bit-identical; and the
// owner restarting on the same address with its store intact must
// rejoin warm — zero pipeline runs, no recompute herd.
func TestClusterChaosOwnerDeathMidStream(t *testing.T) {
	_, refAddr := startServer(t)
	refLow := playDigests(t, refAddr, 0.10, nil)
	refHigh := playDigests(t, refAddr, 0.20, nil)

	nodes := startClusterFleet(t, 3, true)
	src := testCatalog()["night"]
	dg := core.SourceDigest(src)
	members := nodes[0].srv.Cluster().Members()
	ownerAddr := cluster.Owner(members, cluster.RouteKey("variant", dg))
	var owner, other *clusterTestNode
	for _, n := range nodes {
		if n.addr == ownerAddr {
			owner = n
		} else if other == nil {
			other = n
		}
	}
	if owner == nil || other == nil {
		t.Fatal("could not split fleet into owner and non-owner")
	}

	// In-flight: stream from a non-owner and kill the owner a few
	// frames in. The non-owner filled its artifacts at session start,
	// so delivery must finish bit-identical.
	var once sync.Once
	inflight := playDigests(t, other.addr, 0.10, func(i int) {
		if i == 3 {
			once.Do(owner.kill)
		}
	})
	assertSameDigests(t, refLow, inflight, "in-flight session over owner death")
	if fills := fillCount(other); fills < 1 {
		t.Fatalf("non-owner made %d peer fills before the kill; the in-flight check proved nothing", fills)
	}

	// New session at a quality the fleet has not computed: the owner is
	// dead, so the peer fetch fails, the breaker opens, and this node
	// computes locally — the client still sees exact bytes.
	fresh := playDigests(t, other.addr, 0.20, nil)
	assertSameDigests(t, refHigh, fresh, "post-death fallback session")
	if fb := routeCount(other, "fallback_compute"); fb < 1 {
		t.Errorf("fallback_compute route count %d, want >= 1 after owner death", fb)
	}

	// Restart the owner on the same address with the same store: it
	// must come back warm and serve its shard from disk — zero
	// annotation pipeline runs on the restarted node.
	var peers []string
	for _, n := range nodes {
		if n != owner {
			peers = append(peers, n.addr)
		}
	}
	restarted := bootClusterServer(t, owner.addr, peers, owner.dir)
	again := playDigests(t, restarted.addr, 0.10, nil)
	assertSameDigests(t, refLow, again, "restarted owner session")
	if got := spanCount(restarted.reg, "annotate.build_track"); got != 0 {
		t.Errorf("restarted owner ran the annotation pipeline %d times, want 0 (store-warm rejoin)", got)
	}

	// The survivors' probers must notice the owner is back: routing for
	// its shard returns to it once the breaker closes.
	deadline := time.Now().Add(3 * time.Second)
	for {
		addr, self := other.srv.Cluster().Owner("variant", dg)
		if addr == owner.addr && !self {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never routed back to the restarted owner (stuck at %s)", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
