package stream

import (
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/display"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/obs"
)

// frameDigest hashes a decoded frame's pixels (the bit-identity check
// across faulty and fault-free runs).
func frameDigest(f *frame.Frame) uint64 {
	h := fnv.New64a()
	var b [3]byte
	for _, p := range f.Pix {
		b[0], b[1], b[2] = p.R, p.G, p.B
		h.Write(b[:])
	}
	return h.Sum64()
}

// playRecorded plays the clip recording per-frame digests and backlight
// levels.
func playRecorded(t *testing.T, client *Client, addr string) (*PlayResult, []uint64, []int) {
	t.Helper()
	var digests []uint64
	var levels []int
	client.OnFrame = func(i int, f *frame.Frame, backlight int) {
		if i == 0 {
			// A v1 replay restarts delivery from frame zero; a v2 resume
			// never does.
			digests, levels = digests[:0], levels[:0]
		}
		if i != len(digests) {
			t.Errorf("OnFrame index %d, want %d (duplicate or skipped emit)", i, len(digests))
		}
		digests = append(digests, frameDigest(f))
		levels = append(levels, backlight)
	}
	res, err := client.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	return res, digests, levels
}

// TestChaosResumeBitIdentical is the end-to-end resilience check: a
// seeded fault schedule (latency, bandwidth throttle, short writes, two
// mid-stream resets) must not change what the user sees. The client
// reconnects with backoff, resumes mid-clip via the v2 start_frame
// extension, and the decoded frame sequence and backlight schedule come
// out bit-identical to a fault-free run.
func TestChaosResumeBitIdentical(t *testing.T) {
	_, addr := startServer(t)

	// Fault-free reference run (also measures the stream size, which
	// calibrates the reset schedule below).
	clean, wantDigests, wantLevels := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr)
	if clean.Frames != 20 || clean.Retries != 0 || clean.Resumes != 0 {
		t.Fatalf("clean run: %d frames, %d retries, %d resumes", clean.Frames, clean.Retries, clean.Resumes)
	}

	// Faulty run: connection 0 is reset after ~2/3 of the stream,
	// connection 1 after another ~1/3, connection 2 runs clean. Both
	// resets land mid-stream, so the client must resume twice.
	b := int64(clean.BytesStream)
	inj := faults.NewInjector(faults.Config{
		Seed:         7,
		Latency:      200 * time.Microsecond,
		BandwidthBPS: 512 << 10,
		ShortWrites:  true,
		ResetAfter:   []int64{b * 2 / 3, b / 3},
	})
	reg := obs.NewRegistry()
	client := &Client{
		Device: display.IPAQ5555(),
		Obs:    reg,
		Dial:   inj.Dialer(nil),
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond},
	}
	res, gotDigests, gotLevels := playRecorded(t, client, addr)

	if res.Frames != clean.Frames {
		t.Fatalf("faulty run delivered %d frames, want %d", res.Frames, clean.Frames)
	}
	if res.Retries != 2 {
		t.Errorf("retries = %d, want 2 (one per injected reset)", res.Retries)
	}
	if res.Resumes != 2 {
		t.Errorf("resumes = %d, want 2", res.Resumes)
	}
	if res.ProtocolVersion != 3 {
		t.Errorf("protocol version = %d, want 3", res.ProtocolVersion)
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] {
			t.Fatalf("frame %d decoded differently under faults", i)
		}
		if gotLevels[i] != wantLevels[i] {
			t.Fatalf("frame %d backlight %d under faults, want %d", i, gotLevels[i], wantLevels[i])
		}
	}
	if res.AvgLevel != clean.AvgLevel || res.Switches != clean.Switches {
		t.Errorf("accounting diverged: avg %v/%v switches %d/%d",
			res.AvgLevel, clean.AvgLevel, res.Switches, clean.Switches)
	}
	if n := reg.Counter("stream_client_retries_total", "").Value(); n == 0 {
		t.Error("stream_client_retries_total = 0, want nonzero")
	}
	if n := reg.Counter("stream_client_resumes_total", "").Value(); n == 0 {
		t.Error("stream_client_resumes_total = 0, want nonzero")
	}
}

// TestChaosResumeDisabledStillCompletes pins the v1 degraded path: with
// resume off, every reset replays the clip from frame zero, and the
// output must still be identical.
func TestChaosResumeDisabledStillCompletes(t *testing.T) {
	_, addr := startServer(t)
	clean, wantDigests, _ := playRecorded(t, &Client{Device: display.IPAQ5555()}, addr)

	inj := faults.NewInjector(faults.Config{
		Seed:       11,
		ResetAfter: []int64{int64(clean.BytesStream) / 2},
	})
	client := &Client{
		Device:        display.IPAQ5555(),
		DisableResume: true,
		Dial:          inj.Dialer(nil),
		Retry:         RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond},
	}
	res, gotDigests, _ := playRecorded(t, client, addr)
	if res.ProtocolVersion != 1 {
		t.Errorf("protocol version = %d, want 1", res.ProtocolVersion)
	}
	if res.Resumes != 0 {
		t.Errorf("resumes = %d, want 0 with resume disabled", res.Resumes)
	}
	if res.Retries == 0 {
		t.Error("retries = 0, want at least one after the injected reset")
	}
	if len(gotDigests) != len(wantDigests) {
		t.Fatalf("got %d frames, want %d", len(gotDigests), len(wantDigests))
	}
	for i := range wantDigests {
		if gotDigests[i] != wantDigests[i] {
			t.Fatalf("frame %d decoded differently after v1 replay", i)
		}
	}
}

// TestChaosServerSideFaults exercises the -faults flag's code path: the
// server's own listener is wrapped, so every session rides a degraded
// link (latency, throttle, fragmented writes). A default client must
// still complete.
func TestChaosServerSideFaults(t *testing.T) {
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	ln := newLocalListener(t)
	s.Serve(faults.WrapListener(ln, faults.Config{
		Seed:         3,
		Latency:      200 * time.Microsecond,
		BandwidthBPS: 512 << 10,
		ShortWrites:  true,
	}))
	t.Cleanup(s.Close)

	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(ln.Addr().String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d, want 0 (no resets scheduled)", res.Retries)
	}
}

// TestChaosCorruptionDoesNotPanic feeds the client a server whose writes
// randomly flip bits. The session may fail (corruption is allowed to
// exhaust the retry budget) but must never panic, and a success must
// deliver the full clip.
func TestChaosCorruptionDoesNotPanic(t *testing.T) {
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	ln := newLocalListener(t)
	s.Serve(faults.WrapListener(ln, faults.Config{Seed: 5, CorruptRate: 0.05}))
	t.Cleanup(s.Close)

	client := &Client{
		Device: display.IPAQ5555(),
		Retry:  RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond},
	}
	res, err := client.Play(ln.Addr().String(), "night", 0.10)
	if err == nil && res.Frames != 20 {
		t.Errorf("corrupted session reported success with %d frames", res.Frames)
	}
}
