// Package stream implements the paper's system model (Figure 1): a media
// server storing annotated clips, an optional proxy node that can annotate
// and compensate a stream on the fly, and low-power mobile clients. The
// entities speak a small TCP protocol with an initial negotiation phase in
// which the client names the clip, the quality level it accepts, and its
// device ("client characteristics are sent during the initial negotiation
// phase", §4.3); the server answers with an annotated container stream
// whose frames are already compensated, so the client's only extra runtime
// work is the periodic backlight adjustment.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Mode selects what the server sends.
type Mode uint8

const (
	// ModeAnnotated requests an annotated, compensated stream (what
	// clients use).
	ModeAnnotated Mode = iota
	// ModeRaw requests the stored stream untouched (what a proxy asks an
	// upstream server for, so it can do the processing itself).
	ModeRaw
)

// Request is the negotiation message a client opens a session with.
type Request struct {
	Clip string
	// Quality is the clipping budget the user accepts (0..1).
	Quality float64
	// Device is the client's device name; the server uses it to log and
	// could use it to resolve device-specific backlight levels.
	Device string
	Mode   Mode
}

var reqMagic = [4]byte{'R', 'Q', 'S', '1'}
var errMagic = [4]byte{'E', 'R', 'R', '1'}

// ErrProtocol reports malformed protocol traffic.
var ErrProtocol = errors.New("stream: protocol error")

// WriteRequest serialises the negotiation request.
func WriteRequest(w io.Writer, r Request) error {
	if len(r.Clip) > 255 || len(r.Device) > 255 {
		return fmt.Errorf("%w: name too long", ErrProtocol)
	}
	if r.Quality < 0 || r.Quality > 1 {
		return fmt.Errorf("%w: quality %v outside [0,1]", ErrProtocol, r.Quality)
	}
	buf := append([]byte{}, reqMagic[:]...)
	buf = append(buf, uint8(r.Quality*255+0.5), uint8(r.Mode), uint8(len(r.Clip)))
	buf = append(buf, r.Clip...)
	buf = append(buf, uint8(len(r.Device)))
	buf = append(buf, r.Device...)
	_, err := w.Write(buf)
	return err
}

// ReadRequest parses a negotiation request.
func ReadRequest(r io.Reader) (Request, error) {
	var head [7]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Request{}, fmt.Errorf("%w: short request: %v", ErrProtocol, err)
	}
	if [4]byte(head[:4]) != reqMagic {
		return Request{}, fmt.Errorf("%w: bad request magic", ErrProtocol)
	}
	req := Request{
		Quality: float64(head[4]) / 255,
		Mode:    Mode(head[5]),
	}
	if req.Mode != ModeAnnotated && req.Mode != ModeRaw {
		return Request{}, fmt.Errorf("%w: unknown mode %d", ErrProtocol, head[5])
	}
	clip := make([]byte, head[6])
	if _, err := io.ReadFull(r, clip); err != nil {
		return Request{}, fmt.Errorf("%w: short clip name: %v", ErrProtocol, err)
	}
	req.Clip = string(clip)
	var dl [1]byte
	if _, err := io.ReadFull(r, dl[:]); err != nil {
		return Request{}, fmt.Errorf("%w: short device length: %v", ErrProtocol, err)
	}
	dev := make([]byte, dl[0])
	if _, err := io.ReadFull(r, dev); err != nil {
		return Request{}, fmt.Errorf("%w: short device name: %v", ErrProtocol, err)
	}
	req.Device = string(dev)
	return req, nil
}

// WriteError sends an error response in place of a stream.
func WriteError(w io.Writer, msg string) error {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	buf := append([]byte{}, errMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// ReadResponseMagic reads the 4-byte response discriminator. If it is an
// error response, the error message is read and returned as err with
// isErr true; otherwise the caller should continue parsing a container
// stream whose magic has already been consumed (use the returned bytes).
func ReadResponseMagic(r io.Reader) (magic [4]byte, remoteErr error, err error) {
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return magic, nil, fmt.Errorf("%w: short response: %v", ErrProtocol, err)
	}
	if magic == errMagic {
		var n [2]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return magic, nil, fmt.Errorf("%w: short error length: %v", ErrProtocol, err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(n[:]))
		if _, err := io.ReadFull(r, msg); err != nil {
			return magic, nil, fmt.Errorf("%w: short error message: %v", ErrProtocol, err)
		}
		return magic, fmt.Errorf("stream: server error: %s", msg), nil
	}
	return magic, nil, nil
}
