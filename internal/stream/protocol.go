// Package stream implements the paper's system model (Figure 1): a media
// server storing annotated clips, an optional proxy node that can annotate
// and compensate a stream on the fly, and low-power mobile clients. The
// entities speak a small TCP protocol with an initial negotiation phase in
// which the client names the clip, the quality level it accepts, and its
// device ("client characteristics are sent during the initial negotiation
// phase", §4.3); the server answers with an annotated container stream
// whose frames are already compensated, so the client's only extra runtime
// work is the periodic backlight adjustment.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/obs"
)

// Mode selects what the server sends.
type Mode uint8

const (
	// ModeAnnotated requests an annotated, compensated stream (what
	// clients use).
	ModeAnnotated Mode = iota
	// ModeRaw requests the stored stream untouched (what a proxy asks an
	// upstream server for, so it can do the processing itself).
	ModeRaw
)

// Request is the negotiation message a client opens a session with.
type Request struct {
	Clip string
	// Quality is the clipping budget the user accepts (0..1).
	Quality float64
	// Device is the client's device name; the server uses it to log and
	// could use it to resolve device-specific backlight levels.
	Device string
	Mode   Mode
	// Version is the protocol version the request was framed with.
	// Version 2 adds StartFrame for session resume; version 3 adds a
	// flags byte carrying an optional distributed-trace context; version
	// 4 adds the adaptive flag negotiating mid-stream quality switches.
	// WriteRequest emits the older framings when Version is lower, so
	// newer clients can fall back stepwise against old servers.
	Version int
	// StartFrame asks the server to start the stream at this frame
	// index instead of 0 (session resume, v2 only). The server rounds
	// down to the nearest I-frame and reports the actual start via the
	// container's resume-offset side channel.
	StartFrame uint32
	// Trace is the caller's span context (v3 only; zero when absent).
	// A server or proxy receiving a valid Trace parents its session
	// span under it, so one request yields one tree across tiers.
	Trace obs.SpanContext
	// Adaptive asks for an adaptive session (v4 only): the client may
	// send quality-switch messages mid-stream and the server answers
	// with in-band control markers before each rung change. Quality then
	// names the starting rung, which is also the best the session will
	// ever be served.
	Adaptive bool
}

var reqMagic = [4]byte{'R', 'Q', 'S', '1'}
var reqMagicV2 = [4]byte{'R', 'Q', 'S', '2'}
var reqMagicV3 = [4]byte{'R', 'Q', 'S', '3'}
var reqMagicV4 = [4]byte{'R', 'Q', 'S', '4'}
var errMagic = [4]byte{'E', 'R', 'R', '1'}

// v3+ request flag bits.
const (
	reqFlagTrace    = 1 << 0 // a 25-byte trace context follows
	reqFlagAdaptive = 1 << 1 // v4: session negotiates mid-stream quality switches
)

// traceFlagSampled is the sampled bit inside the trace context's own
// flags byte (mirrors W3C traceparent).
const traceFlagSampled = 1 << 0

// ErrProtocol reports malformed protocol traffic.
var ErrProtocol = errors.New("stream: protocol error")

// Typed session-failure sentinels. The client's retry loop keys off
// these: truncation and over-capacity are retryable, a bad magic is not.
var (
	// ErrTruncatedStream reports a stream that ended before the
	// header's frame count was delivered (short read, reset, or
	// mid-frame EOF) — distinct from a clean EOF at stream end.
	ErrTruncatedStream = errors.New("stream: truncated stream")
	// ErrBadMagic reports a response that is neither an error frame nor
	// a container stream — the peer is not speaking this protocol.
	ErrBadMagic = errors.New("stream: bad response magic")
	// ErrOverCapacity reports the server's clean admission-control
	// refusal; clients back off and retry.
	ErrOverCapacity = errors.New("stream: server over capacity")
)

// overCapacityMsg is the wire form of an admission-control refusal.
// ReadResponseMagic maps it back to ErrOverCapacity.
const overCapacityMsg = "over capacity"

// WriteRequest serialises the negotiation request, framing it as v2
// (with the resume start frame) when r.Version >= 2 and as the original
// v1 message otherwise.
func WriteRequest(w io.Writer, r Request) error {
	if len(r.Clip) > 255 || len(r.Device) > 255 {
		return fmt.Errorf("%w: name too long", ErrProtocol)
	}
	if r.Quality < 0 || r.Quality > 1 {
		return fmt.Errorf("%w: quality %v outside [0,1]", ErrProtocol, r.Quality)
	}
	magic := reqMagic
	switch {
	case r.Version >= 4:
		magic = reqMagicV4
	case r.Version >= 3:
		magic = reqMagicV3
	case r.Version >= 2:
		magic = reqMagicV2
	default:
		if r.StartFrame != 0 {
			return fmt.Errorf("%w: start frame requires protocol v2", ErrProtocol)
		}
	}
	if r.Adaptive && r.Version < 4 {
		return fmt.Errorf("%w: adaptive session requires protocol v4", ErrProtocol)
	}
	buf := append([]byte{}, magic[:]...)
	buf = append(buf, uint8(r.Quality*255+0.5), uint8(r.Mode), uint8(len(r.Clip)))
	buf = append(buf, r.Clip...)
	buf = append(buf, uint8(len(r.Device)))
	buf = append(buf, r.Device...)
	if r.Version >= 2 {
		buf = binary.BigEndian.AppendUint32(buf, r.StartFrame)
	}
	if r.Version >= 3 {
		var flags uint8
		if r.Trace.Valid() {
			flags |= reqFlagTrace
		}
		if r.Adaptive && r.Version >= 4 {
			flags |= reqFlagAdaptive
		}
		buf = append(buf, flags)
		if r.Trace.Valid() {
			buf = append(buf, r.Trace.Trace[:]...)
			buf = append(buf, r.Trace.Span[:]...)
			var tf uint8
			if r.Trace.Sampled {
				tf |= traceFlagSampled
			}
			buf = append(buf, tf)
		}
	}
	_, err := w.Write(buf)
	return err
}

// ReadRequest parses a negotiation request, accepting both the v1 and
// the v2 (resume-capable) framing.
func ReadRequest(r io.Reader) (Request, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Request{}, fmt.Errorf("%w: short request: %v", ErrProtocol, err)
	}
	return readRequestBody(magic, r)
}

// readRequestBody parses a negotiation request whose 4-byte magic has
// already been consumed. The serving nodes read the magic themselves so
// one listener can dispatch client sessions and cluster peer fetches by
// discriminator.
func readRequestBody(magic [4]byte, r io.Reader) (Request, error) {
	var head [3]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Request{}, fmt.Errorf("%w: short request: %v", ErrProtocol, err)
	}
	version := 0
	switch magic {
	case reqMagic:
		version = 1
	case reqMagicV2:
		version = 2
	case reqMagicV3:
		version = 3
	case reqMagicV4:
		version = 4
	default:
		return Request{}, fmt.Errorf("%w: bad request magic", ErrProtocol)
	}
	req := Request{
		Quality: float64(head[0]) / 255,
		Mode:    Mode(head[1]),
		Version: version,
	}
	if req.Mode != ModeAnnotated && req.Mode != ModeRaw {
		return Request{}, fmt.Errorf("%w: unknown mode %d", ErrProtocol, head[1])
	}
	clip := make([]byte, head[2])
	if _, err := io.ReadFull(r, clip); err != nil {
		return Request{}, fmt.Errorf("%w: short clip name: %v", ErrProtocol, err)
	}
	req.Clip = string(clip)
	var dl [1]byte
	if _, err := io.ReadFull(r, dl[:]); err != nil {
		return Request{}, fmt.Errorf("%w: short device length: %v", ErrProtocol, err)
	}
	dev := make([]byte, dl[0])
	if _, err := io.ReadFull(r, dev); err != nil {
		return Request{}, fmt.Errorf("%w: short device name: %v", ErrProtocol, err)
	}
	req.Device = string(dev)
	if version >= 2 {
		var sf [4]byte
		if _, err := io.ReadFull(r, sf[:]); err != nil {
			return Request{}, fmt.Errorf("%w: short start frame: %v", ErrProtocol, err)
		}
		req.StartFrame = binary.BigEndian.Uint32(sf[:])
	}
	if version >= 3 {
		var fl [1]byte
		if _, err := io.ReadFull(r, fl[:]); err != nil {
			return Request{}, fmt.Errorf("%w: short flags: %v", ErrProtocol, err)
		}
		req.Adaptive = version >= 4 && fl[0]&reqFlagAdaptive != 0
		if fl[0]&reqFlagTrace != 0 {
			var tc [25]byte
			if _, err := io.ReadFull(r, tc[:]); err != nil {
				return Request{}, fmt.Errorf("%w: short trace context: %v", ErrProtocol, err)
			}
			req.Trace.Trace = obs.TraceID(tc[:16])
			req.Trace.Span = obs.SpanID(tc[16:24])
			req.Trace.Sampled = tc[24]&traceFlagSampled != 0
			if !req.Trace.Valid() {
				// A present-but-zero context is silently dropped rather
				// than parenting spans under a bogus identity.
				req.Trace = obs.SpanContext{}
			}
		}
	}
	return req, nil
}

// WriteError sends an error response in place of a stream.
func WriteError(w io.Writer, msg string) error {
	if len(msg) > 0xFFFF {
		msg = msg[:0xFFFF]
	}
	buf := append([]byte{}, errMagic[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	_, err := w.Write(buf)
	return err
}

// WriteOverCapacity sends the admission-control refusal clients map to
// ErrOverCapacity.
func WriteOverCapacity(w io.Writer) error { return WriteError(w, overCapacityMsg) }

// ReadResponseMagic reads the 4-byte response discriminator. If it is an
// error response, the error message is read and returned as remoteErr
// (wrapping ErrOverCapacity for admission refusals); if it is neither an
// error frame nor a container stream the call fails with ErrBadMagic.
// Otherwise the caller should continue parsing a container stream whose
// magic has already been consumed (use the returned bytes).
func ReadResponseMagic(r io.Reader) (magic [4]byte, remoteErr error, err error) {
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return magic, nil, fmt.Errorf("%w: short response: %v", ErrProtocol, err)
	}
	if magic == errMagic {
		var n [2]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return magic, nil, fmt.Errorf("%w: short error length: %v", ErrProtocol, err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(n[:]))
		if _, err := io.ReadFull(r, msg); err != nil {
			return magic, nil, fmt.Errorf("%w: short error message: %v", ErrProtocol, err)
		}
		if string(msg) == overCapacityMsg {
			return magic, fmt.Errorf("stream: server error: %s: %w", msg, ErrOverCapacity), nil
		}
		return magic, fmt.Errorf("stream: server error: %s", msg), nil
	}
	if magic != container.Magic {
		return magic, nil, fmt.Errorf("%w: got %q", ErrBadMagic, magic[:])
	}
	return magic, nil, nil
}

// qswMagic frames the client→server mid-stream quality-switch message
// of an adaptive (v4) session: 4 magic bytes plus the requested rung.
var qswMagic = [4]byte{'Q', 'S', 'W', '1'}

// WriteQualitySwitch sends a mid-stream rung request on an adaptive
// session's client→server half.
func WriteQualitySwitch(w io.Writer, rung int) error {
	if rung < 0 || rung > 0xFF {
		return fmt.Errorf("%w: rung %d outside ladder", ErrProtocol, rung)
	}
	buf := append([]byte{}, qswMagic[:]...)
	buf = append(buf, uint8(rung))
	_, err := w.Write(buf)
	return err
}

// ReadQualitySwitch parses one quality-switch message. io.EOF is
// returned cleanly when the peer half-closes without another message.
func ReadQualitySwitch(r io.Reader) (rung int, err error) {
	var buf [5]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.EOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("%w: short quality switch: %v", ErrProtocol, err)
	}
	if [4]byte(buf[:4]) != qswMagic {
		return 0, fmt.Errorf("%w: bad quality-switch magic %q", ErrProtocol, buf[:4])
	}
	return int(buf[4]), nil
}

// ctlQualitySwitch is the control-packet kind (carried in the QScale
// byte of a ControlFrameType packet) marking a mid-stream rung change.
// Its one-byte payload is the rung subsequent frames are encoded at.
const ctlQualitySwitch = 1

// qualitySwitchMarker builds the in-band control packet the server
// writes immediately before the first frame of a new rung.
func qualitySwitchMarker(rung int) *codec.EncodedFrame {
	return &codec.EncodedFrame{
		Type:   codec.FrameType(container.ControlFrameType),
		QScale: ctlQualitySwitch,
		Data:   []byte{uint8(rung)},
	}
}

// parseControlFrame recognises in-band control packets in an adaptive
// stream. It returns (rung, true) for a quality-switch marker; other
// control kinds are ignored by returning (-1, true) so old clients of
// future servers skip what they do not understand.
func parseControlFrame(ef *codec.EncodedFrame) (rung int, isControl bool) {
	if uint8(ef.Type) != container.ControlFrameType {
		return 0, false
	}
	if ef.QScale == ctlQualitySwitch && len(ef.Data) == 1 {
		return int(ef.Data[0]), true
	}
	return -1, true
}
