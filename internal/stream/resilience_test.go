package stream

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/video"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

// fakeServer accepts connections and hands each one to serve after the
// request has been read.
func fakeServer(t *testing.T, serve func(conn net.Conn, req Request)) string {
	t.Helper()
	ln := newLocalListener(t)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				req, err := ReadRequest(conn)
				if err != nil {
					WriteError(conn, "bad request")
					return
				}
				serve(conn, req)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestSentinelOverCapacity(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteOverCapacity(&buf); err != nil {
		t.Fatal(err)
	}
	_, remoteErr, err := ReadResponseMagic(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(remoteErr, ErrOverCapacity) {
		t.Errorf("remoteErr = %v, want ErrOverCapacity", remoteErr)
	}
	if !retryable(remoteErr) {
		t.Error("over-capacity refusal must be retryable")
	}
}

func TestSentinelBadMagic(t *testing.T) {
	_, _, err := ReadResponseMagic(bytes.NewReader([]byte("JUNKJUNK")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if retryable(err) {
		t.Error("a peer speaking another protocol is not worth a retry")
	}
}

func TestSentinelTruncated(t *testing.T) {
	err := classifyStreamErr(io.ErrUnexpectedEOF)
	if !errors.Is(err, ErrTruncatedStream) {
		t.Errorf("classify(ErrUnexpectedEOF) = %v, want ErrTruncatedStream", err)
	}
	if !retryable(err) {
		t.Error("truncation must be retryable")
	}
	if retryable(errors.New("stream: server error: unknown clip")) {
		t.Error("a definitive server error must not be retryable")
	}
}

// TestClientTruncatedStream pins end-to-end truncation detection: a
// server that promises FrameCount frames but closes early must produce
// ErrTruncatedStream, not a silent short clip.
func TestClientTruncatedStream(t *testing.T) {
	src := testCatalog()["night"]
	w, h := src.Size()
	enc, err := codec.NewEncoder(w, h, src.FPS(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw, err := container.NewWriter(&buf, container.Header{
		W: w, H: h, FPS: src.FPS(), FrameCount: src.TotalFrames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Promise the full clip, deliver half.
	for i := 0; i < src.TotalFrames()/2; i++ {
		ef, err := enc.Encode(src.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	addr := fakeServer(t, func(conn net.Conn, req Request) {
		conn.Write(buf.Bytes())
	})
	client := &Client{
		Device: display.IPAQ5555(),
		Retry:  RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}
	_, err = client.Play(addr, "night", 0.10)
	if !errors.Is(err, ErrTruncatedStream) {
		t.Errorf("err = %v, want ErrTruncatedStream", err)
	}
}

// TestClientDegradesOnCorruptAnnotations: a stream whose luminance chunk
// is garbage must still play — at full backlight, with the damage
// reported in Degraded — rather than fail.
func TestClientDegradesOnCorruptAnnotations(t *testing.T) {
	src := testCatalog()["night"]
	w, h := src.Size()
	enc, err := codec.NewEncoder(w, h, src.FPS(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw, err := container.NewWriter(&buf, container.Header{
		W: w, H: h, FPS: src.FPS(), FrameCount: src.TotalFrames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.TotalFrames(); i++ {
		ef, err := enc.Encode(src.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := cw.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	// Splice a corrupt ChunkLuminance into the header: the fixed header
	// is 14 bytes (magic, dims, fps, frame count) ending in the chunk
	// count, which goes from 0 to 1.
	raw := buf.Bytes()
	stream := append([]byte{}, raw[:13]...)
	stream = append(stream, 1)                                                   // one side-channel chunk
	stream = append(stream, container.ChunkLuminance, 0, 0, 0, 3, 255, 255, 255) // undecodable payload
	stream = append(stream, raw[14:]...)

	addr := fakeServer(t, func(conn net.Conn, req Request) {
		conn.Write(stream)
	})
	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(addr, "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != src.TotalFrames() {
		t.Errorf("frames = %d, want %d", res.Frames, src.TotalFrames())
	}
	if res.Annotated {
		t.Error("session reported annotations despite a corrupt track")
	}
	if len(res.Degraded) == 0 || res.Degraded[0] != "annotations" {
		t.Errorf("Degraded = %v, want [annotations ...]", res.Degraded)
	}
	if res.AvgLevel != display.MaxLevel {
		t.Errorf("avg backlight = %v, want full (%d) in passthrough", res.AvgLevel, display.MaxLevel)
	}
}

// TestClientDowngradesToV1 runs the version negotiation against an "old"
// server: a shim that rejects the v2 and v3 magics with "bad request"
// and forwards v1 traffic to a real server. The stepwise downgrade
// (3 → 2 → 1) must be invisible (no retry budget spent) and the session
// must complete as v1.
func TestClientDowngradesToV1(t *testing.T) {
	_, upstream := startServer(t)
	ln := newLocalListener(t)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var magic [4]byte
				if _, err := io.ReadFull(conn, magic[:]); err != nil {
					return
				}
				if magic == reqMagicV2 || magic == reqMagicV3 {
					// What a pre-v2 server does with framing it cannot
					// parse.
					WriteError(conn, "bad request")
					return
				}
				up, err := net.Dial("tcp", upstream)
				if err != nil {
					return
				}
				defer up.Close()
				up.Write(magic[:])
				go io.Copy(up, conn)
				io.Copy(conn, up)
			}(conn)
		}
	}()

	client := &Client{Device: display.IPAQ5555()}
	res, err := client.Play(ln.Addr().String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolVersion != 1 {
		t.Errorf("protocol version = %d, want 1 after downgrade", res.ProtocolVersion)
	}
	if res.Retries != 0 {
		t.Errorf("retries = %d; the downgrade must not consume retry budget", res.Retries)
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
}

// TestServerOverCapacityRefusalAndRetry: with a one-session cap, no
// admission queue, and a connection squatting on the slot, a resilient
// client gets clean shed responses, backs off, and succeeds once the
// slot frees up.
func TestServerOverCapacityRefusalAndRetry(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(testCatalog())
	s.SetLogf(quiet)
	s.SetObserver(reg)
	s.SetMaxSessions(1)
	s.SetAdmissionQueue(0, 0) // hard refusal: shed immediately when full
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Squat on the only slot: connect and say nothing (the handshake
	// timeout is 10s, far beyond this test).
	squatter, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer squatter.Close()
	active := reg.Gauge("stream_active_conns", "", obs.L("role", "server"))
	for i := 0; active.Value() < 1; i++ {
		if i > 1000 {
			t.Fatal("squatter session never registered")
		}
		time.Sleep(time.Millisecond)
	}

	go func() {
		time.Sleep(100 * time.Millisecond)
		squatter.Close() // free the slot mid-retry
	}()
	client := &Client{
		Device: display.IPAQ5555(),
		Retry:  RetryPolicy{MaxAttempts: 10, BaseDelay: 25 * time.Millisecond, Jitter: 0},
	}
	res, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Error("retries = 0, want at least one over-capacity refusal first")
	}
	if res.Frames != 20 {
		t.Errorf("frames = %d, want 20", res.Frames)
	}
	shed := reg.Counter("stream_sessions_shed_total", "", obs.L("role", "server"))
	if shed.Value() == 0 {
		t.Error("stream_sessions_shed_total = 0, want nonzero")
	}
}

// TestProxyServesStaleWhenUpstreamDies: after one good fetch the proxy
// must keep serving the clip from its cache when the upstream goes away.
func TestProxyServesStaleWhenUpstreamDies(t *testing.T) {
	upstreamSrv := NewServer(testCatalog())
	upstreamSrv.SetLogf(quiet)
	upstreamAddr, err := upstreamSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	p := NewProxy(upstreamAddr.String())
	p.SetLogf(quiet)
	p.SetObserver(reg)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond})
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	client := &Client{Device: display.IPAQ5555()}
	warm, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}

	upstreamSrv.Close() // upstream gone; only the cache remains

	stale, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatalf("stale serve failed: %v", err)
	}
	if stale.Frames != warm.Frames {
		t.Errorf("stale serve delivered %d frames, want %d", stale.Frames, warm.Frames)
	}
	staleServes := reg.Counter("proxy_stale_serves_total", "", obs.L("role", "proxy"))
	if staleServes.Value() == 0 {
		t.Error("proxy_stale_serves_total = 0, want nonzero")
	}
	retries := reg.Counter("proxy_upstream_retries_total", "", obs.L("role", "proxy"))
	if retries.Value() == 0 {
		t.Error("proxy_upstream_retries_total = 0, want nonzero")
	}

	// A clip that was never cached still fails cleanly.
	if _, err := client.Play(addr.String(), "uncached", 0.10); err == nil {
		t.Error("uncached clip served with the upstream down")
	}
}

// trackedConn counts Close exactly once per connection (the leak audit).
type trackedConn struct {
	net.Conn
	once   sync.Once
	closed *atomic.Int64
}

func (c *trackedConn) Close() error {
	c.once.Do(func() { c.closed.Add(1) })
	return c.Conn.Close()
}

// TestProxyClosesUpstreamConnections is the regression test for the
// fetchRaw connection leak: every upstream connection the proxy opens
// must be closed, on success and on every error path.
func TestProxyClosesUpstreamConnections(t *testing.T) {
	_, upstream := startServer(t)
	p := NewProxy(upstream)
	p.SetLogf(quiet)
	p.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	var dialed, closed atomic.Int64
	p.SetDial(func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		dialed.Add(1)
		return &trackedConn{Conn: conn, closed: &closed}, nil
	})
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := &Client{Device: display.IPAQ5555()}
	// Success path.
	if _, err := client.Play(addr.String(), "night", 0.10); err != nil {
		t.Fatal(err)
	}
	// Upstream-error path (unknown clip: upstream answers with an error
	// frame instead of a stream).
	if _, err := client.Play(addr.String(), "no-such-clip", 0.10); err == nil {
		t.Error("unknown clip succeeded through proxy")
	}
	p.Close()
	if d, c := dialed.Load(), closed.Load(); d == 0 || d != c {
		t.Errorf("upstream connections: %d dialed, %d closed (leak)", d, c)
	}
}

// TestProxyResumesClients: the resume extension must work through the
// proxy path too, since its streams are re-encoded deterministically.
func TestProxyResumesClients(t *testing.T) {
	_, upstream := startServer(t)
	p := NewProxy(upstream)
	p.SetLogf(quiet)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	client := &Client{Device: display.IPAQ5555()}
	clean, err := client.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}

	inj := faults.NewInjector(faults.Config{
		Seed:       1,
		ResetAfter: []int64{int64(clean.BytesStream) * 2 / 3},
	})
	faulty := &Client{
		Device: display.IPAQ5555(),
		Dial:   inj.Dialer(nil),
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond},
	}
	res, err := faulty.Play(addr.String(), "night", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != clean.Frames {
		t.Errorf("frames = %d, want %d", res.Frames, clean.Frames)
	}
	if res.Resumes == 0 {
		t.Error("resumes = 0, want a mid-clip resume through the proxy")
	}
}

// TestClientPlayContextCancel: cancelling the context must abort the
// session promptly, including during backoff waits.
func TestClientPlayContextCancel(t *testing.T) {
	// A server that accepts and stalls forever.
	addr := fakeServer(t, func(conn net.Conn, req Request) {
		time.Sleep(time.Hour)
	})
	client := &Client{
		Device:      display.IPAQ5555(),
		ReadTimeout: time.Hour,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := client.PlayContext(ctx, addr, "night", 0.10)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled session reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled session did not return")
	}
}

// TestUncachedVideoLibraryClip guards the test catalog assumption the
// chaos tests calibrate against: the clip is deterministic, so two
// library builds are identical.
func TestUncachedVideoLibraryClip(t *testing.T) {
	a := core.ClipSource{Clip: video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 4, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
	})}
	b := core.ClipSource{Clip: video.MustNew("night", 32, 24, 8, 31, []video.SceneSpec{
		{Frames: 4, BaseLuma: 0.15, LumaSpread: 0.1, MaxLuma: 0.75, HighlightFrac: 0.01},
	})}
	for i := 0; i < a.TotalFrames(); i++ {
		if !a.Frame(i).Equal(b.Frame(i)) {
			t.Fatalf("clip generation is not deterministic at frame %d", i)
		}
	}
}
