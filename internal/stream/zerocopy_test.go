package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/annotation"
	"repro/internal/codec"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/obs"
)

// The zero-copy serving path (variant wire form + sendWire) must be
// byte-for-byte indistinguishable from the writer it replaced: header
// via container.NewWriter, then one Writer.WriteFrame per packet. The
// tests here pin that equivalence for every serving shape — fixed
// quality, resume, device levels, adaptive markers, raw mode, store
// round trips and file-backed (sendfile) serving — and gate the alloc
// and caching properties the fast path exists for.

// buildServingFixture computes the track and one prepared variant of
// the test clip, exactly as a server session would.
func buildServingFixture(t testing.TB) (core.Source, *annotation.Track, *variant, EncodeConfig, int) {
	t.Helper()
	cat := testCatalog()
	src := cat["night"]
	s := NewServer(cat)
	s.SetLogf(quiet)
	track, err := s.track(context.Background(), "night", src)
	if err != nil {
		t.Fatal(err)
	}
	qi := track.QualityIndex(0.10)
	cfg := s.enc.withDefaults(src.FPS())
	v, err := prepareVariant(context.Background(), src, track, qi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src, track, v, cfg, qi
}

// referenceContainerBytes assembles a stream exactly as the
// pre-zero-copy writer did: header, then one WriteFrame per packet.
func referenceContainerBytes(t *testing.T, hdr container.Header, packets []*codec.EncodedFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := container.NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, ef := range packets {
		if err := cw.WriteFrame(ef); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func annotatedHeader(src core.Source, track *annotation.Track, v *variant, levels []byte, from int) container.Header {
	w, h := src.Size()
	extra := map[uint8][]byte{
		container.ChunkDecodeCycles: v.cyclesChunk,
		container.ChunkSceneBytes:   v.scenesChunk,
	}
	if from > 0 {
		extra[container.ChunkResumeOffset] = container.EncodeResumeOffset(uint32(from))
	}
	if levels != nil {
		extra[container.ChunkDeviceLevels] = levels
	}
	return container.Header{
		W: w, H: h, FPS: src.FPS(),
		FrameCount:  len(v.frames) - from,
		Annotations: track,
		Extra:       extra,
	}
}

// firstIFrameAfter returns the first I-frame index > 0 (a legal resume
// point past the stream start).
func firstIFrameAfter(t *testing.T, v *variant) int {
	t.Helper()
	for i := 1; i < len(v.frames); i++ {
		if v.frames[i].Type == codec.IFrame {
			return i
		}
	}
	t.Fatal("variant has a single GOP; test clip needs more frames")
	return 0
}

// TestSendVariantMatchesReferenceWriter pins the zero-copy send
// against the historical per-frame writer for the fixed-quality
// shapes: plain, with a device-levels chunk, and resumed mid-clip.
func TestSendVariantMatchesReferenceWriter(t *testing.T) {
	src, track, v, _, _ := buildServingFixture(t)
	levels := []byte{1, 2, 3, 4, 5}
	resume := firstIFrameAfter(t, v)
	cases := []struct {
		name   string
		levels []byte
		from   int
	}{
		{"plain", nil, 0},
		{"device_levels", levels, 0},
		{"resume", nil, resume},
		{"resume_with_levels", levels, resume},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := referenceContainerBytes(t, annotatedHeader(src, track, v, tc.levels, tc.from), v.frames[tc.from:])
			var got bytes.Buffer
			sent, err := sendVariant(context.Background(), &got, src, track, v, tc.levels, tc.from, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if sent != uint64(got.Len()) {
				t.Errorf("sent = %d, wrote %d bytes", sent, got.Len())
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("zero-copy stream differs from reference writer (%d vs %d bytes)", got.Len(), len(want))
			}
		})
	}
}

// TestSendVariantStoreRoundTripMatchesReference serves a variant that
// went through the artifact serialisation — first from its in-memory
// aliased wire, then from the artifact file on disk (the sendfile
// path), then with a dangling file ref (fallback) — and requires all
// three to equal the reference writer's bytes.
func TestSendVariantStoreRoundTripMatchesReference(t *testing.T) {
	src, track, v, _, _ := buildServingFixture(t)
	want := referenceContainerBytes(t, annotatedHeader(src, track, v, nil, 0), v.frames)

	art, err := encodeVariantArtifact(v)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := decodeVariantArtifact(art)
	if err != nil {
		t.Fatal(err)
	}
	serve := func(t *testing.T, v *variant) []byte {
		t.Helper()
		var got bytes.Buffer
		if _, err := sendVariant(context.Background(), &got, src, track, v, nil, 0, nil, nil); err != nil {
			t.Fatal(err)
		}
		return got.Bytes()
	}
	if got := serve(t, dv); !bytes.Equal(got, want) {
		t.Fatal("store round-tripped variant served different bytes")
	}

	// File-backed: the wire region sits variantWirePrefix bytes into the
	// artifact; serving must stream it from the file bit-identically.
	path := filepath.Join(t.TempDir(), "variant.art")
	if err := os.WriteFile(path, art, 0o644); err != nil {
		t.Fatal(err)
	}
	dv.ref = wireFileRef{path: path, off: variantWirePrefix, n: int64(len(dv.wire))}
	if got := serve(t, dv); !bytes.Equal(got, want) {
		t.Fatal("file-backed variant served different bytes")
	}

	// A vanished artifact file (evicted store entry) must fall back to
	// the in-memory wire before any byte is written, not fail the session.
	dv.ref.path = filepath.Join(t.TempDir(), "gone.art")
	if got := serve(t, dv); !bytes.Equal(got, want) {
		t.Fatal("fallback after missing artifact file served different bytes")
	}
}

// TestSendAdaptiveMatchesReferenceWriter pins a switchless adaptive
// session: the same container as a fixed session, with the opening
// rung-announcement marker interposed before the first frame.
func TestSendAdaptiveMatchesReferenceWriter(t *testing.T) {
	src, track, v, _, qi := buildServingFixture(t)
	packets := append([]*codec.EncodedFrame{qualitySwitchMarker(qi)}, v.frames...)
	want := referenceContainerBytes(t, annotatedHeader(src, track, v, nil, 0), packets)

	srvEnd, cliEnd := net.Pipe()
	dc := &deadlineConn{Conn: srvEnd}
	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&got, cliEnd)
		close(done)
	}()
	getVariant := func(context.Context, int) (*variant, error) { return v, nil }
	reg := obs.NewRegistry()
	sent, switches, err := sendAdaptive(context.Background(), dc, src, track, v, getVariant, nil, 0, qi,
		reg, "server", nil, nil)
	srvEnd.Close()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(switches) != 0 {
		t.Fatalf("unexpected switches: %v", switches)
	}
	if sent != uint64(got.Len()) {
		t.Errorf("sent = %d, wrote %d bytes", sent, got.Len())
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("adaptive zero-copy stream differs from reference writer (%d vs %d bytes)", got.Len(), len(want))
	}
}

// rawReferenceBytes replicates streamRaw's pre-caching behaviour: a
// bare header and a fresh encoder run over the clip.
func rawReferenceBytes(t *testing.T, src core.Source, cfg EncodeConfig) []byte {
	t.Helper()
	w, h := src.Size()
	enc, err := codec.NewEncoder(w, h, cfg.GOP, cfg.QScale)
	if err != nil {
		t.Fatal(err)
	}
	var packets []*codec.EncodedFrame
	for i := 0; i < src.TotalFrames(); i++ {
		ef, err := enc.Encode(src.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		packets = append(packets, ef)
	}
	return referenceContainerBytes(t, container.Header{
		W: w, H: h, FPS: src.FPS(), FrameCount: src.TotalFrames(),
	}, packets)
}

func countSpans(r *obs.Registry, name string) int {
	n := 0
	for _, s := range r.RecentSpans() {
		if s.Name == name {
			n++
		}
	}
	return n
}

// TestStreamRawServedFromCache is the regression test for the raw-mode
// re-encode bug: every ModeRaw fetch used to run a fresh encoder over
// the whole clip. The encoded raw form is now an artifact-tier entry,
// so a second fetch must add no encode spans (and no pipeline spans)
// while returning byte-identical output — which also must match the
// old writer's bytes exactly.
func TestStreamRawServedFromCache(t *testing.T) {
	cat := testCatalog()
	src := cat["night"]
	reg := obs.NewRegistry()
	s := NewServer(cat)
	s.SetLogf(quiet)
	s.SetObserver(reg)
	ctx := obs.WithRegistry(context.Background(), reg)

	var first, second bytes.Buffer
	if err := s.streamRaw(ctx, &first, "night", src); err != nil {
		t.Fatal(err)
	}
	encodes := countSpans(reg, "stream.raw_encode")
	if encodes == 0 {
		t.Fatal("cold raw fetch recorded no encode span; span accounting broken")
	}
	if err := s.streamRaw(ctx, &second, "night", src); err != nil {
		t.Fatal(err)
	}
	if n := countSpans(reg, "stream.raw_encode"); n != encodes {
		t.Errorf("second raw fetch re-encoded the clip: %d encode spans, want %d", n, encodes)
	}
	if n := countComputeSpans(reg); n != 0 {
		t.Errorf("raw fetches ran the annotation pipeline: %d compute spans", n)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("cached raw fetch served different bytes")
	}
	want := rawReferenceBytes(t, src, s.enc.withDefaults(src.FPS()))
	if !bytes.Equal(first.Bytes(), want) {
		t.Fatal("raw stream differs from the pre-caching writer's bytes")
	}
}

// failAfterWriter accepts exactly limit bytes, then fails every write;
// a write straddling the limit is a partial write (short count + error),
// the hardest case for byte accounting.
type failAfterWriter struct {
	limit int
	n     int
}

var errWireDown = errors.New("wire down")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n >= w.limit {
		return 0, errWireDown
	}
	k := len(p)
	if w.n+k > w.limit {
		k = w.limit - w.n
	}
	w.n += k
	if k < len(p) {
		return k, errWireDown
	}
	return k, nil
}

// TestSendVariantReportsBytesOnFailure pins the sent/error contract:
// whatever the failure point — inside the header, on a packet
// boundary, mid-packet — the returned count is exactly the bytes the
// connection accepted, and the bytesSent counter moves by exactly that
// amount (no double counting, no zero-on-error).
func TestSendVariantReportsBytesOnFailure(t *testing.T) {
	src, track, v, _, _ := buildServingFixture(t)
	total := len(referenceContainerBytes(t, annotatedHeader(src, track, v, nil, 0), v.frames))
	limits := []int{0, 3, 40, int(v.offs[0]), total - len(v.wire) + int(v.offs[1]) + 3, total - 1}
	for _, limit := range limits {
		t.Run(fmt.Sprintf("limit=%d", limit), func(t *testing.T) {
			reg := obs.NewRegistry()
			bytesSent := reg.Counter("test_bytes_sent", "bytes")
			framesSent := reg.Counter("test_frames_sent", "frames")
			w := &failAfterWriter{limit: limit}
			sent, err := sendVariant(context.Background(), w, src, track, v, nil, 0, framesSent, bytesSent)
			if err == nil {
				t.Fatal("send over a failing connection reported success")
			}
			if !errors.Is(err, errWireDown) {
				t.Fatalf("err = %v, want wrapped errWireDown", err)
			}
			if sent != uint64(w.n) {
				t.Errorf("sent = %d, connection accepted %d bytes", sent, w.n)
			}
			if got := bytesSent.Value(); got != sent {
				t.Errorf("bytesSent counter = %d, sendVariant returned %d", got, sent)
			}
		})
	}
}

// TestWarmServeZeroAllocsPerFrame is the AllocsPerRun gate on the warm
// path. sendWire — the only per-frame code on a warm hit, shared by
// the server and proxy serve paths (sendVariant, sendAdaptive,
// streamRaw) — must allocate nothing at all; everything sendVariant
// adds on top is per-session header work, so allocations cannot scale
// with frame count.
func TestWarmServeZeroAllocsPerFrame(t *testing.T) {
	src, track, v, _, _ := buildServingFixture(t)
	sink := &countingWriter{w: io.Discard}
	cw, err := container.NewWriter(sink, annotatedHeader(src, track, v, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var sendErr error
	allocs := testing.AllocsPerRun(200, func() {
		if err := sendWire(ctx, cw, v, 0, len(v.frames), nil); err != nil {
			sendErr = err
		}
	})
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if allocs != 0 {
		t.Errorf("warm serve path allocates: %.1f allocs per send of %d frames, want 0", allocs, len(v.frames))
	}

	// Session-level flatness: serving the whole clip must cost the same
	// allocations as serving only the final GOP (mod the resume chunk's
	// few header allocs) — with sendWire at zero, the header is the only
	// allocator and allocations cannot scale with frame count.
	resume := firstIFrameAfter(t, v)
	for i := resume; i < len(v.frames); i++ {
		if v.frames[i].Type == codec.IFrame {
			resume = i
		}
	}
	session := func(from int) float64 {
		return testing.AllocsPerRun(50, func() {
			if _, err := sendVariant(ctx, io.Discard, src, track, v, nil, from, nil, nil); err != nil {
				sendErr = err
			}
		})
	}
	fullAllocs := session(0)
	tailAllocs := session(resume)
	if sendErr != nil {
		t.Fatal(sendErr)
	}
	if fullAllocs > tailAllocs+8 {
		t.Errorf("full session allocates %.1f vs %.1f for the final GOP (%d vs %d frames) — allocations scale with frame count",
			fullAllocs, tailAllocs, len(v.frames), len(v.frames)-resume)
	}
}

// BenchmarkWarmServe measures the warm serving path end to end at the
// session level: a prepared (cached) variant streamed through
// sendVariant. Reported frames/s is the per-core serving throughput
// the benchmark-regression gate tracks against BENCH_serving.json.
func BenchmarkWarmServe(b *testing.B) {
	src, track, v, _, _ := buildServingFixture(b)
	ctx := context.Background()
	var bytesTotal uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sent, err := sendVariant(ctx, io.Discard, src, track, v, nil, 0, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		bytesTotal += sent
	}
	b.StopTimer()
	frames := float64(len(v.frames)) * float64(b.N)
	b.ReportMetric(frames/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(float64(bytesTotal)/b.Elapsed().Seconds()/1e6, "MB/s")
}
