package stream

import (
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/battery"
	"repro/internal/compensate"
	"repro/internal/core"
	"repro/internal/display"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/obs"
	"repro/internal/video"
)

// abrSeconds is the abr test clip's content length in seconds.
const abrSeconds = 8.0

// abrCatalog builds the adaptive-ladder test clip: 16 strongly distinct
// half-second scenes at 8 fps (64 frames), so the ladder gets a
// decision opportunity every 4 frames and the scene detector finds the
// same boundaries the GOP (4) aligns switches to.
func abrCatalog() map[string]core.Source {
	var scenes []video.SceneSpec
	for i := 0; i < 16; i++ {
		s := video.SceneSpec{Frames: 4, BaseLuma: 0.15, LumaSpread: 0.08,
			MaxLuma: 0.7, HighlightFrac: 0.01, Hue: float64(i) / 16}
		if i%2 == 1 {
			s.BaseLuma, s.MaxLuma = 0.5, 0.98
		}
		scenes = append(scenes, s)
	}
	clip := video.MustNew("abr", 32, 24, 8, 17, scenes)
	return map[string]core.Source{"abr": core.ClipSource{Clip: clip}}
}

// abrServer starts a ladder-test server on the given listener config:
// ln nil listens plainly, otherwise the server serves the provided
// (typically fault-wrapped) listener.
func abrServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer(abrCatalog())
	s.SetLogf(quiet)
	s.SetEncodeConfig(EncodeConfig{GOP: 4})
	return s
}

// playAbr plays the abr clip recording per-frame digests, checking emit
// continuity like playRecorded.
func playAbr(t *testing.T, client *Client, addr string, quality float64) (*PlayResult, []uint64) {
	t.Helper()
	var digests []uint64
	client.OnFrame = func(i int, f *frame.Frame, backlight int) {
		if i == 0 {
			digests = digests[:0]
		}
		if i != len(digests) {
			t.Errorf("OnFrame index %d, want %d (duplicate or skipped emit)", i, len(digests))
		}
		digests = append(digests, frameDigest(f))
	}
	res, err := client.Play(addr, "abr", quality)
	if err != nil {
		t.Fatal(err)
	}
	return res, digests
}

// fixedRungDigests plays the clip as a plain fixed-quality (v3) session
// at each requested rung, returning per-rung frame digests — the
// reference the adaptive session's frames must be bit-identical to.
func fixedRungDigests(t *testing.T, addr string, rungs map[int]bool) map[int][]uint64 {
	t.Helper()
	out := map[int][]uint64{}
	for rung := range rungs {
		// Request the middle of the rung's budget bracket: asking for the
		// level exactly can land one rung lower once the budget is
		// quantized onto the wire (0.15 crosses as 38/255 ≈ 0.149).
		_, d := playAbr(t, &Client{Device: display.IPAQ5555()}, addr, compensate.QualityLevels[rung]+0.025)
		out[rung] = d
	}
	return out
}

// assertRungIdentity checks every adaptive frame against the fixed
// stream of the rung it was served at.
func assertRungIdentity(t *testing.T, res *PlayResult, digests []uint64, fixed map[int][]uint64) {
	t.Helper()
	if len(res.RungByFrame) != len(digests) {
		t.Fatalf("RungByFrame has %d entries for %d frames", len(res.RungByFrame), len(digests))
	}
	for i, rung := range res.RungByFrame {
		ref := fixed[int(rung)]
		if i >= len(ref) {
			t.Fatalf("fixed run at rung %d has only %d frames", rung, len(ref))
		}
		if digests[i] != ref[i] {
			t.Fatalf("frame %d (rung %d) not bit-identical to that rung's fixed stream", i, rung)
		}
	}
}

// TestChaosLadderWalksDownAndRecovers is the tentpole end-to-end check:
// under a phased bandwidth throttle the session walks down the quality
// ladder instead of stalling, holds within the switch-rate bound, walks
// back up once the link recovers, completes every frame, and every
// frame is bit-identical to the fixed-quality stream of the rung it was
// served at.
func TestChaosLadderWalksDownAndRecovers(t *testing.T) {
	// Clean reference server: measures the stream and provides the
	// fixed-rung reference digests (identical variant bytes, no faults).
	ref := abrServer(t)
	refAddr, err := ref.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	clean, _ := playAbr(t, &Client{Device: display.IPAQ5555()}, refAddr.String(), 0)
	if clean.Scenes != 16 {
		t.Fatalf("scene detection found %d scenes, want 16 (clip/test drifted)", clean.Scenes)
	}

	// Phased throttle, scheduled in bytes of the clean stream: a healthy
	// start, a drain phase well below the real-time rate, then a fat
	// recovery pipe.
	total := int64(clean.BytesStream)
	avgBps := int(float64(total) / abrSeconds)
	s := abrServer(t)
	ln := newLocalListener(t)
	s.Serve(faults.WrapListener(ln, faults.Config{Seed: 9, ThrottlePhases: []faults.ThrottlePhase{
		{Bytes: total * 15 / 100, BPS: 0},
		{Bytes: total * 25 / 100, BPS: avgBps * 2 / 5},
		{Bytes: 0, BPS: avgBps * 10},
	}}))
	t.Cleanup(s.Close)

	reg := obs.NewRegistry()
	client := &Client{
		Device:      display.IPAQ5555(),
		Obs:         reg,
		ReadTimeout: 30 * time.Second,
		Ladder: &adaptive.LadderConfig{
			DownLead: 0.4, UpLead: 1.0,
			MinDwell: 1, UpHold: 1,
			MaxSwitches: 10, Window: 32,
		},
	}
	res, digests := playAbr(t, client, ln.Addr().String(), 0)

	if res.ProtocolVersion != 4 {
		t.Errorf("protocol version = %d, want 4", res.ProtocolVersion)
	}
	if res.Frames != clean.Frames {
		t.Fatalf("delivered %d frames, want %d", res.Frames, clean.Frames)
	}
	// Walked down under the throttle, recovered after it.
	worst, downs, ups := 0, 0, 0
	for i, r := range res.RungByFrame {
		if int(r) > worst {
			worst = int(r)
		}
		if i > 0 {
			if r > res.RungByFrame[i-1] {
				downs++
			}
			if r < res.RungByFrame[i-1] {
				ups++
			}
		}
	}
	if worst < 1 {
		t.Error("ladder never walked down under the throttle")
	}
	if downs < 1 || ups < 1 {
		t.Errorf("transitions: %d down, %d up; want at least one of each", downs, ups)
	}
	if res.FinalRung >= worst {
		t.Errorf("final rung %d did not recover from worst rung %d", res.FinalRung, worst)
	}
	// Bounded switch rate (few, small switches — arXiv 2305.15117), and
	// the stall never exceeded the rebuffer threshold.
	if res.QualitySwitches != downs+ups {
		t.Errorf("QualitySwitches = %d, RungByFrame shows %d", res.QualitySwitches, downs+ups)
	}
	if res.QualitySwitches < 2 || res.QualitySwitches > 12 {
		t.Errorf("QualitySwitches = %d, want 2..12", res.QualitySwitches)
	}
	if res.MaxLagSeconds >= 3.5 {
		t.Errorf("MaxLagSeconds = %.2f, want < 3.5 (rebuffer threshold)", res.MaxLagSeconds)
	}
	// Each frame bit-identical to its rung's fixed-quality stream.
	rungs := map[int]bool{}
	for _, r := range res.RungByFrame {
		rungs[int(r)] = true
	}
	assertRungIdentity(t, res, digests, fixedRungDigests(t, refAddr.String(), rungs))
	t.Logf("ladder run: %d switches (%d down, %d up), worst rung %d, final rung %d, max lag %.2fs, rung seconds %v",
		res.QualitySwitches, downs, ups, worst, res.FinalRung, res.MaxLagSeconds, res.Ledger.RungSeconds)
	// Ledger and metrics agree with the wire.
	if res.Ledger.QualitySwitches != res.QualitySwitches {
		t.Errorf("ledger counted %d switches, session %d", res.Ledger.QualitySwitches, res.QualitySwitches)
	}
	if len(res.Ledger.RungSeconds) < 2 {
		t.Errorf("ledger rung seconds %v, want time on 2+ rungs", res.Ledger.RungSeconds)
	}
	down := reg.Counter("quality_switch_total", "", obs.L("role", "client"), obs.L("direction", "down")).Value()
	up := reg.Counter("quality_switch_total", "", obs.L("role", "client"), obs.L("direction", "up")).Value()
	if down == 0 || up == 0 {
		t.Errorf("quality_switch_total{client} down=%d up=%d, want both nonzero", down, up)
	}
}

// TestAdaptiveMatchesFixedWhenHealthy: on a clean link an adaptive
// session must behave exactly like the fixed session it was requested
// as — zero switches, bit-identical frames.
func TestAdaptiveMatchesFixedWhenHealthy(t *testing.T) {
	s := abrServer(t)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	fixed, wantDigests := playAbr(t, &Client{Device: display.IPAQ5555()}, addr.String(), 0.10)
	if fixed.ProtocolVersion != 3 {
		t.Fatalf("fixed session negotiated v%d, want v3", fixed.ProtocolVersion)
	}
	client := &Client{Device: display.IPAQ5555(), Ladder: &adaptive.LadderConfig{}}
	res, digests := playAbr(t, client, addr.String(), 0.10)
	if res.ProtocolVersion != 4 {
		t.Errorf("protocol version = %d, want 4", res.ProtocolVersion)
	}
	if res.QualitySwitches != 0 {
		t.Errorf("healthy session switched %d times, want 0", res.QualitySwitches)
	}
	if res.Frames != fixed.Frames {
		t.Fatalf("adaptive delivered %d frames, fixed %d", res.Frames, fixed.Frames)
	}
	for i := range wantDigests {
		if digests[i] != wantDigests[i] {
			t.Fatalf("frame %d differs between healthy adaptive and fixed sessions", i)
		}
	}
	if res.FinalRung != 2 {
		t.Errorf("final rung = %d, want 2 (the requested 0.10 budget)", res.FinalRung)
	}
}

// TestChaosLadderResume: a mid-stream reset during an adaptive session
// resumes via the v2 machinery at the rung in force, still on protocol
// v4, and delivers every frame exactly once.
func TestChaosLadderResume(t *testing.T) {
	s := abrServer(t)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	clean, wantDigests := playAbr(t, &Client{Device: display.IPAQ5555(), Ladder: &adaptive.LadderConfig{}}, addr.String(), 0)
	inj := faults.NewInjector(faults.Config{Seed: 21, ResetAfter: []int64{int64(clean.BytesStream) / 2}})
	client := &Client{
		Device: display.IPAQ5555(),
		Ladder: &adaptive.LadderConfig{},
		Dial:   inj.Dialer(nil),
		Retry:  RetryPolicy{MaxAttempts: 4, BaseDelay: 5 * time.Millisecond},
	}
	res, digests := playAbr(t, client, addr.String(), 0)
	if res.ProtocolVersion != 4 {
		t.Errorf("protocol version = %d, want 4", res.ProtocolVersion)
	}
	if res.Resumes == 0 {
		t.Error("resumes = 0, want at least one after the injected reset")
	}
	if res.Frames != clean.Frames {
		t.Fatalf("delivered %d frames, want %d", res.Frames, clean.Frames)
	}
	for i := range wantDigests {
		if digests[i] != wantDigests[i] {
			t.Fatalf("frame %d decoded differently across the resume", i)
		}
	}
}

// TestChaosLadderBatteryFloor: a draining battery pins the ladder to
// the floor rung even on a perfect link — the hard constraint from the
// battery gauge bypasses network hysteresis.
func TestChaosLadderBatteryFloor(t *testing.T) {
	// Clean server: per-rung reference digests and the stream size for
	// pacing. The battery run itself goes through a mild (4× real-time)
	// throttle so the control loop runs while frames are still in
	// flight — on a raw loopback the whole clip lands in socket buffers
	// before the first switch request crosses the wire.
	ref := abrServer(t)
	refListen, err := ref.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	refAddr := refListen.String()
	clean, _ := playAbr(t, &Client{Device: display.IPAQ5555()}, refAddr, 0)

	avgBps := int(float64(clean.BytesStream) / abrSeconds)
	s := abrServer(t)
	ln := newLocalListener(t)
	s.Serve(faults.WrapListener(ln, faults.Config{Seed: 5, ThrottlePhases: []faults.ThrottlePhase{
		{Bytes: 0, BPS: avgBps * 4},
	}}))
	t.Cleanup(s.Close)

	gauge := battery.NewGaugeWh(0.001) // ~3.6 J: flat after ~2s of playback
	client := &Client{
		Device:      display.IPAQ5555(),
		ReadTimeout: 30 * time.Second,
		Ladder:      &adaptive.LadderConfig{MinDwell: 1, Battery: gauge},
	}
	res, digests := playAbr(t, client, ln.Addr().String(), 0)
	if res.QualitySwitches == 0 {
		t.Fatal("battery drain forced no switches")
	}
	floor := len(compensate.QualityLevels) - 1
	if res.FinalRung != floor {
		t.Errorf("final rung = %d, want floor %d", res.FinalRung, floor)
	}
	if last := res.RungByFrame[len(res.RungByFrame)-1]; int(last) != floor {
		t.Errorf("last frame served at rung %d, want floor %d", last, floor)
	}
	rungs := map[int]bool{}
	for _, r := range res.RungByFrame {
		rungs[int(r)] = true
	}
	assertRungIdentity(t, res, digests, fixedRungDigests(t, refAddr, rungs))
}

// TestLadderDowngradeStepwise: against servers pinned at older protocol
// versions, an adaptive client steps 4 → 3 (dropping the ladder, noted
// as a degradation) and on down to v1, still completing playback.
func TestLadderDowngradeStepwise(t *testing.T) {
	for _, tc := range []struct {
		maxProto    int
		wantVersion int
	}{
		{3, 3},
		{2, 2},
		{1, 1},
	} {
		s := abrServer(t)
		s.SetMaxProtocolVersion(tc.maxProto)
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		client := &Client{Device: display.IPAQ5555(), Ladder: &adaptive.LadderConfig{}}
		res, err := client.Play(addr.String(), "abr", 0.10)
		if err != nil {
			t.Fatalf("maxProto %d: %v", tc.maxProto, err)
		}
		if res.ProtocolVersion != tc.wantVersion {
			t.Errorf("maxProto %d: settled on v%d, want v%d", tc.maxProto, res.ProtocolVersion, tc.wantVersion)
		}
		if res.Frames != 64 {
			t.Errorf("maxProto %d: %d frames, want 64", tc.maxProto, res.Frames)
		}
		if res.QualitySwitches != 0 || res.RungByFrame != nil {
			t.Errorf("maxProto %d: fixed fallback still reported ladder state", tc.maxProto)
		}
		degraded := false
		for _, d := range res.Degraded {
			if d == "ladder" {
				degraded = true
			}
		}
		if !degraded {
			t.Errorf("maxProto %d: Degraded = %v, want to include \"ladder\"", tc.maxProto, res.Degraded)
		}
		s.Close()
	}
}

// TestProxyAdaptiveSession: the proxy speaks v4 too — an adaptive
// session through the proxy tier completes with the same frames as a
// fixed session served directly.
func TestProxyAdaptiveSession(t *testing.T) {
	upstream := abrServer(t)
	upAddr, err := upstream.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(upstream.Close)

	p := NewProxy(upAddr.String())
	p.SetLogf(quiet)
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	client := &Client{Device: display.IPAQ5555(), Ladder: &adaptive.LadderConfig{}}
	res, err := client.Play(addr.String(), "abr", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolVersion != 4 {
		t.Errorf("protocol version through proxy = %d, want 4", res.ProtocolVersion)
	}
	if res.Frames != 64 {
		t.Errorf("frames = %d, want 64", res.Frames)
	}
	if res.QualitySwitches != 0 {
		t.Errorf("healthy proxied session switched %d times, want 0", res.QualitySwitches)
	}
}
